// Package randtest centralizes seeding for randomized tests. Every test
// that draws randomness takes its seed from here, so that (a) a failure
// log always names the seed that reproduces it, and (b) one flag —
// `go test -args -seed=N` — replays any randomized test under a chosen
// seed without editing code.
package randtest

import (
	"flag"
	"math/rand"
	"testing"
)

var seedFlag = flag.Int64("seed", 0, "override the seed of randomized tests (0 keeps each test's default)")

// Seed returns the test's RNG seed — the -seed override when set, def
// otherwise — and logs the value so a failing run names its replay seed.
func Seed(t testing.TB, def int64) int64 {
	s := def
	if *seedFlag != 0 {
		s = *seedFlag
	}
	t.Logf("seed=%d (rerun with `go test -run '^%s$' -args -seed=%d`)", s, t.Name(), s)
	return s
}

// New returns a math/rand generator for the test, seeded through Seed.
func New(t testing.TB, def int64) *rand.Rand {
	return rand.New(rand.NewSource(Seed(t, def)))
}
