package lincheck_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"potgo/internal/lincheck"
	"potgo/internal/objstore"
	"potgo/internal/pds"
	"potgo/internal/pmem"
	"potgo/internal/randtest"
)

// The MVCC snapshot-read stress: 8 workers fire put/delete/get/scan at the
// snapshot-enabled KV store. Writes (latched, linearizable) are proved so
// with the Wing & Gong checker; reads ride the epoch-pinned snapshot path
// and are proved snapshot-consistent with CheckSI. Every put's value
// encodes worker<<32|seq, so each value identifies its write — the SI
// checker's identification requirement.

const (
	siKVPut = byte(iota + 1)
	siKVDel
	siKVGet
	siKVScan
)

const siScanMax = 128

// siKVIn is comparable (Wing & Gong compares inputs with ==); only write
// ops ever reach that checker.
type siKVIn struct {
	Op  byte
	Key uint64
	Val uint64
}

type siKVOut struct {
	Changed bool // put: created; delete: existed
	Val     uint64
	Found   bool
}

// siKVWriteModel is the per-key sequential spec of the write ops: state is
// the current value (0 = absent; all written values are nonzero).
func siKVWriteModel() lincheck.Model {
	return lincheck.Model{
		Init: func() any { return uint64(0) },
		Step: func(s, in any) (any, any) {
			cur := s.(uint64)
			i := in.(siKVIn)
			switch i.Op {
			case siKVPut:
				return i.Val, siKVOut{Changed: cur == 0}
			case siKVDel:
				return uint64(0), siKVOut{Changed: cur != 0}
			}
			panic(fmt.Sprintf("unexpected op %d in write history", i.Op))
		},
		Repr:      func(s any) string { return fmt.Sprint(s.(uint64)) },
		Partition: func(op lincheck.Op) any { return op.Input.(siKVIn).Key },
	}
}

func TestKVSnapshotIsolation(t *testing.T) {
	const workers = 8
	const keySpace = 24
	perWorker := 1500 // 12k ops total against the one structure
	if testing.Short() {
		perWorker = 150
	}

	sh, err := pmem.NewSharded(pmem.NewStore(), 8, 1)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	kv, err := objstore.CreateKV(sh, "si")
	if err != nil {
		t.Fatalf("CreateKV: %v", err)
	}

	// Worker streams derive from the one master seed, so a -seed override
	// replays the entire run.
	rng := randtest.New(t, 909)
	seeds := make([]int64, workers)
	for w := range seeds {
		seeds[w] = rng.Int63()
	}

	rec := lincheck.NewRecorder()
	errs := make([]error, workers)
	var mu sync.Mutex
	var siReads []lincheck.SIRead

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seeds[w]))
			var scanBuf []pds.KV
			var localReads []lincheck.SIRead
			for i := 0; i < perWorker; i++ {
				key := uint64(r.Intn(keySpace) + 1)
				switch r.Intn(8) {
				case 0, 1, 2: // put
					val := uint64(w+1)<<32 | uint64(i+1)
					in := siKVIn{Op: siKVPut, Key: key, Val: val}
					p := rec.Begin(w, in)
					created, err := kv.Put(key, val)
					if err != nil {
						errs[w] = fmt.Errorf("put %d: %w", key, err)
						return
					}
					rec.End(p, siKVOut{Changed: created})
				case 3: // delete
					in := siKVIn{Op: siKVDel, Key: key}
					p := rec.Begin(w, in)
					existed, err := kv.Delete(key)
					if err != nil {
						errs[w] = fmt.Errorf("delete %d: %w", key, err)
						return
					}
					rec.End(p, siKVOut{Changed: existed})
				case 4, 5, 6: // get (snapshot path)
					p := rec.Begin(w, siKVIn{Op: siKVGet, Key: key})
					val, found, err := kv.Get(key)
					if err != nil {
						errs[w] = fmt.Errorf("get %d: %w", key, err)
						return
					}
					pp := rec.End(p, siKVOut{Val: val, Found: found})
					localReads = append(localReads, lincheck.SIRead{
						Worker: w,
						Obs:    []lincheck.SIObs{{Key: key, Val: val, Found: found}},
						Call:   pp.Call, Ret: pp.Ret,
					})
				case 7: // scan (snapshot path, whole keyspace)
					p := rec.Begin(w, siKVIn{Op: siKVScan})
					var err error
					scanBuf, err = kv.ScanAppend(scanBuf, 0, siScanMax)
					if err != nil {
						errs[w] = fmt.Errorf("scan: %w", err)
						return
					}
					pp := rec.End(p, siKVOut{})
					// The scan covered the whole keyspace (siScanMax >>
					// keySpace), so absent keys are genuine absence
					// observations — the phantom check.
					obs := make([]lincheck.SIObs, 0, keySpace)
					got := make(map[uint64]uint64, len(scanBuf))
					for _, kvp := range scanBuf {
						got[kvp.Key] = kvp.Val
					}
					for k := uint64(1); k <= keySpace; k++ {
						if v, ok := got[k]; ok {
							obs = append(obs, lincheck.SIObs{Key: k, Val: v, Found: true})
						} else {
							obs = append(obs, lincheck.SIObs{Key: k})
						}
					}
					localReads = append(localReads, lincheck.SIRead{
						Worker: w, Obs: obs, Call: pp.Call, Ret: pp.Ret,
					})
				}
			}
			mu.Lock()
			siReads = append(siReads, localReads...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	// Split the recorded history: write ops go through the Wing & Gong
	// linearizability check, and double as the SI checker's write set.
	var writeOps []lincheck.Op
	var siWrites []lincheck.SIWrite
	for _, op := range rec.History() {
		in := op.Input.(siKVIn)
		switch in.Op {
		case siKVPut:
			writeOps = append(writeOps, op)
			siWrites = append(siWrites, lincheck.SIWrite{
				Key: in.Key, Val: in.Val, Call: op.Call, Ret: op.Ret,
			})
		case siKVDel:
			writeOps = append(writeOps, op)
			siWrites = append(siWrites, lincheck.SIWrite{
				Key: in.Key, Del: true, Call: op.Call, Ret: op.Ret,
			})
		}
	}
	t.Logf("history: %d write ops, %d snapshot reads", len(writeOps), len(siReads))
	if total := len(writeOps) + len(siReads); !testing.Short() && total < 10000 {
		t.Fatalf("stress ran %d ops, below the 10k floor", total)
	}

	if err := lincheck.Check(siKVWriteModel(), writeOps); err != nil {
		t.Fatalf("write history not linearizable: %v", err)
	}
	if err := lincheck.CheckSI(siWrites, siReads); err != nil {
		t.Fatalf("snapshot reads not SI-consistent: %v", err)
	}
	if _, err := kv.Check(); err != nil {
		t.Fatalf("structure invariants after stress: %v", err)
	}

	pub, rec2 := sh.MVCC().Stats()
	t.Logf("mvcc: %d versions published, %d reclaimed", pub, rec2)
	if pub == 0 {
		t.Fatal("stress never exercised the snapshot mirror")
	}
}

// TestKVStaleReadMutationDetected injects the deliberate snapshot bug —
// pins frozen at a stale epoch — and proves CheckSI catches it. A harness
// whose checker stays green under this mutation proves nothing.
func TestKVStaleReadMutationDetected(t *testing.T) {
	sh, err := pmem.NewSharded(pmem.NewStore(), 4, 1)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	kv, err := objstore.CreateKV(sh, "mut")
	if err != nil {
		t.Fatalf("CreateKV: %v", err)
	}

	rec := lincheck.NewRecorder()
	put := func(key, val uint64) lincheck.SIWrite {
		p := rec.Begin(0, key)
		if _, err := kv.Put(key, val); err != nil {
			t.Fatalf("put: %v", err)
		}
		pp := rec.End(p, val)
		return lincheck.SIWrite{Key: key, Val: val, Call: pp.Call, Ret: pp.Ret}
	}
	get := func(key uint64) lincheck.SIRead {
		p := rec.Begin(0, key)
		val, found, err := kv.Get(key)
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		pp := rec.End(p, val)
		return lincheck.SIRead{
			Obs:  []lincheck.SIObs{{Key: key, Val: val, Found: found}},
			Call: pp.Call, Ret: pp.Ret,
		}
	}

	w1 := put(5, 1)
	sh.MVCC().MutateStaleReads() // freeze pins at the epoch that sees val 1
	w2 := put(5, 2)
	r := get(5)

	if got := r.Obs[0]; !got.Found || got.Val != 1 {
		t.Fatalf("mutation did not produce a stale read: got %+v", got)
	}
	if err := lincheck.CheckSI([]lincheck.SIWrite{w1, w2}, []lincheck.SIRead{r}); err == nil {
		t.Fatal("SI checker accepted the stale read — the harness cannot detect the bug it exists for")
	} else {
		t.Logf("checker correctly rejected: %v", err)
	}

	// Control: honest pinning restored, the same read passes.
	sh.MVCC().ClearStaleMutation()
	r2 := get(5)
	if got := r2.Obs[0]; !got.Found || got.Val != 2 {
		t.Fatalf("post-clear read = %+v, want val 2", got)
	}
	if err := lincheck.CheckSI([]lincheck.SIWrite{w1, w2}, []lincheck.SIRead{r2}); err != nil {
		t.Fatalf("honest read rejected: %v", err)
	}
}
