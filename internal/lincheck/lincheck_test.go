package lincheck

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// regIn is a read/write-register input.
type regIn struct {
	write bool
	val   uint64
}

func regModel() Model {
	return Model{
		Init: func() any { return uint64(0) },
		Step: func(s, in any) (any, any) {
			i := in.(regIn)
			if i.write {
				return i.val, true
			}
			return s, s.(uint64)
		},
		Repr: func(s any) string { return fmt.Sprint(s) },
	}
}

func TestCheckSequentialGood(t *testing.T) {
	h := []Op{
		{Worker: 0, Input: regIn{write: true, val: 1}, Output: true, Call: 1, Ret: 2},
		{Worker: 1, Input: regIn{}, Output: uint64(1), Call: 3, Ret: 4},
		{Worker: 0, Input: regIn{write: true, val: 2}, Output: true, Call: 5, Ret: 6},
		{Worker: 1, Input: regIn{}, Output: uint64(2), Call: 7, Ret: 8},
	}
	if err := Check(regModel(), h); err != nil {
		t.Fatalf("good sequential history rejected: %v", err)
	}
}

func TestCheckSequentialBad(t *testing.T) {
	// The read of 1 happens strictly after the write of 2 returned: no
	// linearization explains it.
	h := []Op{
		{Worker: 0, Input: regIn{write: true, val: 1}, Output: true, Call: 1, Ret: 2},
		{Worker: 0, Input: regIn{write: true, val: 2}, Output: true, Call: 3, Ret: 4},
		{Worker: 1, Input: regIn{}, Output: uint64(1), Call: 5, Ret: 6},
	}
	if err := Check(regModel(), h); err == nil {
		t.Fatal("stale read accepted as linearizable")
	}
}

func TestCheckConcurrentFlexibility(t *testing.T) {
	// A read overlapping a write may see either the old or the new value.
	for _, out := range []uint64{0, 7} {
		h := []Op{
			{Worker: 0, Input: regIn{write: true, val: 7}, Output: true, Call: 1, Ret: 6},
			{Worker: 1, Input: regIn{}, Output: out, Call: 2, Ret: 3},
		}
		if err := Check(regModel(), h); err != nil {
			t.Fatalf("overlapping read of %d rejected: %v", out, err)
		}
	}
	// But a value never written is wrong under any order.
	h := []Op{
		{Worker: 0, Input: regIn{write: true, val: 7}, Output: true, Call: 1, Ret: 6},
		{Worker: 1, Input: regIn{}, Output: uint64(9), Call: 2, Ret: 3},
	}
	if err := Check(regModel(), h); err == nil {
		t.Fatal("read of a never-written value accepted")
	}
}

// keyedIn routes register ops to independent keys for partition testing.
type keyedIn struct {
	key uint64
	regIn
}

func keyedModel() Model {
	m := regModel()
	return Model{
		Init: m.Init,
		Step: func(s, in any) (any, any) {
			return m.Step(s, in.(keyedIn).regIn)
		},
		Repr:      m.Repr,
		Partition: func(op Op) any { return op.Input.(keyedIn).key },
	}
}

func TestCheckPartitioned(t *testing.T) {
	good := []Op{
		{Input: keyedIn{key: 1, regIn: regIn{write: true, val: 5}}, Output: true, Call: 1, Ret: 2},
		{Input: keyedIn{key: 2, regIn: regIn{write: true, val: 6}}, Output: true, Call: 3, Ret: 4},
		{Input: keyedIn{key: 1, regIn: regIn{}}, Output: uint64(5), Call: 5, Ret: 6},
		{Input: keyedIn{key: 2, regIn: regIn{}}, Output: uint64(6), Call: 7, Ret: 8},
	}
	if err := Check(keyedModel(), good); err != nil {
		t.Fatalf("good partitioned history rejected: %v", err)
	}

	bad := append(append([]Op{}, good...), Op{
		Input: keyedIn{key: 2, regIn: regIn{}}, Output: uint64(999), Call: 9, Ret: 10,
	})
	err := Check(keyedModel(), bad)
	if err == nil {
		t.Fatal("bad partition accepted")
	}
	if !strings.Contains(err.Error(), "partition 2") {
		t.Fatalf("error does not name the stuck partition: %v", err)
	}
}

func TestCheckRejectsMalformedOp(t *testing.T) {
	h := []Op{{Input: regIn{}, Output: uint64(0), Call: 5, Ret: 5}}
	if err := Check(regModel(), h); err == nil {
		t.Fatal("op with Call >= Ret accepted")
	}
}

func TestRecorderTimestamps(t *testing.T) {
	r := NewRecorder()
	const workers = 8
	const each = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p := r.Begin(w, i)
				r.End(p, i)
			}
		}(w)
	}
	wg.Wait()
	h := r.History()
	if len(h) != workers*each {
		t.Fatalf("history has %d ops, want %d", len(h), workers*each)
	}
	seen := make(map[uint64]bool, 2*len(h))
	for _, op := range h {
		if op.Call >= op.Ret {
			t.Fatalf("op %+v: Call >= Ret", op)
		}
		if seen[op.Call] || seen[op.Ret] {
			t.Fatalf("duplicate timestamp in op %+v", op)
		}
		seen[op.Call] = true
		seen[op.Ret] = true
	}
}
