// Package lincheck decides whether a concurrent history is linearizable
// with respect to a sequential model — the correctness bar for the
// concurrent object stores built on the sharded heap.
//
// The checker implements the Wing & Gong search in its partitioned,
// memoized form (the shape popularized by Lowe's refinement and the
// porcupine checker): a history is linearizable iff some total order of
// its operations (a) respects real-time order — an operation that returned
// before another was invoked comes first — and (b) replays through the
// sequential model producing exactly the observed outputs. The search
// walks prefixes of such orders, at each step trying every operation whose
// invocation precedes the earliest return among the not-yet-linearized
// operations, and memoizes (linearized-set, model-state) pairs so a failed
// frontier is never re-explored.
//
// Histories are recorded with a Recorder, whose single atomic clock gives
// every invocation and return a unique timestamp — no ties, so real-time
// order is a strict partial order.
package lincheck

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Op is one completed operation of a concurrent history.
type Op struct {
	// Worker identifies the client that issued the operation.
	Worker int
	// Input and Output must be comparable with == (use small structs or
	// scalars); Output is matched exactly against the model's output.
	Input  any
	Output any
	// Call and Ret are the invocation and return timestamps. The checker
	// requires Call < Ret and globally unique timestamps (the Recorder
	// guarantees both).
	Call uint64
	Ret  uint64
}

// Model is a sequential specification.
type Model struct {
	// Init returns the model's initial state.
	Init func() any
	// Step applies an input to a state, returning the successor state and
	// the output a sequential execution would produce. States must be
	// treated as immutable (return fresh values, don't mutate in place).
	Step func(state, input any) (any, any)
	// Repr renders a state canonically for memoization.
	Repr func(state any) string
	// Partition, when non-nil, splits the history into independent
	// sub-histories checked separately (Herlihy & Wing locality: a history
	// is linearizable iff each per-object sub-history is). The returned
	// key must be comparable.
	Partition func(op Op) any
}

// Check reports whether history is linearizable with respect to m,
// returning nil on success and a diagnostic error naming the stuck
// partition otherwise.
func Check(m Model, history []Op) error {
	if m.Init == nil || m.Step == nil || m.Repr == nil {
		return fmt.Errorf("lincheck: model needs Init, Step and Repr")
	}
	if m.Partition == nil {
		return checkOps(m, history, "history")
	}
	groups := make(map[any][]Op)
	var keys []any
	for _, op := range history {
		k := m.Partition(op)
		if _, ok := groups[k]; !ok {
			keys = append(keys, k)
		}
		groups[k] = append(groups[k], op)
	}
	// Deterministic check order (map iteration is not).
	sort.Slice(keys, func(i, j int) bool {
		return fmt.Sprint(keys[i]) < fmt.Sprint(keys[j])
	})
	for _, k := range keys {
		if err := checkOps(m, groups[k], fmt.Sprintf("partition %v", k)); err != nil {
			return err
		}
	}
	return nil
}

// checkOps runs the memoized Wing & Gong search over one sub-history.
func checkOps(m Model, ops []Op, what string) error {
	n := len(ops)
	if n == 0 {
		return nil
	}
	sorted := make([]Op, n)
	copy(sorted, ops)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Call < sorted[j].Call })
	for _, op := range sorted {
		if op.Call >= op.Ret {
			return fmt.Errorf("lincheck: %s: op %+v has Call >= Ret", what, op)
		}
	}

	linearized := make([]bool, n)
	bitset := make([]byte, (n+7)/8)
	memo := make(map[string]bool)

	var dfs func(state any, done int) bool
	dfs = func(state any, done int) bool {
		if done == n {
			return true
		}
		key := string(bitset) + "\x00" + m.Repr(state)
		if memo[key] {
			return false
		}
		// The next linearized op must have invoked before the earliest
		// return among the remaining ops — anything later provably ran
		// strictly after some remaining op completed.
		minRet := ^uint64(0)
		for i := 0; i < n; i++ {
			if !linearized[i] && sorted[i].Ret < minRet {
				minRet = sorted[i].Ret
			}
		}
		for i := 0; i < n; i++ {
			if linearized[i] || sorted[i].Call > minRet {
				continue
			}
			next, out := m.Step(state, sorted[i].Input)
			if out != sorted[i].Output {
				continue
			}
			linearized[i] = true
			bitset[i/8] |= 1 << (i % 8)
			if dfs(next, done+1) {
				return true
			}
			linearized[i] = false
			bitset[i/8] &^= 1 << (i % 8)
		}
		memo[key] = true
		return false
	}
	if !dfs(m.Init(), 0) {
		return fmt.Errorf("lincheck: %s: no linearization of %d ops matches the model", what, n)
	}
	return nil
}

// Recorder collects a concurrent history. One atomic clock timestamps
// every invocation and return, so timestamps are globally unique and the
// recorded real-time order is exactly the order the calls happened in.
type Recorder struct {
	clock uint64
	mu    sync.Mutex
	ops   []Op
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Pending is an invoked-but-unfinished operation.
type Pending struct {
	worker int
	input  any
	call   uint64
}

// Begin timestamps an invocation. Call it immediately before issuing the
// operation against the system under test.
func (r *Recorder) Begin(worker int, input any) Pending {
	return Pending{worker: worker, input: input, call: atomic.AddUint64(&r.clock, 1)}
}

// End timestamps the return and commits the completed operation to the
// history, returning it (callers building secondary histories — e.g. the
// SI checker's — read the timestamps off the result). Call it immediately
// after the operation returns.
func (r *Recorder) End(p Pending, output any) Op {
	ret := atomic.AddUint64(&r.clock, 1)
	op := Op{
		Worker: p.worker,
		Input:  p.input,
		Output: output,
		Call:   p.call,
		Ret:    ret,
	}
	r.mu.Lock()
	r.ops = append(r.ops, op)
	r.mu.Unlock()
	return op
}

// History snapshots the completed operations (call with workers joined).
func (r *Recorder) History() []Op {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Op, len(r.ops))
	copy(out, r.ops)
	return out
}

// Len returns the number of completed operations.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ops)
}
