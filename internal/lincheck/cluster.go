package lincheck

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// The cluster checker audits a replicated-log history. The system under
// test acknowledges a write only after a quorum of nodes applied it to an
// origin log; after a node death and failover, the survivors' merged logs
// are the ground truth. The checker proves four properties:
//
//  1. Epoch discipline (split-brain detector): no node ever applied an
//     entry from a sender whose epoch was below the node's own — a deposed
//     primary got nothing accepted.
//  2. Single ownership: for one key within one epoch, every log entry
//     comes from one origin. Two origins writing one key in the same epoch
//     is the other face of split brain.
//  3. Acked inclusion: every acknowledged client write appears in the
//     surviving logs (matched by its unique value uid; cluster-wide
//     "acked <= durable").
//  4. Real-time order: for two acknowledged writes to one key, if the
//     first returned before the second was invoked, the first's log
//     position — (epoch, seq) — precedes the second's. Log order is the
//     linearization witness.
//
// ReplayCluster then folds the merged logs per key in (epoch, seq) order
// into the model state recovery must agree with.

// ClusterEntry is one applied log entry as audited: the wire entry plus
// the apply context recorded by the node that applied it.
type ClusterEntry struct {
	Origin uint32 // whose log
	Node   uint32 // who applied it
	Seq    uint64
	// EntryEpoch is the epoch the origin coordinated the write at;
	// SenderEpoch the epoch the pushing node claimed at delivery;
	// NodeEpoch the applying node's epoch at apply time.
	EntryEpoch  uint64
	SenderEpoch uint64
	NodeEpoch   uint64
	Key         uint64
	Val         uint64
	Del         bool
}

// ClusterWrite is one acknowledged client write: the unique uid the
// workload stamped into Val, and the recorder's call/return timestamps.
type ClusterWrite struct {
	Key  uint64
	UID  uint64
	Del  bool
	Call uint64
	Ret  uint64
}

// ClusterRecorder collects acknowledged cluster writes on the single
// atomic clock the Wing–Gong recorder uses, so real-time order across
// workers is exact.
type ClusterRecorder struct {
	clock  uint64
	mu     sync.Mutex
	writes []ClusterWrite
}

// NewClusterRecorder returns an empty cluster recorder.
func NewClusterRecorder() *ClusterRecorder { return &ClusterRecorder{} }

// ClusterPending is an invoked-but-unacknowledged cluster write.
type ClusterPending struct {
	key, uid uint64
	del      bool
	call     uint64
}

// Begin timestamps a write invocation.
func (r *ClusterRecorder) Begin(key, uid uint64, del bool) ClusterPending {
	return ClusterPending{key: key, uid: uid, del: del, call: atomic.AddUint64(&r.clock, 1)}
}

// Acked commits an acknowledged write to the history. Unacknowledged
// writes are simply never committed — the protocol makes no promise about
// them.
func (r *ClusterRecorder) Acked(p ClusterPending) {
	ret := atomic.AddUint64(&r.clock, 1)
	r.mu.Lock()
	r.writes = append(r.writes, ClusterWrite{Key: p.key, UID: p.uid, Del: p.del, Call: p.call, Ret: ret})
	r.mu.Unlock()
}

// Writes snapshots the acknowledged history (call with workers joined).
func (r *ClusterRecorder) Writes() []ClusterWrite {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ClusterWrite, len(r.writes))
	copy(out, r.writes)
	return out
}

// logPos orders entries by (epoch, seq): within one epoch a key has one
// origin (checked), whose seq order is its commit order; epochs only move
// forward in real time (the new topology serves only after failover).
type logPos struct {
	epoch, seq uint64
}

func (p logPos) before(q logPos) bool {
	if p.epoch != q.epoch {
		return p.epoch < q.epoch
	}
	return p.seq < q.seq
}

// CheckCluster audits the merged applied logs of the surviving nodes
// against the acknowledged history. entries is the concatenation of every
// survivor's applied logs (all origins); duplicates across survivors are
// expected and must agree.
func CheckCluster(writes []ClusterWrite, entries []ClusterEntry) error {
	// 1. Epoch discipline.
	for _, e := range entries {
		if e.SenderEpoch < e.NodeEpoch {
			return fmt.Errorf("lincheck: split brain: node %d applied origin %d seq %d (key %d) from a sender at epoch %d while at epoch %d",
				e.Node, e.Origin, e.Seq, e.Key, e.SenderEpoch, e.NodeEpoch)
		}
	}

	// Deduplicate by (origin, seq); replicas of one entry must agree.
	type originSeq struct {
		origin uint32
		seq    uint64
	}
	merged := make(map[originSeq]ClusterEntry)
	for _, e := range entries {
		k := originSeq{e.Origin, e.Seq}
		if prev, ok := merged[k]; ok {
			if prev.Key != e.Key || prev.Val != e.Val || prev.Del != e.Del || prev.EntryEpoch != e.EntryEpoch {
				return fmt.Errorf("lincheck: origin %d seq %d diverges across replicas: (key %d val %d del %v epoch %d) vs (key %d val %d del %v epoch %d)",
					e.Origin, e.Seq, prev.Key, prev.Val, prev.Del, prev.EntryEpoch, e.Key, e.Val, e.Del, e.EntryEpoch)
			}
			continue
		}
		merged[k] = e
	}

	// 2. Single ownership per (key, epoch).
	ownerAt := make(map[[2]uint64]uint32)
	for k, e := range merged {
		ok := [2]uint64{e.Key, e.EntryEpoch}
		if prev, seen := ownerAt[ok]; seen && prev != e.Origin {
			return fmt.Errorf("lincheck: split brain: key %d written by origins %d and %d in epoch %d",
				e.Key, prev, k.origin, e.EntryEpoch)
		}
		ownerAt[ok] = e.Origin
	}

	// 3+4. Acked inclusion and real-time order. A retried write can appear
	// in the logs more than once (the unacked first attempt plus the acked
	// retry); all its entries precede the write's return, so the LAST
	// position per uid is a sound witness: for acked a returning before
	// acked b's call, every a-entry precedes every b-entry.
	lastPos := make(map[uint64]logPos)
	for _, e := range merged {
		if e.Del {
			continue // deletes carry no uid in Val on the KV wire
		}
		p := logPos{e.EntryEpoch, e.Seq}
		if cur, ok := lastPos[e.Val]; !ok || cur.before(p) {
			lastPos[e.Val] = p
		}
	}
	byKey := make(map[uint64][]ClusterWrite)
	for _, w := range writes {
		if !w.Del {
			if _, ok := lastPos[w.UID]; !ok {
				return fmt.Errorf("lincheck: acknowledged write key %d uid %d missing from every surviving log", w.Key, w.UID)
			}
		}
		byKey[w.Key] = append(byKey[w.Key], w)
	}
	for key, ws := range byKey {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Call < ws[j].Call })
		for i := 0; i < len(ws); i++ {
			for j := i + 1; j < len(ws); j++ {
				a, b := ws[i], ws[j]
				if a.Ret >= b.Call || a.Del || b.Del {
					continue // concurrent, or unmatchable deletes
				}
				pa, pb := lastPos[a.UID], lastPos[b.UID]
				if !pa.before(pb) {
					return fmt.Errorf("lincheck: key %d: write uid %d returned before uid %d was invoked, but log order is (e%d,s%d) >= (e%d,s%d)",
						key, a.UID, b.UID, pa.epoch, pa.seq, pb.epoch, pb.seq)
				}
			}
		}
	}
	return nil
}

// ReplayCluster folds the deduplicated logs per key in (epoch, seq) order
// into the final model state: key -> value for every surviving key.
func ReplayCluster(entries []ClusterEntry) map[uint64]uint64 {
	type originSeq struct {
		origin uint32
		seq    uint64
	}
	seen := make(map[originSeq]bool)
	var log []ClusterEntry
	for _, e := range entries {
		k := originSeq{e.Origin, e.Seq}
		if seen[k] {
			continue
		}
		seen[k] = true
		log = append(log, e)
	}
	sort.Slice(log, func(i, j int) bool {
		pi, pj := logPos{log[i].EntryEpoch, log[i].Seq}, logPos{log[j].EntryEpoch, log[j].Seq}
		if pi.epoch != pj.epoch || pi.seq != pj.seq {
			return pi.before(pj)
		}
		return log[i].Origin < log[j].Origin
	})
	model := make(map[uint64]uint64)
	for _, e := range log {
		if e.Del {
			delete(model, e.Key)
		} else {
			model[e.Key] = e.Val
		}
	}
	return model
}
