package lincheck

import (
	"strings"
	"testing"
)

func entry(origin uint32, seq, epoch, key, val uint64) ClusterEntry {
	return ClusterEntry{Origin: origin, Node: 0, Seq: seq,
		EntryEpoch: epoch, SenderEpoch: epoch, NodeEpoch: epoch, Key: key, Val: val}
}

// TestCheckClusterAccepts: a clean history — two origins, one failover,
// replicas agreeing, acked writes present and ordered — passes.
func TestCheckClusterAccepts(t *testing.T) {
	entries := []ClusterEntry{
		entry(0, 1, 1, 10, 100),
		entry(0, 1, 1, 10, 100), // replica copy
		entry(1, 1, 1, 20, 200),
		// After failover (epoch 2) origin 0 inherits key 20.
		entry(0, 2, 2, 20, 201),
	}
	// NodeEpoch may exceed SenderEpoch's entry epoch after failover when a
	// survivor applied pre-failover; never the reverse.
	writes := []ClusterWrite{
		{Key: 10, UID: 100, Call: 1, Ret: 2},
		{Key: 20, UID: 200, Call: 3, Ret: 4},
		{Key: 20, UID: 201, Call: 5, Ret: 6},
	}
	if err := CheckCluster(writes, entries); err != nil {
		t.Fatal(err)
	}
	model := ReplayCluster(entries)
	if model[10] != 100 || model[20] != 201 || len(model) != 2 {
		t.Fatalf("replay model %v", model)
	}
}

// TestCheckClusterCatchesStaleEpoch: an entry applied from a sender behind
// the node's epoch is the split-brain signature.
func TestCheckClusterCatchesStaleEpoch(t *testing.T) {
	bad := entry(0, 1, 1, 10, 100)
	bad.SenderEpoch, bad.NodeEpoch = 1, 2
	err := CheckCluster(nil, []ClusterEntry{bad})
	if err == nil || !strings.Contains(err.Error(), "split brain") {
		t.Fatalf("stale-epoch apply not caught: %v", err)
	}
}

// TestCheckClusterCatchesDualOwners: one key written by two origins within
// one epoch.
func TestCheckClusterCatchesDualOwners(t *testing.T) {
	err := CheckCluster(nil, []ClusterEntry{
		entry(0, 1, 1, 10, 100),
		entry(1, 1, 1, 10, 101),
	})
	if err == nil || !strings.Contains(err.Error(), "split brain") {
		t.Fatalf("dual ownership not caught: %v", err)
	}
}

// TestCheckClusterCatchesLostAck: an acknowledged write absent from every
// surviving log violates cluster-wide acked <= durable.
func TestCheckClusterCatchesLostAck(t *testing.T) {
	err := CheckCluster(
		[]ClusterWrite{{Key: 10, UID: 777, Call: 1, Ret: 2}},
		[]ClusterEntry{entry(0, 1, 1, 10, 100)},
	)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("lost ack not caught: %v", err)
	}
}

// TestCheckClusterCatchesReorder: two sequential acked writes whose log
// positions invert real time.
func TestCheckClusterCatchesReorder(t *testing.T) {
	err := CheckCluster(
		[]ClusterWrite{
			{Key: 10, UID: 100, Call: 1, Ret: 2},
			{Key: 10, UID: 101, Call: 3, Ret: 4},
		},
		[]ClusterEntry{
			entry(0, 1, 1, 10, 101), // the LATER write sits earlier in the log
			entry(0, 2, 1, 10, 100),
		},
	)
	if err == nil || !strings.Contains(err.Error(), "log order") {
		t.Fatalf("real-time inversion not caught: %v", err)
	}
}

// TestCheckClusterCatchesDivergedReplicas: two survivors disagreeing about
// one (origin, seq) slot.
func TestCheckClusterCatchesDivergedReplicas(t *testing.T) {
	a := entry(0, 1, 1, 10, 100)
	b := entry(0, 1, 1, 10, 999)
	err := CheckCluster(nil, []ClusterEntry{a, b})
	if err == nil || !strings.Contains(err.Error(), "diverges") {
		t.Fatalf("replica divergence not caught: %v", err)
	}
}

// TestClusterRecorderClock: Acked timestamps strictly order sequential
// writes.
func TestClusterRecorderClock(t *testing.T) {
	r := NewClusterRecorder()
	p1 := r.Begin(1, 100, false)
	r.Acked(p1)
	p2 := r.Begin(1, 101, false)
	r.Acked(p2)
	ws := r.Writes()
	if len(ws) != 2 || ws[0].Ret >= ws[1].Call {
		t.Fatalf("recorder order broken: %+v", ws)
	}
}
