package lincheck

import (
	"fmt"
	"sort"
)

// Snapshot-read checking. The MVCC read path of the object stores promises
// snapshot consistency: every read (a Get, or a whole multi-key Scan)
// observes the committed state as of ONE instant, and — because a reader
// pins the epoch inside its own call — that instant lies within the read's
// own [Call, Ret] window (strong snapshot reads: no read returns data
// staler than its invocation).
//
// CheckSI decides whether a history of writes and reads is consistent with
// that promise. Writes are assumed linearizable (the write path is latched
// and separately checked with the Wing & Gong checker); what is unknown is
// each write's commit instant, which can lie anywhere in the write's
// [Call, Ret]. A read is accepted iff there EXISTS a snapshot instant t in
// its window and an assignment of commit instants under which every one of
// its key observations is exactly "the last committed write at t":
//
//   - An observation of put w's value is feasible at t iff w could have
//     committed by t (w.Call <= t) and no other same-key write is FORCED
//     to commit after w and at-or-before t. Choosing w's commit as late as
//     possible, c = min(w.Ret, t), a write w' is forced into (c, t] iff
//     w'.Call > c and w'.Ret <= t. The feasible t form one interval:
//     [w.Call, max(w.Ret+1, X)) where X = min{w'.Ret : w'.Call > w.Ret}.
//   - An observation of absence is feasible at t iff either no put is
//     forced by t (t < min put Ret — the key can still be initially
//     absent), or some delete d can be the last write at t (the same
//     interval shape, with only puts able to break it).
//
// Feasibility is checked per read: it is a sound necessary condition (any
// true snapshot execution passes), so a reported violation is never a
// false positive. Values must uniquely identify puts — each (key, value)
// pair may be written at most once in a history, which the stress harness
// arranges by encoding worker<<32|seq into every value.

// SIWrite is one completed write of a snapshot history: a put of Val under
// Key, or (Del) a delete of Key. Call/Ret are timestamps from the shared
// Recorder clock; the commit took effect at some unknown instant between
// them.
type SIWrite struct {
	Key  uint64
	Val  uint64 // ignored when Del
	Del  bool
	Call uint64
	Ret  uint64
}

// SIObs is one key observation inside a read: Key held Val (Found) or was
// absent (!Found) in the read's snapshot.
type SIObs struct {
	Key   uint64
	Val   uint64
	Found bool
}

// SIRead is one completed read: every key observation it made, plus its
// call window. A Get contributes one observation; a Scan contributes one
// per key of the scanned range (including absences, so phantoms are
// caught).
type SIRead struct {
	Worker int
	Obs    []SIObs
	Call   uint64
	Ret    uint64
}

// siKeyIndex holds one key's writes in the sorted forms the feasibility
// queries need.
type siKeyIndex struct {
	// all writes sorted by Call, with the suffix-minimum of Ret, answering
	// "min Ret among writes with Call > c" in O(log n).
	all       []SIWrite
	allSufRet []uint64
	// the same two structures restricted to puts (absence feasibility).
	puts       []SIWrite
	putsSufRet []uint64
	dels       []SIWrite
	byVal      map[uint64]SIWrite
	minPutRet  uint64
}

const siInf = ^uint64(0)

func buildSIIndex(writes []SIWrite) (map[uint64]*siKeyIndex, error) {
	idx := make(map[uint64]*siKeyIndex)
	for _, w := range writes {
		if w.Call >= w.Ret {
			return nil, fmt.Errorf("lincheck: SI write %+v has Call >= Ret", w)
		}
		k := idx[w.Key]
		if k == nil {
			k = &siKeyIndex{byVal: make(map[uint64]SIWrite), minPutRet: siInf}
			idx[w.Key] = k
		}
		k.all = append(k.all, w)
		if w.Del {
			k.dels = append(k.dels, w)
			continue
		}
		if _, dup := k.byVal[w.Val]; dup {
			return nil, fmt.Errorf("lincheck: duplicate put of (key %d, val %d): values must identify writes uniquely", w.Key, w.Val)
		}
		k.byVal[w.Val] = w
		k.puts = append(k.puts, w)
		if w.Ret < k.minPutRet {
			k.minPutRet = w.Ret
		}
	}
	for _, k := range idx {
		sortByCall := func(ws []SIWrite) []uint64 {
			sort.Slice(ws, func(i, j int) bool { return ws[i].Call < ws[j].Call })
			suf := make([]uint64, len(ws)+1)
			suf[len(ws)] = siInf
			for i := len(ws) - 1; i >= 0; i-- {
				suf[i] = min(suf[i+1], ws[i].Ret)
			}
			return suf
		}
		k.allSufRet = sortByCall(k.all)
		k.putsSufRet = sortByCall(k.puts)
	}
	return idx, nil
}

// minRetAfter returns the minimum Ret among the Call-sorted writes whose
// Call exceeds c (siInf if none).
func minRetAfter(ws []SIWrite, suf []uint64, c uint64) uint64 {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].Call > c })
	return suf[i]
}

// siInterval is a half-open feasible range [lo, hi) of snapshot instants.
type siInterval struct{ lo, hi uint64 }

// writeInterval is the feasible snapshot range for "w is the last
// committed same-key write": t >= w.Call, and t < max(w.Ret+1, X) where X
// is the earliest Ret among competitors (all writes for a value
// observation, puts only for a delete anchoring an absence) that cannot
// commit before w does.
func writeInterval(w SIWrite, comp []SIWrite, sufRet []uint64) siInterval {
	hi := w.Ret + 1
	if x := minRetAfter(comp, sufRet, w.Ret); x != siInf && x > hi {
		hi = x
	} else if x == siInf {
		hi = siInf
	}
	return siInterval{lo: w.Call, hi: hi}
}

// obsIntervals returns the union of feasible snapshot ranges for one
// observation, clipped later by the caller.
func (k *siKeyIndex) obsIntervals(o SIObs) ([]siInterval, error) {
	if o.Found {
		w, ok := k.byVal[o.Val]
		if !ok {
			return nil, fmt.Errorf("phantom value %d under key %d: no put ever wrote it", o.Val, o.Key)
		}
		return []siInterval{writeInterval(w, k.all, k.allSufRet)}, nil
	}
	var ivs []siInterval
	if k.minPutRet > 0 {
		// Initially absent and no put forced yet.
		ivs = append(ivs, siInterval{lo: 0, hi: k.minPutRet})
	}
	for _, d := range k.dels {
		ivs = append(ivs, writeInterval(d, k.puts, k.putsSufRet))
	}
	return ivs, nil
}

// intersect returns the intersection of two interval unions.
func intersect(a, b []siInterval) []siInterval {
	var out []siInterval
	for _, x := range a {
		for _, y := range b {
			lo, hi := max(x.lo, y.lo), min(x.hi, y.hi)
			if lo < hi {
				out = append(out, siInterval{lo, hi})
			}
		}
	}
	return out
}

// CheckSI reports whether every read in the history is a consistent
// snapshot read (see the package comment above): nil on success, or an
// error naming the first read no snapshot instant can explain.
func CheckSI(writes []SIWrite, reads []SIRead) error {
	idx, err := buildSIIndex(writes)
	if err != nil {
		return err
	}
	empty := siKeyIndex{minPutRet: siInf, allSufRet: []uint64{siInf}, putsSufRet: []uint64{siInf}}
	for _, r := range reads {
		if r.Call >= r.Ret {
			return fmt.Errorf("lincheck: SI read %+v has Call >= Ret", r)
		}
		feasible := []siInterval{{lo: r.Call, hi: r.Ret + 1}}
		for _, o := range r.Obs {
			k := idx[o.Key]
			if k == nil {
				k = &empty
			}
			ivs, err := k.obsIntervals(o)
			if err != nil {
				return fmt.Errorf("lincheck: SI read by worker %d [%d,%d]: %w", r.Worker, r.Call, r.Ret, err)
			}
			feasible = intersect(feasible, ivs)
			if len(feasible) == 0 {
				return fmt.Errorf("lincheck: SI violation: read by worker %d [%d,%d] has no snapshot instant consistent with observation {key %d val %d found %v} and its other observations",
					r.Worker, r.Call, r.Ret, o.Key, o.Val, o.Found)
			}
		}
	}
	return nil
}
