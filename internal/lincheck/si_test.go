package lincheck

import (
	"strings"
	"testing"
)

// Deterministic SI-checker cases: hand-built histories with known
// feasibility. Timestamps are arbitrary unique integers; intervals are
// inclusive [Call, Ret].

func TestSISequentialRead(t *testing.T) {
	writes := []SIWrite{{Key: 7, Val: 1, Call: 1, Ret: 2}}
	reads := []SIRead{{Obs: []SIObs{{Key: 7, Val: 1, Found: true}}, Call: 3, Ret: 4}}
	if err := CheckSI(writes, reads); err != nil {
		t.Fatalf("sequential read rejected: %v", err)
	}
}

func TestSIStaleReadRejected(t *testing.T) {
	// put(7,1) completed, then put(7,2) completed, THEN the read starts —
	// returning the overwritten 1 is exactly the stale-pin bug.
	writes := []SIWrite{
		{Key: 7, Val: 1, Call: 1, Ret: 2},
		{Key: 7, Val: 2, Call: 3, Ret: 4},
	}
	reads := []SIRead{{Obs: []SIObs{{Key: 7, Val: 1, Found: true}}, Call: 5, Ret: 6}}
	err := CheckSI(writes, reads)
	if err == nil {
		t.Fatal("stale read accepted")
	}
	if !strings.Contains(err.Error(), "SI violation") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestSIConcurrentWriteEitherWay(t *testing.T) {
	// A write overlapping the read may or may not be visible.
	writes := []SIWrite{{Key: 7, Val: 1, Call: 1, Ret: 10}}
	for _, obs := range []SIObs{
		{Key: 7, Val: 1, Found: true},
		{Key: 7, Found: false},
	} {
		reads := []SIRead{{Obs: []SIObs{obs}, Call: 2, Ret: 3}}
		if err := CheckSI(writes, reads); err != nil {
			t.Fatalf("concurrent-write observation %+v rejected: %v", obs, err)
		}
	}
}

func TestSIPhantomValueRejected(t *testing.T) {
	writes := []SIWrite{{Key: 7, Val: 1, Call: 1, Ret: 2}}
	reads := []SIRead{{Obs: []SIObs{{Key: 7, Val: 99, Found: true}}, Call: 3, Ret: 4}}
	if err := CheckSI(writes, reads); err == nil {
		t.Fatal("phantom value accepted")
	}
}

func TestSITornSnapshotRejected(t *testing.T) {
	// Both writes completed before the read began; a snapshot seeing key 1's
	// write but missing key 2's would be torn across keys.
	writes := []SIWrite{
		{Key: 1, Val: 1, Call: 1, Ret: 2},
		{Key: 2, Val: 2, Call: 3, Ret: 4},
	}
	reads := []SIRead{{
		Obs:  []SIObs{{Key: 1, Val: 1, Found: true}, {Key: 2, Found: false}},
		Call: 5, Ret: 6,
	}}
	if err := CheckSI(writes, reads); err == nil {
		t.Fatal("torn multi-key snapshot accepted")
	}
}

func TestSIDeleteObservations(t *testing.T) {
	writes := []SIWrite{
		{Key: 7, Val: 1, Call: 1, Ret: 2},
		{Key: 7, Del: true, Call: 3, Ret: 4},
	}
	// Absence after the delete completed: fine.
	ok := []SIRead{{Obs: []SIObs{{Key: 7, Found: false}}, Call: 5, Ret: 6}}
	if err := CheckSI(writes, ok); err != nil {
		t.Fatalf("post-delete absence rejected: %v", err)
	}
	// The deleted value after the delete completed: stale.
	bad := []SIRead{{Obs: []SIObs{{Key: 7, Val: 1, Found: true}}, Call: 5, Ret: 6}}
	if err := CheckSI(writes, bad); err == nil {
		t.Fatal("read of a deleted value accepted")
	}
}

func TestSIUnwrittenKeyAbsent(t *testing.T) {
	reads := []SIRead{{Obs: []SIObs{{Key: 42, Found: false}}, Call: 1, Ret: 2}}
	if err := CheckSI(nil, reads); err != nil {
		t.Fatalf("absence of an unwritten key rejected: %v", err)
	}
	bad := []SIRead{{Obs: []SIObs{{Key: 42, Val: 5, Found: true}}, Call: 1, Ret: 2}}
	if err := CheckSI(nil, bad); err == nil {
		t.Fatal("value under an unwritten key accepted")
	}
}

func TestSIDuplicateValueRejected(t *testing.T) {
	writes := []SIWrite{
		{Key: 7, Val: 1, Call: 1, Ret: 2},
		{Key: 7, Val: 1, Call: 3, Ret: 4},
	}
	if err := CheckSI(writes, nil); err == nil {
		t.Fatal("duplicate (key, value) puts accepted")
	}
}
