package lincheck_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"potgo/internal/lincheck"
	"potgo/internal/objstore"
	"potgo/internal/pmem"
	"potgo/internal/randtest"
)

// The live stress: N workers fire add/remove/has/transfer at the Multi
// store's five persistent structures, every completed call is recorded,
// and the checker proves the history linearizable against the obvious
// sequential specification. Partitioning is per key: a key's state is the
// set of structures currently holding it (a transfer touches two
// structures but one key, so per-key sub-histories stay self-contained —
// Herlihy & Wing locality does the rest).

const (
	msAdd = byte(iota + 1)
	msRemove
	msHas
	msXfer
)

// msIn is comparable (the checker compares inputs/outputs with ==).
type msIn struct {
	Op   byte
	Kind int8 // structure for add/remove/has; source for xfer
	To   int8 // destination for xfer
	Key  uint64
}

func multiModel() lincheck.Model {
	return lincheck.Model{
		Init: func() any { return uint8(0) },
		Step: func(s, in any) (any, any) {
			mask := s.(uint8)
			i := in.(msIn)
			bit := uint8(1) << uint(i.Kind)
			switch i.Op {
			case msAdd:
				if mask&bit != 0 {
					return mask, false
				}
				return mask | bit, true
			case msRemove:
				if mask&bit == 0 {
					return mask, false
				}
				return mask &^ bit, true
			case msHas:
				return mask, mask&bit != 0
			case msXfer:
				tbit := uint8(1) << uint(i.To)
				if mask&bit == 0 || mask&tbit != 0 {
					return mask, false
				}
				return mask&^bit | tbit, true
			}
			panic(fmt.Sprintf("unknown op %d", i.Op))
		},
		Repr:      func(s any) string { return string([]byte{s.(uint8)}) },
		Partition: func(op lincheck.Op) any { return op.Input.(msIn).Key },
	}
}

func TestMultiLinearizable(t *testing.T) {
	const workers = 8
	const keySpace = 48
	perStruct := 10000
	if testing.Short() {
		perStruct = 1000
	}
	// Uniform structure choice spreads total ops evenly; pad by 25% so
	// every structure clears the per-structure floor with margin.
	totalOps := perStruct * len(objstore.Kinds) * 5 / 4

	sh, err := pmem.NewSharded(pmem.NewStore(), 8, 1)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	m, err := objstore.CreateMulti(sh, "lin")
	if err != nil {
		t.Fatalf("CreateMulti: %v", err)
	}

	// Worker streams derive from the one master seed, so a -seed override
	// replays the entire run, not just the shuffle of worker seeds.
	rng := randtest.New(t, 2024)
	seeds := make([]int64, workers)
	for w := range seeds {
		seeds[w] = rng.Int63()
	}

	rec := lincheck.NewRecorder()
	errs := make([]error, workers)
	perWorker := totalOps / workers

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seeds[w]))
			for i := 0; i < perWorker; i++ {
				kind := int8(r.Intn(len(objstore.Kinds)))
				key := uint64(r.Intn(keySpace) + 1)
				var in msIn
				switch r.Intn(8) {
				case 0, 1, 2:
					in = msIn{Op: msAdd, Kind: kind, Key: key}
				case 3, 4:
					in = msIn{Op: msRemove, Kind: kind, Key: key}
				case 5, 6:
					in = msIn{Op: msHas, Kind: kind, Key: key}
				case 7:
					to := int8(r.Intn(len(objstore.Kinds)))
					if to == kind {
						to = (to + 1) % int8(len(objstore.Kinds))
					}
					in = msIn{Op: msXfer, Kind: kind, To: to, Key: key}
				}

				p := rec.Begin(w, in)
				var out bool
				var err error
				switch in.Op {
				case msAdd:
					out, err = m.Add(int(in.Kind), in.Key)
				case msRemove:
					out, err = m.Remove(int(in.Kind), in.Key)
				case msHas:
					out, err = m.Has(int(in.Kind), in.Key)
				case msXfer:
					out, err = m.Transfer(int(in.Kind), int(in.To), in.Key)
				}
				if err != nil {
					errs[w] = fmt.Errorf("op %d %+v: %w", i, in, err)
					return
				}
				rec.End(p, out)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	perStructOps := make([]int, len(objstore.Kinds))
	history := rec.History()
	for _, op := range history {
		in := op.Input.(msIn)
		perStructOps[in.Kind]++
		if in.Op == msXfer {
			perStructOps[in.To]++
		}
	}
	t.Logf("history: %d ops total, per structure %v", len(history), perStructOps)
	if !testing.Short() {
		for kind, n := range perStructOps {
			if n < 10000 {
				t.Fatalf("structure %s saw %d ops, below the 10k stress floor", objstore.Kinds[kind], n)
			}
		}
	}

	if err := lincheck.Check(multiModel(), history); err != nil {
		t.Fatalf("history not linearizable: %v", err)
	}

	// The store itself must also still be internally consistent.
	if _, err := m.Check(); err != nil {
		t.Fatalf("structure invariants after stress: %v", err)
	}
}
