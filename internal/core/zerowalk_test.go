package core

import (
	"testing"

	"potgo/internal/oid"
	"potgo/internal/polb"
)

func TestZeroWalkChargesCAMOnly(t *testing.T) {
	f := newFixture(t, 4)
	cfg := DefaultConfig(polb.Pipelined)
	cfg.POTWalkLatency = ZeroWalk
	tr := New(cfg, f.table, f.as)
	res, err := tr.Translate(oid.New(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Cold translation: the CAM access (3) is still charged, the walk is
	// free — the Figure 12 "ideal POT walk" point.
	if res.Latency != 3 || res.WalkLat != 0 || res.CAMLat != 3 {
		t.Errorf("ZeroWalk cold: latency=%d cam=%d walk=%d", res.Latency, res.CAMLat, res.WalkLat)
	}
	if tr.Stats().POTWalks != 1 {
		t.Error("the walk still happens, it just costs nothing")
	}
}

func TestExplicitWalkLatency(t *testing.T) {
	f := newFixture(t, 4)
	cfg := DefaultConfig(polb.Pipelined)
	cfg.POTWalkLatency = 500
	tr := New(cfg, f.table, f.as)
	res, err := tr.Translate(oid.New(4, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 503 {
		t.Errorf("latency = %d, want 3 + 500", res.Latency)
	}
}
