package core

import (
	"testing"

	"potgo/internal/oid"
	"potgo/internal/polb"
	"potgo/internal/pot"
	"potgo/internal/vm"
)

type fixture struct {
	as    *vm.AddressSpace
	table *pot.Table
	pools map[oid.PoolID]vm.Region
}

func newFixture(t *testing.T, pools ...oid.PoolID) *fixture {
	t.Helper()
	as := vm.NewAddressSpace(42)
	table, err := pot.New(as, 1024)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{as: as, table: table, pools: map[oid.PoolID]vm.Region{}}
	for _, p := range pools {
		r, err := as.Map(8 * vm.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := table.Insert(p, r.Base); err != nil {
			t.Fatal(err)
		}
		f.pools[p] = r
	}
	return f
}

func TestDefaultConfigs(t *testing.T) {
	p := DefaultConfig(polb.Pipelined)
	if p.POLBSize != 32 || p.POLBLatency != 3 || p.POTWalkLatency != 30 {
		t.Errorf("Pipelined defaults = %+v", p)
	}
	q := DefaultConfig(polb.Parallel)
	if q.POTWalkLatency != 60 {
		t.Errorf("Parallel walk latency = %d, want 60", q.POTWalkLatency)
	}
}

func TestPipelinedTranslationLatencies(t *testing.T) {
	f := newFixture(t, 7)
	tr := New(DefaultConfig(polb.Pipelined), f.table, f.as)
	o := oid.New(7, 0x123)

	// Cold: POLB access (3) + POT walk (30).
	res, err := tr.Translate(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 33 {
		t.Errorf("cold latency = %d, want 33", res.Latency)
	}
	if res.POLBHit {
		t.Error("cold translation cannot hit the POLB")
	}
	if res.VA != f.pools[7].Base+0x123 {
		t.Errorf("VA = %#x", res.VA)
	}
	if res.BypassTLB {
		t.Error("Pipelined must go through the TLB")
	}

	// Warm: POLB access only.
	res, _ = tr.Translate(o.Add(64))
	if res.Latency != 3 || !res.POLBHit {
		t.Errorf("warm: latency = %d, hit = %t", res.Latency, res.POLBHit)
	}
	if res.VA != f.pools[7].Base+0x123+64 {
		t.Errorf("warm VA = %#x", res.VA)
	}

	s := tr.Stats()
	if s.Translations != 2 || s.POLBHits != 1 || s.POLBMisses != 1 || s.POTWalks != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.POLBMissRate() != 0.5 {
		t.Errorf("miss rate = %v", s.POLBMissRate())
	}
}

func TestParallelTranslationLatencies(t *testing.T) {
	f := newFixture(t, 9)
	tr := New(DefaultConfig(polb.Parallel), f.table, f.as)
	o := oid.New(9, 0x2345) // page 2 of the pool

	// Cold: POT walk + page walk = 60, no POLB-access charge.
	res, err := tr.Translate(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 60 {
		t.Errorf("cold latency = %d, want 60", res.Latency)
	}
	if !res.BypassTLB {
		t.Error("Parallel yields physical addresses (no TLB)")
	}
	wantPA, _ := f.as.Translate(f.pools[9].Base + 0x2345)
	if res.PA != wantPA {
		t.Errorf("PA = %#x, want %#x", res.PA, wantPA)
	}

	// Warm same page: free.
	res, _ = tr.Translate(oid.New(9, 0x2FF0))
	if res.Latency != 0 || !res.POLBHit || !res.BypassTLB {
		t.Errorf("warm: %+v", res)
	}
	if got, _ := f.as.Translate(f.pools[9].Base + 0x2FF0); res.PA != got {
		t.Errorf("warm PA = %#x, want %#x", res.PA, got)
	}
	if res.VA != f.pools[9].Base+0x2FF0 {
		t.Errorf("warm VA = %#x", res.VA)
	}

	// Different page of the same pool: miss again (the Parallel POLB
	// tracks pages, not pools).
	res, _ = tr.Translate(oid.New(9, 0x4000))
	if res.POLBHit {
		t.Error("new page must miss under Parallel")
	}
	if res.Latency != 60 {
		t.Errorf("page-miss latency = %d", res.Latency)
	}
}

func TestIdealChargesNothing(t *testing.T) {
	f := newFixture(t, 3)
	cfg := DefaultConfig(polb.Pipelined)
	cfg.Ideal = true
	tr := New(cfg, f.table, f.as)
	res, err := tr.Translate(oid.New(3, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != 0 {
		t.Errorf("ideal cold latency = %d, want 0", res.Latency)
	}
	res, _ = tr.Translate(oid.New(3, 16))
	if res.Latency != 0 {
		t.Errorf("ideal warm latency = %d, want 0", res.Latency)
	}
	if res.VA != f.pools[3].Base+16 {
		t.Errorf("ideal must still translate correctly: %#x", res.VA)
	}
}

func TestZeroConfigGetsDefaults(t *testing.T) {
	f := newFixture(t, 1)
	tr := New(Config{Design: polb.Parallel, POLBSize: 4}, f.table, f.as)
	if tr.Config().POLBLatency != 3 || tr.Config().POTWalkLatency != 60 {
		t.Errorf("zero-valued latencies must default: %+v", tr.Config())
	}
}

func TestExceptions(t *testing.T) {
	f := newFixture(t, 5)
	tr := New(DefaultConfig(polb.Pipelined), f.table, f.as)
	if _, err := tr.Translate(oid.Null); err == nil {
		t.Error("null dereference must fail")
	}
	if _, err := tr.Translate(oid.New(99, 0)); err == nil {
		t.Error("unmapped pool must raise the POT exception")
	}
	if tr.Stats().Exceptions != 2 {
		t.Errorf("exceptions = %d", tr.Stats().Exceptions)
	}
}

func TestInvalidatePool(t *testing.T) {
	f := newFixture(t, 5, 6)
	tr := New(DefaultConfig(polb.Pipelined), f.table, f.as)
	tr.Translate(oid.New(5, 0))
	tr.Translate(oid.New(6, 0))
	tr.InvalidatePool(5)
	res, _ := tr.Translate(oid.New(6, 8))
	if !res.POLBHit {
		t.Error("pool 6 must survive invalidation of pool 5")
	}
	res, _ = tr.Translate(oid.New(5, 8))
	if res.POLBHit {
		t.Error("pool 5 must have been invalidated")
	}
}

func TestNoPOLBAlwaysWalks(t *testing.T) {
	f := newFixture(t, 2)
	cfg := DefaultConfig(polb.Pipelined)
	cfg.POLBSize = 0
	tr := New(cfg, f.table, f.as)
	for i := 0; i < 5; i++ {
		res, err := tr.Translate(oid.New(2, uint32(i*8)))
		if err != nil {
			t.Fatal(err)
		}
		if res.POLBHit {
			t.Error("size-0 POLB can never hit")
		}
		if res.Latency != 33 {
			t.Errorf("latency = %d, want 33 (3 + 30 walk)", res.Latency)
		}
	}
	if tr.Stats().POTWalks != 5 {
		t.Errorf("walks = %d", tr.Stats().POTWalks)
	}
}

func TestResetStats(t *testing.T) {
	f := newFixture(t, 2)
	tr := New(DefaultConfig(polb.Pipelined), f.table, f.as)
	tr.Translate(oid.New(2, 0))
	tr.ResetStats()
	if tr.Stats().Translations != 0 || tr.POLB().Stats().Accesses() != 0 {
		t.Error("ResetStats must zero translator and POLB counters")
	}
	// POLB contents survive: next translation hits.
	res, _ := tr.Translate(oid.New(2, 8))
	if !res.POLBHit {
		t.Error("POLB contents must survive stats reset")
	}
}

func TestPOLBMissRateEmpty(t *testing.T) {
	var s Stats
	if s.POLBMissRate() != 0 {
		t.Error("empty miss rate = 0")
	}
}
