// Package core glues the paper's contribution together: the hardware
// ObjectID-translation engine that the nvld/nvst instructions engage.
//
// A Translator owns a POLB and consults the process's POT on misses,
// implementing both the Pipelined and Parallel designs of paper §4 and the
// "ideal" machine of the evaluation (translation with zero added latency),
// and accounting every cycle the way the timing models need it:
//
//	Pipelined: every nvld/nvst pays the POLB access latency (3 cycles) in
//	  the AGEN stage; a POLB miss stalls AGEN for the fixed POT-walk
//	  latency (30 cycles). The output is a *virtual* address, which then
//	  takes the ordinary TLB + cache path.
//
//	Parallel: a POLB hit costs nothing extra (the look-up overlaps the
//	  VIPT L1 access) and yields a *physical* address, skipping the TLB.
//	  A miss pays the combined POT-walk + page-table-walk latency
//	  (60 cycles), after which the physical translation is installed.
//
// A POT miss models the paper's exception: the OS is invoked; in this
// simulator it surfaces as an error because the workloads always map pools
// before use.
package core

import (
	"fmt"

	"potgo/internal/oid"
	"potgo/internal/polb"
	"potgo/internal/pot"
	"potgo/internal/vm"
)

// Config selects the translation microarchitecture and its latencies.
// Zero-value latencies mean "use the paper defaults".
type Config struct {
	// Design picks Pipelined or Parallel (paper Figure 6).
	Design polb.Design
	// POLBSize is the POLB entry count; 0 models "no POLB" (every
	// translation walks the POT).
	POLBSize int
	// POLBSets is the set count for the set-associative ablation; 0 or 1
	// builds the paper's fully-associative CAM.
	POLBSets int
	// POLBLatency is the CAM access latency in cycles (paper: 3).
	POLBLatency uint64
	// POTWalkLatency is the fixed POLB-miss service latency in cycles
	// (paper: 30 for Pipelined; 60 for Parallel, covering the POT walk
	// plus the page-table walk). 0 means "use the design default"; use
	// ZeroWalk for a free walk (the Fig. 12 ideal point).
	POTWalkLatency int64
	// Ideal charges no POLB access latency and no POT-walk penalty — the
	// red-dot upper bound in the paper's Figure 9.
	Ideal bool
	// ProbeWalk replaces the fixed POT-walk latency with a
	// probe-accurate one: each entry the hardware walker examines is
	// charged as a real (cached) memory access via the attached Walker.
	// Ablation for the paper's fixed-latency assumption (§5.1 argues the
	// fixed 30 cycles is pessimistic because POT entries cache well).
	ProbeWalk bool
}

// Walker charges the memory accesses of a hardware POT walk (implemented by
// the memory hierarchy).
type Walker interface {
	// WalkAccess returns the latency of one walker access to va.
	WalkAccess(va uint64) uint64
}

// ZeroWalk as POTWalkLatency requests a free POT walk while keeping the
// POLB access latency (the Fig. 12 zero-penalty point).
const ZeroWalk int64 = -1

// DefaultConfig returns the paper's configuration for the given design with
// a 32-entry POLB.
func DefaultConfig(design polb.Design) Config {
	cfg := Config{
		Design:      design,
		POLBSize:    polb.DefaultEntries,
		POLBLatency: 3,
	}
	if design == polb.Parallel {
		cfg.POTWalkLatency = 60
	} else {
		cfg.POTWalkLatency = 30
	}
	return cfg
}

// Result describes one hardware translation.
type Result struct {
	// VA is the translated virtual address (always available; Parallel
	// computes it for the fill path and functional access).
	VA uint64
	// PA is the physical address. For Parallel it comes straight from
	// the POLB/fill; for Pipelined it is resolved later by the TLB path,
	// so the timing model must not use it before charging the TLB.
	PA uint64
	// CAMLat is the POLB access latency (charged only by the Pipelined
	// design, whose CAM sits serially in AGEN; the CAM is itself
	// pipelined, so this extends load-to-use latency without blocking
	// issue).
	CAMLat uint64
	// WalkLat is the POT-walk penalty on a POLB miss (plus the page-table
	// walk under Parallel). The walk stalls address generation.
	WalkLat uint64
	// Latency is the total added translation cost: CAMLat + WalkLat.
	Latency uint64
	// POLBHit reports whether the POLB satisfied the translation.
	POLBHit bool
	// BypassTLB is set when the translation already yielded a physical
	// address (Parallel hit or Parallel fill), so the TLB is not
	// consulted.
	BypassTLB bool
}

// Stats counts translator activity.
type Stats struct {
	Translations uint64
	POLBHits     uint64
	POLBMisses   uint64
	POTWalks     uint64
	Exceptions   uint64
	// WalkCycles is the total stall charged for POT walks (the WalkLat
	// sum over all misses), the translation half of a CPI stack.
	WalkCycles uint64
}

// POLBMissRate returns POLB misses / translations.
func (s Stats) POLBMissRate() float64 {
	if s.Translations == 0 {
		return 0
	}
	return float64(s.POLBMisses) / float64(s.Translations)
}

// Translator is the per-core ObjectID translation engine.
type Translator struct {
	cfg    Config
	polb   *polb.POLB
	pot    *pot.Table
	as     *vm.AddressSpace
	walker Walker
	stats  Stats
}

// New builds a Translator over the process's POT and address space.
func New(cfg Config, table *pot.Table, as *vm.AddressSpace) *Translator {
	def := DefaultConfig(cfg.Design)
	if cfg.POLBLatency == 0 {
		cfg.POLBLatency = def.POLBLatency
	}
	switch {
	case cfg.POTWalkLatency == ZeroWalk:
		cfg.POTWalkLatency = 0
	case cfg.POTWalkLatency == 0 && !cfg.Ideal:
		cfg.POTWalkLatency = def.POTWalkLatency
	}
	lb := polb.New(cfg.Design, cfg.POLBSize)
	if cfg.POLBSets > 1 {
		ways := cfg.POLBSize / cfg.POLBSets
		var err error
		lb, err = polb.NewSetAssociative(cfg.Design, cfg.POLBSets, ways)
		if err != nil {
			panic(err) // geometry is experiment configuration, not user input
		}
	}
	return &Translator{
		cfg:  cfg,
		polb: lb,
		pot:  table,
		as:   as,
	}
}

// SetWalker attaches the memory hierarchy used by the probe-accurate walk
// model (no-op relevance unless Config.ProbeWalk is set).
func (t *Translator) SetWalker(w Walker) { t.walker = w }

// Config returns the translator's configuration.
func (t *Translator) Config() Config { return t.cfg }

// POLB exposes the look-aside buffer (for pool-close invalidation and
// statistics).
func (t *Translator) POLB() *polb.POLB { return t.polb }

// Translate services one nvld/nvst ObjectID look-up.
func (t *Translator) Translate(o oid.OID) (Result, error) {
	t.stats.Translations++
	if o.IsNull() {
		t.stats.Exceptions++
		return Result{}, fmt.Errorf("core: dereference of NULL ObjectID %v", o)
	}

	var res Result
	if !t.cfg.Ideal && t.cfg.Design == polb.Pipelined {
		// The CAM access sits in AGEN ahead of the TLB/L1.
		res.CAMLat = t.cfg.POLBLatency
		res.Latency += t.cfg.POLBLatency
	}

	if data, hit := t.polb.Lookup(o); hit {
		t.stats.POLBHits++
		res.POLBHit = true
		if t.cfg.Design == polb.Pipelined {
			res.VA = data + uint64(o.Offset())
		} else {
			res.PA = data | o.PageOffset()
			res.BypassTLB = true
			// VA is still derivable for functional accesses.
			va, err := t.vaOf(o)
			if err != nil {
				return Result{}, err
			}
			res.VA = va
		}
		return res, nil
	}

	// POLB miss: hardware POT walk (paper Figure 7).
	t.stats.POLBMisses++
	t.stats.POTWalks++
	vbase, probes, err := t.pot.Walk(o.Pool())
	switch {
	case t.cfg.Ideal:
		// Free.
	case t.cfg.ProbeWalk && t.walker != nil && err == nil:
		// Probe-accurate: each examined entry is one memory access by
		// the hardware walker; Parallel additionally pays its
		// page-table walk as the fixed difference between the two
		// designs' default penalties.
		for _, va := range t.pot.ProbeAddrs(o.Pool(), probes) {
			res.WalkLat += t.walker.WalkAccess(va)
		}
		if t.cfg.Design == polb.Parallel {
			res.WalkLat += 30
		}
		res.Latency += res.WalkLat
	case t.cfg.POTWalkLatency > 0:
		res.WalkLat = uint64(t.cfg.POTWalkLatency)
		res.Latency += uint64(t.cfg.POTWalkLatency)
	}
	t.stats.WalkCycles += res.WalkLat
	if err != nil {
		t.stats.Exceptions++
		return Result{}, fmt.Errorf("core: pool %d: %w", o.Pool(), err)
	}
	res.VA = vbase + uint64(o.Offset())

	if t.cfg.Design == polb.Pipelined {
		t.polb.Fill(o, vbase)
		return res, nil
	}

	// Parallel: the walk continues through the page table to a physical
	// frame; the POLB caches the frame for this (pool, page) pair.
	pa, ok := t.as.Translate(res.VA)
	if !ok {
		t.stats.Exceptions++
		return Result{}, fmt.Errorf("core: pool %d maps to unmapped page at %#x", o.Pool(), res.VA)
	}
	res.PA = pa
	res.BypassTLB = true
	t.polb.Fill(o, pa&^uint64(vm.PageMask))
	return res, nil
}

// vaOf resolves an ObjectID to a virtual address via the POT without
// charging hardware statistics (used on Parallel hits where the functional
// layer still wants the VA).
func (t *Translator) vaOf(o oid.OID) (uint64, error) {
	vbase, ok := t.pot.Lookup(o.Pool())
	if !ok {
		return 0, fmt.Errorf("core: pool %d vanished from POT", o.Pool())
	}
	return vbase + uint64(o.Offset()), nil
}

// InvalidatePool drops POLB entries for a pool (called on pool_close).
func (t *Translator) InvalidatePool(p oid.PoolID) { t.polb.InvalidatePool(p) }

// Stats snapshots translation counters.
func (t *Translator) Stats() Stats { return t.stats }

// ResetStats zeroes counters (and the POLB's own counters) after warm-up.
func (t *Translator) ResetStats() {
	t.stats = Stats{}
	t.polb.ResetStats()
}
