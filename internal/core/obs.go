package core

import "potgo/internal/obs"

// PublishMetrics adds the translation engine's counters to the registry:
// the translator's own activity under "core.", the walk-cycle total under
// "pot.walk_cycles" (core is where walk stalls are charged), and the POLB's
// counters under their design-qualified namespace. Safe on a nil registry.
func (t *Translator) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := t.stats
	reg.Counter("core.translations").Add(s.Translations)
	reg.Counter("core.polb_hits").Add(s.POLBHits)
	reg.Counter("core.polb_misses").Add(s.POLBMisses)
	reg.Counter("core.pot_walks").Add(s.POTWalks)
	reg.Counter("core.exceptions").Add(s.Exceptions)
	reg.Counter("pot.walk_cycles").Add(s.WalkCycles)
	t.polb.PublishMetrics(reg)
	if t.pot != nil {
		t.pot.PublishMetrics(reg)
	}
}
