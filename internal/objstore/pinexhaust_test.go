package objstore

import (
	"testing"

	"potgo/internal/pmem"
)

// TestKVPinExhaustionFallback saturates the entire reader pin registry and
// proves the MVCC read path degrades, not breaks: Get and Scan fall back
// to the latched path with correct results, the fallback counter records
// every forced detour, and releasing the pins restores the snapshot path.
func TestKVPinExhaustionFallback(t *testing.T) {
	kv := newKV(t, 4)
	const keys = 50
	for k := uint64(1); k <= keys; k++ {
		if _, err := kv.Put(k, k*10); err != nil {
			t.Fatalf("Put %d: %v", k, err)
		}
	}

	// Claim every one of the registry's slots. The registry is fixed-size
	// by design — pins are cache-line-sized CAS slots, not a free list —
	// so the 65th reader must get nil, never block.
	sh := kv.Sharded()
	var pins []*pmem.PinSlot
	for {
		p := sh.Pin()
		if p == nil {
			break
		}
		pins = append(pins, p)
	}
	defer func() {
		for _, p := range pins {
			sh.Unpin(p)
		}
	}()
	if len(pins) != pmem.DefaultPinSlots {
		t.Fatalf("registry yielded %d pins, want %d", len(pins), pmem.DefaultPinSlots)
	}
	if p := sh.Pin(); p != nil {
		sh.Unpin(p)
		t.Fatal("Pin succeeded on a saturated registry")
	}

	// Reads under exhaustion: latched fallback, same answers.
	if got := kv.SnapshotFallbacks(); got != 0 {
		t.Fatalf("fallbacks before exhaustion = %d, want 0", got)
	}
	for k := uint64(1); k <= keys; k++ {
		v, ok, err := kv.Get(k)
		if err != nil || !ok || v != k*10 {
			t.Fatalf("Get %d under exhaustion: %d,%v,%v", k, v, ok, err)
		}
	}
	if got := kv.SnapshotFallbacks(); got != keys {
		t.Fatalf("fallbacks after %d gets = %d, want %d", keys, got, keys)
	}
	scan, err := kv.Scan(0, keys+10)
	if err != nil {
		t.Fatalf("Scan under exhaustion: %v", err)
	}
	if len(scan) != keys {
		t.Fatalf("Scan under exhaustion returned %d pairs, want %d", len(scan), keys)
	}
	for i, kvp := range scan {
		if kvp.Key != uint64(i+1) || kvp.Val != kvp.Key*10 {
			t.Fatalf("scan[%d] = %+v", i, kvp)
		}
	}
	if got := kv.SnapshotFallbacks(); got != keys+1 {
		t.Fatalf("fallbacks after scan = %d, want %d", got, keys+1)
	}

	// Release the registry: reads ride the snapshot path again and the
	// counter freezes.
	for _, p := range pins {
		sh.Unpin(p)
	}
	pins = nil
	for k := uint64(1); k <= keys; k++ {
		v, ok, err := kv.Get(k)
		if err != nil || !ok || v != k*10 {
			t.Fatalf("Get %d after release: %d,%v,%v", k, v, ok, err)
		}
	}
	if _, err := kv.Scan(0, keys+10); err != nil {
		t.Fatalf("Scan after release: %v", err)
	}
	if got := kv.SnapshotFallbacks(); got != keys+1 {
		t.Fatalf("fallbacks grew to %d after the registry drained, want %d", got, keys+1)
	}
}
