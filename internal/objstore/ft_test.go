package objstore

import (
	"errors"
	"testing"

	"potgo/internal/pmem"
	"potgo/internal/randtest"
)

func newKVFT(t *testing.T, nshards int) *KV {
	t.Helper()
	sh, err := pmem.NewSharded(pmem.NewStore(), nshards, 1)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	kv, err := CreateKVFT(sh, "kv")
	if err != nil {
		t.Fatalf("CreateKVFT: %v", err)
	}
	return kv
}

// TestKVFTGetRepairsInline corrupts tree nodes under VerifyOnRead and
// checks that Get transparently repairs whatever its traversal trips
// over, and that a final scrub mops up nodes no lookup happened to
// visit.
func TestKVFTGetRepairsInline(t *testing.T) {
	kv := newKVFT(t, 4)
	const nkeys = 200
	for k := uint64(0); k < nkeys; k++ {
		if _, err := kv.Put(k, k*3+1); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	sh := kv.Sharded()
	if err := sh.SyncAll(); err != nil {
		t.Fatal(err)
	}
	sh.SetVerifyOnRead(true)
	seed := uint64(randtest.Seed(t, 67))
	t.Logf("corruption seed %d", seed)
	faults, err := sh.CorruptObjects(4, pmem.CorruptDetect, seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("injected %d faults", len(faults))
	for k := uint64(0); k < nkeys; k++ {
		v, ok, err := kv.Get(k)
		if err != nil {
			t.Fatalf("Get(%d) after corruption: %v", k, err)
		}
		if !ok || v != k*3+1 {
			t.Fatalf("Get(%d) = %d,%v want %d,true", k, v, ok, k*3+1)
		}
	}
	st, err := sh.ScrubAll()
	if err != nil {
		t.Fatal(err)
	}
	if st.Unrepairable != 0 {
		t.Fatalf("scrub after inline repairs: %+v", st)
	}
}

// TestKVFTUnrepairableNeverLies makes parity stale (writes with
// maintenance disabled) so injected flips cannot be repaired, then
// checks that Get never returns wrong data: every lookup either yields
// the true value or surfaces ErrCorrupt.
func TestKVFTUnrepairableNeverLies(t *testing.T) {
	kv := newKVFT(t, 2)
	const nkeys = 128
	for k := uint64(0); k < nkeys; k++ {
		if _, err := kv.Put(k, k<<8|4); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	sh := kv.Sharded()
	// Overwrite every key with parity maintenance off: checksums stay
	// current, the parity column goes stale, so a later flip in any
	// overwritten line is detectable but not reconstructible.
	sh.MutateNoParity(true)
	for k := uint64(0); k < nkeys; k++ {
		if _, err := kv.Put(k, k<<8|5); err != nil {
			t.Fatalf("overwrite Put(%d): %v", k, err)
		}
	}
	if err := sh.SyncAll(); err != nil {
		t.Fatal(err)
	}
	sh.SetVerifyOnRead(true)
	seed := uint64(randtest.Seed(t, 71))
	t.Logf("corruption seed %d", seed)
	if _, err := sh.CorruptObjects(3, pmem.CorruptDetect, seed); err != nil {
		t.Fatal(err)
	}
	sawCorrupt := 0
	for k := uint64(0); k < nkeys; k++ {
		v, ok, err := kv.Get(k)
		if err != nil {
			if !errors.Is(err, pmem.ErrCorrupt) {
				t.Fatalf("Get(%d): unexpected error %v", k, err)
			}
			sawCorrupt++
			continue
		}
		if !ok || v != k<<8|5 {
			t.Fatalf("Get(%d) = %d,%v want %d,true — silent corruption", k, v, ok, k<<8|5)
		}
	}
	t.Logf("%d lookups surfaced ErrCorrupt", sawCorrupt)
	if sawCorrupt == 0 {
		t.Fatal("no lookup tripped over the injected faults; test exercised nothing")
	}
}
