package objstore

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"potgo/internal/nvmsim"
	"potgo/internal/pmem"
	"potgo/internal/randtest"
)

func newKV(t *testing.T, nshards int) *KV {
	t.Helper()
	sh, err := pmem.NewSharded(pmem.NewStore(), nshards, 1)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	kv, err := CreateKV(sh, "kv")
	if err != nil {
		t.Fatalf("CreateKV: %v", err)
	}
	return kv
}

func newMulti(t *testing.T) *Multi {
	t.Helper()
	sh, err := pmem.NewSharded(pmem.NewStore(), 4, 1)
	if err != nil {
		t.Fatalf("NewSharded: %v", err)
	}
	m, err := CreateMulti(sh, "ms")
	if err != nil {
		t.Fatalf("CreateMulti: %v", err)
	}
	return m
}

func TestKVBasic(t *testing.T) {
	kv := newKV(t, 4)

	if _, ok, err := kv.Get(7); err != nil || ok {
		t.Fatalf("Get on empty store: ok=%v err=%v", ok, err)
	}
	created, err := kv.Put(7, 70)
	if err != nil || !created {
		t.Fatalf("first Put: created=%v err=%v", created, err)
	}
	created, err = kv.Put(7, 71)
	if err != nil || created {
		t.Fatalf("overwriting Put: created=%v err=%v", created, err)
	}
	if v, ok, err := kv.Get(7); err != nil || !ok || v != 71 {
		t.Fatalf("Get(7) = %d,%v,%v want 71,true,nil", v, ok, err)
	}
	existed, err := kv.Delete(7)
	if err != nil || !existed {
		t.Fatalf("Delete: existed=%v err=%v", existed, err)
	}
	if existed, err = kv.Delete(7); err != nil || existed {
		t.Fatalf("double Delete: existed=%v err=%v", existed, err)
	}

	for k := uint64(1); k <= 20; k++ {
		if _, err := kv.Put(k, k*10); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	got, err := kv.Scan(5, 7)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(got) != 7 {
		t.Fatalf("Scan returned %d pairs, want 7", len(got))
	}
	for i, pair := range got {
		want := uint64(5 + i)
		if pair.Key != want || pair.Val != want*10 {
			t.Fatalf("Scan[%d] = {%d,%d}, want {%d,%d}", i, pair.Key, pair.Val, want, want*10)
		}
	}
	if n, err := kv.Check(); err != nil || n != 20 {
		t.Fatalf("Check = %d,%v want 20,nil", n, err)
	}
}

func TestKVBatchCrossShard(t *testing.T) {
	kv := newKV(t, 4)
	for k := uint64(1); k <= 8; k++ {
		if _, err := kv.Put(k, k); err != nil {
			t.Fatal(err)
		}
	}
	// One batch touching every shard: upserts and deletes together.
	err := kv.Batch([]BatchOp{
		{Key: 1, Val: 100},
		{Key: 2, Del: true},
		{Key: 3, Val: 300},
		{Key: 4, Del: true},
		{Key: 101, Val: 1010}, // created by the batch
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	want := map[uint64]uint64{1: 100, 3: 300, 5: 5, 6: 6, 7: 7, 8: 8, 101: 1010}
	for k := uint64(1); k <= 101; k++ {
		v, ok, err := kv.Get(k)
		if err != nil {
			t.Fatalf("Get(%d): %v", k, err)
		}
		wv, wok := want[k]
		if ok != wok || (ok && v != wv) {
			t.Fatalf("Get(%d) = %d,%v want %d,%v", k, v, ok, wv, wok)
		}
	}
}

// TestKVConcurrent drives writers on disjoint key residues (distinct
// shards) plus concurrent scanners, then checks the final store against
// each writer's model. The heavier mixed-key linearizability stress lives
// in internal/lincheck.
func TestKVConcurrent(t *testing.T) {
	const workers = 4
	const iters = 300
	kv := newKV(t, workers)
	rng := randtest.New(t, 99)

	models := make([]map[uint64]uint64, workers)
	errs := make([]error, workers)
	seeds := make([]int64, workers)
	for w := range seeds {
		seeds[w] = rng.Int63()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seeds[w]))
			model := make(map[uint64]uint64)
			models[w] = model
			for i := 0; i < iters; i++ {
				// Keys congruent to w mod workers route to one shard and
				// never collide with another writer.
				key := uint64(r.Intn(64))*workers + uint64(w)
				switch r.Intn(3) {
				case 0, 1:
					val := r.Uint64()
					if _, err := kv.Put(key, val); err != nil {
						errs[w] = fmt.Errorf("Put(%d): %w", key, err)
						return
					}
					model[key] = val
				case 2:
					if _, err := kv.Delete(key); err != nil {
						errs[w] = fmt.Errorf("Delete(%d): %w", key, err)
						return
					}
					delete(model, key)
				}
			}
		}(w)
	}
	// Scanners run against the moving store; they only assert well-formed
	// ascending output.
	stop := make(chan struct{})
	var scanErr error
	var scanWg sync.WaitGroup
	scanWg.Add(1)
	go func() {
		defer scanWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			got, err := kv.Scan(0, 50)
			if err != nil {
				scanErr = err
				return
			}
			for i := 1; i < len(got); i++ {
				if got[i].Key <= got[i-1].Key {
					scanErr = fmt.Errorf("scan out of order at %d: %d then %d", i, got[i-1].Key, got[i].Key)
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	scanWg.Wait()
	if scanErr != nil {
		t.Fatalf("scanner: %v", scanErr)
	}
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}

	total := 0
	for w, model := range models {
		total += len(model)
		for k, v := range model {
			gv, ok, err := kv.Get(k)
			if err != nil || !ok || gv != v {
				t.Fatalf("worker %d key %d: got %d,%v,%v want %d,true,nil", w, k, gv, ok, err, v)
			}
		}
	}
	if n, err := kv.Check(); err != nil || n != total {
		t.Fatalf("Check = %d,%v want %d,nil", n, err, total)
	}
}

func TestMultiBasicAndJournal(t *testing.T) {
	m := newMulti(t)
	for kind := range Kinds {
		did, err := m.Add(kind, 10)
		if err != nil || !did {
			t.Fatalf("%s: Add(10) = %v,%v", Kinds[kind], did, err)
		}
		did, err = m.Add(kind, 10)
		if err != nil || did {
			t.Fatalf("%s: duplicate Add(10) = %v,%v want no-op", Kinds[kind], did, err)
		}
		if has, err := m.Has(kind, 10); err != nil || !has {
			t.Fatalf("%s: Has(10) = %v,%v", Kinds[kind], has, err)
		}
		did, err = m.Remove(kind, 10)
		if err != nil || !did {
			t.Fatalf("%s: Remove(10) = %v,%v", Kinds[kind], did, err)
		}
		did, err = m.Remove(kind, 10)
		if err != nil || did {
			t.Fatalf("%s: double Remove(10) = %v,%v want no-op", Kinds[kind], did, err)
		}
		if has, err := m.Has(kind, 10); err != nil || has {
			t.Fatalf("%s: Has(10) after remove = %v,%v", Kinds[kind], has, err)
		}

		// Two effective ops: the journal and the persistent counter agree.
		j := m.Journal(kind)
		if len(j) != 2 || j[0].Op != OpAdd || j[1].Op != OpRemove {
			t.Fatalf("%s: journal = %+v, want [add, remove]", Kinds[kind], j)
		}
		c, err := m.Counter(kind)
		if err != nil || c != 2 {
			t.Fatalf("%s: counter = %d,%v want 2", Kinds[kind], c, err)
		}
	}
}

func TestMultiTransfer(t *testing.T) {
	m := newMulti(t)
	const list, btree = 0, 3
	if _, err := m.Add(list, 5); err != nil {
		t.Fatal(err)
	}

	did, err := m.Transfer(list, btree, 5)
	if err != nil || !did {
		t.Fatalf("Transfer = %v,%v", did, err)
	}
	if has, _ := m.Has(list, 5); has {
		t.Fatal("key still in source after transfer")
	}
	if has, _ := m.Has(btree, 5); !has {
		t.Fatal("key not in destination after transfer")
	}

	// Absent-in-source and present-in-destination transfers are no-ops.
	if did, err := m.Transfer(list, btree, 5); err != nil || did {
		t.Fatalf("transfer of absent key = %v,%v want no-op", did, err)
	}
	if _, err := m.Add(list, 5); err != nil {
		t.Fatal(err)
	}
	if did, err := m.Transfer(list, btree, 5); err != nil || did {
		t.Fatalf("transfer onto occupied destination = %v,%v want no-op", did, err)
	}

	// The two journal halves carry one matching transfer id.
	jf, jt := m.Journal(list), m.Journal(btree)
	var outID, inID uint64
	for _, e := range jf {
		if e.Op == OpXferOut {
			outID = e.XferID
		}
	}
	for _, e := range jt {
		if e.Op == OpXferIn {
			inID = e.XferID
		}
	}
	if outID == 0 || outID != inID {
		t.Fatalf("transfer ids: out=%d in=%d", outID, inID)
	}

	if _, err := m.Transfer(list, list, 5); err == nil {
		t.Fatal("self-transfer accepted")
	}
}

// TestMultiConcurrentStress churns every structure from its own goroutine
// with random ops plus cross-structure transfers, then proves each
// journal's replay matches both the persistent counter and the recovered
// membership.
func TestMultiConcurrentStress(t *testing.T) {
	m := newMulti(t)
	rng := randtest.New(t, 7)
	const iters = 200
	const keySpace = 24

	errs := make([]error, len(Kinds))
	seeds := make([]int64, len(Kinds))
	for i := range seeds {
		seeds[i] = rng.Int63()
	}
	var wg sync.WaitGroup
	for kind := range Kinds {
		wg.Add(1)
		go func(kind int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seeds[kind]))
			for i := 0; i < iters; i++ {
				key := uint64(r.Intn(keySpace) + 1)
				switch r.Intn(4) {
				case 0, 1:
					if _, err := m.Add(kind, key); err != nil {
						errs[kind] = fmt.Errorf("Add(%d): %w", key, err)
						return
					}
				case 2:
					if _, err := m.Remove(kind, key); err != nil {
						errs[kind] = fmt.Errorf("Remove(%d): %w", key, err)
						return
					}
				case 3:
					other := r.Intn(len(Kinds))
					if other == kind {
						other = (other + 1) % len(Kinds)
					}
					if _, err := m.Transfer(kind, other, key); err != nil {
						errs[kind] = fmt.Errorf("Transfer(%d->%d, %d): %w", kind, other, key, err)
						return
					}
				}
			}
		}(kind)
	}
	wg.Wait()
	for kind, err := range errs {
		if err != nil {
			t.Fatalf("%s worker: %v", Kinds[kind], err)
		}
	}

	counts, err := m.Check()
	if err != nil {
		t.Fatal(err)
	}
	for kind := range Kinds {
		journal := m.Journal(kind)
		c, err := m.Counter(kind)
		if err != nil {
			t.Fatal(err)
		}
		if c != uint64(len(journal)) {
			t.Fatalf("%s: counter %d but journal has %d entries", Kinds[kind], c, len(journal))
		}
		model := ReplayJournal(journal, len(journal))
		if counts[kind] != len(model) {
			t.Fatalf("%s: %d keys, journal replay has %d", Kinds[kind], counts[kind], len(model))
		}
		for key := uint64(1); key <= keySpace; key++ {
			has, err := m.Has(kind, key)
			if err != nil {
				t.Fatal(err)
			}
			if has != model[key] {
				t.Fatalf("%s key %d: present=%v, replay says %v", Kinds[kind], key, has, model[key])
			}
		}
	}
}

// TestMultiReopen syncs, power-cycles and reattaches the store, proving the
// open-all-then-recover-all path restores every structure.
func TestMultiReopen(t *testing.T) {
	m := newMulti(t)
	for kind := range Kinds {
		for key := uint64(1); key <= 8; key++ {
			if _, err := m.Add(kind, key*uint64(kind+1)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := m.Transfer(0, 1, 2); err != nil {
		t.Fatal(err)
	}

	journals := make([][]Entry, len(Kinds))
	for kind := range Kinds {
		journals[kind] = m.Journal(kind)
	}

	sh := m.Sharded()
	if err := sh.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Crash(nvmsim.DropAllPolicy()); err != nil {
		t.Fatal(err)
	}

	m2, err := OpenMulti(sh, "ms")
	if err != nil {
		t.Fatalf("OpenMulti: %v", err)
	}
	counts, err := m2.Check()
	if err != nil {
		t.Fatal(err)
	}
	for kind := range Kinds {
		model := ReplayJournal(journals[kind], len(journals[kind]))
		if counts[kind] != len(model) {
			t.Fatalf("%s: %d keys after reopen, want %d", Kinds[kind], counts[kind], len(model))
		}
		c, err := m2.Counter(kind)
		if err != nil {
			t.Fatal(err)
		}
		if c != uint64(len(journals[kind])) {
			t.Fatalf("%s: counter %d after reopen, want %d", Kinds[kind], c, len(journals[kind]))
		}
		for key := range model {
			has, err := m2.Has(kind, key)
			if err != nil {
				t.Fatal(err)
			}
			if !has {
				t.Fatalf("%s: key %d lost across reopen", Kinds[kind], key)
			}
		}
	}
}
