package objstore

import (
	"fmt"
	"sync"
	"sync/atomic"

	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
)

// Kinds names the five persistent structures a Multi hosts, in pool-layout
// order. Indices into a Multi are indices into this slice.
var Kinds = []string{"list", "bst", "rbt", "btree", "bplus"}

// Journal op codes.
const (
	OpAdd     = byte(1) // key inserted
	OpRemove  = byte(2) // key removed
	OpXferOut = byte(3) // key left this structure as half of a transfer
	OpXferIn  = byte(4) // key entered this structure as half of a transfer
)

// Entry is one committed-or-attempted operation in a structure's volatile
// journal. Entries are appended inside the transaction, under the
// structure's latch, so journal order is commit order; a crash can leave at
// most a suffix of entries whose transactions never committed (the domain
// poisons itself at the crash point, so no later operation on any structure
// can commit). XferID links the two halves of a Transfer.
type Entry struct {
	Op     byte
	Key    uint64
	XferID uint64
}

// Multi hosts one instance of each pds structure, each in its own pool with
// its own persistent op counter, fronted by per-structure latches so
// operations on different structures run (and commit) in parallel while
// operations on one structure serialize. It is the subject of the
// linearizability stress harness and the concurrent crash campaign: the
// counters and journals let a verifier reconstruct exactly which operations
// became durable.
type Multi struct {
	sh      *pmem.Sharded
	latches *pmem.LatchTable
	structs [5]mstruct
	xferID  uint64 // global transfer-id source
}

// mstruct is one hosted structure: its pool, adapter, persistent counter
// and volatile journal.
type mstruct struct {
	pool    *pmem.Pool
	anchor  oid.OID // latch identity for the whole structure
	counter oid.OID
	ops     mops

	mu      sync.Mutex // guards journal (latch already serializes writers; Verify reads after a crash)
	journal []Entry
}

// mops adapts one pds structure to the keyed-set workload (values are not
// part of the Multi contract; bplus stores val=key).
type mops interface {
	contains(c pds.Ctx, key uint64) (bool, error)
	insert(c pds.Ctx, key uint64) error
	remove(c pds.Ctx, key uint64) error
	check(c pds.Ctx) (int, error)
}

const (
	multiPoolBytes = 1 << 20
	multiLogBytes  = 128 * 1024
)

func multiPoolName(prefix, kind string) string { return prefix + "-" + kind }

func multiBind(sh *pmem.Sharded, p *pmem.Pool, kind string, s *mstruct) error {
	root, err := sh.Heap().Root(p, 16)
	if err != nil {
		return err
	}
	anchor := pds.NewCell(sh.Heap(), root.FieldAt(0))
	var ops mops
	switch kind {
	case "list":
		ops = mlist{pds.NewList(anchor)}
	case "bst":
		ops = mbst{pds.NewBST(anchor)}
	case "rbt":
		ops = mrbt{pds.NewRBT(anchor)}
	case "btree":
		ops = mbtree{pds.NewBTree(anchor)}
	case "bplus":
		ops = mbplus{pds.NewBPlus(anchor)}
	default:
		return fmt.Errorf("objstore: unknown structure kind %q", kind)
	}
	s.pool = p
	s.anchor = root.FieldAt(0)
	s.counter = root.FieldAt(8)
	s.ops = ops
	return nil
}

// CreateMulti creates the five structure pools (prefix-list … prefix-bplus).
func CreateMulti(sh *pmem.Sharded, prefix string) (*Multi, error) {
	m := &Multi{sh: sh, latches: pmem.NewLatchTable(64)}
	for i, kind := range Kinds {
		p, err := sh.CreateSized(multiPoolName(prefix, kind), multiPoolBytes, multiLogBytes)
		if err != nil {
			return nil, err
		}
		if err := multiBind(sh, p, kind, &m.structs[i]); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// OpenMulti reattaches after a crash: all pools open first, then all undo
// logs recover (a transfer's single log may reference objects in either
// involved pool), then the structures bind.
func OpenMulti(sh *pmem.Sharded, prefix string) (*Multi, error) {
	m := &Multi{sh: sh, latches: pmem.NewLatchTable(64)}
	var pools [5]*pmem.Pool
	for i, kind := range Kinds {
		p, err := sh.Open(multiPoolName(prefix, kind))
		if err != nil {
			return nil, err
		}
		pools[i] = p
	}
	for _, p := range pools {
		if err := sh.Recover(p); err != nil {
			return nil, err
		}
	}
	for i, kind := range Kinds {
		if err := multiBind(sh, pools[i], kind, &m.structs[i]); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// Sharded exposes the underlying sharded heap.
func (m *Multi) Sharded() *pmem.Sharded { return m.sh }

func (m *Multi) at(kind int) *mstruct { return &m.structs[kind] }

func (s *mstruct) appendEntry(e Entry) {
	s.mu.Lock()
	s.journal = append(s.journal, e)
	s.mu.Unlock()
}

func (s *mstruct) popEntry() {
	s.mu.Lock()
	s.journal = s.journal[:len(s.journal)-1]
	s.mu.Unlock()
}

// Journal snapshots a structure's journal (call only with workers stopped —
// after the stress run joins, or after a crash).
func (m *Multi) Journal(kind int) []Entry {
	s := m.at(kind)
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Entry, len(s.journal))
	copy(out, s.journal)
	return out
}

// Counter reads a structure's persistent op counter (its committed journal
// prefix length).
func (m *Multi) Counter(kind int) (uint64, error) {
	s := m.at(kind)
	var c uint64
	err := m.sh.View([]oid.PoolID{s.pool.ID()}, func() error {
		var cerr error
		c, cerr = counterValue(m.sh.Heap(), s.counter)
		return cerr
	})
	return c, err
}

// Has reports whether key is in the structure. Latch order: structure read
// latch, then shard read lock.
func (m *Multi) Has(kind int, key uint64) (bool, error) {
	s := m.at(kind)
	defer m.latches.RLock(s.anchor)()
	var present bool
	err := m.sh.View([]oid.PoolID{s.pool.ID()}, func() error {
		ctx := &txCtx{h: m.sh.Heap(), alloc: s.pool}
		var cerr error
		present, cerr = s.ops.contains(ctx, key)
		return cerr
	})
	return present, err
}

// Add inserts key, reporting whether it was absent (false = no-op). The
// whole operation — membership check, transactional insert, counter bump,
// journal append, commit — runs under the structure's write latch, so
// journal order is commit order.
func (m *Multi) Add(kind int, key uint64) (bool, error) {
	s := m.at(kind)
	defer m.latches.Lock(s.anchor)()
	did := false
	err := m.sh.Tx(s.pool, nil, func(t *pmem.Tx) error {
		ctx := &txCtx{h: m.sh.Heap(), alloc: s.pool}
		ctx.bind(t)
		present, err := s.ops.contains(ctx, key)
		if err != nil || present {
			return err
		}
		if err := s.ops.insert(ctx, key); err != nil {
			return err
		}
		if err := bumpCounter(ctx, s.counter); err != nil {
			return err
		}
		s.appendEntry(Entry{Op: OpAdd, Key: key})
		did = true
		return nil
	})
	if err != nil && did {
		s.popEntry() // the transaction aborted cleanly; the entry never committed
	}
	return did && err == nil, err
}

// Remove deletes key, reporting whether it was present.
func (m *Multi) Remove(kind int, key uint64) (bool, error) {
	s := m.at(kind)
	defer m.latches.Lock(s.anchor)()
	did := false
	err := m.sh.Tx(s.pool, nil, func(t *pmem.Tx) error {
		ctx := &txCtx{h: m.sh.Heap(), alloc: s.pool}
		ctx.bind(t)
		present, err := s.ops.contains(ctx, key)
		if err != nil || !present {
			return err
		}
		if err := s.ops.remove(ctx, key); err != nil {
			return err
		}
		if err := bumpCounter(ctx, s.counter); err != nil {
			return err
		}
		s.appendEntry(Entry{Op: OpRemove, Key: key})
		did = true
		return nil
	})
	if err != nil && did {
		s.popEntry()
	}
	return did && err == nil, err
}

// Transfer atomically moves key from one structure to another: one
// multi-pool transaction removes it from `from` and inserts it into `to`,
// bumping both persistent counters, so a crash can never observe the key in
// both structures or in neither (of a transferred pair). It reports whether
// the move happened (requires key present in from and absent in to). Both
// structure latches are taken through the LatchTable's sorted-slot order,
// then both shards through the heap's sorted-shard order — no cycles.
func (m *Multi) Transfer(from, to int, key uint64) (bool, error) {
	if from == to {
		return false, fmt.Errorf("objstore: transfer from structure %d to itself", from)
	}
	sf, st := m.at(from), m.at(to)
	defer m.latches.Lock(sf.anchor, st.anchor)()
	id := atomic.AddUint64(&m.xferID, 1)
	did := false
	err := m.sh.Tx(sf.pool, []oid.PoolID{st.pool.ID()}, func(t *pmem.Tx) error {
		fctx := &txCtx{h: m.sh.Heap(), alloc: sf.pool}
		fctx.bind(t)
		tctx := &txCtx{h: m.sh.Heap(), alloc: st.pool}
		tctx.bind(t)
		inFrom, err := sf.ops.contains(fctx, key)
		if err != nil {
			return err
		}
		inTo, err := st.ops.contains(tctx, key)
		if err != nil || !inFrom || inTo {
			return err
		}
		if err := sf.ops.remove(fctx, key); err != nil {
			return err
		}
		if err := st.ops.insert(tctx, key); err != nil {
			return err
		}
		if err := bumpCounter(fctx, sf.counter); err != nil {
			return err
		}
		if err := bumpCounter(tctx, st.counter); err != nil {
			return err
		}
		sf.appendEntry(Entry{Op: OpXferOut, Key: key, XferID: id})
		st.appendEntry(Entry{Op: OpXferIn, Key: key, XferID: id})
		did = true
		return nil
	})
	if err != nil && did {
		st.popEntry()
		sf.popEntry()
	}
	return did && err == nil, err
}

// Check runs every structure's invariant sweep and returns the per-kind key
// counts.
func (m *Multi) Check() ([5]int, error) {
	var counts [5]int
	for i := range m.structs {
		s := m.at(i)
		unlatch := m.latches.RLock(s.anchor)
		err := m.sh.View([]oid.PoolID{s.pool.ID()}, func() error {
			ctx := &txCtx{h: m.sh.Heap(), alloc: s.pool}
			n, cerr := s.ops.check(ctx)
			counts[i] = n
			return cerr
		})
		unlatch()
		if err != nil {
			return counts, fmt.Errorf("%s: %w", Kinds[i], err)
		}
	}
	return counts, nil
}

// CheckHeap runs the heap allocator's structural sweep over every
// structure pool (free lists, block headers, bump bounds).
func (m *Multi) CheckHeap() error {
	ids := make([]oid.PoolID, len(m.structs))
	for i := range m.structs {
		ids[i] = m.structs[i].pool.ID()
	}
	return m.sh.View(ids, func() error {
		for i := range m.structs {
			if err := m.sh.Heap().CheckPool(m.structs[i].pool); err != nil {
				return fmt.Errorf("%s: %w", Kinds[i], err)
			}
		}
		return nil
	})
}

// ReplayJournal folds the first n entries of a journal into the membership
// set a structure should hold — the model side of crash verification.
func ReplayJournal(journal []Entry, n int) map[uint64]bool {
	set := make(map[uint64]bool)
	for _, e := range journal[:n] {
		switch e.Op {
		case OpAdd, OpXferIn:
			set[e.Key] = true
		case OpRemove, OpXferOut:
			delete(set, e.Key)
		}
	}
	return set
}

// --- structure adapters ---

type mlist struct{ l *pds.List }

func (a mlist) insert(c pds.Ctx, k uint64) error { return a.l.Insert(c, k) }
func (a mlist) remove(c pds.Ctx, k uint64) error { _, err := a.l.Remove(c, k); return err }
func (a mlist) contains(c pds.Ctx, k uint64) (bool, error) {
	o, err := a.l.Find(c, k)
	return o != oid.Null, err
}
func (a mlist) check(c pds.Ctx) (int, error) {
	keys, err := a.l.Keys(c)
	if err != nil {
		return 0, err
	}
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			return 0, fmt.Errorf("list: duplicate key %d", k)
		}
		seen[k] = true
	}
	return len(keys), nil
}

type mbst struct{ t *pds.BST }

func (a mbst) insert(c pds.Ctx, k uint64) error { return a.t.Insert(c, k) }
func (a mbst) remove(c pds.Ctx, k uint64) error { _, err := a.t.Remove(c, k); return err }
func (a mbst) contains(c pds.Ctx, k uint64) (bool, error) {
	o, err := a.t.Find(c, k)
	return o != oid.Null, err
}
func (a mbst) check(c pds.Ctx) (int, error) {
	keys, err := a.t.InOrder(c)
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return 0, fmt.Errorf("bst: in-order not strictly increasing at %d", i)
		}
	}
	return len(keys), nil
}

type mrbt struct{ t *pds.RBT }

func (a mrbt) insert(c pds.Ctx, k uint64) error { return a.t.Insert(c, k) }
func (a mrbt) remove(c pds.Ctx, k uint64) error { _, err := a.t.Remove(c, k); return err }
func (a mrbt) contains(c pds.Ctx, k uint64) (bool, error) {
	o, err := a.t.Find(c, k)
	return o != oid.Null, err
}
func (a mrbt) check(c pds.Ctx) (int, error) {
	if _, err := a.t.CheckInvariants(c); err != nil {
		return 0, err
	}
	keys, err := a.t.InOrder(c)
	return len(keys), err
}

type mbtree struct{ t *pds.BTree }

func (a mbtree) insert(c pds.Ctx, k uint64) error { return a.t.Insert(c, k) }
func (a mbtree) remove(c pds.Ctx, k uint64) error { _, err := a.t.Remove(c, k); return err }
func (a mbtree) contains(c pds.Ctx, k uint64) (bool, error) {
	return a.t.Find(c, k)
}
func (a mbtree) check(c pds.Ctx) (int, error) { return a.t.CheckInvariants(c) }

type mbplus struct{ t *pds.BPlus }

func (a mbplus) insert(c pds.Ctx, k uint64) error { return a.t.Insert(c, k, k) }
func (a mbplus) remove(c pds.Ctx, k uint64) error { _, err := a.t.Remove(c, k); return err }
func (a mbplus) contains(c pds.Ctx, k uint64) (bool, error) {
	_, ok, err := a.t.Find(c, k)
	return ok, err
}
func (a mbplus) check(c pds.Ctx) (int, error) { return a.t.CheckInvariants(c) }
