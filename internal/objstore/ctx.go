// Package objstore provides concurrent persistent object stores over the
// sharded heap (pmem.Sharded): KV, the flat key-value store cmd/potserve
// fronts, and Multi, a five-structure store exercising per-OID latches and
// cross-structure transactions. Both are the subjects the linearizability
// harness (internal/lincheck) and the concurrent crash campaign
// (internal/crashtest) prove the concurrency layer with.
package objstore

import (
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
)

// txCtx is the pds.Ctx that routes structure mutations through a
// handle-based heap transaction, with the per-transaction snapshot dedup
// the Ctx contract requires. With tx nil it performs plain (setup-time,
// non-crash-safe) operations.
type txCtx struct {
	h       *pmem.Heap
	tx      *pmem.Tx
	alloc   *pmem.Pool
	touched map[oid.OID]bool
}

var _ pds.Ctx = (*txCtx)(nil)

func (c *txCtx) bind(tx *pmem.Tx) {
	c.tx = tx
	if c.touched == nil {
		c.touched = make(map[oid.OID]bool, 8)
	} else {
		// Reusing the map keeps its buckets, so a long-lived ctx (the per-
		// shard write ctx in KV) stops allocating once it has seen a
		// typical transaction's working set.
		clear(c.touched)
	}
}

func (c *txCtx) Heap() *pmem.Heap { return c.h }

func (c *txCtx) Alloc(_ uint64, size uint32) (oid.OID, error) {
	if c.tx != nil {
		return c.tx.Alloc(c.alloc, size)
	}
	return c.h.Alloc(c.alloc, size)
}

func (c *txCtx) Free(o oid.OID) error {
	if c.tx != nil {
		return c.tx.Free(o)
	}
	return c.h.Free(o)
}

func (c *txCtx) Touch(o oid.OID, size uint32) error {
	if c.tx == nil {
		return nil
	}
	if c.touched[o] {
		return nil
	}
	if err := c.tx.AddRange(o, size); err != nil {
		return err
	}
	c.touched[o] = true
	return nil
}

// bumpCounter snapshots and increments a persistent op counter inside the
// current transaction. Because the counter commits atomically with the
// operation, its recovered value tells a verifier exactly how many
// operations of the (per-shard, lock-serialized) journal became durable.
func bumpCounter(ctx *txCtx, counter oid.OID) error {
	if err := ctx.Touch(counter, 8); err != nil {
		return err
	}
	ref, err := ctx.h.Deref(counter, isa.RZ)
	if err != nil {
		return err
	}
	w, err := ref.Load64(0)
	if err != nil {
		return err
	}
	return ref.Store64(0, w.V+1, w.Reg)
}

// counterValue reads a persistent op counter.
func counterValue(h *pmem.Heap, counter oid.OID) (uint64, error) {
	ref, err := h.Deref(counter, isa.RZ)
	if err != nil {
		return 0, err
	}
	w, err := ref.Load64(0)
	return w.V, err
}
