package objstore

import (
	"errors"
	"fmt"
	"slices"
	"sync/atomic"

	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
)

// KV is the store cmd/potserve fronts: a uint64→uint64 map sharded across
// one B+-tree per heap shard, keys routed by key mod shard count. Each
// shard's tree lives in its own pool, so the pool-id shard map makes
// single-key operations on different shards fully parallel; Batch spans
// shards with one lock-ordered multi-pool transaction.
type KV struct {
	sh     *pmem.Sharded
	shards []kvShard
	// mvcc routes Get/Scan through the epoch-versioned snapshot path:
	// readers pin an epoch and traverse committed post-images without
	// latches or shard locks, falling back to the latched path when the
	// mirror cannot serve a walk. On by CreateKV/OpenKV default; the
	// latched-baseline constructors leave it off.
	mvcc bool
	// journaled arms the crash-verification protocol: Put/Delete append to
	// a per-shard volatile journal under the shard lock and bump the
	// shard's persistent op counter inside the transaction (see
	// EnableJournal).
	journaled bool
	// fallbacks counts MVCC reads that could not ride the snapshot path
	// (pin registry exhausted, or a mirror miss mid-walk) and fell back to
	// the latched path instead. Atomic; observability only.
	fallbacks uint64
}

type kvShard struct {
	pool *pmem.Pool
	tree *pds.BPlus
	// root is the shard's 16-byte root object: field 0 holds the tree
	// anchor cell, field 8 the persistent op counter of journaled mode.
	root oid.OID
	// rctx is the read-path pds.Ctx (tx nil, so no mutable state): shared
	// freely by concurrent readers under the shard's read lock.
	rctx txCtx
	// wctx is the write-path pds.Ctx, rebound per transaction. Exclusive
	// shard lock holders only; the touched map is reused across
	// transactions so steady-state writes stop allocating.
	wctx txCtx
	// journal is the volatile commit-order op journal of journaled mode,
	// appended under the shard's write lock inside the transaction.
	journal []BatchOp
}

// kvPoolBytes sizes each shard pool. The B+-tree allocates ~72-byte nodes;
// 4 MiB per shard holds tens of thousands of keys, plenty for the bench
// and harness workloads.
const (
	kvPoolBytes = 4 << 20
	kvLogBytes  = 256 * 1024
)

func kvPoolName(prefix string, i int) string { return fmt.Sprintf("%s-%d", prefix, i) }

func kvBind(sh *pmem.Sharded, p *pmem.Pool) (kvShard, error) {
	root, err := sh.Heap().Root(p, 16)
	if err != nil {
		return kvShard{}, err
	}
	anchor := pds.NewCell(sh.Heap(), root.FieldAt(0))
	tree := pds.NewBPlus(anchor)
	// Warm the root cache while the tree is still private: once the shard
	// is shared, concurrent readers under the read lock must not race to
	// fill it.
	if err := tree.Prime(); err != nil {
		return kvShard{}, err
	}
	return kvShard{
		pool: p,
		tree: tree,
		root: root,
		rctx: txCtx{h: sh.Heap(), alloc: p},
		wctx: txCtx{h: sh.Heap(), alloc: p},
	}, nil
}

// enableSnapshots flips every shard pool to MVCC and seeds the version
// mirror with the store's current reachable objects (anchor cell + every
// tree node), so snapshot readers can resolve the whole structure at the
// mount epoch.
//
// Fault-tolerant stores stay latched: the version mirror serves volatile
// post-images, which would bypass VerifyOnRead checksum verification and
// mask media faults that must surface as ErrCorrupt through the verified
// read path.
func (kv *KV) enableSnapshots() error {
	for i := range kv.shards {
		if kv.shards[i].pool.FaultTolerant() {
			return nil
		}
	}
	for i := range kv.shards {
		kv.sh.EnableMVCC(kv.shards[i].pool)
	}
	for i := range kv.shards {
		if err := kv.seedShard(&kv.shards[i]); err != nil {
			// A seed walk can fail on a store mounted over still-corrupt
			// media (OpenKV runs before the post-crash scrub). A partial
			// mirror is safe — snapshot walks that miss fall back to the
			// latched path — and Reprime reseeds after repair.
			break
		}
	}
	kv.mvcc = true
	return nil
}

// seedShard publishes initial versions for one shard's reachable objects.
func (kv *KV) seedShard(s *kvShard) error {
	m := kv.sh.MVCC()
	h := kv.sh.Heap()
	if err := m.Seed(h, s.pool, s.tree.AnchorOID(), 8); err != nil {
		return err
	}
	return s.tree.VisitNodes(&s.rctx, func(o oid.OID) error {
		return m.Seed(h, s.pool, o, pds.BPNodeSize)
	})
}

// CreateKV creates one pool per heap shard (named prefix-0 … prefix-N-1)
// and plants an empty B+-tree in each. Snapshot (MVCC) reads are enabled:
// Get/Scan pin an epoch and traverse latch-free. CreateKVLatched builds
// the latched baseline.
func CreateKV(sh *pmem.Sharded, prefix string) (*KV, error) {
	kv, err := CreateKVLatched(sh, prefix)
	if err != nil {
		return nil, err
	}
	if err := kv.enableSnapshots(); err != nil {
		return nil, err
	}
	return kv, nil
}

// CreateKVLatched is CreateKV without the snapshot-read path: every Get
// and Scan takes shard read locks. The read-heavy benchmark baseline.
func CreateKVLatched(sh *pmem.Sharded, prefix string) (*KV, error) {
	kv := &KV{sh: sh, shards: make([]kvShard, sh.Shards())}
	for i := range kv.shards {
		p, err := sh.CreateSized(kvPoolName(prefix, i), kvPoolBytes, kvLogBytes)
		if err != nil {
			return nil, err
		}
		s, err := kvBind(sh, p)
		if err != nil {
			return nil, err
		}
		kv.shards[i] = s
	}
	return kv, nil
}

// CreateKVFT is CreateKV with media-fault tolerance: every shard pool
// carries per-object checksums and a parity column, and the derived state
// is rebuilt once after the non-transactional root setup so VerifyOnRead
// and scrubbing can be enabled immediately. Subsequent Puts/Deletes
// maintain checksums and parity inside their commit fences.
func CreateKVFT(sh *pmem.Sharded, prefix string) (*KV, error) {
	kv := &KV{sh: sh, shards: make([]kvShard, sh.Shards())}
	for i := range kv.shards {
		p, err := sh.CreateSizedFT(kvPoolName(prefix, i), kvPoolBytes, kvLogBytes)
		if err != nil {
			return nil, err
		}
		s, err := kvBind(sh, p)
		if err != nil {
			return nil, err
		}
		kv.shards[i] = s
		if err := sh.RebuildFT(p); err != nil {
			return nil, err
		}
	}
	if err := kv.enableSnapshots(); err != nil {
		return nil, err
	}
	return kv, nil
}

// OpenKV reattaches to a previously created store: every pool is opened
// first, then every undo log is recovered, so a multi-pool batch
// interrupted by a crash rolls back completely before any tree is read.
func OpenKV(sh *pmem.Sharded, prefix string) (*KV, error) {
	kv := &KV{sh: sh, shards: make([]kvShard, sh.Shards())}
	for i := range kv.shards {
		p, err := sh.Open(kvPoolName(prefix, i))
		if err != nil {
			return nil, err
		}
		kv.shards[i].pool = p
	}
	for i := range kv.shards {
		if err := sh.Recover(kv.shards[i].pool); err != nil {
			return nil, err
		}
	}
	for i := range kv.shards {
		s, err := kvBind(sh, kv.shards[i].pool)
		if err != nil {
			return nil, err
		}
		kv.shards[i] = s
	}
	if err := kv.enableSnapshots(); err != nil {
		return nil, err
	}
	return kv, nil
}

// Sharded exposes the underlying sharded heap.
func (kv *KV) Sharded() *pmem.Sharded { return kv.sh }

// Reprime drops and refills every shard tree's volatile root cache.
// A store reattached while its media still carried faults (OpenKV runs
// before the post-crash scrub) may have cached a corrupt root pointer;
// after the scrub repairs the bytes, Reprime flushes the poison out of
// the volatile layer.
func (kv *KV) Reprime() error {
	for i := range kv.shards {
		s := &kv.shards[i]
		err := func() error {
			kv.sh.LockPool(s.pool.ID())
			defer kv.sh.UnlockPool(s.pool.ID())
			s.tree.DropCache()
			if err := s.tree.Prime(); err != nil {
				return err
			}
			if kv.mvcc {
				// The mirror may have been seeded from corrupt bytes at
				// mount; reseed from the repaired media. Seed drops the
				// old chains to the garbage collector (never the
				// freelist), so a concurrently pinned reader keeps its
				// buffers and at worst falls back to a latched read.
				return kv.seedShard(s)
			}
			return nil
		}()
		if err != nil {
			return err
		}
	}
	return nil
}

func (kv *KV) shardOf(key uint64) *kvShard { return &kv.shards[key%uint64(len(kv.shards))] }

// EnableJournal arms the crash-verification protocol: from now on every
// Put/Delete appends its op to the owning shard's volatile journal (under
// the shard write lock, so journal order is commit order) and bumps the
// shard's persistent op counter inside the same transaction. After a
// simulated crash the invariant acked <= counter <= len(journal) holds per
// shard, and replaying the journal's counter-length prefix reproduces the
// recovered state exactly (see internal/crashtest).
func (kv *KV) EnableJournal() { kv.journaled = true }

// Journal returns shard i's volatile op journal (commit order; at most the
// last entry may be uncommitted after a crash).
func (kv *KV) Journal(i int) []BatchOp { return kv.shards[i].journal }

// Counter reads shard i's persistent op counter.
func (kv *KV) Counter(i int) (uint64, error) {
	s := &kv.shards[i]
	return counterValue(kv.sh.Heap(), s.root.FieldAt(8))
}

// ReplayKVJournal folds the first n ops of a shard journal into a model
// map — the oracle a recovered shard is compared against.
func ReplayKVJournal(j []BatchOp, n int) map[uint64]uint64 {
	m := make(map[uint64]uint64, n)
	for _, op := range j[:n] {
		if op.Del {
			delete(m, op.Key)
		} else {
			m[op.Key] = op.Val
		}
	}
	return m
}

// SnapshotFallbacks returns how many MVCC reads fell back to the latched
// path (pin registry exhausted, or a version-mirror miss mid-walk). Zero
// on latched-baseline stores, which never take the snapshot path at all.
func (kv *KV) SnapshotFallbacks() uint64 { return atomic.LoadUint64(&kv.fallbacks) }

// journalOp records op in the shard journal and bumps the persistent
// counter inside the already-bound transaction. Caller holds the shard
// write lock.
func (kv *KV) journalOp(s *kvShard, op BatchOp) error {
	s.journal = append(s.journal, op)
	return bumpCounter(&s.wctx, s.root.FieldAt(8))
}

// Get returns the value stored under key. Allocation-free: the request
// path of potserve rides on it. On an MVCC store the read pins an epoch
// and walks the version mirror without latches or shard locks; the
// latched path below is the fallback (mirror miss, pin registry
// exhausted) and the authority for checksum repair. With VerifyOnRead
// enabled on a fault-tolerant store, a checksum miss triggers one inline
// repair — drop the read lock, rebuild the object from parity under the
// write lock, retry — before the corruption is surfaced to the caller.
//
//potlint:snapshot-read
func (kv *KV) Get(key uint64) (val uint64, ok bool, err error) {
	s := kv.shardOf(key)
	if kv.mvcc {
		if pin := kv.sh.Pin(); pin != nil {
			v, found, sok := s.tree.FindSnap(pin, key)
			kv.sh.Unpin(pin)
			if sok {
				return v, found, nil
			}
		}
		atomic.AddUint64(&kv.fallbacks, 1)
	}
	kv.sh.RLockPool(s.pool.ID()) //potlint:allow snapshotread latched fallback on mirror miss or pin exhaustion
	val, ok, err = s.tree.FindFast(&s.rctx, key)
	kv.sh.RUnlockPool(s.pool.ID())
	if err != nil && errors.Is(err, pmem.ErrCorrupt) {
		return kv.getRepair(s, key, err) //potlint:allow snapshotread checksum repair rides the latched fallback
	}
	return val, ok, err
}

// getRepair is Get's cold path: repair the corrupt object named by the
// error and retry the lookup once. An unrepairable object (or a second,
// different corruption) surfaces as the final ErrCorrupt — never as
// silently wrong data.
func (kv *KV) getRepair(s *kvShard, key uint64, derefErr error) (uint64, bool, error) {
	var ce *pmem.CorruptError
	if !errors.As(derefErr, &ce) {
		return 0, false, derefErr
	}
	repaired, err := kv.sh.RepairObject(ce.OID)
	if err != nil || !repaired {
		return 0, false, derefErr
	}
	kv.sh.RLockPool(s.pool.ID())
	val, ok, err := s.tree.FindFast(&s.rctx, key)
	kv.sh.RUnlockPool(s.pool.ID())
	return val, ok, err
}

// Put stores val under key, inserting or overwriting. It reports whether
// the key was created (false: an existing value was replaced). The
// overwrite path — the steady state of a bounded-keyspace workload — is
// allocation-free end to end; only inserts (tree growth) allocate.
func (kv *KV) Put(key, val uint64) (created bool, err error) {
	s := kv.shardOf(key)
	kv.sh.LockPool(s.pool.ID())
	defer kv.sh.UnlockPool(s.pool.ID())
	jlen := len(s.journal)
	t, err := kv.sh.Heap().Begin(s.pool)
	if err != nil {
		return false, err
	}
	s.wctx.bind(t)
	updated, err := s.tree.UpdateFast(&s.wctx, key, val)
	if err == nil && !updated {
		created = true
		err = s.tree.Insert(&s.wctx, key, val)
	}
	if err == nil && kv.journaled {
		err = kv.journalOp(s, BatchOp{Key: key, Val: val})
	}
	if err != nil {
		// An aborted op must not leave a dead journal entry behind: later
		// committed ops would land after it and misalign every replay
		// prefix. (A crashed commit is different — its entry stays as the
		// at-most-one uncommitted journal tail.)
		if kv.journaled && len(s.journal) > jlen {
			s.journal = s.journal[:jlen]
		}
		if aerr := t.Abort(); aerr != nil {
			return false, fmt.Errorf("%w (abort also failed: %v)", err, aerr)
		}
		return false, err
	}
	return created, t.Commit()
}

// Delete removes key, reporting whether it was present.
func (kv *KV) Delete(key uint64) (existed bool, err error) {
	s := kv.shardOf(key)
	kv.sh.LockPool(s.pool.ID())
	defer kv.sh.UnlockPool(s.pool.ID())
	jlen := len(s.journal)
	t, err := kv.sh.Heap().Begin(s.pool)
	if err != nil {
		return false, err
	}
	s.wctx.bind(t)
	existed, err = s.tree.Remove(&s.wctx, key)
	if err == nil && kv.journaled {
		err = kv.journalOp(s, BatchOp{Key: key, Del: true})
	}
	if err != nil {
		if kv.journaled && len(s.journal) > jlen {
			s.journal = s.journal[:jlen]
		}
		if aerr := t.Abort(); aerr != nil {
			return false, fmt.Errorf("%w (abort also failed: %v)", err, aerr)
		}
		return false, err
	}
	return existed, t.Commit()
}

// Scan returns up to max key/value pairs with key >= from, in ascending
// key order, merged across all shards under a store-wide read lock (the
// one KV operation that is a consistent multi-shard snapshot).
func (kv *KV) Scan(from uint64, max int) ([]pds.KV, error) {
	out, err := kv.ScanAppend(nil, from, max)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScanAppend is Scan appending into dst (truncated and reused), so a
// caller that recycles its result buffer scans without allocating once the
// buffer has reached its steady-state capacity. On an MVCC store one
// pinned epoch covers every shard — the global epoch makes the cross-shard
// snapshot consistent without RLockAll; the latched store-wide read lock
// is the fallback.
//
//potlint:snapshot-read
func (kv *KV) ScanAppend(dst []pds.KV, from uint64, max int) ([]pds.KV, error) {
	dst = dst[:0]
	if max <= 0 {
		return dst, nil
	}
	if kv.mvcc {
		if pin := kv.sh.Pin(); pin != nil {
			sok := true
			for i := range kv.shards {
				if dst, sok = kv.shards[i].tree.ScanAppendSnap(pin, dst, from, max); !sok {
					break
				}
			}
			kv.sh.Unpin(pin)
			if sok {
				return kvMergeScan(dst, max), nil
			}
			dst = dst[:0]
		}
		atomic.AddUint64(&kv.fallbacks, 1)
	}
	kv.sh.RLockAll() //potlint:allow snapshotread latched fallback on mirror miss or pin exhaustion
	defer kv.sh.RUnlockAll()
	for i := range kv.shards {
		s := &kv.shards[i]
		var err error
		if dst, err = s.tree.ScanAppend(&s.rctx, dst, from, max); err != nil {
			return dst, err
		}
	}
	return kvMergeScan(dst, max), nil
}

// kvMergeScan merges the per-shard ascending runs: each shard contributed
// up to max ascending pairs; sort (slices.SortFunc: no interface boxing,
// non-capturing comparator) and truncate.
func kvMergeScan(dst []pds.KV, max int) []pds.KV {
	slices.SortFunc(dst, func(a, b pds.KV) int {
		switch {
		case a.Key < b.Key:
			return -1
		case a.Key > b.Key:
			return 1
		}
		return 0
	})
	if len(dst) > max {
		dst = dst[:max]
	}
	return dst
}

// BatchOp is one operation of an atomic batch: a put (Del false) or a
// delete (Del true).
type BatchOp struct {
	Key uint64
	Val uint64
	Del bool
}

// Batch applies all ops in one crash-atomic transaction spanning every
// involved shard: either every op is durable or none is. The undo log
// lives in the lowest involved shard's pool; shard locks are taken in
// ascending order as always. With at most 64 KV shards the involved set is
// a stack bitmask and the whole batch (pure overwrites/deletes of leaf-
// resident keys) allocates nothing.
func (kv *KV) Batch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	if len(kv.shards) > 64 {
		return kv.batchSlow(ops)
	}
	var involved uint64 // KV shard indices
	for _, op := range ops {
		involved |= 1 << (op.Key % uint64(len(kv.shards)))
	}
	var heapMask uint64 // heap lock-shard indices
	var logShard *kvShard
	for i := range kv.shards {
		if involved&(1<<uint(i)) == 0 {
			continue
		}
		s := &kv.shards[i]
		if logShard == nil {
			logShard = s
		}
		heapMask |= 1 << uint(kv.sh.ShardOf(s.pool.ID()))
	}
	kv.sh.LockShardMask(heapMask)
	defer kv.sh.UnlockShardMask(heapMask)
	t, err := kv.sh.Heap().Begin(logShard.pool)
	if err != nil {
		return err
	}
	for i := range kv.shards {
		if involved&(1<<uint(i)) != 0 {
			kv.shards[i].wctx.bind(t)
		}
	}
	err = kv.applyBatch(ops)
	if err != nil {
		if aerr := t.Abort(); aerr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, aerr)
		}
		return err
	}
	return t.Commit()
}

// applyBatch runs the ops through the already-bound per-shard write ctxs.
func (kv *KV) applyBatch(ops []BatchOp) error {
	for _, op := range ops {
		s := kv.shardOf(op.Key)
		if op.Del {
			if _, err := s.tree.Remove(&s.wctx, op.Key); err != nil {
				return err
			}
			continue
		}
		updated, err := s.tree.UpdateFast(&s.wctx, op.Key, op.Val)
		if err != nil {
			return err
		}
		if !updated {
			if err := s.tree.Insert(&s.wctx, op.Key, op.Val); err != nil {
				return err
			}
		}
	}
	return nil
}

// batchSlow is Batch for stores sharded past the 64-bit mask, using the
// closure-based multi-pool transaction entry.
func (kv *KV) batchSlow(ops []BatchOp) error {
	involved := make(map[*kvShard]bool, len(ops))
	for _, op := range ops {
		involved[kv.shardOf(op.Key)] = true
	}
	var logShard *kvShard
	var extra []oid.PoolID
	for i := range kv.shards {
		s := &kv.shards[i]
		if !involved[s] {
			continue
		}
		if logShard == nil {
			logShard = s
		} else {
			extra = append(extra, s.pool.ID())
		}
	}
	return kv.sh.Tx(logShard.pool, extra, func(t *pmem.Tx) error {
		for s := range involved {
			s.wctx.bind(t)
		}
		return kv.applyBatch(ops)
	})
}

// Check runs every shard tree's invariant sweep and returns the total key
// count (stop-the-world via a full read lock).
func (kv *KV) Check() (int, error) {
	ids := make([]oid.PoolID, len(kv.shards))
	for i := range kv.shards {
		ids[i] = kv.shards[i].pool.ID()
	}
	total := 0
	err := kv.sh.View(ids, func() error {
		for i := range kv.shards {
			s := &kv.shards[i]
			ctx := &txCtx{h: kv.sh.Heap(), alloc: s.pool}
			n, err := s.tree.CheckInvariants(ctx)
			if err != nil {
				return err
			}
			total += n
		}
		return nil
	})
	return total, err
}
