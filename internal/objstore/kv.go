package objstore

import (
	"fmt"
	"sort"

	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
)

// KV is the store cmd/potserve fronts: a uint64→uint64 map sharded across
// one B+-tree per heap shard, keys routed by key mod shard count. Each
// shard's tree lives in its own pool, so the pool-id shard map makes
// single-key operations on different shards fully parallel; Batch spans
// shards with one lock-ordered multi-pool transaction.
type KV struct {
	sh     *pmem.Sharded
	shards []kvShard
}

type kvShard struct {
	pool *pmem.Pool
	tree *pds.BPlus
}

// kvPoolBytes sizes each shard pool. The B+-tree allocates ~72-byte nodes;
// 4 MiB per shard holds tens of thousands of keys, plenty for the bench
// and harness workloads.
const (
	kvPoolBytes = 4 << 20
	kvLogBytes  = 256 * 1024
)

func kvPoolName(prefix string, i int) string { return fmt.Sprintf("%s-%d", prefix, i) }

func kvBind(sh *pmem.Sharded, p *pmem.Pool) (kvShard, error) {
	root, err := sh.Heap().Root(p, 16)
	if err != nil {
		return kvShard{}, err
	}
	anchor := pds.NewCell(sh.Heap(), root.FieldAt(0))
	return kvShard{pool: p, tree: pds.NewBPlus(anchor)}, nil
}

// CreateKV creates one pool per heap shard (named prefix-0 … prefix-N-1)
// and plants an empty B+-tree in each.
func CreateKV(sh *pmem.Sharded, prefix string) (*KV, error) {
	kv := &KV{sh: sh, shards: make([]kvShard, sh.Shards())}
	for i := range kv.shards {
		p, err := sh.CreateSized(kvPoolName(prefix, i), kvPoolBytes, kvLogBytes)
		if err != nil {
			return nil, err
		}
		s, err := kvBind(sh, p)
		if err != nil {
			return nil, err
		}
		kv.shards[i] = s
	}
	return kv, nil
}

// OpenKV reattaches to a previously created store: every pool is opened
// first, then every undo log is recovered, so a multi-pool batch
// interrupted by a crash rolls back completely before any tree is read.
func OpenKV(sh *pmem.Sharded, prefix string) (*KV, error) {
	kv := &KV{sh: sh, shards: make([]kvShard, sh.Shards())}
	for i := range kv.shards {
		p, err := sh.Open(kvPoolName(prefix, i))
		if err != nil {
			return nil, err
		}
		kv.shards[i].pool = p
	}
	for i := range kv.shards {
		if err := sh.Recover(kv.shards[i].pool); err != nil {
			return nil, err
		}
	}
	for i := range kv.shards {
		s, err := kvBind(sh, kv.shards[i].pool)
		if err != nil {
			return nil, err
		}
		kv.shards[i] = s
	}
	return kv, nil
}

// Sharded exposes the underlying sharded heap.
func (kv *KV) Sharded() *pmem.Sharded { return kv.sh }

func (kv *KV) shardOf(key uint64) *kvShard { return &kv.shards[key%uint64(len(kv.shards))] }

// Get returns the value stored under key.
func (kv *KV) Get(key uint64) (val uint64, ok bool, err error) {
	s := kv.shardOf(key)
	err = kv.sh.View([]oid.PoolID{s.pool.ID()}, func() error {
		ctx := &txCtx{h: kv.sh.Heap(), alloc: s.pool}
		var ferr error
		val, ok, ferr = s.tree.Find(ctx, key)
		return ferr
	})
	return val, ok, err
}

// Put stores val under key, inserting or overwriting. It reports whether
// the key was created (false: an existing value was replaced).
func (kv *KV) Put(key, val uint64) (created bool, err error) {
	s := kv.shardOf(key)
	err = kv.sh.Tx(s.pool, nil, func(t *pmem.Tx) error {
		ctx := &txCtx{h: kv.sh.Heap(), alloc: s.pool}
		ctx.bind(t)
		updated, err := s.tree.Update(ctx, key, val)
		if err != nil {
			return err
		}
		if updated {
			return nil
		}
		created = true
		return s.tree.Insert(ctx, key, val)
	})
	return created, err
}

// Delete removes key, reporting whether it was present.
func (kv *KV) Delete(key uint64) (existed bool, err error) {
	s := kv.shardOf(key)
	err = kv.sh.Tx(s.pool, nil, func(t *pmem.Tx) error {
		ctx := &txCtx{h: kv.sh.Heap(), alloc: s.pool}
		ctx.bind(t)
		var rerr error
		existed, rerr = s.tree.Remove(ctx, key)
		return rerr
	})
	return existed, err
}

// Scan returns up to max key/value pairs with key >= from, in ascending
// key order, merged across all shards under a store-wide read lock (the
// one KV operation that is a consistent multi-shard snapshot).
func (kv *KV) Scan(from uint64, max int) ([]pds.KV, error) {
	if max <= 0 {
		return nil, nil
	}
	ids := make([]oid.PoolID, len(kv.shards))
	for i := range kv.shards {
		ids[i] = kv.shards[i].pool.ID()
	}
	var out []pds.KV
	err := kv.sh.View(ids, func() error {
		for i := range kv.shards {
			s := &kv.shards[i]
			ctx := &txCtx{h: kv.sh.Heap(), alloc: s.pool}
			part, err := s.tree.Scan(ctx, from, max)
			if err != nil {
				return err
			}
			out = append(out, part...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	if len(out) > max {
		out = out[:max]
	}
	return out, nil
}

// BatchOp is one operation of an atomic batch: a put (Del false) or a
// delete (Del true).
type BatchOp struct {
	Key uint64
	Val uint64
	Del bool
}

// Batch applies all ops in one crash-atomic transaction spanning every
// involved shard: either every op is durable or none is. The undo log
// lives in the lowest involved shard's pool; shard locks are taken in
// ascending order as always.
func (kv *KV) Batch(ops []BatchOp) error {
	if len(ops) == 0 {
		return nil
	}
	involved := make(map[*kvShard]bool, len(ops))
	for _, op := range ops {
		involved[kv.shardOf(op.Key)] = true
	}
	var logShard *kvShard
	var extra []oid.PoolID
	for i := range kv.shards {
		s := &kv.shards[i]
		if !involved[s] {
			continue
		}
		if logShard == nil {
			logShard = s
		} else {
			extra = append(extra, s.pool.ID())
		}
	}
	return kv.sh.Tx(logShard.pool, extra, func(t *pmem.Tx) error {
		ctxs := make(map[*kvShard]*txCtx, len(involved))
		for s := range involved {
			ctx := &txCtx{h: kv.sh.Heap(), alloc: s.pool}
			ctx.bind(t)
			ctxs[s] = ctx
		}
		for _, op := range ops {
			s := kv.shardOf(op.Key)
			ctx := ctxs[s]
			if op.Del {
				if _, err := s.tree.Remove(ctx, op.Key); err != nil {
					return err
				}
				continue
			}
			updated, err := s.tree.Update(ctx, op.Key, op.Val)
			if err != nil {
				return err
			}
			if !updated {
				if err := s.tree.Insert(ctx, op.Key, op.Val); err != nil {
					return err
				}
			}
		}
		return nil
	})
}

// Check runs every shard tree's invariant sweep and returns the total key
// count (stop-the-world via a full read lock).
func (kv *KV) Check() (int, error) {
	ids := make([]oid.PoolID, len(kv.shards))
	for i := range kv.shards {
		ids[i] = kv.shards[i].pool.ID()
	}
	total := 0
	err := kv.sh.View(ids, func() error {
		for i := range kv.shards {
			s := &kv.shards[i]
			ctx := &txCtx{h: kv.sh.Heap(), alloc: s.pool}
			n, err := s.tree.CheckInvariants(ctx)
			if err != nil {
				return err
			}
			total += n
		}
		return nil
	})
	return total, err
}
