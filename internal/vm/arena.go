package vm

import "fmt"

// Arena is a simple bump allocator over a mapped region. The emitter uses
// one for the program's volatile globals (the software-translation hash
// table, the last-value-predictor variables, stack temporaries) so that
// BASE-mode translation code touches real, cacheable addresses.
type Arena struct {
	as     *AddressSpace
	region Region
	next   uint64
}

// NewArena maps size bytes and returns an allocator over the mapping.
func NewArena(as *AddressSpace, size uint64) (*Arena, error) {
	r, err := as.Map(size)
	if err != nil {
		return nil, err
	}
	return &Arena{as: as, region: r, next: r.Base}, nil
}

// Alloc returns the virtual address of a fresh block of size bytes with the
// requested power-of-two alignment.
func (a *Arena) Alloc(size, align uint64) (uint64, error) {
	if align == 0 {
		align = 1
	}
	if align&(align-1) != 0 {
		return 0, fmt.Errorf("vm: alignment %d is not a power of two", align)
	}
	base := (a.next + align - 1) &^ (align - 1)
	if base+size > a.region.End() {
		return 0, fmt.Errorf("vm: arena exhausted (%d bytes requested)", size)
	}
	a.next = base + size
	return base, nil
}

// Region returns the arena's backing mapping.
func (a *Arena) Region() Region { return a.region }

// Used returns the number of bytes handed out (including alignment padding).
func (a *Arena) Used() uint64 { return a.next - a.region.Base }
