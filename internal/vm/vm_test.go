package vm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMapBasics(t *testing.T) {
	as := NewAddressSpace(1)
	r, err := as.Map(100) // rounds up to one page
	if err != nil {
		t.Fatal(err)
	}
	if r.Size != PageSize {
		t.Errorf("size = %d, want one page", r.Size)
	}
	if r.Base&PageMask != 0 {
		t.Errorf("base %#x not page aligned", r.Base)
	}
	if !as.Mapped(r.Base) || !as.Mapped(r.End()-1) {
		t.Error("mapped range must be addressable")
	}
	if as.Mapped(r.End()) {
		t.Error("address past region must be unmapped")
	}
	if as.MappedBytes() != PageSize {
		t.Errorf("MappedBytes = %d", as.MappedBytes())
	}
}

func TestMapZeroFails(t *testing.T) {
	as := NewAddressSpace(1)
	if _, err := as.Map(0); err == nil {
		t.Error("mapping zero bytes must fail")
	}
}

func TestASLRRandomizesPlacement(t *testing.T) {
	a := NewAddressSpace(1)
	b := NewAddressSpace(2)
	ra, _ := a.Map(PageSize)
	rb, _ := b.Map(PageSize)
	if ra.Base == rb.Base {
		t.Error("different seeds should give different placements")
	}
	// Same seed gives identical placement: determinism.
	c := NewAddressSpace(1)
	rc, _ := c.Map(PageSize)
	if ra.Base != rc.Base {
		t.Error("same seed must reproduce placement")
	}
}

func TestMappingsDoNotOverlap(t *testing.T) {
	as := NewAddressSpace(7)
	var regions []Region
	for i := 0; i < 200; i++ {
		r, err := as.Map(4 * PageSize)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	for i := range regions {
		for j := i + 1; j < len(regions); j++ {
			if regions[i].overlaps(regions[j]) {
				t.Fatalf("regions %d and %d overlap", i, j)
			}
		}
	}
}

func TestTranslateDistinctFrames(t *testing.T) {
	as := NewAddressSpace(3)
	r, _ := as.Map(4 * PageSize)
	seen := map[uint64]bool{}
	for va := r.Base; va < r.End(); va += PageSize {
		pa, ok := as.Translate(va)
		if !ok {
			t.Fatalf("translate %#x failed", va)
		}
		if pa&PageMask != 0 {
			t.Errorf("page-aligned VA %#x gave misaligned PA %#x", va, pa)
		}
		if seen[pa] {
			t.Errorf("frame %#x mapped twice", pa)
		}
		seen[pa] = true
	}
	// Offset preservation.
	pa0, _ := as.Translate(r.Base)
	pa5, _ := as.Translate(r.Base + 5)
	if pa5 != pa0+5 {
		t.Error("translation must preserve page offset")
	}
	if _, ok := as.Translate(0xdead0000); ok {
		t.Error("unmapped address must not translate")
	}
}

func TestReadWriteAcrossPages(t *testing.T) {
	as := NewAddressSpace(4)
	r, _ := as.Map(2 * PageSize)
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i)
	}
	va := r.Base + PageSize - 150 // straddles the page boundary
	if err := as.WriteAt(va, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 300)
	if err := as.ReadAt(va, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-page read/write mismatch")
	}
}

func TestReadWriteUnmappedFails(t *testing.T) {
	as := NewAddressSpace(4)
	if err := as.WriteAt(0x1000, []byte{1}); err == nil {
		t.Error("write to unmapped address must fail")
	}
	if err := as.ReadAt(0x1000, make([]byte, 1)); err == nil {
		t.Error("read of unmapped address must fail")
	}
}

func TestWordHelpers(t *testing.T) {
	as := NewAddressSpace(5)
	r, _ := as.Map(PageSize)
	if err := as.Write64(r.Base+8, 0x1122334455667788); err != nil {
		t.Fatal(err)
	}
	v, err := as.Read64(r.Base + 8)
	if err != nil || v != 0x1122334455667788 {
		t.Errorf("Read64 = %#x, %v", v, err)
	}
	if err := as.Write32(r.Base+24, 0xcafebabe); err != nil {
		t.Fatal(err)
	}
	w, err := as.Read32(r.Base + 24)
	if err != nil || w != 0xcafebabe {
		t.Errorf("Read32 = %#x, %v", w, err)
	}
}

func TestUnmapAndFrameReuse(t *testing.T) {
	as := NewAddressSpace(6)
	r1, _ := as.Map(2 * PageSize)
	framesBefore := len(as.frames)
	if err := as.Unmap(r1); err != nil {
		t.Fatal(err)
	}
	if as.Mapped(r1.Base) {
		t.Error("unmapped region must not be addressable")
	}
	if err := as.Unmap(r1); err == nil {
		t.Error("double unmap must fail")
	}
	// New mapping reuses freed frames rather than growing physical memory.
	_, _ = as.Map(2 * PageSize)
	if len(as.frames) != framesBefore {
		t.Errorf("frames grew from %d to %d despite free list", framesBefore, len(as.frames))
	}
}

func TestMapFixed(t *testing.T) {
	as := NewAddressSpace(8)
	r, err := as.MapFixed(0x10000, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if r.Base != 0x10000 {
		t.Errorf("base = %#x", r.Base)
	}
	if _, err := as.MapFixed(0x10000, PageSize); err == nil {
		t.Error("overlapping MapFixed must fail")
	}
	if _, err := as.MapFixed(0x10001, PageSize); err == nil {
		t.Error("misaligned MapFixed must fail")
	}
	if _, err := as.MapFixed(0x20000, 0); err == nil {
		t.Error("zero-size MapFixed must fail")
	}
}

func TestRegionOf(t *testing.T) {
	as := NewAddressSpace(9)
	r, _ := as.Map(3 * PageSize)
	got, ok := as.RegionOf(r.Base + PageSize + 5)
	if !ok || got != r {
		t.Errorf("RegionOf = %+v, %t", got, ok)
	}
	if _, ok := as.RegionOf(0x42); ok {
		t.Error("RegionOf must miss for unmapped addresses")
	}
}

func TestArena(t *testing.T) {
	as := NewAddressSpace(10)
	a, err := NewArena(as, 2*PageSize)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := a.Alloc(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p1%8 != 0 {
		t.Errorf("allocation %#x not 8-aligned", p1)
	}
	p2, err := a.Alloc(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if p2%64 != 0 {
		t.Errorf("allocation %#x not 64-aligned", p2)
	}
	if p2 < p1+10 {
		t.Error("allocations overlap")
	}
	if _, err := a.Alloc(1, 3); err == nil {
		t.Error("non-power-of-two alignment must fail")
	}
	if _, err := a.Alloc(10*PageSize, 8); err == nil {
		t.Error("over-allocation must fail")
	}
	if a.Used() == 0 {
		t.Error("Used must track consumption")
	}
	if a.Region().Size != 2*PageSize {
		t.Error("Region must report backing mapping")
	}
	// Arena memory is real memory.
	if err := as.Write64(p1, 42); err != nil {
		t.Fatal(err)
	}
}

// Property: any value written at any in-range offset reads back.
func TestQuickReadBack(t *testing.T) {
	as := NewAddressSpace(11)
	r, _ := as.Map(16 * PageSize)
	f := func(off uint16, v uint64) bool {
		va := r.Base + uint64(off)%(r.Size-8)
		if err := as.Write64(va, v); err != nil {
			return false
		}
		got, err := as.Read64(va)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: translation is a bijection on mapped pages (no two VPNs share a
// frame).
func TestQuickTranslationInjective(t *testing.T) {
	as := NewAddressSpace(12)
	var rs []Region
	for i := 0; i < 32; i++ {
		r, err := as.Map(PageSize * 2)
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	seen := map[uint64]uint64{}
	for _, r := range rs {
		for va := r.Base; va < r.End(); va += PageSize {
			pa, ok := as.Translate(va)
			if !ok {
				t.Fatalf("unmapped page at %#x", va)
			}
			if prev, dup := seen[pa]; dup {
				t.Fatalf("PA %#x maps both %#x and %#x", pa, prev, va)
			}
			seen[pa] = va
		}
	}
}
