// Package vm implements the simulated virtual address space that persistent
// pools and volatile program data live in.
//
// The model mirrors the paper's Figure 2: every pool is mapped, in its
// entirety, somewhere in a process's virtual address space (at an
// ASLR-randomized location — relocatability under ASLR is the whole point of
// ObjectIDs), and each 4 KB virtual page is individually mapped to a physical
// frame by a conventional page table. Physical frames carry real bytes, so
// functional execution (allocator metadata, undo logs, serialized objects)
// happens in this memory.
package vm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
)

// Page geometry shared with the cache/TLB models.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// mmapBase/mmapSpan delimit the randomized mmap arena, loosely modelled on
// the x86-64 user address space.
const (
	mmapBase = 0x0000_7000_0000_0000
	mmapSpan = 0x0000_0f00_0000_0000
)

// Region describes one mapped virtual range.
type Region struct {
	Base uint64
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

func (r Region) contains(va uint64) bool { return va >= r.Base && va < r.End() }

func (r Region) overlaps(o Region) bool { return r.Base < o.End() && o.Base < r.End() }

// AddressSpace is one process's virtual address space plus the physical
// memory behind it.
type AddressSpace struct {
	rng       *rand.Rand
	pageTable map[uint64]uint32 // VPN -> PFN
	frames    [][]byte          // physical frames by PFN; nil after free
	freePFNs  []uint32
	regions   []Region // sorted by Base
}

// NewAddressSpace creates an empty address space. The seed drives ASLR
// placement so runs are reproducible.
func NewAddressSpace(seed int64) *AddressSpace {
	return &AddressSpace{
		rng:       rand.New(rand.NewSource(seed)),
		pageTable: make(map[uint64]uint32),
	}
}

// Map allocates a page-aligned virtual region of at least size bytes at an
// ASLR-randomized address, backs every page with a zeroed physical frame,
// and returns the region.
func (as *AddressSpace) Map(size uint64) (Region, error) {
	if size == 0 {
		return Region{}, fmt.Errorf("vm: cannot map empty region")
	}
	size = (size + PageMask) &^ uint64(PageMask)
	var base uint64
	for attempt := 0; ; attempt++ {
		if attempt == 4096 {
			return Region{}, fmt.Errorf("vm: no room for %d-byte mapping", size)
		}
		base = mmapBase + (uint64(as.rng.Int63n(mmapSpan/PageSize)) * PageSize)
		if base+size <= mmapBase+mmapSpan && !as.overlapsAny(Region{base, size}) {
			break
		}
	}
	r := Region{Base: base, Size: size}
	as.insertRegion(r)
	for va := base; va < base+size; va += PageSize {
		as.pageTable[va>>PageShift] = as.allocFrame()
	}
	return r, nil
}

// MapFixed maps a region at a caller-chosen base (used by tests and by the
// volatile-globals arena, which wants a stable address). The base must be
// page-aligned and the region must not overlap an existing mapping.
func (as *AddressSpace) MapFixed(base, size uint64) (Region, error) {
	if base&PageMask != 0 {
		return Region{}, fmt.Errorf("vm: MapFixed base %#x not page-aligned", base)
	}
	if size == 0 {
		return Region{}, fmt.Errorf("vm: cannot map empty region")
	}
	size = (size + PageMask) &^ uint64(PageMask)
	r := Region{Base: base, Size: size}
	if as.overlapsAny(r) {
		return Region{}, fmt.Errorf("vm: MapFixed %#x+%#x overlaps existing mapping", base, size)
	}
	as.insertRegion(r)
	for va := base; va < base+size; va += PageSize {
		as.pageTable[va>>PageShift] = as.allocFrame()
	}
	return r, nil
}

// Unmap removes a previously mapped region and frees its frames.
func (as *AddressSpace) Unmap(r Region) error {
	idx := -1
	for i, reg := range as.regions {
		if reg == r {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("vm: Unmap of unknown region %#x+%#x", r.Base, r.Size)
	}
	as.regions = append(as.regions[:idx], as.regions[idx+1:]...)
	for va := r.Base; va < r.End(); va += PageSize {
		vpn := va >> PageShift
		pfn, ok := as.pageTable[vpn]
		if !ok {
			continue
		}
		delete(as.pageTable, vpn)
		as.frames[pfn] = nil
		as.freePFNs = append(as.freePFNs, pfn)
	}
	return nil
}

// Translate converts a virtual address to a physical address via the page
// table. ok is false for unmapped addresses (the moral equivalent of a page
// fault on an untouched address).
func (as *AddressSpace) Translate(va uint64) (pa uint64, ok bool) {
	pfn, ok := as.pageTable[va>>PageShift]
	if !ok {
		return 0, false
	}
	return uint64(pfn)<<PageShift | va&PageMask, true
}

// Mapped reports whether the virtual address lies in a mapped region.
func (as *AddressSpace) Mapped(va uint64) bool {
	_, ok := as.pageTable[va>>PageShift]
	return ok
}

// MappedBytes returns the total number of bytes currently mapped.
func (as *AddressSpace) MappedBytes() uint64 {
	var n uint64
	for _, r := range as.regions {
		n += r.Size
	}
	return n
}

// ReadAt copies len(buf) bytes starting at virtual address va into buf,
// crossing page boundaries as needed.
func (as *AddressSpace) ReadAt(va uint64, buf []byte) error {
	for len(buf) > 0 {
		frame, off, err := as.frameFor(va)
		if err != nil {
			return err
		}
		n := copy(buf, frame[off:])
		buf = buf[n:]
		va += uint64(n)
	}
	return nil
}

// WriteAt copies data into memory starting at virtual address va.
func (as *AddressSpace) WriteAt(va uint64, data []byte) error {
	for len(data) > 0 {
		frame, off, err := as.frameFor(va)
		if err != nil {
			return err
		}
		n := copy(frame[off:], data)
		data = data[n:]
		va += uint64(n)
	}
	return nil
}

// Read64 reads a little-endian uint64 at va.
func (as *AddressSpace) Read64(va uint64) (uint64, error) {
	var b [8]byte
	if err := as.ReadAt(va, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Write64 writes a little-endian uint64 at va.
func (as *AddressSpace) Write64(va uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.WriteAt(va, b[:])
}

// Read32 reads a little-endian uint32 at va.
func (as *AddressSpace) Read32(va uint64) (uint32, error) {
	var b [4]byte
	if err := as.ReadAt(va, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Write32 writes a little-endian uint32 at va.
func (as *AddressSpace) Write32(va uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.WriteAt(va, b[:])
}

func (as *AddressSpace) frameFor(va uint64) ([]byte, uint64, error) {
	pfn, ok := as.pageTable[va>>PageShift]
	if !ok {
		return nil, 0, fmt.Errorf("vm: access to unmapped address %#x", va)
	}
	return as.frames[pfn], va & PageMask, nil
}

func (as *AddressSpace) allocFrame() uint32 {
	if n := len(as.freePFNs); n > 0 {
		pfn := as.freePFNs[n-1]
		as.freePFNs = as.freePFNs[:n-1]
		as.frames[pfn] = make([]byte, PageSize)
		return pfn
	}
	as.frames = append(as.frames, make([]byte, PageSize))
	return uint32(len(as.frames) - 1)
}

func (as *AddressSpace) overlapsAny(r Region) bool {
	for _, reg := range as.regions {
		if reg.overlaps(r) {
			return true
		}
	}
	return false
}

func (as *AddressSpace) insertRegion(r Region) {
	as.regions = append(as.regions, r)
	sort.Slice(as.regions, func(i, j int) bool { return as.regions[i].Base < as.regions[j].Base })
}

// RegionOf returns the mapped region containing va, if any.
func (as *AddressSpace) RegionOf(va uint64) (Region, bool) {
	for _, r := range as.regions {
		if r.contains(va) {
			return r, true
		}
	}
	return Region{}, false
}
