// Package vm implements the simulated virtual address space that persistent
// pools and volatile program data live in.
//
// The model mirrors the paper's Figure 2: every pool is mapped, in its
// entirety, somewhere in a process's virtual address space (at an
// ASLR-randomized location — relocatability under ASLR is the whole point of
// ObjectIDs), and each 4 KB virtual page is individually mapped to a physical
// frame by a conventional page table. Physical frames carry real bytes, so
// functional execution (allocator metadata, undo logs, serialized objects)
// happens in this memory.
package vm

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
)

// Page geometry shared with the cache/TLB models.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// mmapBase/mmapSpan delimit the randomized mmap arena, loosely modelled on
// the x86-64 user address space.
const (
	mmapBase = 0x0000_7000_0000_0000
	mmapSpan = 0x0000_0f00_0000_0000
)

// Page-table geometry: translations are on the per-simulated-instruction hot
// path (every load, store and POT probe), so the VPN→PFN mapping is a
// two-level radix array over the mmap arena instead of a hash map, fronted by
// a last-VPN memo that short-circuits the common same-page access run.
//
// Leaf entries store PFN+1 so the zero value means "unmapped" and a leaf is
// usable straight from the allocator. A leaf covers 2^ptLeafBits pages
// (32 MB of virtual space at 16 KB per leaf), and the top level is one
// pointer per possible leaf of the arena (~3.7 MB per address space, a single
// allocation). The rare mapping outside the arena (MapFixed at a
// caller-chosen low address — tests) falls back to a small map.
const (
	ptLeafBits = 13
	ptLeafSize = 1 << ptLeafBits
	ptLeafMask = ptLeafSize - 1

	arenaVPNBase = mmapBase >> PageShift
	arenaVPNs    = mmapSpan >> PageShift
)

type ptLeaf [ptLeafSize]uint32

// pageTable maps virtual page numbers to physical frame numbers.
type pageTable struct {
	top []*ptLeaf         // arena leaves, indexed by (vpn-arenaVPNBase)>>ptLeafBits
	out map[uint64]uint32 // out-of-arena VPNs (MapFixed; cold), PFN+1

	// Last-translation memo. memoPFN is PFN+1; 0 means no memo. noMemo
	// disables the memo for concurrent address spaces: the memo is the
	// page table's only lookup-path mutation, so with it off, concurrent
	// lookups are pure reads.
	memoVPN uint64
	memoPFN uint32
	noMemo  bool
}

func (pt *pageTable) lookup(vpn uint64) (uint32, bool) {
	if pt.memoPFN != 0 && vpn == pt.memoVPN {
		return pt.memoPFN - 1, true
	}
	var e uint32
	if rel := vpn - arenaVPNBase; rel < arenaVPNs {
		leaf := pt.top[rel>>ptLeafBits]
		if leaf == nil {
			return 0, false
		}
		e = leaf[rel&ptLeafMask]
	} else {
		e = pt.out[vpn]
	}
	if e == 0 {
		return 0, false
	}
	if !pt.noMemo {
		pt.memoVPN, pt.memoPFN = vpn, e
	}
	return e - 1, true
}

func (pt *pageTable) set(vpn uint64, pfn uint32) {
	if rel := vpn - arenaVPNBase; rel < arenaVPNs {
		leaf := pt.top[rel>>ptLeafBits]
		if leaf == nil {
			leaf = new(ptLeaf)
			pt.top[rel>>ptLeafBits] = leaf
		}
		leaf[rel&ptLeafMask] = pfn + 1
		return
	}
	if pt.out == nil {
		pt.out = make(map[uint64]uint32)
	}
	pt.out[vpn] = pfn + 1
}

// clear unmaps vpn, returning its PFN (ok=false if it was not mapped).
func (pt *pageTable) clear(vpn uint64) (uint32, bool) {
	if pt.memoPFN != 0 && vpn == pt.memoVPN {
		pt.memoPFN = 0
	}
	if rel := vpn - arenaVPNBase; rel < arenaVPNs {
		leaf := pt.top[rel>>ptLeafBits]
		if leaf == nil || leaf[rel&ptLeafMask] == 0 {
			return 0, false
		}
		pfn := leaf[rel&ptLeafMask] - 1
		leaf[rel&ptLeafMask] = 0
		return pfn, true
	}
	e, ok := pt.out[vpn]
	if !ok {
		return 0, false
	}
	delete(pt.out, vpn)
	return e - 1, true
}

// Region describes one mapped virtual range.
type Region struct {
	Base uint64
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

func (r Region) contains(va uint64) bool { return va >= r.Base && va < r.End() }

func (r Region) overlaps(o Region) bool { return r.Base < o.End() && o.Base < r.End() }

// AddressSpace is one process's virtual address space plus the physical
// memory behind it.
type AddressSpace struct {
	rng       *rand.Rand
	pageTable pageTable
	frames    [][]byte // physical frames by PFN
	freePFNs  []uint32
	regions   []Region // sorted by Base

	// Fresh frames are carved from slabs so backing a region costs one
	// allocation per frameSlabPages pages instead of one per page.
	slab    []byte
	slabOff int
}

// frameSlabPages is the number of physical frames carved from one backing
// slab allocation.
const frameSlabPages = 64

// NewAddressSpace creates an empty address space. The seed drives ASLR
// placement so runs are reproducible.
func NewAddressSpace(seed int64) *AddressSpace {
	return &AddressSpace{
		rng: rand.New(rand.NewSource(seed)),
		pageTable: pageTable{
			top: make([]*ptLeaf, (arenaVPNs+ptLeafSize-1)>>ptLeafBits),
		},
	}
}

// SetConcurrent prepares the address space for access from multiple
// goroutines: the last-translation memo is switched off (and cleared), so
// Translate/ReadAt/WriteAt on mapped pages become read-only with respect to
// the page table and may run concurrently. Structural operations
// (Map/MapFixed/Unmap) still require external serialization — under the
// sharded heap they run stop-the-world.
func (as *AddressSpace) SetConcurrent() {
	as.pageTable.noMemo = true
	as.pageTable.memoPFN = 0
}

// Map allocates a page-aligned virtual region of at least size bytes at an
// ASLR-randomized address, backs every page with a zeroed physical frame,
// and returns the region.
func (as *AddressSpace) Map(size uint64) (Region, error) {
	if size == 0 {
		return Region{}, fmt.Errorf("vm: cannot map empty region")
	}
	size = (size + PageMask) &^ uint64(PageMask)
	var base uint64
	for attempt := 0; ; attempt++ {
		if attempt == 4096 {
			return Region{}, fmt.Errorf("vm: no room for %d-byte mapping", size)
		}
		base = mmapBase + (uint64(as.rng.Int63n(mmapSpan/PageSize)) * PageSize)
		if base+size <= mmapBase+mmapSpan && !as.overlapsAny(Region{base, size}) {
			break
		}
	}
	r := Region{Base: base, Size: size}
	as.insertRegion(r)
	for va := base; va < base+size; va += PageSize {
		as.pageTable.set(va>>PageShift, as.allocFrame())
	}
	return r, nil
}

// MapFixed maps a region at a caller-chosen base (used by tests and by the
// volatile-globals arena, which wants a stable address). The base must be
// page-aligned and the region must not overlap an existing mapping.
func (as *AddressSpace) MapFixed(base, size uint64) (Region, error) {
	if base&PageMask != 0 {
		return Region{}, fmt.Errorf("vm: MapFixed base %#x not page-aligned", base)
	}
	if size == 0 {
		return Region{}, fmt.Errorf("vm: cannot map empty region")
	}
	size = (size + PageMask) &^ uint64(PageMask)
	r := Region{Base: base, Size: size}
	if as.overlapsAny(r) {
		return Region{}, fmt.Errorf("vm: MapFixed %#x+%#x overlaps existing mapping", base, size)
	}
	as.insertRegion(r)
	for va := base; va < base+size; va += PageSize {
		as.pageTable.set(va>>PageShift, as.allocFrame())
	}
	return r, nil
}

// Unmap removes a previously mapped region and frees its frames.
func (as *AddressSpace) Unmap(r Region) error {
	idx := -1
	for i, reg := range as.regions {
		if reg == r {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("vm: Unmap of unknown region %#x+%#x", r.Base, r.Size)
	}
	as.regions = append(as.regions[:idx], as.regions[idx+1:]...)
	for va := r.Base; va < r.End(); va += PageSize {
		pfn, ok := as.pageTable.clear(va >> PageShift)
		if !ok {
			continue
		}
		// The frame's slab memory is shared with neighbouring frames, so
		// keep the subslice and zero it on reuse (allocFrame).
		as.freePFNs = append(as.freePFNs, pfn)
	}
	return nil
}

// Translate converts a virtual address to a physical address via the page
// table. ok is false for unmapped addresses (the moral equivalent of a page
// fault on an untouched address).
func (as *AddressSpace) Translate(va uint64) (pa uint64, ok bool) {
	pfn, ok := as.pageTable.lookup(va >> PageShift)
	if !ok {
		return 0, false
	}
	return uint64(pfn)<<PageShift | va&PageMask, true
}

// Mapped reports whether the virtual address lies in a mapped region.
func (as *AddressSpace) Mapped(va uint64) bool {
	_, ok := as.pageTable.lookup(va >> PageShift)
	return ok
}

// MappedBytes returns the total number of bytes currently mapped.
func (as *AddressSpace) MappedBytes() uint64 {
	var n uint64
	for _, r := range as.regions {
		n += r.Size
	}
	return n
}

// ReadAt copies len(buf) bytes starting at virtual address va into buf,
// crossing page boundaries as needed.
func (as *AddressSpace) ReadAt(va uint64, buf []byte) error {
	for len(buf) > 0 {
		frame, off, err := as.frameFor(va)
		if err != nil {
			return err
		}
		n := copy(buf, frame[off:])
		buf = buf[n:]
		va += uint64(n)
	}
	return nil
}

// WriteAt copies data into memory starting at virtual address va.
func (as *AddressSpace) WriteAt(va uint64, data []byte) error {
	for len(data) > 0 {
		frame, off, err := as.frameFor(va)
		if err != nil {
			return err
		}
		n := copy(frame[off:], data)
		data = data[n:]
		va += uint64(n)
	}
	return nil
}

// Read64 reads a little-endian uint64 at va.
func (as *AddressSpace) Read64(va uint64) (uint64, error) {
	var b [8]byte
	if err := as.ReadAt(va, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Write64 writes a little-endian uint64 at va.
func (as *AddressSpace) Write64(va uint64, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return as.WriteAt(va, b[:])
}

// Read32 reads a little-endian uint32 at va.
func (as *AddressSpace) Read32(va uint64) (uint32, error) {
	var b [4]byte
	if err := as.ReadAt(va, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

// Write32 writes a little-endian uint32 at va.
func (as *AddressSpace) Write32(va uint64, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	return as.WriteAt(va, b[:])
}

func (as *AddressSpace) frameFor(va uint64) ([]byte, uint64, error) {
	pfn, ok := as.pageTable.lookup(va >> PageShift)
	if !ok {
		return nil, 0, fmt.Errorf("vm: access to unmapped address %#x", va)
	}
	return as.frames[pfn], va & PageMask, nil
}

func (as *AddressSpace) allocFrame() uint32 {
	if n := len(as.freePFNs); n > 0 {
		pfn := as.freePFNs[n-1]
		as.freePFNs = as.freePFNs[:n-1]
		clear(as.frames[pfn])
		return pfn
	}
	if as.slabOff == len(as.slab) {
		as.slab = make([]byte, frameSlabPages*PageSize)
		as.slabOff = 0
	}
	frame := as.slab[as.slabOff : as.slabOff+PageSize : as.slabOff+PageSize]
	as.slabOff += PageSize
	as.frames = append(as.frames, frame)
	return uint32(len(as.frames) - 1)
}

func (as *AddressSpace) overlapsAny(r Region) bool {
	for _, reg := range as.regions {
		if reg.overlaps(r) {
			return true
		}
	}
	return false
}

func (as *AddressSpace) insertRegion(r Region) {
	as.regions = append(as.regions, r)
	sort.Slice(as.regions, func(i, j int) bool { return as.regions[i].Base < as.regions[j].Base })
}

// RegionOf returns the mapped region containing va, if any.
func (as *AddressSpace) RegionOf(va uint64) (Region, bool) {
	for _, r := range as.regions {
		if r.contains(va) {
			return r, true
		}
	}
	return Region{}, false
}
