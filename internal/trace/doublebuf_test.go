package trace

import (
	"testing"

	"potgo/internal/isa"
)

// chunkHash fingerprints a chunk's contents so mutation while the consumer
// holds it is detectable.
func chunkHash(c []isa.Instr) uint64 {
	var h uint64 = 1469598103934665603
	for i := range c {
		h = (h ^ c[i].PC) * 1099511628211
	}
	return h
}

// TestLockstepProducerNeverMutatesHeldChunk drives the double-buffered
// hand-off and asserts the producer never writes into a chunk the consumer
// still holds: each chunk is fingerprinted on receipt and re-checked after
// the consumer has read every instruction, immediately before the ack is
// sent (the only point the buffer is released back to the producer).
func TestLockstepProducerNeverMutatesHeldChunk(t *testing.T) {
	const n = ChunkSize*5 + 123
	l := GenerateLockstep(func(sink Sink) {
		for i := 0; i < n; i++ {
			sink.Emit(isa.Instr{Op: isa.ALU, PC: uint64(i)})
		}
	})
	defer l.Close()
	var expect uint64
	var sumAtReceipt uint64
	for {
		if l.opened && l.pos >= len(l.cur) {
			// Chunk fully consumed but not yet acked: the producer is
			// still blocked, so the contents must be exactly as received.
			if h := chunkHash(l.cur); h != sumAtReceipt {
				t.Fatalf("chunk mutated while held (at instruction %d)", expect)
			}
		}
		in, ok := l.Next()
		if !ok {
			break
		}
		if l.pos == 1 {
			// First instruction of a freshly received chunk: fingerprint
			// it while the producer is parked awaiting our ack.
			sumAtReceipt = chunkHash(l.cur)
		}
		if in.PC != expect {
			t.Fatalf("instruction %d carries PC %d: stream corrupted by buffer reuse", expect, in.PC)
		}
		expect++
	}
	if expect != n {
		t.Fatalf("delivered %d instructions, want %d", expect, n)
	}
}

// TestLockstepChunksAlternateBuffers pins the double-buffering itself:
// consecutive chunks must arrive in different backing arrays (the producer
// refills the released buffer, never the one just handed over).
func TestLockstepChunksAlternateBuffers(t *testing.T) {
	const n = ChunkSize * 4
	l := GenerateLockstep(func(sink Sink) {
		for i := 0; i < n; i++ {
			sink.Emit(isa.Instr{Op: isa.ALU, PC: uint64(i)})
		}
	})
	defer l.Close()
	var prev *isa.Instr
	chunks := 0
	for {
		_, ok := l.Next()
		if !ok {
			break
		}
		if l.pos == 1 {
			chunks++
			cur := &l.cur[0]
			if prev != nil && cur == prev {
				t.Fatalf("chunk %d reuses the buffer the consumer just held", chunks)
			}
			prev = cur
		}
	}
	if chunks != n/ChunkSize {
		t.Fatalf("saw %d chunks, want %d", chunks, n/ChunkSize)
	}
}

// TestLockstepSteadyStateAllocs asserts the chunk hand-off allocates nothing
// once the two buffers exist: consuming a full chunk must average (well)
// under one allocation.
func TestLockstepSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are skewed under the race detector")
	}
	const chunks = 140
	l := GenerateLockstep(func(sink Sink) {
		for i := 0; i < ChunkSize*chunks; i++ {
			sink.Emit(isa.Instr{Op: isa.ALU, PC: uint64(i)})
		}
	})
	defer l.Close()
	// Warm up past the initial buffer allocations.
	for i := 0; i < ChunkSize*2; i++ {
		if _, ok := l.Next(); !ok {
			t.Fatal("stream ended during warm-up")
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		for i := 0; i < ChunkSize; i++ {
			if _, ok := l.Next(); !ok {
				t.Fatal("stream ended mid-measurement")
			}
		}
	})
	if avg >= 1 {
		t.Errorf("steady-state chunk hand-off allocates %.1f times per chunk, want 0", avg)
	}
}
