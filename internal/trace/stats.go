package trace

import (
	"fmt"
	"strings"

	"potgo/internal/isa"
)

// Stats accumulates dynamic instruction-mix statistics for a trace.
type Stats struct {
	// ByOp counts dynamic instructions per class.
	ByOp [16]uint64
	// Total is the dynamic instruction count.
	Total uint64
	// Branches and Taken count conditional branches and how many were
	// taken.
	Branches, Taken uint64
}

// Record accounts for one instruction.
func (s *Stats) Record(in isa.Instr) {
	s.Total++
	s.ByOp[in.Op]++
	if in.Op == isa.Branch {
		s.Branches++
		if in.Taken {
			s.Taken++
		}
	}
}

// Add merges other into s.
func (s *Stats) Add(other Stats) {
	for i := range s.ByOp {
		s.ByOp[i] += other.ByOp[i]
	}
	s.Total += other.Total
	s.Branches += other.Branches
	s.Taken += other.Taken
}

// Loads returns the dynamic count of load-class instructions (ld + nvld).
func (s *Stats) Loads() uint64 {
	return s.ByOp[isa.Load] + s.ByOp[isa.NVLoad]
}

// Stores returns the dynamic count of store-class instructions
// (st + nvst + clwb).
func (s *Stats) Stores() uint64 {
	return s.ByOp[isa.Store] + s.ByOp[isa.NVStore] + s.ByOp[isa.CLWB]
}

// Persistent returns the dynamic count of ObjectID-addressed accesses.
func (s *Stats) Persistent() uint64 {
	return s.ByOp[isa.NVLoad] + s.ByOp[isa.NVStore]
}

// String renders the instruction mix.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "total=%d", s.Total)
	for op := isa.Op(0); op < 12; op++ {
		if s.ByOp[op] > 0 {
			fmt.Fprintf(&b, " %s=%d", op, s.ByOp[op])
		}
	}
	return b.String()
}
