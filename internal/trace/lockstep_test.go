package trace

import (
	"sync/atomic"
	"testing"

	"potgo/internal/isa"
)

func TestLockstepDeliversAllInOrder(t *testing.T) {
	const n = ChunkSize*2 + 100
	l := GenerateLockstep(func(sink Sink) {
		for i := 0; i < n; i++ {
			sink.Emit(isa.Instr{Op: isa.ALU, PC: uint64(i)})
		}
	})
	for i := 0; i < n; i++ {
		in, ok := l.Next()
		if !ok {
			t.Fatalf("ended early at %d", i)
		}
		if in.PC != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, in.PC)
		}
	}
	if _, ok := l.Next(); ok {
		t.Error("must end")
	}
}

// The heart of the protocol: the producer must never run while the consumer
// is mid-chunk. We detect overlap with an atomic flag toggled by the
// consumer around chunk processing.
func TestLockstepNeverOverlaps(t *testing.T) {
	var consumerActive atomic.Bool
	var violations atomic.Int64
	const n = ChunkSize * 3
	l := GenerateLockstep(func(sink Sink) {
		for i := 0; i < n; i++ {
			if consumerActive.Load() {
				violations.Add(1)
			}
			sink.Emit(isa.Instr{Op: isa.ALU})
		}
	})
	for {
		in, ok := l.Next()
		if !ok {
			break
		}
		_ = in
		// Simulate consumer work with the flag set; producer checks
		// it on every emit.
		consumerActive.Store(true)
		for i := 0; i < 10; i++ {
			_ = i
		}
		consumerActive.Store(false)
	}
	if v := violations.Load(); v != 0 {
		t.Errorf("producer ran during consumption %d times", v)
	}
}

func TestLockstepEarlyClose(t *testing.T) {
	finished := make(chan int, 1)
	l := GenerateLockstep(func(sink Sink) {
		i := 0
		defer func() {
			finished <- i
			if r := recover(); r != nil {
				panic(r)
			}
		}()
		for ; i < ChunkSize*100; i++ {
			sink.Emit(isa.Instr{Op: isa.ALU})
		}
	})
	for i := 0; i < 5; i++ {
		if _, ok := l.Next(); !ok {
			t.Fatal("ended unexpectedly")
		}
	}
	l.Close()
	if n := <-finished; n >= ChunkSize*100 {
		t.Error("producer ran to completion despite Close")
	}
	l.Close() // idempotent
	if _, ok := l.Next(); ok {
		t.Error("Next after Close must report end")
	}
}

func TestLockstepEmptyProducer(t *testing.T) {
	l := GenerateLockstep(func(Sink) {})
	if _, ok := l.Next(); ok {
		t.Error("empty producer yields empty source")
	}
}

func TestLockstepPartialFinalChunk(t *testing.T) {
	l := GenerateLockstep(func(sink Sink) {
		for i := 0; i < 7; i++ {
			sink.Emit(isa.Instr{Op: isa.ALU})
		}
	})
	count := 0
	for {
		if _, ok := l.Next(); !ok {
			break
		}
		count++
	}
	if count != 7 {
		t.Errorf("delivered %d, want 7", count)
	}
}
