// Package trace carries dynamic instruction streams from the code emitter to
// the timing models.
//
// A full trace for one experiment can run to tens of millions of
// instructions, so streams are chunked: the producer (a functionally
// executing workload) fills fixed-size slices of instructions and hands them
// to the consumer (a CPU timing model) over a channel. This bounds memory to
// a few chunks regardless of trace length and keeps per-instruction overhead
// negligible.
package trace

import (
	"potgo/internal/isa"
)

// ChunkSize is the number of instructions per streamed chunk.
const ChunkSize = 1 << 14

// Sink receives emitted instructions one at a time.
type Sink interface {
	Emit(isa.Instr)
}

// Discard is a Sink that drops every instruction. It is used when a workload
// is executed purely functionally (e.g. to warm a heap or verify behaviour)
// with no timing run attached.
type Discard struct{}

// Emit implements Sink.
func (Discard) Emit(isa.Instr) {}

// Counting wraps statistics gathering as a Sink.
type Counting struct{ Stats Stats }

// Emit implements Sink.
func (c *Counting) Emit(in isa.Instr) { c.Stats.Record(in) }

// Tee duplicates emitted instructions to multiple sinks.
type Tee []Sink

// Emit implements Sink.
func (t Tee) Emit(in isa.Instr) {
	for _, s := range t {
		s.Emit(in)
	}
}

// Buffer is a Sink that materializes the whole trace in memory. Intended for
// tests and small runs.
type Buffer struct {
	Instrs []isa.Instr
}

// Emit implements Sink.
func (b *Buffer) Emit(in isa.Instr) { b.Instrs = append(b.Instrs, in) }

// Source yields instructions to a timing model.
type Source interface {
	// Next returns the next instruction. ok is false at end of trace.
	Next() (in isa.Instr, ok bool)
}

// BufferSource adapts a materialized instruction slice to a Source.
type BufferSource struct {
	Instrs []isa.Instr
	pos    int
}

// Next implements Source.
func (b *BufferSource) Next() (isa.Instr, bool) {
	if b.pos >= len(b.Instrs) {
		return isa.Instr{}, false
	}
	in := b.Instrs[b.pos]
	b.pos++
	return in, true
}

// Stream is a chunked, concurrently produced Source.
type Stream struct {
	ch   chan []isa.Instr
	done chan struct{}
	cur  []isa.Instr
	pos  int
}

// Generate runs producer in its own goroutine, giving it a Sink whose
// instructions arrive at the returned Stream. The producer goroutine exits
// when it returns or when the consumer calls Close.
func Generate(producer func(Sink)) *Stream {
	s := &Stream{
		ch:   make(chan []isa.Instr, 4),
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.ch)
		sink := &chunkSink{stream: s, buf: make([]isa.Instr, 0, ChunkSize)}
		defer func() {
			// A closed consumer aborts the producer via panic; turn
			// that into a clean goroutine exit.
			if r := recover(); r != nil && r != errStreamClosed {
				panic(r)
			}
		}()
		producer(sink)
		sink.flush()
	}()
	return s
}

type streamClosed struct{}

var errStreamClosed = streamClosed{}

type chunkSink struct {
	stream *Stream
	buf    []isa.Instr
}

// Emit implements Sink.
func (c *chunkSink) Emit(in isa.Instr) {
	c.buf = append(c.buf, in)
	if len(c.buf) == ChunkSize {
		c.flush()
	}
}

func (c *chunkSink) flush() {
	if len(c.buf) == 0 {
		return
	}
	select {
	case c.stream.ch <- c.buf:
	case <-c.stream.done:
		panic(errStreamClosed)
	}
	c.buf = make([]isa.Instr, 0, ChunkSize)
}

// Next implements Source.
func (s *Stream) Next() (isa.Instr, bool) {
	for s.pos >= len(s.cur) {
		chunk, ok := <-s.ch
		if !ok {
			return isa.Instr{}, false
		}
		s.cur, s.pos = chunk, 0
	}
	in := s.cur[s.pos]
	s.pos++
	return in, true
}

// Close releases the producer goroutine if the consumer stops early. It is
// safe to call multiple times and after the trace is exhausted.
func (s *Stream) Close() {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	// Drain so a producer blocked on send can observe done.
	for range s.ch {
	}
}
