package trace

import "potgo/internal/isa"

// Lockstep is a Source whose producer and consumer strictly alternate: the
// producer fills one chunk and then blocks until the consumer has finished
// executing it. This matters because the two sides share simulator state —
// the producing workload maps pools into the address space and inserts POT
// entries while the consuming CPU model walks the same structures — so they
// must never run concurrently. The chunk hand-off is the only
// synchronization point, and exactly one side is ever active.
type Lockstep struct {
	ch   chan []isa.Instr
	ack  chan struct{}
	done chan struct{}

	cur    []isa.Instr
	pos    int
	opened bool
}

// GenerateLockstep runs producer in its own goroutine under the alternation
// protocol and returns the consumer's Source.
func GenerateLockstep(producer func(Sink)) *Lockstep {
	l := &Lockstep{
		ch:   make(chan []isa.Instr),
		ack:  make(chan struct{}),
		done: make(chan struct{}),
	}
	go func() {
		defer close(l.ch)
		sink := &lockSink{
			l:     l,
			buf:   make([]isa.Instr, 0, ChunkSize),
			spare: make([]isa.Instr, 0, ChunkSize),
		}
		defer func() {
			if r := recover(); r != nil && r != errStreamClosed {
				panic(r)
			}
		}()
		producer(sink)
		sink.flush()
	}()
	return l
}

// lockSink double-buffers its chunks: the alternation protocol means the
// consumer has acked (and will never touch again) the previously handed-over
// chunk by the time the producer needs a fresh buffer, so two buffers cycle
// for the whole trace and steady-state hand-off allocates nothing.
type lockSink struct {
	l     *Lockstep
	buf   []isa.Instr
	spare []isa.Instr
}

// Emit implements Sink.
func (s *lockSink) Emit(in isa.Instr) {
	s.buf = append(s.buf, in)
	if len(s.buf) == ChunkSize {
		s.flush()
	}
}

// flush hands the chunk to the consumer and blocks until it has been fully
// executed (the ack), so the producer never mutates shared state while the
// consumer runs. After the ack the consumer is done with the sent chunk, and
// the spare buffer has been unreferenced since the ack before that, so the
// buffers alternate without allocation.
func (s *lockSink) flush() {
	if len(s.buf) == 0 {
		return
	}
	select {
	case s.l.ch <- s.buf:
	case <-s.l.done:
		panic(errStreamClosed)
	}
	select {
	case <-s.l.ack:
	case <-s.l.done:
		panic(errStreamClosed)
	}
	s.buf, s.spare = s.spare[:0], s.buf
}

// Next implements Source. Exhausting a chunk acks the producer before
// blocking for the next one.
func (l *Lockstep) Next() (isa.Instr, bool) {
	for l.pos >= len(l.cur) {
		if l.opened {
			l.opened = false
			select {
			case l.ack <- struct{}{}:
			case <-l.done:
				return isa.Instr{}, false
			}
		}
		chunk, ok := <-l.ch
		if !ok {
			return isa.Instr{}, false
		}
		l.cur, l.pos, l.opened = chunk, 0, true
	}
	in := l.cur[l.pos]
	l.pos++
	return in, true
}

// Close releases a blocked producer after an early consumer exit (e.g. a
// simulation error). Safe to call multiple times and after exhaustion.
func (l *Lockstep) Close() {
	select {
	case <-l.done:
		return
	default:
		close(l.done)
	}
	l.cur, l.pos, l.opened = nil, 0, false
	for range l.ch {
	}
}
