package trace

import (
	"testing"

	"potgo/internal/isa"
)

func TestBufferRoundTrip(t *testing.T) {
	var b Buffer
	for i := 0; i < 100; i++ {
		b.Emit(isa.Instr{Op: isa.ALU, PC: uint64(i)})
	}
	src := &BufferSource{Instrs: b.Instrs}
	for i := 0; i < 100; i++ {
		in, ok := src.Next()
		if !ok {
			t.Fatalf("trace ended early at %d", i)
		}
		if in.PC != uint64(i) {
			t.Fatalf("instruction %d has PC %d", i, in.PC)
		}
	}
	if _, ok := src.Next(); ok {
		t.Error("source must end after 100 instructions")
	}
}

func TestStreamDeliversAllInOrder(t *testing.T) {
	const n = ChunkSize*3 + 17 // multiple chunks plus a partial tail
	s := Generate(func(sink Sink) {
		for i := 0; i < n; i++ {
			sink.Emit(isa.Instr{Op: isa.ALU, PC: uint64(i)})
		}
	})
	for i := 0; i < n; i++ {
		in, ok := s.Next()
		if !ok {
			t.Fatalf("stream ended early at %d", i)
		}
		if in.PC != uint64(i) {
			t.Fatalf("out of order: instruction %d has PC %d", i, in.PC)
		}
	}
	if _, ok := s.Next(); ok {
		t.Error("stream must end")
	}
	s.Close() // safe after exhaustion
}

func TestStreamEmptyProducer(t *testing.T) {
	s := Generate(func(Sink) {})
	if _, ok := s.Next(); ok {
		t.Error("empty producer yields empty stream")
	}
}

func TestStreamEarlyClose(t *testing.T) {
	produced := make(chan int, 1)
	s := Generate(func(sink Sink) {
		i := 0
		defer func() {
			produced <- i
			if r := recover(); r != nil {
				panic(r) // propagate to Generate's recover
			}
		}()
		for ; i < ChunkSize*1000; i++ {
			sink.Emit(isa.Instr{Op: isa.ALU})
		}
	})
	// Read a handful then abandon the stream.
	for i := 0; i < 10; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("stream ended unexpectedly")
		}
	}
	s.Close()
	n := <-produced
	if n >= ChunkSize*1000 {
		t.Error("producer ran to completion despite early Close")
	}
	s.Close() // idempotent
}

func TestTeeAndCounting(t *testing.T) {
	var buf Buffer
	var cnt Counting
	tee := Tee{&buf, &cnt}
	tee.Emit(isa.Instr{Op: isa.Load})
	tee.Emit(isa.Instr{Op: isa.Branch, Taken: true})
	tee.Emit(isa.Instr{Op: isa.Branch})
	if len(buf.Instrs) != 3 {
		t.Errorf("tee delivered %d to buffer", len(buf.Instrs))
	}
	if cnt.Stats.Total != 3 || cnt.Stats.Branches != 2 || cnt.Stats.Taken != 1 {
		t.Errorf("counting sink got %+v", cnt.Stats)
	}
}

func TestDiscard(t *testing.T) {
	var d Discard
	d.Emit(isa.Instr{Op: isa.Load}) // must not panic
}

func TestStatsAccumulation(t *testing.T) {
	var s Stats
	s.Record(isa.Instr{Op: isa.Load})
	s.Record(isa.Instr{Op: isa.NVLoad})
	s.Record(isa.Instr{Op: isa.Store})
	s.Record(isa.Instr{Op: isa.NVStore})
	s.Record(isa.Instr{Op: isa.CLWB})
	s.Record(isa.Instr{Op: isa.ALU})
	if s.Loads() != 2 {
		t.Errorf("Loads = %d", s.Loads())
	}
	if s.Stores() != 3 {
		t.Errorf("Stores = %d", s.Stores())
	}
	if s.Persistent() != 2 {
		t.Errorf("Persistent = %d", s.Persistent())
	}
	var other Stats
	other.Record(isa.Instr{Op: isa.Mul})
	s.Add(other)
	if s.Total != 7 {
		t.Errorf("Total after Add = %d", s.Total)
	}
	if s.String() == "" {
		t.Error("String must render")
	}
}
