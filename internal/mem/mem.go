// Package mem assembles the cache/TLB hierarchy of the simulated machine
// using the paper's Table 4 configuration and computes per-access latencies
// for the timing models.
//
// Latency semantics follow the paper (and Sniper): each level's configured
// latency is the load-to-use latency when the access is satisfied at that
// level (L1 3 cycles, L2 8, L3 27, main memory 120), and a D-TLB miss adds a
// fixed 30-cycle page-walk penalty. Caches are physically indexed/tagged in
// the model, so a translation to a physical address precedes (functionally,
// not temporally — VIPT L1) each look-up.
package mem

import (
	"fmt"

	"potgo/internal/cache"
	"potgo/internal/vm"
)

// Config fixes the hierarchy geometry and latencies. DefaultConfig matches
// paper Table 4.
type Config struct {
	L1DSets, L1DWays int
	L1ISets, L1IWays int
	L2Sets, L2Ways   int
	L3Sets, L3Ways   int
	LineShift        uint

	L1Latency, L2Latency, L3Latency, MemLatency uint64

	DTLBEntries, ITLBEntries int
	TLBMissPenalty           uint64

	// CLWBLatency is the fixed cost of a cache-line write-back to
	// persistent memory (paper §5.1: 100 cycles, estimated from CLFLUSH).
	CLWBLatency uint64

	// NextLinePrefetch enables a simple L1 next-line prefetcher: every
	// demand miss also fills the following line. The paper's Table 4
	// machine does not specify a prefetcher; this is an ablation knob.
	NextLinePrefetch bool
}

// DefaultConfig returns the paper's Table 4 machine.
//
//	L1D: 32 KB, 8-way, 3 cycles      L1I: 32 KB, 4-way, 3 cycles
//	L2: 256 KB, 8-way, 8 cycles      L3: 8 MB, 16-way, 27 cycles
//	line 64 B, D-TLB 64, I-TLB 128, TLB miss 30 cycles
//	memory 120 cycles, CLWB 100 cycles
func DefaultConfig() Config {
	return Config{
		L1DSets: 64, L1DWays: 8, // 64*8*64B = 32 KB
		L1ISets: 128, L1IWays: 4, // 128*4*64B = 32 KB
		L2Sets: 512, L2Ways: 8, // 512*8*64B = 256 KB
		L3Sets: 8192, L3Ways: 16, // 8192*16*64B = 8 MB
		LineShift: 6,
		L1Latency: 3, L2Latency: 8, L3Latency: 27, MemLatency: 120,
		DTLBEntries: 64, ITLBEntries: 128, TLBMissPenalty: 30,
		CLWBLatency: 100,
	}
}

// Stats aggregates hierarchy counters.
type Stats struct {
	L1D, L1I, L2, L3 cache.Stats
	DTLB, ITLB       cache.Stats
	CLWBs            uint64
	// Prefetches counts next-line prefetch fills issued (when enabled).
	Prefetches uint64
}

// Hierarchy is the assembled memory system for one core.
type Hierarchy struct {
	cfg        Config
	as         *vm.AddressSpace
	l1d        *cache.Cache
	l1i        *cache.Cache
	l2         *cache.Cache
	l3         *cache.Cache
	dtlb       *cache.TLB
	itlb       *cache.TLB
	clwbs      uint64
	prefetches uint64
}

// New builds a hierarchy over the given address space.
func New(cfg Config, as *vm.AddressSpace) *Hierarchy {
	return &Hierarchy{
		cfg:  cfg,
		as:   as,
		l1d:  cache.New(cache.Config{Name: "L1D", Sets: cfg.L1DSets, Ways: cfg.L1DWays, LineShift: cfg.LineShift, Latency: cfg.L1Latency}),
		l1i:  cache.New(cache.Config{Name: "L1I", Sets: cfg.L1ISets, Ways: cfg.L1IWays, LineShift: cfg.LineShift, Latency: cfg.L1Latency}),
		l2:   cache.New(cache.Config{Name: "L2", Sets: cfg.L2Sets, Ways: cfg.L2Ways, LineShift: cfg.LineShift, Latency: cfg.L2Latency}),
		l3:   cache.New(cache.Config{Name: "L3", Sets: cfg.L3Sets, Ways: cfg.L3Ways, LineShift: cfg.LineShift, Latency: cfg.L3Latency}),
		dtlb: cache.NewTLB("DTLB", cfg.DTLBEntries, cfg.TLBMissPenalty),
		itlb: cache.NewTLB("ITLB", cfg.ITLBEntries, cfg.TLBMissPenalty),
	}
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// DataTLB charges a D-TLB access for a virtual address, returning the miss
// penalty in cycles (0 on a hit).
func (h *Hierarchy) DataTLB(va uint64) uint64 { return h.dtlb.Access(va) }

// CacheAccess walks the data-cache hierarchy with a physical address and
// returns the load-to-use latency of the level that satisfied it. Stores
// allocate exactly like loads (write-allocate, and store latency matters
// because later loads may forward from it / the SQ drains at that rate).
func (h *Hierarchy) CacheAccess(pa uint64) uint64 {
	if h.l1d.Access(pa) {
		return h.cfg.L1Latency
	}
	lat := h.cfg.MemLatency
	if h.l2.Access(pa) {
		lat = h.cfg.L2Latency
	} else if h.l3.Access(pa) {
		lat = h.cfg.L3Latency
	}
	if h.cfg.NextLinePrefetch {
		// Fill the following line alongside the demand miss. The
		// prefetch is free in time (overlapped with the demand fill)
		// but occupies cache capacity like any fill.
		h.prefetches++
		next := pa + 64
		if !h.l1d.Access(next) {
			h.l2.Access(next)
		}
	}
	return lat
}

// DataAccess performs a full virtually-addressed data access: D-TLB, page
// table, then the cache walk. It returns the total latency.
func (h *Hierarchy) DataAccess(va uint64) (uint64, error) {
	penalty := h.dtlb.Access(va)
	pa, ok := h.as.Translate(va)
	if !ok {
		return 0, fmt.Errorf("mem: data access to unmapped address %#x", va)
	}
	return penalty + h.CacheAccess(pa), nil
}

// InstFetch charges an instruction fetch at pc: I-TLB plus the cache walk
// through L1I/L2/L3. Synthetic code addresses are not backed by vm pages, so
// the physical address is taken equal to pc (a fixed identity mapping for
// the text segment).
func (h *Hierarchy) InstFetch(pc uint64) uint64 {
	penalty := h.itlb.Access(pc)
	if h.l1i.Access(pc) {
		return penalty + h.cfg.L1Latency
	}
	if h.l2.Access(pc) {
		return penalty + h.cfg.L2Latency
	}
	if h.l3.Access(pc) {
		return penalty + h.cfg.L3Latency
	}
	return penalty + h.cfg.MemLatency
}

// CLWB charges a cache-line write-back to persistent memory.
func (h *Hierarchy) CLWB(va uint64) (uint64, error) {
	if _, ok := h.as.Translate(va); !ok {
		return 0, fmt.Errorf("mem: clwb of unmapped address %#x", va)
	}
	h.clwbs++
	return h.cfg.CLWBLatency, nil
}

// WalkAccess charges one hardware-walker access (POT walk probe) to the
// data hierarchy: page-table translation plus a cache access of the probed
// entry. POT entries cache well, so probe-accurate walks are usually much
// cheaper than the paper's pessimistic fixed 30 cycles. Implements
// core.Walker.
func (h *Hierarchy) WalkAccess(va uint64) uint64 {
	pa, ok := h.as.Translate(va)
	if !ok {
		return h.cfg.MemLatency
	}
	return h.CacheAccess(pa)
}

// Translate exposes the page table for structures (the Parallel POLB fill
// path) that need the physical address of a virtual address.
func (h *Hierarchy) Translate(va uint64) (uint64, bool) { return h.as.Translate(va) }

// Stats snapshots all counters.
func (h *Hierarchy) Stats() Stats {
	return Stats{
		L1D: h.l1d.Stats(), L1I: h.l1i.Stats(),
		L2: h.l2.Stats(), L3: h.l3.Stats(),
		DTLB: h.dtlb.Stats(), ITLB: h.itlb.Stats(),
		CLWBs:      h.clwbs,
		Prefetches: h.prefetches,
	}
}

// ResetStats zeroes all counters (keeps cache contents: post-warm-up
// measurement).
func (h *Hierarchy) ResetStats() {
	h.l1d.ResetStats()
	h.l1i.ResetStats()
	h.l2.ResetStats()
	h.l3.ResetStats()
	h.dtlb.ResetStats()
	h.itlb.ResetStats()
	h.clwbs = 0
	h.prefetches = 0
}
