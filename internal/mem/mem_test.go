package mem

import (
	"testing"

	"potgo/internal/vm"
)

func setup(t *testing.T) (*Hierarchy, vm.Region, *vm.AddressSpace) {
	t.Helper()
	as := vm.NewAddressSpace(1)
	r, err := as.Map(64 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	return New(DefaultConfig(), as), r, as
}

func TestDefaultConfigMatchesPaperTable4(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.L1DSets * cfg.L1DWays * 64; got != 32*1024 {
		t.Errorf("L1D size = %d", got)
	}
	if got := cfg.L1ISets * cfg.L1IWays * 64; got != 32*1024 {
		t.Errorf("L1I size = %d", got)
	}
	if got := cfg.L2Sets * cfg.L2Ways * 64; got != 256*1024 {
		t.Errorf("L2 size = %d", got)
	}
	if got := cfg.L3Sets * cfg.L3Ways * 64; got != 8*1024*1024 {
		t.Errorf("L3 size = %d", got)
	}
	if cfg.L1Latency != 3 || cfg.L2Latency != 8 || cfg.L3Latency != 27 || cfg.MemLatency != 120 {
		t.Error("latencies must match Table 4")
	}
	if cfg.DTLBEntries != 64 || cfg.ITLBEntries != 128 || cfg.TLBMissPenalty != 30 {
		t.Error("TLB parameters must match Table 4")
	}
	if cfg.CLWBLatency != 100 {
		t.Error("CLWB latency must be 100 cycles")
	}
}

func TestColdAccessPaysMemoryAndTLB(t *testing.T) {
	h, r, _ := setup(t)
	lat, err := h.DataAccess(r.Base)
	if err != nil {
		t.Fatal(err)
	}
	// Cold: TLB miss (30) + memory (120).
	if lat != 150 {
		t.Errorf("cold access latency = %d, want 150", lat)
	}
	// Warm: L1 hit, TLB hit.
	lat, _ = h.DataAccess(r.Base)
	if lat != 3 {
		t.Errorf("warm access latency = %d, want 3", lat)
	}
}

func TestHierarchyLevels(t *testing.T) {
	h, r, _ := setup(t)
	h.DataAccess(r.Base) // fill everything
	// Evict from L1 only: touch enough conflicting lines. L1D is 64 sets
	// x 8 ways; lines at 4 KB stride share a set.
	for i := 1; i <= 8; i++ {
		h.DataAccess(r.Base + uint64(i)*4096)
	}
	lat, _ := h.DataAccess(r.Base)
	if lat != 8 {
		t.Errorf("L1-evicted line should hit L2: latency = %d, want 8", lat)
	}
}

func TestUnmappedAccessErrors(t *testing.T) {
	h, _, _ := setup(t)
	if _, err := h.DataAccess(0xdead000); err == nil {
		t.Error("unmapped data access must error")
	}
	if _, err := h.CLWB(0xdead000); err == nil {
		t.Error("unmapped CLWB must error")
	}
}

func TestCLWB(t *testing.T) {
	h, r, _ := setup(t)
	lat, err := h.CLWB(r.Base)
	if err != nil || lat != 100 {
		t.Errorf("CLWB = %d, %v", lat, err)
	}
	if h.Stats().CLWBs != 1 {
		t.Error("CLWB counter")
	}
}

func TestInstFetch(t *testing.T) {
	h, _, _ := setup(t)
	lat := h.InstFetch(0x400000)
	if lat != 150 { // cold: ITLB 30 + mem 120
		t.Errorf("cold fetch = %d", lat)
	}
	lat = h.InstFetch(0x400004)
	if lat != 3 {
		t.Errorf("warm same-line fetch = %d", lat)
	}
}

func TestStatsAndReset(t *testing.T) {
	h, r, _ := setup(t)
	h.DataAccess(r.Base)
	h.InstFetch(0x400000)
	s := h.Stats()
	if s.L1D.Accesses() == 0 || s.L1I.Accesses() == 0 || s.DTLB.Accesses() == 0 || s.ITLB.Accesses() == 0 {
		t.Errorf("stats must accumulate: %+v", s)
	}
	h.ResetStats()
	s = h.Stats()
	if s.L1D.Accesses() != 0 || s.CLWBs != 0 {
		t.Error("ResetStats must zero counters")
	}
	// But contents survive reset: warm access is still a hit.
	lat, _ := h.DataAccess(r.Base)
	if lat != 3 {
		t.Errorf("contents must survive ResetStats, latency = %d", lat)
	}
}

func TestTranslateExposed(t *testing.T) {
	h, r, as := setup(t)
	pa1, ok1 := h.Translate(r.Base)
	pa2, ok2 := as.Translate(r.Base)
	if !ok1 || !ok2 || pa1 != pa2 {
		t.Error("Translate must delegate to the page table")
	}
}

func TestNextLinePrefetch(t *testing.T) {
	as := vm.NewAddressSpace(2)
	r, _ := as.Map(64 * vm.PageSize)
	cfg := DefaultConfig()
	cfg.NextLinePrefetch = true
	h := New(cfg, as)
	// Sequential line walk: with next-line prefetch, every second line
	// is already resident.
	var misses int
	for i := uint64(0); i < 64; i++ {
		lat, err := h.DataAccess(r.Base + i*64)
		if err != nil {
			t.Fatal(err)
		}
		if lat > cfg.L1Latency+cfg.TLBMissPenalty {
			misses++
		}
	}
	if misses > 34 {
		t.Errorf("sequential walk missed %d of 64 lines despite prefetch", misses)
	}
	if h.Stats().Prefetches == 0 {
		t.Error("prefetch counter must accumulate")
	}
	// Without prefetch, every line of a fresh region misses.
	h2 := New(DefaultConfig(), as)
	var misses2 int
	for i := uint64(0); i < 64; i++ {
		lat, _ := h2.DataAccess(r.Base + vm.PageSize + i*64)
		if lat > cfg.L1Latency+cfg.TLBMissPenalty {
			misses2++
		}
	}
	if misses2 < 60 {
		t.Errorf("without prefetch expected ~64 misses, got %d", misses2)
	}
	if h2.Stats().Prefetches != 0 {
		t.Error("prefetch counter must stay zero when disabled")
	}
}
