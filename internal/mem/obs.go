package mem

import (
	"potgo/internal/cache"
	"potgo/internal/obs"
)

// PublishMetrics adds a hierarchy-stats snapshot to the registry under
// "mem.": per-level hit/miss counters plus miss-rate gauges, CLWB and
// prefetch counts. Safe on a nil registry.
func (s Stats) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	level := func(name string, cs cache.Stats) {
		reg.Counter("mem." + name + ".hit").Add(cs.Hits)
		reg.Counter("mem." + name + ".miss").Add(cs.Misses)
		reg.Gauge("mem." + name + ".miss_rate").Set(cs.MissRate())
	}
	level("l1d", s.L1D)
	level("l1i", s.L1I)
	level("l2", s.L2)
	level("l3", s.L3)
	level("dtlb", s.DTLB)
	level("itlb", s.ITLB)
	reg.Counter("mem.clwb").Add(s.CLWBs)
	reg.Counter("mem.prefetch").Add(s.Prefetches)
}
