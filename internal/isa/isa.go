// Package isa defines the simulated instruction set consumed by the timing
// models in internal/cpu.
//
// The machine is a load/store architecture in the spirit of the paper's
// Table 3: ordinary loads and stores operate on virtual addresses, while the
// two new instructions nvld and nvst operate directly on persistent
// ObjectIDs and are translated by the POLB/POT hardware. Traces are dynamic:
// every instruction carries its resolved memory address (or ObjectID) and,
// for branches, its resolved direction, exactly as a Pin-produced stream
// feeding Sniper would.
package isa

import "fmt"

// Op enumerates instruction classes. The timing models only need classes,
// operand registers and resolved addresses, not full semantics: functional
// execution happens in the persistent-memory library, which emits these
// instructions as a side effect.
type Op uint8

const (
	// Nop does nothing but still occupies pipeline slots.
	Nop Op = iota
	// ALU is a single-cycle integer operation (add, sub, logic, compare,
	// shifts, address arithmetic).
	ALU
	// Mul is a 3-cycle integer multiply (used by hash computations).
	Mul
	// Div is a 20-cycle integer divide/modulo (used by RANDOM pool
	// selection and TPC-C arithmetic).
	Div
	// Branch is a conditional branch with a resolved direction in Taken.
	Branch
	// Jump is an unconditional direct jump/call/return; always taken and
	// assumed correctly predicted (BTB hit).
	Jump
	// Load reads Size bytes from virtual address Addr into Dst.
	Load
	// Store writes Size bytes from Src2 to virtual address Addr.
	Store
	// NVLoad is the paper's nvld: rd = MEM[Lookup(rs1)+imm]. Addr holds
	// the fully-resolved ObjectID (pool ‖ offset) being dereferenced.
	NVLoad
	// NVStore is the paper's nvst: MEM[Lookup(rs2)+imm] = rs1. Addr holds
	// the resolved ObjectID.
	NVStore
	// CLWB writes a cache line back to persistent memory. Addr is the
	// virtual address of the line. Modelled at a fixed latency (paper
	// §5.1: 100 cycles).
	CLWB
	// SFence orders stores/CLWBs: it cannot retire until all prior
	// stores and CLWBs have completed.
	SFence
	opCount
)

var opNames = [...]string{
	Nop:     "nop",
	ALU:     "alu",
	Mul:     "mul",
	Div:     "div",
	Branch:  "br",
	Jump:    "jmp",
	Load:    "ld",
	Store:   "st",
	NVLoad:  "nvld",
	NVStore: "nvst",
	CLWB:    "clwb",
	SFence:  "sfence",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsMem reports whether the instruction accesses the data memory hierarchy.
func (o Op) IsMem() bool {
	switch o {
	case Load, Store, NVLoad, NVStore, CLWB:
		return true
	}
	return false
}

// IsLoad reports whether the instruction reads data memory.
func (o Op) IsLoad() bool { return o == Load || o == NVLoad }

// IsStore reports whether the instruction writes data memory (CLWB occupies
// the store path as well).
func (o Op) IsStore() bool { return o == Store || o == NVStore || o == CLWB }

// IsPersistent reports whether the instruction addresses memory through an
// ObjectID and therefore engages the POLB/POT hardware.
func (o Op) IsPersistent() bool { return o == NVLoad || o == NVStore }

// Reg names an architectural register in the emitted code. Register 0 (RZ)
// is the hard-wired zero/none register: as a source it means "no
// dependency", and as a destination it discards the result.
type Reg uint8

// RZ is the zero register.
const RZ Reg = 0

// NumRegs is the size of the architectural register file visible to the
// emitter (and therefore to dependency tracking in the timing models).
const NumRegs = 64

// Instr is one dynamic instruction. The struct is kept small because traces
// run to tens of millions of instructions.
type Instr struct {
	// Addr is the resolved effective virtual address for Load/Store/CLWB,
	// the resolved ObjectID for NVLoad/NVStore, and unused otherwise.
	Addr uint64
	// PC is the (synthetic) program counter of the instruction, used by
	// the branch predictor and instruction-fetch modelling.
	PC uint64
	// Op is the instruction class.
	Op Op
	// Dst is the destination register (RZ if none).
	Dst Reg
	// Src1 and Src2 are source registers (RZ if absent). For stores,
	// Src1 is the address base and Src2 the data.
	Src1, Src2 Reg
	// Size is the memory access width in bytes.
	Size uint8
	// Taken is the resolved direction for Branch.
	Taken bool
}

// ExecLatency returns the execution (non-memory) latency in cycles for the
// instruction class. Memory latency is computed separately by the hierarchy.
func (o Op) ExecLatency() uint64 {
	switch o {
	case Mul:
		return 3
	case Div:
		return 20
	default:
		return 1
	}
}

func (in Instr) String() string {
	switch {
	case in.Op == Branch:
		return fmt.Sprintf("%s pc=%#x taken=%t r%d,r%d", in.Op, in.PC, in.Taken, in.Src1, in.Src2)
	case in.Op.IsMem():
		return fmt.Sprintf("%s pc=%#x addr=%#x size=%d r%d<-r%d,r%d", in.Op, in.PC, in.Addr, in.Size, in.Dst, in.Src1, in.Src2)
	default:
		return fmt.Sprintf("%s pc=%#x r%d<-r%d,r%d", in.Op, in.PC, in.Dst, in.Src1, in.Src2)
	}
}
