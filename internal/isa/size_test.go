package isa

import "unsafe"

func ptrSize(in *Instr) uintptr { return unsafe.Sizeof(*in) }
