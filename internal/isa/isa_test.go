package isa

import "testing"

func TestOpClassification(t *testing.T) {
	mem := []Op{Load, Store, NVLoad, NVStore, CLWB}
	for _, o := range mem {
		if !o.IsMem() {
			t.Errorf("%v should be a memory op", o)
		}
	}
	nonmem := []Op{Nop, ALU, Mul, Div, Branch, Jump, SFence}
	for _, o := range nonmem {
		if o.IsMem() {
			t.Errorf("%v should not be a memory op", o)
		}
	}
	if !Load.IsLoad() || !NVLoad.IsLoad() {
		t.Error("Load/NVLoad are loads")
	}
	if Store.IsLoad() || CLWB.IsLoad() {
		t.Error("stores are not loads")
	}
	if !Store.IsStore() || !NVStore.IsStore() || !CLWB.IsStore() {
		t.Error("Store/NVStore/CLWB occupy the store path")
	}
	if !NVLoad.IsPersistent() || !NVStore.IsPersistent() {
		t.Error("nvld/nvst are persistent accesses")
	}
	if Load.IsPersistent() || Store.IsPersistent() {
		t.Error("regular loads/stores are not persistent accesses")
	}
}

func TestExecLatency(t *testing.T) {
	if got := ALU.ExecLatency(); got != 1 {
		t.Errorf("ALU latency = %d", got)
	}
	if got := Mul.ExecLatency(); got != 3 {
		t.Errorf("Mul latency = %d", got)
	}
	if got := Div.ExecLatency(); got != 20 {
		t.Errorf("Div latency = %d", got)
	}
	if got := Load.ExecLatency(); got != 1 {
		t.Errorf("Load exec latency = %d (memory added separately)", got)
	}
}

func TestOpString(t *testing.T) {
	if Load.String() != "ld" || NVLoad.String() != "nvld" || SFence.String() != "sfence" {
		t.Error("unexpected op names")
	}
	if Op(200).String() == "" {
		t.Error("out-of-range op must still render")
	}
}

func TestInstrString(t *testing.T) {
	br := Instr{Op: Branch, PC: 0x40, Taken: true, Src1: 1}
	if br.String() == "" {
		t.Error("branch must render")
	}
	ld := Instr{Op: Load, PC: 0x44, Addr: 0x1000, Size: 8, Dst: 2, Src1: 1}
	if ld.String() == "" {
		t.Error("load must render")
	}
	alu := Instr{Op: ALU, PC: 0x48, Dst: 3, Src1: 2, Src2: 1}
	if alu.String() == "" {
		t.Error("alu must render")
	}
}

func TestInstrSize(t *testing.T) {
	// Traces hold tens of millions of instructions; keep the struct
	// compact. This test pins the expectation so growth is deliberate.
	var in Instr
	_ = in
	const maxBytes = 32
	if s := int(sizeOfInstr()); s > maxBytes {
		t.Errorf("Instr is %d bytes, want <= %d", s, maxBytes)
	}
}

func sizeOfInstr() uintptr {
	var in Instr
	return ptrSize(&in)
}
