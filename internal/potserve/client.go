package potserve

import (
	"bufio"
	"fmt"
	"net"

	"potgo/internal/objstore"
	"potgo/internal/pds"
)

// Client is one connection to a potserve server. Its synchronous methods
// (Get, Put, ...) issue one request and wait for the response; Pipeline
// sends a whole batch of requests before reading any response, exercising
// the server's pipelined execution. A Client is not safe for concurrent
// use; open one per goroutine (the server handles connections
// concurrently).
type Client struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	body []byte
}

// Dial connects to a potserve server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.send(req); err != nil {
		return Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return Response{}, err
	}
	return c.recv(req.Op)
}

func (c *Client) send(req Request) error {
	body, err := AppendRequest(c.body[:0], req)
	if err != nil {
		return err
	}
	c.body = body
	return WriteFrame(c.bw, body)
}

func (c *Client) recv(op byte) (Response, error) {
	frame, err := ReadFrame(c.br)
	if err != nil {
		return Response{}, err
	}
	resp, err := DecodeResponse(op, frame)
	if err != nil {
		return Response{}, err
	}
	if resp.Status == StatusErr {
		return resp, fmt.Errorf("potserve: server: %s", resp.Msg)
	}
	return resp, nil
}

// Pipeline sends every request, flushes once, then reads every response in
// order. A server-side StatusErr is returned in its Response, not as an
// error, so one failed op does not hide the others' results.
func (c *Client) Pipeline(reqs []Request) ([]Response, error) {
	for _, req := range reqs {
		if err := c.send(req); err != nil {
			return nil, err
		}
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	resps := make([]Response, 0, len(reqs))
	for _, req := range reqs {
		frame, err := ReadFrame(c.br)
		if err != nil {
			return nil, err
		}
		resp, err := DecodeResponse(req.Op, frame)
		if err != nil {
			return nil, err
		}
		resps = append(resps, resp)
	}
	return resps, nil
}

// Get fetches a key; ok reports presence.
func (c *Client) Get(key uint64) (val uint64, ok bool, err error) {
	resp, err := c.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Status == StatusOK, nil
}

// Put upserts a key; created reports whether it was absent.
func (c *Client) Put(key, val uint64) (created bool, err error) {
	resp, err := c.roundTrip(Request{Op: OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	return resp.Created, nil
}

// Delete removes a key; existed reports whether it was present.
func (c *Client) Delete(key uint64) (existed bool, err error) {
	resp, err := c.roundTrip(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// Scan returns up to max pairs with key >= from, ascending.
func (c *Client) Scan(from uint64, max int) ([]pds.KV, error) {
	if max < 0 || max > MaxScan {
		return nil, fmt.Errorf("potserve: scan max %d out of range [0, %d]", max, MaxScan)
	}
	resp, err := c.roundTrip(Request{Op: OpScan, From: from, Max: uint32(max)})
	if err != nil {
		return nil, err
	}
	return resp.KVs, nil
}

// Tx applies a batch atomically: all ops commit in one heap transaction or
// none do.
func (c *Client) Tx(ops []objstore.BatchOp) error {
	_, err := c.roundTrip(Request{Op: OpTx, Ops: ops})
	return err
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.roundTrip(Request{Op: OpPing})
	return err
}
