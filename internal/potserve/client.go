package potserve

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"potgo/internal/objstore"
	"potgo/internal/pds"
)

// Client is one connection to a potserve server. Its synchronous methods
// (Get, Put, ...) issue one request and wait for the response; Pipeline
// sends a whole batch of requests before reading any response, exercising
// the server's pipelined execution. A Client is not safe for concurrent
// use; open one per goroutine (the server handles connections
// concurrently).
//
// Requests accumulate as complete frames in one connection-lifetime buffer
// and go out with a single conn.Write per flush point; the response frame
// buffer is likewise reused. Steady-state gets, puts, deletes, transactions
// and pings allocate nothing on the client either (scan results are fresh
// slices — they outlive the call).
type Client struct {
	conn    net.Conn
	br      *bufio.Reader
	out     []byte // unsent request frames
	frame   []byte // response frame scratch
	timeout time.Duration
}

// ServerError is a failure the server reported in a StatusErr response.
// The connection is healthy and the response stream in sync — the
// request was executed (or rejected) exactly once — so the retry layer
// never retries one.
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "potserve: server: " + e.Msg }

// Dial connects to a potserve server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// DialTimeout connects to a potserve server, failing if the connection is
// not established within d.
func DialTimeout(addr string, d time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, d)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// SetTimeout bounds every subsequent round trip (request write through
// response read) to d; zero restores blocking I/O. A timed-out call
// leaves the response stream out of sync, so the connection must be
// closed, not reused — the replication layer treats a timeout as a
// failed ack and redials.
func (c *Client) SetTimeout(d time.Duration) {
	c.timeout = d
	if d == 0 {
		c.conn.SetDeadline(time.Time{})
	}
}

// arm applies the round-trip deadline, if one is set.
func (c *Client) arm() error {
	if c.timeout == 0 {
		return nil
	}
	return c.conn.SetDeadline(time.Now().Add(c.timeout))
}

// NewClient wraps an established connection.
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, br: bufio.NewReader(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one request and reads its response.
func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.arm(); err != nil {
		return Response{}, err
	}
	if err := c.send(req); err != nil {
		return Response{}, err
	}
	if err := c.flush(); err != nil {
		return Response{}, err
	}
	return c.recv(req.Op)
}

func (c *Client) send(req Request) error {
	out, err := AppendRequestFrame(c.out, req)
	c.out = out
	return err
}

func (c *Client) flush() error {
	if len(c.out) == 0 {
		return nil
	}
	_, err := c.conn.Write(c.out)
	c.out = c.out[:0]
	return err
}

func (c *Client) recv(op byte) (Response, error) {
	frame, err := ReadFrameInto(c.br, c.frame)
	if err != nil {
		return Response{}, err
	}
	c.frame = frame
	resp, err := DecodeResponse(op, frame)
	if err != nil {
		return Response{}, err
	}
	switch resp.Status {
	case StatusErr:
		return resp, &ServerError{Msg: resp.Msg}
	case StatusCorrupt:
		return resp, ErrCorrupt
	case StatusNotOwner:
		return resp, ErrNotOwner
	}
	return resp, nil
}

// Pipeline sends every request, flushes once, then reads every response in
// order. A server-side StatusErr is returned in its Response, not as an
// error, so one failed op does not hide the others' results.
func (c *Client) Pipeline(reqs []Request) ([]Response, error) {
	return c.PipelineAppend(reqs, nil)
}

// PipelineAppend is Pipeline appending into resps (truncated and reused,
// element scratch included), so a benchmark loop recycling its response
// slice drives the full round trip without allocating. The returned
// responses — scan results included — are only valid until the next
// PipelineAppend with the same slice.
func (c *Client) PipelineAppend(reqs []Request, resps []Response) ([]Response, error) {
	if err := c.arm(); err != nil {
		return nil, err
	}
	for _, req := range reqs {
		if err := c.send(req); err != nil {
			return nil, err
		}
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	resps = resps[:0]
	for _, req := range reqs {
		frame, err := ReadFrameInto(c.br, c.frame)
		if err != nil {
			return nil, err
		}
		c.frame = frame
		// Recycle the slot past the length when the backing array has one,
		// keeping its KVs scratch alive for DecodeResponseInto.
		var resp *Response
		if cap(resps) > len(resps) {
			resps = resps[:len(resps)+1]
			resp = &resps[len(resps)-1]
		} else {
			resps = append(resps, Response{})
			resp = &resps[len(resps)-1]
		}
		if err := DecodeResponseInto(req.Op, frame, resp); err != nil {
			return nil, err
		}
	}
	return resps, nil
}

// Get fetches a key; ok reports presence.
func (c *Client) Get(key uint64) (val uint64, ok bool, err error) {
	resp, err := c.roundTrip(Request{Op: OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Status == StatusOK, nil
}

// Put upserts a key; created reports whether it was absent.
func (c *Client) Put(key, val uint64) (created bool, err error) {
	resp, err := c.roundTrip(Request{Op: OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	return resp.Created, nil
}

// Delete removes a key; existed reports whether it was present.
func (c *Client) Delete(key uint64) (existed bool, err error) {
	resp, err := c.roundTrip(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// Scan returns up to max pairs with key >= from, ascending.
func (c *Client) Scan(from uint64, max int) ([]pds.KV, error) {
	if max < 0 || max > MaxScan {
		return nil, fmt.Errorf("potserve: scan max %d out of range [0, %d]", max, MaxScan)
	}
	resp, err := c.roundTrip(Request{Op: OpScan, From: from, Max: uint32(max)})
	if err != nil {
		return nil, err
	}
	return resp.KVs, nil
}

// Tx applies a batch atomically: all ops commit in one heap transaction or
// none do.
func (c *Client) Tx(ops []objstore.BatchOp) error {
	_, err := c.roundTrip(Request{Op: OpTx, Ops: ops})
	return err
}

// Ping round-trips an empty request.
func (c *Client) Ping() error {
	_, err := c.roundTrip(Request{Op: OpPing})
	return err
}

// Sub fetches origin's applied log entries with Seq > fromSeq (replication
// catch-up). The entries are fresh — they outlive the call.
func (c *Client) Sub(origin uint32, fromSeq uint64) ([]RepEntry, error) {
	resp, err := c.roundTrip(Request{Op: OpSub, Origin: origin, Seq: fromSeq})
	if err != nil {
		return nil, err
	}
	out := make([]RepEntry, len(resp.Entries))
	copy(out, resp.Entries)
	return out, nil
}

// Rep appends origin's log entries on the peer at the sender's topology
// epoch and returns the peer's applied watermark for that origin — the
// replication ack. A watermark covering every sent entry means the peer
// holds them durably.
func (c *Client) Rep(origin uint32, senderEpoch uint64, entries []RepEntry) (watermark uint64, err error) {
	resp, err := c.roundTrip(Request{Op: OpRep, Origin: origin, Epoch: senderEpoch, Entries: entries})
	if err != nil {
		return 0, err
	}
	return resp.Seq, nil
}

// AckReport tells the peer that origin's log is durable through seq on this
// sender (seeds a freshly promoted primary's quorum tracker).
func (c *Client) AckReport(origin uint32, seq uint64) error {
	_, err := c.roundTrip(Request{Op: OpAck, Origin: origin, Seq: seq})
	return err
}

// Topo fetches the node's current view of the cluster topology.
func (c *Client) Topo() (Topology, error) {
	resp, err := c.roundTrip(Request{Op: OpTopo})
	if err != nil {
		return Topology{}, err
	}
	return resp.Topo, nil
}
