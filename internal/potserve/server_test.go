package potserve_test

import (
	"math/rand"
	"net"
	"sync"
	"testing"

	"potgo/internal/objstore"
	"potgo/internal/obs"
	"potgo/internal/pmem"
	"potgo/internal/potserve"
	"potgo/internal/randtest"
)

// newServer brings up a full stack on a loopback listener: store, sharded
// heap, KV, server.
func newServer(t *testing.T, reg *obs.Registry) (*potserve.Server, *objstore.KV) {
	t.Helper()
	sh, err := pmem.NewSharded(pmem.NewStore(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	kv, err := objstore.CreateKV(sh, "srv")
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := potserve.Serve(ln, kv, reg)
	t.Cleanup(func() { s.Close() })
	return s, kv
}

func dial(t *testing.T, s *potserve.Server) *potserve.Client {
	t.Helper()
	c, err := potserve.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestServerBasic drives every op end-to-end through one connection.
func TestServerBasic(t *testing.T) {
	reg := obs.NewRegistry()
	s, _ := newServer(t, reg)
	c := dial(t, s)

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if _, ok, err := c.Get(1); err != nil || ok {
		t.Fatalf("get absent: ok=%v err=%v", ok, err)
	}
	if created, err := c.Put(1, 100); err != nil || !created {
		t.Fatalf("put new: created=%v err=%v", created, err)
	}
	if created, err := c.Put(1, 101); err != nil || created {
		t.Fatalf("put overwrite: created=%v err=%v", created, err)
	}
	if val, ok, err := c.Get(1); err != nil || !ok || val != 101 {
		t.Fatalf("get: val=%d ok=%v err=%v", val, ok, err)
	}
	if existed, err := c.Delete(1); err != nil || !existed {
		t.Fatalf("delete: existed=%v err=%v", existed, err)
	}
	if existed, err := c.Delete(1); err != nil || existed {
		t.Fatalf("delete absent: existed=%v err=%v", existed, err)
	}

	if err := c.Tx([]objstore.BatchOp{{Key: 10, Val: 1}, {Key: 11, Val: 2}, {Key: 12, Val: 3}}); err != nil {
		t.Fatalf("tx: %v", err)
	}
	kvs, err := c.Scan(10, 100)
	if err != nil {
		t.Fatalf("scan: %v", err)
	}
	if len(kvs) != 3 || kvs[0].Key != 10 || kvs[2].Key != 12 {
		t.Fatalf("scan result: %+v", kvs)
	}
	kvs, err = c.Scan(11, 1)
	if err != nil || len(kvs) != 1 || kvs[0].Key != 11 {
		t.Fatalf("scan window: %+v err=%v", kvs, err)
	}

	if reg.Counter("potserve.requests.put").Value() != 2 {
		t.Fatalf("put counter: %d", reg.Counter("potserve.requests.put").Value())
	}
}

// TestServerPipelined sends a burst of frames before reading any response
// and checks the responses come back in order.
func TestServerPipelined(t *testing.T) {
	s, _ := newServer(t, nil)
	c := dial(t, s)

	const n = 200
	reqs := make([]potserve.Request, 0, 2*n)
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, potserve.Request{Op: potserve.OpPut, Key: i, Val: i * 3})
	}
	for i := uint64(0); i < n; i++ {
		reqs = append(reqs, potserve.Request{Op: potserve.OpGet, Key: i})
	}
	resps, err := c.Pipeline(reqs)
	if err != nil {
		t.Fatalf("pipeline: %v", err)
	}
	if len(resps) != 2*n {
		t.Fatalf("%d responses, want %d", len(resps), 2*n)
	}
	for i := uint64(0); i < n; i++ {
		if r := resps[i]; r.Status != potserve.StatusOK || !r.Created {
			t.Fatalf("put %d: %+v", i, r)
		}
		if r := resps[n+i]; r.Status != potserve.StatusOK || r.Val != i*3 {
			t.Fatalf("get %d: %+v", i, r)
		}
	}
}

// TestServerMalformedFrame checks that a decodable frame with a malformed
// body gets a StatusErr while the connection stays usable.
func TestServerMalformedFrame(t *testing.T) {
	s, _ := newServer(t, nil)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := potserve.WriteFrame(conn, []byte{0xff, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	frame, err := potserve.ReadFrame(conn)
	if err != nil {
		t.Fatalf("read error response: %v", err)
	}
	if len(frame) == 0 || frame[0] != potserve.StatusErr {
		t.Fatalf("want StatusErr frame, got %x", frame)
	}

	// The stream is still framed: a well-formed request must now succeed.
	c := potserve.NewClient(conn)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after malformed frame: %v", err)
	}
}

// TestServerConcurrentClients hammers the server from several connections
// on disjoint key residues, then verifies every acknowledged write and the
// store's structural invariants.
func TestServerConcurrentClients(t *testing.T) {
	s, kv := newServer(t, nil)

	const (
		clients = 4
		iters   = 300
	)
	master := randtest.New(t, 7)
	seeds := make([]int64, clients)
	for i := range seeds {
		seeds[i] = master.Int63()
	}

	models := make([]map[uint64]uint64, clients)
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := potserve.Dial(s.Addr())
			if err != nil {
				errs[w] = err
				return
			}
			defer c.Close()
			rng := rand.New(rand.NewSource(seeds[w]))
			model := make(map[uint64]uint64)
			for i := 0; i < iters; i++ {
				// Keys in this client's residue class: no cross-client
				// conflicts, so the final model is exact.
				key := uint64(rng.Intn(50))*clients + uint64(w)
				switch rng.Intn(3) {
				case 0, 1:
					val := rng.Uint64()
					if _, err := c.Put(key, val); err != nil {
						errs[w] = err
						return
					}
					model[key] = val
				case 2:
					if _, err := c.Delete(key); err != nil {
						errs[w] = err
						return
					}
					delete(model, key)
				}
			}
			models[w] = model
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", w, err)
		}
	}

	c := dial(t, s)
	total := 0
	for w, model := range models {
		total += len(model)
		for key, want := range model {
			val, ok, err := c.Get(key)
			if err != nil || !ok || val != want {
				t.Fatalf("client %d key %d: val=%d ok=%v err=%v, want %d", w, key, val, ok, err, want)
			}
		}
	}
	if n, err := kv.Check(); err != nil || n != total {
		t.Fatalf("store check: n=%d err=%v, want %d keys", n, err, total)
	}
}
