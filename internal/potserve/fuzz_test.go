package potserve

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the request decoder. The
// protocol's safety story depends on the decoder being total: truncated
// payloads, oversized counts, junk opcodes and trailing garbage must return
// an error, never panic, and never allocate beyond what the input length
// justifies. When a body does decode, re-encoding it must reproduce the
// exact bytes (the encoding is canonical), and decoding again must yield
// the same request.
func FuzzDecodeRequest(f *testing.F) {
	seedReqs := []Request{
		{Op: OpGet, Key: 1},
		{Op: OpPut, Key: 2, Val: 3},
		{Op: OpDel, Key: 4},
		{Op: OpScan, From: 5, Max: 10},
		{Op: OpTx},
		{Op: OpPing},
		{Op: OpSub, Origin: 2, Seq: 17},
		{Op: OpRep, Origin: 1, Epoch: 3, Entries: []RepEntry{
			{Seq: 8, Epoch: 3, Key: 40, Val: 41},
			{Seq: 9, Epoch: 3, Key: 42, Del: true},
		}},
		{Op: OpAck, Origin: 0, Seq: 99},
		{Op: OpTopo},
	}
	for _, req := range seedReqs {
		body, err := AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	// Malformed seeds steer the fuzzer at the interesting edges.
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff})
	f.Add([]byte{OpTx, 0xff, 0xff})
	f.Add([]byte{OpScan, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	// Replication frames: truncated headers, bad counts, short entry
	// payloads, bad entry kinds, trailing junk.
	f.Add([]byte{OpSub, 0, 0, 0, 1})                                  // truncated fromSeq
	f.Add([]byte{OpRep, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2})         // truncated count
	f.Add([]byte{OpRep, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0xff, 0xff}) // count with no payload
	f.Add(append([]byte{OpRep, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 1}, make([]byte, 32)...)) // one byte short of an entry
	f.Add(func() []byte { // entry kind 7 (only 0/1 legal)
		b := []byte{OpRep, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0, 1}
		e := make([]byte, 33)
		e[16] = 7
		return append(b, e...)
	}())
	f.Add([]byte{OpAck, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2, 0xee}) // trailing junk
	f.Add([]byte{OpTopo, 0})                                        // TOPO carries no payload

	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := DecodeRequest(body)
		if err != nil {
			return // rejection is fine; panicking is the bug being hunted
		}
		enc, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %+v: %v", req, err)
		}
		if !bytes.Equal(enc, body) {
			t.Fatalf("encoding not canonical:\n in  %x\n out %x", body, enc)
		}
		again, err := DecodeRequest(enc)
		if err != nil || !reflect.DeepEqual(again, req) {
			t.Fatalf("re-decode mismatch: %+v vs %+v (err %v)", again, req, err)
		}
	})
}

// FuzzDecodeResponse does the same for the response decoder, fuzzing the
// originating op alongside the body (the op selects the payload shape).
func FuzzDecodeResponse(f *testing.F) {
	f.Add(OpGet, []byte{StatusOK, 0, 0, 0, 0, 0, 0, 0, 9})
	f.Add(OpScan, []byte{StatusOK, 0, 0, 0, 0})
	f.Add(OpPing, []byte{StatusOK})
	f.Add(OpGet, []byte{StatusErr, 'b', 'o', 'o', 'm'})
	f.Add(OpDel, []byte{StatusNotFound})
	f.Add(OpGet, []byte{StatusCorrupt})
	f.Add(OpScan, []byte{StatusCorrupt})
	f.Add(OpGet, []byte{StatusCorrupt, 1}) // corrupt frames carry no payload
	f.Add(byte(0xff), []byte{0xff})
	// Replication responses.
	f.Add(OpGet, []byte{StatusNotOwner})
	f.Add(OpPut, []byte{StatusNotOwner, 1}) // not-owner frames carry no payload
	f.Add(OpRep, []byte{StatusOK, 0, 0, 0, 0, 0, 0, 0, 7})
	f.Add(OpRep, []byte{StatusOK, 0, 0, 0, 0})    // truncated watermark
	f.Add(OpAck, []byte{StatusOK})
	f.Add(OpSub, func() []byte { // one valid entry
		b := []byte{StatusOK, 0, 1}
		e := make([]byte, 33)
		e[7], e[15] = 4, 1 // seq 4, epoch 1
		return append(b, e...)
	}())
	f.Add(OpSub, []byte{StatusOK, 0, 2, 0}) // count 2 with 1 payload byte
	f.Add(OpTopo, func() []byte { // two-node topology
		b := []byte{StatusOK, 0, 0, 0, 0, 0, 0, 0, 5, 0, 2}
		b = append(b, 0, 0, 0, 0, 1, 0, 3, 'a', ':', '1')
		b = append(b, 0, 0, 0, 1, 0, 0, 3, 'b', ':', '2')
		return b
	}())
	f.Add(OpTopo, []byte{StatusOK, 0, 0, 0, 0, 0, 0, 0, 5, 0, 1, 0, 0, 0, 0, 1, 0xff, 0xff}) // bad addr length
	f.Add(OpTopo, []byte{StatusOK, 0, 0, 0, 0, 0, 0, 0, 5, 0, 1, 0, 0, 0, 0, 9, 0, 0})       // bad alive byte

	f.Fuzz(func(t *testing.T, op byte, body []byte) {
		resp, err := DecodeResponse(op, body)
		if err != nil {
			return
		}
		enc, err := AppendResponse(nil, op, resp)
		if err != nil {
			t.Fatalf("decoded response does not re-encode: op %d %+v: %v", op, resp, err)
		}
		if !bytes.Equal(enc, body) {
			t.Fatalf("encoding not canonical (op %d):\n in  %x\n out %x", op, body, enc)
		}
	})
}
