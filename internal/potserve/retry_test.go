package potserve_test

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"potgo/internal/objstore"
	"potgo/internal/pmem"
	"potgo/internal/potserve"
	"potgo/internal/randtest"
)

// clock records the sleeps a RetryPolicy requests instead of taking
// them, making backoff schedules assertable.
type clock struct{ slept []time.Duration }

func (c *clock) sleep(d time.Duration) { c.slept = append(c.slept, d) }

// scriptedDialer returns a DialFunc whose connection is served by fn on
// the other end of a net.Pipe.
func scriptedDialer(fn func(server net.Conn)) func(string) (*potserve.Client, error) {
	return func(string) (*potserve.Client, error) {
		cs, ss := net.Pipe()
		go fn(ss)
		return potserve.NewClient(cs), nil
	}
}

// readThenClose consumes one request frame and hangs up — the
// connection dies with the request on the wire.
func readThenClose(ss net.Conn) {
	potserve.ReadFrame(ss)
	ss.Close()
}

func TestRetryDialBackoffDeterministic(t *testing.T) {
	s, _ := newServer(t, nil)
	var ck clock
	fails := 2
	dials := 0
	pol := potserve.RetryPolicy{
		MaxAttempts: 5,
		Base:        time.Millisecond,
		Cap:         4 * time.Millisecond,
		Sleep:       ck.sleep,
		Rand:        func() float64 { return 1 }, // jitter factor exactly 1.0
		DialFunc: func(addr string) (*potserve.Client, error) {
			dials++
			if dials <= fails {
				return nil, errors.New("connection refused")
			}
			return potserve.Dial(addr)
		},
	}
	rc, err := potserve.DialRetry(s.Addr(), pol)
	if err != nil {
		t.Fatalf("DialRetry: %v", err)
	}
	defer rc.Close()
	if dials != 3 {
		t.Fatalf("dials = %d, want 3", dials)
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	if len(ck.slept) != len(want) {
		t.Fatalf("slept %v, want %v", ck.slept, want)
	}
	for i := range want {
		if ck.slept[i] != want[i] {
			t.Fatalf("slept[%d] = %v, want %v", i, ck.slept[i], want[i])
		}
	}
	if err := rc.Ping(); err != nil {
		t.Fatalf("ping after retried dial: %v", err)
	}
}

func TestRetryBackoffCapsAndJitters(t *testing.T) {
	var ck clock
	pol := potserve.RetryPolicy{
		MaxAttempts: 6,
		Base:        time.Millisecond,
		Cap:         4 * time.Millisecond,
		Sleep:       ck.sleep,
		Rand:        func() float64 { return 0 }, // jitter factor exactly 0.5
		DialFunc: func(string) (*potserve.Client, error) {
			return nil, errors.New("connection refused")
		},
	}
	if _, err := potserve.DialRetry("nowhere:0", pol); err == nil {
		t.Fatal("DialRetry succeeded against a dialer that always fails")
	}
	// min(Cap, Base<<i) * 0.5 for i = 0..4: the 4ms cap holds from the
	// third backoff on.
	want := []time.Duration{
		time.Millisecond / 2, time.Millisecond, 2 * time.Millisecond,
		2 * time.Millisecond, 2 * time.Millisecond,
	}
	if len(ck.slept) != len(want) {
		t.Fatalf("slept %v, want %v", ck.slept, want)
	}
	for i := range want {
		if ck.slept[i] != want[i] {
			t.Fatalf("slept[%d] = %v, want %v", i, ck.slept[i], want[i])
		}
	}
}

func TestRetryIdempotentSurvivesMidStreamLoss(t *testing.T) {
	s, kv := newServer(t, nil)
	if _, err := kv.Put(7, 70); err != nil {
		t.Fatal(err)
	}
	var ck clock
	dials := 0
	lossy := scriptedDialer(readThenClose)
	pol := potserve.RetryPolicy{
		MaxAttempts: 4,
		Base:        time.Millisecond,
		Sleep:       ck.sleep,
		Rand:        func() float64 { return 1 },
		DialFunc: func(addr string) (*potserve.Client, error) {
			dials++
			if dials == 1 {
				return lossy(addr)
			}
			return potserve.Dial(addr)
		},
	}
	rc, err := potserve.DialRetry(s.Addr(), pol)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	// The first Get rides the doomed connection, loses it mid-request,
	// reconnects and succeeds.
	v, ok, err := rc.Get(7)
	if err != nil || !ok || v != 70 {
		t.Fatalf("Get(7) = %d,%v,%v want 70,true,nil", v, ok, err)
	}
	if dials != 2 {
		t.Fatalf("dials = %d, want 2 (one loss, one reconnect)", dials)
	}
	if len(ck.slept) != 1 {
		t.Fatalf("slept %v, want exactly one backoff", ck.slept)
	}
}

func TestRetryNonIdempotentNotReplayed(t *testing.T) {
	s, _ := newServer(t, nil)
	dials := 0
	lossy := scriptedDialer(readThenClose)
	pol := potserve.RetryPolicy{
		MaxAttempts: 4,
		Base:        time.Millisecond,
		Sleep:       func(time.Duration) {},
		DialFunc: func(addr string) (*potserve.Client, error) {
			dials++
			if dials == 1 {
				return lossy(addr)
			}
			return potserve.Dial(addr)
		},
	}
	rc, err := potserve.DialRetry(s.Addr(), pol)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	// The Put's connection dies with the request on the wire: it must
	// surface the error, not replay.
	if _, err := rc.Put(1, 10); err == nil {
		t.Fatal("Put on a dead connection reported success")
	}
	if dials != 1 {
		t.Fatalf("dials = %d after failed Put, want 1 (no replay)", dials)
	}
	// The next operation reconnects and works.
	if err := rc.Ping(); err != nil {
		t.Fatalf("ping after dropped Put: %v", err)
	}
	if dials != 2 {
		t.Fatalf("dials = %d, want 2", dials)
	}
}

func TestRetryServerErrorNotRetried(t *testing.T) {
	var ck clock
	dials := 0
	answerErr := scriptedDialer(func(ss net.Conn) {
		for {
			if _, err := potserve.ReadFrame(ss); err != nil {
				return
			}
			body := append([]byte{potserve.StatusErr}, "boom"...)
			if err := potserve.WriteFrame(ss, body); err != nil {
				return
			}
		}
	})
	pol := potserve.RetryPolicy{
		MaxAttempts: 4,
		Sleep:       ck.sleep,
		DialFunc: func(addr string) (*potserve.Client, error) {
			dials++
			return answerErr(addr)
		},
	}
	rc, err := potserve.DialRetry("scripted:0", pol)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	_, _, err = rc.Get(1)
	var se *potserve.ServerError
	if !errors.As(err, &se) || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("Get = %v, want ServerError carrying \"boom\"", err)
	}
	if dials != 1 || len(ck.slept) != 0 {
		t.Fatalf("server error was retried: dials=%d slept=%v", dials, ck.slept)
	}
}

// TestServerCorruptStatus drives graceful degradation end to end: an
// unrepairable object answers StatusCorrupt, the client surfaces
// ErrCorrupt without retrying, and the same connection keeps serving
// healthy keys.
func TestServerCorruptStatus(t *testing.T) {
	sh, err := pmem.NewSharded(pmem.NewStore(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	kv, err := objstore.CreateKVFT(sh, "srv")
	if err != nil {
		t.Fatal(err)
	}
	const nkeys = 128
	for k := uint64(0); k < nkeys; k++ {
		if _, err := kv.Put(k, k+1000); err != nil {
			t.Fatal(err)
		}
	}
	// Stale parity (see objstore's TestKVFTUnrepairableNeverLies): the
	// overwritten lines are detectable but unrepairable after a flip.
	sh.MutateNoParity(true)
	for k := uint64(0); k < nkeys; k++ {
		if _, err := kv.Put(k, k+2000); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.SyncAll(); err != nil {
		t.Fatal(err)
	}
	sh.SetVerifyOnRead(true)
	seed := uint64(randtest.Seed(t, 73))
	t.Logf("corruption seed %d", seed)
	if _, err := sh.CorruptObjects(3, pmem.CorruptDetect, seed); err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := potserve.Serve(ln, kv, nil)
	defer srv.Close()

	dials := 0
	pol := potserve.RetryPolicy{
		Sleep: func(time.Duration) {},
		DialFunc: func(addr string) (*potserve.Client, error) {
			dials++
			return potserve.Dial(addr)
		},
	}
	rc, err := potserve.DialRetry(srv.Addr(), pol)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()

	sawCorrupt := 0
	lastGood := uint64(0)
	for k := uint64(0); k < nkeys; k++ {
		v, ok, err := rc.Get(k)
		if err != nil {
			if !errors.Is(err, potserve.ErrCorrupt) {
				t.Fatalf("Get(%d): %v", k, err)
			}
			sawCorrupt++
			continue
		}
		if !ok || v != k+2000 {
			t.Fatalf("Get(%d) = %d,%v want %d,true — silent corruption over the wire", k, v, ok, k+2000)
		}
		lastGood = k
	}
	if sawCorrupt == 0 {
		t.Fatal("no lookup tripped over the injected faults; test exercised nothing")
	}
	t.Logf("%d keys answered StatusCorrupt", sawCorrupt)
	if dials != 1 {
		t.Fatalf("dials = %d, want 1: StatusCorrupt must not tear the connection down", dials)
	}
	// The connection is still in sync after corrupt answers.
	if v, ok, err := rc.Get(lastGood); err != nil || !ok || v != lastGood+2000 {
		t.Fatalf("healthy Get after corrupt answers = %d,%v,%v", v, ok, err)
	}
}
