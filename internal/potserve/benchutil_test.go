package potserve

import (
	"net"
	"testing"

	"potgo/internal/objstore"
	"potgo/internal/pmem"
)

func newBenchStore(tb testing.TB) (*pmem.Sharded, *objstore.KV) {
	tb.Helper()
	sh, err := pmem.NewSharded(pmem.NewStore(), 4, 1)
	if err != nil {
		tb.Fatal(err)
	}
	kv, err := objstore.CreateKV(sh, "bench")
	if err != nil {
		tb.Fatal(err)
	}
	return sh, kv
}

func newPipeClient(tb testing.TB, kv *objstore.KV) *Client {
	tb.Helper()
	s := &Server{backend: &KVBackend{KV: kv}, conns: make(map[net.Conn]struct{})}
	cs, ss := net.Pipe()
	s.conns[ss] = struct{}{}
	s.wg.Add(1)
	go s.handle(ss)
	tb.Cleanup(func() {
		cs.Close()
		ss.Close()
		s.wg.Wait()
	})
	return NewClient(cs)
}
