package potserve

import "testing"

// The pipe benchmarks measure the full request path — client codec, server
// loop, KV store, persistent heap — over an in-memory connection, so
// per-request CPU and allocation behavior is visible without network noise.

func BenchmarkPingPipe(b *testing.B) {
	_, kv := newBenchStore(b)
	c := newPipeClient(b, kv)
	if err := c.Ping(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Ping(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetPipe(b *testing.B) {
	_, kv := newBenchStore(b)
	c := newPipeClient(b, kv)
	if _, err := c.Put(1, 42); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.Get(1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutPipe(b *testing.B) {
	_, kv := newBenchStore(b)
	c := newPipeClient(b, kv)
	if _, err := c.Put(1, 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Put(1, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
