package potserve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"potgo/internal/objstore"
	"potgo/internal/obs"
)

// latencyBounds are the request-latency histogram bucket upper bounds in
// microseconds (1µs .. ~1s, roughly x4 per bucket).
var latencyBounds = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// Server serves the potserve wire protocol over an objstore.KV. One
// goroutine per connection executes that connection's requests in arrival
// order (pipelined: responses are buffered and flushed when the connection
// has no further request ready), while different connections run
// concurrently — the sharded heap below provides the isolation.
type Server struct {
	kv  *objstore.KV
	reg *obs.Registry
	ln  net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Serve starts serving on ln. It returns immediately; the accept loop and
// all connection handlers run on background goroutines until Close. reg may
// be nil (metrics disabled).
func Serve(ln net.Listener, kv *objstore.KV, reg *obs.Registry) *Server {
	s := &Server{kv: kv, reg: reg, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (e.g. to dial an OS-assigned port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the accept loop, closes every live connection and waits for
// the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // Close shut the listener down
		}
		if !s.track(c) {
			c.Close()
			return
		}
		s.reg.Counter("potserve.connections").Add(1)
		s.wg.Add(1)
		go s.handle(c)
	}
}

// opName labels metrics; unknown opcodes never reach it (the decoder
// rejects them first).
func opName(op byte) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpScan:
		return "scan"
	case OpTx:
		return "tx"
	case OpPing:
		return "ping"
	}
	return "unknown"
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer s.untrack(c)
	defer c.Close()

	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	var body []byte
	for {
		frame, err := ReadFrame(br)
		if err != nil {
			// A clean EOF between frames is the peer hanging up; anything
			// else (truncation, oversized prefix) is a protocol error and
			// the connection is beyond recovery either way.
			if !errors.Is(err, io.EOF) {
				s.reg.Counter("potserve.protocol_errors").Add(1)
			}
			return
		}
		req, err := DecodeRequest(frame)
		if err != nil {
			// The frame boundary survived, so the stream is still in sync:
			// answer StatusErr and keep the connection.
			s.reg.Counter("potserve.protocol_errors").Add(1)
			body, _ = AppendResponse(body[:0], OpPing, Response{Status: StatusErr, Msg: err.Error()})
			if WriteFrame(bw, body) != nil || bw.Flush() != nil {
				return
			}
			continue
		}

		start := time.Now()
		resp := s.execute(req)
		s.reg.Histogram("potserve.latency_us."+opName(req.Op), latencyBounds...).
			Observe(float64(time.Since(start).Microseconds()))
		s.reg.Counter("potserve.requests." + opName(req.Op)).Add(1)
		if resp.Status == StatusErr {
			s.reg.Counter("potserve.request_errors").Add(1)
		}

		body, err = AppendResponse(body[:0], req.Op, resp)
		if err != nil {
			body, _ = AppendResponse(body[:0], req.Op, Response{Status: StatusErr, Msg: err.Error()})
		}
		if WriteFrame(bw, body) != nil {
			return
		}
		// Pipelining: only flush when no further request is already
		// buffered, so a burst of N requests costs one syscall of
		// responses, while a lone request is answered immediately.
		if br.Buffered() == 0 {
			if bw.Flush() != nil {
				return
			}
		}
	}
}

// execute runs one decoded request against the store.
func (s *Server) execute(req Request) Response {
	switch req.Op {
	case OpGet:
		val, ok, err := s.kv.Get(req.Key)
		if err != nil {
			return errResponse(err)
		}
		if !ok {
			return Response{Status: StatusNotFound}
		}
		return Response{Status: StatusOK, Val: val}
	case OpPut:
		created, err := s.kv.Put(req.Key, req.Val)
		if err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK, Created: created}
	case OpDel:
		existed, err := s.kv.Delete(req.Key)
		if err != nil {
			return errResponse(err)
		}
		if !existed {
			return Response{Status: StatusNotFound}
		}
		return Response{Status: StatusOK}
	case OpScan:
		kvs, err := s.kv.Scan(req.From, int(req.Max))
		if err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK, KVs: kvs}
	case OpTx:
		if err := s.kv.Batch(req.Ops); err != nil {
			return errResponse(err)
		}
		return Response{Status: StatusOK}
	case OpPing:
		return Response{Status: StatusOK}
	}
	return errResponse(fmt.Errorf("potserve: unhandled op %d", req.Op))
}

func errResponse(err error) Response {
	return Response{Status: StatusErr, Msg: err.Error()}
}
