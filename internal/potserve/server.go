package potserve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"potgo/internal/objstore"
	"potgo/internal/obs"
	"potgo/internal/pds"
	"potgo/internal/pmem"
)

// latencyBounds are the request-latency histogram bucket upper bounds in
// microseconds (1µs .. ~1s, roughly x4 per bucket).
var latencyBounds = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576}

// flushBytes bounds the per-connection response buffer: a deep pipeline's
// responses are written out once the buffer passes this size even if more
// requests are already waiting, so the buffer's steady-state capacity stays
// small while a burst still costs ~one syscall.
const flushBytes = 64 << 10

// Backend executes one decoded request, filling resp (reusing its KVs /
// Entries capacity as scratch). The default backend runs requests straight
// against an objstore.KV; a cluster node wraps that with ownership checks
// and log replication. Exec is called concurrently from every connection
// handler and must be safe for that.
type Backend interface {
	Exec(req *Request, resp *Response)
}

// Server serves the potserve wire protocol over a Backend. One goroutine
// per connection executes that connection's requests in arrival order
// (pipelined: responses accumulate in a per-connection buffer and are
// written with one conn.Write when the connection has no further request
// ready), while different connections run concurrently — the sharded heap
// below provides the isolation.
//
// The request path performs zero heap allocations per request in steady
// state: the frame buffer, decoded Request (including its TX ops), Response
// (including its scan result) and the outgoing response buffer all live for
// the connection and are reused; metric handles are resolved once at Serve,
// not per request. TestServeAllocs gates this.
type Server struct {
	backend Backend
	reg     *obs.Registry
	ln      net.Listener

	// Per-op metric handles, indexed by opcode (decoders reject anything
	// above opMax). Resolved once: obs.Registry lookups are a lock and a
	// map access plus a name allocation, far too heavy per request. All
	// handles are nil-safe no-ops when reg is nil.
	latHist   [opMax + 1]*obs.Histogram
	reqCount  [opMax + 1]*obs.Counter
	connCount *obs.Counter
	protoErrs *obs.Counter
	reqErrs   *obs.Counter
	// corrupts counts StatusCorrupt responses: reads that tripped a
	// checksum on an object the store could not repair from parity.
	corrupts *obs.Counter
	// bufGrows counts reallocations of any per-connection wire buffer — the
	// observable "wire allocs": zero after warm-up.
	bufGrows *obs.Counter

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// Serve starts serving on ln over kv directly (single-node mode). It
// returns immediately; the accept loop and all connection handlers run on
// background goroutines until Close. reg may be nil (metrics disabled).
func Serve(ln net.Listener, kv *objstore.KV, reg *obs.Registry) *Server {
	return ServeBackend(ln, &KVBackend{KV: kv}, reg)
}

// ServeBackend is Serve over an arbitrary Backend (e.g. a cluster node).
func ServeBackend(ln net.Listener, backend Backend, reg *obs.Registry) *Server {
	s := &Server{backend: backend, reg: reg, ln: ln, conns: make(map[net.Conn]struct{})}
	for op := OpGet; op <= opMax; op++ {
		s.latHist[op] = reg.Histogram("potserve.latency_us."+opName(op), latencyBounds...)
		s.reqCount[op] = reg.Counter("potserve.requests." + opName(op))
	}
	s.connCount = reg.Counter("potserve.connections")
	s.protoErrs = reg.Counter("potserve.protocol_errors")
	s.reqErrs = reg.Counter("potserve.request_errors")
	s.corrupts = reg.Counter("potserve.corrupt_responses")
	s.bufGrows = reg.Counter("potserve.wire.buf_grows")
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listener's address (e.g. to dial an OS-assigned port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the accept loop, closes every live connection and waits for
// the handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // Close shut the listener down
		}
		if !s.track(c) {
			c.Close()
			return
		}
		s.connCount.Add(1)
		s.wg.Add(1)
		go s.handle(c)
	}
}

// opName labels metrics; unknown opcodes never reach it (the decoder
// rejects them first).
func opName(op byte) string {
	switch op {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDel:
		return "del"
	case OpScan:
		return "scan"
	case OpTx:
		return "tx"
	case OpPing:
		return "ping"
	case OpSub:
		return "sub"
	case OpRep:
		return "rep"
	case OpAck:
		return "ack"
	case OpTopo:
		return "topo"
	}
	return "unknown"
}

// appendErrFrame appends a StatusErr frame (which cannot itself fail to
// encode) to out.
func appendErrFrame(out []byte, msg string) []byte {
	hdr := len(out)
	out = append(out, 0, 0, 0, 0)
	out = append(out, StatusErr)
	out = append(out, msg...)
	binary.BigEndian.PutUint32(out[hdr:], uint32(len(out)-hdr-4))
	return out
}

func (s *Server) handle(c net.Conn) {
	defer s.wg.Done()
	defer s.untrack(c)
	defer c.Close()

	br := bufio.NewReader(c)
	// Connection-lifetime scratch: the frame buffer, the decoded request
	// (whose Ops slice is the TX scratch), the response (whose KVs slice is
	// the scan scratch) and the outgoing byte buffer.
	var (
		frame []byte
		req   Request
		resp  Response
		out   []byte
		caps  [4]int // previous capacities, for the buf_grows counter
	)
	for {
		var err error
		frame, err = ReadFrameInto(br, frame)
		if err != nil {
			// A clean EOF between frames is the peer hanging up; anything
			// else (truncation, oversized prefix) is a protocol error and
			// the connection is beyond recovery either way.
			if !errors.Is(err, io.EOF) {
				s.protoErrs.Add(1)
			}
			return
		}
		if err := DecodeRequestInto(frame, &req); err != nil {
			// The frame boundary survived, so the stream is still in sync:
			// answer StatusErr and keep the connection.
			s.protoErrs.Add(1)
			out = appendErrFrame(out, err.Error())
		} else {
			start := time.Now()
			s.backend.Exec(&req, &resp)
			s.latHist[req.Op].Observe(float64(time.Since(start).Microseconds()))
			s.reqCount[req.Op].Add(1)
			if resp.Status == StatusErr {
				s.reqErrs.Add(1)
			}
			if resp.Status == StatusCorrupt {
				s.corrupts.Add(1)
			}
			out, err = AppendResponseFrame(out, req.Op, resp)
			if err != nil {
				out = appendErrFrame(out, err.Error())
			}
		}
		s.noteGrowth(&caps, frame, req.Ops, resp.KVs, out)
		// Pipelining: only write when no further request is already
		// buffered (a burst of N requests costs one syscall of responses,
		// while a lone request is answered immediately), or when the
		// response buffer is past its flush bound.
		if br.Buffered() == 0 || len(out) >= flushBytes {
			if _, err := c.Write(out); err != nil {
				return
			}
			out = out[:0]
		}
	}
}

// noteGrowth bumps the wire-allocation counter whenever a per-connection
// scratch buffer had to grow; in steady state every capacity is stable and
// this observes nothing.
func (s *Server) noteGrowth(caps *[4]int, frame []byte, ops []objstore.BatchOp, kvs []pds.KV, out []byte) {
	for i, c := range [4]int{cap(frame), cap(ops), cap(kvs), cap(out)} {
		if c > caps[i] {
			if caps[i] > 0 {
				s.bufGrows.Add(1)
			}
			caps[i] = c
		}
	}
}

// KVBackend is the single-node Backend: requests run straight against the
// store. Replication ops answer StatusErr — a lone node has no peers.
type KVBackend struct {
	KV *objstore.KV
}

// Exec runs one decoded request against the store, reusing resp's KVs
// capacity for scan results.
func (b *KVBackend) Exec(req *Request, resp *Response) {
	kvs := resp.KVs[:0]
	*resp = Response{KVs: kvs}
	switch req.Op {
	case OpGet:
		val, ok, err := b.KV.Get(req.Key)
		switch {
		// The store already tried an inline repair before surfacing
		// ErrCorrupt; answer StatusCorrupt rather than tearing the
		// connection down — the stream is in sync and every other key
		// is still servable. Graceful degradation, never wrong data.
		case err != nil && errors.Is(err, pmem.ErrCorrupt):
			resp.Status = StatusCorrupt
		case err != nil:
			resp.Status, resp.Msg = StatusErr, err.Error()
		case !ok:
			resp.Status = StatusNotFound
		default:
			resp.Status, resp.Val = StatusOK, val
		}
	case OpPut:
		created, err := b.KV.Put(req.Key, req.Val)
		if err != nil {
			resp.Status, resp.Msg = StatusErr, err.Error()
			return
		}
		resp.Status, resp.Created = StatusOK, created
	case OpDel:
		existed, err := b.KV.Delete(req.Key)
		switch {
		case err != nil:
			resp.Status, resp.Msg = StatusErr, err.Error()
		case !existed:
			resp.Status = StatusNotFound
		default:
			resp.Status = StatusOK
		}
	case OpScan:
		kvs, err := b.KV.ScanAppend(kvs, req.From, int(req.Max))
		resp.KVs = kvs
		if err != nil {
			if errors.Is(err, pmem.ErrCorrupt) {
				resp.KVs = kvs[:0]
				resp.Status = StatusCorrupt
				return
			}
			resp.Status, resp.Msg = StatusErr, err.Error()
			return
		}
		resp.Status = StatusOK
	case OpTx:
		if err := b.KV.Batch(req.Ops); err != nil {
			resp.Status, resp.Msg = StatusErr, err.Error()
			return
		}
		resp.Status = StatusOK
	case OpPing:
		resp.Status = StatusOK
	default:
		resp.Status, resp.Msg = StatusErr, fmt.Sprintf("potserve: unhandled op %d", req.Op)
	}
}
