package potserve

import (
	"net"
	"testing"

	"potgo/internal/objstore"
	"potgo/internal/pmem"
)

// newPipeServer wires a Server connection handler and a Client together
// over an in-memory net.Pipe, taking the network stack (and its
// nondeterministic runtime allocations) out of the measurement: what is
// left is exactly the wire codec, the server loop, the KV store and the
// persistent heap underneath. create selects the KV flavor (snapshot
// reads vs the latched baseline).
func newPipeServer(t *testing.T, create func(*pmem.Sharded, string) (*objstore.KV, error)) (*Client, *pmem.Sharded) {
	t.Helper()
	sh, err := pmem.NewSharded(pmem.NewStore(), 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	kv, err := create(sh, "allocs")
	if err != nil {
		t.Fatal(err)
	}
	s := &Server{backend: &KVBackend{KV: kv}, conns: make(map[net.Conn]struct{})}
	cs, ss := net.Pipe()
	s.conns[ss] = struct{}{}
	s.wg.Add(1)
	go s.handle(ss)
	t.Cleanup(func() {
		cs.Close()
		ss.Close()
		s.wg.Wait()
	})
	return NewClient(cs), sh
}

// runServeAllocs is the zero-copy regression gate: once the per-connection
// scratch buffers are warm, a steady-state get / put-overwrite / scan / tx
// / ping performs zero heap allocations across the whole stack (client
// encode, server decode, KV, B+-tree walk or snapshot traversal, undo log,
// write-back model, response encode). Inserts and deletes restructure the
// tree and are allowed to allocate; a bounded keyspace makes every gated
// put an overwrite.
func runServeAllocs(t *testing.T, c *Client) {
	const keys = 64
	for k := uint64(0); k < keys; k++ {
		if _, err := c.Put(k, k*3); err != nil {
			t.Fatalf("warmup put %d: %v", k, err)
		}
	}

	txOps := []objstore.BatchOp{{Key: 3, Val: 30}, {Key: 7, Val: 70}, {Key: 11, Val: 110}}
	scanReqs := []Request{{Op: OpScan, From: 0, Max: 16}}
	var scanResps []Response
	var opErr error

	cases := []struct {
		name string
		fn   func()
	}{
		{"ping", func() { opErr = c.Ping() }},
		{"get-hit", func() { _, _, opErr = c.Get(5) }},
		{"get-miss", func() { _, _, opErr = c.Get(keys + 1000) }},
		{"put-overwrite", func() { _, opErr = c.Put(9, 999) }},
		{"tx-overwrite", func() { opErr = c.Tx(txOps) }},
		{"scan", func() { scanResps, opErr = c.PipelineAppend(scanReqs, scanResps) }},
	}
	for _, tc := range cases {
		// Warm every scratch buffer this op touches (frame, ops, KVs,
		// response accumulator, undo-log arena) before measuring.
		for i := 0; i < 3; i++ {
			tc.fn()
			if opErr != nil {
				t.Fatalf("%s warmup: %v", tc.name, opErr)
			}
		}
		if avg := testing.AllocsPerRun(100, tc.fn); avg != 0 {
			t.Errorf("%s: %.2f allocs/op, want 0", tc.name, avg)
		}
		if opErr != nil {
			t.Fatalf("%s: %v", tc.name, opErr)
		}
	}
}

// TestServeAllocs gates the default (snapshot-read) server: gets and scans
// ride the epoch-pinned MVCC mirror — Pin, version-chain traversal, Unpin —
// and must still be allocation-free. The MVCC stats prove the mirror was
// actually live, not silently disabled.
func TestServeAllocs(t *testing.T) {
	c, sh := newPipeServer(t, objstore.CreateKV)
	runServeAllocs(t, c)
	if sh.MVCC() == nil {
		t.Fatal("snapshot reads not enabled: the gate measured the latched path")
	}
	if pub, _ := sh.MVCC().Stats(); pub == 0 {
		t.Fatal("no versions published: the workload never reached the snapshot mirror")
	}
}

// TestServeAllocsLatched gates the latched baseline (CreateKVLatched, the
// configuration potbench -latched benchmarks against): it must hold the
// same zero-allocation bar so snapshot-vs-latched comparisons measure the
// read protocol, not allocator noise.
func TestServeAllocsLatched(t *testing.T) {
	c, sh := newPipeServer(t, objstore.CreateKVLatched)
	runServeAllocs(t, c)
	if sh.MVCC() != nil {
		t.Fatal("latched baseline unexpectedly has MVCC enabled")
	}
}
