package potserve

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"potgo/internal/objstore"
	"potgo/internal/pds"
)

// RetryPolicy configures a RetryClient: capped exponential backoff with
// multiplicative jitter. The zero value means "use the defaults"; the
// hooks exist so tests can drive the policy with a deterministic clock
// and jitter source.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per operation, the first
	// one included (default 4).
	MaxAttempts int
	// Base is the backoff before the second attempt (default 1ms); the
	// delay doubles per attempt up to Cap (default 100ms), then a jitter
	// factor in [0.5, 1.0] is applied so a thundering herd of retriers
	// decorrelates.
	Base time.Duration
	Cap  time.Duration

	// Sleep, Rand and DialFunc default to time.Sleep, rand.Float64 and
	// Dial; tests substitute fakes.
	Sleep    func(time.Duration)
	Rand     func() float64
	DialFunc func(addr string) (*Client, error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.Base <= 0 {
		p.Base = time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 100 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.Rand == nil {
		p.Rand = rand.Float64
	}
	if p.DialFunc == nil {
		p.DialFunc = Dial
	}
	return p
}

// backoff returns the jittered delay after failed attempt i (0-based).
func (p *RetryPolicy) backoff(i int) time.Duration {
	d := p.Cap
	// Guard the shift: past ~40 doublings the multiply overflows long
	// before the cap comparison sees it.
	if i < 40 {
		if b := p.Base << uint(i); b < d {
			d = b
		}
	}
	return time.Duration(float64(d) * (0.5 + 0.5*p.Rand()))
}

// retryable reports whether err indicates the request may not have been
// executed (transport loss, desynced stream) as opposed to an answer
// the server actually gave. Server-reported errors and corruption
// reports arrive on a healthy connection; retrying them re-executes a
// request that already ran.
func retryable(err error) bool {
	var se *ServerError
	return !errors.As(err, &se) && !errors.Is(err, ErrCorrupt)
}

// RetryClient wraps a Client with reconnect-and-retry: dial failures
// are retried for every operation (nothing has been sent yet), but a
// connection lost mid-request is only retried for idempotent operations
// — Get, Scan and Ping. A Put, Delete or Tx whose connection died after
// the request may already have executed on the server; replaying it
// could double-apply, so those surface the transport error instead.
//
// Like Client, a RetryClient is not safe for concurrent use.
type RetryClient struct {
	addr string
	pol  RetryPolicy
	c    *Client
}

// DialRetry connects to addr under the given policy, retrying the
// initial dial itself.
func DialRetry(addr string, pol RetryPolicy) (*RetryClient, error) {
	rc := &RetryClient{addr: addr, pol: pol.withDefaults()}
	if err := rc.connect(); err != nil {
		return nil, err
	}
	return rc, nil
}

// connect dials with backoff until a connection is established or the
// attempt budget runs out.
func (rc *RetryClient) connect() error {
	var lastErr error
	for a := 0; a < rc.pol.MaxAttempts; a++ {
		if a > 0 {
			rc.pol.Sleep(rc.pol.backoff(a - 1))
		}
		c, err := rc.pol.DialFunc(rc.addr)
		if err == nil {
			rc.c = c
			return nil
		}
		lastErr = err
	}
	return fmt.Errorf("potserve: dial failed after %d attempts: %w", rc.pol.MaxAttempts, lastErr)
}

// Close closes the current connection, if any.
func (rc *RetryClient) Close() error {
	if rc.c == nil {
		return nil
	}
	err := rc.c.Close()
	rc.c = nil
	return err
}

// drop discards a connection presumed broken.
func (rc *RetryClient) drop() {
	if rc.c != nil {
		rc.c.Close()
		rc.c = nil
	}
}

// doIdem round-trips an idempotent request, reconnecting and retrying
// on dial failure or mid-request connection loss.
func (rc *RetryClient) doIdem(req Request) (Response, error) {
	var lastErr error
	for a := 0; a < rc.pol.MaxAttempts; a++ {
		if a > 0 {
			rc.pol.Sleep(rc.pol.backoff(a - 1))
		}
		if rc.c == nil {
			c, err := rc.pol.DialFunc(rc.addr)
			if err != nil {
				lastErr = err
				continue
			}
			rc.c = c
		}
		resp, err := rc.c.roundTrip(req)
		if err == nil || !retryable(err) {
			return resp, err
		}
		lastErr = err
		rc.drop()
	}
	return Response{}, fmt.Errorf("potserve: %s failed after %d attempts: %w",
		opName(req.Op), rc.pol.MaxAttempts, lastErr)
}

// doOnce round-trips a non-idempotent request: the dial is retried
// (nothing sent yet), the round trip itself is attempted exactly once.
func (rc *RetryClient) doOnce(req Request) (Response, error) {
	if rc.c == nil {
		if err := rc.connect(); err != nil {
			return Response{}, err
		}
	}
	resp, err := rc.c.roundTrip(req)
	if err != nil && retryable(err) {
		// The connection is broken (not a server answer); drop it so
		// the next operation reconnects, but do NOT replay this one.
		rc.drop()
	}
	return resp, err
}

// Get fetches a key; ok reports presence.
func (rc *RetryClient) Get(key uint64) (val uint64, ok bool, err error) {
	resp, err := rc.doIdem(Request{Op: OpGet, Key: key})
	if err != nil {
		return 0, false, err
	}
	return resp.Val, resp.Status == StatusOK, nil
}

// Scan returns up to max pairs with key >= from, ascending.
func (rc *RetryClient) Scan(from uint64, max int) ([]pds.KV, error) {
	if max < 0 || max > MaxScan {
		return nil, fmt.Errorf("potserve: scan max %d out of range [0, %d]", max, MaxScan)
	}
	resp, err := rc.doIdem(Request{Op: OpScan, From: from, Max: uint32(max)})
	if err != nil {
		return nil, err
	}
	return resp.KVs, nil
}

// Ping round-trips an empty request.
func (rc *RetryClient) Ping() error {
	_, err := rc.doIdem(Request{Op: OpPing})
	return err
}

// Put upserts a key; created reports whether it was absent. Not
// retried after the request is on the wire.
func (rc *RetryClient) Put(key, val uint64) (created bool, err error) {
	resp, err := rc.doOnce(Request{Op: OpPut, Key: key, Val: val})
	if err != nil {
		return false, err
	}
	return resp.Created, nil
}

// Delete removes a key; existed reports whether it was present. Not
// retried after the request is on the wire.
func (rc *RetryClient) Delete(key uint64) (existed bool, err error) {
	resp, err := rc.doOnce(Request{Op: OpDel, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// Tx applies a batch atomically. Not retried after the request is on
// the wire.
func (rc *RetryClient) Tx(ops []objstore.BatchOp) error {
	_, err := rc.doOnce(Request{Op: OpTx, Ops: ops})
	return err
}
