package potserve

import (
	"bytes"
	"reflect"
	"testing"

	"potgo/internal/objstore"
	"potgo/internal/pds"
)

// TestRequestRoundTrip pins encode->decode identity for every opcode.
func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpGet, Key: 42},
		{Op: OpPut, Key: 1, Val: 0xdeadbeef},
		{Op: OpDel, Key: ^uint64(0)},
		{Op: OpScan, From: 7, Max: 100},
		{Op: OpScan, From: 0, Max: 0},
		{Op: OpTx, Ops: []objstore.BatchOp{
			{Key: 1, Val: 10},
			{Key: 2, Del: true, Val: 0},
			{Key: 3, Val: 30},
		}},
		{Op: OpTx},
		{Op: OpPing},
	}
	for _, want := range cases {
		body, err := AppendRequest(nil, want)
		if err != nil {
			t.Fatalf("encode %+v: %v", want, err)
		}
		got, err := DecodeRequest(body)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip: got %+v, want %+v", got, want)
		}
	}
}

// TestResponseRoundTrip pins encode->decode identity per (op, status).
func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		op   byte
		resp Response
	}{
		{OpGet, Response{Status: StatusOK, Val: 99}},
		{OpGet, Response{Status: StatusNotFound}},
		{OpPut, Response{Status: StatusOK, Created: true}},
		{OpPut, Response{Status: StatusOK, Created: false}},
		{OpDel, Response{Status: StatusOK}},
		{OpDel, Response{Status: StatusNotFound}},
		{OpScan, Response{Status: StatusOK, KVs: []pds.KV{{Key: 1, Val: 2}, {Key: 3, Val: 4}}}},
		{OpScan, Response{Status: StatusOK}},
		{OpTx, Response{Status: StatusOK}},
		{OpPing, Response{Status: StatusOK}},
		{OpGet, Response{Status: StatusErr, Msg: "pool exhausted"}},
	}
	for _, tc := range cases {
		body, err := AppendResponse(nil, tc.op, tc.resp)
		if err != nil {
			t.Fatalf("encode op %d %+v: %v", tc.op, tc.resp, err)
		}
		got, err := DecodeResponse(tc.op, body)
		if err != nil {
			t.Fatalf("decode op %d %+v: %v", tc.op, tc.resp, err)
		}
		if !reflect.DeepEqual(got, tc.resp) {
			t.Fatalf("round trip op %d: got %+v, want %+v", tc.op, got, tc.resp)
		}
	}
}

// TestDecodeRequestRejectsMalformed enumerates the malformed shapes the
// fuzz target hunts for, as fixed regressions.
func TestDecodeRequestRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"unknown op":        {0xff},
		"op zero":           {0},
		"truncated get key": {OpGet, 1, 2, 3},
		"get trailing":      append([]byte{OpGet}, make([]byte, 9)...),
		"truncated put":     append([]byte{OpPut}, make([]byte, 15)...),
		"truncated scan":    append([]byte{OpScan}, make([]byte, 10)...),
		"scan max too big":  {OpScan, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff},
		"tx count short":    {OpTx, 0, 2, TxPut, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 2},
		"tx count long":     append([]byte{OpTx, 0, 1}, make([]byte, 34)...),
		"tx bad kind":       append([]byte{OpTx, 0, 1, 7}, make([]byte, 16)...),
		"ping trailing":     {OpPing, 0},
	}
	for name, body := range cases {
		if _, err := DecodeRequest(body); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestDecodeResponseRejectsMalformed mirrors the request-side checks.
func TestDecodeResponseRejectsMalformed(t *testing.T) {
	cases := map[string]struct {
		op   byte
		body []byte
	}{
		"empty":               {OpGet, []byte{}},
		"unknown status":      {OpGet, []byte{9}},
		"truncated get val":   {OpGet, []byte{StatusOK, 1, 2}},
		"put missing created": {OpPut, []byte{StatusOK}},
		"scan count mismatch": {OpScan, []byte{StatusOK, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0, 0, 1}},
		"ping trailing":       {OpPing, []byte{StatusOK, 0}},
	}
	for name, tc := range cases {
		if _, err := DecodeResponse(tc.op, tc.body); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestFrameIO pins the length-prefix framing and the MaxFrame guard.
func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	bodies := [][]byte{{}, {1}, bytes.Repeat([]byte{0xab}, 1000)}
	for _, b := range bodies {
		if err := WriteFrame(&buf, b); err != nil {
			t.Fatalf("write %d bytes: %v", len(b), err)
		}
	}
	for _, want := range bodies {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame mismatch: got %d bytes, want %d", len(got), len(want))
		}
	}

	// An oversized length prefix must be refused before allocation.
	oversize := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(oversize)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if err := WriteFrame(&buf, make([]byte, MaxFrame+1)); err == nil {
		t.Fatal("oversized body written")
	}

	// A truncated body must error, not block forever or return short.
	trunc := []byte{0, 0, 0, 10, 1, 2, 3}
	if _, err := ReadFrame(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}
