// Package potserve puts a network front-end on the concurrent persistent
// object store (internal/objstore): a length-prefixed binary protocol over
// TCP, a server that multiplexes client connections onto the sharded heap,
// and a client. Requests on one connection are pipelined: a client may send
// any number of frames before reading responses; the server executes them
// in order and answers in order.
//
// Wire format (all integers big-endian):
//
//	frame    := u32 length, then `length` body bytes (length <= MaxFrame)
//	request  := u8 op, op-specific payload
//	  GET  (1): u64 key
//	  PUT  (2): u64 key, u64 val
//	  DEL  (3): u64 key
//	  SCAN (4): u64 from, u32 max        (max <= MaxScan)
//	  TX   (5): u16 n, then n x (u8 kind, u64 key, u64 val); kind 0 = put,
//	            1 = delete (val ignored)
//	  PING (6): empty
//	  SUB  (7): u32 origin, u64 fromSeq   (replication catch-up: send me
//	            origin's applied log entries with seq > fromSeq)
//	  REP  (8): u32 origin, u64 senderEpoch, u16 n, then n x entry
//	            entry := u64 seq, u64 epoch, u8 kind, u64 key, u64 val
//	            (primary -> follower log append; kind as TX)
//	  ACK  (9): u32 origin, u64 seq        (durable-watermark report)
//	  TOPO (10): empty                     (topology refresh request)
//	response := u8 status, status/op-specific payload
//	  StatusOK       (0): GET -> u64 val; PUT -> u8 created; DEL -> empty;
//	                      SCAN -> u32 n, then n x (u64 key, u64 val);
//	                      TX, PING, ACK -> empty;
//	                      SUB -> u16 n, then n x entry (shape as REP);
//	                      REP -> u64 watermark (origin's applied watermark
//	                             after the append — the replication ack);
//	                      TOPO -> u64 epoch, u16 n, then n x (u32 id,
//	                              u8 alive, u16 len, len addr bytes)
//	  StatusNotFound (1): empty (GET of an absent key, DEL of an absent key)
//	  StatusErr      (2): UTF-8 error message
//	  StatusCorrupt  (3): empty (the read tripped a checksum and the object
//	                      could not be repaired from parity; the connection
//	                      stays usable — only that datum is bad)
//	  StatusNotOwner (4): empty (cluster mode: this node does not own the
//	                      requested key at its current topology epoch; the
//	                      client refreshes the topology and re-routes)
//
// Decoding is total: any byte string either decodes or returns an error;
// malformed input (truncated payloads, trailing junk, oversized counts,
// unknown opcodes) must never panic. FuzzDecodeRequest enforces this.
package potserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"potgo/internal/objstore"
	"potgo/internal/pds"
)

// Request opcodes.
const (
	OpGet  byte = 1
	OpPut  byte = 2
	OpDel  byte = 3
	OpScan byte = 4
	OpTx   byte = 5
	OpPing byte = 6
	OpSub  byte = 7  // replication catch-up: stream an origin's log suffix
	OpRep  byte = 8  // replication append: primary -> follower log entries
	OpAck  byte = 9  // durable-watermark report
	OpTopo byte = 10 // topology refresh

	opMax = OpTopo // highest opcode; sizes per-op metric tables
)

// Response status codes.
const (
	StatusOK       byte = 0
	StatusNotFound byte = 1
	StatusErr      byte = 2
	StatusCorrupt  byte = 3
	StatusNotOwner byte = 4
)

// ErrCorrupt is what a client method returns for a StatusCorrupt
// response: the server detected unrepairable media corruption under the
// requested datum. The connection is healthy and the response stream in
// sync; retrying the same request cannot help, so the retry layer never
// does.
var ErrCorrupt = errors.New("potserve: server reported unrepairable corruption")

// ErrNotOwner is what a client method returns for a StatusNotOwner
// response: the contacted node does not own the requested key at its
// current topology epoch. The cluster routing client treats it as a
// signal to refresh the topology and re-route; it is never a data error.
var ErrNotOwner = errors.New("potserve: node does not own key")

// TX entry kinds.
const (
	TxPut byte = 0
	TxDel byte = 1
)

const (
	// MaxFrame bounds a frame body; a length prefix above it is a protocol
	// error, so a corrupt or hostile peer cannot make the server allocate
	// unbounded memory.
	MaxFrame = 1 << 20
	// MaxScan bounds one SCAN response; it keeps the largest legal response
	// frame ((16 bytes per pair) * MaxScan + header) under MaxFrame.
	MaxScan = 60000
	// MaxTxOps bounds one TX batch (17 bytes per op keeps the request frame
	// under MaxFrame).
	MaxTxOps = 60000
	// MaxRepEntries bounds one REP append or SUB response (33 bytes per
	// entry keeps the frame under MaxFrame).
	MaxRepEntries = 30000
	// MaxTopoNodes bounds one TOPO response; with MaxAddr-long addresses the
	// frame stays well under MaxFrame.
	MaxTopoNodes = 1024
	// MaxAddr bounds one node address string in a TOPO response.
	MaxAddr = 256
)

// ErrFrameTooBig reports a length prefix above MaxFrame.
var ErrFrameTooBig = errors.New("potserve: frame exceeds MaxFrame")

// RepEntry is one replicated-log record: an acknowledged write coordinated
// by some origin node. Seq numbers the origin's log from 1 with no gaps;
// Epoch is the topology epoch at which the origin coordinated the write.
type RepEntry struct {
	Seq   uint64
	Epoch uint64
	Key   uint64
	Val   uint64
	Del   bool
}

// TopoNode is one cluster member in a TOPO response.
type TopoNode struct {
	ID    uint32
	Alive bool
	Addr  string
}

// Topology is a TOPO response payload: the epoch-stamped member list a
// routing client rebuilds its hash ring from.
type Topology struct {
	Epoch uint64
	Nodes []TopoNode
}

// Request is one decoded client request. Only the fields of the active Op
// are meaningful.
type Request struct {
	Op      byte
	Key     uint64
	Val     uint64
	From    uint64             // SCAN
	Max     uint32             // SCAN
	Ops     []objstore.BatchOp // TX
	Origin  uint32             // SUB, REP, ACK
	Seq     uint64             // SUB (fromSeq), ACK (watermark)
	Epoch   uint64             // REP (sender's topology epoch)
	Entries []RepEntry         // REP
}

// Response is one decoded server response. Only the fields of the
// originating op are meaningful.
type Response struct {
	Status  byte
	Val     uint64     // GET
	Created bool       // PUT
	KVs     []pds.KV   // SCAN
	Msg     string     // StatusErr
	Seq     uint64     // REP (applied watermark — the replication ack)
	Entries []RepEntry // SUB
	Topo    Topology   // TOPO
}

// ReadFrame reads one length-prefixed frame body from r.
func ReadFrame(r io.Reader) ([]byte, error) { return ReadFrameInto(r, nil) }

// ReadFrameInto reads one length-prefixed frame body from r into buf's
// backing array when it fits, allocating only when the frame outgrows every
// previous one on the connection. The returned slice aliases buf; it is
// valid until the next ReadFrameInto with the same buffer.
//
//potlint:noalloc
func ReadFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	// The length prefix is read through buf as well: a stack [4]byte would
	// escape into the io.ReadFull interface call and cost one heap
	// allocation per frame.
	if cap(buf) < 4 {
		buf = make([]byte, 4, 512) //potlint:allow noalloc first frame on a connection seeds the reusable buffer
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, fmt.Errorf("%w (%d bytes)", ErrFrameTooBig, n)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n) //potlint:allow noalloc amortized regrowth when a frame outgrows every previous one
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("potserve: truncated frame: %w", err)
	}
	return buf, nil
}

// WriteFrame writes body as one length-prefixed frame.
//
//potlint:noalloc
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("%w (%d bytes)", ErrFrameTooBig, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// AppendRequestFrame appends req as one complete frame — length prefix and
// body — to dst. Batching frames into one buffer and writing it with a
// single conn.Write is the vectored alternative to WriteFrame's
// write-header-then-body, and allocates nothing once dst has capacity.
//
//potlint:noalloc
func AppendRequestFrame(dst []byte, req Request) ([]byte, error) {
	hdr := len(dst)
	dst = append(dst, 0, 0, 0, 0) //potlint:allow noalloc amortized growth of the caller-owned batch buffer
	out, err := AppendRequest(dst, req)
	if err != nil {
		return dst[:hdr], err
	}
	n := len(out) - hdr - 4
	if n > MaxFrame {
		return out[:hdr], fmt.Errorf("%w (%d bytes)", ErrFrameTooBig, n)
	}
	binary.BigEndian.PutUint32(out[hdr:], uint32(n))
	return out, nil
}

// AppendResponseFrame is AppendRequestFrame for responses.
//
//potlint:noalloc
func AppendResponseFrame(dst []byte, op byte, resp Response) ([]byte, error) {
	hdr := len(dst)
	dst = append(dst, 0, 0, 0, 0) //potlint:allow noalloc amortized growth of the caller-owned batch buffer
	out, err := AppendResponse(dst, op, resp)
	if err != nil {
		return dst[:hdr], err
	}
	n := len(out) - hdr - 4
	if n > MaxFrame {
		return out[:hdr], fmt.Errorf("%w (%d bytes)", ErrFrameTooBig, n)
	}
	binary.BigEndian.PutUint32(out[hdr:], uint32(n))
	return out, nil
}

// reader consumes big-endian fields from a frame body, tracking one
// malformed-input error instead of panicking.
type reader struct {
	buf []byte
	err error
}

//potlint:noalloc
func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("potserve: malformed frame: %s", what)
	}
}

//potlint:noalloc
func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.fail("truncated u8")
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

//potlint:noalloc
func (r *reader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 2 {
		r.fail("truncated u16")
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v
}

//potlint:noalloc
func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.fail("truncated u32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

//potlint:noalloc
func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

// done errors on trailing bytes, so every request has exactly one encoding.
//
//potlint:noalloc
func (r *reader) done() error {
	if r.err == nil && len(r.buf) != 0 {
		r.fail(fmt.Sprintf("%d trailing bytes", len(r.buf))) //potlint:allow noalloc cold malformed-input path
	}
	return r.err
}

// AppendRequest appends req's wire encoding (frame body only) to dst.
//
//potlint:noalloc
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	dst = append(dst, req.Op) //potlint:allow noalloc amortized growth of the caller-owned buffer
	switch req.Op {
	case OpGet, OpDel:
		dst = binary.BigEndian.AppendUint64(dst, req.Key)
	case OpPut:
		dst = binary.BigEndian.AppendUint64(dst, req.Key)
		dst = binary.BigEndian.AppendUint64(dst, req.Val)
	case OpScan:
		if req.Max > MaxScan {
			return nil, fmt.Errorf("potserve: scan max %d exceeds %d", req.Max, MaxScan)
		}
		dst = binary.BigEndian.AppendUint64(dst, req.From)
		dst = binary.BigEndian.AppendUint32(dst, req.Max)
	case OpTx:
		if len(req.Ops) > MaxTxOps {
			return nil, fmt.Errorf("potserve: tx batch %d exceeds %d ops", len(req.Ops), MaxTxOps)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Ops)))
		for _, op := range req.Ops {
			kind := TxPut
			if op.Del {
				kind = TxDel
			}
			dst = append(dst, kind) //potlint:allow noalloc amortized growth of the caller-owned buffer
			dst = binary.BigEndian.AppendUint64(dst, op.Key)
			dst = binary.BigEndian.AppendUint64(dst, op.Val)
		}
	case OpPing, OpTopo:
	case OpSub:
		dst = binary.BigEndian.AppendUint32(dst, req.Origin)
		dst = binary.BigEndian.AppendUint64(dst, req.Seq)
	case OpRep:
		if len(req.Entries) > MaxRepEntries {
			return nil, fmt.Errorf("potserve: rep batch %d exceeds %d entries", len(req.Entries), MaxRepEntries)
		}
		dst = binary.BigEndian.AppendUint32(dst, req.Origin)
		dst = binary.BigEndian.AppendUint64(dst, req.Epoch)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Entries)))
		dst = appendEntries(dst, req.Entries)
	case OpAck:
		dst = binary.BigEndian.AppendUint32(dst, req.Origin)
		dst = binary.BigEndian.AppendUint64(dst, req.Seq)
	default:
		return nil, fmt.Errorf("potserve: unknown request op %d", req.Op)
	}
	return dst, nil
}

// appendEntries appends the 33-byte wire form of each log entry.
//
//potlint:noalloc
func appendEntries(dst []byte, entries []RepEntry) []byte {
	for _, e := range entries {
		dst = binary.BigEndian.AppendUint64(dst, e.Seq)
		dst = binary.BigEndian.AppendUint64(dst, e.Epoch)
		kind := TxPut
		if e.Del {
			kind = TxDel
		}
		dst = append(dst, kind) //potlint:allow noalloc amortized growth of the caller-owned buffer
		dst = binary.BigEndian.AppendUint64(dst, e.Key)
		dst = binary.BigEndian.AppendUint64(dst, e.Val)
	}
	return dst
}

// decodeEntries decodes n 33-byte log entries into the scratch slice. The
// caller has already verified the remaining payload length.
//
//potlint:noalloc
func decodeEntries(r *reader, scratch []RepEntry, n int) []RepEntry {
	if cap(scratch) < n {
		scratch = make([]RepEntry, 0, n) //potlint:allow noalloc scratch grows once to the largest batch seen
	}
	for i := 0; i < n; i++ {
		seq := r.u64()
		epoch := r.u64()
		kind := r.u8()
		if r.err == nil && kind != TxPut && kind != TxDel {
			r.fail(fmt.Sprintf("rep entry %d: unknown kind %d", i, kind)) //potlint:allow noalloc cold malformed-input path
		}
		//potlint:allow noalloc appends within the capacity checked above
		scratch = append(scratch, RepEntry{
			Seq:   seq,
			Epoch: epoch,
			Key:   r.u64(),
			Val:   r.u64(),
			Del:   kind == TxDel,
		})
	}
	return scratch
}

// DecodeRequest decodes one request frame body. It never panics: malformed
// input returns an error.
func DecodeRequest(body []byte) (Request, error) {
	var req Request
	if err := DecodeRequestInto(body, &req); err != nil {
		return Request{}, err
	}
	// Canonical form: absent TX ops / REP entries are nil slices, not empty
	// ones.
	if len(req.Ops) == 0 {
		req.Ops = nil
	}
	if len(req.Entries) == 0 {
		req.Entries = nil
	}
	return req, nil
}

// DecodeRequestInto is DecodeRequest reusing req's Ops capacity as the TX
// scratch, so a connection loop decoding into the same Request allocates
// nothing once the scratch has grown to the largest batch seen. On return
// req.Ops always carries the scratch (possibly length 0); on error the
// other fields are zeroed.
//
//potlint:noalloc
func DecodeRequestInto(body []byte, req *Request) error {
	ops := req.Ops[:0]
	ents := req.Entries[:0]
	*req = Request{Ops: ops, Entries: ents}
	r := reader{buf: body}
	req.Op = r.u8()
	switch req.Op {
	case OpGet, OpDel:
		req.Key = r.u64()
	case OpPut:
		req.Key = r.u64()
		req.Val = r.u64()
	case OpScan:
		req.From = r.u64()
		req.Max = r.u32()
		if r.err == nil && req.Max > MaxScan {
			r.fail(fmt.Sprintf("scan max %d exceeds %d", req.Max, MaxScan)) //potlint:allow noalloc cold malformed-input path
		}
	case OpTx:
		n := int(r.u16())
		// A TX entry is 17 bytes; reject counts the remaining bytes cannot
		// hold before allocating.
		if r.err == nil && len(r.buf) != n*17 {
			r.fail(fmt.Sprintf("tx count %d does not match %d payload bytes", n, len(r.buf))) //potlint:allow noalloc cold malformed-input path
		}
		if r.err == nil && n > 0 {
			if cap(ops) < n {
				ops = make([]objstore.BatchOp, 0, n) //potlint:allow noalloc scratch grows once to the largest batch seen
			}
			for i := 0; i < n; i++ {
				kind := r.u8()
				if r.err == nil && kind != TxPut && kind != TxDel {
					r.fail(fmt.Sprintf("tx entry %d: unknown kind %d", i, kind)) //potlint:allow noalloc cold malformed-input path
				}
				//potlint:allow noalloc appends within the capacity checked above
				ops = append(ops, objstore.BatchOp{
					Key: r.u64(),
					Val: r.u64(),
					Del: kind == TxDel,
				})
			}
			req.Ops = ops
		}
	case OpPing, OpTopo:
	case OpSub, OpAck:
		req.Origin = r.u32()
		req.Seq = r.u64()
	case OpRep:
		req.Origin = r.u32()
		req.Epoch = r.u64()
		n := int(r.u16())
		// A REP entry is 33 bytes; reject counts the remaining bytes cannot
		// hold before allocating.
		if r.err == nil && (n > MaxRepEntries || len(r.buf) != n*33) {
			r.fail(fmt.Sprintf("rep count %d does not match %d payload bytes", n, len(r.buf))) //potlint:allow noalloc cold malformed-input path
		}
		if r.err == nil && n > 0 {
			req.Entries = decodeEntries(&r, ents, n)
		}
	default:
		r.fail(fmt.Sprintf("unknown request op %d", req.Op)) //potlint:allow noalloc cold malformed-input path
	}
	if err := r.done(); err != nil {
		*req = Request{Ops: ops[:0], Entries: ents[:0]}
		return err
	}
	return nil
}

// AppendResponse appends resp's wire encoding (frame body only) to dst. The
// originating op selects the payload shape, mirroring DecodeResponse.
//
//potlint:noalloc
func AppendResponse(dst []byte, op byte, resp Response) ([]byte, error) {
	dst = append(dst, resp.Status) //potlint:allow noalloc amortized growth of the caller-owned buffer
	if resp.Status == StatusErr {
		return append(dst, resp.Msg...), nil //potlint:allow noalloc error responses are the cold path
	}
	if resp.Status != StatusOK {
		return dst, nil
	}
	switch op {
	case OpGet:
		dst = binary.BigEndian.AppendUint64(dst, resp.Val)
	case OpPut:
		created := byte(0)
		if resp.Created {
			created = 1
		}
		dst = append(dst, created) //potlint:allow noalloc amortized growth of the caller-owned buffer
	case OpScan:
		if len(resp.KVs) > MaxScan {
			return nil, fmt.Errorf("potserve: scan result %d exceeds %d", len(resp.KVs), MaxScan)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.KVs)))
		for _, kv := range resp.KVs {
			dst = binary.BigEndian.AppendUint64(dst, kv.Key)
			dst = binary.BigEndian.AppendUint64(dst, kv.Val)
		}
	case OpDel, OpTx, OpPing, OpAck:
	case OpSub:
		if len(resp.Entries) > MaxRepEntries {
			return nil, fmt.Errorf("potserve: sub result %d exceeds %d entries", len(resp.Entries), MaxRepEntries)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(resp.Entries)))
		dst = appendEntries(dst, resp.Entries)
	case OpRep:
		dst = binary.BigEndian.AppendUint64(dst, resp.Seq)
	case OpTopo:
		if len(resp.Topo.Nodes) > MaxTopoNodes {
			return nil, fmt.Errorf("potserve: topology %d exceeds %d nodes", len(resp.Topo.Nodes), MaxTopoNodes)
		}
		dst = binary.BigEndian.AppendUint64(dst, resp.Topo.Epoch)
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(resp.Topo.Nodes)))
		for _, tn := range resp.Topo.Nodes {
			if len(tn.Addr) > MaxAddr {
				return nil, fmt.Errorf("potserve: node %d address exceeds %d bytes", tn.ID, MaxAddr)
			}
			dst = binary.BigEndian.AppendUint32(dst, tn.ID)
			alive := byte(0)
			if tn.Alive {
				alive = 1
			}
			dst = append(dst, alive) //potlint:allow noalloc topology responses are the cold control path
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(tn.Addr)))
			dst = append(dst, tn.Addr...) //potlint:allow noalloc topology responses are the cold control path
		}
	default:
		return nil, fmt.Errorf("potserve: unknown response op %d", op)
	}
	return dst, nil
}

// DecodeResponse decodes one response frame body for a request of the given
// op. It never panics on malformed input.
func DecodeResponse(op byte, body []byte) (Response, error) {
	var resp Response
	if err := DecodeResponseInto(op, body, &resp); err != nil {
		return Response{}, err
	}
	// Canonical form: absent scan results / log entries are nil slices.
	if len(resp.KVs) == 0 {
		resp.KVs = nil
	}
	if len(resp.Entries) == 0 {
		resp.Entries = nil
	}
	if len(resp.Topo.Nodes) == 0 {
		resp.Topo.Nodes = nil
	}
	return resp, nil
}

// DecodeResponseInto is DecodeResponse reusing resp's KVs capacity as the
// scan scratch. On return resp.KVs always carries the scratch (possibly
// length 0); the decoded pairs are invalidated by the next call with the
// same Response.
//
//potlint:noalloc
func DecodeResponseInto(op byte, body []byte, resp *Response) error {
	kvs := resp.KVs[:0]
	ents := resp.Entries[:0]
	*resp = Response{KVs: kvs, Entries: ents}
	r := reader{buf: body}
	resp.Status = r.u8()
	switch {
	case r.err != nil:
	case resp.Status == StatusErr:
		resp.Msg = string(r.buf) //potlint:allow noalloc error responses materialize their message on the cold path
		r.buf = nil
	case resp.Status == StatusNotFound, resp.Status == StatusCorrupt, resp.Status == StatusNotOwner:
	case resp.Status != StatusOK:
		r.fail(fmt.Sprintf("unknown status %d", resp.Status)) //potlint:allow noalloc cold malformed-input path
	default:
		switch op {
		case OpGet:
			resp.Val = r.u64()
		case OpPut:
			created := r.u8()
			if r.err == nil && created > 1 {
				r.fail(fmt.Sprintf("created byte %d not 0 or 1", created)) //potlint:allow noalloc cold malformed-input path
			}
			resp.Created = created == 1
		case OpScan:
			n := int(r.u32())
			if r.err == nil && (n > MaxScan || len(r.buf) != n*16) {
				r.fail(fmt.Sprintf("scan count %d does not match %d payload bytes", n, len(r.buf))) //potlint:allow noalloc cold malformed-input path
			}
			if r.err == nil && n > 0 {
				if cap(kvs) < n {
					kvs = make([]pds.KV, 0, n) //potlint:allow noalloc scratch grows once to the largest scan seen
				}
				for i := 0; i < n; i++ {
					kvs = append(kvs, pds.KV{Key: r.u64(), Val: r.u64()}) //potlint:allow noalloc appends within the capacity checked above
				}
				resp.KVs = kvs
			}
		case OpDel, OpTx, OpPing, OpAck:
		case OpSub:
			n := int(r.u16())
			if r.err == nil && (n > MaxRepEntries || len(r.buf) != n*33) {
				r.fail(fmt.Sprintf("sub count %d does not match %d payload bytes", n, len(r.buf))) //potlint:allow noalloc cold malformed-input path
			}
			if r.err == nil && n > 0 {
				resp.Entries = decodeEntries(&r, ents, n)
			}
		case OpRep:
			resp.Seq = r.u64()
		case OpTopo:
			resp.Topo.Epoch = r.u64()
			n := int(r.u16())
			if r.err == nil && n > MaxTopoNodes {
				r.fail(fmt.Sprintf("topology count %d exceeds %d", n, MaxTopoNodes)) //potlint:allow noalloc cold malformed-input path
			}
			if r.err == nil && n > 0 {
				nodes := make([]TopoNode, 0, n) //potlint:allow noalloc topology responses are the cold control path
				for i := 0; i < n; i++ {
					id := r.u32()
					alive := r.u8()
					if r.err == nil && alive > 1 {
						r.fail(fmt.Sprintf("topology node %d: alive byte %d not 0 or 1", i, alive)) //potlint:allow noalloc cold malformed-input path
					}
					alen := int(r.u16())
					if r.err == nil && (alen > MaxAddr || len(r.buf) < alen) {
						r.fail(fmt.Sprintf("topology node %d: bad address length %d", i, alen)) //potlint:allow noalloc cold malformed-input path
					}
					if r.err != nil {
						break
					}
					addr := string(r.buf[:alen]) //potlint:allow noalloc topology responses are the cold control path
					r.buf = r.buf[alen:]
					nodes = append(nodes, TopoNode{ID: id, Alive: alive == 1, Addr: addr}) //potlint:allow noalloc topology responses are the cold control path
				}
				if r.err == nil {
					resp.Topo.Nodes = nodes
				}
			}
		default:
			r.fail(fmt.Sprintf("unknown response op %d", op)) //potlint:allow noalloc cold malformed-input path
		}
	}
	if err := r.done(); err != nil {
		*resp = Response{KVs: kvs[:0], Entries: ents[:0]}
		return err
	}
	return nil
}
