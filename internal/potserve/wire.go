// Package potserve puts a network front-end on the concurrent persistent
// object store (internal/objstore): a length-prefixed binary protocol over
// TCP, a server that multiplexes client connections onto the sharded heap,
// and a client. Requests on one connection are pipelined: a client may send
// any number of frames before reading responses; the server executes them
// in order and answers in order.
//
// Wire format (all integers big-endian):
//
//	frame    := u32 length, then `length` body bytes (length <= MaxFrame)
//	request  := u8 op, op-specific payload
//	  GET  (1): u64 key
//	  PUT  (2): u64 key, u64 val
//	  DEL  (3): u64 key
//	  SCAN (4): u64 from, u32 max        (max <= MaxScan)
//	  TX   (5): u16 n, then n x (u8 kind, u64 key, u64 val); kind 0 = put,
//	            1 = delete (val ignored)
//	  PING (6): empty
//	response := u8 status, status/op-specific payload
//	  StatusOK       (0): GET -> u64 val; PUT -> u8 created; DEL -> empty;
//	                      SCAN -> u32 n, then n x (u64 key, u64 val);
//	                      TX, PING -> empty
//	  StatusNotFound (1): empty (GET of an absent key, DEL of an absent key)
//	  StatusErr      (2): UTF-8 error message
//
// Decoding is total: any byte string either decodes or returns an error;
// malformed input (truncated payloads, trailing junk, oversized counts,
// unknown opcodes) must never panic. FuzzDecodeRequest enforces this.
package potserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"potgo/internal/objstore"
	"potgo/internal/pds"
)

// Request opcodes.
const (
	OpGet  byte = 1
	OpPut  byte = 2
	OpDel  byte = 3
	OpScan byte = 4
	OpTx   byte = 5
	OpPing byte = 6
)

// Response status codes.
const (
	StatusOK       byte = 0
	StatusNotFound byte = 1
	StatusErr      byte = 2
)

// TX entry kinds.
const (
	TxPut byte = 0
	TxDel byte = 1
)

const (
	// MaxFrame bounds a frame body; a length prefix above it is a protocol
	// error, so a corrupt or hostile peer cannot make the server allocate
	// unbounded memory.
	MaxFrame = 1 << 20
	// MaxScan bounds one SCAN response; it keeps the largest legal response
	// frame ((16 bytes per pair) * MaxScan + header) under MaxFrame.
	MaxScan = 60000
	// MaxTxOps bounds one TX batch (17 bytes per op keeps the request frame
	// under MaxFrame).
	MaxTxOps = 60000
)

// ErrFrameTooBig reports a length prefix above MaxFrame.
var ErrFrameTooBig = errors.New("potserve: frame exceeds MaxFrame")

// Request is one decoded client request. Only the fields of the active Op
// are meaningful.
type Request struct {
	Op   byte
	Key  uint64
	Val  uint64
	From uint64             // SCAN
	Max  uint32             // SCAN
	Ops  []objstore.BatchOp // TX
}

// Response is one decoded server response. Only the fields of the
// originating op are meaningful.
type Response struct {
	Status  byte
	Val     uint64   // GET
	Created bool     // PUT
	KVs     []pds.KV // SCAN
	Msg     string   // StatusErr
}

// ReadFrame reads one length-prefixed frame body from r.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w (%d bytes)", ErrFrameTooBig, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, fmt.Errorf("potserve: truncated frame: %w", err)
	}
	return body, nil
}

// WriteFrame writes body as one length-prefixed frame.
func WriteFrame(w io.Writer, body []byte) error {
	if len(body) > MaxFrame {
		return fmt.Errorf("%w (%d bytes)", ErrFrameTooBig, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

// reader consumes big-endian fields from a frame body, tracking one
// malformed-input error instead of panicking.
type reader struct {
	buf []byte
	err error
}

func (r *reader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("potserve: malformed frame: %s", what)
	}
}

func (r *reader) u8() byte {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 1 {
		r.fail("truncated u8")
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

func (r *reader) u16() uint16 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 2 {
		r.fail("truncated u16")
		return 0
	}
	v := binary.BigEndian.Uint16(r.buf)
	r.buf = r.buf[2:]
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 4 {
		r.fail("truncated u32")
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.buf) < 8 {
		r.fail("truncated u64")
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

// done errors on trailing bytes, so every request has exactly one encoding.
func (r *reader) done() error {
	if r.err == nil && len(r.buf) != 0 {
		r.fail(fmt.Sprintf("%d trailing bytes", len(r.buf)))
	}
	return r.err
}

// AppendRequest appends req's wire encoding (frame body only) to dst.
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	dst = append(dst, req.Op)
	switch req.Op {
	case OpGet, OpDel:
		dst = binary.BigEndian.AppendUint64(dst, req.Key)
	case OpPut:
		dst = binary.BigEndian.AppendUint64(dst, req.Key)
		dst = binary.BigEndian.AppendUint64(dst, req.Val)
	case OpScan:
		if req.Max > MaxScan {
			return nil, fmt.Errorf("potserve: scan max %d exceeds %d", req.Max, MaxScan)
		}
		dst = binary.BigEndian.AppendUint64(dst, req.From)
		dst = binary.BigEndian.AppendUint32(dst, req.Max)
	case OpTx:
		if len(req.Ops) > MaxTxOps {
			return nil, fmt.Errorf("potserve: tx batch %d exceeds %d ops", len(req.Ops), MaxTxOps)
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(req.Ops)))
		for _, op := range req.Ops {
			kind := TxPut
			if op.Del {
				kind = TxDel
			}
			dst = append(dst, kind)
			dst = binary.BigEndian.AppendUint64(dst, op.Key)
			dst = binary.BigEndian.AppendUint64(dst, op.Val)
		}
	case OpPing:
	default:
		return nil, fmt.Errorf("potserve: unknown request op %d", req.Op)
	}
	return dst, nil
}

// DecodeRequest decodes one request frame body. It never panics: malformed
// input returns an error.
func DecodeRequest(body []byte) (Request, error) {
	r := &reader{buf: body}
	req := Request{Op: r.u8()}
	switch req.Op {
	case OpGet, OpDel:
		req.Key = r.u64()
	case OpPut:
		req.Key = r.u64()
		req.Val = r.u64()
	case OpScan:
		req.From = r.u64()
		req.Max = r.u32()
		if r.err == nil && req.Max > MaxScan {
			r.fail(fmt.Sprintf("scan max %d exceeds %d", req.Max, MaxScan))
		}
	case OpTx:
		n := int(r.u16())
		// A TX entry is 17 bytes; reject counts the remaining bytes cannot
		// hold before allocating.
		if r.err == nil && len(r.buf) != n*17 {
			r.fail(fmt.Sprintf("tx count %d does not match %d payload bytes", n, len(r.buf)))
		}
		if r.err == nil && n > 0 {
			req.Ops = make([]objstore.BatchOp, 0, n)
			for i := 0; i < n; i++ {
				kind := r.u8()
				if r.err == nil && kind != TxPut && kind != TxDel {
					r.fail(fmt.Sprintf("tx entry %d: unknown kind %d", i, kind))
				}
				req.Ops = append(req.Ops, objstore.BatchOp{
					Key: r.u64(),
					Val: r.u64(),
					Del: kind == TxDel,
				})
			}
		}
	case OpPing:
	default:
		r.fail(fmt.Sprintf("unknown request op %d", req.Op))
	}
	if err := r.done(); err != nil {
		return Request{}, err
	}
	return req, nil
}

// AppendResponse appends resp's wire encoding (frame body only) to dst. The
// originating op selects the payload shape, mirroring DecodeResponse.
func AppendResponse(dst []byte, op byte, resp Response) ([]byte, error) {
	dst = append(dst, resp.Status)
	if resp.Status == StatusErr {
		return append(dst, resp.Msg...), nil
	}
	if resp.Status != StatusOK {
		return dst, nil
	}
	switch op {
	case OpGet:
		dst = binary.BigEndian.AppendUint64(dst, resp.Val)
	case OpPut:
		created := byte(0)
		if resp.Created {
			created = 1
		}
		dst = append(dst, created)
	case OpScan:
		if len(resp.KVs) > MaxScan {
			return nil, fmt.Errorf("potserve: scan result %d exceeds %d", len(resp.KVs), MaxScan)
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(resp.KVs)))
		for _, kv := range resp.KVs {
			dst = binary.BigEndian.AppendUint64(dst, kv.Key)
			dst = binary.BigEndian.AppendUint64(dst, kv.Val)
		}
	case OpDel, OpTx, OpPing:
	default:
		return nil, fmt.Errorf("potserve: unknown response op %d", op)
	}
	return dst, nil
}

// DecodeResponse decodes one response frame body for a request of the given
// op. It never panics on malformed input.
func DecodeResponse(op byte, body []byte) (Response, error) {
	r := &reader{buf: body}
	resp := Response{Status: r.u8()}
	switch {
	case r.err != nil:
	case resp.Status == StatusErr:
		resp.Msg = string(r.buf)
		r.buf = nil
	case resp.Status == StatusNotFound:
	case resp.Status != StatusOK:
		r.fail(fmt.Sprintf("unknown status %d", resp.Status))
	default:
		switch op {
		case OpGet:
			resp.Val = r.u64()
		case OpPut:
			resp.Created = r.u8() != 0
		case OpScan:
			n := int(r.u32())
			if r.err == nil && (n > MaxScan || len(r.buf) != n*16) {
				r.fail(fmt.Sprintf("scan count %d does not match %d payload bytes", n, len(r.buf)))
			}
			if r.err == nil && n > 0 {
				resp.KVs = make([]pds.KV, 0, n)
				for i := 0; i < n; i++ {
					resp.KVs = append(resp.KVs, pds.KV{Key: r.u64(), Val: r.u64()})
				}
			}
		case OpDel, OpTx, OpPing:
		default:
			r.fail(fmt.Sprintf("unknown response op %d", op))
		}
	}
	if err := r.done(); err != nil {
		return Response{}, err
	}
	return resp, nil
}
