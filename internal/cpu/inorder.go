package cpu

import (
	"potgo/internal/isa"
	"potgo/internal/trace"
)

// RunInOrder executes a trace on the five-stage in-order pipeline of paper
// §4.5 (IF ID EX MEM WB) and returns the timing result.
//
// Model summary:
//
//   - Single issue, one instruction per cycle when nothing stalls.
//   - Stall-on-use scoreboarding: an instruction stalls in decode until its
//     source registers are ready, so load-delay slots can be covered by
//     independent instructions.
//   - Cache hits are pipelined (the MEM stage accepts one access per
//     cycle); everything beyond an L1 hit — a TLB miss, an L2/L3/memory
//     access, or a POT walk — blocks the pipeline, as in-order cores with
//     blocking caches do.
//   - The Pipelined POLB adds its 3-cycle CAM latency to load-to-use
//     latency (the CAM itself is pipelined); the Parallel POLB overlaps the
//     L1 access and adds nothing on hits.
//   - Stores and CLWBs retire into a store buffer and do not stall the
//     pipeline (beyond any translation-walk or TLB stall needed to compute
//     their address); SFENCE drains the buffer.
//   - Conditional branches consult a bimodal predictor; a misprediction
//     costs the fixed redirect penalty (8 cycles).
func RunInOrder(cfg Config, m *Machine, src trace.Source) (Result, error) {
	var (
		res       Result
		pred      = newPredictor(cfg.PredictorEntries)
		regReady  [isa.NumRegs]uint64
		cycle     uint64 // next issue slot
		storeDone uint64 // completion of last buffered store/CLWB
		l1Lat     = m.Hier.Config().L1Latency
	)

	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		res.Instructions++
		res.Mix.Record(in)

		start := cycle
		if t := regReady[in.Src1]; t > start {
			start = t
		}
		if t := regReady[in.Src2]; t > start {
			start = t
		}
		cycle = start + 1

		switch in.Op {
		case isa.Nop:
			// Just the issue slot.

		case isa.ALU, isa.Mul, isa.Div:
			if in.Dst != isa.RZ {
				regReady[in.Dst] = start + in.Op.ExecLatency()
			}
			// Long-latency units block a simple in-order pipe.
			if lat := in.Op.ExecLatency(); lat > 1 {
				cycle = start + lat
			}

		case isa.Jump:
			// Direct jumps/calls are BTB hits: no penalty.

		case isa.Branch:
			if pred.predict(in.PC, in.Taken) {
				cycle = start + 1 + cfg.MispredictPenalty
				res.BranchStallCycles += cfg.MispredictPenalty
			}

		case isa.Load, isa.NVLoad:
			acc, err := m.resolve(in)
			if err != nil {
				return res, err
			}
			// Blocking portion: POT walk, TLB miss, sub-L1 misses.
			block := acc.walkLat + acc.tlbLat
			if acc.cacheLat > l1Lat {
				block += acc.cacheLat - l1Lat
			}
			if block > 0 {
				cycle = start + 1 + block
			}
			if in.Dst != isa.RZ {
				regReady[in.Dst] = start + acc.total()
			}
			res.MemStallCycles += block
			res.TransStallCycles += acc.transLat()

		case isa.Store, isa.NVStore:
			acc, err := m.resolve(in)
			if err != nil {
				return res, err
			}
			// Address generation must complete before the store can
			// enter the buffer; the write itself is buffered.
			block := acc.walkLat + acc.tlbLat
			if block > 0 {
				cycle = start + 1 + block
			}
			done := start + acc.total()
			if done > storeDone {
				storeDone = done
			}
			res.MemStallCycles += block
			res.TransStallCycles += acc.transLat()

		case isa.CLWB:
			acc, err := m.resolve(in)
			if err != nil {
				return res, err
			}
			done := start + acc.cacheLat
			if done > storeDone {
				storeDone = done
			}

		case isa.SFence:
			if storeDone > cycle {
				res.MemStallCycles += storeDone - cycle
				cycle = storeDone
			}
		}

		if m.Tracer != nil {
			done := cycle
			if in.Dst != isa.RZ && regReady[in.Dst] > done {
				done = regReady[in.Dst]
			}
			m.Tracer.InOrder(in.Op.String(), start, done)
		}
	}

	res.Cycles = cycle
	res.BranchLookups = pred.lookups
	res.Mispredicts = pred.mispredicts
	res.finish(m)
	return res, nil
}
