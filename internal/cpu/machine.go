package cpu

import (
	"fmt"

	"potgo/internal/core"
	"potgo/internal/isa"
	"potgo/internal/mem"
	"potgo/internal/obs"
	"potgo/internal/oid"
)

// Machine bundles the per-core memory system handed to a timing model: the
// cache/TLB hierarchy and (for OPT configurations) the ObjectID translation
// hardware. Translator may be nil for BASE runs, in which case encountering
// an nvld/nvst in the trace is an error. Tracer, when non-nil, receives
// sampled per-instruction pipeline timestamps (the only per-instruction
// cost when tracing is off is the nil check).
type Machine struct {
	Hier       *mem.Hierarchy
	Translator *core.Translator
	Tracer     *obs.PipelineTracer
}

// access is the decomposed cost of one memory instruction.
type access struct {
	// camLat is the POLB CAM access (Pipelined nv ops only). The CAM is
	// pipelined: it lengthens load-to-use latency but does not block the
	// in-order MEM stage.
	camLat uint64
	// walkLat is the POT-walk stall on a POLB miss; it blocks address
	// generation.
	walkLat uint64
	// tlbLat is the D-TLB miss penalty (zero on hits and on Parallel
	// POLB hits, which bypass the TLB).
	tlbLat uint64
	// cacheLat is the hierarchy load-to-use latency.
	cacheLat uint64
	// va is the post-translation virtual address used for memory
	// disambiguation in the LSQ. For Pipelined nv ops this is exactly
	// the paper's point: the LSQ only ever sees virtual addresses.
	va uint64
}

func (a access) total() uint64 { return a.camLat + a.walkLat + a.tlbLat + a.cacheLat }

// transLat is the hardware-translation portion of the cost.
func (a access) transLat() uint64 { return a.camLat + a.walkLat }

// resolve charges one memory instruction against the hierarchy and
// translation hardware and returns its cost decomposition.
func (m *Machine) resolve(in isa.Instr) (access, error) {
	switch in.Op {
	case isa.Load, isa.Store:
		tlbLat := m.Hier.DataTLB(in.Addr)
		pa, ok := m.Hier.Translate(in.Addr)
		if !ok {
			return access{}, fmt.Errorf("cpu: %v: unmapped address %#x", in.Op, in.Addr)
		}
		return access{tlbLat: tlbLat, cacheLat: m.Hier.CacheAccess(pa), va: in.Addr}, nil

	case isa.NVLoad, isa.NVStore:
		if m.Translator == nil {
			return access{}, fmt.Errorf("cpu: %v in trace but no translation hardware configured", in.Op)
		}
		res, err := m.Translator.Translate(oid.OID(in.Addr))
		if err != nil {
			return access{}, err
		}
		if res.BypassTLB {
			// Parallel design: physical address straight from the
			// POLB; the L1 look-up overlapped with the POLB CAM
			// access, so only the walk penalty (on misses) adds.
			// Following the paper's evaluation infrastructure
			// (Sniper charges its D-TLB on every memory operation
			// regardless of how the address was produced), the TLB
			// penalty is charged here too; the architectural
			// bypass-the-TLB argument of §4.1.2 concerns the hit
			// *path*, not the miss accounting.
			tlbLat := m.Hier.DataTLB(res.VA)
			return access{camLat: res.CAMLat, walkLat: res.WalkLat, tlbLat: tlbLat, cacheLat: m.Hier.CacheAccess(res.PA), va: res.VA}, nil
		}
		// Pipelined design: virtual address out of the POLB, then the
		// ordinary TLB + cache path.
		tlbLat := m.Hier.DataTLB(res.VA)
		pa, ok := m.Hier.Translate(res.VA)
		if !ok {
			return access{}, fmt.Errorf("cpu: %v: pool page unmapped at %#x", in.Op, res.VA)
		}
		return access{camLat: res.CAMLat, walkLat: res.WalkLat, tlbLat: tlbLat, cacheLat: m.Hier.CacheAccess(pa), va: res.VA}, nil

	case isa.CLWB:
		lat, err := m.Hier.CLWB(in.Addr)
		if err != nil {
			return access{}, err
		}
		return access{cacheLat: lat, va: in.Addr}, nil

	default:
		return access{}, fmt.Errorf("cpu: resolve called on non-memory op %v", in.Op)
	}
}
