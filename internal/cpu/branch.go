package cpu

// predictor is a bimodal (2-bit saturating counter) branch direction
// predictor. The paper's machine uses a Pentium M predictor; a bimodal table
// of a few thousand entries is the standard stand-in at this fidelity and
// yields comparable accuracy on the loop-heavy code the workloads run.
type predictor struct {
	counters []uint8
	mask     uint64
	// Lookups and Mispredicts count predictions.
	lookups, mispredicts uint64
}

func newPredictor(entries int) *predictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("cpu: predictor entries must be a positive power of two")
	}
	c := make([]uint8, entries)
	for i := range c {
		c[i] = 1 // weakly not-taken
	}
	return &predictor{counters: c, mask: uint64(entries - 1)}
}

// predict consumes one resolved branch: it predicts from the current table
// state, updates the counter with the actual outcome, and reports whether
// the prediction was wrong.
func (p *predictor) predict(pc uint64, taken bool) (mispredicted bool) {
	p.lookups++
	idx := (pc >> 2) & p.mask
	ctr := p.counters[idx]
	predictedTaken := ctr >= 2
	if taken && ctr < 3 {
		p.counters[idx] = ctr + 1
	} else if !taken && ctr > 0 {
		p.counters[idx] = ctr - 1
	}
	if predictedTaken != taken {
		p.mispredicts++
		return true
	}
	return false
}
