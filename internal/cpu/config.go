// Package cpu implements the two timing models of the paper's evaluation: a
// classic five-stage in-order pipeline (paper §4.5) and an out-of-order
// superscalar modelled in the style of Sniper's instruction-window-centric
// ROB core model (paper §4.4, §5.1), both consuming dynamic instruction
// traces and charging memory latencies through internal/mem and ObjectID
// translations through internal/core.
package cpu

// Config fixes the core microarchitecture. DefaultConfig matches the paper's
// Table 4 out-of-order machine (Nehalem-class); the in-order model uses the
// same frequency and memory system and ignores the window parameters.
type Config struct {
	// FetchWidth, IssueWidth and CommitWidth are per-cycle instruction
	// limits (Table 4: issue width 4).
	FetchWidth, IssueWidth, CommitWidth int
	// ROB, LQ and SQ are window sizes (Table 4: 128 / 48 / 32).
	ROB, LQ, SQ int
	// FrontendDepth is the fetch-to-dispatch depth in cycles.
	FrontendDepth uint64
	// MispredictPenalty is the branch misprediction redirect cost
	// (Table 4: 8 cycles).
	MispredictPenalty uint64
	// PredictorEntries sizes the bimodal branch predictor.
	PredictorEntries int
}

// DefaultConfig returns the paper's Table 4 core.
func DefaultConfig() Config {
	return Config{
		FetchWidth:        4,
		IssueWidth:        4,
		CommitWidth:       4,
		ROB:               128,
		LQ:                48,
		SQ:                32,
		FrontendDepth:     6,
		MispredictPenalty: 8,
		PredictorEntries:  4096,
	}
}
