package cpu

import (
	"testing"

	"potgo/internal/core"
	"potgo/internal/isa"
	"potgo/internal/mem"
	"potgo/internal/oid"
	"potgo/internal/polb"
	"potgo/internal/pot"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// fixture builds a machine with one mapped data region and (optionally) one
// persistent pool behind translation hardware.
type fixture struct {
	as     *vm.AddressSpace
	m      *Machine
	data   vm.Region // regular data
	pool   vm.Region // pool 7's mapping
	poolID oid.PoolID
}

func newFixture(t *testing.T, trCfg *core.Config) *fixture {
	t.Helper()
	as := vm.NewAddressSpace(99)
	data, err := as.Map(16 * vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{as: as, data: data, poolID: 7}
	h := mem.New(mem.DefaultConfig(), as)
	f.m = &Machine{Hier: h}
	if trCfg != nil {
		table, err := pot.New(as, 256)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := as.Map(16 * vm.PageSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := table.Insert(f.poolID, pool.Base); err != nil {
			t.Fatal(err)
		}
		f.pool = pool
		f.m.Translator = core.New(*trCfg, table, as)
	}
	return f
}

func run(t *testing.T, model string, f *fixture, instrs []isa.Instr) Result {
	t.Helper()
	src := &trace.BufferSource{Instrs: instrs}
	var res Result
	var err error
	if model == "inorder" {
		res, err = RunInOrder(DefaultConfig(), f.m, src)
	} else {
		res, err = RunOutOfOrder(DefaultConfig(), f.m, src)
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func aluChain(n int) []isa.Instr {
	ins := make([]isa.Instr, n)
	for i := range ins {
		ins[i] = isa.Instr{Op: isa.ALU, Dst: 1, Src1: 1, PC: uint64(i * 4)}
	}
	return ins
}

func aluIndep(n int) []isa.Instr {
	ins := make([]isa.Instr, n)
	for i := range ins {
		ins[i] = isa.Instr{Op: isa.ALU, Dst: isa.Reg(1 + i%32), PC: uint64(i * 4)}
	}
	return ins
}

func TestInOrderALUThroughput(t *testing.T) {
	f := newFixture(t, nil)
	res := run(t, "inorder", f, aluChain(1000))
	if cpi := res.CPI(); cpi < 0.99 || cpi > 1.1 {
		t.Errorf("in-order dependent ALU CPI = %v, want ~1", cpi)
	}
}

func TestOoOIndependentALUWidth(t *testing.T) {
	f := newFixture(t, nil)
	res := run(t, "ooo", f, aluIndep(4000))
	if ipc := res.IPC(); ipc < 3.0 {
		t.Errorf("OoO independent ALU IPC = %v, want near width 4", ipc)
	}
}

func TestOoODependentChainSerializes(t *testing.T) {
	f := newFixture(t, nil)
	res := run(t, "ooo", f, aluChain(4000))
	if ipc := res.IPC(); ipc > 1.05 {
		t.Errorf("OoO dependent-chain IPC = %v, want <= ~1", ipc)
	}
}

func TestInOrderLoadUseStall(t *testing.T) {
	f := newFixture(t, nil)
	// Warm the line and TLB.
	warm := []isa.Instr{{Op: isa.Load, Dst: 1, Addr: f.data.Base, Size: 8}}
	run(t, "inorder", f, warm)

	// A load followed by a dependent ALU pays load-to-use latency (3);
	// with an independent ALU between, part of it is hidden.
	dep := []isa.Instr{
		{Op: isa.Load, Dst: 1, Addr: f.data.Base, Size: 8},
		{Op: isa.ALU, Dst: 2, Src1: 1},
	}
	indep := []isa.Instr{
		{Op: isa.Load, Dst: 1, Addr: f.data.Base, Size: 8},
		{Op: isa.ALU, Dst: 3, Src1: 4},
		{Op: isa.ALU, Dst: 2, Src1: 1},
	}
	rDep := run(t, "inorder", f, dep)
	rIndep := run(t, "inorder", f, indep)
	// dep: load at 0 (ready 3), ALU starts at 3, ends cycle 4.
	if rDep.Cycles != 4 {
		t.Errorf("dependent load-use cycles = %d, want 4", rDep.Cycles)
	}
	// indep: the filler ALU covers one delay cycle; total still 4.
	if rIndep.Cycles != 4 {
		t.Errorf("independent-filled cycles = %d, want 4", rIndep.Cycles)
	}
}

func TestInOrderCacheMissBlocks(t *testing.T) {
	f := newFixture(t, nil)
	cold := run(t, "inorder", f, []isa.Instr{{Op: isa.Load, Dst: 1, Addr: f.data.Base, Size: 8}})
	// Cold: TLB miss (30) + memory (120) block the pipe.
	if cold.Cycles < 140 {
		t.Errorf("cold load cycles = %d, want >= 140", cold.Cycles)
	}
	warm := run(t, "inorder", f, []isa.Instr{{Op: isa.Load, Dst: 1, Addr: f.data.Base, Size: 8}})
	if warm.Cycles > 2 {
		t.Errorf("warm L1-hit load must not block: cycles = %d", warm.Cycles)
	}
	if cold.MemStallCycles == 0 {
		t.Error("cold run must account memory stalls")
	}
}

func TestInOrderBranchMispredictPenalty(t *testing.T) {
	f := newFixture(t, nil)
	// Alternating taken/not-taken at one PC defeats a bimodal predictor
	// about half the time; a always-taken branch converges to ~0 misses.
	alternating := make([]isa.Instr, 2000)
	for i := range alternating {
		alternating[i] = isa.Instr{Op: isa.Branch, PC: 0x100, Taken: i%2 == 0}
	}
	steady := make([]isa.Instr, 2000)
	for i := range steady {
		steady[i] = isa.Instr{Op: isa.Branch, PC: 0x100, Taken: true}
	}
	rAlt := run(t, "inorder", f, alternating)
	rSteady := run(t, "inorder", f, steady)
	if rAlt.Cycles <= rSteady.Cycles+1000 {
		t.Errorf("alternating branches must pay mispredicts: %d vs %d", rAlt.Cycles, rSteady.Cycles)
	}
	if rSteady.MispredictRate() > 0.01 {
		t.Errorf("steady branch mispredict rate = %v", rSteady.MispredictRate())
	}
	if rAlt.Mispredicts == 0 || rAlt.BranchLookups != 2000 {
		t.Errorf("predictor stats: %d/%d", rAlt.Mispredicts, rAlt.BranchLookups)
	}
}

func TestInOrderSFenceDrainsCLWB(t *testing.T) {
	f := newFixture(t, nil)
	// Warm TLB/L1.
	run(t, "inorder", f, []isa.Instr{{Op: isa.Load, Dst: 1, Addr: f.data.Base, Size: 8}})
	r := run(t, "inorder", f, []isa.Instr{
		{Op: isa.CLWB, Addr: f.data.Base, Size: 64},
		{Op: isa.SFence},
	})
	// CLWB issues at 0, completes at 100; SFENCE waits.
	if r.Cycles < 100 {
		t.Errorf("SFENCE must wait for CLWB: cycles = %d", r.Cycles)
	}
	if r.Mem.CLWBs != 1 {
		t.Errorf("CLWB count = %d", r.Mem.CLWBs)
	}
}

func TestInOrderMulDivLatency(t *testing.T) {
	f := newFixture(t, nil)
	r := run(t, "inorder", f, []isa.Instr{
		{Op: isa.Div, Dst: 1, Src1: 2},
		{Op: isa.ALU, Dst: 3, Src1: 1},
	})
	if r.Cycles < 20 {
		t.Errorf("div must take its 20-cycle latency: %d", r.Cycles)
	}
}

func nvldTrace(f *fixture, off uint32, n int) []isa.Instr {
	ins := make([]isa.Instr, 0, n)
	for i := 0; i < n; i++ {
		ins = append(ins, isa.Instr{Op: isa.NVLoad, Dst: 1, Addr: uint64(oid.New(f.poolID, off)), Size: 8})
	}
	return ins
}

func TestPipelinedNVLoadLatency(t *testing.T) {
	cfg := core.DefaultConfig(polb.Pipelined)
	f := newFixture(t, &cfg)
	// Warm everything: POLB, TLB, L1. Then reset counters so only the
	// measured run is visible in the stats.
	run(t, "inorder", f, nvldTrace(f, 0, 4))
	f.m.Translator.ResetStats()

	// Warm nvld with a dependent use: POLB (3) + L1 (3) = ready at 6.
	r := run(t, "inorder", f, []isa.Instr{
		{Op: isa.NVLoad, Dst: 1, Addr: uint64(oid.New(f.poolID, 0)), Size: 8},
		{Op: isa.ALU, Dst: 2, Src1: 1},
	})
	if r.Cycles != 7 {
		t.Errorf("Pipelined warm nvld-use = %d cycles, want 7 (start+3+3 then +1)", r.Cycles)
	}
	if r.TransStallCycles != 3 {
		t.Errorf("translation cycles = %d, want 3 (CAM only)", r.TransStallCycles)
	}
	if r.POLB.MissRate() != 0 {
		t.Errorf("warm POLB miss rate = %v", r.POLB.MissRate())
	}
}

func TestParallelNVLoadNoAddedLatency(t *testing.T) {
	cfg := core.DefaultConfig(polb.Parallel)
	f := newFixture(t, &cfg)
	run(t, "inorder", f, nvldTrace(f, 0, 4))

	r := run(t, "inorder", f, []isa.Instr{
		{Op: isa.NVLoad, Dst: 1, Addr: uint64(oid.New(f.poolID, 0)), Size: 8},
		{Op: isa.ALU, Dst: 2, Src1: 1},
	})
	// Parallel hit: just L1 latency, like a regular load: cycles = 4.
	if r.Cycles != 4 {
		t.Errorf("Parallel warm nvld-use = %d cycles, want 4", r.Cycles)
	}
	if r.TransStallCycles != 0 {
		t.Errorf("Parallel hit must charge no translation cycles: %d", r.TransStallCycles)
	}
}

func TestPOLBMissStallsInOrder(t *testing.T) {
	cfg := core.DefaultConfig(polb.Pipelined)
	f := newFixture(t, &cfg)
	cold := run(t, "inorder", f, nvldTrace(f, 0, 1))
	// Cold: POT walk (30) + TLB miss (30) + miss-beyond-L1 (117) block
	// the pipe after the 1-cycle issue slot: 178 cycles.
	if cold.Cycles != 178 {
		t.Errorf("cold nvld cycles = %d, want 178", cold.Cycles)
	}
	if cold.Translation.POTWalks != 1 {
		t.Errorf("POT walks = %d", cold.Translation.POTWalks)
	}
}

func TestNVWithoutHardwareErrors(t *testing.T) {
	f := newFixture(t, nil)
	src := &trace.BufferSource{Instrs: nvldTrace(&fixture{poolID: 7}, 0, 1)}
	if _, err := RunInOrder(DefaultConfig(), f.m, src); err == nil {
		t.Error("nvld without translation hardware must error")
	}
	src = &trace.BufferSource{Instrs: []isa.Instr{{Op: isa.NVStore, Addr: uint64(oid.New(7, 0)), Size: 8}}}
	if _, err := RunOutOfOrder(DefaultConfig(), f.m, src); err == nil {
		t.Error("nvst without translation hardware must error")
	}
}

func TestUnmappedLoadErrors(t *testing.T) {
	f := newFixture(t, nil)
	src := &trace.BufferSource{Instrs: []isa.Instr{{Op: isa.Load, Dst: 1, Addr: 0xbad000, Size: 8}}}
	if _, err := RunInOrder(DefaultConfig(), f.m, src); err == nil {
		t.Error("unmapped load must error (in-order)")
	}
	src = &trace.BufferSource{Instrs: []isa.Instr{{Op: isa.Load, Dst: 1, Addr: 0xbad000, Size: 8}}}
	if _, err := RunOutOfOrder(DefaultConfig(), f.m, src); err == nil {
		t.Error("unmapped load must error (OoO)")
	}
}

func TestOoOMemoryLevelParallelism(t *testing.T) {
	// Independent cold misses overlap out of order but serialize in
	// order: the OoO core must be faster on the same access pattern.
	mkTrace := func(f *fixture) []isa.Instr {
		var ins []isa.Instr
		for i := 0; i < 8; i++ {
			ins = append(ins, isa.Instr{Op: isa.Load, Dst: isa.Reg(1 + i), Addr: f.data.Base + uint64(i)*vm.PageSize, Size: 8})
		}
		return ins
	}
	fIn := newFixture(t, nil)
	rIn := run(t, "inorder", fIn, mkTrace(fIn))
	fOoO := newFixture(t, nil)
	rOoO := run(t, "ooo", fOoO, mkTrace(fOoO))
	if rOoO.Cycles >= rIn.Cycles {
		t.Errorf("OoO (%d cycles) must beat in-order (%d) on independent misses", rOoO.Cycles, rIn.Cycles)
	}
}

func TestOoOStoreToLoadForwarding(t *testing.T) {
	f := newFixture(t, nil)
	// Cold store then immediate load of the same address: the load must
	// forward from the SQ instead of waiting for memory.
	r := run(t, "ooo", f, []isa.Instr{
		{Op: isa.Store, Src1: 1, Src2: 2, Addr: f.data.Base, Size: 8},
		{Op: isa.Load, Dst: 3, Addr: f.data.Base, Size: 8},
		{Op: isa.ALU, Dst: 4, Src1: 3},
	})
	// Without forwarding the load would pay the 150-cycle cold access
	// (stores drain post-commit and the line is still being fetched).
	if r.Cycles > 200 {
		t.Errorf("forwarded load too slow: %d cycles", r.Cycles)
	}
}

func TestOoONVStoreForwardsToRegularLoad(t *testing.T) {
	// Paper §4.3: with the Pipelined design the LSQ sees only virtual
	// addresses, so a store through an ObjectID forwards to a regular
	// load of the same (translated) address.
	cfg := core.DefaultConfig(polb.Pipelined)
	f := newFixture(t, &cfg)
	// Warm translation + TLB + line.
	run(t, "ooo", f, nvldTrace(f, 0x40, 2))

	oidAddr := uint64(oid.New(f.poolID, 0x40))
	va := f.pool.Base + 0x40
	withConflict := run(t, "ooo", f, []isa.Instr{
		{Op: isa.NVStore, Src1: 1, Src2: 2, Addr: oidAddr, Size: 8},
		{Op: isa.Load, Dst: 3, Addr: va, Size: 8},
	})
	// The load must have found the SQ conflict (same VA) — observable as
	// not paying a full post-commit RAW hazard; mostly this asserts the
	// plumbing translates nvst addresses before disambiguation.
	if withConflict.Cycles > 100 {
		t.Errorf("nvst->ld forwarding path too slow: %d", withConflict.Cycles)
	}
}

func TestOoOSFenceWaitsForCLWBDrain(t *testing.T) {
	f := newFixture(t, nil)
	run(t, "ooo", f, []isa.Instr{{Op: isa.Load, Dst: 1, Addr: f.data.Base, Size: 8}})
	r := run(t, "ooo", f, []isa.Instr{
		{Op: isa.CLWB, Addr: f.data.Base, Size: 64},
		{Op: isa.SFence},
	})
	if r.Cycles < 100 {
		t.Errorf("SFENCE must wait for the CLWB drain: %d cycles", r.Cycles)
	}
}

func TestOoOROBLimit(t *testing.T) {
	// A cold memory load at the window head plus >ROB independent ALUs:
	// dispatch must stall when the ROB fills, so the ALU stream cannot
	// fully overlap the miss.
	f := newFixture(t, nil)
	var ins []isa.Instr
	ins = append(ins, isa.Instr{Op: isa.Load, Dst: 33, Addr: f.data.Base, Size: 8})
	ins = append(ins, aluIndep(4000)...)
	r := run(t, "ooo", f, ins)
	// 4000 ALUs at width 4 = ~1000 cycles; the 150-cycle miss is mostly
	// hidden but the ROB was full while it resolved, so commit-width
	// effects keep cycles near max(1000, 150+128/4).
	if r.Cycles < 1000 {
		t.Errorf("cycles = %d, impossible below ALU bound", r.Cycles)
	}
	if r.Cycles > 1400 {
		t.Errorf("cycles = %d, window should hide most of one miss", r.Cycles)
	}
}

func TestOoOVsInOrderOnTranslationHeavyCode(t *testing.T) {
	// The paper's observation: OoO hides part of the software-translation
	// latency, so hardware translation helps in-order cores more. Here we
	// just check both models run a mixed trace and OoO is faster.
	mk := func(f *fixture) []isa.Instr {
		var ins []isa.Instr
		for i := 0; i < 500; i++ {
			ins = append(ins,
				isa.Instr{Op: isa.Load, Dst: 1, Addr: f.data.Base + uint64(i%64)*64, Size: 8, PC: 0x10},
				isa.Instr{Op: isa.ALU, Dst: 2, Src1: 1, PC: 0x14},
				isa.Instr{Op: isa.ALU, Dst: 3, Src1: 2, PC: 0x18},
				isa.Instr{Op: isa.Branch, PC: 0x1c, Taken: true},
			)
		}
		return ins
	}
	f1 := newFixture(t, nil)
	rIn := run(t, "inorder", f1, mk(f1))
	f2 := newFixture(t, nil)
	rOoO := run(t, "ooo", f2, mk(f2))
	if rOoO.Cycles >= rIn.Cycles {
		t.Errorf("OoO (%d) should outperform in-order (%d)", rOoO.Cycles, rIn.Cycles)
	}
	if rIn.Instructions != rOoO.Instructions {
		t.Error("both models must run the same trace")
	}
}

func TestResultHelpers(t *testing.T) {
	var r Result
	if r.IPC() != 0 || r.CPI() != 0 || r.MispredictRate() != 0 {
		t.Error("zero result helpers must be 0")
	}
	r = Result{Cycles: 100, Instructions: 200, BranchLookups: 10, Mispredicts: 5}
	if r.IPC() != 2 || r.CPI() != 0.5 || r.MispredictRate() != 0.5 {
		t.Error("result arithmetic")
	}
	if r.String() == "" {
		t.Error("String must render")
	}
}

func TestPredictorValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("predictor must reject non-power-of-two sizes")
		}
	}()
	newPredictor(3)
}

func TestSlotClock(t *testing.T) {
	s := newSlotClock(2)
	t0 := s.take(0)
	t1 := s.take(0)
	t2 := s.take(0)
	if t0 != 0 || t1 != 0 {
		t.Errorf("width 2 must grant two slots at cycle 0: %d, %d", t0, t1)
	}
	if t2 != 1 {
		t.Errorf("third take must move to cycle 1: %d", t2)
	}
	if got := s.take(10); got != 10 {
		t.Errorf("take honours earliest: %d", got)
	}
}
