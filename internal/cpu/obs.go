package cpu

import (
	"potgo/internal/isa"
	"potgo/internal/obs"
)

// PublishMetrics adds the run's end-of-run counters to the registry under
// "cpu.<core>." (core is "inorder" or "ooo"), the instruction mix under
// "cpu.<core>.mix.<op>", and the hierarchy counters under "mem.". Counters
// aggregate across runs sharing a registry (the experiment grid); gauges
// reflect the most recently published run. Safe on a nil registry.
func (r Result) PublishMetrics(reg *obs.Registry, core string) {
	if reg == nil {
		return
	}
	p := "cpu." + core + "."
	reg.Counter(p + "cycles").Add(r.Cycles)
	reg.Counter(p + "instructions").Add(r.Instructions)
	reg.Counter(p + "branch_lookups").Add(r.BranchLookups)
	reg.Counter(p + "mispredicts").Add(r.Mispredicts)
	reg.Counter(p + "mem_stall_cycles").Add(r.MemStallCycles)
	reg.Counter(p + "trans_stall_cycles").Add(r.TransStallCycles)
	reg.Counter(p + "branch_stall_cycles").Add(r.BranchStallCycles)
	if core == "ooo" {
		reg.Counter(p + "rob_stall_cycles").Add(r.ROBStallCycles)
		reg.Counter(p + "lq_stall_cycles").Add(r.LQStallCycles)
		reg.Counter(p + "sq_stall_cycles").Add(r.SQStallCycles)
	}
	reg.Gauge(p + "ipc").Set(r.IPC())
	reg.Gauge(p + "mispredict_rate").Set(r.MispredictRate())
	for op := isa.Op(0); int(op) < len(r.Mix.ByOp); op++ {
		if n := r.Mix.ByOp[op]; n > 0 {
			reg.Counter(p + "mix." + op.String()).Add(n)
		}
	}
	r.Mem.PublishMetrics(reg)
}
