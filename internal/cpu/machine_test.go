package cpu

import (
	"testing"

	"potgo/internal/core"
	"potgo/internal/isa"
	"potgo/internal/mem"
	"potgo/internal/oid"
	"potgo/internal/polb"
	"potgo/internal/pot"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

func TestResolveRejectsNonMemoryOps(t *testing.T) {
	as := vm.NewAddressSpace(1)
	m := &Machine{Hier: mem.New(mem.DefaultConfig(), as)}
	if _, err := m.resolve(isa.Instr{Op: isa.ALU}); err == nil {
		t.Error("resolve of ALU must error")
	}
}

func TestNVAccessToUnmappedPoolSurfacesException(t *testing.T) {
	as := vm.NewAddressSpace(2)
	table, err := pot.New(as, 64)
	if err != nil {
		t.Fatal(err)
	}
	tr := core.New(core.DefaultConfig(polb.Pipelined), table, as)
	m := &Machine{Hier: mem.New(mem.DefaultConfig(), as), Translator: tr}
	// Pool 9 was never inserted into the POT: the hardware raises the
	// paper's exception, surfaced as a simulation error.
	src := &trace.BufferSource{Instrs: []isa.Instr{
		{Op: isa.NVLoad, Dst: 1, Addr: uint64(oid.New(9, 0)), Size: 8},
	}}
	if _, err := RunInOrder(DefaultConfig(), m, src); err == nil {
		t.Error("POT miss must surface")
	}
	src = &trace.BufferSource{Instrs: []isa.Instr{
		{Op: isa.NVStore, Addr: uint64(oid.Null), Size: 8},
	}}
	if _, err := RunOutOfOrder(DefaultConfig(), m, src); err == nil {
		t.Error("null ObjectID dereference must surface")
	}
}

func TestSFenceWithNoStoresIsFree(t *testing.T) {
	as := vm.NewAddressSpace(3)
	m := &Machine{Hier: mem.New(mem.DefaultConfig(), as)}
	src := &trace.BufferSource{Instrs: []isa.Instr{
		{Op: isa.ALU, Dst: 1},
		{Op: isa.SFence},
		{Op: isa.ALU, Dst: 2},
	}}
	res, err := RunInOrder(DefaultConfig(), m, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles > 5 {
		t.Errorf("empty SFENCE must not stall: %d cycles", res.Cycles)
	}
}

func TestCLWBUnmappedLineErrors(t *testing.T) {
	as := vm.NewAddressSpace(4)
	m := &Machine{Hier: mem.New(mem.DefaultConfig(), as)}
	src := &trace.BufferSource{Instrs: []isa.Instr{
		{Op: isa.CLWB, Addr: 0xdead000, Size: 64},
	}}
	if _, err := RunInOrder(DefaultConfig(), m, src); err == nil {
		t.Error("CLWB of unmapped line must error")
	}
}

func TestParallelDesignChargesTLBPerPaperMethodology(t *testing.T) {
	// DESIGN.md §5: the Parallel path still charges the D-TLB because
	// the paper's Sniper infrastructure does. Verify the TLB counter
	// moves on Parallel hits.
	as := vm.NewAddressSpace(5)
	table, _ := pot.New(as, 64)
	poolRegion, _ := as.Map(16 * vm.PageSize)
	_ = table.Insert(3, poolRegion.Base)
	tr := core.New(core.DefaultConfig(polb.Parallel), table, as)
	m := &Machine{Hier: mem.New(mem.DefaultConfig(), as), Translator: tr}
	var ins []isa.Instr
	for i := 0; i < 10; i++ {
		ins = append(ins, isa.Instr{Op: isa.NVLoad, Dst: 1, Addr: uint64(oid.New(3, uint32(i*8))), Size: 8})
	}
	res, err := RunInOrder(DefaultConfig(), m, &trace.BufferSource{Instrs: ins})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mem.DTLB.Accesses() != 10 {
		t.Errorf("Parallel accesses must be charged to the D-TLB: %d of 10", res.Mem.DTLB.Accesses())
	}
}
