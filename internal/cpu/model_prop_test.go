package cpu

import (
	"math/rand"
	"testing"

	"potgo/internal/isa"
	"potgo/internal/mem"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// randomTrace builds a mixed but well-formed trace over a mapped region.
func randomTrace(seed int64, n int, base uint64) []isa.Instr {
	rng := rand.New(rand.NewSource(seed))
	ins := make([]isa.Instr, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1:
			ins = append(ins, isa.Instr{Op: isa.Load, Dst: isa.Reg(1 + rng.Intn(15)),
				Src1: isa.Reg(rng.Intn(16)), Addr: base + uint64(rng.Intn(1<<14))&^7, Size: 8})
		case 2:
			ins = append(ins, isa.Instr{Op: isa.Store, Src1: isa.Reg(rng.Intn(16)),
				Src2: isa.Reg(rng.Intn(16)), Addr: base + uint64(rng.Intn(1<<14))&^7, Size: 8})
		case 3:
			ins = append(ins, isa.Instr{Op: isa.Branch, PC: uint64(rng.Intn(64) * 4), Taken: rng.Intn(2) == 0})
		case 4:
			ins = append(ins, isa.Instr{Op: isa.Mul, Dst: isa.Reg(1 + rng.Intn(15)), Src1: isa.Reg(rng.Intn(16))})
		default:
			ins = append(ins, isa.Instr{Op: isa.ALU, Dst: isa.Reg(1 + rng.Intn(15)),
				Src1: isa.Reg(rng.Intn(16)), Src2: isa.Reg(rng.Intn(16))})
		}
	}
	return ins
}

func runTrace(t *testing.T, inorder bool, memCfg mem.Config, coreCfg Config, instrs []isa.Instr) Result {
	t.Helper()
	as := vm.NewAddressSpace(9)
	r, err := as.Map(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	// Rebase addresses onto this mapping.
	rebased := make([]isa.Instr, len(instrs))
	copy(rebased, instrs)
	for i := range rebased {
		if rebased[i].Op.IsMem() {
			rebased[i].Addr = r.Base + (rebased[i].Addr & 0xffff & ^uint64(7))
		}
	}
	m := &Machine{Hier: mem.New(memCfg, as)}
	var res Result
	if inorder {
		res, err = RunInOrder(coreCfg, m, &trace.BufferSource{Instrs: rebased})
	} else {
		res, err = RunOutOfOrder(coreCfg, m, &trace.BufferSource{Instrs: rebased})
	}
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// Property: slower memory never makes execution faster, on either model.
func TestMemoryLatencyMonotonicity(t *testing.T) {
	instrs := randomTrace(3, 4000, 0)
	for _, inorder := range []bool{true, false} {
		fast := mem.DefaultConfig()
		slow := mem.DefaultConfig()
		slow.MemLatency = 400
		slow.L2Latency = 20
		slow.L3Latency = 60
		rFast := runTrace(t, inorder, fast, DefaultConfig(), instrs)
		rSlow := runTrace(t, inorder, slow, DefaultConfig(), instrs)
		if rSlow.Cycles < rFast.Cycles {
			t.Errorf("inorder=%t: slower memory sped execution up: %d < %d",
				inorder, rSlow.Cycles, rFast.Cycles)
		}
	}
}

// Property: a wider out-of-order machine is never slower than a narrower
// one with the same window contents.
func TestWidthMonotonicity(t *testing.T) {
	instrs := randomTrace(5, 4000, 0)
	narrow := DefaultConfig()
	narrow.FetchWidth, narrow.IssueWidth, narrow.CommitWidth = 1, 1, 1
	wide := DefaultConfig()
	rNarrow := runTrace(t, false, mem.DefaultConfig(), narrow, instrs)
	rWide := runTrace(t, false, mem.DefaultConfig(), wide, instrs)
	if rWide.Cycles > rNarrow.Cycles {
		t.Errorf("width-4 machine slower than width-1: %d > %d", rWide.Cycles, rNarrow.Cycles)
	}
}

// Property: a larger ROB is never slower.
func TestROBMonotonicity(t *testing.T) {
	instrs := randomTrace(7, 4000, 0)
	small := DefaultConfig()
	small.ROB, small.LQ, small.SQ = 16, 8, 8
	big := DefaultConfig()
	rSmall := runTrace(t, false, mem.DefaultConfig(), small, instrs)
	rBig := runTrace(t, false, mem.DefaultConfig(), big, instrs)
	if rBig.Cycles > rSmall.Cycles {
		t.Errorf("ROB-128 slower than ROB-16: %d > %d", rBig.Cycles, rSmall.Cycles)
	}
}

// Property: the out-of-order model never loses to the in-order model on the
// same trace (same fetch discipline, strictly more reordering freedom).
func TestOoONeverSlowerThanInOrder(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		instrs := randomTrace(seed, 3000, 0)
		rIn := runTrace(t, true, mem.DefaultConfig(), DefaultConfig(), instrs)
		rOoO := runTrace(t, false, mem.DefaultConfig(), DefaultConfig(), instrs)
		// Allow a small tolerance: commit-width bubbles can differ.
		if float64(rOoO.Cycles) > float64(rIn.Cycles)*1.05 {
			t.Errorf("seed %d: OoO (%d) much slower than in-order (%d)", seed, rOoO.Cycles, rIn.Cycles)
		}
	}
}

// Both models execute every instruction exactly once.
func TestInstructionAccounting(t *testing.T) {
	instrs := randomTrace(11, 2500, 0)
	rIn := runTrace(t, true, mem.DefaultConfig(), DefaultConfig(), instrs)
	rOoO := runTrace(t, false, mem.DefaultConfig(), DefaultConfig(), instrs)
	if rIn.Instructions != uint64(len(instrs)) || rOoO.Instructions != uint64(len(instrs)) {
		t.Errorf("instruction counts: in=%d ooo=%d want %d",
			rIn.Instructions, rOoO.Instructions, len(instrs))
	}
	if rIn.Mix.Total != rOoO.Mix.Total {
		t.Error("mix accounting diverged")
	}
}

// Determinism: the same trace yields the same cycle count.
func TestModelDeterminism(t *testing.T) {
	instrs := randomTrace(13, 2000, 0)
	a := runTrace(t, false, mem.DefaultConfig(), DefaultConfig(), instrs)
	b := runTrace(t, false, mem.DefaultConfig(), DefaultConfig(), instrs)
	if a.Cycles != b.Cycles {
		t.Errorf("nondeterministic: %d vs %d", a.Cycles, b.Cycles)
	}
}

// LQ/SQ pressure: a load/store-heavy trace must still complete with tiny
// queues, just more slowly.
func TestTinyQueues(t *testing.T) {
	var instrs []isa.Instr
	for i := 0; i < 2000; i++ {
		if i%2 == 0 {
			instrs = append(instrs, isa.Instr{Op: isa.Load, Dst: 1, Addr: uint64(i * 64), Size: 8})
		} else {
			instrs = append(instrs, isa.Instr{Op: isa.Store, Src2: 1, Addr: uint64(i * 64), Size: 8})
		}
	}
	tiny := DefaultConfig()
	tiny.LQ, tiny.SQ = 2, 2
	rTiny := runTrace(t, false, mem.DefaultConfig(), tiny, instrs)
	rBig := runTrace(t, false, mem.DefaultConfig(), DefaultConfig(), instrs)
	if rTiny.Cycles < rBig.Cycles {
		t.Errorf("tiny queues faster than default: %d < %d", rTiny.Cycles, rBig.Cycles)
	}
}
