package cpu

import (
	"testing"

	"potgo/internal/isa"
	"potgo/internal/mem"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

func oooRun(t *testing.T, cfg Config, instrs []isa.Instr) Result {
	t.Helper()
	as := vm.NewAddressSpace(21)
	r, err := as.Map(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	rebased := make([]isa.Instr, len(instrs))
	copy(rebased, instrs)
	for i := range rebased {
		if rebased[i].Op.IsMem() {
			rebased[i].Addr = r.Base + (rebased[i].Addr & 0xffff & ^uint64(7))
		}
	}
	m := &Machine{Hier: mem.New(mem.DefaultConfig(), as)}
	res, err := RunOutOfOrder(cfg, m, &trace.BufferSource{Instrs: rebased})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// A mispredicted branch must delay the dispatch of everything younger: the
// same ALU stream after a mispredicting branch finishes later than after a
// well-predicted one.
func TestOoOMispredictRedirectsFrontEnd(t *testing.T) {
	mk := func(alternating bool) []isa.Instr {
		var ins []isa.Instr
		for i := 0; i < 400; i++ {
			taken := true
			if alternating {
				taken = i%2 == 0
			}
			ins = append(ins, isa.Instr{Op: isa.Branch, PC: 0x80, Taken: taken})
			for j := 0; j < 3; j++ {
				ins = append(ins, isa.Instr{Op: isa.ALU, Dst: isa.Reg(1 + j)})
			}
		}
		return ins
	}
	good := oooRun(t, DefaultConfig(), mk(false))
	bad := oooRun(t, DefaultConfig(), mk(true))
	if bad.Cycles <= good.Cycles {
		t.Errorf("mispredicting stream (%d cy) must be slower than predictable (%d cy)",
			bad.Cycles, good.Cycles)
	}
	if bad.BranchStallCycles == 0 {
		t.Error("mispredict cycles must be attributed")
	}
	if good.CPIStack().Branch > bad.CPIStack().Branch {
		t.Error("CPI stack branch bucket inverted")
	}
}

// Store-to-load forwarding: a load overlapping an older in-flight store
// must not read stale memory timing-wise — it completes no earlier than the
// store's SQ data availability.
func TestOoOForwardingRespectsStoreReadiness(t *testing.T) {
	// A long-latency producer feeds the store's data; the dependent load
	// of the same address cannot complete before that chain resolves.
	var ins []isa.Instr
	// 30-deep dependent ALU chain into r5.
	ins = append(ins, isa.Instr{Op: isa.ALU, Dst: 5})
	for i := 0; i < 30; i++ {
		ins = append(ins, isa.Instr{Op: isa.ALU, Dst: 5, Src1: 5})
	}
	ins = append(ins,
		isa.Instr{Op: isa.Store, Src2: 5, Addr: 0x100, Size: 8},
		isa.Instr{Op: isa.Load, Dst: 6, Addr: 0x100, Size: 8},
	)
	res := oooRun(t, DefaultConfig(), ins)
	// The chain alone takes 31 cycles of issue; the forwarded load must
	// commit after it. With wrong forwarding the load could commit at
	// ~15 cycles (cold L1 fill would actually be ~150, so bound below).
	if res.Cycles < 33 {
		t.Errorf("forwarded load completed before its producer chain: %d cycles", res.Cycles)
	}
}

// Loads to disjoint addresses must NOT be serialized by unrelated stores
// (no false dependencies).
func TestOoONoFalseStoreDependencies(t *testing.T) {
	var conflict, disjoint []isa.Instr
	for i := 0; i < 200; i++ {
		conflict = append(conflict,
			isa.Instr{Op: isa.Store, Addr: 0x200, Size: 8},
			isa.Instr{Op: isa.Load, Dst: 1, Addr: 0x200, Size: 8},
		)
		disjoint = append(disjoint,
			isa.Instr{Op: isa.Store, Addr: 0x200, Size: 8},
			isa.Instr{Op: isa.Load, Dst: 1, Addr: 0x400, Size: 8},
		)
	}
	rConflict := oooRun(t, DefaultConfig(), conflict)
	rDisjoint := oooRun(t, DefaultConfig(), disjoint)
	// Disjoint loads hit the L1 independently; they must not be slower
	// than the conflicting (forwarded) case by any large margin.
	if rDisjoint.Cycles > rConflict.Cycles*2 {
		t.Errorf("disjoint loads serialized: %d vs %d cycles", rDisjoint.Cycles, rConflict.Cycles)
	}
}

// The frontend depth shifts completion by a constant, not a factor.
func TestOoOFrontendDepth(t *testing.T) {
	instrs := make([]isa.Instr, 100)
	for i := range instrs {
		instrs[i] = isa.Instr{Op: isa.ALU, Dst: isa.Reg(1 + i%8)}
	}
	shallow := DefaultConfig()
	shallow.FrontendDepth = 0
	deep := DefaultConfig()
	deep.FrontendDepth = 20
	rs := oooRun(t, shallow, instrs)
	rd := oooRun(t, deep, instrs)
	diff := int64(rd.Cycles) - int64(rs.Cycles)
	if diff < 15 || diff > 25 {
		t.Errorf("frontend depth 0->20 shifted cycles by %d, want ~20", diff)
	}
}

// Multiple CLWBs drain concurrently (post-commit) but SFENCE waits for the
// slowest.
func TestOoOCLWBDrainOverlap(t *testing.T) {
	var ins []isa.Instr
	for i := 0; i < 8; i++ {
		ins = append(ins, isa.Instr{Op: isa.CLWB, Addr: uint64(0x1000 + i*64), Size: 64})
	}
	ins = append(ins, isa.Instr{Op: isa.SFence})
	res := oooRun(t, DefaultConfig(), ins)
	// Serialized CLWBs would take 8*100 = 800+; overlapped they finish
	// in ~100 + commit pipeline.
	if res.Cycles > 300 {
		t.Errorf("CLWBs appear serialized: %d cycles", res.Cycles)
	}
	if res.Cycles < 100 {
		t.Errorf("SFENCE cannot retire before the 100-cycle CLWB drain: %d cycles", res.Cycles)
	}
}
