package cpu

import (
	"potgo/internal/isa"
	"potgo/internal/trace"
)

// slotClock enforces a per-cycle width limit on a pipeline stage: each slot
// accepts one instruction per cycle.
type slotClock []uint64

func newSlotClock(width int) slotClock { return make(slotClock, width) }

// take claims the earliest slot at or after `earliest` and returns the cycle
// granted.
func (s slotClock) take(earliest uint64) uint64 {
	best := 0
	for i := 1; i < len(s); i++ {
		if s[i] < s[best] {
			best = i
		}
	}
	t := earliest
	if s[best] > t {
		t = s[best]
	}
	s[best] = t + 1
	return t
}

// sqEntry is a store-queue entry used for store-to-load forwarding.
type sqEntry struct {
	va    uint64
	size  uint64
	ready uint64 // cycle the address and data are available in the SQ
	valid bool
}

// RunOutOfOrder executes a trace on the out-of-order superscalar model of
// paper §4.4 using the timestamp ("instruction-window-centric") approach of
// Sniper's ROB core model, which is the simulator the paper extends.
//
// Per instruction the model derives dispatch, issue, completion and commit
// times constrained by:
//
//   - front-end width (FetchWidth per cycle) and branch-misprediction
//     redirects (dispatch of younger instructions floors at branch
//     resolution + the 8-cycle penalty);
//   - ROB/LQ/SQ occupancy (an instruction cannot dispatch until the entry
//     of the instruction ROB-size earlier has been released);
//   - register data dependencies (wake-up on completion times);
//   - issue and commit widths;
//   - the LSQ: loads search older stores by post-translation virtual
//     address and forward from the youngest conflicting one — which is why
//     the Pipelined POLB, whose output is a virtual address available at
//     AGEN, composes with unmodified disambiguation hardware (paper §4.3),
//     and the Parallel design is not modelled for out-of-order cores;
//   - nvld/nvst address generation: the POLB CAM access extends AGEN and a
//     POLB miss stalls AGEN for the POT walk.
//
// Stores and CLWBs drain to the cache after commit and hold their SQ entry
// until the line is written; SFENCE completes only after every prior
// store/CLWB has drained.
func RunOutOfOrder(cfg Config, m *Machine, src trace.Source) (Result, error) {
	var (
		res  Result
		pred = newPredictor(cfg.PredictorEntries)

		regReady [isa.NumRegs]uint64

		fetchSlots  = newSlotClock(cfg.FetchWidth)
		issueSlots  = newSlotClock(cfg.IssueWidth)
		commitSlots = newSlotClock(cfg.CommitWidth)

		robRing = make([]uint64, cfg.ROB)
		lqRing  = make([]uint64, cfg.LQ)
		sqRing  = make([]uint64, cfg.SQ)

		sq       = make([]sqEntry, cfg.SQ)
		storeSeq uint64 // count of stores/CLWBs processed
		loadSeq  uint64

		dispatchFloor uint64 // branch-redirect floor
		lastCommit    uint64
		storeDrainMax uint64
		l1Lat         = m.Hier.Config().L1Latency

		idx uint64
	)

	for {
		in, ok := src.Next()
		if !ok {
			break
		}
		res.Instructions++
		res.Mix.Record(in)

		// Dispatch: front-end pacing, redirect floor, window occupancy.
		// Each window structure is charged the cycles by which it alone
		// pushes the dispatch floor past all earlier constraints.
		floor := dispatchFloor
		if t := robRing[idx%uint64(cfg.ROB)]; t > floor {
			res.ROBStallCycles += t - floor
			floor = t
		}
		if in.Op.IsLoad() {
			if t := lqRing[loadSeq%uint64(cfg.LQ)]; t > floor {
				res.LQStallCycles += t - floor
				floor = t
			}
		}
		if in.Op.IsStore() {
			if t := sqRing[storeSeq%uint64(cfg.SQ)]; t > floor {
				res.SQStallCycles += t - floor
				floor = t
			}
		}
		dispatch := fetchSlots.take(floor) + cfg.FrontendDepth

		// Wake-up: wait for source operands.
		ready := dispatch
		if t := regReady[in.Src1]; t > ready {
			ready = t
		}
		if t := regReady[in.Src2]; t > ready {
			ready = t
		}
		issue := issueSlots.take(ready)

		// Execute.
		var complete uint64
		var drainLat uint64 // post-commit cache-write latency (stores)
		switch in.Op {
		case isa.Nop, isa.Jump:
			complete = issue + 1

		case isa.ALU, isa.Mul, isa.Div:
			complete = issue + in.Op.ExecLatency()

		case isa.Branch:
			complete = issue + 1
			if pred.predict(in.PC, in.Taken) {
				redirect := complete + cfg.MispredictPenalty
				if redirect > dispatchFloor {
					dispatchFloor = redirect
				}
				res.BranchStallCycles += cfg.MispredictPenalty
			}

		case isa.Load, isa.NVLoad:
			acc, err := m.resolve(in)
			if err != nil {
				return res, err
			}
			agenDone := issue + 1 + acc.transLat()
			if st, hit := youngestConflict(sq, storeSeq, acc.va, uint64(in.Size)); hit {
				// Store-to-load forwarding out of the SQ.
				complete = agenDone
				if st.ready+1 > complete {
					complete = st.ready + 1
				}
			} else {
				complete = agenDone + acc.tlbLat + acc.cacheLat
			}
			res.TransStallCycles += acc.transLat()
			res.MemStallCycles += acc.tlbLat
			if acc.cacheLat > l1Lat {
				res.MemStallCycles += acc.cacheLat - l1Lat
			}
			loadSeq++

		case isa.Store, isa.NVStore, isa.CLWB:
			acc, err := m.resolve(in)
			if err != nil {
				return res, err
			}
			agenDone := issue + 1 + acc.transLat() + acc.tlbLat
			complete = agenDone // address+data in SQ: eligible to retire
			sq[storeSeq%uint64(cfg.SQ)] = sqEntry{va: acc.va, size: uint64(in.Size), ready: agenDone, valid: in.Op != isa.CLWB}
			drainLat = acc.cacheLat
			res.TransStallCycles += acc.transLat()
			res.MemStallCycles += acc.tlbLat

		case isa.SFence:
			complete = issue + 1
			if storeDrainMax > complete {
				complete = storeDrainMax
			}
		}

		if in.Dst != isa.RZ {
			regReady[in.Dst] = complete
		}

		// In-order commit, width-limited.
		floor = complete
		if lastCommit > floor {
			floor = lastCommit
		}
		commit := commitSlots.take(floor)
		lastCommit = commit

		if m.Tracer != nil {
			m.Tracer.OoO(in.Op.String(), dispatch-cfg.FrontendDepth, dispatch, issue, complete, commit)
		}

		// Release window entries.
		robRing[idx%uint64(cfg.ROB)] = commit
		if in.Op.IsLoad() {
			lqRing[(loadSeq-1)%uint64(cfg.LQ)] = commit
		}
		if in.Op.IsStore() {
			drain := commit + drainLat
			sqRing[storeSeq%uint64(cfg.SQ)] = drain
			if drain > storeDrainMax {
				storeDrainMax = drain
			}
			storeSeq++
		}
		idx++
	}

	res.Cycles = lastCommit
	res.BranchLookups = pred.lookups
	res.Mispredicts = pred.mispredicts
	res.finish(m)
	return res, nil
}

// youngestConflict searches the store queue for the youngest store whose
// byte range overlaps [va, va+size). Addresses in the SQ are
// post-translation virtual addresses, so nvst→ld and st→nvld forwarding
// work exactly as the paper's Pipelined design intends.
func youngestConflict(sq []sqEntry, storeSeq, va, size uint64) (sqEntry, bool) {
	n := uint64(len(sq))
	window := storeSeq
	if window > n {
		window = n
	}
	for k := uint64(1); k <= window; k++ {
		e := sq[(storeSeq-k)%n]
		if e.valid && e.va < va+size && va < e.va+e.size {
			return e, true
		}
	}
	return sqEntry{}, false
}
