package cpu

import (
	"fmt"

	"potgo/internal/core"
	"potgo/internal/mem"
	"potgo/internal/polb"
	"potgo/internal/trace"
)

// Result is the outcome of one timing run.
type Result struct {
	// Cycles is the total execution time (commit of the last
	// instruction).
	Cycles uint64
	// Instructions is the dynamic instruction count.
	Instructions uint64
	// Mix is the dynamic instruction mix.
	Mix trace.Stats
	// BranchLookups / Mispredicts summarize the direction predictor.
	BranchLookups, Mispredicts uint64
	// MemStallCycles is the sum of memory latencies beyond an L1 hit,
	// a coarse indicator of where time went.
	MemStallCycles uint64
	// TransStallCycles is the sum of hardware-translation latencies
	// (POLB access + POT walks) charged to nvld/nvst.
	TransStallCycles uint64
	// BranchStallCycles is the total branch-misprediction redirect cost.
	BranchStallCycles uint64
	// ROBStallCycles, LQStallCycles and SQStallCycles attribute
	// out-of-order dispatch delay to window occupancy: cycles dispatch
	// waited for a ROB / load-queue / store-queue entry to free beyond
	// every other constraint already accounted. Zero for the in-order
	// model. Attribution is approximate when stalls overlap (the binding
	// constraint is charged).
	ROBStallCycles, LQStallCycles, SQStallCycles uint64
	// Mem snapshots hierarchy counters.
	Mem mem.Stats
	// Translation and POLB snapshot the hardware translation counters
	// (zero-valued for BASE runs).
	Translation core.Stats
	POLB        polb.Stats
}

// IPC returns instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// CPI returns cycles per instruction.
func (r Result) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// MispredictRate returns mispredicted branches / predicted branches.
func (r Result) MispredictRate() float64 {
	if r.BranchLookups == 0 {
		return 0
	}
	return float64(r.Mispredicts) / float64(r.BranchLookups)
}

// Stack is a coarse cycle attribution ("CPI stack"): where the run's cycles
// went. Compute is everything not attributed to the other three buckets
// (issue slots, execution latencies, load-use and fence stalls).
type Stack struct {
	Compute     uint64
	Branch      uint64
	Memory      uint64
	Translation uint64
}

// CPIStack attributes the run's cycles. The memory and translation buckets
// are the stall sums the models charge directly; branch is the mispredict
// redirect total; compute is the remainder. For the out-of-order model the
// attribution is approximate (overlapped stalls are counted where charged).
func (r Result) CPIStack() Stack {
	s := Stack{
		Branch:      r.BranchStallCycles,
		Memory:      r.MemStallCycles,
		Translation: r.TransStallCycles,
	}
	attributed := s.Branch + s.Memory + s.Translation
	if r.Cycles > attributed {
		s.Compute = r.Cycles - attributed
	}
	return s
}

func (r Result) String() string {
	return fmt.Sprintf("cycles=%d insns=%d IPC=%.3f mispredict=%.2f%% polbMiss=%.2f%%",
		r.Cycles, r.Instructions, r.IPC(), 100*r.MispredictRate(), 100*r.POLB.MissRate())
}

// finish copies end-of-run machine counters into the result.
func (r *Result) finish(m *Machine) {
	r.Mem = m.Hier.Stats()
	if m.Translator != nil {
		r.Translation = m.Translator.Stats()
		r.POLB = m.Translator.POLB().Stats()
	}
}
