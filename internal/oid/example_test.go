package oid_test

import (
	"fmt"

	"potgo/internal/oid"
)

// Example shows the ObjectID layout of the paper's Figure 1: a 32-bit pool
// identifier over a 32-bit offset, with pool 0 reserved for NULL.
func Example() {
	o := oid.New(7, 0x1000)
	fmt.Println("pool:", o.Pool(), "offset:", o.Offset())
	fmt.Println("field at +8:", o.FieldAt(8))
	fmt.Println("null:", oid.Null.IsNull(), "— real:", o.IsNull())
	// Output:
	// pool: 7 offset: 4096
	// field at +8: 7:0x1008
	// null: true — real: false
}
