package oid

import (
	"testing"
	"testing/quick"
)

func TestNewPackUnpack(t *testing.T) {
	cases := []struct {
		pool PoolID
		off  uint32
	}{
		{1, 0},
		{1, 1},
		{1234, 0x10},
		{0xffffffff, 0xffffffff},
		{42, 4095},
		{42, 4096},
	}
	for _, c := range cases {
		o := New(c.pool, c.off)
		if o.Pool() != c.pool {
			t.Errorf("New(%d,%d).Pool() = %d", c.pool, c.off, o.Pool())
		}
		if o.Offset() != c.off {
			t.Errorf("New(%d,%d).Offset() = %d", c.pool, c.off, o.Offset())
		}
	}
}

func TestNullSemantics(t *testing.T) {
	if !Null.IsNull() {
		t.Fatal("Null must be null")
	}
	if !New(NullPool, 77).IsNull() {
		t.Error("any OID in the reserved pool 0 is null")
	}
	if New(1, 0).IsNull() {
		t.Error("pool 1, offset 0 is a real ObjectID")
	}
	var zero OID
	if !zero.IsNull() {
		t.Error("zero value of OID must be the null reference")
	}
}

func TestAdd(t *testing.T) {
	o := New(7, 100)
	if got := o.Add(28); got != New(7, 128) {
		t.Errorf("Add(28) = %v", got)
	}
	if got := o.Add(-100); got != New(7, 0) {
		t.Errorf("Add(-100) = %v", got)
	}
	// Offset arithmetic must never bleed into the pool field.
	top := New(7, 0xfffffff0)
	if got := top.Add(0x20); got.Pool() != 7 {
		t.Errorf("Add overflow changed pool: %v", got)
	}
}

func TestFieldAt(t *testing.T) {
	o := New(3, 0x1000)
	if got := o.FieldAt(8); got != New(3, 0x1008) {
		t.Errorf("FieldAt(8) = %v", got)
	}
}

func TestDistance(t *testing.T) {
	a := New(5, 64)
	b := New(5, 256)
	if d := a.Distance(b); d != 192 {
		t.Errorf("Distance = %d, want 192", d)
	}
	if d := b.Distance(a); d != -192 {
		t.Errorf("Distance = %d, want -192", d)
	}
	defer func() {
		if recover() == nil {
			t.Error("Distance across pools must panic")
		}
	}()
	_ = a.Distance(New(6, 0))
}

func TestStringAndParse(t *testing.T) {
	cases := []OID{Null, New(1, 0), New(77, 0xdeadbe), New(0xffffffff, 0xffffffff)}
	for _, o := range cases {
		s := o.String()
		back, err := ParseOID(s)
		if err != nil {
			t.Fatalf("ParseOID(%q): %v", s, err)
		}
		if back != o && !(o.IsNull() && back.IsNull()) {
			t.Errorf("round-trip %v -> %q -> %v", o, s, back)
		}
	}
	if _, err := ParseOID("bogus"); err == nil {
		t.Error("ParseOID must reject malformed input")
	}
	if _, err := ParseOID("x:0x10"); err == nil {
		t.Error("ParseOID must reject non-numeric pool")
	}
	if _, err := ParseOID("1:zz"); err == nil {
		t.Error("ParseOID must reject non-numeric offset")
	}
}

func TestPageTag(t *testing.T) {
	o := New(9, 0x3456)
	if got, want := o.PageTag(), uint64(9)<<20|0x3; got != want {
		t.Errorf("PageTag = %#x, want %#x", got, want)
	}
	if got := o.PageOffset(); got != 0x456 {
		t.Errorf("PageOffset = %#x, want 0x456", got)
	}
}

// Property: pack/unpack round-trips for all pool/offset combinations.
func TestQuickRoundTrip(t *testing.T) {
	f := func(pool uint32, off uint32) bool {
		o := New(PoolID(pool), off)
		return o.Pool() == PoolID(pool) && o.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Add is additive in its displacement and preserves the pool.
func TestQuickAddAdditive(t *testing.T) {
	f := func(pool uint32, off uint32, a, b int16) bool {
		if pool == 0 {
			pool = 1
		}
		o := New(PoolID(pool), off)
		lhs := o.Add(int64(a)).Add(int64(b))
		rhs := o.Add(int64(a) + int64(b))
		return lhs == rhs && lhs.Pool() == PoolID(pool)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: PageTag/PageOffset partition the ObjectID bits.
func TestQuickPageSplit(t *testing.T) {
	f := func(v uint64) bool {
		o := OID(v)
		return o.PageTag()<<PageShift|o.PageOffset() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String/Parse round-trips for non-null OIDs.
func TestQuickStringRoundTrip(t *testing.T) {
	f := func(pool uint32, off uint32) bool {
		if pool == 0 {
			pool = 0x80000000
		}
		o := New(PoolID(pool), off)
		back, err := ParseOID(o.String())
		return err == nil && back == o
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
