// Package oid defines the 64-bit persistent ObjectID used throughout the
// system.
//
// Following Figure 1 of the paper, an ObjectID is the concatenation of a
// 32-bit pool identifier (upper bits) and a 32-bit byte offset within the
// pool (lower bits). Pool id 0 is reserved for the NULL ObjectID, so a pool
// can never be assigned id 0 and the zero value of OID is the null reference.
//
// The space of all ObjectIDs can be read two ways: as a segmented address
// space where every pool is a 4 GB segment, or as a single flat 64-bit
// persistent address space. Either way, an object in one pool may hold a
// legitimate ObjectID that refers into any other pool.
package oid

import (
	"fmt"
	"strconv"
)

// PoolID is a unique, system-wide identifier assigned to a pool when it is
// created. The zero PoolID is reserved and never assigned.
type PoolID uint32

// NullPool is the reserved pool identifier that cannot name a real pool.
const NullPool PoolID = 0

// OID is a persistent object identifier: pool id (upper 32 bits) and byte
// offset within the pool (lower 32 bits).
type OID uint64

// Null is the null ObjectID (pool 0, offset 0). The zero value of OID.
const Null OID = 0

// Bit-layout constants for the two ObjectID components.
const (
	// OffsetBits is the width of the offset field (so each pool is a
	// 4 GB segment).
	OffsetBits = 32
	// PoolBits is the width of the pool-id field.
	PoolBits = 32
	// MaxOffset is the largest representable offset within a pool.
	MaxOffset = 1<<OffsetBits - 1
)

// New builds an ObjectID from a pool identifier and an offset.
func New(pool PoolID, offset uint32) OID {
	return OID(uint64(pool)<<OffsetBits | uint64(offset))
}

// Pool returns the pool-identifier component of the ObjectID.
func (o OID) Pool() PoolID { return PoolID(o >> OffsetBits) }

// Offset returns the byte offset of the ObjectID within its pool.
func (o OID) Offset() uint32 { return uint32(o) }

// IsNull reports whether the ObjectID is the null reference. Any ObjectID
// whose pool component is the reserved pool 0 is null, regardless of offset,
// matching the paper's reservation of pool id 0 for "a NULL pool which
// cannot exist".
func (o OID) IsNull() bool { return o.Pool() == NullPool }

// Add returns the ObjectID displaced by delta bytes within the same pool.
// This is the ObjectID analogue of pointer arithmetic (the imm field of the
// nvld/nvst instructions). Offset arithmetic wraps within the 32-bit offset
// space; it never changes the pool component.
func (o OID) Add(delta int64) OID {
	return New(o.Pool(), uint32(int64(o.Offset())+delta))
}

// FieldAt is a readability helper for struct-style access: the ObjectID of a
// field located fieldOff bytes past the start of the object.
func (o OID) FieldAt(fieldOff uint32) OID {
	return New(o.Pool(), o.Offset()+fieldOff)
}

// Distance returns the signed byte distance from o to other. It panics if
// the two ObjectIDs name different pools, since cross-pool distances are
// meaningless.
func (o OID) Distance(other OID) int64 {
	if o.Pool() != other.Pool() {
		panic("oid: Distance across pools")
	}
	return int64(other.Offset()) - int64(o.Offset())
}

// String renders the ObjectID as pool:offset in hex, or "NULL".
func (o OID) String() string {
	if o.IsNull() {
		return "NULL"
	}
	return fmt.Sprintf("%d:0x%x", o.Pool(), o.Offset())
}

// ParseOID parses the String form back into an OID. It accepts "NULL" and
// "pool:0xoffset".
func ParseOID(s string) (OID, error) {
	if s == "NULL" {
		return Null, nil
	}
	var pool uint64
	var rest string
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			p, err := strconv.ParseUint(s[:i], 10, 32)
			if err != nil {
				return Null, fmt.Errorf("oid: bad pool in %q: %v", s, err)
			}
			pool, rest = p, s[i+1:]
			break
		}
	}
	if rest == "" {
		return Null, fmt.Errorf("oid: malformed ObjectID %q", s)
	}
	off, err := strconv.ParseUint(rest, 0, 32)
	if err != nil {
		return Null, fmt.Errorf("oid: bad offset in %q: %v", s, err)
	}
	return New(PoolID(pool), uint32(off)), nil
}

// PageShift is log2 of the 4 KB page size assumed by the Parallel POLB
// design, which tags entries by pool id plus page-within-pool.
const PageShift = 12

// PageTag returns the upper 52 bits of the ObjectID — the tag used by the
// Parallel POLB design (pool id concatenated with the page number within the
// pool; the low 12 bits index into the page and flow directly to a
// virtually-indexed cache).
func (o OID) PageTag() uint64 { return uint64(o) >> PageShift }

// PageOffset returns the low 12 bits: the byte offset within the 4 KB page.
func (o OID) PageOffset() uint64 { return uint64(o) & (1<<PageShift - 1) }
