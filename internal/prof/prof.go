// Package prof wraps runtime/pprof profile capture for the command-line
// tools: Start begins an optional CPU profile and returns a stop function
// that finishes it and writes an optional allocation profile, so a command's
// main needs a single defer.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins profiling. cpuPath and memPath may each be empty to disable
// that profile. The returned stop function must be called exactly once at
// exit; it reports any write failure.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // flush recent allocations into the profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
