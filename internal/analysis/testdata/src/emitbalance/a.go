// Package fixture exercises the emitbalance analyzer: a path that emits
// CLWBs must fence (SFence, or Heap.Persist which fences internally)
// before a non-error return, unless the function's name says NoFence.
package fixture

import (
	"potgo/internal/emit"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// flushLeaky falls off the end with an unfenced CLWB.
func flushLeaky(e *emit.Emitter, va uint64) {
	e.CLWB(va)
} // want "CLWBs not yet fenced"

// flushLeakyReturn returns with an unfenced CLWB.
func flushLeakyReturn(e *emit.Emitter, va uint64) error {
	e.CLWB(va)
	return nil // want "CLWBs not yet fenced"
}

// flushFenced pairs the write-back with a fence.
func flushFenced(e *emit.Emitter, va uint64) {
	e.CLWB(va)
	e.SFence()
}

// flushRangeNoFence declares the unfenced convention: exempt here, but
// calls to it count as emission.
func flushRangeNoFence(e *emit.Emitter, va uint64, lines int) {
	for i := 0; i < lines; i++ {
		e.CLWB(va + uint64(i)*64)
	}
}

// callerLeaky inherits the helper's outstanding CLWBs and never fences.
func callerLeaky(e *emit.Emitter, va uint64) {
	flushRangeNoFence(e, va, 2)
} // want "CLWBs not yet fenced"

// callerFenced pays the helper's fence debt.
func callerFenced(e *emit.Emitter, va uint64) {
	flushRangeNoFence(e, va, 2)
	e.SFence()
}

// persistFences relies on Heap.Persist's internal trailing fence.
func persistFences(h *pmem.Heap, o oid.OID, va uint64) error {
	h.Emit.CLWB(va)
	return h.Persist(o, 64)
}

// errPathOK: by convention a helper that fails before its emission tail
// may return the error unfenced.
func errPathOK(h *pmem.Heap, o oid.OID, va uint64) error {
	h.Emit.CLWB(va)
	if err := h.TxAddRange(o, 8); err != nil {
		return err
	}
	h.Emit.SFence()
	return nil
}

// guardedFence is the TxEnd idiom: the flag tracks whether anything was
// emitted, and the guarded branch fences.
func guardedFence(e *emit.Emitter, vas []uint64) {
	fence := false
	for _, va := range vas {
		e.CLWB(va)
		fence = true
	}
	if fence {
		e.SFence()
	}
}
