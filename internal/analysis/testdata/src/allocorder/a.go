// Fixture for the allocorder analyzer: transactional allocation is
// reserve → durable log record → publish, and a free-list head is only
// published after the span header persists. The Tx/heap types here are
// local copies shaped like pmem's (the analyzer matches logAppend /
// storeSlabBit by method-name convention), so the ordering can be broken
// deliberately.
package allocorder

import (
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

type span struct{}

type heap struct{}

type Tx struct{ h *heap }

func (h *heap) allocReserve(size uint32) (oid.OID, span, uint32, error) {
	return 0, span{}, 0, nil
}

func (t *Tx) logAppend(kind uint64, target oid.OID, size uint32) error { return nil }

func (h *heap) storeSlabBit(sp span, slot uint32, set bool) error { return nil }

// allocGood follows the write-ahead order.
func (t *Tx) allocGood(size uint32) (oid.OID, error) {
	o, sp, slot, err := t.h.allocReserve(size)
	if err != nil {
		return 0, err
	}
	if err := t.logAppend(1, o, size); err != nil {
		return 0, err
	}
	if err := t.h.storeSlabBit(sp, slot, true); err != nil {
		return 0, err
	}
	return o, nil
}

// allocBad is allocGood with the log append deleted — the bit becomes
// visible with no durable record to replay against.
func (t *Tx) allocBad(size uint32) (oid.OID, error) {
	o, sp, slot, err := t.h.allocReserve(size)
	if err != nil {
		return 0, err
	}
	if err := t.h.storeSlabBit(sp, slot, true); err != nil { // want "occupancy bit published before the allocation was logged"
		return 0, err
	}
	return o, nil
}

// logHelper wraps the append; the summary layer sees through it.
func (t *Tx) logHelper(o oid.OID, size uint32) error { return t.logAppend(1, o, size) }

func (t *Tx) allocViaHelper(size uint32) (oid.OID, error) {
	o, sp, slot, err := t.h.allocReserve(size)
	if err != nil {
		return 0, err
	}
	if err := t.logHelper(o, size); err != nil {
		return 0, err
	}
	if err := t.h.storeSlabBit(sp, slot, true); err != nil {
		return 0, err
	}
	return o, nil
}

// allocHalfLogged logs on only one branch: the join demotes "logged"
// (must-analysis).
func (t *Tx) allocHalfLogged(size uint32, cond bool) error {
	o, sp, slot, err := t.h.allocReserve(size)
	if err != nil {
		return err
	}
	if cond {
		if err := t.logAppend(1, o, size); err != nil {
			return err
		}
	}
	return t.h.storeSlabBit(sp, slot, true) // want "occupancy bit published before the allocation was logged"
}

// freeClear clears a bit: the free path's record is applied at commit, so
// clearing is exempt.
func (t *Tx) freeClear(sp span, slot uint32) error {
	return t.h.storeSlabBit(sp, slot, false)
}

// allocUnlogged is not a Tx method (Heap.alloc-style non-transactional
// allocation legitimately skips the log): clean.
func (h *heap) allocUnlogged(size uint32) error {
	_, sp, slot, err := h.allocReserve(size)
	if err != nil {
		return err
	}
	return h.storeSlabBit(sp, slot, true)
}

// freeHeadOff mirrors Pool.freeHeadOff; the free-list-head rule matches
// the accessor by name.
func freeHeadOff(class int) uint32 { return uint32(class) * 8 }

// carveGood persists the span header before linking it.
func carveGood(h *pmem.Heap, r pmem.Ref, p *pmem.Pool, base uint32, class int) error {
	if err := h.Persist(p.OID(base), 64); err != nil {
		return err
	}
	return r.Store64(freeHeadOff(class), uint64(base), isa.RZ)
}

// carveBad publishes the head first: a crash leaves the head pointing at
// an unpersisted span.
func carveBad(r pmem.Ref, base uint32, class int) error {
	return r.Store64(freeHeadOff(class), uint64(base), isa.RZ) // want "free-list head published before the span header was persisted"
}
