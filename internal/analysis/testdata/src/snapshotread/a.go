// Fixture for the snapshotread analyzer: //potlint:snapshot-read-annotated
// functions stay latch-free and read-only; annotated callees are trusted;
// plain struct-field mutexes are internal and allowed; the latched fallback
// is suppressed line-by-line with //potlint:allow.
package snapshotread

import (
	"sync"
	"sync/atomic"

	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// goodRead is the honest protocol: pin, read, unpin. Clean.
//
//potlint:snapshot-read
func goodRead(sh *pmem.Sharded, word *uint64) uint64 {
	pin := sh.Pin()
	if pin == nil {
		return 0
	}
	v := atomic.LoadUint64(word)
	sh.Unpin(pin)
	return v
}

// lockedRead takes a shard lock — the seeded latched-read violation.
//
//potlint:snapshot-read
func lockedRead(sh *pmem.Sharded, id oid.PoolID) {
	sh.RLockPool(id) // want "shard lock acquired in //potlint:snapshot-read function lockedRead"
	sh.RUnlockPool(id)
}

// lockAllRead takes the store-wide read lock.
//
//potlint:snapshot-read
func lockAllRead(sh *pmem.Sharded) {
	sh.RLockAll() // want "shard lock acquired in //potlint:snapshot-read function lockAllRead"
	sh.RUnlockAll()
}

// readLatch mirrors a *Latch*-named table: its Lock/RLock classify as
// latch acquisitions.
type readLatch struct{ mu sync.RWMutex }

func (l *readLatch) RLock()   { l.mu.RLock() }
func (l *readLatch) RUnlock() { l.mu.RUnlock() }

// latchedRead acquires a latch.
//
//potlint:snapshot-read
func latchedRead(l *readLatch) {
	l.RLock() // want "latch acquired in //potlint:snapshot-read function latchedRead"
	l.RUnlock()
}

// mutatingRead opens a mutating sharded transaction.
//
//potlint:snapshot-read
func mutatingRead(sh *pmem.Sharded, pools []oid.PoolID) error {
	return sh.Update(pools, func() error { return nil }) // want "mutating Update transaction opened in //potlint:snapshot-read function mutatingRead"
}

// viewingRead opens a latched View section — read-only but not latch-free.
//
//potlint:snapshot-read
func viewingRead(sh *pmem.Sharded, pools []oid.PoolID) error {
	return sh.View(pools, func() error { return nil }) // want "latched View section opened in //potlint:snapshot-read function viewingRead"
}

// beginRead opens a heap transaction directly.
//
//potlint:snapshot-read
func beginRead(h *pmem.Heap, p *pmem.Pool) (*pmem.Tx, error) {
	return h.Begin(p) // want "mutating heap transaction opened in //potlint:snapshot-read function beginRead"
}

// latchedHelper is an unannotated helper with balanced shard locks; calling
// it from a snapshot-read function is flagged interprocedurally.
func latchedHelper(sh *pmem.Sharded, id oid.PoolID) {
	sh.RLockPool(id)
	sh.RUnlockPool(id)
}

//potlint:snapshot-read
func indirectLocked(sh *pmem.Sharded, id oid.PoolID) {
	latchedHelper(sh, id) // want "calls latchedHelper which takes shard or latch locks, in //potlint:snapshot-read function indirectLocked"
}

// trustedInner / trustedOuter: annotated callees are trusted, so
// composition of snapshot-read functions is clean.
//
//potlint:snapshot-read
func trustedInner(sh *pmem.Sharded) *pmem.PinSlot { return sh.Pin() }

//potlint:snapshot-read
func trustedOuter(sh *pmem.Sharded) {
	if pin := trustedInner(sh); pin != nil {
		sh.Unpin(pin)
	}
}

// mirror mimics the version mirror's bucket shape: a plain struct-field
// mutex guards a short internal section — not shard state, allowed.
type mirror struct {
	mu   sync.Mutex
	head *mirrorEntry
}

type mirrorEntry struct {
	o    oid.OID
	next *mirrorEntry
}

//potlint:snapshot-read
func (m *mirror) lookup(o oid.OID) *mirrorEntry {
	m.mu.Lock()
	e := m.head
	for e != nil && e.o != o {
		e = e.next
	}
	m.mu.Unlock()
	return e
}

// fallbackRead keeps a latched fallback for mirror misses behind a
// line-level allowance — the KV entry-point pattern.
//
//potlint:snapshot-read
func fallbackRead(sh *pmem.Sharded, id oid.PoolID) {
	if pin := sh.Pin(); pin != nil {
		sh.Unpin(pin)
		return
	}
	sh.RLockPool(id) //potlint:allow snapshotread latched fallback on mirror miss or pin exhaustion
	sh.RUnlockPool(id)
}
