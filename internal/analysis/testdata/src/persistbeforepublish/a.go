// Package fixture exercises the persistbeforepublish analyzer: a freshly
// allocated ObjectID may only be linked into a reachable object once the
// new object is durable (Persist) or the link target is undo-logged
// (Touch, so commit persists both sides).
package fixture

import (
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
)

const nodeBytes = 24

// publishBad links a fresh node whose contents may still sit in the cache
// hierarchy: a crash leaves a reachable node with garbage fields.
func publishBad(ctx pds.Ctx, parent oid.OID) error {
	n, err := ctx.Alloc(1, nodeBytes)
	if err != nil {
		return err
	}
	pref, err := ctx.Heap().Deref(parent, isa.RZ)
	if err != nil {
		return err
	}
	return pref.Store64(8, uint64(n), isa.RZ) // want "ObjectID n is published before its contents are durable"
}

// publishPersisted makes the node durable before linking it.
func publishPersisted(ctx pds.Ctx, parent oid.OID) error {
	n, err := ctx.Alloc(1, nodeBytes)
	if err != nil {
		return err
	}
	if err := ctx.Heap().Persist(n, nodeBytes); err != nil {
		return err
	}
	pref, err := ctx.Heap().Deref(parent, isa.RZ)
	if err != nil {
		return err
	}
	return pref.Store64(8, uint64(n), isa.RZ)
}

// publishLogged snapshots the link target instead: transaction commit then
// persists both the new node (its alloc record) and the link.
func publishLogged(ctx pds.Ctx, parent oid.OID) error {
	n, err := ctx.Alloc(1, nodeBytes)
	if err != nil {
		return err
	}
	if err := ctx.Touch(parent, nodeBytes); err != nil {
		return err
	}
	pref, err := ctx.Heap().Deref(parent, isa.RZ)
	if err != nil {
		return err
	}
	return pref.Store64(8, uint64(n), isa.RZ)
}

// anchorBad publishes a fresh node through an anchor cell with neither a
// persist nor a snapshot of the cell.
func anchorBad(ctx pds.Ctx, c pds.Cell) error {
	n, err := ctx.Alloc(1, nodeBytes)
	if err != nil {
		return err
	}
	return c.Set(n, pmem.Word{}) // want "ObjectID n is published before its contents are durable"
}

// anchorPersisted persists the node before swinging the anchor.
func anchorPersisted(ctx pds.Ctx, c pds.Cell) error {
	n, err := ctx.Alloc(1, nodeBytes)
	if err != nil {
		return err
	}
	if err := ctx.Heap().Persist(n, nodeBytes); err != nil {
		return err
	}
	return c.Set(n, pmem.Word{})
}

// anchorLogged snapshots the anchor cell instead.
func anchorLogged(ctx pds.Ctx, c pds.Cell) error {
	n, err := ctx.Alloc(1, nodeBytes)
	if err != nil {
		return err
	}
	if err := ctx.Touch(c.OID(), 8); err != nil {
		return err
	}
	return c.Set(n, pmem.Word{})
}

// relink stores a parameter OID: its provenance (and durability) is the
// caller's business, so it is not checked.
func relink(ctx pds.Ctx, parent, child oid.OID) error {
	pref, err := ctx.Heap().Deref(parent, isa.RZ)
	if err != nil {
		return err
	}
	return pref.Store64(8, uint64(child), isa.RZ)
}

// rewriteBad persists the node, then dirties it again before publishing:
// the earlier persist no longer covers the contents.
func rewriteBad(ctx pds.Ctx, parent oid.OID) error {
	h := ctx.Heap()
	n, err := ctx.Alloc(1, nodeBytes)
	if err != nil {
		return err
	}
	if err := h.Persist(n, nodeBytes); err != nil {
		return err
	}
	nref, err := h.Deref(n, isa.RZ)
	if err != nil {
		return err
	}
	if err := nref.Store64(0, 42, isa.RZ); err != nil {
		return err
	}
	pref, err := h.Deref(parent, isa.RZ)
	if err != nil {
		return err
	}
	return pref.Store64(8, uint64(n), isa.RZ) // want "ObjectID n is published before its contents are durable"
}
