// Package fixture exercises the refescape analyzer: pmem.Ref values are
// transient views into mapped pool memory and must not escape the API
// surface or outlive heap invalidation points.
package fixture

import (
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// LeakRef hands a raw view across the package boundary.
func LeakRef(h *pmem.Heap, o oid.OID) (pmem.Ref, error) { // want "exported function LeakRef returns a pmem.Ref"
	return h.Deref(o, isa.RZ)
}

// internalRef is unexported: the package owns the view's lifetime.
func internalRef(h *pmem.Heap, o oid.OID) (pmem.Ref, error) {
	return h.Deref(o, isa.RZ)
}

var cachedRef pmem.Ref

// stashGlobal parks a view in a package-level variable, where it outlives
// any pool mapping.
func stashGlobal(h *pmem.Heap, o oid.OID) error {
	r, err := internalRef(h, o)
	if err != nil {
		return err
	}
	cachedRef = r // want "pmem.Ref stored in package-level variable cachedRef"
	return nil
}

// Session is exported, so its Ref-typed field is visible API surface.
type Session struct {
	View pmem.Ref
	Obj  oid.OID
}

// NewSession leaks a view through a composite literal of an exported type.
func NewSession(h *pmem.Heap, o oid.OID) (*Session, error) {
	r, err := internalRef(h, o)
	if err != nil {
		return nil, err
	}
	return &Session{View: r, Obj: o}, nil // want "pmem.Ref stored in exported field View"
}

func rebindSession(h *pmem.Heap, s *Session, o oid.OID) error {
	r, err := internalRef(h, o)
	if err != nil {
		return err
	}
	s.View = r // want "pmem.Ref stored in exported field s.View"
	return nil
}

// cursor is unexported: a private per-operation ref cache (the rbt idiom)
// is allowed.
type cursor struct {
	ref pmem.Ref
}

func (c *cursor) bind(h *pmem.Heap, o oid.OID) error {
	r, err := internalRef(h, o)
	if err != nil {
		return err
	}
	c.ref = r
	return nil
}

// useAfterAbort keeps using a view across TxAbort, which may have moved or
// unmapped the object.
func useAfterAbort(h *pmem.Heap, o oid.OID) (uint64, error) {
	r, err := h.Deref(o, isa.RZ)
	if err != nil {
		return 0, err
	}
	if err := h.TxAbort(); err != nil {
		return 0, err
	}
	w, err := r.Load64(0) // want "pmem.Ref r used after the heap was closed, crashed, aborted, or recovered"
	if err != nil {
		return 0, err
	}
	return w.V, nil
}

// rederef re-derives the view after the invalidation point.
func rederef(h *pmem.Heap, o oid.OID) (uint64, error) {
	r, err := h.Deref(o, isa.RZ)
	if err != nil {
		return 0, err
	}
	if err := h.TxAbort(); err != nil {
		return 0, err
	}
	r, err = h.Deref(o, isa.RZ)
	if err != nil {
		return 0, err
	}
	w, err := r.Load64(0)
	if err != nil {
		return 0, err
	}
	return w.V, nil
}
