// Fixture for the //potlint:allow suppression directive (exercised by
// TestSuppressions directly rather than through want comments, because an
// allow directive is itself a comment and cannot share a line with a want
// expectation).
package suppress

// grow keeps a deliberate amortized append: the allow silences the
// noalloc finding on its line.
//
//potlint:noalloc
func grow(dst []byte, b byte) []byte {
	dst = append(dst, b) //potlint:allow noalloc amortized doubling
	return dst
}

// fine has no finding, so its allow is stale and reported as unused.
//
//potlint:noalloc
func fine(a, b int) int {
	//potlint:allow noalloc stale allowance
	return a + b
}

// missing suppresses a real finding but omits the mandatory reason.
//
//potlint:noalloc
func missing(dst []byte, b byte) []byte {
	dst = append(dst, b) //potlint:allow noalloc
	return dst
}
