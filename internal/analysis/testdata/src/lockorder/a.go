// Fixture for the lockorder analyzer: shard locks one set at a time,
// latches before shard locks, no direct mutex ops on sharded state outside
// the owner's locking helpers.
package lockorder

import (
	"sync"

	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// table is sharded state: a slice of latches behind locking helpers.
type table struct {
	mus []sync.RWMutex
}

// lockSlot is a designated locking helper ("lock" in the name): allowed.
func (t *table) lockSlot(i int) { t.mus[i].Lock() }

// unlockSlot is also a helper.
func (t *table) unlockSlot(i int) { t.mus[i].Unlock() }

// bump is not a locking helper: direct ops on the sharded slice are
// flagged.
func (t *table) bump(i int) {
	t.mus[i].Lock()   // want "direct mutex operation on sharded state of table"
	t.mus[i].Unlock() // want "direct mutex operation on sharded state of table"
}

// okSequential releases before re-acquiring: clean.
func okSequential(s *pmem.Sharded, a, b oid.PoolID) {
	s.LockPool(a)
	s.UnlockPool(a)
	s.LockPool(b)
	s.UnlockPool(b)
}

// doubleShard holds one shard lock while taking another: ABBA risk.
func doubleShard(s *pmem.Sharded, a, b oid.PoolID) {
	s.LockPool(a)
	s.LockPool(b) // want "shard lock acquired while a shard lock is already held"
	s.UnlockPool(b)
	s.UnlockPool(a)
}

// acquireHelper leaves a shard lock held: its summary says so.
func acquireHelper(s *pmem.Sharded, id oid.PoolID) { s.LockPool(id) }

// viaHelper double-acquires through the helper — caught interprocedurally.
func viaHelper(s *pmem.Sharded, a, b oid.PoolID) {
	acquireHelper(s, a)
	acquireHelper(s, b) // want "shard lock acquired while a shard lock is already held"
	s.UnlockPool(b)
	s.UnlockPool(a)
}

// scopedUnderShard opens a scoped view while holding a shard lock: the
// scoped helper re-acquires shard locks internally.
func scopedUnderShard(s *pmem.Sharded, id oid.PoolID, pools []oid.PoolID) error {
	s.LockPool(id)
	defer s.UnlockPool(id)
	return s.View(pools, func() error { return nil }) // want "shard lock acquired while a shard lock is already held"
}

// latchUnderShard inverts the documented order (latches first).
func latchUnderShard(s *pmem.Sharded, lt *pmem.LatchTable, id oid.PoolID, o oid.OID) {
	s.LockPool(id)
	defer s.UnlockPool(id)
	defer lt.Lock(o)() // want "latch acquired while holding a shard lock"
}

// latchThenShard is the sanctioned order: clean.
func latchThenShard(s *pmem.Sharded, lt *pmem.LatchTable, id oid.PoolID, o oid.OID) {
	u := lt.Lock(o)
	s.LockPool(id)
	s.UnlockPool(id)
	u()
}

// branchMerge: a lock held on only one branch still counts after the join
// (may-analysis).
func branchMerge(s *pmem.Sharded, a, b oid.PoolID, cond bool) {
	if cond {
		s.LockPool(a)
	}
	s.LockPool(b) // want "shard lock acquired while a shard lock is already held"
	s.UnlockPool(b)
	if cond {
		s.UnlockPool(a)
	}
}
