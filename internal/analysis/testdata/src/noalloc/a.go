// Fixture for the noalloc analyzer: //potlint:noalloc-annotated functions
// contain no allocating constructs; error construction is exempt; deliberate
// amortized growth is suppressed with //potlint:allow.
package noalloc

import "fmt"

// copyInto has no allocating constructs.
//
//potlint:noalloc
func copyInto(dst *[16]byte, src []byte) int {
	return copy(dst[:], src)
}

// growBad appends on the hot path — the seeded wire-path violation.
//
//potlint:noalloc
func growBad(buf []byte, extra byte) []byte {
	buf = append(buf, extra) // want "append may grow its backing array"
	return buf
}

// makeBad allocates outright.
//
//potlint:noalloc
func makeBad(n int) []byte {
	return make([]byte, n) // want "make allocates"
}

// concatBad builds a string.
//
//potlint:noalloc
func concatBad(a, b string) string {
	return a + b // want "string concatenation allocates"
}

// closureBad captures into a heap-allocated closure.
//
//potlint:noalloc
func closureBad(n int) func() int {
	return func() int { return n } // want "function literal"
}

// boxBad boxes an int into an interface parameter.
//
//potlint:noalloc
func boxBad(n int) {
	sink(n) // want "argument boxed into an interface parameter"
}

func sink(v any) { _ = v }

// convBad converts between string and []byte.
//
//potlint:noalloc
func convBad(s string) []byte {
	return []byte(s) // want "string to \\[\\]byte"
}

// errPathOK: error construction is the cold failure path and is exempt,
// including the boxing of Errorf's arguments.
//
//potlint:noalloc
func errPathOK(n int) error {
	if n < 0 {
		return fmt.Errorf("negative length %d", n)
	}
	return nil
}

// callsAllocator calls a module function whose summary says it allocates.
//
//potlint:noalloc
func callsAllocator(n int) []int {
	return build(n) // want "calls build which allocates"
}

func build(n int) []int { return make([]int, n) }

// callsAnnotated trusts an annotated callee (checked on its own).
//
//potlint:noalloc
func callsAnnotated(dst *[16]byte, src []byte) int {
	return copyInto(dst, src)
}

// suppressedGrowth keeps a deliberate amortized append under an allow
// directive: no finding.
//
//potlint:noalloc
func suppressedGrowth(dst []byte, b byte) []byte {
	dst = append(dst, b) //potlint:allow noalloc amortized growth of a caller-owned buffer
	return dst
}

// unannotated functions are not checked.
func unannotated(n int) []byte {
	return make([]byte, n)
}
