// Fixture for the latchdiscipline analyzer: slot sets sorted+deduplicated
// before acquisition, heap mutations in latch-owning types under the
// latch.
package latchdiscipline

import (
	"sort"
	"sync"

	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// table mirrors pmem.LatchTable: a slice of latches indexed by slot sets.
type table struct {
	mask uint64
	mus  []sync.RWMutex
}

func (t *table) slot(o oid.OID) int { return int(uint64(o) & t.mask) }

// slots is the good slot-set builder: sorted and deduplicated.
func (t *table) slots(oids []oid.OID) []int {
	idx := make([]int, 0, len(oids))
	for _, o := range oids {
		idx = append(idx, t.slot(o))
	}
	sort.Ints(idx)
	out := idx[:0]
	for i, s := range idx {
		if i == 0 || s != idx[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// slotsBad is slots with the sort removed — the seeded violation.
func (t *table) slotsBad(oids []oid.OID) []int {
	idx := make([]int, 0, len(oids))
	for _, o := range oids {
		idx = append(idx, t.slot(o))
	}
	return idx
}

// lock acquires in slots order: clean.
func (t *table) lock(oids []oid.OID) func() {
	idx := t.slots(oids)
	for _, s := range idx {
		t.mus[s].Lock()
	}
	return func() {
		for i := len(idx) - 1; i >= 0; i-- {
			t.mus[idx[i]].Unlock()
		}
	}
}

// lockBad draws slots from the unsorted builder: flagged at the
// acquisition.
func (t *table) lockBad(oids []oid.OID) {
	idx := t.slotsBad(oids)
	for _, s := range idx {
		t.mus[s].Lock() // want "drawn from an unsorted slot set"
	}
}

// lockManualSort re-establishes sortedness in the caller: clean.
func (t *table) lockManualSort(oids []oid.OID) {
	idx := t.slotsBad(oids)
	sort.Ints(idx)
	for _, s := range idx {
		t.mus[s].Lock()
	}
}

// lockAllAscending indexes by the range key, which ascends by
// construction: clean.
func (t *table) lockAllAscending() {
	for i := range t.mus {
		t.mus[i].Lock()
	}
}

// lockSlots acquires in argument order, so callers owe it a sorted set —
// the obligation is exported as a fact and enforced at call sites.
func (t *table) lockSlots(idx []int) {
	for _, s := range idx {
		t.mus[s].Lock()
	}
}

func useGood(t *table, oids []oid.OID) {
	t.lockSlots(t.slots(oids))
}

func useBad(t *table, oids []oid.OID) {
	t.lockSlots(t.slotsBad(oids)) // want "argument must be a sorted, deduplicated slot set"
}

// store owns a latch table: mutations must hold the latch.
type store struct {
	latches *pmem.LatchTable
	sh      *pmem.Sharded
	pool    *pmem.Pool
	anchor  oid.OID
}

// addGood latches before opening the transaction.
func (s *store) addGood() error {
	defer s.latches.Lock(s.anchor)()
	return s.sh.Tx(s.pool, nil, func(t *pmem.Tx) error { return nil })
}

// addBad mutates with no latch on the path.
func (s *store) addBad() error {
	return s.sh.Tx(s.pool, nil, func(t *pmem.Tx) error { return nil }) // want "heap mutation in a latch-owning type without holding the structure latch"
}

// readOK: views need no latch.
func (s *store) readOK() error {
	return s.sh.View([]oid.PoolID{s.pool.ID()}, func() error { return nil })
}

// addHalfLatched latches on only one branch: the join demotes to
// not-held (must-analysis).
func (s *store) addHalfLatched(cond bool) error {
	var u func()
	if cond {
		u = s.latches.Lock(s.anchor)
		defer u()
	}
	return s.sh.Tx(s.pool, nil, func(t *pmem.Tx) error { return nil }) // want "heap mutation in a latch-owning type without holding the structure latch"
}
