// Package fixture exercises the touchbeforestore analyzer: in-place
// stores to persistent objects under a pds.Ctx need a dominating
// Ctx.Touch/TxAddRange snapshot unless the object is fresh.
package fixture

import (
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
)

const nodeBytes = 24

// insertBad stores in place with no snapshot: an abort cannot undo it.
func insertBad(ctx pds.Ctx, o oid.OID) error {
	ref, err := ctx.Heap().Deref(o, isa.RZ)
	if err != nil {
		return err
	}
	return ref.Store64(0, 7, isa.RZ) // want "store to persistent object o without a preceding Ctx.Touch"
}

// insertGood snapshots before the store.
func insertGood(ctx pds.Ctx, o oid.OID) error {
	if err := ctx.Touch(o, nodeBytes); err != nil {
		return err
	}
	ref, err := ctx.Heap().Deref(o, isa.RZ)
	if err != nil {
		return err
	}
	return ref.Store64(0, 7, isa.RZ)
}

// branchBad only snapshots on one path, so the store is not covered.
func branchBad(ctx pds.Ctx, o oid.OID, flag bool) error {
	if flag {
		if err := ctx.Touch(o, nodeBytes); err != nil {
			return err
		}
	}
	ref, err := ctx.Heap().Deref(o, isa.RZ)
	if err != nil {
		return err
	}
	return ref.Store64(0, 7, isa.RZ) // want "store to persistent object o without a preceding Ctx.Touch"
}

// allocGood writes into a fresh object: the allocation itself rolls back
// on abort and the object is unreachable until published, so no snapshot
// is needed.
func allocGood(ctx pds.Ctx, key uint64) (oid.OID, error) {
	n, err := ctx.Alloc(key, nodeBytes)
	if err != nil {
		return n, err
	}
	ref, err := ctx.Heap().Deref(n, isa.RZ)
	if err != nil {
		return n, err
	}
	return n, ref.Store64(0, key, isa.RZ)
}

// snapshot always touches o, so callers may rely on it (exported as a
// fact by the analyzer).
func snapshot(ctx pds.Ctx, o oid.OID) error {
	return ctx.Touch(o, nodeBytes)
}

// helperGood delegates the snapshot to a helper.
func helperGood(ctx pds.Ctx, o oid.OID) error {
	if err := snapshot(ctx, o); err != nil {
		return err
	}
	ref, err := ctx.Heap().Deref(o, isa.RZ)
	if err != nil {
		return err
	}
	return ref.Store64(8, 9, isa.RZ)
}

// anchorBad swings an anchor cell without snapshotting it.
func anchorBad(ctx pds.Ctx, c pds.Cell, v oid.OID) error {
	return c.Set(v, pmem.Word{}) // want "Cell.Set on c without a preceding Ctx.Touch"
}

// anchorGood snapshots the cell first.
func anchorGood(ctx pds.Ctx, c pds.Cell, v oid.OID) error {
	if err := ctx.Touch(c.OID(), 8); err != nil {
		return err
	}
	return c.Set(v, pmem.Word{})
}

// loopGood mirrors the tree-descent idiom: Touch and store in the same
// iteration.
func loopGood(ctx pds.Ctx, o oid.OID, n int) error {
	for i := 0; i < n; i++ {
		if err := ctx.Touch(o, nodeBytes); err != nil {
			return err
		}
		ref, err := ctx.Heap().Deref(o, isa.RZ)
		if err != nil {
			return err
		}
		if err := ref.Store64(0, uint64(i), isa.RZ); err != nil {
			return err
		}
	}
	return nil
}

// staleTouchBad re-binds the variable after the snapshot: the touch no
// longer covers the object being stored to.
func staleTouchBad(ctx pds.Ctx, a, b oid.OID) error {
	o := a
	if err := ctx.Touch(o, nodeBytes); err != nil {
		return err
	}
	o = b
	ref, err := ctx.Heap().Deref(o, isa.RZ)
	if err != nil {
		return err
	}
	return ref.Store64(0, 7, isa.RZ) // want "store to persistent object o without a preceding Ctx.Touch"
}
