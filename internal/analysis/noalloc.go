package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NoAlloc statically backs the 0-allocs/op benchmark gates (TestServeAllocs
// and friends): a function whose doc comment carries the line
//
//	//potlint:noalloc
//
// must not contain allocating constructs — make/new, append (growth),
// slice/map/escaping composite literals, function literals (closure
// capture), string concatenation, string<->[]byte conversions, interface
// boxing at call sites, go statements, fmt.Sprint* — and must not call a
// module function whose summary says it allocates (annotated callees are
// trusted: they are themselves checked).
//
// Error construction is exempt: by convention the failure path of a hot
// function may allocate (it is cold), so constructs inside an `err != nil`
// branch, inside a call whose result type is error (fmt.Errorf, wrapped
// constructors) or inside a panic argument are not flagged. Amortized
// growth a function deliberately keeps (a reused buffer's rare doubling)
// is suppressed line-by-line with `//potlint:allow noalloc <reason>`.
var NoAlloc = &Analyzer{
	Name:     "noalloc",
	Doc:      "check //potlint:noalloc-annotated functions contain no allocating constructs and call nothing that allocates",
	Requires: []*Analyzer{Summaries},
	Run:      runNoAlloc,
}

func runNoAlloc(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		if !hasNoAllocDirective(fd) {
			continue
		}
		for _, f := range scanAllocs(pass.TypesInfo, fd, func(fn *types.Func) *FuncSummary { return pass.Summary(fn) }) {
			pass.Reportf(f.pos, "%s in //potlint:noalloc function %s", f.what, fd.Name.Name)
		}
	}
	return nil
}

// hasNoAllocDirective reports whether fd's doc comment contains the
// //potlint:noalloc directive.
func hasNoAllocDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//potlint:noalloc") {
			return true
		}
	}
	return false
}

// allocFinding is one allocating construct found by scanAllocs.
type allocFinding struct {
	pos  token.Pos
	what string
}

// scanAllocs returns the allocating constructs in fd's body, excluding the
// error-path exemptions. summaryOf supplies callee summaries for the
// "calls something that allocates" rule (may be nil).
func scanAllocs(info *types.Info, fd *ast.FuncDecl, summaryOf func(*types.Func) *FuncSummary) []allocFinding {
	exempt := exemptRanges(info, fd.Body)
	isExempt := func(pos token.Pos) bool {
		for _, r := range exempt {
			if pos >= r[0] && pos < r[1] {
				return true
			}
		}
		return false
	}

	var out []allocFinding
	add := func(pos token.Pos, what string) {
		if !isExempt(pos) {
			out = append(out, allocFinding{pos, what})
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			add(n.Pos(), "function literal (closure capture) allocates")
			return false // one finding for the literal; its body runs elsewhere
		case *ast.GoStmt:
			add(n.Pos(), "go statement allocates a goroutine")
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				add(n.Pos(), "slice literal allocates")
			case *types.Map:
				add(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					add(n.Pos(), "address of composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) {
				add(n.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info.TypeOf(n.Lhs[0])) {
				add(n.Pos(), "string concatenation allocates")
			}
		case *ast.CallExpr:
			scanCall(info, n, add, summaryOf)
		}
		return true
	})
	return out
}

// scanCall applies the call-shaped rules: builtins, conversions, fmt
// string formatting, interface boxing of arguments, and allocating module
// callees.
func scanCall(info *types.Info, call *ast.CallExpr, add func(token.Pos, string), summaryOf func(*types.Func) *FuncSummary) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				add(call.Pos(), "make allocates")
			case "new":
				add(call.Pos(), "new allocates")
			case "append":
				add(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}
	// Conversions: string <-> []byte/[]rune, and boxing conversions to an
	// interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := info.TypeOf(call.Args[0])
		switch {
		case isStringType(dst) && isByteOrRuneSlice(src):
			add(call.Pos(), "[]byte/[]rune to string conversion allocates")
		case isByteOrRuneSlice(dst) && isStringType(src):
			add(call.Pos(), "string to []byte/[]rune conversion allocates")
		case types.IsInterface(dst) && src != nil && !types.IsInterface(src) && !isNilType(src):
			add(call.Pos(), "conversion boxes a value into an interface")
		}
		return
	}

	f := callee(info, call)
	if f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		switch f.Name() {
		case "Sprintf", "Sprint", "Sprintln":
			add(call.Pos(), "fmt string formatting allocates")
		}
	}

	// Interface boxing of concrete arguments.
	if sig, ok := info.TypeOf(call.Fun).(*types.Signature); ok {
		n := sig.Params().Len()
		for i, arg := range call.Args {
			var pt types.Type
			switch {
			case sig.Variadic() && i >= n-1:
				if call.Ellipsis.IsValid() {
					continue // passing a slice through, no boxing
				}
				pt = sig.Params().At(n - 1).Type().(*types.Slice).Elem()
			case i < n:
				pt = sig.Params().At(i).Type()
			}
			at := info.TypeOf(arg)
			if pt != nil && types.IsInterface(pt) && at != nil && !types.IsInterface(at) && !isNilType(at) {
				add(arg.Pos(), "argument boxed into an interface parameter")
			}
		}
	}

	// Allocating module callees (annotated ones are trusted).
	if f != nil && summaryOf != nil {
		if sum := summaryOf(f); sum != nil && sum.Allocates && !sum.NoAlloc {
			add(call.Pos(), "calls "+f.Name()+" which allocates ("+sum.AllocWhat+")")
		}
	}
}

// exemptRanges collects the source ranges where allocation is tolerated:
// error-path branches, calls constructing an error, and panic arguments.
func exemptRanges(info *types.Info, body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			switch errNilBranch(info, n.Cond) {
			case +1:
				out = append(out, [2]token.Pos{n.Body.Pos(), n.Body.End()})
			case -1:
				if n.Else != nil {
					out = append(out, [2]token.Pos{n.Else.Pos(), n.Else.End()})
				}
			}
		case *ast.CallExpr:
			if t := info.TypeOf(n); t != nil && !isNilType(t) && types.Implements(t, errorIface) {
				out = append(out, [2]token.Pos{n.Pos(), n.End()})
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "panic" {
					out = append(out, [2]token.Pos{n.Pos(), n.End()})
				}
			}
		}
		return true
	})
	return out
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8 || b.Kind() == types.Rune || b.Kind() == types.Int32)
}

func isNilType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}
