package analysis_test

import (
	"testing"

	"potgo/internal/analysis"
	"potgo/internal/analysis/analysistest"
)

func TestTouchBeforeStore(t *testing.T) {
	analysistest.Run(t, analysis.TouchBeforeStore, "touchbeforestore")
}

func TestPersistBeforePublish(t *testing.T) {
	analysistest.Run(t, analysis.PersistBeforePublish, "persistbeforepublish")
}

func TestRefEscape(t *testing.T) {
	analysistest.Run(t, analysis.RefEscape, "refescape")
}

func TestEmitBalance(t *testing.T) {
	analysistest.Run(t, analysis.EmitBalance, "emitbalance")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysis.LockOrder, "lockorder")
}

func TestLatchDiscipline(t *testing.T) {
	analysistest.Run(t, analysis.LatchDiscipline, "latchdiscipline")
}

func TestAllocOrder(t *testing.T) {
	analysistest.Run(t, analysis.AllocOrder, "allocorder")
}

func TestNoAlloc(t *testing.T) {
	analysistest.Run(t, analysis.NoAlloc, "noalloc")
}

func TestSnapshotRead(t *testing.T) {
	analysistest.Run(t, analysis.SnapshotRead, "snapshotread")
}

// TestTreeIsClean is the potlint gate in test form: the full suite must
// report nothing on the tree itself. If this fails, either real code broke
// a persistence invariant or an analyzer grew a false positive — both need
// fixing before merge.
func TestTreeIsClean(t *testing.T) {
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	paths, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("expand: %v", err)
	}
	for _, p := range paths {
		if _, err := loader.Load(p); err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
	}
	diags, err := analysis.Run(analysis.All(), loader.Packages())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	diags = analysis.FilterSuppressed(diags, loader.Fset, loader.Packages())
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", loader.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
