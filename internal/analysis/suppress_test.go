package analysis_test

import (
	"strings"
	"testing"

	"potgo/internal/analysis"
)

// TestSuppressions drives the //potlint:allow directive end to end on the
// suppress fixture: a matching allow silences its finding, a stale allow
// is reported as unused, and an allow without a reason is rejected.
func TestSuppressions(t *testing.T) {
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	const fixture = "potgo/internal/analysis/testdata/src/suppress"
	if _, err := loader.Load(fixture); err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{analysis.NoAlloc}, loader.Packages())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 2 {
		t.Fatalf("before filtering: got %d diagnostics, want 2 (the appends in grow and missing): %v", len(diags), diags)
	}
	diags = analysis.FilterSuppressed(diags, loader.Fset, loader.Packages())

	var got []string
	for _, d := range diags {
		if d.Pkg != fixture {
			t.Errorf("diagnostic outside fixture: %+v", d)
		}
		got = append(got, d.Analyzer+": "+d.Message)
	}
	if len(got) != 2 {
		t.Fatalf("after filtering: got %d diagnostics, want 2: %v", len(got), got)
	}
	if !strings.Contains(got[0], "unused suppression") || !strings.Contains(got[0], "suppress:") {
		t.Errorf("first diagnostic should be the unused suppression in fine, got %q", got[0])
	}
	if !strings.Contains(got[1], "needs a reason") {
		t.Errorf("second diagnostic should be the reasonless suppression in missing, got %q", got[1])
	}
}
