package analysis

import (
	"go/ast"
	"go/types"
)

// EmitBalance checks the CLWB/SFENCE pairing (paper §2.1.2): a CLWB only
// *starts* a write-back; durability is not ordered until an SFENCE
// retires. A function that emits cache-line write-backs and can return
// without a trailing fence silently hands its caller an unordered persist.
//
// The contract the analyzer enforces:
//
//   - a path that emits CLWB (Emitter.CLWB, or a *NoFence helper, or a
//     call to a function known to leak unfenced CLWBs) must reach SFence
//     (or Heap.Persist, which fences internally) before a non-error
//     return;
//   - functions whose name contains "NoFence" declare the unfenced
//     convention: they are exempt from reporting, but calls to them count
//     as emitting, so their callers inherit the obligation (tracked as a
//     fact across functions and packages);
//   - error-path returns are exempt: by convention a helper that fails
//     reports the error before reaching its emission tail;
//   - `if flag { ...SFence() }` guards are trusted when the then-branch
//     fences: the flag is assumed to be set exactly when CLWBs are
//     outstanding (the TxEnd pattern).
var EmitBalance = &Analyzer{
	Name: "emitbalance",
	Doc:  "check that every CLWB-emitting path fences (SFence/Persist) before returning, unless named *NoFence",
	Run:  runEmitBalance,
}

// ebFact marks a function that can return with unfenced CLWBs
// outstanding; calls to it count as CLWB emission at the call site.
type ebFact struct{}

// ebState: whether unfenced CLWBs may be outstanding on this path.
type ebState struct{ out bool }

func (s *ebState) Clone() State { c := *s; return &c }

// Merge is a may-analysis: outstanding on either branch is outstanding.
func (s *ebState) Merge(other State) State {
	s.out = s.out || other.(*ebState).out
	return s
}

type ebHooks struct {
	NopHooks
	pass   *Pass
	report bool
	leaked bool
}

func (h *ebHooks) OnCall(call *ast.CallExpr, st State) State {
	s := st.(*ebState)
	info := h.pass.TypesInfo
	switch classify(info, call) {
	case kCLWB, kPersistNoFence:
		s.out = true
	case kSFence, kPersist: // SFENCE orders all prior CLWBs, Persist fences internally
		s.out = false
	default:
		// Callees known (by fact) to leak unfenced CLWBs count as emission
		// here. The *NoFence naming convention needs no special case: a
		// NoFence helper that actually emits exports the fact itself.
		if f := callee(info, call); f != nil && h.pass.ImportObjectFact(f) != nil {
			s.out = true
		}
	}
	return s
}

func (h *ebHooks) OnReturn(ret *ast.ReturnStmt, st State, errPath bool) {
	if errPath || st == nil || !st.(*ebState).out {
		return
	}
	h.leaked = true
	if h.report {
		h.pass.Reportf(ret.Pos(),
			"return with emitted CLWBs not yet fenced; call SFence (or Heap.Persist) before returning, or adopt the NoFence naming convention so callers owe the fence")
	}
}

// AfterIf trusts the flag-guarded fence idiom: when CLWBs are outstanding
// and `if flag { ... SFence ... }` clears them in the then-branch with no
// else, the flag is assumed to track emission exactly (the TxEnd pattern),
// so the join is the fenced state.
func (h *ebHooks) AfterIf(stmt *ast.IfStmt, pre, thenSt, elseSt State) (State, bool) {
	if stmt.Else != nil || thenSt == nil {
		return nil, false
	}
	id, ok := ast.Unparen(stmt.Cond).(*ast.Ident)
	if !ok {
		return nil, false
	}
	t, okT := h.pass.TypesInfo.TypeOf(id).(*types.Basic)
	if !okT || t.Kind() != types.Bool {
		return nil, false
	}
	if pre.(*ebState).out && !thenSt.(*ebState).out {
		return thenSt, true
	}
	return nil, false
}

func runEmitBalance(pass *Pass) error {
	decls := funcDecls(pass.Files)
	// Fact fixpoint: leaking functions make their callers leak, so iterate
	// until no new facts appear (bounded by the call-chain depth).
	for i := 0; i < 4; i++ {
		changed := false
		for _, fd := range decls {
			if ebWalk(pass, fd, false) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fd := range decls {
		if !isNoFenceName(fd.Name.Name) {
			ebWalk(pass, fd, true)
		}
	}
	return nil
}

// ebWalk analyzes one function; in the fact pass (report=false) it exports
// the leak fact and reports whether a new fact appeared.
func ebWalk(pass *Pass, fd *ast.FuncDecl, report bool) bool {
	hooks := &ebHooks{pass: pass, report: report}
	out := WalkFunc(pass.TypesInfo, fd.Body, &ebState{}, hooks)
	if out != nil && out.(*ebState).out {
		hooks.leaked = true
		if report {
			pass.Reportf(fd.Body.Rbrace,
				"function end with emitted CLWBs not yet fenced; call SFence (or Heap.Persist) before returning, or adopt the NoFence naming convention so callers owe the fence")
		}
	}
	if report || !hooks.leaked {
		return false
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok || pass.ImportObjectFact(obj) != nil {
		return false
	}
	pass.ExportObjectFact(obj, &ebFact{})
	return true
}
