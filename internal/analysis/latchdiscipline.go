package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LatchDiscipline enforces the two latch-protocol rules from pmem/latch.go
// and objstore/multi.go:
//
//  1. Sorted acquisition: a set of slice-indexed locks (latch slots, shard
//     indices) is acquired in ascending order, which in this codebase means
//     the index set is sorted and deduplicated before the acquisition loop.
//     The analyzer tracks []int provenance through the flow: a slice is
//     "sorted" after sort.Ints (and friends) or when produced by a function
//     whose summary says it returns a sorted []int (LatchTable.slots,
//     Sharded.shardSet); ranging over an unsorted module-produced []int and
//     locking on the drawn value is flagged. A function that locks on
//     values drawn from a []int parameter (Sharded.lockShards) exports a
//     "needs sorted argument" fact instead, enforced at its call sites —
//     interprocedurally, through the FactStore. Range keys and plain loop
//     induction variables index ascending by construction and are allowed.
//  2. Mutation under latch: in methods of a type that owns a latch table
//     (a struct field whose type name contains "Latch"), a heap mutation —
//     opening a sharded Tx/Update or a Heap.Begin transaction — on a path
//     where no latch has been acquired is flagged. Reads (View) need no
//     latch; constructors are free functions in this codebase and are not
//     methods, so they are naturally exempt.
var LatchDiscipline = &Analyzer{
	Name:     "latchdiscipline",
	Doc:      "check latch slot sets are sorted+deduplicated before acquisition and heap mutations in latch-owning types hold the latch",
	Requires: []*Analyzer{Summaries},
	Run:      runLatchDiscipline,
}

// ldFact marks parameters that must receive sorted slot slices.
type ldFact struct {
	needsSorted map[int]bool // parameter index
}

// provenance of a range-drawn value variable.
type ldDrawn struct {
	kind  int // ldOK / ldBad / ldParam
	param *types.Var
}

const (
	ldOK    = iota // sorted source or ascending index
	ldBad          // known-unsorted module-produced []int
	ldParam        // drawn from a []int parameter: obligation moves to callers
)

type ldState struct {
	sorted   map[types.Object]bool    // []int vars established sorted
	unsorted map[types.Object]bool    // []int vars produced unsorted
	drawn    map[types.Object]ldDrawn // range value vars
	latched  bool                     // a latch has been acquired on this path
}

func newLdState() *ldState {
	return &ldState{
		sorted:   make(map[types.Object]bool),
		unsorted: make(map[types.Object]bool),
		drawn:    make(map[types.Object]ldDrawn),
	}
}

func (s *ldState) Clone() State {
	c := newLdState()
	c.latched = s.latched
	for k, v := range s.sorted {
		c.sorted[k] = v
	}
	for k, v := range s.unsorted {
		c.unsorted[k] = v
	}
	for k, v := range s.drawn {
		c.drawn[k] = v
	}
	return c
}

// Merge: sortedness must hold on every path (intersection), unsortedness
// may hold (union), drawn entries survive only when both paths agree, and
// a latch counts as held only when held on every path.
func (s *ldState) Merge(other State) State {
	o := other.(*ldState)
	for k := range s.sorted {
		if !o.sorted[k] {
			delete(s.sorted, k)
		}
	}
	for k, v := range o.unsorted {
		s.unsorted[k] = v
	}
	for k, v := range s.drawn {
		if ov, ok := o.drawn[k]; !ok || ov != v {
			delete(s.drawn, k)
		}
	}
	s.latched = s.latched && o.latched
	return s
}

func runLatchDiscipline(pass *Pass) error {
	decls := funcDecls(pass.Files)
	// Rounds 0–1 collect needs-sorted parameter facts (two rounds so a
	// fact can propagate one level of param-to-param forwarding within the
	// package); round 2 reports. Cross-package facts are already final:
	// packages run in dependency order.
	for round := 0; round < 3; round++ {
		for _, fd := range decls {
			h := &ldHooks{
				pass:       pass,
				fd:         fd,
				report:     round == 2,
				params:     paramIndexes(pass.TypesInfo, fd),
				latchOwner: latchOwningMethod(pass.TypesInfo, fd),
			}
			WalkFunc(pass.TypesInfo, fd.Body, newLdState(), h)
			h.exportNeeds()
		}
	}
	return nil
}

// paramIndexes maps fd's parameter objects to their positional index.
func paramIndexes(info *types.Info, fd *ast.FuncDecl) map[types.Object]int {
	out := make(map[types.Object]int)
	if fd.Type.Params == nil {
		return out
	}
	i := 0
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if o := info.Defs[name]; o != nil {
				out[o] = i
			}
			i++
		}
		if len(field.Names) == 0 {
			i++
		}
	}
	return out
}

// latchOwningMethod reports whether fd is a method of a struct type that
// owns a latch table (a field whose type name contains "Latch").
func latchOwningMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	st, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if p, ok := ft.(*types.Pointer); ok {
			ft = p.Elem()
		}
		if fn, ok := ft.(*types.Named); ok && strings.Contains(fn.Obj().Name(), "Latch") {
			return true
		}
	}
	return false
}

type ldHooks struct {
	NopHooks
	pass       *Pass
	fd         *ast.FuncDecl
	report     bool
	params     map[types.Object]int
	latchOwner bool
	needs      map[int]bool // needs-sorted params discovered this walk
}

// exportNeeds merges discovered parameter obligations into fd's fact.
func (h *ldHooks) exportNeeds() {
	if len(h.needs) == 0 {
		return
	}
	obj, ok := h.pass.TypesInfo.Defs[h.fd.Name].(*types.Func)
	if !ok {
		return
	}
	f, _ := h.pass.ImportObjectFact(obj).(*ldFact)
	if f == nil {
		f = &ldFact{needsSorted: make(map[int]bool)}
	}
	for i := range h.needs {
		f.needsSorted[i] = true
	}
	h.pass.ExportObjectFact(obj, f)
}

func (h *ldHooks) need(i int) {
	if h.needs == nil {
		h.needs = make(map[int]bool)
	}
	h.needs[i] = true
}

// isModuleIntSliceCall reports whether call's static callee is a module
// function returning []int, and whether its summary establishes
// sortedness.
func (h *ldHooks) isModuleIntSliceCall(call *ast.CallExpr) (isIntSlice, sorted bool) {
	f := callee(h.pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || !strings.HasPrefix(f.Pkg().Path(), "potgo/") {
		return false, false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false, false
	}
	sl, ok := sig.Results().At(0).Type().(*types.Slice)
	if !ok {
		return false, false
	}
	if b, ok := sl.Elem().(*types.Basic); !ok || b.Kind() != types.Int {
		return false, false
	}
	sum := h.pass.Summary(f)
	return true, sum != nil && sum.SortedInts
}

func (h *ldHooks) OnCall(call *ast.CallExpr, st State) State {
	s := st.(*ldState)
	info := h.pass.TypesInfo
	switch classify(info, call) {
	case kSortInts:
		if len(call.Args) > 0 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if o := objOf(info, id); o != nil {
					s.sorted[o] = true
					delete(s.unsorted, o)
				}
			}
		}
	case kLatchLock:
		s.latched = true
	case kMuLock:
		if t, ok := shardedMuTarget(info, call); ok {
			h.checkLockIndex(call, t.index, s)
		}
	case kShardScoped:
		if f := callee(info, call); f != nil && (f.Name() == "Tx" || f.Name() == "Update") {
			h.checkMutation(call, s)
		}
	case kHeapBegin:
		h.checkMutation(call, s)
	case kOther:
		if f := callee(info, call); f != nil {
			if sum := h.pass.Summary(f); sum != nil && sum.LatchEffect != LockNone && sum.LatchEffect != LockReleases {
				s.latched = true
			}
			if fact, _ := h.pass.facts.get(LatchDiscipline, f).(*ldFact); fact != nil {
				h.checkSortedArgs(call, fact, s)
			}
		}
	}
	return s
}

// checkMutation flags a heap mutation on a latch-free path in a
// latch-owning type's method.
func (h *ldHooks) checkMutation(call *ast.CallExpr, s *ldState) {
	if h.latchOwner && !s.latched && h.report {
		h.pass.Reportf(call.Pos(), "heap mutation in a latch-owning type without holding the structure latch; acquire the LatchTable latch first")
	}
}

// checkLockIndex applies rule 1 to the index expression of a slice-lock
// acquisition.
func (h *ldHooks) checkLockIndex(call *ast.CallExpr, index ast.Expr, s *ldState) {
	info := h.pass.TypesInfo
	switch e := ast.Unparen(index).(type) {
	case *ast.Ident:
		o := objOf(info, e)
		if o == nil {
			return
		}
		if d, ok := s.drawn[o]; ok {
			switch d.kind {
			case ldBad:
				if h.report {
					h.pass.Reportf(call.Pos(), "lock acquisition indexed by a value drawn from an unsorted slot set; sort and deduplicate the set before acquiring (ascending slot order)")
				}
			case ldParam:
				if i, ok := h.params[d.param]; ok {
					h.need(i)
				}
			}
		}
	case *ast.IndexExpr:
		// idx[i]-style: the slice itself must be sorted.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if o := objOf(info, id); o != nil {
				if s.unsorted[o] && h.report {
					h.pass.Reportf(call.Pos(), "lock acquisition indexed through an unsorted slot set; sort and deduplicate the set before acquiring (ascending slot order)")
				} else if i, ok := h.params[o]; ok && !s.sorted[o] {
					h.need(i)
				}
			}
		}
	}
}

// checkSortedArgs enforces a callee's needs-sorted parameter facts at the
// call site.
func (h *ldHooks) checkSortedArgs(call *ast.CallExpr, fact *ldFact, s *ldState) {
	info := h.pass.TypesInfo
	for i := range fact.needsSorted {
		if i >= len(call.Args) {
			continue
		}
		arg := ast.Unparen(call.Args[i])
		switch a := arg.(type) {
		case *ast.CallExpr:
			if isSlice, sorted := h.isModuleIntSliceCall(a); isSlice && !sorted && h.report {
				h.pass.Reportf(a.Pos(), "argument must be a sorted, deduplicated slot set (callee acquires locks in argument order)")
			}
		case *ast.Ident:
			o := objOf(info, a)
			if o == nil {
				continue
			}
			switch {
			case s.sorted[o]:
			case s.unsorted[o]:
				if h.report {
					h.pass.Reportf(a.Pos(), "argument must be a sorted, deduplicated slot set (callee acquires locks in argument order)")
				}
			default:
				if pi, ok := h.params[o]; ok {
					h.need(pi) // obligation forwards to this function's callers
				}
			}
		}
	}
}

// OnAssign re-derives []int provenance: assignment clears old facts, and a
// module call producing a []int marks the target sorted or unsorted
// according to the callee's summary.
func (h *ldHooks) OnAssign(lhs, rhs []ast.Expr, st State) State {
	s := st.(*ldState)
	if rhs == nil {
		// Range-variable and x++ assignments: OnRange already bound the
		// range variables' provenance; don't clear it here.
		return s
	}
	info := h.pass.TypesInfo
	for i, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok {
			continue
		}
		o := objOf(info, id)
		if o == nil {
			continue
		}
		delete(s.sorted, o)
		delete(s.unsorted, o)
		delete(s.drawn, o)
		if rhs == nil || i >= len(rhs) {
			continue
		}
		if call, ok := ast.Unparen(rhs[i]).(*ast.CallExpr); ok {
			if isSlice, sorted := h.isModuleIntSliceCall(call); isSlice {
				if sorted {
					s.sorted[o] = true
				} else {
					s.unsorted[o] = true
				}
			}
		}
	}
	return s
}

// OnRange binds the range variables' provenance: keys index ascending;
// values carry the sortedness of the ranged-over []int.
func (h *ldHooks) OnRange(x ast.Expr, key, value ast.Expr, st State) State {
	s := st.(*ldState)
	info := h.pass.TypesInfo
	if id, ok := key.(*ast.Ident); ok && id.Name != "_" {
		if o := objOf(info, id); o != nil {
			s.drawn[o] = ldDrawn{kind: ldOK}
		}
	}
	vid, ok := value.(*ast.Ident)
	if !ok || vid.Name == "_" {
		return s
	}
	vo := objOf(info, vid)
	if vo == nil {
		return s
	}
	if !isIntSliceType(info.TypeOf(x)) {
		return s
	}
	switch src := ast.Unparen(x).(type) {
	case *ast.Ident:
		o := objOf(info, src)
		switch {
		case o == nil:
		case s.sorted[o]:
			s.drawn[vo] = ldDrawn{kind: ldOK}
		case s.unsorted[o]:
			s.drawn[vo] = ldDrawn{kind: ldBad}
		default:
			if _, isParam := h.params[o]; isParam {
				if v, ok := o.(*types.Var); ok {
					s.drawn[vo] = ldDrawn{kind: ldParam, param: v}
				}
			}
		}
	case *ast.CallExpr:
		if isSlice, sorted := h.isModuleIntSliceCall(src); isSlice {
			if sorted {
				s.drawn[vo] = ldDrawn{kind: ldOK}
			} else {
				s.drawn[vo] = ldDrawn{kind: ldBad}
			}
		}
	}
	return s
}

// OnHavoc drops provenance for loop-assigned variables.
func (h *ldHooks) OnHavoc(assigned map[types.Object]bool, st State) State {
	s := st.(*ldState)
	for o := range assigned {
		delete(s.sorted, o)
		delete(s.unsorted, o)
		delete(s.drawn, o)
	}
	return s
}

func isIntSliceType(t types.Type) bool {
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().(*types.Basic)
	return ok && b.Kind() == types.Int
}
