package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Import paths of the packages whose API the analyzers understand. Fixture
// packages under testdata import the real packages, so matching on these
// paths works for both the tree and the tests.
const (
	pmemPath = "potgo/internal/pmem"
	pdsPath  = "potgo/internal/pds"
	emitPath = "potgo/internal/emit"
	oidPath  = "potgo/internal/oid"
)

// callKind classifies the API calls the persistence invariants are about.
type callKind int

const (
	kOther          callKind = iota
	kRefStore                // pmem.Ref.Store64 / WriteBytes
	kDeref                   // pmem.Heap.Deref
	kDirectRef               // pmem.Heap.DirectRef
	kAlloc                   // Heap.Alloc / Heap.TxAlloc / Ctx-shaped Alloc(key,size)
	kTouch                   // Ctx-shaped Touch(oid,size) / Heap.TxAddRange
	kPersist                 // Heap.Persist
	kPersistNoFence          // a *NoFence persist helper (CLWBs, no trailing fence)
	kCellSet                 // pds.Cell.Set
	kCellOID                 // pds.Cell.OID
	kFieldAt                 // oid.OID.FieldAt
	kCLWB                    // emit.Emitter.CLWB
	kSFence                  // emit.Emitter.SFence
	kInvalidate              // Heap.Close / Crash / TxAbort / Recover

	// Concurrency kinds (lockorder / latchdiscipline).
	kShardLock          // Sharded.LockPool / RLockPool — one pool's shard, unordered wrt others
	kShardUnlock        // Sharded.UnlockPool / RUnlockPool
	kShardLockOrdered   // Sharded.LockShardMask / RLockAll / lockAll / lockShards / rlockShards — ascending by construction
	kShardUnlockOrdered // Sharded.UnlockShardMask / RUnlockAll
	kShardScoped        // Sharded.View / Update / Tx — acquires and releases internally
	kLatchLock          // LatchTable.Lock / RLock (or a *Latch*-named type's Lock/RLock)
	kMuLock             // sync.Mutex/RWMutex Lock/RLock
	kMuUnlock           // sync.Mutex/RWMutex Unlock/RUnlock
	kSortInts           // sort.Ints / sort.Sort / slices.Sort* — establishes sortedness
	kHeapBegin          // Heap.Begin — opens a mutating transaction

	// Allocator write-ahead kinds (allocorder). These are matched by the
	// method-name convention (logAppend / storeSlabBit) rather than by
	// concrete type, so fixture copies of the allocator are analyzable.
	kLogAppend    // a durable undo/redo log append (record persisted before publish)
	kSlabBitStore // occupancy-bit read-modify-write (publishes a slot when set=true)
)

// callee resolves the static callee of a call, or nil (indirect calls,
// conversions, builtins).
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// recvTypeName unwraps pointers and returns the receiver's defining
// package path and type name ("" for interface methods without a named
// receiver type).
func recvTypeName(f *types.Func) (pkgPath, typeName string) {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		if t.Obj().Pkg() != nil {
			return t.Obj().Pkg().Path(), t.Obj().Name()
		}
		return "", t.Obj().Name()
	case *types.Interface:
		return "", ""
	}
	return "", ""
}

// namedAs reports whether t (possibly behind a pointer) is the named type
// pkgPath.name.
func namedAs(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == pkgPath && n.Obj().Name() == name
}

func isOIDType(t types.Type) bool  { return namedAs(t, oidPath, "OID") }
func isRefType(t types.Type) bool  { return namedAs(t, pmemPath, "Ref") }
func isCellType(t types.Type) bool { return namedAs(t, pdsPath, "Cell") }

// isTouchShaped reports whether f looks like Ctx.Touch: a method named
// Touch taking (oid.OID, uint32) — matching the pds.Ctx contract whatever
// concrete or interface type carries it.
func isTouchShaped(f *types.Func) bool {
	if f.Name() != "Touch" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 2 {
		return false
	}
	return isOIDType(sig.Params().At(0).Type())
}

// isAllocShaped reports whether f looks like Ctx.Alloc: a method named
// Alloc taking (uint64, uint32) and returning an OID first.
func isAllocShaped(f *types.Func) bool {
	if f.Name() != "Alloc" {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 2 || sig.Results().Len() < 1 {
		return false
	}
	return isOIDType(sig.Results().At(0).Type())
}

// classify maps a call to the API kind the analyzers care about.
func classify(info *types.Info, call *ast.CallExpr) callKind {
	f := callee(info, call)
	if f == nil {
		return kOther
	}
	pkg, typ := recvTypeName(f)
	switch {
	case pkg == "sync" && (typ == "Mutex" || typ == "RWMutex"):
		switch f.Name() {
		case "Lock", "RLock", "TryLock", "TryRLock":
			return kMuLock
		case "Unlock", "RUnlock":
			return kMuUnlock
		}
	case pkg == pmemPath && typ == "Sharded":
		switch f.Name() {
		case "LockPool", "RLockPool":
			return kShardLock
		case "UnlockPool", "RUnlockPool":
			return kShardUnlock
		case "LockShardMask", "RLockAll", "lockAll", "lockShards", "rlockShards":
			return kShardLockOrdered
		case "UnlockShardMask", "RUnlockAll":
			return kShardUnlockOrdered
		case "View", "Update", "Tx":
			return kShardScoped
		}
	case pkg == pmemPath && typ == "Ref":
		switch f.Name() {
		case "Store64", "WriteBytes":
			return kRefStore
		}
	case pkg == pmemPath && typ == "Heap":
		switch f.Name() {
		case "Begin":
			return kHeapBegin
		case "Deref":
			return kDeref
		case "DirectRef":
			return kDirectRef
		case "Alloc", "TxAlloc":
			return kAlloc
		case "TxAddRange":
			return kTouch
		case "Persist":
			return kPersist
		case "fence":
			// Heap.fence is the group-commit fence point: sequentially it is
			// a plain SFENCE; concurrently the committing goroutine either
			// leads (issuing one SFENCE that also covers follower CLWBs) or
			// waits for a leader whose fence is ordered after its own CLWBs.
			// Either way, by return every previously emitted CLWB is retired,
			// so it balances like SFence — no blanket suppression needed.
			return kSFence
		case "Close", "Crash", "TxAbort", "Recover":
			return kInvalidate
		}
		if isNoFenceName(f.Name()) {
			return kPersistNoFence
		}
	case pkg == pdsPath && typ == "Cell":
		switch f.Name() {
		case "Set":
			return kCellSet
		case "OID":
			return kCellOID
		}
	case pkg == oidPath && typ == "OID":
		if f.Name() == "FieldAt" {
			return kFieldAt
		}
	case pkg == emitPath && typ == "Emitter":
		switch f.Name() {
		case "CLWB":
			return kCLWB
		case "SFence":
			return kSFence
		}
	}
	// Shape and convention fallbacks, so fixture copies and future types
	// participate without a hardwired type list.
	switch f.Name() {
	case "logAppend":
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			return kLogAppend
		}
	case "storeSlabBit":
		if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
			return kSlabBitStore
		}
	case "Ints", "Sort", "Slice", "SortFunc", "Stable", "SortStableFunc":
		if p := f.Pkg(); p != nil && (p.Path() == "sort" || p.Path() == "slices") && sig_recvless(f) {
			return kSortInts
		}
	case "Lock", "RLock":
		if _, t := recvTypeName(f); strings.Contains(t, "Latch") || strings.Contains(t, "latch") {
			return kLatchLock
		}
	}
	if isTouchShaped(f) {
		return kTouch
	}
	if isAllocShaped(f) {
		return kAlloc
	}
	return kOther
}

// sig_recvless reports whether f is a plain function (no receiver).
func sig_recvless(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// callsNamed reports whether expression e contains a call to a function or
// method with the given name (used to recognise `Store64(p.freeHeadOff(c),
// ...)`-style free-list-head publications).
func callsNamed(info *types.Info, e ast.Expr, name string) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if f := callee(info, call); f != nil && f.Name() == name {
			found = true
		}
		return !found
	})
	return found
}

// muTarget describes the object a direct sync.Mutex/RWMutex operation is
// performed on, when the mutex is an element of (or a field of an element
// of) a slice — the "sharded state" shape:
//
//	lt.mus[s].Lock()        -> slice of mutexes   (latch table shape)
//	s.shards[i].mu.Lock()   -> slice of structs carrying a mutex (shard shape)
//
// owner is the named type whose field holds the slice (nil when the slice
// is not reached through a named struct's field), index is the index
// expression, and latchShaped distinguishes the two shapes above.
type muTarget struct {
	owner       *types.Named
	index       ast.Expr
	latchShaped bool
}

// shardedMuTarget matches the two sharded-state shapes on the receiver
// expression of a classified kMuLock/kMuUnlock call; ok=false for plain
// struct-field mutexes (`s.mu.Lock()`), which are not sharded state.
func shardedMuTarget(info *types.Info, call *ast.CallExpr) (muTarget, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return muTarget{}, false
	}
	recv := ast.Unparen(sel.X) // the mutex expression
	// Unwrap one field selection: shards[i].mu -> shards[i].
	if fieldSel, ok := recv.(*ast.SelectorExpr); ok {
		if idx, ok := ast.Unparen(fieldSel.X).(*ast.IndexExpr); ok {
			return muTarget{owner: sliceFieldOwner(info, idx.X), index: idx.Index}, true
		}
		return muTarget{}, false
	}
	if idx, ok := recv.(*ast.IndexExpr); ok {
		// mus[s] — a slice of mutexes directly.
		if t, ok := info.TypeOf(idx.X).(*types.Slice); ok {
			if namedAs(t.Elem(), "sync", "RWMutex") || namedAs(t.Elem(), "sync", "Mutex") {
				return muTarget{owner: sliceFieldOwner(info, idx.X), index: idx.Index, latchShaped: true}, true
			}
		}
	}
	return muTarget{}, false
}

// sliceFieldOwner resolves `x.f` (f a slice field) to x's named type.
func sliceFieldOwner(info *types.Info, e ast.Expr) *types.Named {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	t := info.TypeOf(sel.X)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// isNoFenceName reports whether a function name declares the unfenced
// convention ("persistNoFence", "FlushNoFence", ...).
func isNoFenceName(name string) bool {
	return strings.Contains(strings.ToLower(name), "nofence")
}

// canonOID renders an OID-producing expression to a canonical string used
// to match a Touch/Persist against a later store: parentheses are
// stripped and `X.FieldAt(off)` reduces to the canonical form of X, so a
// snapshot of a whole object covers stores to any of its fields.
func canonOID(info *types.Info, e ast.Expr) string {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if classify(info, call) == kFieldAt {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return canonOID(info, sel.X)
			}
		}
	}
	return types.ExprString(e)
}

// exprDeps collects the objects (variables) an expression mentions, used
// to invalidate canonical matches when a variable is reassigned.
func exprDeps(info *types.Info, e ast.Expr) map[types.Object]bool {
	deps := make(map[types.Object]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					deps[obj] = true
				}
			}
		}
		return true
	})
	return deps
}

// recvExpr returns the receiver expression of a method call (sel.X), or
// nil.
func recvExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// oidOperand unwraps integer conversions (uint64(x)) and returns the
// OID-typed operand being converted or used directly, or nil. This is how
// a "publishing store" is recognised: the stored value carries an
// ObjectID.
func oidOperand(info *types.Info, e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if isOIDType(info.TypeOf(e)) {
		return e
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	// A conversion T(x): the callee resolves to a type, not a function.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		arg := ast.Unparen(call.Args[0])
		if isOIDType(info.TypeOf(arg)) {
			return arg
		}
	}
	return nil
}

// funcDecls yields the function declarations of a package's files.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// ctxParam returns the first parameter of fd whose type carries the
// Ctx.Touch contract (a Touch(oid.OID, uint32) method), or nil. Functions
// with such a parameter operate under the pds transactional discipline.
func ctxParam(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		t := info.TypeOf(field.Type)
		if t == nil {
			continue
		}
		if hasTouchMethod(t) {
			if len(field.Names) > 0 {
				if v, ok := info.Defs[field.Names[0]].(*types.Var); ok {
					return v
				}
			}
		}
	}
	return nil
}

// hasTouchMethod reports whether t has a Touch(oid.OID, uint32) method in
// its method set.
func hasTouchMethod(t types.Type) bool {
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(tt, true, nil, "Touch")
		if f, ok := obj.(*types.Func); ok && isTouchShaped(f) {
			return true
		}
	}
	return false
}
