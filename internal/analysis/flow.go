package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The flow walker is the shared intra-procedural engine behind the
// analyzers: a forward abstract interpretation over the typed AST in
// evaluation order. It is deliberately simpler than an SSA CFG —
//
//   - if/switch/select branches are walked with cloned states and joined
//     with the analyzer's Merge;
//   - loop bodies are walked once after "havocking" (invalidating) every
//     variable the loop assigns, which soundly models facts established in
//     a previous iteration being stale;
//   - break/continue/goto end their path (the state at the jump is
//     dropped, which loses precision but never invents facts, because loop
//     exits already join with the pre-loop state);
//   - function literals are walked inline at their definition point and
//     joined with the fall-through state (a closure may or may not run);
//     return statements inside them do not count as returns of the
//     enclosing function;
//   - an if whose condition is `x != nil` (or `x == nil`) for an
//     error-typed x marks the corresponding branch as an error path, so
//     analyzers can exempt early error returns (by Go convention an
//     emission helper that fails has not emitted).
//
// Each analyzer supplies a State (its abstract domain) and hooks invoked
// at calls, assignments and returns.

// State is an analyzer-defined abstract state. A nil State means
// "unreachable".
type State interface {
	// Clone returns an independent copy.
	Clone() State
	// Merge joins another reachable state into the receiver and returns
	// the result (the receiver may be mutated).
	Merge(State) State
}

// FlowHooks receives the walker's events. Embed NopHooks for defaults.
type FlowHooks interface {
	// OnCall fires after a call's function and arguments were walked.
	OnCall(call *ast.CallExpr, st State) State
	// OnAssign fires for assignments and declarations after the
	// right-hand sides were walked. rhs is nil for x++/x--.
	OnAssign(lhs []ast.Expr, rhs []ast.Expr, st State) State
	// OnReturn fires at each return of the function being walked.
	// errPath is true when the return sits under an `err != nil` guard.
	OnReturn(ret *ast.ReturnStmt, st State, errPath bool)
	// OnHavoc fires at loop entry with the set of variables the loop
	// body assigns; the hook must drop facts depending on them.
	OnHavoc(assigned map[types.Object]bool, st State) State
	// AfterIf may replace the default branch join. Returning ok=false
	// uses the default merge.
	AfterIf(stmt *ast.IfStmt, pre, thenSt, elseSt State) (State, bool)
	// OnDefer fires at a defer statement with the deferred call, after its
	// function and arguments were walked. The deferred call itself runs at
	// function exit, so OnCall is deliberately not fired for it — but when
	// the deferred expression is an immediate invocation of another call's
	// result (`defer lt.Lock(o)()`), the inner call IS walked as an
	// ordinary expression and receives OnCall at the defer site. OnDefer
	// lets lock-discipline analyzers record scheduled releases.
	OnDefer(call *ast.CallExpr, st State) State
	// OnRange fires at a range statement after the ranged-over expression
	// was walked and before the body, exposing the source expression and
	// the key/value variables (either may be nil). It runs before the
	// generic OnAssign for the same variables, so hooks can bind a range
	// value variable to the slice it is drawn from.
	OnRange(x ast.Expr, key, value ast.Expr, st State) State
}

// NopHooks provides default no-op hook implementations.
type NopHooks struct{}

func (NopHooks) OnCall(_ *ast.CallExpr, st State) State             { return st }
func (NopHooks) OnAssign(_, _ []ast.Expr, st State) State           { return st }
func (NopHooks) OnReturn(_ *ast.ReturnStmt, _ State, _ bool)        {}
func (NopHooks) OnHavoc(_ map[types.Object]bool, st State) State    { return st }
func (NopHooks) AfterIf(_ *ast.IfStmt, _, _, _ State) (State, bool) { return nil, false }
func (NopHooks) OnDefer(_ *ast.CallExpr, st State) State            { return st }
func (NopHooks) OnRange(_, _, _ ast.Expr, st State) State           { return st }

type walker struct {
	info     *types.Info
	hooks    FlowHooks
	errDepth int
	litDepth int
}

// WalkFunc interprets body starting from initial, firing hooks, and
// returns the fall-through state (nil if all paths return).
func WalkFunc(info *types.Info, body *ast.BlockStmt, initial State, hooks FlowHooks) State {
	w := &walker{info: info, hooks: hooks}
	return w.stmts(body.List, initial)
}

func mergeStates(a, b State) State {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return a.Merge(b)
	}
}

func (w *walker) stmts(list []ast.Stmt, st State) State {
	for _, s := range list {
		if st == nil {
			return nil
		}
		st = w.stmt(s, st)
	}
	return st
}

func (w *walker) stmt(s ast.Stmt, st State) State {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List, st)
	case *ast.ExprStmt:
		return w.expr(s.X, st)
	case *ast.SendStmt:
		st = w.expr(s.Chan, st)
		return w.expr(s.Value, st)
	case *ast.IncDecStmt:
		st = w.expr(s.X, st)
		return w.hooks.OnAssign([]ast.Expr{s.X}, nil, st)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			st = w.expr(r, st)
		}
		for _, l := range s.Lhs {
			if _, ok := l.(*ast.Ident); !ok {
				st = w.expr(l, st)
			}
		}
		return w.hooks.OnAssign(s.Lhs, s.Rhs, st)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					st = w.expr(v, st)
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, n := range vs.Names {
					lhs[i] = n
				}
				st = w.hooks.OnAssign(lhs, vs.Values, st)
			}
		}
		return st
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			st = w.expr(r, st)
		}
		if w.litDepth == 0 {
			w.hooks.OnReturn(s, st, w.errDepth > 0)
		}
		return nil
	case *ast.BranchStmt:
		return nil // break/continue/goto end the path (see package doc)
	case *ast.IfStmt:
		return w.ifStmt(s, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		st = w.hooks.OnHavoc(assignedIn(s.Body, s.Post, w.info), st)
		if s.Cond != nil {
			st = w.expr(s.Cond, st)
		}
		bodyOut := w.stmts(s.Body.List, st.Clone())
		if s.Post != nil && bodyOut != nil {
			bodyOut = w.stmt(s.Post, bodyOut)
		}
		return mergeStates(st, bodyOut)
	case *ast.RangeStmt:
		st = w.expr(s.X, st)
		st = w.hooks.OnHavoc(assignedIn(s, nil, w.info), st)
		st = w.hooks.OnRange(s.X, s.Key, s.Value, st)
		var lhs []ast.Expr
		if s.Key != nil {
			lhs = append(lhs, s.Key)
		}
		if s.Value != nil {
			lhs = append(lhs, s.Value)
		}
		if len(lhs) > 0 {
			st = w.hooks.OnAssign(lhs, nil, st)
		}
		bodyOut := w.stmts(s.Body.List, st.Clone())
		return mergeStates(st, bodyOut)
	case *ast.SwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			st = w.expr(s.Tag, st)
		}
		return w.caseClauses(s.Body, st)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			st = w.stmt(s.Init, st)
		}
		st = w.stmt(s.Assign, st)
		return w.caseClauses(s.Body, st)
	case *ast.SelectStmt:
		var out State
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			branch := st.Clone()
			if cc.Comm == nil {
				hasDefault = true
			} else {
				branch = w.stmt(cc.Comm, branch)
			}
			out = mergeStates(out, w.stmts(cc.Body, branch))
		}
		if !hasDefault || len(s.Body.List) == 0 {
			out = mergeStates(out, st)
		}
		return out
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	case *ast.DeferStmt:
		// A deferred call runs at function exit, not here: walk its
		// function (an inline func literal may run) and arguments, but do
		// not fire OnCall — `defer h.Close()` must not invalidate state at
		// the defer site.
		st = w.expr(s.Call.Fun, st)
		for _, a := range s.Call.Args {
			st = w.expr(a, st)
		}
		return w.hooks.OnDefer(s.Call, st)
	case *ast.GoStmt:
		return w.expr(s.Call, st)
	default: // EmptyStmt, BadStmt
		return st
	}
}

// caseClauses joins the bodies of a switch; without a default the zero-case
// fall-through state joins in too.
func (w *walker) caseClauses(body *ast.BlockStmt, st State) State {
	var out State
	hasDefault := false
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		branch := st.Clone()
		for _, e := range cc.List {
			branch = w.expr(e, branch)
		}
		if cc.List == nil {
			hasDefault = true
		}
		out = mergeStates(out, w.stmts(cc.Body, branch))
	}
	if !hasDefault {
		out = mergeStates(out, st)
	}
	return out
}

func (w *walker) ifStmt(s *ast.IfStmt, st State) State {
	if s.Init != nil {
		st = w.stmt(s.Init, st)
	}
	st = w.expr(s.Cond, st)
	errBranch := errNilBranch(w.info, s.Cond) // +1 = then is error path, -1 = else is

	if errBranch == +1 {
		w.errDepth++
	}
	thenSt := w.stmts(s.Body.List, st.Clone())
	if errBranch == +1 {
		w.errDepth--
	}

	var elseSt State
	if s.Else != nil {
		if errBranch == -1 {
			w.errDepth++
		}
		elseSt = w.stmt(s.Else, st.Clone())
		if errBranch == -1 {
			w.errDepth--
		}
	} else {
		elseSt = st
	}
	if merged, ok := w.hooks.AfterIf(s, st, thenSt, elseSt); ok {
		return merged
	}
	return mergeStates(thenSt, elseSt)
}

// expr walks an expression in evaluation order, firing OnCall post-order.
func (w *walker) expr(e ast.Expr, st State) State {
	if st == nil || e == nil {
		return st
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.expr(e.X, st)
	case *ast.CallExpr:
		st = w.expr(e.Fun, st)
		for _, a := range e.Args {
			st = w.expr(a, st)
		}
		return w.hooks.OnCall(e, st)
	case *ast.SelectorExpr:
		return w.expr(e.X, st)
	case *ast.BinaryExpr:
		st = w.expr(e.X, st)
		return w.expr(e.Y, st)
	case *ast.UnaryExpr:
		return w.expr(e.X, st)
	case *ast.StarExpr:
		return w.expr(e.X, st)
	case *ast.IndexExpr:
		st = w.expr(e.X, st)
		return w.expr(e.Index, st)
	case *ast.IndexListExpr:
		st = w.expr(e.X, st)
		for _, i := range e.Indices {
			st = w.expr(i, st)
		}
		return st
	case *ast.SliceExpr:
		st = w.expr(e.X, st)
		st = w.expr(e.Low, st)
		st = w.expr(e.High, st)
		return w.expr(e.Max, st)
	case *ast.TypeAssertExpr:
		return w.expr(e.X, st)
	case *ast.KeyValueExpr:
		return w.expr(e.Value, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			st = w.expr(el, st)
		}
		return st
	case *ast.FuncLit:
		w.litDepth++
		out := w.stmts(e.Body.List, st.Clone())
		w.litDepth--
		return mergeStates(st, out)
	default: // Ident, BasicLit, type exprs
		return st
	}
}

// errNilBranch classifies an if condition: +1 when the then-branch is an
// error path (`err != nil`), -1 when the else-branch is (`err == nil`),
// 0 otherwise.
func errNilBranch(info *types.Info, cond ast.Expr) int {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return 0
	}
	var other ast.Expr
	switch {
	case isNilIdent(be.Y):
		other = be.X
	case isNilIdent(be.X):
		other = be.Y
	default:
		return 0
	}
	t := info.TypeOf(other)
	if t == nil || !types.Implements(t, errorIface) {
		return 0
	}
	switch be.Op {
	case token.NEQ:
		return +1
	case token.EQL:
		return -1
	}
	return 0
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// assignedIn collects the variables assigned anywhere inside the given
// nodes (loop bodies), for havocking at loop entry.
func assignedIn(n ast.Node, extra ast.Node, info *types.Info) map[types.Object]bool {
	out := make(map[types.Object]bool)
	collect := func(node ast.Node) {
		if node == nil {
			return
		}
		ast.Inspect(node, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, l := range x.Lhs {
					if id, ok := l.(*ast.Ident); ok {
						if obj := objOf(info, id); obj != nil {
							out[obj] = true
						}
					}
				}
			case *ast.IncDecStmt:
				if id, ok := x.X.(*ast.Ident); ok {
					if obj := objOf(info, id); obj != nil {
						out[obj] = true
					}
				}
			case *ast.RangeStmt:
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if id, ok := e.(*ast.Ident); ok {
						if obj := objOf(info, id); obj != nil {
							out[obj] = true
						}
					}
				}
			case *ast.ValueSpec:
				for _, id := range x.Names {
					if obj := objOf(info, id); obj != nil {
						out[obj] = true
					}
				}
			}
			return true
		})
	}
	collect(n)
	collect(extra)
	return out
}

// objOf resolves an identifier to its object via Uses or Defs.
func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
