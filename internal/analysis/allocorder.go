package analysis

import (
	"go/ast"
	"go/types"
)

// AllocOrder is the static form of the allocator write-ahead bug PR 6's
// crash harness found dynamically: in transactional allocation the order is
// reserve → durable log record → publish, so a crash between reserve and
// publish is invisible (the bit is still clear) and a crash after the
// publish replays against the log record. Concretely:
//
//  1. In a Tx method, storeSlabBit(..., set=true) — publishing a slot's
//     occupancy bit — must be dominated by a durable log append
//     (Tx.logAppend persists and fences the record before returning; a
//     helper whose summary says it logs durably also counts).
//  2. A free-list-head publication (Ref.Store64 through Pool.freeHeadOff)
//     must be dominated by a Heap.Persist of the span being linked — the
//     span header must be durable before the head points at it.
//
// Non-transactional allocation (Heap.alloc, recovery, Free's bit-clears)
// legitimately skips the log, so rule 1 is scoped to methods whose
// receiver type is named Tx; rule 2 applies everywhere. Both facts are
// must-facts: a branch join keeps "logged"/"persisted" only when every
// path established it.
var AllocOrder = &Analyzer{
	Name:     "allocorder",
	Doc:      "check allocator write-ahead order: occupancy-bit publication after a durable log record, free-list-head publication after the span header persist",
	Requires: []*Analyzer{Summaries},
	Run:      runAllocOrder,
}

type aoState struct {
	logged    bool // a durable log record was appended on every path here
	persisted bool // a Heap.Persist completed on every path here
}

func (s *aoState) Clone() State { c := *s; return &c }

func (s *aoState) Merge(other State) State {
	o := other.(*aoState)
	s.logged = s.logged && o.logged
	s.persisted = s.persisted && o.persisted
	return s
}

func runAllocOrder(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		h := &aoHooks{pass: pass, txMethod: receiverTypeNamed(pass.TypesInfo, fd, "Tx")}
		WalkFunc(pass.TypesInfo, fd.Body, &aoState{}, h)
	}
	return nil
}

// receiverTypeNamed reports whether fd is a method whose receiver's named
// type is name.
func receiverTypeNamed(info *types.Info, fd *ast.FuncDecl, name string) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == name
}

type aoHooks struct {
	NopHooks
	pass     *Pass
	txMethod bool
}

func (h *aoHooks) OnCall(call *ast.CallExpr, st State) State {
	s := st.(*aoState)
	info := h.pass.TypesInfo
	switch classify(info, call) {
	case kLogAppend:
		s.logged = true
	case kPersist:
		s.persisted = true
	case kSlabBitStore:
		if h.txMethod && !isFalseArg(call) && !s.logged {
			h.pass.Reportf(call.Pos(), "occupancy bit published before the allocation was logged; write-ahead order is reserve, then durable log record, then publish")
		}
	case kRefStore:
		if len(call.Args) > 0 && callsNamed(info, call.Args[0], "freeHeadOff") && !s.persisted {
			h.pass.Reportf(call.Pos(), "free-list head published before the span header was persisted; persist the span before linking it")
		}
	case kOther:
		if f := callee(info, call); f != nil {
			if sum := h.pass.Summary(f); sum != nil && sum.LogsDurably {
				s.logged = true
			}
		}
	}
	return s
}

// isFalseArg reports whether the call's last argument is the literal false
// (clearing an occupancy bit is the free path, whose write-ahead record is
// the free log entry applied at commit).
func isFalseArg(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	id, ok := ast.Unparen(call.Args[len(call.Args)-1]).(*ast.Ident)
	return ok && id.Name == "false"
}
