package analysis

import (
	"go/ast"
	"go/types"
)

// PersistBeforePublish checks the publish ordering of the paper's §2.2
// linking idiom (`temp->next = new_oid`): an ObjectID freshly allocated
// by a function may only be stored into another persistent object — made
// reachable — once one of the following holds on the path:
//
//   - the referenced object was made durable first (Heap.Persist /
//     persistNoFence on it, with no intervening writes), or
//   - the link target is covered by the undo log (Ctx.Touch/TxAddRange on
//     the target or the target object is itself fresh), in which case
//     transaction commit persists both sides before the log is truncated.
//
// Otherwise a crash between the publishing store becoming durable and the
// object's contents becoming durable leaves a reachable object with
// garbage contents.
//
// Only locally allocated OIDs are tracked (parameters and loaded OIDs
// have unknown durability and are not checked), and only stores through
// tracked refs or Cell.Set are considered — the same under-approximations
// as touchbeforestore.
var PersistBeforePublish = &Analyzer{
	Name: "persistbeforepublish",
	Doc:  "check that a fresh ObjectID is durable or undo-logged before being linked into a persistent object",
	Run:  runPersistBeforePublish,
}

// ppState layers the persisted set over the touch/fresh/ref tracking of
// tbsState.
type ppState struct {
	tbs       *tbsState
	persisted map[string]map[types.Object]bool
}

func newPPState() *ppState {
	return &ppState{tbs: newTBSState(), persisted: make(map[string]map[types.Object]bool)}
}

func (s *ppState) Clone() State {
	n := &ppState{tbs: s.tbs.Clone().(*tbsState), persisted: make(map[string]map[types.Object]bool, len(s.persisted))}
	for k, v := range s.persisted {
		n.persisted[k] = v
	}
	return n
}

func (s *ppState) Merge(other State) State {
	o := other.(*ppState)
	s.tbs.Merge(o.tbs)
	for k := range s.persisted {
		if _, ok := o.persisted[k]; !ok {
			delete(s.persisted, k)
		}
	}
	return s
}

func (s *ppState) invalidate(objs map[types.Object]bool) {
	s.tbs.invalidate(objs)
	for k, deps := range s.persisted {
		for d := range deps {
			if objs[d] {
				delete(s.persisted, k)
				break
			}
		}
	}
}

type ppHooks struct {
	NopHooks
	pass *Pass
	tbs  *tbsHooks // reused ref/fresh tracking on the embedded tbsState
}

func (h *ppHooks) OnCall(call *ast.CallExpr, st State) State {
	s := st.(*ppState)
	info := h.pass.TypesInfo
	switch classify(info, call) {
	case kTouch:
		if len(call.Args) > 0 {
			c := canonOID(info, call.Args[0])
			s.tbs.touched[c] = exprDeps(info, call.Args[0])
		}
	case kPersist, kPersistNoFence:
		if len(call.Args) > 0 {
			c := canonOID(info, call.Args[0])
			s.persisted[c] = exprDeps(info, call.Args[0])
		}
	case kRefStore:
		h.checkStore(call, s)
	case kCellSet:
		h.checkPublish(call, s, cellSetValue(call), cellTouchedKey(info, call))
	}
	return s
}

// cellSetValue returns the OID argument of Cell.Set.
func cellSetValue(call *ast.CallExpr) ast.Expr {
	if len(call.Args) > 0 {
		return call.Args[0]
	}
	return nil
}

// cellTouchedKey returns the canonical touch key covering a Cell.Set
// target ("<cell>.OID()"), or "".
func cellTouchedKey(info *types.Info, call *ast.CallExpr) string {
	if recv := recvExpr(call); recv != nil {
		return canonOID(info, recv) + ".OID()"
	}
	return ""
}

// checkStore handles Ref.Store64/WriteBytes: a write clears the target's
// persisted status, and a Store64 of an OID value is a publish.
func (h *ppHooks) checkStore(call *ast.CallExpr, s *ppState) {
	info := h.pass.TypesInfo
	recv := recvExpr(call)
	if recv == nil {
		return
	}
	r, tracked := h.tbs.refOf(recv, s.tbs)
	if tracked {
		delete(s.persisted, r.src) // contents changed since last persist
	}
	// Store64(off, value, dep): the published OID rides in the value.
	f := callee(info, call)
	if f == nil || f.Name() != "Store64" || len(call.Args) < 2 {
		return
	}
	if !tracked || r.fresh || r.direct {
		// Unknown target (skip), or writes into a not-yet-reachable or
		// library-internal object (exempt: the link itself only becomes
		// meaningful when that object is published in turn).
		return
	}
	targetTouched := ""
	if _, ok := s.tbs.touched[r.src]; ok {
		targetTouched = r.src
	}
	h.publish(call, s, call.Args[1], targetTouched != "")
}

// checkPublish handles Cell.Set: anchors are always reachable, so the
// exemptions are Touch of the cell or durability of the stored OID.
func (h *ppHooks) checkPublish(call *ast.CallExpr, s *ppState, value ast.Expr, touchKey string) {
	if value == nil {
		return
	}
	_, touched := s.tbs.touched[touchKey]
	h.publish(call, s, value, touched)
}

// publish reports a store of a fresh, non-durable, non-logged OID.
func (h *ppHooks) publish(call *ast.CallExpr, s *ppState, value ast.Expr, targetCovered bool) {
	info := h.pass.TypesInfo
	x := oidOperand(info, value)
	if x == nil {
		return
	}
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return
	}
	obj := objOf(info, id)
	if obj == nil || !s.tbs.fresh[obj] {
		return // unknown provenance: not checked
	}
	if targetCovered {
		return // undo-logged target: commit persists both sides
	}
	if _, ok := s.persisted[canonOID(info, x)]; ok {
		return
	}
	h.pass.Reportf(call.Pos(),
		"ObjectID %s is published before its contents are durable: Persist(%s, ...) first, or snapshot the link target with Ctx.Touch", id.Name, id.Name)
}

func (h *ppHooks) OnAssign(lhs, rhs []ast.Expr, st State) State {
	s := st.(*ppState)
	info := h.pass.TypesInfo
	assigned := make(map[types.Object]bool)
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				assigned[obj] = true
			}
		}
	}
	for k, deps := range s.persisted {
		for d := range deps {
			if assigned[d] {
				delete(s.persisted, k)
				break
			}
		}
	}
	s.tbs = h.tbs.OnAssign(lhs, rhs, s.tbs).(*tbsState)
	return s
}

func (h *ppHooks) OnHavoc(assigned map[types.Object]bool, st State) State {
	s := st.(*ppState)
	s.invalidate(assigned)
	return s
}

func runPersistBeforePublish(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		hooks := &ppHooks{pass: pass}
		hooks.tbs = &tbsHooks{pass: pass}
		WalkFunc(pass.TypesInfo, fd.Body, newPPState(), hooks)
	}
	return nil
}
