// Package analysis is potgo's static-analysis suite: four analyzers that
// machine-check the persistence invariants the pmem/pds code must follow for
// crash consistency (see DESIGN.md "Persistence invariants"):
//
//   - touchbeforestore: in-place stores to persistent objects inside a
//     transactional context must be preceded by an undo-log snapshot
//     (Ctx.Touch / Heap.TxAddRange) of the stored object.
//   - persistbeforepublish: an ObjectID may only be linked into another
//     persistent object after the referenced object is durable (Persist) or
//     the link target is undo-logged (Touch).
//   - refescape: Deref-derived Refs are raw views into mapped pool memory;
//     they must not outlive the mapping (escape the API surface, or be used
//     across Close/Crash/TxAbort/Recover).
//   - emitbalance: every path that emits CLWBs must emit a trailing SFENCE
//     before returning, unless the function's name declares it unfenced
//     ("NoFence").
//
// potlint v2 adds an interprocedural layer (summary.go: per-function facts
// about locks acquired/released, fences issued and allocation behaviour,
// propagated through the FactStore in package dependency order) and four
// concurrency/allocation analyzers over it:
//
//   - lockorder: shard/pool locks are acquired at most one set at a time
//     (multi-shard sets go through the ascending mask/scoped helpers), a
//     latch is never acquired while a shard lock is held (lock order:
//     latches before shard locks), and sharded mutex state is only locked
//     directly inside the owner type's designated helpers.
//   - latchdiscipline: latch slot sets are sorted (and deduplicated)
//     before acquisition, and methods of latch-owning types do not open a
//     heap mutation on a path where the structure's latch is not held.
//   - allocorder: the allocator's write-ahead order — a transactional
//     occupancy-bit publication must be dominated by a durable log record,
//     and a free-list-head publication by the span header's persist.
//   - noalloc: functions annotated //potlint:noalloc contain no allocating
//     constructs and call nothing that allocates (the static form of the
//     0-allocs/op benchmark gates).
//
// Findings are suppressed line-by-line with `//potlint:allow <analyzer>
// <reason>` (suppress.go); unused suppressions are themselves findings.
//
// The package mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer, Pass, Diagnostic, facts) but is self-contained on the standard
// library: the build environment is offline, so x/tools cannot be vendored.
// Analyzers therefore work on typed ASTs with a flow-sensitive walker
// (flow.go) rather than SSA; the abstractions are conservative where SSA
// would be exact, and each analyzer documents its over- and
// under-approximations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one analysis: a name, documentation, and a Run
// function applied to one package at a time.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and on the command line.
	Name string
	// Doc is the analyzer's documentation, first sentence first.
	Doc string
	// Requires lists analyzers whose facts this one consumes; the driver
	// runs them first (over every package) even when they were not
	// requested. Required analyzers typically report nothing themselves.
	Requires []*Analyzer
	// Run applies the analyzer to one package, reporting diagnostics and
	// exporting facts through the pass.
	Run func(*Pass) error
}

// Pass is the interface between one analyzer and one package being
// analyzed, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// facts is the driver-wide fact store, shared across packages so
	// facts exported while analyzing a dependency are visible when its
	// importers are analyzed (packages are processed in dependency
	// order).
	facts *FactStore

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
	Pkg      string // import path of the package the finding is in
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: p.Analyzer.Name,
		Pkg:      p.Pkg.Path(),
	})
}

// ExportObjectFact attaches a fact to obj, visible to later passes of the
// same analyzer over importing packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) {
	p.facts.put(p.Analyzer, obj, fact)
}

// ImportObjectFact returns the fact attached to obj by this analyzer, or
// nil.
func (p *Pass) ImportObjectFact(obj types.Object) any {
	return p.facts.get(p.Analyzer, obj)
}

// Summary returns the interprocedural summary the Summaries analyzer
// exported for obj (a *types.Func), or nil. Analyzers that consume
// summaries must list Summaries in their Requires.
func (p *Pass) Summary(obj types.Object) *FuncSummary {
	if obj == nil {
		return nil
	}
	s, _ := p.facts.get(Summaries, obj).(*FuncSummary)
	return s
}

// FactStore holds analyzer-scoped object facts for one driver run. All
// packages in a run share one type-checker universe, so types.Object
// identity is stable across packages.
type FactStore struct {
	m map[factKey]any
}

type factKey struct {
	analyzer *Analyzer
	obj      types.Object
}

// NewFactStore returns an empty fact store.
func NewFactStore() *FactStore { return &FactStore{m: make(map[factKey]any)} }

func (s *FactStore) put(a *Analyzer, obj types.Object, fact any) {
	s.m[factKey{a, obj}] = fact
}

func (s *FactStore) get(a *Analyzer, obj types.Object) any {
	return s.m[factKey{a, obj}]
}

// expand returns analyzers with every (transitive) requirement inserted
// before its dependents, deduplicated.
func expand(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	seen := make(map[*Analyzer]bool)
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, r := range a.Requires {
			visit(r)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

// Run applies each analyzer (requirements first) to each package in order
// and returns all diagnostics sorted by position. Packages must be in
// dependency order for facts to flow from dependencies to importers.
func Run(analyzers []*Analyzer, pkgs []*LoadedPackage) ([]Diagnostic, error) {
	facts := NewFactStore()
	var diags []Diagnostic
	for _, a := range expand(analyzers) {
		for _, pkg := range pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				facts:     facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
			}
			diags = append(diags, pass.diagnostics...)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// All returns the full potlint suite in a fixed order: the four PR 2
// persistence analyzers, then the four concurrency/allocation analyzers.
func All() []*Analyzer {
	return []*Analyzer{
		TouchBeforeStore,
		PersistBeforePublish,
		RefEscape,
		EmitBalance,
		LockOrder,
		LatchDiscipline,
		AllocOrder,
		NoAlloc,
		SnapshotRead,
	}
}
