package analysis

import (
	"go/ast"
	"go/types"
)

// RefEscape checks that pmem.Ref values — raw views into mapped pool
// memory — do not outlive the mapping that produced them. The paper's
// whole point (§2) is that persistent references are ObjectIDs, not
// addresses: a Ref is only a transient decoding of an OID, valid until the
// region is unmapped or the object moves. Three escape routes are flagged:
//
//  1. an exported function or method (on an exported type) returning a
//     Ref: callers outside the package cannot know the view's lifetime;
//  2. a Ref stored into longer-lived storage: a package-level variable or
//     a field of an exported struct type (whether by assignment or
//     composite literal);
//  3. a Ref variable used after a call that invalidates raw views
//     (Heap.Close, Crash, TxAbort, Recover) on some path.
//
// Package pmem itself is exempt — it owns the mapping and hands out the
// views. Unexported caches of refs (e.g. a per-operation struct private to
// a package) are allowed; the analyzer only polices the exported surface
// and use-after-invalidation.
var RefEscape = &Analyzer{
	Name: "refescape",
	Doc:  "check that pmem.Ref views do not escape the API surface or outlive heap invalidation points",
	Run:  runRefEscape,
}

func runRefEscape(pass *Pass) error {
	if pass.Pkg.Path() == pmemPath {
		return nil
	}
	decls := funcDecls(pass.Files)
	for _, fd := range decls {
		checkRefReturn(pass, fd)
		hooks := &reHooks{pass: pass}
		WalkFunc(pass.TypesInfo, fd.Body, newREState(), hooks)
	}
	for _, f := range pass.Files {
		checkRefStorage(pass, f)
	}
	return nil
}

// checkRefReturn flags rule 1: Ref-returning exported surface.
func checkRefReturn(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Type.Results == nil {
		return
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
		if t != nil && !exportedNamed(t) {
			return // method on an unexported type: not API surface
		}
	}
	for _, res := range fd.Type.Results.List {
		if isRefType(pass.TypesInfo.TypeOf(res.Type)) {
			pass.Reportf(fd.Name.Pos(),
				"exported function %s returns a pmem.Ref, a raw view into mapped pool memory; return the ObjectID and let callers Deref it", fd.Name.Name)
			return
		}
	}
}

// exportedNamed reports whether t (behind pointers) is a named type with an
// exported name.
func exportedNamed(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Exported()
}

// checkRefStorage flags rule 2: Refs written into package-level variables
// or fields of exported struct types.
func checkRefStorage(pass *Pass, f *ast.File) {
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				if !isRefType(info.TypeOf(l)) {
					continue
				}
				switch l := ast.Unparen(l).(type) {
				case *ast.Ident:
					if obj := objOf(info, l); obj != nil && obj.Parent() == pass.Pkg.Scope() {
						pass.Reportf(l.Pos(),
							"pmem.Ref stored in package-level variable %s; a Ref is only valid while the pool stays mapped — store the ObjectID instead", l.Name)
					}
				case *ast.SelectorExpr:
					if sel, ok := info.Selections[l]; ok && sel.Kind() == types.FieldVal && exportedNamed(sel.Recv()) && sel.Obj().Exported() {
						pass.Reportf(l.Pos(),
							"pmem.Ref stored in exported field %s; a Ref is only valid while the pool stays mapped — store the ObjectID instead", types.ExprString(l))
					}
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t == nil || !exportedNamed(t) {
				return true
			}
			st, ok := t.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for i, el := range n.Elts {
				var fieldName string
				var value ast.Expr
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						fieldName, value = id.Name, kv.Value
					}
				} else if i < st.NumFields() {
					fieldName, value = st.Field(i).Name(), el
				}
				if value != nil && isRefType(info.TypeOf(value)) && ast.IsExported(fieldName) {
					pass.Reportf(el.Pos(),
						"pmem.Ref stored in exported field %s of %s; a Ref is only valid while the pool stays mapped — store the ObjectID instead", fieldName, types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			}
		}
		return true
	})
}

// reState tracks which local Ref variables are live views and which were
// made stale by an invalidation point on some path (may-analysis).
type reState struct {
	live  map[types.Object]bool
	stale map[types.Object]bool
}

func newREState() *reState {
	return &reState{live: make(map[types.Object]bool), stale: make(map[types.Object]bool)}
}

func (s *reState) Clone() State {
	n := newREState()
	for k := range s.live {
		n.live[k] = true
	}
	for k := range s.stale {
		n.stale[k] = true
	}
	return n
}

// Merge unions both sets: a ref stale on either branch may be stale here.
func (s *reState) Merge(other State) State {
	o := other.(*reState)
	for k := range o.live {
		s.live[k] = true
	}
	for k := range o.stale {
		s.stale[k] = true
	}
	return s
}

type reHooks struct {
	NopHooks
	pass *Pass
}

func (h *reHooks) OnCall(call *ast.CallExpr, st State) State {
	s := st.(*reState)
	info := h.pass.TypesInfo
	if classify(info, call) == kInvalidate {
		for o := range s.live {
			s.stale[o] = true
			delete(s.live, o)
		}
		return s
	}
	// A method call through a stale Ref variable (rule 3).
	if recv := recvExpr(call); recv != nil {
		if id, ok := ast.Unparen(recv).(*ast.Ident); ok && isRefType(info.TypeOf(id)) {
			if obj := objOf(info, id); obj != nil && s.stale[obj] {
				h.pass.Reportf(call.Pos(),
					"pmem.Ref %s used after the heap was closed, crashed, aborted, or recovered; raw views do not survive invalidation — re-Deref the ObjectID", id.Name)
				delete(s.stale, obj) // one report per ref per path
			}
		}
	}
	return s
}

func (h *reHooks) OnAssign(lhs, rhs []ast.Expr, st State) State {
	s := st.(*reState)
	info := h.pass.TypesInfo
	for i, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		obj := objOf(info, id)
		if obj == nil || !isRefType(obj.Type()) {
			continue
		}
		delete(s.stale, obj)
		s.live[obj] = true
		// Copying a stale ref keeps it stale.
		if len(rhs) == len(lhs) {
			if rid, ok := ast.Unparen(rhs[i]).(*ast.Ident); ok {
				if src := objOf(info, rid); src != nil && s.stale[src] {
					delete(s.live, obj)
					s.stale[obj] = true
				}
			}
		}
	}
	return s
}

func (h *reHooks) OnHavoc(assigned map[types.Object]bool, st State) State {
	s := st.(*reState)
	for o := range assigned {
		delete(s.live, o)
		delete(s.stale, o)
	}
	return s
}
