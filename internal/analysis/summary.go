package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The interprocedural layer: Summaries is a fact-only analyzer that
// computes one FuncSummary per function declaration — which locks it
// acquires or releases, whether it fences, whether it allocates, whether
// it appends a durable log record — and exports them as object facts.
// Dependent analyzers (lockorder, latchdiscipline, allocorder, noalloc)
// list Summaries in their Requires and read the facts through
// Pass.Summary, which lets them see through helpers such as
// Sharded.LockPool, LatchTable.Lock, Heap.fence or Tx.logAppend instead of
// stopping at the call boundary.
//
// Summaries are may-facts computed by a syntactic scan (function literal
// bodies are skipped — a closure's lock operations run when it is invoked,
// which the balancing idioms below account for), iterated to a fixpoint
// within each package; packages are processed in dependency order, so
// cross-package callees are always final when their callers are scanned.
//
// Two balancing idioms turn an acquire into a balanced pair:
//
//	defer lt.Lock(o)()            // deferred invocation of the unlock closure
//	u := lt.Lock(o); ...; u()     // explicit invocation of the unlock closure
var Summaries = &Analyzer{
	Name: "summaries",
	Doc:  "interprocedural fact layer: per-function lock/fence/allocation summaries (reports nothing itself)",
}

// Run is attached in init: runSummaries reads its own facts back through
// Pass.Summary, which mentions Summaries — assigning Run in the composite
// literal would be an initialization cycle.
func init() { Summaries.Run = runSummaries }

// LockEffect is a function's net effect on one lock domain.
type LockEffect int

const (
	LockNone     LockEffect = iota
	LockAcquires            // may leave locks of the domain held (or return their unlocker)
	LockReleases            // releases locks the caller holds
	LockBalanced            // acquires and releases internally
)

// FuncSummary is the exported per-function fact.
type FuncSummary struct {
	// ShardEffect and LatchEffect are the function's net effect on the
	// shard-lock and latch domains.
	ShardEffect LockEffect
	LatchEffect LockEffect
	// MayFence: the function issues an SFENCE (directly, via Persist, or
	// via a callee) on some path.
	MayFence bool
	// Allocates: the function contains an allocating construct outside
	// the error-path exemptions, or calls a function that does. AllocWhat
	// and AllocPos describe the first such construct.
	Allocates bool
	AllocWhat string
	AllocPos  token.Pos
	// LogsDurably: the function appends a durable log record (it is
	// logAppend-shaped, or calls something that is). The allocorder
	// analyzer treats a call to such a function as the write-ahead step
	// that licenses a subsequent occupancy-bit publication.
	LogsDurably bool
	// SortedInts: the function returns a []int it sorted (sort.Ints or
	// friends) — latch/shard slot-set builders like LatchTable.slots and
	// Sharded.shardSet. Ranging over its result acquires in order.
	SortedInts bool
	// NoAlloc: the function carries the //potlint:noalloc annotation.
	// Annotated functions are checked by the noalloc analyzer themselves,
	// so callers treat them as non-allocating.
	NoAlloc bool
	// SnapshotRead: the function carries the //potlint:snapshot-read
	// annotation — it is part of the epoch-pinned MVCC read path. The
	// snapshotread analyzer checks annotated bodies itself, so annotated
	// callers treat annotated callees as latch-free and read-only.
	SnapshotRead bool
}

func runSummaries(pass *Pass) error {
	decls := funcDecls(pass.Files)
	// Fixpoint: intra-package call chains (and recursion) stabilise in at
	// most the chain depth; four rounds covers every chain in the tree and
	// the facts are monotone, so early convergence is detected and extra
	// rounds are no-ops.
	for i := 0; i < 4; i++ {
		changed := false
		for _, fd := range decls {
			if summarize(pass, fd) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return nil
}

// summarize recomputes fd's summary and reports whether it changed.
func summarize(pass *Pass, fd *ast.FuncDecl) bool {
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	info := pass.TypesInfo
	s := &FuncSummary{NoAlloc: hasNoAllocDirective(fd), SnapshotRead: hasSnapshotReadDirective(fd)}

	var shardAcq, shardRel, latchAcq, latchRel bool
	note := func(k callKind, call *ast.CallExpr) {
		switch k {
		case kShardLock, kShardLockOrdered:
			shardAcq = true
		case kShardUnlock, kShardUnlockOrdered:
			shardRel = true
		case kLatchLock:
			latchAcq = true
		case kMuLock, kMuUnlock:
			if t, ok := shardedMuTarget(info, call); ok {
				if k == kMuLock {
					if t.latchShaped {
						latchAcq = true
					} else {
						shardAcq = true
					}
				} else {
					if t.latchShaped {
						latchRel = true
					} else {
						shardRel = true
					}
				}
			}
		case kSFence, kPersist:
			s.MayFence = true
		case kLogAppend:
			s.LogsDurably = true
		case kSortInts:
			if returnsIntSlice(info, fd) {
				s.SortedInts = true
			}
		}
	}

	// unlockVars maps variables holding an acquire's unlock closure to the
	// domain they release when invoked.
	type domain int
	const (
		domShard domain = iota
		domLatch
	)
	unlockVars := make(map[types.Object]domain)

	// acquireDomain classifies a call as a lock acquisition, looking
	// through callee summaries, and returns its domain.
	acquireDomain := func(call *ast.CallExpr) (domain, bool) {
		switch classify(info, call) {
		case kShardLock, kShardLockOrdered:
			return domShard, true
		case kLatchLock:
			return domLatch, true
		}
		if f := callee(info, call); f != nil {
			if sum := pass.Summary(f); sum != nil {
				if sum.LatchEffect == LockAcquires {
					return domLatch, true
				}
				if sum.ShardEffect == LockAcquires {
					return domShard, true
				}
			}
		}
		return domShard, false
	}

	var scan func(n ast.Node)
	scan = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false // runs later, if at all
			case *ast.DeferStmt:
				// `defer acquire(...)()`: the inner acquire is counted by
				// the generic CallExpr case below; the deferred invocation
				// of its unlock closure balances it at exit.
				if inner, ok := ast.Unparen(x.Call.Fun).(*ast.CallExpr); ok {
					if d, ok := acquireDomain(inner); ok {
						if d == domLatch {
							latchRel = true
						} else {
							shardRel = true
						}
					}
				}
			case *ast.AssignStmt:
				// `u := acquire(...)`: remember u as an unlock closure.
				for i, r := range x.Rhs {
					if call, ok := ast.Unparen(r).(*ast.CallExpr); ok && i < len(x.Lhs) {
						if d, ok := acquireDomain(call); ok {
							if id, ok := x.Lhs[i].(*ast.Ident); ok {
								if o := objOf(info, id); o != nil {
									unlockVars[o] = d
								}
							}
						}
					}
				}
			case *ast.CallExpr:
				k := classify(info, x)
				note(k, x)
				if k == kOther {
					if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
						// `u()`: invoking a remembered unlock closure.
						if o := objOf(info, id); o != nil {
							if d, ok := unlockVars[o]; ok {
								if d == domLatch {
									latchRel = true
								} else {
									shardRel = true
								}
							}
						}
					}
					if f := callee(info, x); f != nil {
						if sum := pass.Summary(f); sum != nil {
							mergeCalleeSummary(s, sum, &shardAcq, &shardRel, &latchAcq, &latchRel)
						}
					}
				}
			}
			return true
		})
	}
	scan(fd.Body)

	s.ShardEffect = effectOf(shardAcq, shardRel)
	s.LatchEffect = effectOf(latchAcq, latchRel)

	// Allocation behaviour: the shared construct scanner, plus callee
	// propagation. Annotated functions are treated as non-allocating for
	// callers — their own body is gated by the noalloc analyzer.
	if !s.NoAlloc {
		if fs := scanAllocs(info, fd, func(f *types.Func) *FuncSummary { return pass.Summary(f) }); len(fs) > 0 {
			s.Allocates = true
			s.AllocWhat = fs[0].what
			s.AllocPos = fs[0].pos
		}
	}

	old, _ := pass.ImportObjectFact(obj).(*FuncSummary)
	if old != nil && *old == *s {
		return false
	}
	if old == nil && *s == (FuncSummary{}) {
		return false
	}
	pass.ExportObjectFact(obj, s)
	return true
}

// mergeCalleeSummary folds a callee's effects into the caller's scan.
func mergeCalleeSummary(s *FuncSummary, sum *FuncSummary, shardAcq, shardRel, latchAcq, latchRel *bool) {
	switch sum.ShardEffect {
	case LockAcquires:
		*shardAcq = true
	case LockReleases:
		*shardRel = true
	}
	switch sum.LatchEffect {
	case LockAcquires:
		*latchAcq = true
	case LockReleases:
		*latchRel = true
	}
	if sum.MayFence {
		s.MayFence = true
	}
	if sum.LogsDurably {
		s.LogsDurably = true
	}
}

func effectOf(acq, rel bool) LockEffect {
	switch {
	case acq && rel:
		return LockBalanced
	case acq:
		return LockAcquires
	case rel:
		return LockReleases
	}
	return LockNone
}

// returnsIntSlice reports whether fd's first result is a []int.
func returnsIntSlice(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil || len(fd.Type.Results.List) == 0 {
		return false
	}
	t := info.TypeOf(fd.Type.Results.List[0].Type)
	sl, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().(*types.Basic)
	return ok && b.Kind() == types.Int
}
