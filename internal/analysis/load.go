package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadedPackage is one parsed and type-checked package.
type LoadedPackage struct {
	PkgPath   string
	Dir       string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// Loader parses and type-checks packages of the enclosing module. Imports
// within the module are resolved to source directories; standard-library
// imports are type-checked from GOROOT source (the environment has no
// export data for a foreign toolchain and no network for modules).
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	pkgs    map[string]*LoadedPackage
	loading map[string]bool
	order   []*LoadedPackage
	std     types.ImporterFrom
}

// NewLoader locates the module enclosing dir (or the working directory if
// dir is empty) and returns a loader for it.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		var err error
		dir, err = os.Getwd()
		if err != nil {
			return nil, err
		}
	}
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleDir:  root,
		pkgs:       make(map[string]*LoadedPackage),
		loading:    make(map[string]bool),
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module directory and path.
func findModule(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Packages returns every package loaded so far in dependency order
// (dependencies before importers).
func (l *Loader) Packages() []*LoadedPackage { return l.order }

// Load type-checks the package with the given module-relative or full
// import path.
func (l *Loader) Load(path string) (*LoadedPackage, error) {
	dir, err := l.dirOf(path)
	if err != nil {
		return nil, err
	}
	return l.LoadDir(path, dir)
}

// LoadDir type-checks the package rooted at dir under the given import
// path. The path need not be resolvable from the module root, which lets
// test fixtures under testdata/ be loaded as ordinary packages.
func (l *Loader) LoadDir(path, dir string) (*LoadedPackage, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			return l.importPkg(importPath)
		}),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &LoadedPackage{
		PkgPath:   path,
		Dir:       dir,
		Fset:      l.Fset,
		Syntax:    files,
		Types:     tpkg,
		TypesInfo: info,
	}
	l.pkgs[path] = p
	l.order = append(l.order, p)
	return p, nil
}

// importPkg resolves one import: module-internal packages recurse through
// the loader, everything else is standard library.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, l.ModuleDir, 0)
}

// dirOf maps a module import path to its source directory.
func (l *Loader) dirOf(path string) (string, error) {
	if path == l.ModulePath {
		return l.ModuleDir, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("analysis: %s is outside module %s", path, l.ModulePath)
}

// parseDir parses the non-test Go files of one directory, honouring build
// constraints for the host platform.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	bctx := build.Default
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if ok, err := bctx.MatchFile(dir, name); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// ExpandPatterns resolves command-line package patterns ("./...", "./x",
// "potgo/internal/pmem") to module import paths. A trailing "..." matches
// every package under the prefix; testdata and hidden directories are
// skipped as the go tool does.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimSuffix(strings.TrimPrefix(pat, "./"), "/")
		recursive := false
		if pat == "..." {
			pat, recursive = "", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		pat = strings.TrimPrefix(pat, l.ModulePath)
		pat = strings.TrimPrefix(pat, "/")
		base := filepath.Join(l.ModuleDir, filepath.FromSlash(pat))
		if !recursive {
			if hasGoFiles(base) {
				add(pathJoin(l.ModulePath, pat))
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", base)
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				rel, err := filepath.Rel(l.ModuleDir, p)
				if err != nil {
					return err
				}
				add(pathJoin(l.ModulePath, filepath.ToSlash(rel)))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(paths)
	return paths, nil
}

func pathJoin(mod, rel string) string {
	if rel == "" || rel == "." {
		return mod
	}
	return mod + "/" + rel
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
