package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockOrder enforces the shard/latch locking protocol:
//
//  1. Shard (pool) locks are acquired one set at a time. Holding any shard
//     lock while acquiring another — directly, through a scoped helper
//     (View/Update/Tx), or through a callee that acquires one — risks the
//     ABBA deadlock the ascending-order helpers exist to prevent; multi-
//     shard sets must go through LockShardMask / the scoped helpers, whose
//     ascending iteration the analyzer trusts (their loops acquire many
//     locks under a single ordered discipline).
//  2. Latches order before shard locks (see pmem/latch.go): acquiring a
//     latch while a shard lock is held inverts the documented order and is
//     flagged. The converse — taking shard locks under a latch — is the
//     sanctioned idiom (objstore.Multi latches anchors, then opens a
//     sharded Tx).
//  3. Direct sync.Mutex/RWMutex operations on sharded state (a mutex drawn
//     from a slice, or a mutex field of a slice element) are only allowed
//     inside the owning type's locking helpers (methods of the owner whose
//     name contains "lock"); everywhere else the ordered helpers must be
//     used.
//
// The analyzer is interprocedural through Summaries: a call to a function
// whose summary acquires locks counts as that acquisition at the call
// site. Balanced callees (acquire + release internally, like KV.Get) also
// count while locks are held — calling into a self-locking function while
// holding a shard lock is a self-deadlock on the same shard.
var LockOrder = &Analyzer{
	Name:     "lockorder",
	Doc:      "check shard/pool lock ordering: one shard set at a time, latches before shard locks, no direct mutex ops on sharded state outside locking helpers",
	Requires: []*Analyzer{Summaries},
	Run:      runLockOrder,
}

// loState counts locks held per domain; pending maps unlock-closure
// variables to the domain they release.
type loState struct {
	shard   int
	latch   int
	pending map[types.Object]int // 0 = shard, 1 = latch
}

func newLoState() *loState { return &loState{pending: make(map[types.Object]int)} }

func (s *loState) Clone() State {
	c := &loState{shard: s.shard, latch: s.latch, pending: make(map[types.Object]int, len(s.pending))}
	for k, v := range s.pending {
		c.pending[k] = v
	}
	return c
}

// Merge joins with may-semantics: a lock held on either path is treated as
// held (max), so a post-branch acquisition is checked against the worst
// path.
func (s *loState) Merge(other State) State {
	o := other.(*loState)
	s.shard = max(s.shard, o.shard)
	s.latch = max(s.latch, o.latch)
	for k, v := range o.pending {
		s.pending[k] = v
	}
	return s
}

func runLockOrder(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		checkDirectMuOps(pass, fd)
		h := &loHooks{pass: pass}
		WalkFunc(pass.TypesInfo, fd.Body, newLoState(), h)
	}
	return nil
}

// checkDirectMuOps flags direct mutex operations on sharded state outside
// the owner type's locking helpers (rule 3). A flat scan, not flow: the
// rule is about where the code lives, not about path state.
func checkDirectMuOps(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		k := classify(info, call)
		if k != kMuLock && k != kMuUnlock {
			return true
		}
		t, ok := shardedMuTarget(info, call)
		if !ok || t.owner == nil {
			return true
		}
		if isLockingHelperOf(info, fd, t.owner) {
			return true
		}
		pass.Reportf(call.Pos(), "direct mutex operation on sharded state of %s outside its locking helpers; use the ordered Lock*/scoped helpers", t.owner.Obj().Name())
		return true
	})
}

// isLockingHelperOf reports whether fd is a method of owner whose name
// marks it as a locking helper (contains "lock", case-insensitively:
// LockPool, lockShards, Unlock, RLock, ...).
func isLockingHelperOf(info *types.Info, fd *ast.FuncDecl, owner *types.Named) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() != owner.Obj() {
		return false
	}
	return strings.Contains(strings.ToLower(fd.Name.Name), "lock")
}

type loHooks struct {
	NopHooks
	pass *Pass
}

func (h *loHooks) OnCall(call *ast.CallExpr, st State) State {
	s := st.(*loState)
	info := h.pass.TypesInfo
	switch classify(info, call) {
	case kShardLock, kShardLockOrdered:
		h.checkShardAcquire(call, s)
		s.shard++
	case kShardScoped:
		h.checkShardAcquire(call, s) // acquires (and releases) internally
	case kShardUnlock, kShardUnlockOrdered:
		if s.shard > 0 {
			s.shard--
		}
	case kLatchLock:
		h.checkLatchAcquire(call, s)
		s.latch++
	case kMuLock:
		if t, ok := shardedMuTarget(info, call); ok {
			if t.latchShaped {
				h.checkLatchAcquire(call, s)
				s.latch++
			} else {
				// Inside the ordered helpers a loop acquires many shard
				// locks under one discipline; the loop body is walked once,
				// so this still counts a single ordered acquisition.
				h.checkShardAcquire(call, s)
				s.shard++
			}
		}
	case kMuUnlock:
		if t, ok := shardedMuTarget(info, call); ok {
			if t.latchShaped {
				if s.latch > 0 {
					s.latch--
				}
			} else if s.shard > 0 {
				s.shard--
			}
		}
	case kOther:
		// An invoked unlock closure releases its domain.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if o := objOf(info, id); o != nil {
				if d, ok := s.pending[o]; ok {
					delete(s.pending, o)
					if d == 1 {
						if s.latch > 0 {
							s.latch--
						}
					} else if s.shard > 0 {
						s.shard--
					}
					return s
				}
			}
		}
		// Interprocedural: the callee's summary stands in for its body.
		if f := callee(info, call); f != nil {
			if sum := h.pass.Summary(f); sum != nil {
				switch sum.ShardEffect {
				case LockAcquires:
					h.checkShardAcquire(call, s)
					s.shard++
				case LockBalanced:
					h.checkShardAcquire(call, s)
				case LockReleases:
					if s.shard > 0 {
						s.shard--
					}
				}
				switch sum.LatchEffect {
				case LockAcquires:
					h.checkLatchAcquire(call, s)
					s.latch++
				case LockBalanced:
					h.checkLatchAcquire(call, s)
				case LockReleases:
					if s.latch > 0 {
						s.latch--
					}
				}
			}
		}
	}
	return s
}

func (h *loHooks) checkShardAcquire(call *ast.CallExpr, s *loState) {
	if s.shard > 0 {
		h.pass.Reportf(call.Pos(), "shard lock acquired while a shard lock is already held; acquire multi-shard sets in one ordered operation (LockShardMask or a scoped helper)")
	}
}

func (h *loHooks) checkLatchAcquire(call *ast.CallExpr, s *loState) {
	if s.shard > 0 {
		h.pass.Reportf(call.Pos(), "latch acquired while holding a shard lock; lock order is latches before shard locks")
	}
}

// OnAssign binds unlock-closure variables produced by acquisitions:
// `u := lt.Lock(o)` makes a later `u()` release the latch domain.
func (h *loHooks) OnAssign(lhs, rhs []ast.Expr, st State) State {
	s := st.(*loState)
	info := h.pass.TypesInfo
	for i, r := range rhs {
		call, ok := ast.Unparen(r).(*ast.CallExpr)
		if !ok || i >= len(lhs) {
			continue
		}
		d, ok := acquireDomainOf(h.pass, call)
		if !ok {
			continue
		}
		if id, ok := lhs[i].(*ast.Ident); ok {
			if o := objOf(info, id); o != nil {
				s.pending[o] = d
			}
		}
	}
	return s
}

// OnHavoc drops pending bindings for loop-assigned variables.
func (h *loHooks) OnHavoc(assigned map[types.Object]bool, st State) State {
	s := st.(*loState)
	for o := range assigned {
		delete(s.pending, o)
	}
	return s
}

// acquireDomainOf classifies call as a lock acquisition (directly or via
// summary) and returns its domain (0 = shard, 1 = latch).
func acquireDomainOf(pass *Pass, call *ast.CallExpr) (int, bool) {
	switch classify(pass.TypesInfo, call) {
	case kShardLock, kShardLockOrdered:
		return 0, true
	case kLatchLock:
		return 1, true
	}
	if f := callee(pass.TypesInfo, call); f != nil {
		if sum := pass.Summary(f); sum != nil {
			if sum.LatchEffect == LockAcquires {
				return 1, true
			}
			if sum.ShardEffect == LockAcquires {
				return 0, true
			}
		}
	}
	return 0, false
}
