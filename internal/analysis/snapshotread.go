package analysis

import (
	"go/ast"
	"strings"
)

// SnapshotRead enforces the wait-free discipline of the MVCC snapshot read
// path (pmem/mvcc.go): a function whose doc comment carries the line
//
//	//potlint:snapshot-read
//
// is part of the epoch-pinned read protocol — Pin/Unpin, SnapDeref, the
// pds snapshot walks — and must stay latch-free and read-only. It must not
// acquire shard locks or latches (directly, through a sharded-state mutex,
// or by calling a module function whose summary says it does), must not
// open a mutating transaction (Sharded.Tx/Update, Heap.Begin) or a latched
// View section, must not mutate persistent state (Ref stores, Cell.Set,
// transactional Alloc/Touch), and must not write back to the persistence
// domain (Persist, CLWB, SFENCE, or a callee that fences).
//
// Annotated callees are trusted: their own bodies are checked here, so a
// snapshot-read function freely composes from other snapshot-read
// functions. Plain struct-field mutexes (a version mirror's bucket locks)
// are internal short sections, not shard state, and are allowed. The
// latched fallback an entry point keeps for mirror misses is either hoisted
// to an unannotated caller or carries a line-level
// `//potlint:allow snapshotread <reason>`.
var SnapshotRead = &Analyzer{
	Name:     "snapshotread",
	Doc:      "check //potlint:snapshot-read-annotated functions stay latch-free and read-only",
	Requires: []*Analyzer{Summaries},
	Run:      runSnapshotRead,
}

func runSnapshotRead(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		if hasSnapshotReadDirective(fd) {
			checkSnapshotRead(pass, fd)
		}
	}
	return nil
}

// hasSnapshotReadDirective reports whether fd's doc comment contains the
// //potlint:snapshot-read directive.
func hasSnapshotReadDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), "//potlint:snapshot-read") {
			return true
		}
	}
	return false
}

// checkSnapshotRead walks fd's body (closures included: any code in the
// function is on the read path when it runs) reporting each violating call.
func checkSnapshotRead(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch classify(info, call) {
		case kShardLock, kShardLockOrdered:
			pass.Reportf(call.Pos(), "shard lock acquired in //potlint:snapshot-read function %s; snapshot reads must stay latch-free", name)
		case kLatchLock:
			pass.Reportf(call.Pos(), "latch acquired in //potlint:snapshot-read function %s; snapshot reads must stay latch-free", name)
		case kMuLock:
			if _, ok := shardedMuTarget(info, call); ok {
				pass.Reportf(call.Pos(), "sharded-state mutex acquired in //potlint:snapshot-read function %s; snapshot reads must stay latch-free", name)
			}
		case kShardScoped:
			if f := callee(info, call); f != nil {
				if f.Name() == "View" {
					pass.Reportf(call.Pos(), "latched View section opened in //potlint:snapshot-read function %s; snapshot reads must stay latch-free", name)
				} else {
					pass.Reportf(call.Pos(), "mutating %s transaction opened in //potlint:snapshot-read function %s; snapshot reads are read-only", f.Name(), name)
				}
			}
		case kHeapBegin:
			pass.Reportf(call.Pos(), "mutating heap transaction opened in //potlint:snapshot-read function %s; snapshot reads are read-only", name)
		case kRefStore, kCellSet, kAlloc, kTouch:
			pass.Reportf(call.Pos(), "persistent mutation in //potlint:snapshot-read function %s; snapshot reads are read-only", name)
		case kPersist, kPersistNoFence, kSFence, kCLWB:
			pass.Reportf(call.Pos(), "persistence-domain write-back in //potlint:snapshot-read function %s; snapshot reads are read-only", name)
		case kOther:
			f := callee(info, call)
			if f == nil {
				return true
			}
			sum := pass.Summary(f)
			if sum == nil || sum.SnapshotRead {
				return true
			}
			switch {
			case sum.ShardEffect != LockNone || sum.LatchEffect != LockNone:
				pass.Reportf(call.Pos(), "calls %s which takes shard or latch locks, in //potlint:snapshot-read function %s", f.Name(), name)
			case sum.MayFence:
				pass.Reportf(call.Pos(), "calls %s which writes back to the persistence domain, in //potlint:snapshot-read function %s", f.Name(), name)
			}
		}
		return true
	})
}
