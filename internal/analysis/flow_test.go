package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// The flow-walker edge cases the lock/latch analyzers lean on: loop bodies
// joined with the pre-loop state (a one-pass fixpoint approximation),
// havoc of loop-assigned variables, early returns inside for/switch,
// select joins, defer semantics (no OnCall for the deferred call itself,
// OnCall for an immediately-invoked inner call), and error-path marking.

// parseFunc type-checks src (a complete file) and returns the declaration
// of the named function.
func parseFunc(t *testing.T, src, name string) (*types.Info, *ast.FuncDecl) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:  make(map[ast.Expr]types.TypeAndValue),
		Defs:   make(map[*ast.Ident]types.Object),
		Uses:   make(map[*ast.Ident]types.Object),
		Scopes: make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return info, fd
		}
	}
	t.Fatalf("no function %s in source", name)
	return nil, nil
}

// heldState is a one-lock must-state: held survives a merge only when
// held on both paths.
type heldState struct{ held bool }

func (s *heldState) Clone() State { c := *s; return &c }
func (s *heldState) Merge(o State) State {
	s.held = s.held && o.(*heldState).held
	return s
}

// trackHooks toggles held on lock()/unlock() calls and records events.
type trackHooks struct {
	NopHooks
	info    *types.Info
	events  []string
	returns []string // "held=<bool> err=<bool>" per OnReturn
}

func (h *trackHooks) calleeName(call *ast.CallExpr) string {
	if f := callee(h.info, call); f != nil {
		return f.Name()
	}
	return ""
}

func (h *trackHooks) OnCall(call *ast.CallExpr, st State) State {
	s := st.(*heldState)
	name := h.calleeName(call)
	switch name {
	case "lock":
		s.held = true
	case "unlock":
		s.held = false
	}
	if name != "" {
		h.events = append(h.events, "call:"+name)
	}
	return s
}

func (h *trackHooks) OnDefer(call *ast.CallExpr, st State) State {
	h.events = append(h.events, "defer")
	return st
}

func (h *trackHooks) OnReturn(_ *ast.ReturnStmt, st State, errPath bool) {
	held := false
	if s, ok := st.(*heldState); ok && s != nil {
		held = s.held
	}
	h.returns = append(h.returns, fmt.Sprintf("held=%v err=%v", held, errPath))
}

const prelude = `package p
func lock()   {}
func unlock() {}
func fail() error { return nil }
`

func walkHeld(t *testing.T, src, name string) (*trackHooks, *heldState) {
	t.Helper()
	info, fd := parseFunc(t, src, name)
	h := &trackHooks{info: info}
	out := WalkFunc(info, fd.Body, &heldState{}, h)
	hs, _ := out.(*heldState)
	return h, hs
}

func TestFlowLoopJoinReachesFixpoint(t *testing.T) {
	// The loop may run zero or more times: a lock released only inside the
	// body must not be considered held after the loop, and a lock acquired
	// only inside must not leak out either.
	h, out := walkHeld(t, prelude+`
func f(n int) {
	lock()
	for i := 0; i < n; i++ {
		unlock()
	}
	_ = n
}`, "f")
	if out == nil || out.held {
		t.Fatalf("after a loop that may unlock, held must merge to false; events %v", h.events)
	}

	_, out2 := walkHeld(t, prelude+`
func g(n int) {
	for i := 0; i < n; i++ {
		lock()
	}
	_ = n
}`, "g")
	if out2 == nil || out2.held {
		t.Fatalf("a lock acquired only inside a may-not-run loop must not be held after it")
	}

	// Balanced loop body: converges to not-held in one pass.
	_, out3 := walkHeld(t, prelude+`
func h(n int) {
	for i := 0; i < n; i++ {
		lock()
		unlock()
	}
	_ = n
}`, "h")
	if out3 == nil || out3.held {
		t.Fatalf("balanced loop should fall through not-held")
	}
}

func TestFlowLoopHavocsAssignedVars(t *testing.T) {
	info, fd := parseFunc(t, `package p
func f(n int) {
	x := 1
	for i := 0; i < n; i++ {
		x = 2
	}
	_ = x
}`, "f")
	var havocked []string
	hooks := &havocHooks{names: &havocked}
	WalkFunc(info, fd.Body, &heldState{}, hooks)
	joined := strings.Join(havocked, ",")
	if !strings.Contains(joined, "x") || !strings.Contains(joined, "i") {
		t.Fatalf("loop entry must havoc every variable the loop assigns; got %q", joined)
	}
}

type havocHooks struct {
	NopHooks
	names *[]string
}

func (h *havocHooks) OnHavoc(assigned map[types.Object]bool, st State) State {
	for o := range assigned {
		*h.names = append(*h.names, o.Name())
	}
	return st
}

func TestFlowEarlyReturnInFor(t *testing.T) {
	h, out := walkHeld(t, prelude+`
func f(n int) int {
	lock()
	for i := 0; i < n; i++ {
		if i == 3 {
			return i
		}
		unlock()
	}
	return n
}`, "f")
	want := []string{"held=true err=false", "held=false err=false"}
	if fmt.Sprint(h.returns) != fmt.Sprint(want) {
		t.Fatalf("returns = %v, want %v", h.returns, want)
	}
	if out != nil {
		t.Fatalf("both paths return; fall-through must be nil")
	}
}

func TestFlowEarlyReturnInSwitch(t *testing.T) {
	h, _ := walkHeld(t, prelude+`
func f(k int) int {
	lock()
	switch k {
	case 0:
		return k
	case 1:
		unlock()
	}
	return k + 1
}`, "f")
	// First return holds the lock; the final return joins the unlock case
	// with the no-case fall-through, so held demotes to false.
	want := []string{"held=true err=false", "held=false err=false"}
	if fmt.Sprint(h.returns) != fmt.Sprint(want) {
		t.Fatalf("returns = %v, want %v", h.returns, want)
	}
}

func TestFlowSelectJoins(t *testing.T) {
	_, out := walkHeld(t, prelude+`
func f(c chan int) {
	lock()
	select {
	case <-c:
		unlock()
	default:
	}
	_ = c
}`, "f")
	if out == nil || out.held {
		t.Fatalf("select join must demote held when one arm unlocks")
	}
}

func TestFlowDeferSemantics(t *testing.T) {
	// `defer m.unlockM()` must not fire OnCall (it runs at exit), but
	// `defer acquire()()` walks the inner acquire() as an ordinary
	// expression, and both defers fire OnDefer.
	h, _ := walkHeld(t, prelude+`
type mu struct{}
func (m *mu) lockM()   {}
func (m *mu) unlockM() {}
func acquire() func() { return func() {} }
func f(m *mu) {
	m.lockM()
	defer m.unlockM()
	defer acquire()()
}`, "f")
	joined := strings.Join(h.events, ",")
	if strings.Contains(joined, "call:unlockM") {
		t.Fatalf("deferred call must not fire OnCall at the defer site; events %v", h.events)
	}
	if !strings.Contains(joined, "call:acquire") {
		t.Fatalf("inner call of an immediately-invoked defer must fire OnCall; events %v", h.events)
	}
	if strings.Count(joined, "defer") != 2 {
		t.Fatalf("both defer statements must fire OnDefer; events %v", h.events)
	}
}

func TestFlowErrPathMarking(t *testing.T) {
	h, _ := walkHeld(t, prelude+`
func f() error {
	if err := fail(); err != nil {
		return err
	}
	return nil
}`, "f")
	want := []string{"held=false err=true", "held=false err=false"}
	if fmt.Sprint(h.returns) != fmt.Sprint(want) {
		t.Fatalf("returns = %v, want %v", h.returns, want)
	}
}

func TestFlowRangeHookOrder(t *testing.T) {
	info, fd := parseFunc(t, `package p
func f(xs []int) {
	for i, v := range xs {
		_, _ = i, v
	}
}`, "f")
	var order []string
	WalkFunc(info, fd.Body, &heldState{}, &orderHooks{order: &order})
	joined := strings.Join(order, ",")
	// The trailing events come from the body's own assignment; the range
	// statement itself must contribute havoc, then range, then assign.
	if !strings.HasPrefix(joined, "havoc,range,assign") {
		t.Fatalf("range statement must fire havoc, then range, then assign; got %q", joined)
	}
}

type orderHooks struct {
	NopHooks
	order *[]string
}

func (h *orderHooks) OnHavoc(_ map[types.Object]bool, st State) State {
	*h.order = append(*h.order, "havoc")
	return st
}
func (h *orderHooks) OnRange(_, _, _ ast.Expr, st State) State {
	*h.order = append(*h.order, "range")
	return st
}
func (h *orderHooks) OnAssign(_, _ []ast.Expr, st State) State {
	*h.order = append(*h.order, "assign")
	return st
}
