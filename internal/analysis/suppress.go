package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// Line-level suppression: a finding is silenced by the directive
//
//	//potlint:allow <analyzer> <reason>
//
// placed at the end of the offending line or on the line directly above
// it. The reason is mandatory — a suppression documents why the invariant
// is safe to bend here (an amortized buffer growth, a cold path) — and a
// suppression that silences nothing is itself reported (analyzer name
// "suppress"), so stale allowances are cleaned up when the code they
// excused changes.

// suppression is one parsed //potlint:allow directive.
type suppression struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	pkg      string
	used     bool
}

// FilterSuppressed drops diagnostics covered by //potlint:allow directives
// in pkgs' sources and appends a diagnostic for every directive that
// suppressed nothing (or is missing its reason). The result is re-sorted
// by position.
func FilterSuppressed(diags []Diagnostic, fset *token.FileSet, pkgs []*LoadedPackage) []Diagnostic {
	sups := collectSuppressions(fset, pkgs)
	if len(sups) == 0 {
		return diags
	}
	byFile := make(map[string][]*suppression)
	for _, s := range sups {
		byFile[s.file] = append(byFile[s.file], s)
	}

	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, s := range byFile[pos.Filename] {
			if s.analyzer == d.Analyzer && (s.line == pos.Line || s.line == pos.Line-1) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		switch {
		case s.reason == "":
			kept = append(kept, Diagnostic{
				Pos:      s.pos,
				Message:  fmt.Sprintf("suppression needs a reason: //potlint:allow %s <reason>", s.analyzer),
				Analyzer: "suppress",
				Pkg:      s.pkg,
			})
		case !s.used:
			kept = append(kept, Diagnostic{
				Pos:      s.pos,
				Message:  fmt.Sprintf("unused suppression: no %s finding on this or the next line", s.analyzer),
				Analyzer: "suppress",
				Pkg:      s.pkg,
			})
		}
	}
	sortDiagnostics(kept)
	return kept
}

func sortDiagnostics(diags []Diagnostic) {
	for i := 1; i < len(diags); i++ {
		for j := i; j > 0 && (diags[j].Pos < diags[j-1].Pos ||
			(diags[j].Pos == diags[j-1].Pos && diags[j].Analyzer < diags[j-1].Analyzer)); j-- {
			diags[j], diags[j-1] = diags[j-1], diags[j]
		}
	}
}

// collectSuppressions parses every //potlint:allow directive in pkgs.
func collectSuppressions(fset *token.FileSet, pkgs []*LoadedPackage) []*suppression {
	var out []*suppression
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//potlint:allow")
					if !ok {
						continue
					}
					fields := strings.Fields(rest)
					s := &suppression{pos: c.Pos(), pkg: pkg.PkgPath}
					pos := fset.Position(c.Pos())
					s.file, s.line = pos.Filename, pos.Line
					if len(fields) > 0 {
						s.analyzer = fields[0]
					}
					if len(fields) > 1 {
						s.reason = strings.Join(fields[1:], " ")
					}
					out = append(out, s)
				}
			}
		}
	}
	return out
}
