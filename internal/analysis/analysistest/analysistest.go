// Package analysistest runs one analyzer over a fixture package under
// internal/analysis/testdata/src and checks its diagnostics against
// expectations written in the fixture as trailing comments:
//
//	ref.Store64(0, 1, isa.RZ) // want "without a preceding"
//
// The quoted string is a regular expression that must match the message of
// a diagnostic reported on that line; multiple quoted strings expect
// multiple diagnostics. Lines without a want comment must produce no
// diagnostics. This mirrors golang.org/x/tools/go/analysis/analysistest,
// which the offline build cannot vendor.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"potgo/internal/analysis"
)

// Run analyzes testdata/src/<pkgName> (relative to the caller's package
// directory) with the analyzer and reports mismatches as test errors.
func Run(t *testing.T, a *analysis.Analyzer, pkgName string) {
	t.Helper()
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	fixturePath := "potgo/internal/analysis/testdata/src/" + pkgName
	pkg, err := loader.Load(fixturePath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgName, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, loader.Packages())
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	diags = analysis.FilterSuppressed(diags, loader.Fset, []*analysis.LoadedPackage{pkg})

	wants := collectWants(t, loader, pkg)
	for _, d := range diags {
		if d.Pkg != fixturePath {
			continue // facts may be computed over dependencies; findings there are not the fixture's
		}
		pos := loader.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
		matched := false
		for i, w := range wants[key] {
			if w.used {
				continue
			}
			if w.re.MatchString(d.Message) {
				wants[key][i].used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.re)
			}
		}
	}
}

type want struct {
	re   *regexp.Regexp
	used bool
}

// collectWants scans the fixture's comments for `// want "re" "re"...`.
func collectWants(t *testing.T, loader *analysis.Loader, pkg *analysis.LoadedPackage) map[string][]want {
	t.Helper()
	wants := make(map[string][]want)
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := loader.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, pat := range splitQuoted(t, key, text) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					wants[key] = append(wants[key], want{re: re})
				}
			}
		}
	}
	return wants
}

// splitQuoted parses a sequence of Go-quoted strings.
func splitQuoted(t *testing.T, key, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		if s[0] != '"' {
			t.Fatalf("%s: malformed want comment at %q (expected quoted regexp)", key, s)
		}
		end := 1
		for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
			end++
		}
		if end == len(s) {
			t.Fatalf("%s: unterminated quote in want comment", key)
		}
		pat, err := strconv.Unquote(s[:end+1])
		if err != nil {
			t.Fatalf("%s: bad quoted pattern %q: %v", key, s[:end+1], err)
		}
		out = append(out, pat)
		s = s[end+1:]
	}
}
