package analysis

import (
	"go/ast"
	"go/types"
)

// TouchBeforeStore checks the undo-log discipline of transactional code
// (paper §2.1.4): inside a function that operates under a pds.Ctx — where
// a transaction may be active — every in-place store to a persistent
// object must be preceded by a snapshot of that object (Ctx.Touch or
// Heap.TxAddRange), so an abort or crash can roll the mutation back.
//
// Stores are exempt when the target object is fresh (allocated by this
// function through Ctx.Alloc/Heap.Alloc/Heap.TxAlloc: a crash rolls back
// the allocation itself, and the object is unreachable until published)
// or reached through Heap.DirectRef (library-internal metadata with its
// own write-ahead protocol).
//
// Matching is by canonical source expression: Touch(cur.OID(), n) covers
// stores through a Ref obtained from Deref(cur.OID(), ...), and
// Touch(x.FieldAt(off), n) covers stores through Deref(x, ...). A
// function that snapshots one of its OID parameters on every non-error
// path exports that as a fact, so calls to it count as touches at call
// sites in other functions and packages. Stores through untracked refs
// (values from maps, fields, or helper returns) are not checked.
var TouchBeforeStore = &Analyzer{
	Name: "touchbeforestore",
	Doc:  "check that transactional code snapshots objects (Ctx.Touch/TxAddRange) before storing to them",
	Run:  runTouchBeforeStore,
}

// tbsFact marks a function that touches some of its OID parameters on
// every non-error path, making calls to it count as touches.
type tbsFact struct {
	// ParamIndices are the indices (into the flattened parameter list)
	// of the OID parameters the function always touches.
	ParamIndices []int
}

// tbsRef describes what a tracked Ref variable views.
type tbsRef struct {
	src    string // canonical OID expression passed to Deref
	deps   map[types.Object]bool
	fresh  bool // the OID came from an Alloc in this function
	direct bool // DirectRef: library metadata, exempt
}

// tbsState is the abstract state: which canonical OID expressions are
// snapshotted, which OID variables are fresh, and what each Ref variable
// views.
type tbsState struct {
	touched map[string]map[types.Object]bool
	fresh   map[types.Object]bool
	refs    map[types.Object]tbsRef
}

func newTBSState() *tbsState {
	return &tbsState{
		touched: make(map[string]map[types.Object]bool),
		fresh:   make(map[types.Object]bool),
		refs:    make(map[types.Object]tbsRef),
	}
}

func (s *tbsState) Clone() State {
	n := newTBSState()
	for k, v := range s.touched {
		n.touched[k] = v
	}
	for k, v := range s.fresh {
		n.fresh[k] = v
	}
	for k, v := range s.refs {
		n.refs[k] = v
	}
	return n
}

// Merge keeps only facts common to both branches.
func (s *tbsState) Merge(other State) State {
	o := other.(*tbsState)
	for k := range s.touched {
		if _, ok := o.touched[k]; !ok {
			delete(s.touched, k)
		}
	}
	for k := range s.fresh {
		if !o.fresh[k] {
			delete(s.fresh, k)
		}
	}
	for k, v := range s.refs {
		ov, ok := o.refs[k]
		if !ok || ov.src != v.src || ov.fresh != v.fresh || ov.direct != v.direct {
			delete(s.refs, k)
		}
	}
	return s
}

// invalidate drops facts that depend on any of the given variables.
func (s *tbsState) invalidate(objs map[types.Object]bool) {
	if len(objs) == 0 {
		return
	}
	for k, deps := range s.touched {
		for d := range deps {
			if objs[d] {
				delete(s.touched, k)
				break
			}
		}
	}
	for o := range objs {
		delete(s.fresh, o)
		delete(s.refs, o)
	}
	for k, r := range s.refs {
		for d := range r.deps {
			if objs[d] {
				delete(s.refs, k)
				break
			}
		}
	}
}

// tbsHooks drives one function walk. In the fact pass report is nil and
// only exit states are collected.
type tbsHooks struct {
	NopHooks
	pass   *Pass
	report bool
	exits  []*tbsState
}

func (h *tbsHooks) info() *types.Info { return h.pass.TypesInfo }

func (h *tbsHooks) OnCall(call *ast.CallExpr, st State) State {
	s := st.(*tbsState)
	info := h.info()
	switch classify(info, call) {
	case kTouch:
		if len(call.Args) > 0 {
			c := canonOID(info, call.Args[0])
			s.touched[c] = exprDeps(info, call.Args[0])
		}
	case kRefStore:
		h.checkRefStore(call, s)
	case kCellSet:
		h.checkCellSet(call, s)
	default:
		// A call to a function known to touch some of its OID
		// parameters counts as touching the corresponding arguments.
		if f := callee(info, call); f != nil {
			if fact, ok := h.pass.ImportObjectFact(f).(*tbsFact); ok {
				for _, idx := range fact.ParamIndices {
					if idx < len(call.Args) {
						c := canonOID(info, call.Args[idx])
						s.touched[c] = exprDeps(info, call.Args[idx])
					}
				}
			}
		}
	}
	return s
}

// refOf resolves the Ref a store goes through: a tracked variable, or an
// inline Deref/DirectRef call. ok=false means the ref is untracked and
// the store is skipped (documented under-approximation).
func (h *tbsHooks) refOf(e ast.Expr, s *tbsState) (tbsRef, bool) {
	info := h.info()
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		if obj := objOf(info, e); obj != nil {
			r, ok := s.refs[obj]
			return r, ok
		}
	case *ast.CallExpr:
		switch classify(info, e) {
		case kDeref:
			if len(e.Args) > 0 {
				return h.derefInfo(e.Args[0], s), true
			}
		case kDirectRef:
			return tbsRef{direct: true}, true
		}
	}
	return tbsRef{}, false
}

// derefInfo builds the tracking record for a Deref(oidExpr, ...) result.
func (h *tbsHooks) derefInfo(oidExpr ast.Expr, s *tbsState) tbsRef {
	info := h.info()
	r := tbsRef{src: canonOID(info, oidExpr), deps: exprDeps(info, oidExpr)}
	if id, ok := ast.Unparen(oidExpr).(*ast.Ident); ok {
		if obj := objOf(info, id); obj != nil && s.fresh[obj] {
			r.fresh = true
		}
	}
	return r
}

func (h *tbsHooks) checkRefStore(call *ast.CallExpr, s *tbsState) {
	recv := recvExpr(call)
	if recv == nil {
		return
	}
	r, ok := h.refOf(recv, s)
	if !ok || r.fresh || r.direct {
		return
	}
	if _, ok := s.touched[r.src]; ok {
		return
	}
	if h.report {
		h.pass.Reportf(call.Pos(),
			"store to persistent object %s without a preceding Ctx.Touch/TxAddRange snapshot; an abort or crash cannot roll this mutation back", r.src)
	}
}

func (h *tbsHooks) checkCellSet(call *ast.CallExpr, s *tbsState) {
	recv := recvExpr(call)
	if recv == nil {
		return
	}
	key := canonOID(h.info(), recv) + ".OID()"
	if _, ok := s.touched[key]; ok {
		return
	}
	if h.report {
		h.pass.Reportf(call.Pos(),
			"Cell.Set on %s without a preceding Ctx.Touch of the anchor cell; an abort or crash cannot restore the anchor", types.ExprString(recv))
	}
}

func (h *tbsHooks) OnAssign(lhs, rhs []ast.Expr, st State) State {
	s := st.(*tbsState)
	info := h.info()
	assigned := make(map[types.Object]bool)
	for _, l := range lhs {
		if id, ok := l.(*ast.Ident); ok {
			if obj := objOf(info, id); obj != nil {
				assigned[obj] = true
			}
		}
	}
	s.invalidate(assigned)

	// Bind the interesting producers: x, _ := Deref/DirectRef/Alloc, and
	// ref-to-ref copies.
	if len(rhs) == 1 && len(lhs) >= 1 {
		id, ok := lhs[0].(*ast.Ident)
		if !ok {
			return s
		}
		obj := objOf(info, id)
		if obj == nil {
			return s
		}
		switch r := ast.Unparen(rhs[0]).(type) {
		case *ast.CallExpr:
			switch classify(info, r) {
			case kDeref:
				if len(r.Args) > 0 {
					s.refs[obj] = h.derefInfo(r.Args[0], s)
				}
			case kDirectRef:
				s.refs[obj] = tbsRef{direct: true}
			case kAlloc:
				s.fresh[obj] = true
			}
		case *ast.Ident:
			if src := objOf(info, r); src != nil {
				if ri, ok := s.refs[src]; ok {
					s.refs[obj] = ri
				}
				if s.fresh[src] {
					s.fresh[obj] = true
				}
			}
		}
	} else if len(rhs) == len(lhs) {
		// Parallel assignment: only propagate fresh/ref bits per pair.
		for i := range lhs {
			s = h.OnAssign(lhs[i:i+1], rhs[i:i+1], s).(*tbsState)
		}
	}
	return s
}

func (h *tbsHooks) OnHavoc(assigned map[types.Object]bool, st State) State {
	s := st.(*tbsState)
	s.invalidate(assigned)
	return s
}

func (h *tbsHooks) OnReturn(_ *ast.ReturnStmt, st State, errPath bool) {
	if !errPath && st != nil {
		h.exits = append(h.exits, st.(*tbsState).Clone().(*tbsState))
	}
}

func runTouchBeforeStore(pass *Pass) error {
	decls := funcDecls(pass.Files)
	// Fact pass first (twice, so intra-package helper facts propagate one
	// call level), then the reporting pass.
	for i := 0; i < 2; i++ {
		for _, fd := range decls {
			tbsWalk(pass, fd, false)
		}
	}
	for _, fd := range decls {
		tbsWalk(pass, fd, true)
	}
	return nil
}

// tbsWalk analyzes one function if it operates under a Ctx; in the fact
// pass it exports which OID parameters are always touched.
func tbsWalk(pass *Pass, fd *ast.FuncDecl, report bool) {
	if ctxParam(pass.TypesInfo, fd) == nil {
		return
	}
	hooks := &tbsHooks{pass: pass, report: report}
	out := WalkFunc(pass.TypesInfo, fd.Body, newTBSState(), hooks)
	if report {
		return
	}
	if out != nil {
		hooks.exits = append(hooks.exits, out.(*tbsState))
	}
	if len(hooks.exits) == 0 {
		return
	}
	// Intersect the touched sets over all non-error exits.
	common := hooks.exits[0].touched
	for _, e := range hooks.exits[1:] {
		for k := range common {
			if _, ok := e.touched[k]; !ok {
				delete(common, k)
			}
		}
	}
	var fact tbsFact
	for i, p := range flatParams(pass.TypesInfo, fd) {
		if isOIDType(p.Type()) {
			if _, ok := common[p.Name()]; ok {
				fact.ParamIndices = append(fact.ParamIndices, i)
			}
		}
	}
	if len(fact.ParamIndices) > 0 {
		if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
			pass.ExportObjectFact(obj, &fact)
		}
	}
}

// flatParams returns the function's parameters in declaration order.
func flatParams(info *types.Info, fd *ast.FuncDecl) []*types.Var {
	var out []*types.Var
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if v, ok := info.Defs[name].(*types.Var); ok {
				out = append(out, v)
			}
		}
	}
	return out
}
