package emit

import (
	"testing"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

func TestModeString(t *testing.T) {
	if Base.String() != "BASE" || Opt.String() != "OPT" {
		t.Error("mode names")
	}
}

func TestTempRotation(t *testing.T) {
	e := New(trace.Discard{}, Opt)
	seen := map[isa.Reg]bool{}
	for i := 0; i < 48; i++ {
		r := e.Temp()
		if r < 16 {
			t.Fatalf("temp %d in reserved range", r)
		}
		if seen[r] {
			t.Fatalf("temp %d reused within one rotation", r)
		}
		seen[r] = true
	}
	// The 49th must wrap.
	if r := e.Temp(); !seen[r] {
		t.Error("temps must rotate")
	}
}

func TestEmitPrimitives(t *testing.T) {
	var buf trace.Buffer
	e := New(&buf, Opt)
	e.Nop()
	e.ALU(1, 2, 3)
	e.Mul(1, 2, 3)
	e.Div(1, 2, 3)
	e.Branch("b1", true, 4)
	e.Jump()
	e.Load(5, 6, 0x1000, 8)
	e.Store(6, 0x1008, 8, 5)
	e.NVLoad(7, 8, oid.New(3, 16), 8)
	e.NVStore(8, oid.New(3, 24), 8, 7)
	e.CLWB(0x1234)
	e.SFence()
	if e.Count() != 12 || len(buf.Instrs) != 12 {
		t.Fatalf("count = %d, buffered = %d", e.Count(), len(buf.Instrs))
	}
	if buf.Instrs[4].Op != isa.Branch || !buf.Instrs[4].Taken || buf.Instrs[4].PC == 0 {
		t.Error("branch must carry a stable nonzero PC and direction")
	}
	if buf.Instrs[8].Addr != uint64(oid.New(3, 16)) {
		t.Error("nvld must carry the ObjectID in Addr")
	}
	if buf.Instrs[10].Addr != 0x1234&^uint64(63) {
		t.Error("CLWB must be line-aligned")
	}
}

func TestBranchPCStable(t *testing.T) {
	var buf trace.Buffer
	e := New(&buf, Opt)
	e.Branch("site", true)
	e.Branch("site", false)
	e.Branch("other", true)
	if buf.Instrs[0].PC != buf.Instrs[1].PC {
		t.Error("same label must map to same PC")
	}
	if buf.Instrs[0].PC == buf.Instrs[2].PC {
		t.Error("different labels should map to different PCs")
	}
}

func TestComputeChains(t *testing.T) {
	var buf trace.Buffer
	e := New(&buf, Opt)
	r := e.Compute(12, 3)
	if len(buf.Instrs) != 12 {
		t.Fatalf("Compute(12) emitted %d", len(buf.Instrs))
	}
	if buf.Instrs[0].Src1 != 3 {
		t.Error("first op must consume the seed")
	}
	if r != buf.Instrs[len(buf.Instrs)-1].Dst {
		t.Error("Compute must return the final register")
	}
	// The block exposes ILP: its dataflow critical path must be shorter
	// than the instruction count but the final value must depend
	// (transitively) on the seed.
	depth := map[isa.Reg]int{3: 0}
	maxDepth := 0
	for _, in := range buf.Instrs {
		d := 0
		if v, ok := depth[in.Src1]; ok && v+1 > d {
			d = v + 1
		}
		if v, ok := depth[in.Src2]; ok && v+1 > d {
			d = v + 1
		}
		depth[in.Dst] = d
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth >= 12 {
		t.Errorf("critical path %d must be shorter than 12 (ILP)", maxDepth)
	}
	if depth[r] == 0 {
		t.Error("result must depend on the seed")
	}
	// Small and degenerate forms.
	before := len(buf.Instrs)
	e.Compute(2, 4)
	if len(buf.Instrs)-before != 2 {
		t.Error("Compute(2) emits 2 instructions")
	}
	if got := e.Compute(0, 7); got != 7 {
		t.Error("Compute(0) returns the seed")
	}
	if got := e.Compute(0); got != isa.RZ {
		t.Error("Compute(0) with no seed returns RZ")
	}
	// Exact instruction counts for a range of sizes (the calibration of
	// oid_direct depends on them).
	for n := 1; n <= 40; n++ {
		var b2 trace.Buffer
		e2 := New(&b2, Opt)
		e2.Compute(n, 1)
		if len(b2.Instrs) != n {
			t.Fatalf("Compute(%d) emitted %d", n, len(b2.Instrs))
		}
	}
}

func newSoft(t *testing.T) (*SoftTranslator, *Emitter, *vm.AddressSpace) {
	t.Helper()
	as := vm.NewAddressSpace(5)
	e := New(trace.Discard{}, Base)
	st, err := NewSoftTranslator(e, as, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return st, e, as
}

func TestSoftTranslatorValidation(t *testing.T) {
	as := vm.NewAddressSpace(5)
	e := New(trace.Discard{}, Base)
	if _, err := NewSoftTranslator(e, as, 0); err == nil {
		t.Error("0 buckets must fail")
	}
	if _, err := NewSoftTranslator(e, as, 300); err == nil {
		t.Error("non-power-of-two buckets must fail")
	}
	st, _, _ := newSoft(t)
	if err := st.Register(oid.NullPool, 0x1000); err == nil {
		t.Error("pool 0 must be rejected")
	}
	if err := st.Unregister(42); err == nil {
		t.Error("unknown unregister must fail")
	}
	if _, _, err := st.Translate(isa.RZ, oid.New(42, 0)); err == nil {
		t.Error("translate of unopened pool must fail")
	}
}

func TestSoftTranslateCorrectness(t *testing.T) {
	st, _, _ := newSoft(t)
	if err := st.Register(7, 0x7000_0000); err != nil {
		t.Fatal(err)
	}
	if err := st.Register(8, 0x8000_0000); err != nil {
		t.Fatal(err)
	}
	_, va, err := st.Translate(isa.RZ, oid.New(7, 0x123))
	if err != nil || va != 0x7000_0123 {
		t.Errorf("translate = %#x, %v", va, err)
	}
	_, va, _ = st.Translate(isa.RZ, oid.New(8, 0x4))
	if va != 0x8000_0004 {
		t.Errorf("translate pool 8 = %#x", va)
	}
	if base, ok := st.Lookup(7); !ok || base != 0x7000_0000 {
		t.Error("Lookup must resolve without emitting")
	}
	if _, ok := st.Lookup(99); ok {
		t.Error("Lookup of unknown pool must miss")
	}
	// Re-register updates the base.
	if err := st.Register(7, 0x9000_0000); err != nil {
		t.Fatal(err)
	}
	if base, _ := st.Lookup(7); base != 0x9000_0000 {
		t.Error("re-register must update")
	}
}

func TestSoftFastPathIs17Instructions(t *testing.T) {
	st, e, _ := newSoft(t)
	st.Register(7, 0x7000_0000)
	st.Translate(isa.RZ, oid.New(7, 0)) // cold: slow path, trains predictor
	before := e.Count()
	st.Translate(isa.RZ, oid.New(7, 8)) // same pool: predictor hit
	got := e.Count() - before
	if got != 17 {
		t.Errorf("fast path = %d instructions, paper Table 2 says 17", got)
	}
	s := st.Stats()
	if s.Calls != 2 || s.PredictorHits != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSoftSlowPathCalibration(t *testing.T) {
	st, e, _ := newSoft(t)
	st.Register(7, 0x7000_0000)
	st.Register(8, 0x8000_0000)
	st.Translate(isa.RZ, oid.New(7, 0))
	before := e.Count()
	st.Translate(isa.RZ, oid.New(8, 0)) // predictor valid but wrong pool
	got := e.Count() - before
	// Paper Table 2: full look-ups average ~95–110 instructions.
	if got < 95 || got > 120 {
		t.Errorf("slow path = %d instructions, want ~109", got)
	}
}

func TestSoftPredictorMissRatePatterns(t *testing.T) {
	st, _, _ := newSoft(t)
	for p := oid.PoolID(1); p <= 8; p++ {
		st.Register(p, uint64(p)<<32)
	}
	// ALL-like pattern: one pool, repeated: ~0% miss after the first.
	for i := 0; i < 100; i++ {
		st.Translate(isa.RZ, oid.New(1, uint32(i*8)))
	}
	s := st.Stats()
	if s.PredictorMissRate() > 0.02 {
		t.Errorf("single-pool miss rate = %v", s.PredictorMissRate())
	}
	if got := s.InsnsPerCall(); got < 17 || got > 19 {
		t.Errorf("single-pool insns/call = %v, paper says 17.0", got)
	}
	// EACH-like pattern: a different pool every call: ~100% miss.
	st.ResetStats()
	for i := 0; i < 100; i++ {
		st.Translate(isa.RZ, oid.New(oid.PoolID(1+i%8), 0))
	}
	s = st.Stats()
	if s.PredictorMissRate() < 0.99 {
		t.Errorf("alternating-pool miss rate = %v", s.PredictorMissRate())
	}
	if got := s.InsnsPerCall(); got < 95 || got > 120 {
		t.Errorf("alternating insns/call = %v, paper's EACH averages ~97", got)
	}
}

func TestSoftUnregisterInvalidatesPredictor(t *testing.T) {
	st, _, _ := newSoft(t)
	st.Register(7, 0x7000_0000)
	st.Translate(isa.RZ, oid.New(7, 0))
	if err := st.Unregister(7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Translate(isa.RZ, oid.New(7, 0)); err == nil {
		t.Error("translate after unregister must fail")
	}
	// Re-register on the same chain reuses the freed entry.
	if err := st.Register(7, 0x9000_0000); err != nil {
		t.Fatal(err)
	}
	_, va, err := st.Translate(isa.RZ, oid.New(7, 4))
	if err != nil || va != 0x9000_0004 {
		t.Errorf("after re-register: %#x, %v", va, err)
	}
}

func TestSoftChainWalkCost(t *testing.T) {
	// Pools that collide in one bucket make the slow path longer.
	st, e, _ := newSoft(t)
	var colliding []oid.PoolID
	want := st.bucketOf(1)
	for p := oid.PoolID(1); len(colliding) < 4; p++ {
		if st.bucketOf(p) == want {
			colliding = append(colliding, p)
			st.Register(p, uint64(p)<<32)
		}
	}
	// Translate the last of the chain (deepest walk) vs the first.
	st.Translate(isa.RZ, oid.New(colliding[0], 0)) // train
	b1 := e.Count()
	st.Translate(isa.RZ, oid.New(colliding[1], 0))
	deep1 := e.Count() - b1
	st.Translate(isa.RZ, oid.New(colliding[0], 0))
	b2 := e.Count()
	st.Translate(isa.RZ, oid.New(colliding[3], 0))
	deep3 := e.Count() - b2
	if deep3 <= deep1 {
		t.Errorf("deeper chain walk must cost more: %d vs %d", deep3, deep1)
	}
}

func TestSoftStatsEmpty(t *testing.T) {
	var s SoftStats
	if s.PredictorMissRate() != 0 || s.InsnsPerCall() != 0 {
		t.Error("empty stats helpers")
	}
}
