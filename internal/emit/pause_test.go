package emit

import (
	"testing"

	"potgo/internal/trace"
)

func TestPauseSuppressesEmission(t *testing.T) {
	var buf trace.Buffer
	e := New(&buf, Opt)
	e.ALU(1, 2, 3)
	e.Pause()
	if !e.Paused() {
		t.Error("Paused must report true")
	}
	e.ALU(1, 2, 3)
	e.Load(1, 2, 0x1000, 8)
	e.Resume()
	if e.Paused() {
		t.Error("Resume must clear paused")
	}
	e.ALU(1, 2, 3)
	if len(buf.Instrs) != 2 {
		t.Errorf("buffered %d instructions, want 2", len(buf.Instrs))
	}
	if e.Count() != 2 {
		t.Errorf("Count = %d, want 2 (paused instructions not counted)", e.Count())
	}
	if e.Dropped() != 2 {
		t.Errorf("Dropped = %d, want 2", e.Dropped())
	}
}
