// Package emit generates the dynamic instruction streams that the timing
// models consume.
//
// The persistent-memory library (internal/pmem) and the workloads execute
// functionally in Go; every operation they perform is mirrored, instruction
// by instruction, into a trace.Sink through an Emitter. This is the same
// division of labour as the paper's methodology (§5.1), where Pin observes a
// functionally executing x86 binary and feeds a dynamic instruction stream
// to Sniper.
//
// The Emitter operates in one of two modes, mirroring the paper's library
// variants:
//
//   - Base: persistent accesses are compiled to the software-translation
//     sequence of Figure 3 (see SoftTranslator) followed by ordinary loads
//     and stores on the translated virtual address.
//   - Opt: persistent accesses are compiled to single nvld/nvst
//     instructions carrying the ObjectID.
//
// Program counters: only conditional branches need stable PCs (for the
// direction predictor), so each static branch site is identified by a label
// string hashed to a synthetic PC. Other instructions carry PC 0.
package emit

import (
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/trace"
)

// Mode selects how persistent accesses are compiled.
type Mode int

const (
	// Base uses software ObjectID translation (paper's BASE).
	Base Mode = iota
	// Opt uses the nvld/nvst hardware (paper's OPT).
	Opt
	// Fixed models the Mnemosyne/NVHeaps-era alternative the paper's
	// introduction discusses: every pool is mapped at a fixed virtual
	// address in all processes, so programs use raw pointers — no
	// ObjectIDs, no translation, no relocation, and no ASLR for
	// persistent segments. It is the no-translation upper bound bought
	// at a security/composability cost.
	Fixed
)

func (m Mode) String() string {
	switch m {
	case Base:
		return "BASE"
	case Opt:
		return "OPT"
	case Fixed:
		return "FIXED"
	default:
		return "Mode?"
	}
}

// Emitter writes instructions to a sink and manages temporary registers.
type Emitter struct {
	sink     trace.Sink
	mode     Mode
	next     int
	count    uint64
	paused   bool
	detached bool
	dropped  uint64

	// Stack-frame traffic: when attached, Compute interleaves loads and
	// stores to this region among its ALU work, so the emitted
	// instruction mix carries the ~25% memory-operation share of real
	// compiled code (spills, locals, call frames) instead of being pure
	// ALU. The region cycles like a hot stack: it stays L1-resident.
	stackBase uint64
	stackSize uint64
	stackOff  uint64

	// persistObs, when set, observes every CLWB and SFence — even while
	// emission is paused, because durability is a property of the
	// simulated machine, not of the measured region.
	persistObs PersistObserver
}

// PersistObserver receives the durability-relevant instructions as they
// are issued. The persistent-memory heap registers itself here so its
// volatile write-back cache model (internal/nvmsim) tracks which lines a
// fence actually made durable.
type PersistObserver interface {
	// ObserveCLWB is called with the line-aligned virtual address of
	// every cache-line write-back.
	ObserveCLWB(va uint64)
	// ObserveSFence is called for every store fence.
	ObserveSFence()
}

// SetPersistObserver installs (or, with nil, removes) the observer.
func (e *Emitter) SetPersistObserver(o PersistObserver) { e.persistObs = o }

// New creates an Emitter in the given mode.
func New(sink trace.Sink, mode Mode) *Emitter {
	return &Emitter{sink: sink, mode: mode, next: tempLo}
}

// Temporary registers rotate through r16..r63; r1..r15 are reserved for
// callers that want long-lived values.
const (
	tempLo = 16
	tempHi = isa.NumRegs
)

// AttachStack gives the emitter a mapped region to place stack-frame
// traffic in (see the Emitter doc). Without it, Compute emits pure ALU.
func (e *Emitter) AttachStack(base, size uint64) {
	e.stackBase, e.stackSize = base, size&^7
}

// Mode returns the compilation mode.
func (e *Emitter) Mode() Mode { return e.mode }

// Count returns the number of instructions emitted so far.
func (e *Emitter) Count() uint64 { return e.count }

// Temp returns a fresh temporary register. Registers rotate, so values in
// temporaries are only valid across short instruction windows — which is all
// the timing models' dependency tracking needs.
func (e *Emitter) Temp() isa.Reg {
	if e.detached {
		return isa.Reg(tempLo)
	}
	r := e.next
	e.next++
	if e.next == tempHi {
		e.next = tempLo
	}
	return isa.Reg(r)
}

// Pause suspends instruction emission: library calls still execute
// functionally but produce no trace. Used to exclude setup phases (e.g.
// TPC-C database population) from the measured region, the trace-driven
// analogue of fast-forwarding to a region of interest.
func (e *Emitter) Pause() { e.paused = true }

// Resume re-enables emission after Pause.
func (e *Emitter) Resume() { e.paused = false }

// Paused reports whether emission is suspended.
func (e *Emitter) Paused() bool { return e.paused }

// Detach permanently turns the emitter into a no-op shell: no instruction
// is recorded, counted, or handed to the sink, and Temp stops rotating
// registers so the emitter carries no mutable state on the emission path.
// Persist observation (CLWB/SFence) still fires — durability is a property
// of the simulated machine, not of the trace.
//
// Detach exists for concurrent heaps: an instruction stream is a
// single-threaded notion (the golden-number tests depend on bit-exact
// ordering), so a heap serving multiple goroutines detaches its emitter and
// keeps only the persistence-domain events. There is no re-attach.
func (e *Emitter) Detach() { e.detached = true }

// Detached reports whether the emitter has been detached.
func (e *Emitter) Detached() bool { return e.detached }

// Dropped returns the number of instructions suppressed while paused.
func (e *Emitter) Dropped() uint64 { return e.dropped }

func (e *Emitter) emit(in isa.Instr) {
	if e.detached {
		return
	}
	if e.paused {
		e.dropped++
		return
	}
	e.count++
	e.sink.Emit(in)
}

// Nop emits a pipeline bubble.
func (e *Emitter) Nop() { e.emit(isa.Instr{Op: isa.Nop}) }

// ALU emits a single-cycle integer op dst = f(src1, src2).
func (e *Emitter) ALU(dst, src1, src2 isa.Reg) {
	e.emit(isa.Instr{Op: isa.ALU, Dst: dst, Src1: src1, Src2: src2})
}

// Mul emits a 3-cycle multiply.
func (e *Emitter) Mul(dst, src1, src2 isa.Reg) {
	e.emit(isa.Instr{Op: isa.Mul, Dst: dst, Src1: src1, Src2: src2})
}

// Div emits a 20-cycle divide.
func (e *Emitter) Div(dst, src1, src2 isa.Reg) {
	e.emit(isa.Instr{Op: isa.Div, Dst: dst, Src1: src1, Src2: src2})
}

// Branch emits a conditional branch. The label identifies the static branch
// site (hashed to a stable synthetic PC); taken is the resolved direction.
func (e *Emitter) Branch(label string, taken bool, deps ...isa.Reg) {
	in := isa.Instr{Op: isa.Branch, PC: labelPC(label), Taken: taken}
	if len(deps) > 0 {
		in.Src1 = deps[0]
	}
	if len(deps) > 1 {
		in.Src2 = deps[1]
	}
	e.emit(in)
}

// Jump emits an unconditional direct jump/call/return (predicted, free
// beyond its slot).
func (e *Emitter) Jump() { e.emit(isa.Instr{Op: isa.Jump}) }

// Load emits a load of size bytes at virtual address va into dst. addrReg
// (may be RZ) is the register the address was computed from, establishing
// the dependency for pointer chasing.
func (e *Emitter) Load(dst isa.Reg, addrReg isa.Reg, va uint64, size uint8) {
	e.emit(isa.Instr{Op: isa.Load, Dst: dst, Src1: addrReg, Addr: va, Size: size})
}

// Store emits a store of size bytes of register data at virtual address va.
func (e *Emitter) Store(addrReg isa.Reg, va uint64, size uint8, data isa.Reg) {
	e.emit(isa.Instr{Op: isa.Store, Src1: addrReg, Src2: data, Addr: va, Size: size})
}

// NVLoad emits the paper's nvld: dst = MEM[Lookup(oid)+0].
func (e *Emitter) NVLoad(dst isa.Reg, oidReg isa.Reg, o oid.OID, size uint8) {
	e.emit(isa.Instr{Op: isa.NVLoad, Dst: dst, Src1: oidReg, Addr: uint64(o), Size: size})
}

// NVStore emits the paper's nvst: MEM[Lookup(oid)+0] = data.
func (e *Emitter) NVStore(oidReg isa.Reg, o oid.OID, size uint8, data isa.Reg) {
	e.emit(isa.Instr{Op: isa.NVStore, Src1: oidReg, Src2: data, Addr: uint64(o), Size: size})
}

// CLWB emits a cache-line write-back of the line containing va.
func (e *Emitter) CLWB(va uint64) {
	if e.persistObs != nil {
		e.persistObs.ObserveCLWB(va &^ 63)
	}
	e.emit(isa.Instr{Op: isa.CLWB, Addr: va &^ 63, Size: 64})
}

// SFence emits a store fence.
func (e *Emitter) SFence() {
	if e.persistObs != nil {
		e.persistObs.ObserveSFence()
	}
	e.emit(isa.Instr{Op: isa.SFence})
}

// computeILP is the instruction-level parallelism of emitted straight-line
// bookkeeping code: Compute arranges its instructions as this many
// independent dependency chains that join at the end, matching the ILP a
// compiler typically exposes in address arithmetic and call-frame code. An
// in-order single-issue core still spends one cycle per instruction; an
// out-of-order core overlaps the chains — which is exactly why the paper's
// out-of-order baseline hides part of the software-translation cost (§6.1).
const computeILP = 3

// Compute emits n single-cycle ALU instructions seeded by the given
// sources, structured as computeILP parallel chains with a final join, and
// returns the register holding the final value.
func (e *Emitter) Compute(n int, srcs ...isa.Reg) isa.Reg {
	if e.detached {
		return isa.RZ
	}
	if n <= 0 {
		if len(srcs) > 0 {
			return srcs[0]
		}
		return isa.RZ
	}
	var s1, s2 isa.Reg
	if len(srcs) > 0 {
		s1 = srcs[0]
	}
	if len(srcs) > 1 {
		s2 = srcs[1]
	}
	if n <= 2 {
		dst := e.Temp()
		e.ALU(dst, s1, s2)
		for i := 1; i < n; i++ {
			nd := e.Temp()
			e.ALU(nd, dst, isa.RZ)
			dst = nd
		}
		return dst
	}
	// Parallel chains, then join them pairwise.
	chains := computeILP
	if chains > n-1 {
		chains = n - 1
	}
	var headsArr [computeILP]isa.Reg
	heads := headsArr[:chains]
	for i := range heads {
		heads[i] = e.Temp()
		e.ALU(heads[i], s1, s2)
	}
	emitted := chains
	for i := 0; emitted < n-(chains-1); i++ {
		c := i % chains
		nd := e.Temp()
		switch {
		case e.stackSize > 0 && i%4 == 3:
			// A reload from the frame (dependent like any ALU op).
			e.Load(nd, heads[c], e.stackSlot(), 8)
		case e.stackSize > 0 && i%8 == 6 && emitted+2 <= n-(chains-1):
			// A spill to the frame; the chain continues through an
			// ALU op so the value keeps flowing. Two instructions,
			// two budget slots.
			e.Store(isa.RZ, e.stackSlot(), 8, heads[c])
			emitted++
			e.ALU(nd, heads[c], isa.RZ)
		default:
			e.ALU(nd, heads[c], isa.RZ)
		}
		heads[c] = nd
		emitted++
	}
	// Join.
	dst := heads[0]
	for c := 1; c < chains && emitted < n; c++ {
		nd := e.Temp()
		e.ALU(nd, dst, heads[c])
		dst = nd
		emitted++
	}
	for ; emitted < n; emitted++ {
		nd := e.Temp()
		e.ALU(nd, dst, isa.RZ)
		dst = nd
	}
	return dst
}

// stackSlot returns the next stack-frame address, cycling through the
// attached region line by line so frames stay hot in the L1.
func (e *Emitter) stackSlot() uint64 {
	va := e.stackBase + e.stackOff
	e.stackOff += 8
	if e.stackOff >= e.stackSize {
		e.stackOff = 0
	}
	return va
}

// labelPC hashes a static-branch label to a stable synthetic PC (FNV-1a,
// computed inline so per-branch emission does not allocate).
func labelPC(label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return h &^ 3
}
