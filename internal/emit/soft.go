package emit

import (
	"fmt"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/vm"
)

// SoftTranslator is the BASE-mode software translation machinery of paper
// §2.1.3 / Figure 3: a last-value predictor (the most_recent_* globals) in
// front of a chained hash table mapping pool ids to virtual base addresses.
//
// The translator is functional — it really resolves pool bases — and it
// emits the instruction sequence a compiled oid_direct would execute,
// instruction by instruction, with all memory traffic placed on real
// simulated addresses (the globals, the bucket array and the chain entries
// live in a mapped arena, so they occupy cache lines and TLB entries exactly
// the way the paper's "increased working set" discussion describes).
//
// Calibration (paper Table 2): a predictor hit costs exactly 17 dynamic
// instructions; a full look-up costs ~105 for a one-entry chain, +5 per
// extra chain entry probed, landing the per-benchmark EACH averages in the
// paper's 78–107 range.
type SoftTranslator struct {
	e     *Emitter
	as    *vm.AddressSpace
	arena *vm.Arena

	// Globals of Figure 3.
	gValid, gPool, gBase uint64

	// Chained hash table: bucketVA[i] holds the VA of the first entry.
	bucketBase uint64
	nBuckets   uint32

	// Functional mirror of the table.
	chains  map[uint32][]*swEntry
	byPool  map[oid.PoolID]*swEntry
	last    oid.PoolID
	valid   bool
	freeVAs []uint64

	stats SoftStats
}

type swEntry struct {
	pool oid.PoolID
	base uint64
	va   uint64 // address of this entry record in the arena
}

// SoftStats instruments oid_direct for the Table 2 reproduction.
type SoftStats struct {
	// Calls counts oid_direct invocations.
	Calls uint64
	// PredictorHits counts calls satisfied by the most-recent pair.
	PredictorHits uint64
	// Insns counts dynamic instructions spent inside oid_direct.
	Insns uint64
}

// PredictorMissRate is the last-value predictor miss rate (Table 2, last
// column).
func (s SoftStats) PredictorMissRate() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Calls-s.PredictorHits) / float64(s.Calls)
}

// InsnsPerCall is the average dynamic instruction cost of oid_direct
// (Table 2, columns 2–3).
func (s SoftStats) InsnsPerCall() float64 {
	if s.Calls == 0 {
		return 0
	}
	return float64(s.Insns) / float64(s.Calls)
}

// entryBytes is the size of one chain entry {pool, base, next}.
const entryBytes = 24

// NewSoftTranslator allocates the translation globals and hash table in a
// fresh arena of the address space.
func NewSoftTranslator(e *Emitter, as *vm.AddressSpace, buckets int) (*SoftTranslator, error) {
	if buckets <= 0 || buckets&(buckets-1) != 0 {
		return nil, fmt.Errorf("emit: buckets (%d) must be a positive power of two", buckets)
	}
	// Arena: globals + bucket array + room for entries.
	arena, err := vm.NewArena(as, uint64(buckets)*8+1<<20)
	if err != nil {
		return nil, err
	}
	st := &SoftTranslator{
		e: e, as: as, arena: arena,
		nBuckets: uint32(buckets),
		chains:   make(map[uint32][]*swEntry),
		byPool:   make(map[oid.PoolID]*swEntry),
	}
	if st.gValid, err = arena.Alloc(8, 8); err != nil {
		return nil, err
	}
	if st.gPool, err = arena.Alloc(8, 8); err != nil {
		return nil, err
	}
	if st.gBase, err = arena.Alloc(8, 8); err != nil {
		return nil, err
	}
	if st.bucketBase, err = arena.Alloc(uint64(buckets)*8, 64); err != nil {
		return nil, err
	}
	return st, nil
}

func (st *SoftTranslator) bucketOf(pool oid.PoolID) uint32 {
	return (uint32(pool) * 2654435769) % st.nBuckets
}

// Register adds a pool→base mapping (called from pool_create/pool_open).
func (st *SoftTranslator) Register(pool oid.PoolID, base uint64) error {
	if pool == oid.NullPool {
		return fmt.Errorf("emit: cannot register reserved pool 0")
	}
	if old, ok := st.byPool[pool]; ok {
		old.base = base
		return nil
	}
	var va uint64
	if n := len(st.freeVAs); n > 0 {
		va = st.freeVAs[n-1]
		st.freeVAs = st.freeVAs[:n-1]
	} else {
		var err error
		if va, err = st.arena.Alloc(entryBytes, 8); err != nil {
			return err
		}
	}
	ent := &swEntry{pool: pool, base: base, va: va}
	b := st.bucketOf(pool)
	st.chains[b] = append(st.chains[b], ent)
	st.byPool[pool] = ent
	return nil
}

// Unregister removes a pool (pool_close); a stale predictor entry for the
// pool is invalidated.
func (st *SoftTranslator) Unregister(pool oid.PoolID) error {
	ent, ok := st.byPool[pool]
	if !ok {
		return fmt.Errorf("emit: unregister of unknown pool %d", pool)
	}
	delete(st.byPool, pool)
	b := st.bucketOf(pool)
	chain := st.chains[b]
	for i, c := range chain {
		if c == ent {
			st.chains[b] = append(chain[:i], chain[i+1:]...)
			break
		}
	}
	st.freeVAs = append(st.freeVAs, ent.va)
	if st.valid && st.last == pool {
		st.valid = false
	}
	return nil
}

// Lookup resolves a pool's base without emitting code (library-internal
// queries that would not call oid_direct).
func (st *SoftTranslator) Lookup(pool oid.PoolID) (uint64, bool) {
	ent, ok := st.byPool[pool]
	if !ok {
		return 0, false
	}
	return ent.base, true
}

// Stats returns oid_direct instrumentation.
func (st *SoftTranslator) Stats() SoftStats { return st.stats }

// ResetStats zeroes instrumentation.
func (st *SoftTranslator) ResetStats() { st.stats = SoftStats{} }

// Translate is oid_direct (paper Figure 3): it emits the dynamic instruction
// sequence for translating o and returns the virtual address along with the
// register holding it. oidReg is the register that holds the ObjectID value
// (dependency source).
func (st *SoftTranslator) Translate(oidReg isa.Reg, o oid.OID) (isa.Reg, uint64, error) {
	ent, ok := st.byPool[o.Pool()]
	if !ok {
		return isa.RZ, 0, fmt.Errorf("emit: oid_direct on unopened pool %d", o.Pool())
	}
	start := st.e.Count()
	st.stats.Calls++
	e := st.e

	wasValid := st.valid
	hit := wasValid && st.last == o.Pool()

	// --- common prologue: call, argument move, predictor-valid check ---
	e.Jump()                   // call oid_direct
	arg := e.Temp()            //
	e.ALU(arg, oidReg, isa.RZ) // move argument
	rValid := e.Temp()
	e.Load(rValid, isa.RZ, st.gValid, 8)
	e.Branch("oid_direct.valid", wasValid, rValid)

	rPool := e.Temp()
	e.ALU(rPool, arg, isa.RZ) // pool_id = oid >> 32

	if hit {
		// --- fast path: exactly 17 dynamic instructions ---
		rMR := e.Temp()
		e.Load(rMR, isa.RZ, st.gPool, 8)
		cmp := e.Temp()
		e.ALU(cmp, rPool, rMR)
		e.Branch("oid_direct.match", true, cmp)
		rBase := e.Temp()
		e.Load(rBase, isa.RZ, st.gBase, 8)
		rOff := e.Temp()
		e.ALU(rOff, arg, isa.RZ) // offset = oid & 0xffffffff
		rVA := e.Temp()
		e.ALU(rVA, rBase, rOff) // base + offset
		e.Compute(5, rVA)       // return-value move, epilogue
		e.Jump()                // ret
		st.stats.PredictorHits++
		st.stats.Insns += st.e.Count() - start
		st.valid, st.last = true, o.Pool()
		return rVA, ent.base + uint64(o.Offset()), nil
	}

	if wasValid {
		// Predictor valid but wrong pool: the compare-and-branch pair
		// executed before falling into the slow path.
		rMR := e.Temp()
		e.Load(rMR, isa.RZ, st.gPool, 8)
		cmp := e.Temp()
		e.ALU(cmp, rPool, rMR)
		e.Branch("oid_direct.match", false, cmp)
	}

	// --- slow path: full table look-up (pmemobj-style machinery) ---
	// Entry into the pool-registry layer: call overhead, lock checks,
	// cached-handle validation. Modelled as a block of dependent ALU work
	// plus a few metadata loads.
	e.Jump() // call into the look-up layer
	meta1 := e.Temp()
	e.Load(meta1, isa.RZ, st.gValid, 8) // registry state
	e.Compute(25, meta1, rPool)

	// Hash the pool id and index the bucket array.
	h := e.Temp()
	e.Mul(h, rPool, isa.RZ)
	idx := e.Compute(3, h) // shift, mask, scale
	b := st.bucketOf(o.Pool())
	bucketVA := st.bucketBase + uint64(b)*8
	rEnt := e.Temp()
	e.Load(rEnt, idx, bucketVA, 8)

	// Walk the chain to the matching entry.
	chain := st.chains[b]
	for _, c := range chain {
		rEPool := e.Temp()
		e.Load(rEPool, rEnt, c.va, 8) // entry->pool
		cmp := e.Temp()
		e.ALU(cmp, rEPool, rPool)
		match := c.pool == o.Pool()
		e.Branch("oid_direct.chain", match, cmp)
		if match {
			break
		}
		next := e.Temp()
		e.Load(next, rEnt, c.va+16, 8) // entry->next
		rEnt = next
		e.Jump()
	}

	// Load the base and update the most-recent pair.
	rBase := e.Temp()
	e.Load(rBase, rEnt, ent.va+8, 8) // entry->base
	one := e.Compute(1)
	e.Store(isa.RZ, st.gValid, 8, one)
	e.Store(isa.RZ, st.gPool, 8, rPool)
	e.Store(isa.RZ, st.gBase, 8, rBase)

	// Return through the library layers: handle repacking, unlock,
	// epilogue.
	e.Compute(56, rBase)
	rOff := e.Temp()
	e.ALU(rOff, arg, isa.RZ)
	rVA := e.Temp()
	e.ALU(rVA, rBase, rOff)
	e.Compute(8, rVA)
	e.Jump() // ret

	// Functional predictor update.
	st.valid, st.last = true, o.Pool()
	st.stats.Insns += st.e.Count() - start
	return rVA, ent.base + uint64(o.Offset()), nil
}
