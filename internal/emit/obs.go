package emit

import "potgo/internal/obs"

// PublishMetrics adds the BASE-mode software-translation counters to the
// registry under "emit.oid_direct.". Safe on a nil registry.
func (s SoftStats) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Counter("emit.oid_direct.calls").Add(s.Calls)
	reg.Counter("emit.oid_direct.predictor_hits").Add(s.PredictorHits)
	reg.Counter("emit.oid_direct.insns").Add(s.Insns)
	reg.Gauge("emit.oid_direct.predictor_miss_rate").Set(s.PredictorMissRate())
	reg.Gauge("emit.oid_direct.insns_per_call").Set(s.InsnsPerCall())
}
