// Package cluster turns N potserve nodes into one replicated object store:
// a consistent-hash ring partitions the key space into per-node segments,
// every node follows every other node's op log over the potserve wire
// protocol (full replication), and a write is acknowledged to the client
// only once a majority of the original membership holds it durably. A
// routing client resolves the owner per key and refreshes the topology when
// a node redirects or dies; an in-process coordinator performs failover:
// catch up the survivors on the dead node's log, bump the epoch, and move
// its ring segment to the survivors.
package cluster

import "sort"

// vnodesPerNode is the number of ring points each node projects. 64 points
// per node keeps the largest/smallest segment ratio low enough that a
// 3-node cluster's load stays within ~2x across nodes.
const vnodesPerNode = 64

// mix64 is splitmix64's finalizer: a cheap, well-distributed 64-bit hash
// used for ring points and key placement alike.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

type ringPoint struct {
	hash uint64
	id   uint32
}

// Ring is a consistent-hash ring over a set of node ids. It is immutable
// once built; topology changes build a new ring over the surviving ids, so
// only the dead node's segments move.
type Ring struct {
	points []ringPoint
}

// BuildRing constructs the ring over the given node ids. The points depend
// only on the ids, so every node and client derives the identical ring from
// the same membership.
func BuildRing(ids []uint32) *Ring {
	r := &Ring{points: make([]ringPoint, 0, len(ids)*vnodesPerNode)}
	for _, id := range ids {
		for v := 0; v < vnodesPerNode; v++ {
			h := mix64(uint64(id)<<32 | uint64(v)<<1 | 1)
			r.points = append(r.points, ringPoint{hash: h, id: id})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
	return r
}

// Owner returns the node id owning key: the first ring point at or after
// the key's hash, wrapping at the top.
func (r *Ring) Owner(key uint64) uint32 {
	h := mix64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}
