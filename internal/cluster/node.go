package cluster

import (
	"fmt"
	"sync"
	"time"

	"potgo/internal/nvmsim"
	"potgo/internal/objstore"
	"potgo/internal/potserve"
)

// Replication and coordination round trips are bounded: a hung peer (a
// partition that drops packets without resetting the connection) must turn
// into a failed ack or a failed catch-up, never a coordinator — or every
// client write on it — blocked forever.
const (
	peerDialTimeout = 5 * time.Second
	peerCallTimeout = 15 * time.Second
)

// dialPeer dials a member for replication traffic with connect and
// per-round-trip deadlines armed.
func dialPeer(addr string) (*potserve.Client, error) {
	c, err := potserve.DialTimeout(addr, peerDialTimeout)
	if err != nil {
		return nil, err
	}
	c.SetTimeout(peerCallTimeout)
	return c, nil
}

// Applied is one log entry as applied on a node, stamped with the context
// the verifier needs: the epoch the sender claimed when it pushed the entry
// and the node's own epoch at apply time. An entry applied with
// SenderEpoch < NodeEpoch is the split-brain signature — a deposed primary
// got a write accepted after the membership moved on — and the honest
// follower path rejects exactly that.
type Applied struct {
	potserve.RepEntry
	Origin      uint32
	SenderEpoch uint64
	NodeEpoch   uint64
}

// Node is one cluster member: a potserve Backend that owns a ring segment
// (it coordinates writes for its keys), follows every peer's op log, and
// replicates its own log to the peers, acknowledging a write only once a
// majority of the original membership holds it durably.
//
// A node whose heap crashes (an armed nvmsim event fires during a local
// apply) recovers the panic, marks itself dead and shuts its server down —
// the in-process analogue of the process dying: in-flight clients see
// connection errors, peers stop getting acks.
type Node struct {
	ID uint32
	KV *objstore.KV

	// onDeath, when non-nil, runs once on the first recovered crash signal
	// (the harness uses it to close the node's listener asynchronously).
	onDeath func()

	mu   sync.Mutex
	topo Topology
	// wmu serializes local apply + log append on the coordinator path, so
	// one node's per-key apply order equals its log order. It is NEVER held
	// across a network call: the replication push runs on per-peer backlog
	// streams instead, which is what keeps two nodes writing to each other
	// deadlock-free.
	wmu sync.Mutex
	// repmu[origin] serializes follower applies per origin. Different
	// origins own disjoint key segments, so per-origin locking preserves
	// per-key order without coupling the origins (or the local write path).
	repmu sync.Map // uint32 -> *sync.Mutex
	// seq numbers this node's own log from 1.
	seq uint64
	// tracker counts durability acks for this node's own log.
	tracker *Tracker
	// watermark[origin] is the highest seq applied in order per origin.
	watermark map[uint32]uint64
	// applied[origin] is the in-order applied log per origin, including
	// this node's own, minus any compacted prefix: applied[origin][i]
	// holds Seq trimmed[origin]+i+1. Volatile by design — the persistent
	// truth is the KV journal + op counters; the applied log is the
	// replication state the verifier audits (the crash harness never
	// compacts, so it audits full logs).
	applied map[uint32][]Applied
	// trimmed[origin] is the compaction floor: entries with
	// Seq <= trimmed[origin] have been discarded from applied[origin].
	trimmed map[uint32]uint64

	// peers holds one replication stream per peer: a lazily-dialed client,
	// the peer's last confirmed watermark for OUR log, and a lock
	// serializing pushes to that peer. Every push sends the whole backlog
	// past the confirmed watermark, so concurrent writers pushing out of
	// order still deliver the log gap-free.
	peersMu sync.Mutex
	peers   map[uint32]*peerStream

	dead      bool
	deathOnce sync.Once

	// splitBrainMutation disables the stale-epoch rejection on the
	// follower path — the seeded bug the cluster verifier must catch.
	splitBrainMutation bool
}

// NewNode builds a cluster node over a journaled KV at the given topology.
func NewNode(id uint32, kv *objstore.KV, topo Topology) *Node {
	return &Node{
		ID:        id,
		KV:        kv,
		topo:      topo,
		tracker:   NewTracker(topo.Quorum()),
		watermark: make(map[uint32]uint64),
		applied:   make(map[uint32][]Applied),
		trimmed:   make(map[uint32]uint64),
	}
}

// OnDeath registers a hook run once when the node's heap crashes.
func (n *Node) OnDeath(fn func()) { n.onDeath = fn }

// SetTopology installs a new topology (the coordinator's failover push).
// The quorum requirement is over the original membership and never changes.
func (n *Node) SetTopology(t Topology) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if t.Epoch() > n.topo.Epoch() {
		n.topo = t
	}
}

// Topology returns the node's current topology view.
func (n *Node) Topology() Topology {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.topo
}

// Epoch returns the node's current topology epoch.
func (n *Node) Epoch() uint64 { return n.Topology().Epoch() }

// Dead reports whether the node's heap crashed.
func (n *Node) Dead() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dead
}

// MutateSplitBrain disables the follower's stale-epoch rejection: a deposed
// primary's appends are accepted as if its epoch were current. Test-only.
func (n *Node) MutateSplitBrain() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.splitBrainMutation = true
}

// Watermark returns the node's applied watermark for an origin.
func (n *Node) Watermark(origin uint32) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.watermark[origin]
}

// AppliedLog returns a copy of the node's applied log for an origin.
func (n *Node) AppliedLog(origin uint32) []Applied {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]Applied, len(n.applied[origin]))
	copy(out, n.applied[origin])
	return out
}

// Trimmed returns the node's compaction floor for an origin: entries with
// Seq <= Trimmed(origin) have been discarded from the applied log.
func (n *Node) Trimmed(origin uint32) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.trimmed[origin]
}

// CompactBelow discards origin's applied-log entries with Seq <= below
// (clamped to the applied watermark). Safe only when everything that may
// ever ask for this log again — REP backlog pushes, SUB catch-up — already
// holds it through below; the coordinator computes that floor as the
// minimum watermark across alive members. This bounds the volatile applied
// log, which otherwise grows without limit in a long-running cluster; the
// persistent truth (KV + journal) is unaffected.
func (n *Node) CompactBelow(origin uint32, below uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if w := n.watermark[origin]; below > w {
		below = w
	}
	base := n.trimmed[origin]
	if below <= base {
		return
	}
	cut := below - base
	log := n.applied[origin]
	if cut > uint64(len(log)) {
		cut = uint64(len(log))
	}
	// Copy the suffix so the old backing array (and the entry payloads it
	// pins) is released.
	n.applied[origin] = append([]Applied(nil), log[cut:]...)
	n.trimmed[origin] = base + cut
}

// SelfCompact bounds the node's applied logs without a coordinator (the
// multi-process potserve cluster mode, which has no failover driver): the
// node's own log is trimmed below the lowest watermark its alive peers
// have confirmed on their replication streams — a down peer (confirmed 0)
// pins the whole log, exactly the backlog it will need — and every other
// origin's log keeps a MaxRepEntries retention tail past this node's
// applied watermark, enough to serve one catch-up frame. The in-process
// coordinator never calls this; it compacts cluster-wide via
// Cluster.Compact, and the crash harness not at all.
func (n *Node) SelfCompact() {
	t := n.Topology()
	floor := n.Watermark(n.ID)
	for _, tn := range t.Wire.Nodes {
		if tn.ID == n.ID || !tn.Alive {
			continue
		}
		ps := n.peer(tn.ID)
		ps.mu.Lock()
		known := ps.known
		ps.mu.Unlock()
		if known < floor {
			floor = known
		}
	}
	n.CompactBelow(n.ID, floor)
	for _, tn := range t.Wire.Nodes {
		if tn.ID == n.ID {
			continue
		}
		if w := n.Watermark(tn.ID); w > uint64(potserve.MaxRepEntries) {
			n.CompactBelow(tn.ID, w-uint64(potserve.MaxRepEntries))
		}
	}
}

// Seq returns the node's own log length (last assigned sequence).
func (n *Node) Seq() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.seq
}

// Tracker returns the node's quorum tracker for its own log.
func (n *Node) Tracker() *Tracker { return n.tracker }

// markDead flags the node dead and runs the death hook once.
func (n *Node) markDead() {
	n.mu.Lock()
	n.dead = true
	n.mu.Unlock()
	n.deathOnce.Do(func() {
		if n.onDeath != nil {
			n.onDeath()
		}
	})
}

// peerStream is one replication stream to a peer: pushes serialize on mu,
// conn is redialed after errors, and known tracks the peer's confirmed
// watermark for this node's own log.
type peerStream struct {
	mu    sync.Mutex
	conn  *potserve.Client
	known uint64
}

// peer returns the stream for a peer node, creating it on first use.
func (n *Node) peer(id uint32) *peerStream {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	if n.peers == nil {
		n.peers = make(map[uint32]*peerStream)
	}
	ps, ok := n.peers[id]
	if !ok {
		ps = &peerStream{}
		n.peers[id] = ps
	}
	return ps
}

// Close tears down the node's replication streams.
func (n *Node) Close() {
	n.peersMu.Lock()
	defer n.peersMu.Unlock()
	for id, ps := range n.peers {
		ps.mu.Lock()
		if ps.conn != nil {
			ps.conn.Close()
			ps.conn = nil
		}
		ps.mu.Unlock()
		delete(n.peers, id)
	}
}

// Exec implements potserve.Backend. Reads serve locally after an ownership
// check; writes run the replicated commit protocol; replication ops run the
// follower state machine. A crash signal from the heap (armed nvmsim event,
// or any event after poisoning) is recovered here and turns into node
// death, exactly like a process crash under a real power cut.
func (n *Node) Exec(req *potserve.Request, resp *potserve.Response) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := nvmsim.AsCrashSignal(r); !ok {
			panic(r)
		}
		n.markDead()
		// The response never reaches the client: the death hook closes the
		// server, tearing every connection down mid-flight. Fill a refusal
		// anyway so an in-process caller sees a coherent response.
		*resp = potserve.Response{Status: potserve.StatusErr, Msg: "cluster: node crashed"}
	}()
	if n.Dead() {
		*resp = potserve.Response{Status: potserve.StatusErr, Msg: "cluster: node is dead"}
		return
	}
	switch req.Op {
	case potserve.OpGet, potserve.OpScan, potserve.OpPing:
		n.execRead(req, resp)
	case potserve.OpPut, potserve.OpDel:
		n.execWrite(req, resp)
	case potserve.OpRep:
		n.execRep(req, resp)
	case potserve.OpSub:
		n.execSub(req, resp)
	case potserve.OpAck:
		n.execAck(req, resp)
	case potserve.OpTopo:
		t := n.Topology()
		*resp = potserve.Response{Status: potserve.StatusOK, Topo: t.Wire}
	case potserve.OpTx:
		// Multi-key transactions would need a cross-node commit protocol;
		// the cluster tier serves single-key ops and scans only.
		*resp = potserve.Response{Status: potserve.StatusErr, Msg: "cluster: TX is not supported in cluster mode"}
	default:
		*resp = potserve.Response{Status: potserve.StatusErr, Msg: fmt.Sprintf("cluster: unhandled op %d", req.Op)}
	}
}

// execRead serves GET/SCAN/PING locally. Every node applies every origin's
// log, so the local KV holds the full data set; GET still checks ownership
// — only the owner's copy reflects its latest acknowledged writes, a
// non-owner may lag the tail of the owner's log. SCAN answers from the
// local replica and the routing client merges per-owner results.
func (n *Node) execRead(req *potserve.Request, resp *potserve.Response) {
	if req.Op == potserve.OpGet {
		t := n.Topology()
		owner, ok := t.Owner(req.Key)
		if !ok || owner != n.ID {
			*resp = potserve.Response{Status: potserve.StatusNotOwner}
			return
		}
	}
	(&potserve.KVBackend{KV: n.KV}).Exec(req, resp)
}

// execWrite runs the replicated commit: ownership check, local durable
// apply + log append under wmu, then a push to every alive peer on its
// backlog stream, acking the client only at quorum.
func (n *Node) execWrite(req *potserve.Request, resp *potserve.Response) {
	t := n.Topology()
	owner, ok := t.Owner(req.Key)
	if !ok || owner != n.ID {
		*resp = potserve.Response{Status: potserve.StatusNotOwner}
		return
	}

	// Local durable apply first: the entry must be on stable storage here
	// before any peer can be told about it, so a quorum ack implies the
	// entry is durable on every acking node including the coordinator. wmu
	// keeps per-key apply order equal to log order and is released before
	// any network traffic. The apply runs in a closure with deferred
	// unlocks: a crash signal out of the KV must not strand the mutex, or
	// every later handler (and Server.Close, which waits for them) hangs.
	del := req.Op == potserve.OpDel
	var created, existed bool
	var entry potserve.RepEntry
	var epoch uint64
	err := func() error {
		n.wmu.Lock()
		defer n.wmu.Unlock()
		var err error
		if del {
			existed, err = n.KV.Delete(req.Key)
		} else {
			created, err = n.KV.Put(req.Key, req.Val)
		}
		if err != nil {
			return err
		}
		n.mu.Lock()
		defer n.mu.Unlock()
		n.seq++
		epoch = n.topo.Epoch()
		entry = potserve.RepEntry{Seq: n.seq, Epoch: epoch, Key: req.Key, Val: req.Val, Del: del}
		n.watermark[n.ID] = entry.Seq
		n.applied[n.ID] = append(n.applied[n.ID], Applied{
			RepEntry: entry, Origin: n.ID, SenderEpoch: epoch, NodeEpoch: epoch,
		})
		return nil
	}()
	if err != nil {
		*resp = potserve.Response{Status: potserve.StatusErr, Msg: err.Error()}
		return
	}
	n.tracker.Ack(entry.Seq, n.ID)

	// Push the backlog to every alive peer; each REP response is that
	// peer's durable watermark for our log — the ack.
	for _, tn := range t.Wire.Nodes {
		if tn.ID == n.ID || !tn.Alive {
			continue
		}
		n.pushBacklog(tn, entry.Seq, epoch)
	}

	if !n.tracker.Durable(entry.Seq) {
		// The write may be durable on a minority; without quorum it is NOT
		// acknowledged and the client must treat it as possibly-lost.
		*resp = potserve.Response{Status: potserve.StatusErr, Msg: "cluster: write did not reach quorum"}
		return
	}
	if del {
		if existed {
			*resp = potserve.Response{Status: potserve.StatusOK}
		} else {
			*resp = potserve.Response{Status: potserve.StatusNotFound}
		}
		return
	}
	*resp = potserve.Response{Status: potserve.StatusOK, Created: created}
}

// pushBacklog sends this node's log entries past the peer's confirmed
// watermark until the peer confirms at least seq, chunking at
// MaxRepEntries per REP frame, and records each returned watermark in the
// quorum tracker. The loop matters: a backlog deeper than one frame (the
// peer was down, or a write burst outran it) must drain fully before the
// write is judged, or a healthy peer's ack would be missed and the client
// would get a spurious quorum failure. Pushes to one peer serialize on
// its stream lock; because every push resumes from the confirmed
// watermark, two writers racing to push still deliver the log in order
// with no gaps — whichever push lands first carries both entries, and the
// response watermark acks both.
func (n *Node) pushBacklog(tn potserve.TopoNode, seq, epoch uint64) {
	ps := n.peer(tn.ID)
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for ps.known < seq {
		n.mu.Lock()
		log := n.applied[n.ID]
		base := n.trimmed[n.ID]
		from := ps.known
		if from < base {
			// Entries at or below the compaction floor are confirmed
			// durable on every alive peer (the invariant compaction trims
			// under); ps.known is merely stale. Resume at the floor and
			// let the REP response watermark correct it.
			from = base
		}
		// Own-log entries are in order with Seq == base+index+1.
		idx := from - base
		if idx > uint64(len(log)) {
			idx = uint64(len(log))
		}
		end := uint64(len(log))
		if end-idx > uint64(potserve.MaxRepEntries) {
			end = idx + uint64(potserve.MaxRepEntries)
		}
		entries := make([]potserve.RepEntry, 0, end-idx)
		for _, a := range log[idx:end] {
			entries = append(entries, a.RepEntry)
		}
		n.mu.Unlock()
		if len(entries) == 0 {
			return
		}
		if ps.conn == nil {
			c, err := dialPeer(tn.Addr)
			if err != nil {
				return
			}
			ps.conn = c
		}
		w, err := ps.conn.Rep(n.ID, epoch, entries)
		if err != nil {
			// Connection error or round-trip timeout: the response stream
			// is out of sync, so drop the connection and count this round
			// as a failed ack. The next write redials and resumes.
			ps.conn.Close()
			ps.conn = nil
			return
		}
		n.tracker.Ack(w, tn.ID)
		if w <= ps.known {
			return // peer refused (stale epoch) or stalled: no progress
		}
		ps.known = w
	}
}

// originLock returns the apply lock for one origin's log.
func (n *Node) originLock(origin uint32) *sync.Mutex {
	v, _ := n.repmu.LoadOrStore(origin, &sync.Mutex{})
	return v.(*sync.Mutex)
}

// execRep is the follower state machine: apply an origin's entries in
// sequence order exactly once, refuse stale-epoch senders, answer the
// durable watermark.
func (n *Node) execRep(req *potserve.Request, resp *potserve.Response) {
	lk := n.originLock(req.Origin)
	lk.Lock()
	defer lk.Unlock()

	n.mu.Lock()
	nodeEpoch := n.topo.Epoch()
	mutated := n.splitBrainMutation
	n.mu.Unlock()

	// Epoch fence: a sender below our epoch is a deposed primary (or a
	// partitioned one) — accepting its writes is exactly how split brain
	// corrupts a cluster, so the honest path refuses. The seeded mutation
	// skips this check and the verifier must catch the consequence.
	if !mutated && req.Epoch < nodeEpoch {
		*resp = potserve.Response{Status: potserve.StatusErr,
			Msg: fmt.Sprintf("cluster: stale epoch %d < %d", req.Epoch, nodeEpoch)}
		return
	}

	origin := req.Origin
	for _, e := range req.Entries {
		n.mu.Lock()
		w := n.watermark[origin]
		n.mu.Unlock()
		if e.Seq <= w {
			continue // duplicate delivery; applies are exactly-once
		}
		if e.Seq != w+1 {
			break // gap: answer the watermark, the sender re-sends from there
		}
		var err error
		if e.Del {
			_, err = n.KV.Delete(e.Key)
		} else {
			_, err = n.KV.Put(e.Key, e.Val)
		}
		if err != nil {
			*resp = potserve.Response{Status: potserve.StatusErr, Msg: err.Error()}
			return
		}
		n.mu.Lock()
		n.watermark[origin] = e.Seq
		n.applied[origin] = append(n.applied[origin], Applied{
			RepEntry: e, Origin: origin, SenderEpoch: req.Epoch, NodeEpoch: nodeEpoch,
		})
		n.mu.Unlock()
	}
	n.mu.Lock()
	w := n.watermark[origin]
	n.mu.Unlock()
	*resp = potserve.Response{Status: potserve.StatusOK, Seq: w}
}

// execSub answers an origin's applied log suffix (catch-up stream), at
// most MaxRepEntries per response — the subscriber resumes from the
// watermark its REP push confirmed. A request below the compaction floor
// is an explicit error, never a silent gap: the requester's replica can no
// longer be caught up from this node.
func (n *Node) execSub(req *potserve.Request, resp *potserve.Response) {
	n.mu.Lock()
	log := n.applied[req.Origin]
	base := n.trimmed[req.Origin]
	var out []potserve.RepEntry
	if req.Seq >= base {
		// Applied entries are in order with Seq == base+index+1.
		idx := req.Seq - base
		if idx < uint64(len(log)) {
			end := idx + uint64(potserve.MaxRepEntries)
			if end > uint64(len(log)) {
				end = uint64(len(log))
			}
			out = make([]potserve.RepEntry, 0, end-idx)
			for _, a := range log[idx:end] {
				out = append(out, a.RepEntry)
			}
		}
	}
	n.mu.Unlock()
	if req.Seq < base {
		*resp = potserve.Response{Status: potserve.StatusErr,
			Msg: fmt.Sprintf("cluster: origin %d log compacted through %d, cannot serve from %d", req.Origin, base, req.Seq)}
		return
	}
	*resp = potserve.Response{Status: potserve.StatusOK, Entries: out}
}

// execAck records a peer-reported durable watermark in the quorum tracker
// (the coordinator seeds a promoted primary's tracker this way).
func (n *Node) execAck(req *potserve.Request, resp *potserve.Response) {
	n.tracker.Ack(req.Seq, req.Origin)
	*resp = potserve.Response{Status: potserve.StatusOK}
}
