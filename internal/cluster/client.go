package cluster

import (
	"errors"
	"fmt"
	"sort"

	"potgo/internal/pds"
	"potgo/internal/potserve"
)

// maxAttempts bounds a routed operation: first try plus re-routes after a
// topology refresh. Three attempts ride out one failover (stale route →
// refresh → new owner).
const maxAttempts = 3

// Client routes requests to the owning node, refreshing its topology view
// whenever a node redirects (StatusNotOwner), dies (connection error), or
// the epoch moves on. Not safe for concurrent use; open one per goroutine,
// like potserve.Client.
//
// A write that errors out may or may not have been applied (the classic
// unacknowledged-write ambiguity); the client retries it on the refreshed
// topology, which is safe because puts and deletes are idempotent — a
// replayed entry writes the same value again.
type Client struct {
	seeds []string
	topo  Topology
	conns map[uint32]*potserve.Client
}

// DialCluster fetches the topology from the first reachable seed address
// and returns a routing client.
func DialCluster(seeds []string) (*Client, error) {
	c := &Client{seeds: seeds, conns: make(map[uint32]*potserve.Client)}
	if err := c.Refresh(); err != nil {
		return nil, err
	}
	return c, nil
}

// Refresh re-fetches the topology from any reachable member (current
// connections first, then the seed list) and drops connections to members
// no longer alive.
func (c *Client) Refresh() error {
	var lastErr error
	try := func(pc *potserve.Client) bool {
		topo, err := pc.Topo()
		if err != nil {
			lastErr = err
			return false
		}
		if topo.Epoch >= c.topo.Epoch() {
			c.topo = FromWire(topo)
		}
		return true
	}
	for id, pc := range c.conns {
		if try(pc) {
			c.prune()
			return nil
		}
		pc.Close()
		delete(c.conns, id)
	}
	for _, addr := range c.seeds {
		pc, err := potserve.Dial(addr)
		if err != nil {
			lastErr = err
			continue
		}
		ok := try(pc)
		pc.Close()
		if ok {
			c.prune()
			return nil
		}
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no reachable member")
	}
	return fmt.Errorf("cluster: topology refresh failed: %w", lastErr)
}

// prune closes connections to members the current topology marks dead.
func (c *Client) prune() {
	for id, pc := range c.conns {
		alive := false
		for _, n := range c.topo.Wire.Nodes {
			if n.ID == id && n.Alive {
				alive = true
			}
		}
		if !alive {
			pc.Close()
			delete(c.conns, id)
		}
	}
}

// Topology returns the client's current topology view.
func (c *Client) Topology() Topology { return c.topo }

// Close closes every member connection.
func (c *Client) Close() {
	for id, pc := range c.conns {
		pc.Close()
		delete(c.conns, id)
	}
}

// conn returns a connection to the member owning key.
func (c *Client) conn(key uint64) (*potserve.Client, uint32, error) {
	id, ok := c.topo.Owner(key)
	if !ok {
		return nil, 0, errors.New("cluster: empty topology")
	}
	pc, err := c.connTo(id)
	return pc, id, err
}

// connTo returns (dialing if needed) a connection to one member.
func (c *Client) connTo(id uint32) (*potserve.Client, error) {
	if pc, ok := c.conns[id]; ok {
		return pc, nil
	}
	addr, ok := c.topo.Addr(id)
	if !ok {
		return nil, fmt.Errorf("cluster: no address for node %d", id)
	}
	pc, err := potserve.Dial(addr)
	if err != nil {
		return nil, err
	}
	c.conns[id] = pc
	return pc, nil
}

// drop closes and forgets the connection to one member.
func (c *Client) drop(id uint32) {
	if pc, ok := c.conns[id]; ok {
		pc.Close()
		delete(c.conns, id)
	}
}

// retriable reports whether an operation error warrants a topology refresh
// and re-route: redirects and transport errors do; server-side data errors
// (including quorum refusals) do not change under a re-route... except that
// a quorum refusal right after a node death IS resolved by failover, so the
// caller decides how often to retry those.
func retriable(err error) bool {
	var se *potserve.ServerError
	if errors.As(err, &se) {
		return false
	}
	return !errors.Is(err, potserve.ErrCorrupt)
}

// route runs op against the owner of key, refreshing and re-routing on
// redirects and connection errors.
func (c *Client) route(key uint64, op func(*potserve.Client) error) error {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		pc, id, err := c.conn(key)
		if err != nil {
			lastErr = err
			if rerr := c.Refresh(); rerr != nil {
				return rerr
			}
			continue
		}
		err = op(pc)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retriable(err) {
			return err
		}
		if !errors.Is(err, potserve.ErrNotOwner) {
			c.drop(id) // transport error: the connection is gone
		}
		if rerr := c.Refresh(); rerr != nil {
			return rerr
		}
	}
	return fmt.Errorf("cluster: giving up after %d attempts: %w", maxAttempts, lastErr)
}

// Get fetches a key from its owner; ok reports presence.
func (c *Client) Get(key uint64) (val uint64, ok bool, err error) {
	err = c.route(key, func(pc *potserve.Client) error {
		var e error
		val, ok, e = pc.Get(key)
		return e
	})
	return val, ok, err
}

// Put upserts a key through its owner; created reports whether it was
// absent.
func (c *Client) Put(key, val uint64) (created bool, err error) {
	err = c.route(key, func(pc *potserve.Client) error {
		var e error
		created, e = pc.Put(key, val)
		return e
	})
	return created, err
}

// Delete removes a key through its owner; existed reports whether it was
// present.
func (c *Client) Delete(key uint64) (existed bool, err error) {
	err = c.route(key, func(pc *potserve.Client) error {
		var e error
		existed, e = pc.Delete(key)
		return e
	})
	return existed, err
}

// Scan returns up to max pairs with key >= from, ascending, merged across
// the cluster: every alive member scans its local replica and the client
// keeps each pair only from the member owning it, so the result reflects
// each segment's authoritative copy.
func (c *Client) Scan(from uint64, max int) ([]pds.KV, error) {
	for attempt := 0; ; attempt++ {
		out, err := c.scanOnce(from, max)
		if err == nil {
			return out, nil
		}
		if attempt+1 >= maxAttempts || !retriable(err) {
			return nil, err
		}
		if rerr := c.Refresh(); rerr != nil {
			return nil, rerr
		}
	}
}

func (c *Client) scanOnce(from uint64, max int) ([]pds.KV, error) {
	var merged []pds.KV
	for _, id := range c.topo.AliveIDs() {
		pc, err := c.connTo(id)
		if err != nil {
			return nil, err
		}
		kvs, err := pc.Scan(from, max)
		if err != nil {
			c.drop(id)
			return nil, err
		}
		for _, kv := range kvs {
			if owner, ok := c.topo.Owner(kv.Key); ok && owner == id {
				merged = append(merged, kv)
			}
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	if max >= 0 && len(merged) > max {
		merged = merged[:max]
	}
	return merged, nil
}

// Pipeline routes a batch: requests partition by owner, each member's
// sub-batch rides one pipelined potserve round trip, and the responses
// land back at their original indices. On a redirect or connection error
// the whole batch is retried on a refreshed topology (idempotent ops make
// the replay safe).
func (c *Client) Pipeline(reqs []potserve.Request) ([]potserve.Response, error) {
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		resps, err := c.pipelineOnce(reqs)
		if err == nil {
			return resps, nil
		}
		lastErr = err
		if !retriable(err) {
			return nil, err
		}
		if rerr := c.Refresh(); rerr != nil {
			return nil, rerr
		}
	}
	return nil, fmt.Errorf("cluster: pipeline giving up after %d attempts: %w", maxAttempts, lastErr)
}

func (c *Client) pipelineOnce(reqs []potserve.Request) ([]potserve.Response, error) {
	groups := make(map[uint32][]int)
	for i, req := range reqs {
		key := req.Key
		if req.Op == potserve.OpScan || req.Op == potserve.OpPing {
			// Keyless ops ride to an arbitrary alive member.
			ids := c.topo.AliveIDs()
			if len(ids) == 0 {
				return nil, errors.New("cluster: empty topology")
			}
			groups[ids[i%len(ids)]] = append(groups[ids[i%len(ids)]], i)
			continue
		}
		id, ok := c.topo.Owner(key)
		if !ok {
			return nil, errors.New("cluster: empty topology")
		}
		groups[id] = append(groups[id], i)
	}
	out := make([]potserve.Response, len(reqs))
	sub := make([]potserve.Request, 0, len(reqs))
	for id, idxs := range groups {
		pc, err := c.connTo(id)
		if err != nil {
			return nil, err
		}
		sub = sub[:0]
		for _, i := range idxs {
			sub = append(sub, reqs[i])
		}
		resps, err := pc.Pipeline(sub)
		if err != nil {
			c.drop(id)
			return nil, err
		}
		for j, i := range idxs {
			out[i] = resps[j]
			if resps[j].Status == potserve.StatusNotOwner {
				return nil, potserve.ErrNotOwner
			}
		}
	}
	return out, nil
}
