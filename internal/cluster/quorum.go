package cluster

import "sync"

// Tracker counts per-sequence durability acks for one origin's log and
// answers "is seq durable on a quorum?". The primary records its own local
// commit and every follower ack; entries at or below the committed
// watermark are forgotten, so the map holds only in-flight sequences.
type Tracker struct {
	mu        sync.Mutex
	quorum    int
	acks      map[uint64]map[uint32]struct{}
	committed uint64 // every seq <= committed reached quorum
}

// NewTracker returns a tracker requiring the given ack count per sequence.
func NewTracker(quorum int) *Tracker {
	return &Tracker{quorum: quorum, acks: make(map[uint64]map[uint32]struct{})}
}

// Ack records that node holds origin's log durably through seq (a watermark:
// it covers every sequence at or below seq).
func (t *Tracker) Ack(seq uint64, node uint32) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for s := t.committed + 1; s <= seq; s++ {
		m := t.acks[s]
		if m == nil {
			m = make(map[uint32]struct{})
			t.acks[s] = m
		}
		m[node] = struct{}{}
	}
	t.advance()
}

// advance slides the committed watermark over every consecutive sequence
// that reached quorum, releasing its ack set.
func (t *Tracker) advance() {
	for {
		m, ok := t.acks[t.committed+1]
		if !ok || len(m) < t.quorum {
			return
		}
		delete(t.acks, t.committed+1)
		t.committed++
	}
}

// Durable reports whether seq has reached quorum.
func (t *Tracker) Durable(seq uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if seq <= t.committed {
		return true
	}
	return len(t.acks[seq]) >= t.quorum
}

// Committed returns the highest watermark below which every sequence is
// durable on a quorum.
func (t *Tracker) Committed() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.committed
}
