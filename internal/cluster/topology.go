package cluster

import "potgo/internal/potserve"

// Topology wraps the wire-level member list with the derived hash ring.
// The ring is built over the alive members only, so a failover (mark dead,
// bump epoch) moves exactly the dead node's segments to the survivors.
type Topology struct {
	Wire potserve.Topology
	ring *Ring
}

// NewTopology builds a topology at the given epoch over the given members.
func NewTopology(epoch uint64, nodes []potserve.TopoNode) Topology {
	t := Topology{Wire: potserve.Topology{Epoch: epoch, Nodes: nodes}}
	t.ring = BuildRing(t.AliveIDs())
	return t
}

// FromWire rebuilds the derived ring from a wire topology (client side).
func FromWire(w potserve.Topology) Topology { return NewTopology(w.Epoch, w.Nodes) }

// Epoch returns the topology epoch.
func (t Topology) Epoch() uint64 { return t.Wire.Epoch }

// AliveIDs returns the ids of the alive members, in member order.
func (t Topology) AliveIDs() []uint32 {
	ids := make([]uint32, 0, len(t.Wire.Nodes))
	for _, n := range t.Wire.Nodes {
		if n.Alive {
			ids = append(ids, n.ID)
		}
	}
	return ids
}

// Owner returns the id of the alive node owning key.
func (t Topology) Owner(key uint64) (uint32, bool) {
	if t.ring == nil || len(t.ring.points) == 0 {
		return 0, false
	}
	return t.ring.Owner(key), true
}

// Addr returns the address of the member with the given id.
func (t Topology) Addr(id uint32) (string, bool) {
	for _, n := range t.Wire.Nodes {
		if n.ID == id {
			return n.Addr, true
		}
	}
	return "", false
}

// Quorum returns the ack count required for durability: a majority of the
// ORIGINAL membership, dead members included. Counting over the full
// membership (not the alive subset) is what makes two disjoint primaries
// unable to both reach quorum — the split-brain safety argument.
func (t Topology) Quorum() int { return len(t.Wire.Nodes)/2 + 1 }

// MarkDead returns a copy with the given member dead and the epoch bumped.
func (t Topology) MarkDead(id uint32) Topology {
	nodes := make([]potserve.TopoNode, len(t.Wire.Nodes))
	copy(nodes, t.Wire.Nodes)
	for i := range nodes {
		if nodes[i].ID == id {
			nodes[i].Alive = false
		}
	}
	return NewTopology(t.Wire.Epoch+1, nodes)
}
