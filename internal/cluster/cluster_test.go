package cluster

import (
	"testing"

	"potgo/internal/potserve"
)

func testMembers(n int) []potserve.TopoNode {
	nodes := make([]potserve.TopoNode, n)
	for i := range nodes {
		nodes[i] = potserve.TopoNode{ID: uint32(i), Alive: true, Addr: "unused"}
	}
	return nodes
}

func newTestCluster(t *testing.T, n int) *Cluster {
	t.Helper()
	cl, err := NewLocal(n, 2, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Close)
	return cl
}

// TestClusterBasic: routed writes land on their owners, replicate
// everywhere, reach quorum, and read back both through the routing client
// and from every member's local replica log.
func TestClusterBasic(t *testing.T) {
	cl := newTestCluster(t, 3)
	c, err := DialCluster(cl.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 40
	for key := uint64(1); key <= keys; key++ {
		created, err := c.Put(key, key*100)
		if err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
		if !created {
			t.Fatalf("put %d: not created", key)
		}
	}
	for key := uint64(1); key <= keys; key++ {
		val, ok, err := c.Get(key)
		if err != nil || !ok || val != key*100 {
			t.Fatalf("get %d: val=%d ok=%v err=%v", key, val, ok, err)
		}
	}
	if existed, err := c.Delete(7); err != nil || !existed {
		t.Fatalf("delete: existed=%v err=%v", existed, err)
	}
	if _, ok, _ := c.Get(7); ok {
		t.Fatal("deleted key still present")
	}
	kvs, err := c.Scan(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != keys-1 {
		t.Fatalf("scan returned %d pairs, want %d", len(kvs), keys-1)
	}
	for i := 1; i < len(kvs); i++ {
		if kvs[i].Key <= kvs[i-1].Key {
			t.Fatal("scan not ascending")
		}
	}

	// Full replication: every member holds every origin's log, and the
	// origins' logs are gap-free.
	total := 0
	for _, m := range cl.Members {
		total += int(m.Node.Seq())
	}
	if total != keys+1 {
		t.Fatalf("origin logs hold %d entries, want %d", total, keys+1)
	}
	for _, m := range cl.Members {
		for _, origin := range cl.Members {
			log := m.Node.AppliedLog(origin.Node.ID)
			if uint64(len(log)) != origin.Node.Seq() {
				t.Fatalf("member %d holds %d of origin %d's %d entries",
					m.Node.ID, len(log), origin.Node.ID, origin.Node.Seq())
			}
			for i, a := range log {
				if a.Seq != uint64(i+1) {
					t.Fatalf("member %d origin %d: log gap at %d", m.Node.ID, origin.Node.ID, i)
				}
			}
		}
		// Every origin's committed watermark reached quorum.
		if got, want := m.Node.Tracker().Committed(), m.Node.Seq(); got != want {
			t.Fatalf("member %d: committed %d of %d own entries", m.Node.ID, got, want)
		}
	}
}

// TestClusterNotOwnerRedirect: a direct (non-routing) client hitting the
// wrong member gets StatusNotOwner, and the routing client recovers from a
// deliberately stale topology.
func TestClusterNotOwnerRedirect(t *testing.T) {
	cl := newTestCluster(t, 3)
	topo := cl.Topology()
	// Find a key and a member that does NOT own it.
	var key uint64
	var wrong string
	for k := uint64(1); k < 100; k++ {
		owner, _ := topo.Owner(k)
		for _, m := range cl.Members {
			if m.Node.ID != owner {
				key, wrong = k, m.Addr
				break
			}
		}
		if wrong != "" {
			break
		}
	}
	pc, err := potserve.Dial(wrong)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Put(key, 1); err != potserve.ErrNotOwner {
		t.Fatalf("wrong-member put: %v, want ErrNotOwner", err)
	}
	if _, _, err := pc.Get(key); err != potserve.ErrNotOwner {
		t.Fatalf("wrong-member get: %v, want ErrNotOwner", err)
	}
}

// TestClusterFailover: kill a member (cleanly, via server shutdown), fail
// over, and require the moved segment to accept writes at the new epoch
// while acknowledged pre-failover data survives.
func TestClusterFailover(t *testing.T) {
	cl := newTestCluster(t, 3)
	c, err := DialCluster(cl.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 60
	for key := uint64(1); key <= keys; key++ {
		if _, err := c.Put(key, key); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}

	victim := cl.Members[1]
	victim.Srv.Close()
	if err := cl.Failover(victim.Node.ID); err != nil {
		t.Fatal(err)
	}

	// Every key — including the dead member's segment — must read and
	// write through the refreshed topology.
	for key := uint64(1); key <= keys; key++ {
		val, ok, err := c.Get(key)
		if err != nil || !ok || val != key {
			t.Fatalf("get %d after failover: val=%d ok=%v err=%v", key, val, ok, err)
		}
		if _, err := c.Put(key, key+1000); err != nil {
			t.Fatalf("put %d after failover: %v", key, err)
		}
	}
	if got := c.Topology().Epoch(); got != 2 {
		t.Fatalf("client epoch %d after failover, want 2", got)
	}

	// The deposed epoch is fenced: a replication append claiming epoch 1
	// must be refused by a survivor.
	surv := cl.Members[0]
	pc, err := potserve.Dial(surv.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	stale := []potserve.RepEntry{{Seq: victim.Node.Seq() + 1, Epoch: 1, Key: 9999, Val: 1}}
	if _, err := pc.Rep(victim.Node.ID, 1, stale); err == nil {
		t.Fatal("stale-epoch append was accepted")
	}

	// With the mutation seeded, the same stale append goes through — the
	// bug the cluster verifier must catch.
	surv.Node.MutateSplitBrain()
	w, err := pc.Rep(victim.Node.ID, 1, stale)
	if err != nil {
		t.Fatalf("mutated stale append: %v", err)
	}
	if w != victim.Node.Seq()+1 {
		t.Fatalf("mutated stale append watermark %d, want %d", w, victim.Node.Seq()+1)
	}
	log := surv.Node.AppliedLog(victim.Node.ID)
	last := log[len(log)-1]
	if last.SenderEpoch >= last.NodeEpoch {
		t.Fatalf("mutated apply not flagged: sender epoch %d vs node epoch %d", last.SenderEpoch, last.NodeEpoch)
	}
}
