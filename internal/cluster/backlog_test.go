package cluster

import (
	"strings"
	"testing"

	"potgo/internal/potserve"
)

// seedOwnLog injects n synthetic entries into m's own applied log without
// going through the replicated write path — the fast way to create a
// backlog deeper than one MaxRepEntries REP frame. Keys live far above the
// test keyspace; values equal the sequence. The member's own KV is left
// untouched: the paths under test (catch-up, backlog push) serve from the
// applied log, and only the FOLLOWERS apply the entries.
func seedOwnLog(m *Member, n int) {
	nd := m.Node
	nd.mu.Lock()
	defer nd.mu.Unlock()
	epoch := nd.topo.Epoch()
	for i := 0; i < n; i++ {
		nd.seq++
		e := potserve.RepEntry{Seq: nd.seq, Epoch: epoch, Key: 1<<32 + nd.seq, Val: nd.seq}
		nd.watermark[nd.ID] = e.Seq
		nd.applied[nd.ID] = append(nd.applied[nd.ID], Applied{
			RepEntry: e, Origin: nd.ID, SenderEpoch: epoch, NodeEpoch: epoch,
		})
	}
}

// ownedKey returns a key the given member owns under the topology.
func ownedKey(t *testing.T, topo Topology, id uint32) uint64 {
	t.Helper()
	for k := uint64(1); k < 10000; k++ {
		if owner, ok := topo.Owner(k); ok && owner == id {
			return k
		}
	}
	t.Fatal("no key owned by member")
	return 0
}

// TestClusterDeepCatchUp: a member lagging by more than one REP frame
// (> MaxRepEntries entries) must still be caught up COMPLETELY by
// Sync/Failover's catch-up loop — the single-round version of this bug
// silently left survivors missing quorum-acknowledged writes.
func TestClusterDeepCatchUp(t *testing.T) {
	if testing.Short() {
		t.Skip("deep backlog is ~60k applies per follower")
	}
	cl := newTestCluster(t, 3)
	const deep = 2*potserve.MaxRepEntries + 57
	seedOwnLog(cl.Members[0], deep)

	if err := cl.Sync(); err != nil {
		t.Fatalf("sync over deep backlog: %v", err)
	}
	for _, m := range cl.Members[1:] {
		if w := m.Node.Watermark(0); w != deep {
			t.Fatalf("member %d caught up to %d of %d", m.Node.ID, w, deep)
		}
		log := m.Node.AppliedLog(0)
		if len(log) != deep {
			t.Fatalf("member %d holds %d of %d entries", m.Node.ID, len(log), deep)
		}
		for i, a := range log {
			if a.Seq != uint64(i+1) {
				t.Fatalf("member %d: log gap at %d (seq %d)", m.Node.ID, i, a.Seq)
			}
		}
		// The follower actually applied the tail to its replica.
		last := log[len(log)-1]
		if v, ok, err := m.Node.KV.Get(last.Key); err != nil || !ok || v != last.Val {
			t.Fatalf("member %d replica missing tail entry: v=%d ok=%v err=%v", m.Node.ID, v, ok, err)
		}
	}
	// ackSeed advanced the origin's quorum tracker over the whole log.
	if got := cl.Members[0].Node.Tracker().Committed(); got != deep {
		t.Fatalf("origin committed %d of %d after sync", got, deep)
	}
}

// TestClusterDeepBacklogPush: a write that finds more than one REP frame
// of unconfirmed backlog queued for its peers must drain the whole backlog
// and reach quorum, not fail with a spurious quorum error.
func TestClusterDeepBacklogPush(t *testing.T) {
	if testing.Short() {
		t.Skip("deep backlog is ~30k applies per follower")
	}
	cl := newTestCluster(t, 3)
	const deep = potserve.MaxRepEntries + 123
	origin := cl.Members[0]
	seedOwnLog(origin, deep)
	origin.Node.Tracker().Ack(deep, origin.Node.ID)

	c, err := potserve.Dial(origin.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	key := ownedKey(t, cl.Topology(), origin.Node.ID)
	if _, err := c.Put(key, 42); err != nil {
		t.Fatalf("put behind deep backlog: %v", err)
	}
	for _, m := range cl.Members[1:] {
		if w := m.Node.Watermark(0); w != deep+1 {
			t.Fatalf("member %d confirmed %d of %d", m.Node.ID, w, deep+1)
		}
	}
	if !origin.Node.Tracker().Durable(deep + 1) {
		t.Fatal("write not durable on quorum after backlog drain")
	}

	// With every peer confirmed through the tail, SelfCompact may drop the
	// node's whole own log.
	origin.Node.SelfCompact()
	if got := origin.Node.Trimmed(origin.Node.ID); got != deep+1 {
		t.Fatalf("self-compact floor %d, want %d", got, deep+1)
	}
	if n := len(origin.Node.AppliedLog(origin.Node.ID)); n != 0 {
		t.Fatalf("self-compact left %d entries", n)
	}
}

// TestClusterCompact: coordinator-driven compaction trims every synced
// member to the cluster-wide floor, later writes still replicate (the
// backlog push resumes above the floor), and a SUB below the floor is an
// explicit error, never a silent gap.
func TestClusterCompact(t *testing.T) {
	cl := newTestCluster(t, 3)
	c, err := DialCluster(cl.Addrs())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const keys = 40
	for key := uint64(1); key <= keys; key++ {
		if _, err := c.Put(key, key); err != nil {
			t.Fatalf("put %d: %v", key, err)
		}
	}
	if err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
	cl.Compact()
	for _, m := range cl.Members {
		for _, origin := range cl.Members {
			o := origin.Node.ID
			if got, want := m.Node.Trimmed(o), origin.Node.Seq(); got != want {
				t.Fatalf("member %d origin %d: floor %d, want %d", m.Node.ID, o, got, want)
			}
			if n := len(m.Node.AppliedLog(o)); n != 0 {
				t.Fatalf("member %d origin %d: %d entries after compaction", m.Node.ID, o, n)
			}
		}
	}

	// Writes after compaction replicate and read back everywhere.
	for key := uint64(1); key <= keys; key++ {
		if _, err := c.Put(key, key+1000); err != nil {
			t.Fatalf("post-compaction put %d: %v", key, err)
		}
	}
	for key := uint64(1); key <= keys; key++ {
		if val, ok, err := c.Get(key); err != nil || !ok || val != key+1000 {
			t.Fatalf("post-compaction get %d: val=%d ok=%v err=%v", key, val, ok, err)
		}
	}
	if err := cl.Sync(); err != nil {
		t.Fatalf("sync after compaction: %v", err)
	}

	// SUB below the compaction floor refuses explicitly.
	m := cl.Members[0]
	pc, err := potserve.Dial(m.Addr)
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	if _, err := pc.Sub(m.Node.ID, 0); err == nil || !strings.Contains(err.Error(), "compacted") {
		t.Fatalf("sub below floor: %v, want compacted error", err)
	}
}
