package cluster

import (
	"fmt"
	"net"

	"potgo/internal/objstore"
	"potgo/internal/obs"
	"potgo/internal/pmem"
	"potgo/internal/potserve"
)

// Member is one in-process cluster member: its node, server, heap and
// listener address.
type Member struct {
	Node *Node
	Srv  *potserve.Server
	Sh   *pmem.Sharded
	Addr string
}

// Cluster is an in-process N-node cluster plus the coordinator role: it
// builds the members, detects death, and drives failover (catch-up, epoch
// bump, topology push). Production would run the members as separate
// processes and the coordinator as a consensus service; the protocol the
// members speak is identical.
type Cluster struct {
	Members []*Member
	topo    Topology
	seed    int64
}

// NewLocal builds and starts an N-node cluster on loopback listeners, each
// node with its own persistence domain (heap) and journaled KV.
func NewLocal(n, shards int, seed int64, reg *obs.Registry) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("cluster: need at least 2 nodes, got %d", n)
	}
	cl := &Cluster{seed: seed}

	// Listeners first: the topology (with final addresses) must exist
	// before any node serves.
	lns := make([]net.Listener, n)
	nodes := make([]potserve.TopoNode, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		nodes[i] = potserve.TopoNode{ID: uint32(i), Alive: true, Addr: ln.Addr().String()}
	}
	cl.topo = NewTopology(1, nodes)

	for i := 0; i < n; i++ {
		sh, err := pmem.NewSharded(pmem.NewStore(), shards, seed+int64(i))
		if err != nil {
			return nil, err
		}
		kv, err := objstore.CreateKV(sh, fmt.Sprintf("node%d", i))
		if err != nil {
			return nil, err
		}
		kv.EnableJournal()
		node := NewNode(uint32(i), kv, cl.topo)
		srv := potserve.ServeBackend(lns[i], node, reg)
		m := &Member{Node: node, Srv: srv, Sh: sh, Addr: nodes[i].Addr}
		// A heap crash is a process death: tear the server down so every
		// in-flight and future client sees a connection error, never an
		// ack. The close runs on its own goroutine — Close waits for the
		// very handler that recovered the crash signal.
		node.OnDeath(func() { go m.Srv.Close() })
		cl.Members = append(cl.Members, m)
	}
	return cl, nil
}

// Topology returns the coordinator's current topology.
func (c *Cluster) Topology() Topology { return c.topo }

// Addrs returns every member's listen address (dead ones included).
func (c *Cluster) Addrs() []string {
	out := make([]string, len(c.Members))
	for i, m := range c.Members {
		out[i] = m.Addr
	}
	return out
}

// Close shuts every member down.
func (c *Cluster) Close() {
	for _, m := range c.Members {
		m.Node.Close()
		m.Srv.Close()
	}
}

// MutateSplitBrain seeds the split-brain bug on every member: followers
// stop refusing stale-epoch appends, so a deposed primary that keeps
// serving can still get its writes accepted. Test-only.
func (c *Cluster) MutateSplitBrain() {
	for _, m := range c.Members {
		m.Node.MutateSplitBrain()
	}
}

// Failover removes a dead member: survivors are caught up on every lagging
// log (the dead node's log first — it is frozen, its unreplicated tail is
// lost by definition, and its replicated tail must reach every survivor),
// then the epoch is bumped and the new topology installed, moving the dead
// node's ring segment to the survivors. Ordering matters: catch-up
// completes BEFORE the new topology serves, so a key's old-epoch entries
// are applied everywhere before any new-epoch write to it can be
// coordinated — per-key apply order stays (epoch, seq)-sorted on every
// node.
func (c *Cluster) Failover(dead uint32) error {
	next := c.topo.MarkDead(dead)
	survivors := make([]*Member, 0, len(c.Members))
	for _, m := range c.Members {
		if m.Node.ID != dead && !m.Node.Dead() {
			survivors = append(survivors, m)
		}
	}
	if len(survivors) == 0 {
		return fmt.Errorf("cluster: no survivors")
	}

	// Catch every survivor up on every origin's log, over the wire, THEN
	// seed the quorum trackers, THEN install the topology.
	if err := c.catchUp(survivors, next.Epoch()); err != nil {
		return err
	}
	if err := c.ackSeed(survivors); err != nil {
		return err
	}

	// Only now install the new topology: the survivors start refusing the
	// dead epoch and the new owner starts serving the moved segment.
	c.topo = next
	for _, m := range survivors {
		m.Node.SetTopology(next)
	}
	return nil
}

// Sync quiesces replication with no membership change: every alive member
// is caught up on every origin's log at the current epoch and every
// primary's quorum tracker reflects what its peers hold. The crash harness
// runs this before auditing a run in which no node died, so the full-
// replication equality checks are meaningful.
func (c *Cluster) Sync() error {
	alive := make([]*Member, 0, len(c.Members))
	for _, m := range c.Members {
		if !m.Node.Dead() {
			alive = append(alive, m)
		}
	}
	if len(alive) == 0 {
		return fmt.Errorf("cluster: no alive members to sync")
	}
	if err := c.catchUp(alive, c.topo.Epoch()); err != nil {
		return err
	}
	return c.ackSeed(alive)
}

// catchUp streams, for every origin, the longest held log suffix to the
// lagging members, over the wire, pushing at the given epoch. Each Sub/Rep
// round is capped at MaxRepEntries, so the stream LOOPS per member until
// the member's watermark reaches the holder's, resuming from the applied
// watermark each REP response returns. Completing the loop is what makes
// Failover's ordering guarantee real: a survivor more than one frame
// behind must not be declared caught up, or the moved ring segment could
// serve a replica silently missing quorum-acknowledged writes.
func (c *Cluster) catchUp(members []*Member, epoch uint64) error {
	for origin := range c.Members {
		o := uint32(origin)
		var maxW uint64
		var holder *Member
		for _, m := range members {
			if w := m.Node.Watermark(o); holder == nil || w > maxW {
				maxW, holder = w, m
			}
		}
		if holder == nil || maxW == 0 {
			continue
		}
		hc, err := dialPeer(holder.Addr)
		if err != nil {
			return fmt.Errorf("cluster: catch-up dial holder: %w", err)
		}
		for _, m := range members {
			if err := catchUpMember(hc, m, o, epoch, maxW); err != nil {
				hc.Close()
				return err
			}
		}
		hc.Close()
	}
	return nil
}

// catchUpMember drives one member to the holder's watermark for one
// origin's log, one MaxRepEntries frame at a time. A round that moves
// neither the Sub cursor nor the member's watermark is an error — catch-up
// must never silently stop short.
func catchUpMember(hc *potserve.Client, m *Member, o uint32, epoch, maxW uint64) error {
	w := m.Node.Watermark(o)
	if w >= maxW {
		return nil
	}
	mc, err := dialPeer(m.Addr)
	if err != nil {
		return fmt.Errorf("cluster: catch-up dial member: %w", err)
	}
	defer mc.Close()
	for w < maxW {
		entries, err := hc.Sub(o, w)
		if err != nil {
			return fmt.Errorf("cluster: catch-up sub origin %d: %w", o, err)
		}
		if len(entries) == 0 {
			return fmt.Errorf("cluster: catch-up stalled: holder has no entries for origin %d past %d (want %d)", o, w, maxW)
		}
		// The push carries the target epoch: members still at an older
		// epoch accept it (senders ahead of the receiver are fine; only
		// senders BEHIND are deposed primaries).
		nw, err := mc.Rep(o, epoch, entries)
		if err != nil {
			return fmt.Errorf("cluster: catch-up rep origin %d: %w", o, err)
		}
		if nw <= w {
			return fmt.Errorf("cluster: catch-up made no progress: member %d stuck at %d of origin %d's %d", m.Node.ID, nw, o, maxW)
		}
		w = nw
	}
	return nil
}

// Compact trims every alive member's applied logs below the cluster-wide
// confirmed floor: per origin, the minimum watermark across alive members.
// Everything below that floor is applied everywhere that can still be
// caught up, so no future REP backlog push or SUB catch-up needs it. Run
// after Sync to bound the volatile replication logs in a long-lived
// cluster; the crash harness never calls it, so its verifier audits full
// logs.
func (c *Cluster) Compact() {
	alive := make([]*Member, 0, len(c.Members))
	for _, m := range c.Members {
		if !m.Node.Dead() {
			alive = append(alive, m)
		}
	}
	if len(alive) == 0 {
		return
	}
	for origin := range c.Members {
		o := uint32(origin)
		floor := alive[0].Node.Watermark(o)
		for _, m := range alive[1:] {
			if w := m.Node.Watermark(o); w < floor {
				floor = w
			}
		}
		for _, m := range alive {
			m.Node.CompactBelow(o, floor)
		}
	}
}

// ackSeed tells every listed primary what its peers hold of ITS log, so a
// catch-up that advanced a follower also advances the primary's quorum
// tracker (ACK frames: reporter id + watermark).
func (c *Cluster) ackSeed(members []*Member) error {
	for _, m := range members {
		mc, err := dialPeer(m.Addr)
		if err != nil {
			return fmt.Errorf("cluster: ack-seed dial: %w", err)
		}
		for _, other := range members {
			if other == m {
				continue
			}
			if err := mc.AckReport(other.Node.ID, other.Node.Watermark(m.Node.ID)); err != nil {
				mc.Close()
				return fmt.Errorf("cluster: ack-seed report: %w", err)
			}
		}
		mc.Close()
	}
	return nil
}

// FailoverExcept is Failover but the new topology is withheld from one
// surviving member — the partitioned-primary half of the split-brain
// scenario: that member keeps serving its old segment at the old epoch.
// Test-only.
func (c *Cluster) FailoverExcept(dead, partitioned uint32) error {
	next := c.topo.MarkDead(dead)
	c.topo = next
	for _, m := range c.Members {
		if m.Node.ID == dead || m.Node.ID == partitioned || m.Node.Dead() {
			continue
		}
		m.Node.SetTopology(next)
	}
	return nil
}
