package cluster

import "testing"

// TestRingDeterministic: every participant must derive the identical ring
// from the same membership — routing correctness depends on it.
func TestRingDeterministic(t *testing.T) {
	a := BuildRing([]uint32{0, 1, 2})
	b := BuildRing([]uint32{2, 0, 1}) // order must not matter
	for key := uint64(0); key < 10000; key++ {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %d: owner %d vs %d from permuted membership", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingBalance: virtual nodes must spread the key space within a small
// factor across members.
func TestRingBalance(t *testing.T) {
	r := BuildRing([]uint32{0, 1, 2})
	counts := map[uint32]int{}
	const keys = 30000
	for key := uint64(1); key <= keys; key++ {
		counts[r.Owner(key)]++
	}
	for id, c := range counts {
		frac := float64(c) / keys
		if frac < 0.15 || frac > 0.55 {
			t.Fatalf("node %d owns %.0f%% of the key space; want a rough third", id, frac*100)
		}
	}
}

// TestRingMinimalMovement: removing one member must move only that
// member's keys — survivors keep every key they already owned.
func TestRingMinimalMovement(t *testing.T) {
	full := BuildRing([]uint32{0, 1, 2})
	reduced := BuildRing([]uint32{0, 2})
	for key := uint64(1); key <= 10000; key++ {
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != 1 && after != before {
			t.Fatalf("key %d moved %d -> %d although its owner survived", key, before, after)
		}
		if before == 1 && after == 1 {
			t.Fatalf("key %d still routed to the removed member", key)
		}
	}
}

// TestTopologyQuorum: the quorum is a majority of the ORIGINAL membership
// and does not shrink when members die — that is the split-brain guard.
func TestTopologyQuorum(t *testing.T) {
	topo := NewTopology(1, testMembers(3))
	if q := topo.Quorum(); q != 2 {
		t.Fatalf("3-node quorum = %d, want 2", q)
	}
	dead := topo.MarkDead(1)
	if q := dead.Quorum(); q != 2 {
		t.Fatalf("quorum after a death = %d, want still 2", q)
	}
	if dead.Epoch() != 2 {
		t.Fatalf("epoch after a death = %d, want 2", dead.Epoch())
	}
	if _, ok := dead.Owner(7); !ok {
		t.Fatal("reduced topology cannot route")
	}
	for key := uint64(1); key <= 5000; key++ {
		if owner, _ := dead.Owner(key); owner == 1 {
			t.Fatalf("key %d routed to the dead member", key)
		}
	}
}

// TestTracker: a sequence is durable only once enough distinct members
// acked it, watermark acks cover everything below, and the committed
// watermark only advances over gap-free quorum.
func TestTracker(t *testing.T) {
	tr := NewTracker(2)
	tr.Ack(3, 0) // self holds 1..3
	if tr.Durable(1) || tr.Durable(3) {
		t.Fatal("single ack must not be durable at quorum 2")
	}
	tr.Ack(2, 1) // peer holds 1..2
	if !tr.Durable(1) || !tr.Durable(2) {
		t.Fatal("two acks over 1..2 must be durable")
	}
	if tr.Durable(3) {
		t.Fatal("seq 3 has one ack; must not be durable")
	}
	if c := tr.Committed(); c != 2 {
		t.Fatalf("committed = %d, want 2", c)
	}
	tr.Ack(3, 2)
	if !tr.Durable(3) || tr.Committed() != 3 {
		t.Fatalf("seq 3 after second ack: durable=%v committed=%d", tr.Durable(3), tr.Committed())
	}
	// Duplicate acks from one member must not count twice.
	tr2 := NewTracker(2)
	tr2.Ack(1, 0)
	tr2.Ack(1, 0)
	if tr2.Durable(1) {
		t.Fatal("duplicate acks from one member counted as quorum")
	}
}
