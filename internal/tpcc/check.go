package tpcc

import (
	"fmt"

	"potgo/internal/oid"
)

// CheckConsistency verifies the TPC-C consistency conditions that our
// schema carries (spec clause 3.3.2, adapted), across all warehouses:
//
//  1. For every district, D_NEXT_O_ID - 1 equals the maximum O_ID in the
//     ORDER table for that district.
//  2. Every W_YTD equals the sum of its districts' D_YTD.
//  3. Every NEW-ORDER key has a matching ORDER row.
//  4. For every order, O_OL_CNT equals the number of ORDER-LINE rows.
func (db *DB) CheckConsistency() error {
	cfg := db.cfg

	maxOrder := make(map[uint64]int) // districtKey -> D_NEXT_O_ID-1
	for w := 1; w <= cfg.Warehouses; w++ {
		// 2: W_YTD == sum(D_YTD).
		wRow, ok, err := db.lookupRow("warehouse", warehouseKey(w))
		if err != nil || !ok {
			return fmt.Errorf("tpcc: warehouse %d row missing: %w", w, err)
		}
		wFields, err := db.readRow(wRow, 2)
		if err != nil {
			return err
		}
		var dSum uint64
		for d := 1; d <= cfg.Districts; d++ {
			dRow, ok, err := db.lookupRow("district", districtKey(w, d))
			if err != nil || !ok {
				return fmt.Errorf("tpcc: district %d/%d missing: %w", w, d, err)
			}
			dFields, err := db.readRow(dRow, 3)
			if err != nil {
				return err
			}
			dSum += dFields[1]
			maxOrder[districtKey(w, d)] = int(dFields[0]) - 1
		}
		if wFields[0] != dSum {
			return fmt.Errorf("tpcc: warehouse %d: W_YTD %d != sum(D_YTD) %d", w, wFields[0], dSum)
		}
	}

	// 1 & 4: order table scan.
	orders, err := db.tree("order").Scan(db.ctx("order"), 0, 1<<30)
	if err != nil {
		return err
	}
	seenMax := make(map[uint64]int)
	for _, kv := range orders {
		w := int(kv.Key >> 40)
		d := int(kv.Key >> 36 & 0xF)
		o := int(kv.Key & 0xFFFFFFFF)
		dk := districtKey(w, d)
		if o > seenMax[dk] {
			seenMax[dk] = o
		}
		oFields, err := db.readRow(oid.OID(kv.Val), 4)
		if err != nil {
			return err
		}
		olCnt := int(oFields[1])
		for ln := 1; ln <= olCnt; ln++ {
			if _, ok, err := db.lookupRow("orderline", orderLineKey(w, d, o, ln)); err != nil || !ok {
				return fmt.Errorf("tpcc: order %d/%d/%d missing line %d: %w", w, d, o, ln, err)
			}
		}
		if _, ok, _ := db.lookupRow("orderline", orderLineKey(w, d, o, olCnt+1)); ok {
			return fmt.Errorf("tpcc: order %d/%d/%d has extra line %d", w, d, o, olCnt+1)
		}
	}
	for w := 1; w <= cfg.Warehouses; w++ {
		for d := 1; d <= cfg.Districts; d++ {
			dk := districtKey(w, d)
			if seenMax[dk] != maxOrder[dk] {
				return fmt.Errorf("tpcc: district %d/%d: max order %d != D_NEXT_O_ID-1 %d",
					w, d, seenMax[dk], maxOrder[dk])
			}
		}
	}

	// 3: every new-order references an order.
	newOrders, err := db.tree("neworder").Scan(db.ctx("neworder"), 0, 1<<30)
	if err != nil {
		return err
	}
	for _, kv := range newOrders {
		if _, ok, err := db.lookupRow("order", kv.Key); err != nil || !ok {
			return fmt.Errorf("tpcc: dangling new-order %#x: %w", kv.Key, err)
		}
	}
	return nil
}
