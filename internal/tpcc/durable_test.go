package tpcc

import (
	"testing"

	"potgo/internal/nvmsim"
	"potgo/internal/pmem"
	"potgo/internal/vm"
)

// Durable mode swaps TPC-C's logical commit log for the library's undo
// transactions, which must make every read-write transaction atomic under
// adversarial cache-line loss. These tests crash the mix at sampled
// persistent-memory events, reattach, and require the four consistency
// conditions to hold — i.e. the surviving state is some prefix of committed
// transactions.

func durableConfig(seed int64) Config {
	cfg := TestConfig(seed)
	cfg.Durable = true
	return cfg
}

func durableWorld(t *testing.T, seed int64, place Placement) (*vm.AddressSpace, *pmem.Store, *DB) {
	t.Helper()
	as := vm.NewAddressSpace(seed)
	store := pmem.NewStore()
	h, err := pmem.NewHeapDiscard(as, store)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(h, durableConfig(seed), place)
	if err != nil {
		t.Fatal(err)
	}
	return as, store, db
}

func runArmedMix(db *DB, at uint64, n int) (crashed bool, err error) {
	db.Heap().NV.Arm(at)
	defer db.Heap().NV.Disarm()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := nvmsim.AsCrashSignal(r); !ok {
				panic(r)
			}
			crashed = true
		}
	}()
	return false, db.RunMix(n)
}

func TestDurableMixCommitsAndStaysConsistent(t *testing.T) {
	_, _, db := durableWorld(t, 11, PlaceAll)
	if err := db.RunMix(60); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if db.Stats().Total() == 0 {
		t.Fatal("no transactions committed")
	}
}

func testDurableCrashRecovery(t *testing.T, place Placement, samples int) {
	const seed = 7
	const mixTxs = 20

	// Dry run: the persistent-event span of the mix.
	_, _, dry := durableWorld(t, seed, place)
	base := dry.Heap().NV.Events()
	if err := dry.RunMix(mixTxs); err != nil {
		t.Fatal(err)
	}
	span := dry.Heap().NV.Events() - base
	if span < 100 {
		t.Fatalf("mix produced only %d persistent events", span)
	}

	step := span / uint64(samples)
	if step == 0 {
		step = 1
	}
	crashes := 0
	for e := base; e < base+span; e += step {
		as, store, db := durableWorld(t, seed, place)
		crashed, err := runArmedMix(db, e, mixTxs)
		if err != nil {
			t.Fatalf("armed mix at event %d: %v", e, err)
		}
		if !crashed {
			t.Fatalf("event %d inside the dry-run span did not fire", e)
		}
		crashes++
		if _, err := db.Heap().Crash(nvmsim.TornPolicy(e)); err != nil {
			t.Fatal(err)
		}

		h2, err := pmem.NewHeapDiscard(as, store)
		if err != nil {
			t.Fatal(err)
		}
		db2, err := AttachDB(h2, durableConfig(seed), place)
		if err != nil {
			t.Fatalf("attach after crash at event %d: %v", e, err)
		}
		if err := h2.CheckAll(); err != nil {
			t.Fatalf("allocator invariants after crash at event %d: %v", e, err)
		}
		if err := db2.CheckConsistency(); err != nil {
			t.Fatalf("consistency after crash at event %d: %v", e, err)
		}
		// The recovered database keeps working.
		if err := db2.RunMix(4); err != nil {
			t.Fatalf("post-recovery mix after crash at event %d: %v", e, err)
		}
		if err := db2.CheckConsistency(); err != nil {
			t.Fatalf("consistency after post-recovery mix (event %d): %v", e, err)
		}
	}
	if crashes == 0 {
		t.Fatal("no crash points sampled")
	}
}

func TestDurableCrashRecoveryAll(t *testing.T) {
	testDurableCrashRecovery(t, PlaceAll, 10)
}

func TestDurableCrashRecoveryEach(t *testing.T) {
	testDurableCrashRecovery(t, PlaceEach, 4)
}
