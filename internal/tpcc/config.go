// Package tpcc implements the paper's TPC-C workload (Table 5): generate
// one warehouse according to the TPC-C specification's cardinalities and run
// transactions from the standard mix, with every table stored as a
// persistent B+ tree (paper §5.2: "we move the data structures in the form
// of a B+ Tree to persistent pools").
//
// Two pool placements mirror Table 6's TPCC_ALL / TPCC_EACH: all trees (and
// their rows) in one pool, or one pool per table. Failure safety uses the
// library's write-ahead undo log around every TPC-C transaction.
package tpcc

import "math/rand"

// Config fixes the database cardinalities and the transaction mix. The zero
// value is not valid; use SpecConfig or TestConfig.
type Config struct {
	// Warehouses (the paper evaluates 1; the schema and transactions
	// support more, including remote stock and remote payments).
	Warehouses int
	// Districts per warehouse (spec: 10).
	Districts int
	// CustomersPerDistrict (spec: 3000).
	CustomersPerDistrict int
	// Items in the catalogue (spec: 100000).
	Items int
	// InitialOrdersPerDistrict pre-populated orders (spec: 3000, of
	// which the last 900 are undelivered new-orders).
	InitialOrdersPerDistrict int
	// UndeliveredPerDistrict (spec: 900).
	UndeliveredPerDistrict int
	// Seed drives key selection and the mix.
	Seed int64
	// Durable wraps every read-write transaction in the library's
	// write-ahead undo log (tx_begin/tx_add_range/tx_end on the master
	// pool) instead of TPC-C's own logical commit log. The paper's
	// measured configuration keeps the logical log (§5.2); Durable is the
	// configuration the crash-injection campaign verifies, where every
	// transaction must be atomic under adversarial line loss.
	Durable bool
}

// SpecConfig returns the TPC-C v5.11 cardinalities for one warehouse.
func SpecConfig(seed int64) Config {
	return Config{
		Warehouses:               1,
		Districts:                10,
		CustomersPerDistrict:     3000,
		Items:                    100000,
		InitialOrdersPerDistrict: 3000,
		UndeliveredPerDistrict:   900,
		Seed:                     seed,
	}
}

// TestConfig returns a down-scaled database for fast tests; ratios between
// tables are preserved.
func TestConfig(seed int64) Config {
	return Config{
		Warehouses:               1,
		Districts:                4,
		CustomersPerDistrict:     60,
		Items:                    200,
		InitialOrdersPerDistrict: 30,
		UndeliveredPerDistrict:   9,
		Seed:                     seed,
	}
}

// nuRand is the TPC-C non-uniform random function NURand(A, x, y) of spec
// clause 2.1.6, with per-run C constants.
type nuRand struct {
	rng              *rand.Rand
	cLast, cCus, cID int
}

func newNuRand(rng *rand.Rand) *nuRand {
	return &nuRand{
		rng:   rng,
		cLast: rng.Intn(256),
		cCus:  rng.Intn(1024),
		cID:   rng.Intn(8192),
	}
}

func (n *nuRand) nu(a, c, x, y int) int {
	return (((n.rng.Intn(a+1) | (n.rng.Intn(y-x+1) + x)) + c) % (y - x + 1)) + x
}

// CustomerID draws a customer id in [1, max] per NURand(1023, ...).
func (n *nuRand) CustomerID(max int) int { return n.nu(1023, n.cCus, 1, max) }

// ItemID draws an item id in [1, max] per NURand(8191, ...).
func (n *nuRand) ItemID(max int) int { return n.nu(8191, n.cID, 1, max) }

// Transaction types of the standard mix (spec clause 5.2.3 minimum
// percentages: Payment 43%, Order-Status 4%, Delivery 4%, Stock-Level 4%,
// remainder New-Order).
type TxType int

const (
	NewOrderTx TxType = iota
	PaymentTx
	OrderStatusTx
	DeliveryTx
	StockLevelTx
)

func (t TxType) String() string {
	switch t {
	case NewOrderTx:
		return "NewOrder"
	case PaymentTx:
		return "Payment"
	case OrderStatusTx:
		return "OrderStatus"
	case DeliveryTx:
		return "Delivery"
	case StockLevelTx:
		return "StockLevel"
	default:
		return "Unknown"
	}
}

// pickTx draws a transaction type from the standard mix.
func pickTx(rng *rand.Rand) TxType {
	r := rng.Intn(100)
	switch {
	case r < 43:
		return PaymentTx
	case r < 47:
		return OrderStatusTx
	case r < 51:
		return DeliveryTx
	case r < 55:
		return StockLevelTx
	default:
		return NewOrderTx
	}
}
