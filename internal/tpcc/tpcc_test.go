package tpcc

import (
	"potgo/internal/randtest"
	"testing"

	"potgo/internal/emit"
	"potgo/internal/pmem"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

func newDB(t *testing.T, mode emit.Mode, place Placement, seed int64) (*DB, *emit.Emitter) {
	t.Helper()
	as := vm.NewAddressSpace(seed)
	em := emit.New(trace.Discard{}, mode)
	var soft *emit.SoftTranslator
	if mode == emit.Base {
		var err error
		soft, err = emit.NewSoftTranslator(em, as, 1024)
		if err != nil {
			t.Fatal(err)
		}
	}
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, soft)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDB(h, TestConfig(seed), place)
	if err != nil {
		t.Fatal(err)
	}
	return db, em
}

func TestPopulationIsConsistent(t *testing.T) {
	db, em := newDB(t, emit.Opt, PlaceAll, 1)
	// Population is excluded from the measured region: only the pool and
	// root setup emit (a fixed handful of instructions).
	if em.Count() > 1000 {
		t.Errorf("population emitted %d instructions despite being paused", em.Count())
	}
	if em.Dropped() == 0 {
		t.Error("population should have executed (and dropped) instructions")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMixRunsAndStaysConsistent(t *testing.T) {
	db, em := newDB(t, emit.Opt, PlaceAll, 2)
	if err := db.RunMix(120); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	s := db.Stats()
	if s.Total() == 0 {
		t.Fatal("no transactions committed")
	}
	// Every transaction type must have run in 120 draws.
	for i, n := range s.Counts {
		if n == 0 {
			t.Errorf("transaction type %v never ran", TxType(i))
		}
	}
	if em.Count() == 0 {
		t.Error("the mix must emit instructions")
	}
}

func TestEachPlacement(t *testing.T) {
	db, _ := newDB(t, emit.Opt, PlaceEach, 3)
	if err := db.RunMix(60); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	// Tables really live in distinct pools.
	pools := map[uint32]bool{}
	for _, tbl := range tables {
		pools[uint32(db.pools[tbl].ID())] = true
	}
	if len(pools) != len(tables) {
		t.Errorf("TPCC_EACH uses %d pools for %d tables", len(pools), len(tables))
	}
	// And under PlaceAll they share one.
	dbAll, _ := newDB(t, emit.Opt, PlaceAll, 3)
	poolsAll := map[uint32]bool{}
	for _, tbl := range tables {
		poolsAll[uint32(dbAll.pools[tbl].ID())] = true
	}
	if len(poolsAll) != 1 {
		t.Errorf("TPCC_ALL uses %d pools", len(poolsAll))
	}
}

func TestBaseOptEquivalence(t *testing.T) {
	dbB, emB := newDB(t, emit.Base, PlaceAll, 4)
	dbO, emO := newDB(t, emit.Opt, PlaceAll, 4)
	if err := dbB.RunMix(60); err != nil {
		t.Fatal(err)
	}
	if err := dbO.RunMix(60); err != nil {
		t.Fatal(err)
	}
	sb, so := dbB.Stats(), dbO.Stats()
	if sb != so {
		t.Errorf("BASE stats %+v != OPT stats %+v", sb, so)
	}
	if err := dbB.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if err := dbO.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if emO.Count() >= emB.Count() {
		t.Errorf("OPT (%d insns) must beat BASE (%d)", emO.Count(), emB.Count())
	}
}

func TestNewOrderRollbacks(t *testing.T) {
	db, _ := newDB(t, emit.Opt, PlaceAll, 5)
	// Run enough new-orders that the 1% rollback fires.
	for i := 0; i < 400; i++ {
		if err := db.NewOrder(); err != nil {
			t.Fatal(err)
		}
	}
	if db.Stats().Rollbacks == 0 {
		t.Error("1% rollback never fired in 400 new-orders")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatalf("rollbacks corrupted the database: %v", err)
	}
}

func TestDeliveryDrainsNewOrders(t *testing.T) {
	db, _ := newDB(t, emit.Opt, PlaceAll, 6)
	before, err := db.tree("neworder").Scan(db.ctx("neworder"), 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) == 0 {
		t.Fatal("population must leave undelivered orders")
	}
	if err := db.Delivery(); err != nil {
		t.Fatal(err)
	}
	after, err := db.tree("neworder").Scan(db.ctx("neworder"), 0, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	want := len(before) - db.cfg.Districts
	if len(after) != want {
		t.Errorf("delivery removed %d markers, want %d", len(before)-len(after), db.cfg.Districts)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPaymentMovesMoney(t *testing.T) {
	db, _ := newDB(t, emit.Opt, PlaceAll, 7)
	wRow, _, _ := db.lookupRow("warehouse", 1)
	before, _ := db.readRow(wRow, 2)
	for i := 0; i < 10; i++ {
		if err := db.Payment(); err != nil {
			t.Fatal(err)
		}
	}
	after, _ := db.readRow(wRow, 2)
	if after[0] <= before[0] {
		t.Error("payments must grow W_YTD")
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestReadOnlyTransactionsEmitNoStoresToRows(t *testing.T) {
	db, _ := newDB(t, emit.Opt, PlaceAll, 8)
	if err := db.OrderStatus(); err != nil {
		t.Fatal(err)
	}
	if err := db.StockLevel(); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	as := vm.NewAddressSpace(1)
	em := emit.New(trace.Discard{}, emit.Opt)
	h, _ := pmem.NewHeap(as, pmem.NewStore(), em, nil)
	if _, err := NewDB(h, Config{}, PlaceAll); err == nil {
		t.Error("zero config must be rejected")
	}
}

func TestPlacementString(t *testing.T) {
	if PlaceAll.String() != "TPCC_ALL" || PlaceEach.String() != "TPCC_EACH" {
		t.Error("placement names")
	}
}

func TestTxTypeString(t *testing.T) {
	names := []string{"NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel"}
	for i, want := range names {
		if TxType(i).String() != want {
			t.Errorf("TxType(%d) = %s", i, TxType(i))
		}
	}
	if TxType(9).String() != "Unknown" {
		t.Error("unknown type")
	}
}

func TestMixDistribution(t *testing.T) {
	rng := randtest.New(t, 1)
	var counts [5]int
	const n = 20000
	for i := 0; i < n; i++ {
		counts[pickTx(rng)]++
	}
	frac := func(t TxType) float64 { return float64(counts[t]) / n }
	if f := frac(PaymentTx); f < 0.40 || f > 0.46 {
		t.Errorf("payment fraction = %v, want ~0.43", f)
	}
	if f := frac(NewOrderTx); f < 0.42 || f > 0.48 {
		t.Errorf("new-order fraction = %v, want ~0.45", f)
	}
	for _, tx := range []TxType{OrderStatusTx, DeliveryTx, StockLevelTx} {
		if f := frac(tx); f < 0.03 || f > 0.05 {
			t.Errorf("%v fraction = %v, want ~0.04", tx, f)
		}
	}
}

func TestNURandRange(t *testing.T) {
	rng := randtest.New(t, 2)
	nur := newNuRand(rng)
	for i := 0; i < 5000; i++ {
		if c := nur.CustomerID(3000); c < 1 || c > 3000 {
			t.Fatalf("CustomerID out of range: %d", c)
		}
		if it := nur.ItemID(100000); it < 1 || it > 100000 {
			t.Fatalf("ItemID out of range: %d", it)
		}
	}
}

func TestSpecConfigMatchesPaper(t *testing.T) {
	cfg := SpecConfig(1)
	if cfg.Districts != 10 || cfg.CustomersPerDistrict != 3000 ||
		cfg.Items != 100000 || cfg.InitialOrdersPerDistrict != 3000 ||
		cfg.UndeliveredPerDistrict != 900 {
		t.Errorf("SpecConfig diverges from TPC-C spec: %+v", cfg)
	}
}

func TestLastNameRendering(t *testing.T) {
	if LastName(0) != "BARBARBAR" {
		t.Errorf("LastName(0) = %s", LastName(0))
	}
	if LastName(371) != "PRICALLYOUGHT" {
		t.Errorf("LastName(371) = %s", LastName(371))
	}
	if LastName(999) != "EINGEINGEING" {
		t.Errorf("LastName(999) = %s", LastName(999))
	}
}

func TestCustomerByLastName(t *testing.T) {
	db, _ := newDB(t, emit.Opt, PlaceAll, 11)
	// TestConfig has 60 customers/district: customers 1..60 carry last
	// names 0..59, so every id below 60 resolves.
	for last := 0; last < db.cfg.CustomersPerDistrict; last += 7 {
		c, err := db.customerByLastName(1, 1, last)
		if err != nil {
			t.Fatal(err)
		}
		if c == 0 {
			t.Fatalf("last name %d has no customers", last)
		}
		if got := db.lastNameOf(c); got != last {
			t.Fatalf("customer %d has last name %d, want %d", c, got, last)
		}
	}
	// A name beyond the population resolves to nobody.
	if c, err := db.customerByLastName(1, 1, 900); err != nil || c != 0 {
		t.Fatalf("phantom name resolved to %d (%v)", c, err)
	}
}

func TestPaymentByNameKeepsConsistency(t *testing.T) {
	db, _ := newDB(t, emit.Opt, PlaceAll, 12)
	for i := 0; i < 60; i++ {
		if err := db.Payment(); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiWarehouse(t *testing.T) {
	as := vm.NewAddressSpace(44)
	em := emit.New(trace.Discard{}, emit.Opt)
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := TestConfig(44)
	cfg.Warehouses = 3
	db, err := NewDB(h, cfg, PlaceAll)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatalf("post-population: %v", err)
	}
	if err := db.RunMix(200); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Fatalf("post-mix: %v", err)
	}
	// Remote stock updates happened (1% of new-order lines with W=3).
	var remote uint64
	for w := 1; w <= cfg.Warehouses; w++ {
		for i := 1; i <= cfg.Items; i++ {
			row, ok, err := db.lookupRow("stock", stockKey(w, i))
			if err != nil || !ok {
				t.Fatalf("stock %d/%d missing", w, i)
			}
			f, err := db.readRow(row, 4)
			if err != nil {
				t.Fatal(err)
			}
			remote += f[3]
		}
	}
	t.Logf("remote stock touches: %d", remote)
	if db.Stats().Total() == 0 {
		t.Fatal("no transactions")
	}
}

func TestWarehouseLimits(t *testing.T) {
	as := vm.NewAddressSpace(45)
	em := emit.New(trace.Discard{}, emit.Opt)
	h, _ := pmem.NewHeap(as, pmem.NewStore(), em, nil)
	cfg := TestConfig(45)
	cfg.Warehouses = 300 // > 255: key encoding cannot hold it
	if _, err := NewDB(h, cfg, PlaceAll); err == nil {
		t.Error("oversized warehouse count must be rejected")
	}
	cfg = TestConfig(45)
	cfg.Districts = 16 // > 15
	if _, err := NewDB(h, cfg, PlaceAll); err == nil {
		t.Error("oversized district count must be rejected")
	}
}
