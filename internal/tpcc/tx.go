package tpcc

import (
	"fmt"

	"potgo/internal/oid"
)

// Application-side instruction costs per transaction, modelling the
// non-persistent work a real TPC-C implementation performs around its table
// accesses (input parsing, item-list construction, result formatting,
// terminal handling). Without these the workload degenerates to bare index
// operations and hardware translation looks far better than the paper's
// measured 1.10-1.17x TPC-C speedups.
const (
	newOrderAppWork    = 13500
	perLineAppWork     = 1650
	paymentAppWork     = 12000
	orderStatusAppWork = 7500
	deliveryAppWork    = 22000
	stockLevelAppWork  = 15000
)

// RunMix executes n transactions drawn from the TPC-C standard mix
// (New-Order ~45%, Payment 43%, Order-Status 4%, Delivery 4%, Stock-Level
// 4%), which is the paper's "perform 1000 transactions".
func (db *DB) RunMix(n int) error {
	for i := 0; i < n; i++ {
		var err error
		switch pickTx(db.rng) {
		case NewOrderTx:
			err = db.NewOrder()
		case PaymentTx:
			err = db.Payment()
		case OrderStatusTx:
			err = db.OrderStatus()
		case DeliveryTx:
			err = db.Delivery()
		case StockLevelTx:
			err = db.StockLevel()
		}
		if err != nil {
			return fmt.Errorf("tpcc: transaction %d: %w", i, err)
		}
	}
	return nil
}

// homeWarehouse draws the terminal's home warehouse.
func (db *DB) homeWarehouse() int { return db.rng.Intn(db.cfg.Warehouses) + 1 }

// supplyWarehouse picks the supplying warehouse for one order line: the
// home warehouse 99% of the time, a remote one 1% (spec 2.4.1.5.2) when
// more than one warehouse exists.
func (db *DB) supplyWarehouse(home int) int {
	if db.cfg.Warehouses > 1 && db.rng.Intn(100) == 0 {
		for {
			if w := db.rng.Intn(db.cfg.Warehouses) + 1; w != home {
				return w
			}
		}
	}
	return home
}

// NewOrder is TPC-C clause 2.4: place an order of 5–15 lines, updating the
// district's next-order id and each line's (possibly remote) stock. 1% of
// orders carry an unused item id and roll back (clause 2.4.1.4).
func (db *DB) NewOrder() error {
	cfg := db.cfg
	w := db.homeWarehouse()
	d := db.rng.Intn(cfg.Districts) + 1
	c := db.nur.CustomerID(cfg.CustomersPerDistrict)
	olCnt := db.rng.Intn(11) + 5
	rollback := db.rng.Intn(100) == 0

	db.h.Emit.Compute(newOrderAppWork)
	if err := db.beginTx(); err != nil {
		return err
	}

	// Validate the item list up front (clause 2.4.2.3: an unused item id
	// aborts the transaction). Validation precedes any mutation, so the
	// 1% rollback needs no undo.
	items := make([]int, olCnt)
	supply := make([]int, olCnt)
	for ln := 0; ln < olCnt; ln++ {
		items[ln] = db.nur.ItemID(cfg.Items)
		supply[ln] = db.supplyWarehouse(w)
	}
	if rollback {
		items[olCnt-1] = cfg.Items + 1 // unused item
	}
	for _, iID := range items {
		if _, ok, err := db.lookupRow("item", uint64(iID)); err != nil {
			return err
		} else if !ok {
			db.stats.Rollbacks++
			return db.abortTx()
		}
	}

	dRow, ok, err := db.lookupRow("district", districtKey(w, d))
	if err != nil || !ok {
		return fmt.Errorf("district %d/%d missing: %w", w, d, err)
	}
	dFields, err := db.readRow(dRow, 3)
	if err != nil {
		return err
	}
	o := int(dFields[0])
	if err := db.updateRow("district", dRow, districtRowBytes, 0, uint64(o+1)); err != nil {
		return err
	}

	if _, err := db.insertRow("order", orderKey(w, d, o),
		[]uint64{uint64(c), uint64(olCnt), 0, uint64(o)}); err != nil {
		return err
	}
	if err := db.tree("ordercust").Insert(db.ctx("ordercust"),
		orderCustKey(w, d, c, o), uint64(orderKey(w, d, o))); err != nil {
		return err
	}
	if _, err := db.insertRow("neworder", newOrderKey(w, d, o), []uint64{uint64(o), 0}); err != nil {
		return err
	}

	for ln := 1; ln <= olCnt; ln++ {
		db.h.Emit.Compute(perLineAppWork)
		iID := items[ln-1]
		itemRow, ok, err := db.lookupRow("item", uint64(iID))
		if err != nil || !ok {
			return fmt.Errorf("item %d missing: %w", iID, err)
		}
		itemFields, err := db.readRow(itemRow, 2)
		if err != nil {
			return err
		}
		price := itemFields[0]

		sw := supply[ln-1]
		stockRow, ok, err := db.lookupRow("stock", stockKey(sw, iID))
		if err != nil || !ok {
			return fmt.Errorf("stock %d/%d missing: %w", sw, iID, err)
		}
		sFields, err := db.readRow(stockRow, 4)
		if err != nil {
			return err
		}
		qty := uint64(db.rng.Intn(10) + 1)
		sQty := sFields[0]
		if sQty >= qty+10 {
			sQty -= qty
		} else {
			sQty += 91 - qty
		}
		remote := sFields[3]
		if sw != w {
			remote++
		}
		if err := db.updateRowFields("stock", stockRow, stockRowBytes,
			fieldUpdate{0, sQty},
			fieldUpdate{8, sFields[1] + qty},
			fieldUpdate{16, sFields[2] + 1},
			fieldUpdate{24, remote}); err != nil {
			return err
		}

		if _, err := db.insertRow("orderline", orderLineKey(w, d, o, ln),
			[]uint64{uint64(iID), qty, price * qty, 0}); err != nil {
			return err
		}
	}

	db.stats.Counts[NewOrderTx]++
	return db.commitTx()
}

// customerByLastName implements the spec's by-name selection (2.5.2.2):
// scan the customers of the district sharing the last name (sorted by id,
// standing in for first-name order) and return the middle one, or 0 when
// the name has no customers.
func (db *DB) customerByLastName(w, d, last int) (int, error) {
	lo := custNameKey(w, d, last, 0)
	hi := custNameKey(w, d, last+1, 0)
	hits, err := db.tree("custname").Scan(db.ctx("custname"), lo, 200)
	if err != nil {
		return 0, err
	}
	var ids []int
	for _, kv := range hits {
		if kv.Key >= hi {
			break
		}
		ids = append(ids, int(kv.Val))
	}
	if len(ids) == 0 {
		return 0, nil
	}
	return ids[len(ids)/2], nil
}

// pickCustomer draws a customer per the spec mix: 60% by last name, 40% by
// id (clause 2.5.2.2).
func (db *DB) pickCustomer(w, d int) (int, error) {
	if db.rng.Intn(100) < 60 {
		last := db.nur.nu(255, db.nur.cLast, 0, 999)
		db.h.Emit.Compute(120) // name rendering + comparison work
		if c, err := db.customerByLastName(w, d, last); err != nil {
			return 0, err
		} else if c != 0 {
			return c, nil
		}
		// Name unused in this district: fall through to by-id.
	}
	return db.nur.CustomerID(db.cfg.CustomersPerDistrict), nil
}

// Payment is TPC-C clause 2.5: pay against a customer (60% selected by last
// name; with several warehouses, 15% of payments come from a remote
// customer per clause 2.5.1.2), updating warehouse, district and customer
// balances and appending a history row.
func (db *DB) Payment() error {
	cfg := db.cfg
	w := db.homeWarehouse()
	d := db.rng.Intn(cfg.Districts) + 1
	amount := uint64(db.rng.Intn(500000) + 100) // 1.00..5000.00 in cents

	// Customer's home warehouse/district (15% remote when W > 1).
	cw, cd := w, d
	if cfg.Warehouses > 1 && db.rng.Intn(100) < 15 {
		for {
			if x := db.rng.Intn(cfg.Warehouses) + 1; x != w {
				cw = x
				break
			}
		}
		cd = db.rng.Intn(cfg.Districts) + 1
	}

	db.h.Emit.Compute(paymentAppWork)
	if err := db.beginTx(); err != nil {
		return err
	}
	c, err := db.pickCustomer(cw, cd)
	if err != nil {
		return err
	}

	wRow, ok, err := db.lookupRow("warehouse", warehouseKey(w))
	if err != nil || !ok {
		return fmt.Errorf("warehouse %d missing: %w", w, err)
	}
	wFields, err := db.readRow(wRow, 2)
	if err != nil {
		return err
	}
	if err := db.updateRow("warehouse", wRow, warehouseRowBytes, 0, wFields[0]+amount); err != nil {
		return err
	}

	dRow, ok, err := db.lookupRow("district", districtKey(w, d))
	if err != nil || !ok {
		return fmt.Errorf("district %d/%d missing: %w", w, d, err)
	}
	dFields, err := db.readRow(dRow, 3)
	if err != nil {
		return err
	}
	if err := db.updateRow("district", dRow, districtRowBytes, 8, dFields[1]+amount); err != nil {
		return err
	}

	cRow, ok, err := db.lookupRow("customer", customerKey(cw, cd, c))
	if err != nil || !ok {
		return fmt.Errorf("customer %d/%d/%d missing: %w", cw, cd, c, err)
	}
	cFields, err := db.readRow(cRow, 4)
	if err != nil {
		return err
	}
	if err := db.updateRowFields("customer", cRow, customerRowBytes,
		fieldUpdate{0, uint64(int64(cFields[0]) - int64(amount))},
		fieldUpdate{8, cFields[1] + amount},
		fieldUpdate{16, cFields[2] + 1}); err != nil {
		return err
	}

	db.historySeq++
	if _, err := db.insertRow("history", db.historySeq,
		[]uint64{uint64(c), uint64(d), amount}); err != nil {
		return err
	}

	db.stats.Counts[PaymentTx]++
	return db.commitTx()
}

// OrderStatus is TPC-C clause 2.6 (read-only): find the customer (60% by
// last name), then their most recent order, and read its lines.
func (db *DB) OrderStatus() error {
	cfg := db.cfg
	w := db.homeWarehouse()
	d := db.rng.Intn(cfg.Districts) + 1

	db.h.Emit.Compute(orderStatusAppWork)
	c, err := db.pickCustomer(w, d)
	if err != nil {
		return err
	}
	cRow, ok, err := db.lookupRow("customer", customerKey(w, d, c))
	if err != nil || !ok {
		return fmt.Errorf("customer %d/%d/%d missing: %w", w, d, c, err)
	}
	if _, err := db.readRow(cRow, 4); err != nil {
		return err
	}

	hits, err := db.tree("ordercust").Scan(db.ctx("ordercust"), orderCustKey(w, d, c, 0xFFFFFF), 1)
	if err != nil {
		return err
	}
	db.stats.Counts[OrderStatusTx]++
	if len(hits) == 0 || hits[0].Key>>24 != orderCustKey(w, d, c, 0xFFFFFF)>>24 {
		return nil // customer has no orders
	}
	oKey := hits[0].Val
	oRow, ok, err := db.lookupRow("order", oKey)
	if err != nil || !ok {
		return fmt.Errorf("order %#x missing: %w", oKey, err)
	}
	oFields, err := db.readRow(oRow, 4)
	if err != nil {
		return err
	}
	o := int(oKey & 0xFFFFFFFF)
	olCnt := int(oFields[1])
	for ln := 1; ln <= olCnt; ln++ {
		olRow, ok, err := db.lookupRow("orderline", orderLineKey(w, d, o, ln))
		if err != nil {
			return err
		}
		if ok {
			if _, err := db.readRow(olRow, 4); err != nil {
				return err
			}
		}
	}
	return nil
}

// Delivery is TPC-C clause 2.7: for each district of one warehouse, deliver
// the oldest undelivered order — remove its new-order marker, assign the
// carrier, stamp the lines and credit the customer.
func (db *DB) Delivery() error {
	cfg := db.cfg
	w := db.homeWarehouse()
	carrier := uint64(db.rng.Intn(10) + 1)

	db.h.Emit.Compute(deliveryAppWork)
	if err := db.beginTx(); err != nil {
		return err
	}
	for d := 1; d <= cfg.Districts; d++ {
		hits, err := db.tree("neworder").Scan(db.ctx("neworder"), newOrderKey(w, d, 0), 1)
		if err != nil {
			return err
		}
		if len(hits) == 0 || hits[0].Key>>36 != newOrderKey(w, d, 0)>>36 {
			continue // no undelivered orders in this district
		}
		o := int(hits[0].Key & 0xFFFFFFFF)
		if ok, err := db.tree("neworder").Remove(db.ctx("neworder"), hits[0].Key); err != nil || !ok {
			return fmt.Errorf("neworder %d/%d/%d: %w", w, d, o, err)
		}

		oRow, ok, err := db.lookupRow("order", orderKey(w, d, o))
		if err != nil || !ok {
			return fmt.Errorf("order %d/%d/%d missing: %w", w, d, o, err)
		}
		oFields, err := db.readRow(oRow, 4)
		if err != nil {
			return err
		}
		if err := db.updateRow("order", oRow, orderRowBytes, 16, carrier); err != nil {
			return err
		}

		c := int(oFields[0])
		olCnt := int(oFields[1])
		var total uint64
		for ln := 1; ln <= olCnt; ln++ {
			olRow, ok, err := db.lookupRow("orderline", orderLineKey(w, d, o, ln))
			if err != nil || !ok {
				return fmt.Errorf("orderline %d/%d/%d/%d missing: %w", w, d, o, ln, err)
			}
			olFields, err := db.readRow(olRow, 4)
			if err != nil {
				return err
			}
			total += olFields[2]
			if err := db.updateRow("orderline", olRow, orderLineRowBytes, 24, uint64(o)); err != nil {
				return err
			}
		}

		cRow, ok, err := db.lookupRow("customer", customerKey(w, d, c))
		if err != nil || !ok {
			return fmt.Errorf("customer %d/%d/%d missing: %w", w, d, c, err)
		}
		cFields, err := db.readRow(cRow, 4)
		if err != nil {
			return err
		}
		if err := db.updateRowFields("customer", cRow, customerRowBytes,
			fieldUpdate{0, uint64(int64(cFields[0]) + int64(total))},
			fieldUpdate{24, cFields[3] + 1}); err != nil {
			return err
		}
	}
	db.stats.Counts[DeliveryTx]++
	return db.commitTx()
}

// StockLevel is TPC-C clause 2.8 (read-only): count the distinct items of
// the district's last 20 orders whose stock is below a threshold.
func (db *DB) StockLevel() error {
	cfg := db.cfg
	w := db.homeWarehouse()
	d := db.rng.Intn(cfg.Districts) + 1
	threshold := uint64(db.rng.Intn(11) + 10)

	db.h.Emit.Compute(stockLevelAppWork)
	dRow, ok, err := db.lookupRow("district", districtKey(w, d))
	if err != nil || !ok {
		return fmt.Errorf("district %d/%d missing: %w", w, d, err)
	}
	dFields, err := db.readRow(dRow, 3)
	if err != nil {
		return err
	}
	next := int(dFields[0])
	oLow := next - 20
	if oLow < 1 {
		oLow = 1
	}

	lines, err := db.tree("orderline").Scan(db.ctx("orderline"), orderLineKey(w, d, oLow, 0), 20*15)
	if err != nil {
		return err
	}
	hi := orderLineKey(w, d, next, 0)
	seen := make(map[uint64]bool)
	low := 0
	for _, kv := range lines {
		if kv.Key >= hi {
			break
		}
		olRow := oid.OID(kv.Val)
		olFields, err := db.readRow(olRow, 4)
		if err != nil {
			return err
		}
		iID := olFields[0]
		if seen[iID] {
			continue
		}
		seen[iID] = true
		stockRow, ok, err := db.lookupRow("stock", stockKey(w, int(iID)))
		if err != nil || !ok {
			return fmt.Errorf("stock %d/%d missing: %w", w, iID, err)
		}
		sFields, err := db.readRow(stockRow, 4)
		if err != nil {
			return err
		}
		if sFields[0] < threshold {
			low++
		}
	}
	_ = low
	db.stats.Counts[StockLevelTx]++
	return nil
}
