package tpcc

import "fmt"

// populate builds the database per the TPC-C spec's cardinalities (clause
// 4.3.3, scaled by the Config): per warehouse, Districts districts,
// CustomersPerDistrict customers each (with one history row), one stock row
// per item, and InitialOrdersPerDistrict orders per district with 5–15
// order lines, the last UndeliveredPerDistrict of which are undelivered
// (carrier 0 and a new-order marker). The item catalogue is global.
func (db *DB) populate() error {
	cfg := db.cfg

	for i := 1; i <= cfg.Items; i++ {
		price := uint64(db.rng.Intn(9901) + 100) // 1.00..100.00 in cents
		if _, err := db.insertRow("item", uint64(i), []uint64{price, uint64(db.rng.Intn(10000) + 1)}); err != nil {
			return fmt.Errorf("tpcc: item %d: %w", i, err)
		}
	}

	for w := 1; w <= cfg.Warehouses; w++ {
		if err := db.populateWarehouse(w); err != nil {
			return err
		}
	}
	return nil
}

func (db *DB) populateWarehouse(w int) error {
	cfg := db.cfg
	if _, err := db.insertRow("warehouse", warehouseKey(w), []uint64{0, uint64(db.rng.Intn(2000))}); err != nil {
		return err
	}

	for d := 1; d <= cfg.Districts; d++ {
		nextO := uint64(cfg.InitialOrdersPerDistrict + 1)
		fields := []uint64{nextO, 0, uint64(db.rng.Intn(2000))}
		if _, err := db.insertRow("district", districtKey(w, d), fields); err != nil {
			return fmt.Errorf("tpcc: district %d/%d: %w", w, d, err)
		}
	}

	for d := 1; d <= cfg.Districts; d++ {
		for c := 1; c <= cfg.CustomersPerDistrict; c++ {
			// Spec: C_BALANCE = -10.00, C_YTD_PAYMENT = 10.00.
			balance := int64(-1000)
			fields := []uint64{uint64(balance), 1000, 1, 0}
			if _, err := db.insertRow("customer", customerKey(w, d, c), fields); err != nil {
				return fmt.Errorf("tpcc: customer %d/%d/%d: %w", w, d, c, err)
			}
			last := db.lastNameOf(c)
			if err := db.tree("custname").Insert(db.ctx("custname"),
				custNameKey(w, d, last, c), uint64(c)); err != nil {
				return fmt.Errorf("tpcc: custname %d/%d/%d: %w", w, d, c, err)
			}
			db.historySeq++
			if _, err := db.insertRow("history", db.historySeq,
				[]uint64{uint64(c), uint64(d), 1000}); err != nil {
				return err
			}
		}
	}

	for i := 1; i <= cfg.Items; i++ {
		qty := uint64(db.rng.Intn(91) + 10) // 10..100
		if _, err := db.insertRow("stock", stockKey(w, i), []uint64{qty, 0, 0, 0}); err != nil {
			return fmt.Errorf("tpcc: stock %d/%d: %w", w, i, err)
		}
	}

	for d := 1; d <= cfg.Districts; d++ {
		// Orders reference customers via a random permutation (spec:
		// O_C_ID selected without repetition).
		perm := db.rng.Perm(cfg.CustomersPerDistrict)
		for o := 1; o <= cfg.InitialOrdersPerDistrict; o++ {
			c := perm[(o-1)%len(perm)] + 1
			olCnt := db.rng.Intn(11) + 5 // 5..15
			delivered := o <= cfg.InitialOrdersPerDistrict-cfg.UndeliveredPerDistrict
			carrier := uint64(0)
			if delivered {
				carrier = uint64(db.rng.Intn(10) + 1)
			}
			fields := []uint64{uint64(c), uint64(olCnt), carrier, uint64(o)}
			if _, err := db.insertRow("order", orderKey(w, d, o), fields); err != nil {
				return fmt.Errorf("tpcc: order %d/%d/%d: %w", w, d, o, err)
			}
			if err := db.tree("ordercust").Insert(db.ctx("ordercust"),
				orderCustKey(w, d, c, o), uint64(orderKey(w, d, o))); err != nil {
				return err
			}
			if !delivered {
				if _, err := db.insertRow("neworder", newOrderKey(w, d, o), []uint64{uint64(o), 0}); err != nil {
					return err
				}
			}
			for ln := 1; ln <= olCnt; ln++ {
				iID := uint64(db.rng.Intn(cfg.Items) + 1)
				qty := uint64(5)
				amount := uint64(0)
				deliveryD := uint64(0)
				if delivered {
					amount = uint64(db.rng.Intn(999999) + 1)
					deliveryD = uint64(o)
				}
				if _, err := db.insertRow("orderline", orderLineKey(w, d, o, ln),
					[]uint64{iID, qty, amount, deliveryD}); err != nil {
					return fmt.Errorf("tpcc: orderline %d/%d/%d/%d: %w", w, d, o, ln, err)
				}
			}
		}
	}
	return nil
}
