package tpcc

import (
	"fmt"
	"math/rand"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
)

// Placement mirrors the paper's TPCC_ALL / TPCC_EACH pool usage patterns
// (Table 6).
type Placement int

const (
	// PlaceAll stores every B+ tree and every row in one pool.
	PlaceAll Placement = iota
	// PlaceEach gives each B+-tree-based structure (table) its own pool.
	PlaceEach
)

func (p Placement) String() string {
	if p == PlaceAll {
		return "TPCC_ALL"
	}
	return "TPCC_EACH"
}

// The tables, in anchor-cell order. Every table is a B+ tree keyed by an
// encoded composite key; tree values are the ObjectIDs of row objects
// allocated in the same pool.
var tables = []string{
	"warehouse", "district", "customer", "history",
	"order", "neworder", "orderline", "item", "stock", "ordercust",
	"custname",
}

// Row sizes (bytes of 8-byte fields).
const (
	warehouseRowBytes = 16 // ytd, tax
	districtRowBytes  = 24 // nextOID, ytd, tax
	customerRowBytes  = 32 // balance, ytdPayment, paymentCnt, deliveryCnt
	orderRowBytes     = 32 // cID, olCnt, carrier, entryD
	newOrderRowBytes  = 16 // oID, pad
	orderLineRowBytes = 32 // iID, qty, amount, deliveryD
	itemRowBytes      = 16 // price, imID
	stockRowBytes     = 32 // qty, ytd, orderCnt, remoteCnt
	historyRowBytes   = 24 // cID, dID, amount
)

// Key encodings. All keys are qualified by the warehouse id (≤ 255), then
// the district id (≤ 15); order ids fit 32 bits, customers 20, lines 8.
func warehouseKey(w int) uint64 { return uint64(w) }
func districtKey(w, d int) uint64 {
	return uint64(w)<<8 | uint64(d)
}
func customerKey(w, d, c int) uint64 {
	return uint64(w)<<32 | uint64(d)<<24 | uint64(c)
}
func orderKey(w, d, o int) uint64 {
	return uint64(w)<<40 | uint64(d)<<36 | uint64(o)
}
func newOrderKey(w, d, o int) uint64 { return orderKey(w, d, o) }
func orderLineKey(w, d, o, ln int) uint64 {
	return uint64(w)<<56 | uint64(d)<<52 | uint64(o)<<8 | uint64(ln)
}
func stockKey(w, i int) uint64 { return uint64(w)<<32 | uint64(i) }

// orderCustKey indexes orders by (warehouse, district, customer) with the
// order id complemented so that a scan finds the latest order first.
func orderCustKey(w, d, c, o int) uint64 {
	return uint64(w)<<56 | uint64(d)<<48 | uint64(c)<<24 | uint64(0xFFFFFF-o)
}

// custNameKey indexes customers by (warehouse, district, last-name id) so
// Payment and Order-Status can select customers by last name (spec
// 2.5.2.2): scan the matching run, pick the middle customer.
func custNameKey(w, d, last, c int) uint64 {
	return uint64(w)<<48 | uint64(d)<<40 | uint64(last)<<20 | uint64(c)
}

// Last names are built from the spec's 4.3.2.3 syllable table over a
// three-digit number.
var lastNameSyllables = [10]string{
	"BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION", "EING",
}

// LastName renders a last-name id (0..999) as its spec syllable string.
func LastName(id int) string {
	return lastNameSyllables[id/100%10] + lastNameSyllables[id/10%10] + lastNameSyllables[id%10]
}

// lastNameOf deterministically assigns a last-name id to a customer, using
// the spec's rule: the first 1000 customers of a district get ids 0..999 in
// order (guaranteeing every name exists), the rest draw NURand(255).
func (db *DB) lastNameOf(c int) int {
	if c <= 1000 {
		return c - 1
	}
	return db.nur.nu(255, db.nur.cLast, 0, 999)
}

// Stats counts executed transactions.
type Stats struct {
	Counts    [5]uint64
	Rollbacks uint64
}

// Total returns the number of committed transactions.
func (s Stats) Total() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// DB is a populated TPC-C database bound to a heap.
type DB struct {
	h     *pmem.Heap
	cfg   Config
	place Placement

	master *pmem.Pool
	pools  map[string]*pmem.Pool
	trees  map[string]*pds.BPlus

	rng        *rand.Rand
	nur        *nuRand
	historySeq uint64
	logSeq     uint64
	stats      Stats

	// touched dedups undo snapshots within one durable transaction: a row
	// or tree node updated twice needs only one TxAddRange.
	touched map[oid.OID]bool
}

// tableCtx scopes pds.Ctx allocation to one table's pool.
type tableCtx struct {
	db    *DB
	table string
}

func (c tableCtx) Heap() *pmem.Heap { return c.db.h }

func (c tableCtx) Alloc(_ uint64, size uint32) (oid.OID, error) {
	if c.db.cfg.Durable && c.db.h.InTx() {
		return c.db.h.TxAlloc(c.db.pools[c.table], size)
	}
	return c.db.h.Alloc(c.db.pools[c.table], size)
}

func (c tableCtx) Free(o oid.OID) error {
	if c.db.cfg.Durable && c.db.h.InTx() {
		return c.db.h.TxFree(o)
	}
	return c.db.h.Free(o)
}

// Touch is a no-op in the paper's measured configuration: per §5.2, TPC-C
// keeps "its own failure-safe logging implementation" — a logical
// transaction log written at commit (see db.commitTx) — rather than the
// library's per-object undo snapshots. With Config.Durable the snapshots
// are real: each first touch of an object inside a transaction records an
// undo image via TxAddRange.
func (c tableCtx) Touch(o oid.OID, size uint32) error {
	if !c.db.cfg.Durable || !c.db.h.InTx() {
		return nil
	}
	if c.db.touched[o] {
		return nil
	}
	if err := c.db.h.TxAddRange(o, size); err != nil {
		return err
	}
	c.db.touched[o] = true
	return nil
}

// poolBytes estimates the capacity needed for a table (with margin).
func poolBytes(cfg Config, table string) uint64 {
	rows := func(n int, rowBytes uint64) uint64 {
		// Row block + amortized tree node share per key.
		return uint64(n) * (rowBytes + 16 + 64)
	}
	w := cfg.Warehouses
	orders := w * cfg.Districts * cfg.InitialOrdersPerDistrict
	var need uint64
	switch table {
	case "warehouse":
		need = rows(w, warehouseRowBytes)
	case "district":
		need = rows(w*cfg.Districts, districtRowBytes)
	case "customer", "custname":
		need = rows(w*cfg.Districts*cfg.CustomersPerDistrict, customerRowBytes)
	case "history":
		need = rows(w*cfg.Districts*cfg.CustomersPerDistrict+8192, historyRowBytes)
	case "order", "ordercust":
		need = rows(orders+8192, orderRowBytes)
	case "neworder":
		need = rows(w*cfg.Districts*cfg.UndeliveredPerDistrict+8192, newOrderRowBytes)
	case "orderline":
		need = rows((orders+8192)*13, orderLineRowBytes)
	case "item":
		need = rows(cfg.Items, itemRowBytes)
	case "stock":
		need = rows(w*cfg.Items, stockRowBytes)
	}
	need = need*3/2 + 1<<20
	return (need + 4095) &^ 4095
}

// NewDB creates the pools and empty trees and populates the database per
// the configuration. Population runs with instruction emission paused (the
// measured region is the transaction mix, as in the paper's "generate 1
// warehouse and perform 1000 transactions").
func NewDB(h *pmem.Heap, cfg Config, place Placement) (*DB, error) {
	if cfg.Warehouses <= 0 || cfg.Warehouses > 255 ||
		cfg.Districts <= 0 || cfg.Districts > 15 ||
		cfg.Items <= 0 || cfg.CustomersPerDistrict <= 0 {
		return nil, fmt.Errorf("tpcc: invalid config %+v", cfg)
	}
	db := &DB{
		h:     h,
		cfg:   cfg,
		place: place,
		pools: make(map[string]*pmem.Pool),
		trees: make(map[string]*pds.BPlus),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	db.nur = newNuRand(db.rng)

	const logBytes = 512 * 1024
	if place == PlaceAll {
		var total uint64
		for _, t := range tables {
			total += poolBytes(cfg, t)
		}
		p, err := h.CreateSized("tpcc", total+logBytes+1<<20, logBytes)
		if err != nil {
			return nil, err
		}
		db.master = p
		for _, t := range tables {
			db.pools[t] = p
		}
	} else {
		m, err := h.CreateSized("tpcc-master", 1<<20, logBytes)
		if err != nil {
			return nil, err
		}
		db.master = m
		for _, t := range tables {
			p, err := h.CreateSized("tpcc-"+t, poolBytes(cfg, t), 4096)
			if err != nil {
				return nil, err
			}
			db.pools[t] = p
		}
	}

	// Anchor cells live in the master pool's root object.
	root, err := h.Root(db.master, uint32(len(tables))*8)
	if err != nil {
		return nil, err
	}
	for i, t := range tables {
		db.trees[t] = pds.NewBPlus(pds.NewCell(h, root.FieldAt(uint32(i)*8)))
	}

	h.Emit.Pause()
	err = db.populate()
	h.Emit.Resume()
	if err != nil {
		return nil, err
	}
	if cfg.Durable {
		// Population ran outside any transaction, so nothing has drained
		// the cache model; flush it all so the initial database is the
		// durable pre-state a crash can fall back to.
		if err := h.SyncAll(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// AttachDB reopens an existing TPC-C database — the post-crash path. The
// config and placement must match the NewDB that built it. Attach opens the
// pools, replays the master pool's undo/redo log if the crash left one, and
// rebinds the trees to their persistent anchors; it does not populate.
func AttachDB(h *pmem.Heap, cfg Config, place Placement) (*DB, error) {
	db := &DB{
		h:     h,
		cfg:   cfg,
		place: place,
		pools: make(map[string]*pmem.Pool),
		trees: make(map[string]*pds.BPlus),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	db.nur = newNuRand(db.rng)
	// History rows surviving the crash used sequence numbers from the
	// previous incarnation; restart well past any of them so post-recovery
	// Payments can't collide with existing history keys.
	db.historySeq = 1 << 40

	if place == PlaceAll {
		p, err := h.Open("tpcc")
		if err != nil {
			return nil, err
		}
		db.master = p
		for _, t := range tables {
			db.pools[t] = p
		}
	} else {
		m, err := h.Open("tpcc-master")
		if err != nil {
			return nil, err
		}
		db.master = m
		for _, t := range tables {
			p, err := h.Open("tpcc-" + t)
			if err != nil {
				return nil, err
			}
			db.pools[t] = p
		}
	}

	// Recover runs after every pool is open: logged records may reference
	// per-table pools. A clean log makes this a no-op.
	if err := h.Recover(db.master); err != nil {
		return nil, err
	}

	root, err := h.Root(db.master, uint32(len(tables))*8)
	if err != nil {
		return nil, err
	}
	for i, t := range tables {
		db.trees[t] = pds.NewBPlus(pds.NewCell(h, root.FieldAt(uint32(i)*8)))
	}
	return db, nil
}

// ctx returns the allocation context for a table.
func (db *DB) ctx(table string) tableCtx { return tableCtx{db: db, table: table} }

// tree returns a table's B+ tree.
func (db *DB) tree(table string) *pds.BPlus { return db.trees[table] }

// Stats returns the transaction counters.
func (db *DB) Stats() Stats { return db.stats }

// Heap exposes the underlying heap.
func (db *DB) Heap() *pmem.Heap { return db.h }

// --- row helpers ---

// newRow allocates and initializes a row object in the table's pool and
// returns its ObjectID.
func (db *DB) newRow(table string, fields []uint64) (oid.OID, error) {
	ctx := db.ctx(table)
	o, err := ctx.Alloc(0, uint32(len(fields))*8)
	if err != nil {
		return oid.Null, err
	}
	ref, err := db.h.Deref(o, isa.RZ)
	if err != nil {
		return oid.Null, err
	}
	for i, f := range fields {
		if err := ref.Store64(uint32(i)*8, f, isa.RZ); err != nil {
			return oid.Null, err
		}
	}
	return o, nil
}

// readRow loads n consecutive 8-byte fields of a row.
func (db *DB) readRow(o oid.OID, n int) ([]uint64, error) {
	ref, err := db.h.Deref(o, isa.RZ)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, n)
	for i := range out {
		w, err := ref.Load64(uint32(i) * 8)
		if err != nil {
			return nil, err
		}
		out[i] = w.V
	}
	return out, nil
}

// updateRow stores one field of a row.
func (db *DB) updateRow(table string, o oid.OID, rowBytes uint32, fieldOff uint32, v uint64) error {
	return db.updateRowFields(table, o, rowBytes, fieldUpdate{fieldOff, v})
}

type fieldUpdate struct {
	Off uint32
	V   uint64
}

// updateRowFields dereferences the row once and stores several fields — the
// natural compilation of `row->a = ...; row->b = ...`.
func (db *DB) updateRowFields(table string, o oid.OID, rowBytes uint32, ups ...fieldUpdate) error {
	if err := db.ctx(table).Touch(o, rowBytes); err != nil {
		return err
	}
	ref, err := db.h.Deref(o, isa.RZ)
	if err != nil {
		return err
	}
	for _, u := range ups {
		if err := ref.Store64(u.Off, u.V, isa.RZ); err != nil {
			return err
		}
	}
	return nil
}

// lookupRow finds a key in a table and returns the row's ObjectID.
func (db *DB) lookupRow(table string, key uint64) (oid.OID, bool, error) {
	v, ok, err := db.tree(table).Find(db.ctx(table), key)
	return oid.OID(v), ok, err
}

// insertRow creates the row and indexes it under key.
func (db *DB) insertRow(table string, key uint64, fields []uint64) (oid.OID, error) {
	o, err := db.newRow(table, fields)
	if err != nil {
		return oid.Null, err
	}
	if err := db.tree(table).Insert(db.ctx(table), key, uint64(o)); err != nil {
		return oid.Null, err
	}
	return o, nil
}

// TPC-C's own failure-safe logging (paper §5.2: "we retain TPC-C's own
// failure-safe logging implementation without modification"): each committed
// transaction appends one compact logical record — transaction type and the
// keys it touched — to a circular log region in the master pool and persists
// it with CLWB + SFENCE. The record is written through an ObjectID
// reference, so in BASE it costs one oid_direct and in OPT it uses nvst —
// logging is one of the library paths that benefits from the hardware
// (paper §3.3). Rollback cases (the 1% invalid-item New-Order) validate
// before mutating, so no undo is ever needed.
const logicalRecordWords = 16

func (db *DB) beginTx() error {
	if !db.cfg.Durable {
		return nil
	}
	db.touched = make(map[oid.OID]bool)
	return db.h.TxBegin(db.master)
}

// abortTx unwinds a transaction that validated late (the 1% invalid-item
// New-Order rolls back after its first writes in durable mode).
func (db *DB) abortTx() error {
	if !db.cfg.Durable {
		return nil
	}
	db.touched = nil
	return db.h.TxAbort()
}

func (db *DB) commitTx() error {
	if db.cfg.Durable {
		// The undo log subsumes the logical record — and shares the master
		// pool's log region with it, so writing both would corrupt the
		// record count the next recovery reads.
		db.touched = nil
		return db.h.TxEnd()
	}
	p := db.master
	span := uint32(logicalRecordWords * 8)
	capacity := uint32(p.LogBytes()) / span
	if capacity == 0 {
		return fmt.Errorf("tpcc: master log region too small")
	}
	off := uint32(pmem.LogStart) + (uint32(db.logSeq)%capacity)*span
	db.logSeq++
	rec, err := db.h.Deref(p.OID(off), isa.RZ)
	if err != nil {
		return err
	}
	for w := uint32(0); w < logicalRecordWords; w++ {
		if err := rec.Store64(w*8, db.logSeq<<8|uint64(w), isa.RZ); err != nil {
			return err
		}
	}
	return db.h.Persist(p.OID(off), span)
}
