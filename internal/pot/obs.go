package pot

import "potgo/internal/obs"

// PublishMetrics adds the table's hardware-walk counters to the registry
// under "pot.". Walk cycle accounting lives with the translator that charges
// it (pot.walk_cycles, published by core). Safe on a nil registry.
func (t *Table) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	s := t.Stats()
	reg.Counter("pot.walks").Add(s.Walks)
	reg.Counter("pot.probes").Add(s.Probes)
	reg.Counter("pot.misses").Add(s.Misses)
	reg.Gauge("pot.pools").Set(float64(t.Len()))
	reg.Gauge("pot.entries").Set(float64(t.Entries()))
}
