// Package pot implements the Persistent Object Table of paper §4.2: a
// per-process, in-memory hash table mapping pool identifiers to the virtual
// base address where the pool is mapped.
//
// The table is the hardware-walkable backing store for the POLB, playing the
// role a page table plays for the TLB. Following the paper:
//
//   - The table has a fixed number of entries (16384 by default, 256 KB of
//     memory) and lives at a base virtual address that hardware reads from a
//     new architectural register.
//   - Each entry holds a pool identifier and the pool's virtual base
//     address. Pool id 0 is reserved to mean "invalid entry", which lets the
//     OS initialize the table to all-zeroes.
//   - The hardware walk hashes the pool id to an index and then linearly
//     probes: a valid entry with a matching pool id is a hit; an invalid
//     entry terminates the search and raises an exception (the OS may abort
//     the program or establish a mapping and retry).
//
// The table contents are stored in simulated memory (internal/vm) so that
// the structure occupies real, cache-modelled addresses.
package pot

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"potgo/internal/oid"
	"potgo/internal/vm"
)

// DefaultEntries is the paper's POT size (§5.1): 16384 entries = 256 KB.
const DefaultEntries = 16384

// EntryBytes is the size of one POT entry: a 32-bit pool id, 32 bits of
// padding, and a 64-bit virtual base address.
const EntryBytes = 16

// ErrNoTranslation is returned when a pool has no POT entry. In hardware
// this raises an exception that traps to the OS (paper §3.2).
var ErrNoTranslation = errors.New("pot: no translation for pool (exception)")

// ErrFull is returned when the table cannot accept another pool.
var ErrFull = errors.New("pot: table full")

// Stats counts hardware walks.
type Stats struct {
	// Walks is the number of look-ups performed (POLB misses).
	Walks uint64
	// Probes is the total number of entries examined across all walks;
	// Probes/Walks is the mean probe distance.
	Probes uint64
	// Misses counts walks that ended at an invalid entry (exceptions).
	Misses uint64
}

// potStripes is the number of lock stripes a concurrent table shards its
// readers across. Pool ids are sequential, so a simple modulus spreads
// them evenly.
const potStripes = 16

// Table is the Persistent Object Table.
type Table struct {
	as      *vm.AddressSpace
	base    uint64 // virtual base address of entry 0
	entries uint32
	mask    uint32
	count   uint32
	stats   Stats

	// concurrent gates the lock stripes: readers (Walk/Lookup) take the
	// read side of their pool's stripe, writers (Insert/Remove) take every
	// stripe in index order — linear probing means a mutation for one pool
	// can shift entries other pools' chains run through, so writes
	// exclude all readers. Off by default: a single-threaded table pays
	// nothing.
	concurrent bool
	stripes    [potStripes]sync.RWMutex
}

// New maps a fresh POT of the given number of entries (a power of two) into
// the address space and returns it. All entries start invalid (zeroed pages).
func New(as *vm.AddressSpace, entries int) (*Table, error) {
	if entries <= 0 || entries&(entries-1) != 0 {
		return nil, fmt.Errorf("pot: entries (%d) must be a positive power of two", entries)
	}
	r, err := as.Map(uint64(entries) * EntryBytes)
	if err != nil {
		return nil, err
	}
	return &Table{
		as:      as,
		base:    r.Base,
		entries: uint32(entries),
		mask:    uint32(entries - 1),
		count:   0,
	}, nil
}

// SetConcurrent enables the lock stripes so the table may be read from
// multiple goroutines while pools are (rarely) mapped and unmapped. There
// is no way back to the unlocked mode.
func (t *Table) SetConcurrent() { t.concurrent = true }

func stripeOf(pool oid.PoolID) int { return int(uint32(pool) % potStripes) }

// lockAllStripes write-locks every stripe in index order (the fixed order
// prevents writer/writer deadlock) and returns the matching unlock.
func (t *Table) lockAllStripes() func() {
	for i := range t.stripes {
		t.stripes[i].Lock()
	}
	return func() {
		for i := range t.stripes {
			t.stripes[i].Unlock()
		}
	}
}

// Base returns the table's base virtual address (the value the new
// architectural register would hold).
func (t *Table) Base() uint64 { return t.base }

// Entries returns the table capacity.
func (t *Table) Entries() int { return int(t.entries) }

// Len returns the number of pools currently mapped.
func (t *Table) Len() int { return int(atomic.LoadUint32(&t.count)) }

// SizeBytes returns the memory footprint of the table.
func (t *Table) SizeBytes() uint64 { return uint64(t.entries) * EntryBytes }

// hash spreads pool ids across the table. Fibonacci hashing on the 32-bit
// pool id; any decent multiplicative hash matches the paper's unspecified
// "hash function".
func (t *Table) hash(pool oid.PoolID) uint32 {
	return (uint32(pool) * 2654435769) & t.mask
}

func (t *Table) entryAddr(idx uint32) uint64 {
	return t.base + uint64(idx)*EntryBytes
}

func (t *Table) readEntry(idx uint32) (pool oid.PoolID, vbase uint64) {
	p, err := t.as.Read32(t.entryAddr(idx))
	if err != nil {
		panic(fmt.Sprintf("pot: table memory unmapped: %v", err))
	}
	v, err := t.as.Read64(t.entryAddr(idx) + 8)
	if err != nil {
		panic(fmt.Sprintf("pot: table memory unmapped: %v", err))
	}
	return oid.PoolID(p), v
}

func (t *Table) writeEntry(idx uint32, pool oid.PoolID, vbase uint64) {
	if err := t.as.Write32(t.entryAddr(idx), uint32(pool)); err != nil {
		panic(fmt.Sprintf("pot: table memory unmapped: %v", err))
	}
	if err := t.as.Write64(t.entryAddr(idx)+8, vbase); err != nil {
		panic(fmt.Sprintf("pot: table memory unmapped: %v", err))
	}
}

// Insert establishes a pool→base mapping (performed by the OS inside
// pool_create/pool_open). Inserting an already-present pool updates its base.
func (t *Table) Insert(pool oid.PoolID, vbase uint64) error {
	if pool == oid.NullPool {
		return fmt.Errorf("pot: cannot insert reserved pool id 0")
	}
	if t.concurrent {
		defer t.lockAllStripes()()
	}
	idx := t.hash(pool)
	for probed := uint32(0); probed < t.entries; probed++ {
		p, _ := t.readEntry(idx)
		if p == oid.NullPool {
			t.writeEntry(idx, pool, vbase)
			atomic.AddUint32(&t.count, 1)
			return nil
		}
		if p == pool {
			t.writeEntry(idx, pool, vbase)
			return nil
		}
		idx = (idx + 1) & t.mask
	}
	return ErrFull
}

// Remove deletes a pool's mapping (pool_close). Linear-probing deletion uses
// backward shifting so that look-ups can keep treating an invalid entry as
// end-of-chain, exactly as the hardware walk does.
func (t *Table) Remove(pool oid.PoolID) error {
	if t.concurrent {
		defer t.lockAllStripes()()
	}
	idx := t.hash(pool)
	for probed := uint32(0); probed < t.entries; probed++ {
		p, _ := t.readEntry(idx)
		if p == oid.NullPool {
			return fmt.Errorf("pot: remove of unmapped pool %d", pool)
		}
		if p == pool {
			t.backwardShift(idx)
			atomic.AddUint32(&t.count, ^uint32(0))
			return nil
		}
		idx = (idx + 1) & t.mask
	}
	return fmt.Errorf("pot: remove of unmapped pool %d", pool)
}

// backwardShift compacts the probe chain after deleting the entry at hole.
func (t *Table) backwardShift(hole uint32) {
	idx := (hole + 1) & t.mask
	for {
		p, v := t.readEntry(idx)
		if p == oid.NullPool {
			break
		}
		home := t.hash(p)
		// The entry at idx may move into the hole iff the hole lies
		// cyclically within [home, idx].
		if cyclicallyBetween(home, hole, idx) {
			t.writeEntry(hole, p, v)
			hole = idx
		}
		idx = (idx + 1) & t.mask
	}
	t.writeEntry(hole, oid.NullPool, 0)
}

// cyclicallyBetween reports whether hole ∈ [home, idx] on the ring.
func cyclicallyBetween(home, hole, idx uint32) bool {
	if home <= idx {
		return home <= hole && hole <= idx
	}
	return hole >= home || hole <= idx
}

// Walk performs the hardware POT walk of Figure 7: hash, then linear probing
// until a matching or invalid entry. It returns the pool's virtual base
// address and the number of entries examined. ErrNoTranslation models the
// exception raised when the chain ends at an invalid entry.
func (t *Table) Walk(pool oid.PoolID) (vbase uint64, probes int, err error) {
	if t.concurrent {
		mu := &t.stripes[stripeOf(pool)]
		mu.RLock()
		defer mu.RUnlock()
	}
	idx := t.hash(pool)
	for probed := uint32(0); probed < t.entries; probed++ {
		probes++
		p, v := t.readEntry(idx)
		if p == oid.NullPool {
			t.bumpStats(1, uint64(probes), 1)
			return 0, probes, ErrNoTranslation
		}
		if p == pool {
			t.bumpStats(1, uint64(probes), 0)
			return v, probes, nil
		}
		idx = (idx + 1) & t.mask
	}
	t.bumpStats(1, uint64(probes), 1)
	return 0, probes, ErrNoTranslation
}

// bumpStats credits one walk's counters. The concurrent path uses atomics
// so walks from different goroutines never race; the single-threaded path
// keeps plain adds.
func (t *Table) bumpStats(walks, probes, misses uint64) {
	if t.concurrent {
		atomic.AddUint64(&t.stats.Walks, walks)
		atomic.AddUint64(&t.stats.Probes, probes)
		if misses != 0 {
			atomic.AddUint64(&t.stats.Misses, misses)
		}
		return
	}
	t.stats.Walks += walks
	t.stats.Probes += probes
	t.stats.Misses += misses
}

// ProbeAddrs returns the virtual addresses of the first n entries a walk
// for the pool examines (the linear-probe sequence starting at the hash
// index). Used by the probe-accurate walk-latency model, which charges each
// probed entry as a real memory access instead of the paper's fixed
// 30-cycle walk.
func (t *Table) ProbeAddrs(pool oid.PoolID, n int) []uint64 {
	addrs := make([]uint64, 0, n)
	idx := t.hash(pool)
	for i := 0; i < n; i++ {
		addrs = append(addrs, t.entryAddr(idx))
		idx = (idx + 1) & t.mask
	}
	return addrs
}

// Lookup is Walk without statistics, for software-side queries.
func (t *Table) Lookup(pool oid.PoolID) (vbase uint64, ok bool) {
	if t.concurrent {
		mu := &t.stripes[stripeOf(pool)]
		mu.RLock()
		defer mu.RUnlock()
	}
	idx := t.hash(pool)
	for probed := uint32(0); probed < t.entries; probed++ {
		p, v := t.readEntry(idx)
		if p == oid.NullPool {
			return 0, false
		}
		if p == pool {
			return v, true
		}
		idx = (idx + 1) & t.mask
	}
	return 0, false
}

// Stats returns walk statistics.
func (t *Table) Stats() Stats { return t.stats }

// ResetStats zeroes walk statistics.
func (t *Table) ResetStats() { t.stats = Stats{} }
