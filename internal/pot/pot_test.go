package pot

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"potgo/internal/oid"
	"potgo/internal/vm"
)

func newTable(t *testing.T, entries int) *Table {
	t.Helper()
	as := vm.NewAddressSpace(1)
	tab, err := New(as, entries)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestNewValidation(t *testing.T) {
	as := vm.NewAddressSpace(1)
	for _, n := range []int{0, -1, 3, 100} {
		if _, err := New(as, n); err == nil {
			t.Errorf("New(%d) must fail", n)
		}
	}
	tab, err := New(as, DefaultEntries)
	if err != nil {
		t.Fatal(err)
	}
	if tab.SizeBytes() != 256*1024 {
		t.Errorf("paper says 16384 entries occupy 256 KB, got %d", tab.SizeBytes())
	}
	if tab.Entries() != DefaultEntries {
		t.Errorf("Entries = %d", tab.Entries())
	}
	if tab.Base() == 0 {
		t.Error("table must have a base address")
	}
}

func TestInsertWalk(t *testing.T) {
	tab := newTable(t, 64)
	if err := tab.Insert(7, 0x7000_0000_1000); err != nil {
		t.Fatal(err)
	}
	v, probes, err := tab.Walk(7)
	if err != nil || v != 0x7000_0000_1000 {
		t.Fatalf("Walk = %#x, %v", v, err)
	}
	if probes < 1 {
		t.Error("walk must probe at least one entry")
	}
	if _, _, err := tab.Walk(8); !errors.Is(err, ErrNoTranslation) {
		t.Errorf("missing pool must raise exception, got %v", err)
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestInsertReservedPool(t *testing.T) {
	tab := newTable(t, 64)
	if err := tab.Insert(oid.NullPool, 0x1000); err == nil {
		t.Error("pool 0 is reserved and must be rejected")
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tab := newTable(t, 64)
	_ = tab.Insert(5, 0x1000)
	_ = tab.Insert(5, 0x2000)
	if tab.Len() != 1 {
		t.Errorf("re-insert must not grow table, Len = %d", tab.Len())
	}
	v, _, _ := tab.Walk(5)
	if v != 0x2000 {
		t.Errorf("re-insert must update base, got %#x", v)
	}
}

func TestLinearProbingCollisions(t *testing.T) {
	tab := newTable(t, 8)
	// Fill most of a tiny table; collisions are certain.
	pools := []oid.PoolID{1, 2, 3, 4, 5, 6}
	for i, p := range pools {
		if err := tab.Insert(p, uint64(0x1000*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range pools {
		v, _, err := tab.Walk(p)
		if err != nil || v != uint64(0x1000*(i+1)) {
			t.Errorf("pool %d: Walk = %#x, %v", p, v, err)
		}
	}
}

func TestFull(t *testing.T) {
	tab := newTable(t, 4)
	for p := oid.PoolID(1); p <= 4; p++ {
		if err := tab.Insert(p, uint64(p)*0x1000); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Insert(5, 0x9000); !errors.Is(err, ErrFull) {
		t.Errorf("full table must reject insert, got %v", err)
	}
	// A probe for a missing pool in a full table must terminate.
	if _, _, err := tab.Walk(99); !errors.Is(err, ErrNoTranslation) {
		t.Errorf("walk on full table for absent pool: %v", err)
	}
}

func TestRemoveBackwardShift(t *testing.T) {
	tab := newTable(t, 8)
	pools := []oid.PoolID{1, 2, 3, 4, 5}
	for _, p := range pools {
		if err := tab.Insert(p, uint64(p)*0x1000); err != nil {
			t.Fatal(err)
		}
	}
	// Remove from the middle of chains, then everything must still be
	// findable (backward-shift correctness).
	if err := tab.Remove(3); err != nil {
		t.Fatal(err)
	}
	if _, ok := tab.Lookup(3); ok {
		t.Error("removed pool still present")
	}
	for _, p := range []oid.PoolID{1, 2, 4, 5} {
		v, ok := tab.Lookup(p)
		if !ok || v != uint64(p)*0x1000 {
			t.Errorf("pool %d lost after removal: %#x, %t", p, v, ok)
		}
	}
	if err := tab.Remove(3); err == nil {
		t.Error("double remove must fail")
	}
	if err := tab.Remove(42); err == nil {
		t.Error("removing unknown pool must fail")
	}
	if tab.Len() != 4 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestStats(t *testing.T) {
	tab := newTable(t, 64)
	_ = tab.Insert(9, 0x9000)
	tab.Walk(9)
	tab.Walk(10)
	s := tab.Stats()
	if s.Walks != 2 || s.Misses != 1 || s.Probes < 2 {
		t.Errorf("stats = %+v", s)
	}
	tab.ResetStats()
	if tab.Stats().Walks != 0 {
		t.Error("ResetStats must zero")
	}
}

// Property: after a random sequence of inserts and removes, the table agrees
// with a reference map.
func TestQuickAgainstReferenceMap(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := newTable(t, 64)
		ref := map[oid.PoolID]uint64{}
		for i := 0; i < 300; i++ {
			p := oid.PoolID(rng.Intn(40) + 1)
			if rng.Intn(3) == 0 {
				if _, ok := ref[p]; ok {
					if err := tab.Remove(p); err != nil {
						return false
					}
					delete(ref, p)
				}
			} else if len(ref) < 48 {
				v := rng.Uint64() &^ 0xfff
				if err := tab.Insert(p, v); err != nil {
					return false
				}
				ref[p] = v
			}
		}
		if tab.Len() != len(ref) {
			return false
		}
		for p, v := range ref {
			got, ok := tab.Lookup(p)
			if !ok || got != v {
				return false
			}
		}
		// And absent pools must miss.
		for p := oid.PoolID(41); p < 60; p++ {
			if _, ok := tab.Lookup(p); ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Walk and Lookup always agree.
func TestQuickWalkLookupAgree(t *testing.T) {
	tab := newTable(t, 128)
	for p := oid.PoolID(1); p <= 50; p += 2 {
		if err := tab.Insert(p, uint64(p)<<12); err != nil {
			t.Fatal(err)
		}
	}
	f := func(p uint16) bool {
		pool := oid.PoolID(p%64 + 1)
		v1, ok := tab.Lookup(pool)
		v2, _, err := tab.Walk(pool)
		if ok != (err == nil) {
			return false
		}
		return !ok || v1 == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
