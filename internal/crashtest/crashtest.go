// Package crashtest is the adversarial crash-injection engine. It drives a
// Target's transactional workload on a heap whose persistence domain
// (internal/nvmsim) numbers every persistent store, CLWB and SFENCE as an
// event, crashes the world just before a chosen event under an adversarial
// line-loss policy, reopens the durable bytes, recovers, and verifies the
// target's invariants against a deterministic model of the committed
// prefix.
//
// Small workloads are swept exhaustively — every event under every policy;
// large ones are seed-sampled. Every failure carries a deterministic replay
// token (target, event, exact survivor set) and, optionally, a minimized
// counterexample: the smallest set of lost cache lines that still breaks
// recovery, found by greedily restoring dropped lines.
package crashtest

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"potgo/internal/emit"
	"potgo/internal/nvmsim"
	"potgo/internal/obs"
	"potgo/internal/pmem"
	"potgo/internal/vm"
)

// MutationSpec weakens the durability plumbing during the workload run —
// the moral equivalent of deleting a Persist call from a structure — so
// campaigns can prove the engine detects a real missing-flush bug rather
// than vacuously passing. Recovery and verification always run unmutated.
type MutationSpec struct {
	// DropCLWBEveryN suppresses every Nth cache-line write-back (1 = all).
	DropCLWBEveryN int `json:"drop_clwb_every_n,omitempty"`
	// DropFenceEveryN suppresses every Nth store fence (1 = all).
	DropFenceEveryN int `json:"drop_fence_every_n,omitempty"`
}

func (m MutationSpec) enabled() bool { return m.DropCLWBEveryN > 0 || m.DropFenceEveryN > 0 }

// mutObserver wraps the heap's persist observer, dropping the selected
// durability instructions before they reach the cache model.
type mutObserver struct {
	spec   MutationSpec
	inner  emit.PersistObserver
	clwbs  int
	fences int
}

func (m *mutObserver) ObserveCLWB(va uint64) {
	m.clwbs++
	if n := m.spec.DropCLWBEveryN; n > 0 && m.clwbs%n == 0 {
		return
	}
	m.inner.ObserveCLWB(va)
}

func (m *mutObserver) ObserveSFence() {
	m.fences++
	if n := m.spec.DropFenceEveryN; n > 0 && m.fences%n == 0 {
		return
	}
	m.inner.ObserveSFence()
}

// Options configures a campaign.
type Options struct {
	// Seed drives the workload op streams, the sampling of crash points
	// and the seeded policies. Same seed, same campaign, bit for bit.
	Seed uint64 `json:"seed"`
	// Ops is the number of workload transactions per case.
	Ops int `json:"ops"`
	// MaxPoints caps the crash points tried per target; spans at or under
	// the cap are swept exhaustively, larger ones seed-sampled. <= 0
	// means always exhaustive.
	MaxPoints int `json:"max_points"`
	// Policies are the adversaries applied at each crash point.
	Policies []nvmsim.Kind `json:"-"`
	// MaxFailures stops a target's campaign after this many failures
	// (each failure costs a minimization pass). <= 0 means 1.
	MaxFailures int `json:"max_failures"`
	// Minimize shrinks each failure to a minimal dropped-line set.
	Minimize bool `json:"minimize"`
	// Mutate, when enabled, weakens durability during the workload (see
	// MutationSpec). The dry run uses the same mutation so event numbering
	// stays aligned.
	Mutate MutationSpec `json:"mutate,omitempty"`
	// Obs, when non-nil, receives campaign progress counters under
	// "crashtest." (cases_explored, failures, points_selected, ...). It has
	// no effect on the sweep itself.
	Obs *obs.Registry `json:"-"`
}

// DefaultOptions returns the CI smoke-campaign configuration.
func DefaultOptions() Options {
	return Options{
		Seed:        1,
		Ops:         12,
		MaxPoints:   48,
		Policies:    []nvmsim.Kind{nvmsim.DropAll, nvmsim.Torn},
		MaxFailures: 1,
		Minimize:    true,
	}
}

// Failure is one reproducible crash-consistency violation.
type Failure struct {
	Target string `json:"target"`
	// Event is the crash point: the persistence-domain event index the
	// crash preempted.
	Event  uint64 `json:"event"`
	Policy string `json:"policy"`
	Seed   uint64 `json:"policy_seed"`
	// Kept is the exact survivor set the adversary granted
	// (nvmsim.Report.KeptString form) — with Event, the deterministic
	// replay token.
	Kept    string `json:"kept"`
	Dropped int    `json:"dropped_lines"`
	Err     string `json:"error"`
	// MinLost, when minimization ran, is the minimal set of lost or torn
	// lines ("pool:off/mask") that still reproduces the failure.
	MinLost []string `json:"min_lost,omitempty"`
}

// ReplayToken renders the failure's deterministic reproduction handle.
func (f Failure) ReplayToken() string {
	return fmt.Sprintf("%s@%d#%s", f.Target, f.Event, f.Kept)
}

// ParseReplayToken splits a ReplayToken into its target, event and survivor
// set.
func ParseReplayToken(tok string) (target string, event uint64, keep map[nvmsim.Line]byte, err error) {
	target, rest, ok1 := strings.Cut(tok, "@")
	eventS, kept, ok2 := strings.Cut(rest, "#")
	if !ok1 || !ok2 || target == "" {
		return "", 0, nil, fmt.Errorf("crashtest: bad replay token %q", tok)
	}
	event, err = strconv.ParseUint(eventS, 10, 64)
	if err != nil {
		return "", 0, nil, fmt.Errorf("crashtest: bad event in replay token %q", tok)
	}
	keep, err = nvmsim.ParseKept(kept)
	if err != nil {
		return "", 0, nil, err
	}
	return target, event, keep, nil
}

// Summary is one target's campaign result.
type Summary struct {
	Target     string    `json:"target"`
	Span       uint64    `json:"event_span"`
	Points     int       `json:"points"`
	Exhaustive bool      `json:"exhaustive"`
	Cases      int       `json:"cases"`
	Failures   []Failure `json:"failures"`
}

// buildWorld constructs a fresh deterministic world for the target: address
// space, durable store, discard-mode heap, built target state, synced so
// the setup is the durable floor. The mutation, if any, is installed after
// the sync so only the workload runs weakened.
func buildWorld(tg Target, opt Options) (*vm.AddressSpace, *pmem.Store, *pmem.Heap, Instance, error) {
	as := vm.NewAddressSpace(int64(opt.Seed))
	store := pmem.NewStore()
	h, err := pmem.NewHeapDiscard(as, store)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	inst, err := tg.Build(h)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("crashtest: build %s: %w", tg.Name(), err)
	}
	if err := h.SyncAll(); err != nil {
		return nil, nil, nil, nil, err
	}
	if opt.Mutate.enabled() {
		h.Emit.SetPersistObserver(&mutObserver{spec: opt.Mutate, inner: h})
	}
	return as, store, h, inst, nil
}

// armRun executes fn with a crash armed at the given event, converting the
// CrashSignal panic into a normal return. Reaching the end of fn without
// crashing (the point lies past the run's events) is legal.
func armRun(h *pmem.Heap, at uint64, fn func() error) (crashed bool, err error) {
	h.NV.Arm(at)
	defer h.NV.Disarm()
	defer func() {
		if r := recover(); r != nil {
			if _, ok := nvmsim.AsCrashSignal(r); !ok {
				panic(r)
			}
			crashed = true
			err = nil
		}
	}()
	return false, fn()
}

func policyFor(kind nvmsim.Kind, seed uint64) nvmsim.Policy {
	switch kind {
	case nvmsim.KeepRandom:
		return nvmsim.KeepRandomPolicy(seed)
	case nvmsim.Torn:
		return nvmsim.TornPolicy(seed)
	default:
		return nvmsim.DropAllPolicy()
	}
}

// runCase builds a world, crashes it just before the given event under pol,
// recovers on a fresh heap and verifies. A non-nil *Failure is a
// crash-consistency violation; a non-nil error is an engine/world problem.
func runCase(tg Target, opt Options, event uint64, pol nvmsim.Policy) (*Failure, error) {
	as, store, h, inst, err := buildWorld(tg, opt)
	if err != nil {
		return nil, err
	}
	if _, err := armRun(h, event, func() error { return inst.Run(opt.Ops) }); err != nil {
		return nil, fmt.Errorf("crashtest: %s workload: %w", tg.Name(), err)
	}
	rep, err := h.Crash(pol)
	if err != nil {
		return nil, err
	}

	h2, err := pmem.NewHeapDiscard(as, store)
	if err != nil {
		return nil, err
	}
	verr := func() error {
		inst2, err := tg.Attach(h2)
		if err != nil {
			return fmt.Errorf("recover: %w", err)
		}
		return inst2.Check(opt.Ops)
	}()
	if verr == nil {
		return nil, nil
	}
	return &Failure{
		Target:  tg.Name(),
		Event:   event,
		Policy:  pol.Kind.String(),
		Seed:    pol.Seed,
		Kept:    rep.KeptString(),
		Dropped: len(rep.Dropped),
		Err:     verr.Error(),
	}, nil
}

// reportOf re-runs a case purely for its crash report; minimization needs
// the dropped-line identities, which runCase doesn't retain.
func reportOf(tg Target, opt Options, event uint64, pol nvmsim.Policy) (nvmsim.Report, error) {
	as, store, h, inst, err := buildWorld(tg, opt)
	_, _ = as, store
	if err != nil {
		return nvmsim.Report{}, err
	}
	if _, err := armRun(h, event, func() error { return inst.Run(opt.Ops) }); err != nil {
		return nvmsim.Report{}, err
	}
	return h.Crash(pol)
}

// minimizeLimit bounds the resimulations one failure's minimization may
// cost.
const minimizeLimit = 96

// minimize greedily heals the damage one line at a time — restoring dropped
// lines and completing partially-kept (torn) ones. A line whose healing
// makes verification pass is essential to the failure and stays damaged.
// The result is 1-minimal: healing any single reported line no longer
// reproduces the failure. Entries are "pool:off/mask" with the mask the
// adversary left (00 = fully lost).
func minimize(tg Target, opt Options, event uint64, rep nvmsim.Report) []string {
	type candidate struct {
		ln   nvmsim.Line
		mask byte
	}
	var cands []candidate
	for _, ln := range rep.Dropped {
		cands = append(cands, candidate{ln: ln, mask: 0})
	}
	for _, k := range rep.Kept {
		if k.Mask != 0xFF {
			cands = append(cands, candidate{ln: k.Line, mask: k.Mask})
		}
	}
	if len(cands) == 0 || len(cands) > minimizeLimit {
		return nil
	}
	keep := rep.Explicit().Keep
	var essential []string
	for _, c := range cands {
		keep[c.ln] = 0xFF
		fail, err := runCase(tg, opt, event, nvmsim.ExplicitPolicy(keep))
		if err != nil || fail == nil {
			// Healing this line repaired recovery: its damage is part of
			// the counterexample.
			if c.mask == 0 {
				delete(keep, c.ln)
			} else {
				keep[c.ln] = c.mask
			}
			essential = append(essential, fmt.Sprintf("%s/%02x", c.ln, c.mask))
		}
	}
	return essential
}

// RunTarget sweeps one target: a dry run sizes the workload's event span,
// then every selected crash point is tried under every policy.
func RunTarget(tg Target, opt Options) (Summary, error) {
	if opt.Ops <= 0 {
		opt.Ops = DefaultOptions().Ops
	}
	if len(opt.Policies) == 0 {
		opt.Policies = DefaultOptions().Policies
	}
	if opt.MaxFailures <= 0 {
		opt.MaxFailures = 1
	}

	// Dry run: the workload must complete cleanly and produce events.
	_, _, h, inst, err := buildWorld(tg, opt)
	if err != nil {
		return Summary{}, err
	}
	base := h.NV.Events()
	if err := inst.Run(opt.Ops); err != nil {
		return Summary{}, fmt.Errorf("crashtest: %s dry run: %w", tg.Name(), err)
	}
	span := h.NV.Events() - base
	if span == 0 {
		return Summary{}, fmt.Errorf("crashtest: %s workload produced no persistence events", tg.Name())
	}

	points, exhaustive := pickPoints(base, span, opt)
	sum := Summary{Target: tg.Name(), Span: span, Points: len(points), Exhaustive: exhaustive}
	opt.Obs.Counter("crashtest.events_spanned").Add(span)
	opt.Obs.Counter("crashtest.points_selected").Add(uint64(len(points)))
	opt.Obs.Counter("crashtest.cases_planned").Add(uint64(len(points) * len(opt.Policies)))
	defer func() {
		opt.Obs.Counter("crashtest.targets_completed").Inc()
	}()
	for _, e := range points {
		for _, kind := range opt.Policies {
			pol := policyFor(kind, opt.Seed^e)
			fail, err := runCase(tg, opt, e, pol)
			if err != nil {
				return sum, err
			}
			sum.Cases++
			opt.Obs.Counter("crashtest.cases_explored").Inc()
			if fail == nil {
				continue
			}
			opt.Obs.Counter("crashtest.failures").Inc()
			if opt.Minimize {
				if rep, err := reportOf(tg, opt, e, pol); err == nil {
					fail.MinLost = minimize(tg, opt, e, rep)
				}
			}
			sum.Failures = append(sum.Failures, *fail)
			if len(sum.Failures) >= opt.MaxFailures {
				return sum, nil
			}
		}
	}
	return sum, nil
}

// pickPoints selects the crash points for a span starting at base:
// exhaustive when it fits the budget, otherwise seed-sampled without
// replacement.
func pickPoints(base, span uint64, opt Options) ([]uint64, bool) {
	if opt.MaxPoints <= 0 || span <= uint64(opt.MaxPoints) {
		out := make([]uint64, span)
		for i := range out {
			out[i] = base + uint64(i)
		}
		return out, true
	}
	pick := make(map[uint64]bool, opt.MaxPoints)
	s := opt.Seed ^ 0xc4a5e
	for len(pick) < opt.MaxPoints {
		s = mix64(s)
		pick[base+s%span] = true
	}
	out := make([]uint64, 0, len(pick))
	for e := range pick {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, false
}

// Replay reproduces one recorded case exactly: crash at the event with the
// recorded survivor set, recover, verify. It returns the verification
// error, nil if the case now passes. Options must match the recording
// campaign's (seed, ops, mutation) for the replay to be faithful.
func Replay(tg Target, opt Options, event uint64, keep map[nvmsim.Line]byte) error {
	fail, err := runCase(tg, opt, event, nvmsim.ExplicitPolicy(keep))
	if err != nil {
		return err
	}
	if fail == nil {
		return nil
	}
	return fmt.Errorf("%s", fail.Err)
}
