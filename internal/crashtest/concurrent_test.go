package crashtest

import (
	"testing"

	"potgo/internal/nvmsim"
	"potgo/internal/obs"
	"potgo/internal/randtest"
)

// TestConcurrentCampaign runs the full concurrent crash campaign: armed
// crashes under a multi-worker workload, power cycles under rotating
// adversaries, and the acked-prefix verification protocol after each one.
func TestConcurrentCampaign(t *testing.T) {
	opt := DefaultConcurrentOptions()
	opt.Seed = uint64(randtest.Seed(t, 1))
	if testing.Short() {
		opt.Points = 4
	}
	reg := obs.NewRegistry()
	opt.Obs = reg

	sum, err := RunConcurrent(opt)
	if err != nil {
		t.Fatalf("concurrent campaign: %v", err)
	}
	t.Logf("points=%d fired=%d completed=%d acked=%d span=%d",
		sum.Points, sum.Fired, sum.Completed, sum.AckedOps, sum.Span)
	if sum.Fired == 0 {
		t.Fatal("no sampled crash point fired: the campaign never crashed mid-workload")
	}
	if sum.AckedOps == 0 {
		t.Fatal("no operations were acknowledged across the campaign")
	}
	if sum.Span == 0 {
		t.Fatal("baseline run measured an empty event span")
	}
}

// TestConcurrentCampaignRejectsBadOptions pins the option validation.
func TestConcurrentCampaignRejectsBadOptions(t *testing.T) {
	opt := DefaultConcurrentOptions()
	opt.Workers = 0
	if _, err := RunConcurrent(opt); err == nil {
		t.Fatal("zero workers accepted")
	}
}

// TestConcurrentQuiescentDurability pins the baseline property on its own:
// with no crash armed, a drained workload must survive the harshest
// policy — everything acknowledged is durable by construction.
func TestConcurrentQuiescentDurability(t *testing.T) {
	opt := DefaultConcurrentOptions()
	opt.Seed = uint64(randtest.Seed(t, 3))
	opt.Points = 1 // only the unarmed baseline
	opt.Policies = []nvmsim.Kind{nvmsim.DropAll}
	sum, err := RunConcurrent(opt)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if sum.Completed != 1 || sum.Fired != 0 {
		t.Fatalf("baseline summary off: %+v", sum)
	}
}
