package crashtest

import (
	"strings"
	"testing"

	"potgo/internal/obs"
	"potgo/internal/pmem"
	"potgo/internal/randtest"
)

func TestRepairCampaignDetect(t *testing.T) {
	for _, k := range []int{1, 4, 16} {
		k := k
		t.Run(string(rune('0'+k/10))+string(rune('0'+k%10)), func(t *testing.T) {
			opt := DefaultRepairOptions()
			opt.Seed = uint64(randtest.Seed(t, 1))
			opt.K = k
			if k == 16 {
				// 16 faults need 16 distinct parity groups of live data.
				opt.Keys = 256
				opt.Ops = 400
			}
			t.Logf("seed %d", opt.Seed)
			sum, err := RunRepair(opt)
			if err != nil {
				t.Fatalf("k=%d: %v (summary %+v)", k, err, sum)
			}
			if sum.Injected != k*opt.Rounds {
				t.Fatalf("injected %d faults, want %d", sum.Injected, k*opt.Rounds)
			}
			if sum.Repaired+sum.ParityRepaired < sum.Injected {
				t.Fatalf("repaired %d+%d of %d injected", sum.Repaired, sum.ParityRepaired, sum.Injected)
			}
			if sum.Unrepairable != 0 {
				t.Fatalf("unrepairable: %+v", sum)
			}
		})
	}
}

func TestRepairCampaignSilent(t *testing.T) {
	opt := DefaultRepairOptions()
	opt.Seed = uint64(randtest.Seed(t, 2))
	opt.Mode = pmem.CorruptSilent
	opt.Obs = obs.NewRegistry()
	t.Logf("seed %d", opt.Seed)
	sum, err := RunRepair(opt)
	if err != nil {
		t.Fatalf("%v (summary %+v)", err, sum)
	}
	if sum.Repaired+sum.ParityRepaired < sum.Injected {
		t.Fatalf("silent faults not all found: %+v", sum)
	}
	if got := opt.Obs.Counter("crashtest.repair.rounds").Value(); got != uint64(opt.Rounds) {
		t.Fatalf("rounds counter = %d, want %d", got, opt.Rounds)
	}
}

func TestRepairCampaignCrashMidScrub(t *testing.T) {
	opt := DefaultRepairOptions()
	opt.Seed = uint64(randtest.Seed(t, 3))
	opt.Rounds = 6
	opt.CrashMidScrub = true
	t.Logf("seed %d", opt.Seed)
	sum, err := RunRepair(opt)
	if err != nil {
		t.Fatalf("%v (summary %+v)", err, sum)
	}
	if sum.Fired == 0 {
		t.Fatalf("no armed crash fired across %d rounds: %+v", opt.Rounds, sum)
	}
	if sum.Unrepairable != 0 {
		t.Fatalf("unrepairable after crash-mid-scrub recovery: %+v", sum)
	}
	t.Logf("summary %+v", sum)
}

// TestRepairCampaignMutationCheck proves the harness has teeth: with
// parity maintenance sabotaged the campaign must FAIL on unrepairable
// faults, never report success.
func TestRepairCampaignMutationCheck(t *testing.T) {
	opt := DefaultRepairOptions()
	opt.Seed = uint64(randtest.Seed(t, 4))
	opt.NoParity = true
	opt.K = 6
	t.Logf("seed %d", opt.Seed)
	sum, err := RunRepair(opt)
	if err == nil {
		t.Fatalf("sabotaged campaign reported success: %+v", sum)
	}
	if !strings.Contains(err.Error(), "unrepairable") {
		t.Fatalf("sabotaged campaign failed for the wrong reason: %v", err)
	}
	t.Logf("campaign failed as it must: %v", err)
}
