package crashtest

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"potgo/internal/lincheck"
	"potgo/internal/nvmsim"
	"potgo/internal/objstore"
	"potgo/internal/pds"
	"potgo/internal/pmem"
)

// The MVCC campaign crashes a snapshot-read workload mid-flight while an
// epoch-reclamation goroutine concurrently sweeps superseded versions, and
// proves recovery lands on a state consistent with the acknowledged
// operations — with every post-recovery read served through the reseeded
// snapshot mirror (a dangling version reference would surface as a wrong
// value or a failed walk).
//
// The verification protocol is the journaled-counter protocol of the
// concurrent campaign, carried by the KV store: every Put/Delete appends
// to its shard's volatile journal inside the transaction (journal order is
// commit order; at most the last entry per shard can be uncommitted) and
// bumps the shard's persistent op counter in the same transaction, so the
// recovered counter c per shard satisfies acked <= c <= len(journal) and
// replay(journal[:c]) is exactly the durable contents.
//
// Run 0 stays unarmed: it measures the persistence-event span for crash-
// point sampling AND records a full snapshot-isolation history (writes +
// epoch-pinned reads) checked with lincheck.CheckSI — the live proof that
// the snapshot path is honest. The stale-read mutation mode freezes pins
// at a stale epoch instead of arming crashes; the same checker must then
// report a violation, or the harness is proven unable to catch the bug it
// exists for.

// MVCCSummary reports one MVCC crash campaign.
type MVCCSummary struct {
	Points        int    `json:"points"`
	Fired         int    `json:"fired"`     // runs where the armed crash actually hit
	Completed     int    `json:"completed"` // runs that drained before the arm point
	AckedOps      uint64 `json:"acked_ops"`
	SnapshotReads uint64 `json:"snapshot_reads"`
	Reclaims      uint64 `json:"reclaim_sweeps"`
	Span          uint64 `json:"event_span"`
}

type mvWorld struct {
	sh *pmem.Sharded
	kv *objstore.KV
}

func buildMVCCWorld(opt ConcurrentOptions) (*mvWorld, error) {
	sh, err := pmem.NewSharded(pmem.NewStore(), opt.Shards, int64(opt.Seed))
	if err != nil {
		return nil, err
	}
	kv, err := objstore.CreateKV(sh, "mv")
	if err != nil {
		return nil, err
	}
	kv.EnableJournal()
	return &mvWorld{sh: sh, kv: kv}, nil
}

// mvHistory collects the SI history of a recorded (unarmed) run.
type mvHistory struct {
	mu     sync.Mutex
	writes []lincheck.SIWrite
	reads  []lincheck.SIRead
	rec    *lincheck.Recorder
}

// runMVCCWorkers drives puts/deletes/snapshot gets/scans until every
// worker finishes or the domain crashes, with a reclamation goroutine
// sweeping the whole time. acked counts committed writes per KV shard;
// hist is non-nil only for unarmed recorded runs (a crashed worker's
// history would contain in-flight writes the checker cannot attribute).
func runMVCCWorkers(w *mvWorld, opt ConcurrentOptions, hist *mvHistory) (fired int, acked []uint64, snapReads, reclaims uint64, err error) {
	ackedA := make([]uint64, opt.Shards)
	var primary, reads uint64
	errs := make([]error, opt.Workers)

	stopReclaim := make(chan struct{})
	var reclaimWG sync.WaitGroup
	reclaimWG.Add(1)
	go func() {
		defer reclaimWG.Done()
		for {
			select {
			case <-stopReclaim:
				w.sh.ReclaimVersions()
				reclaims++
				return
			default:
				w.sh.ReclaimVersions()
				reclaims++
				runtime.Gosched() // keep the sweep loop from starving workers
			}
		}
	}()

	var wg sync.WaitGroup
	for wi := 0; wi < opt.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				cs, ok := nvmsim.AsCrashSignal(r)
				if !ok {
					panic(r)
				}
				if !cs.Poisoned {
					atomic.AddUint64(&primary, 1)
				}
			}()
			fail := func(what string, err error) bool {
				if err == nil {
					return false
				}
				if !w.sh.Heap().NV.Poisoned() {
					errs[wi] = fmt.Errorf("worker %d %s: %w", wi, what, err)
				}
				return true
			}
			rng := rand.New(rand.NewSource(int64(mix64(opt.Seed ^ uint64(wi+1)))))
			var scanBuf []pds.KV
			var localW []lincheck.SIWrite
			var localR []lincheck.SIRead
			for i := 0; i < opt.OpsPerWorker; i++ {
				key := uint64(rng.Intn(opt.KeySpace) + 1)
				switch rng.Intn(8) {
				case 0, 1, 2: // put
					val := uint64(wi+1)<<32 | uint64(i+1)
					var p lincheck.Pending
					if hist != nil {
						p = hist.rec.Begin(wi, key)
					}
					if _, err := w.kv.Put(key, val); fail("Put", err) {
						return
					}
					atomic.AddUint64(&ackedA[key%uint64(opt.Shards)], 1)
					if hist != nil {
						op := hist.rec.End(p, val)
						localW = append(localW, lincheck.SIWrite{Key: key, Val: val, Call: op.Call, Ret: op.Ret})
					}
				case 3: // delete
					var p lincheck.Pending
					if hist != nil {
						p = hist.rec.Begin(wi, key)
					}
					if _, err := w.kv.Delete(key); fail("Delete", err) {
						return
					}
					atomic.AddUint64(&ackedA[key%uint64(opt.Shards)], 1)
					if hist != nil {
						op := hist.rec.End(p, nil)
						localW = append(localW, lincheck.SIWrite{Key: key, Del: true, Call: op.Call, Ret: op.Ret})
					}
				case 4, 5, 6: // snapshot get
					var p lincheck.Pending
					if hist != nil {
						p = hist.rec.Begin(wi, key)
					}
					val, found, err := w.kv.Get(key)
					if fail("Get", err) {
						return
					}
					atomic.AddUint64(&reads, 1)
					if hist != nil {
						op := hist.rec.End(p, val)
						localR = append(localR, lincheck.SIRead{
							Worker: wi,
							Obs:    []lincheck.SIObs{{Key: key, Val: val, Found: found}},
							Call:   op.Call, Ret: op.Ret,
						})
					}
				case 7: // snapshot scan
					var p lincheck.Pending
					if hist != nil {
						p = hist.rec.Begin(wi, 0)
					}
					var err error
					scanBuf, err = w.kv.ScanAppend(scanBuf, 0, opt.KeySpace+64)
					if fail("Scan", err) {
						return
					}
					atomic.AddUint64(&reads, 1)
					if hist != nil {
						op := hist.rec.End(p, nil)
						got := make(map[uint64]uint64, len(scanBuf))
						for _, kvp := range scanBuf {
							got[kvp.Key] = kvp.Val
						}
						obs := make([]lincheck.SIObs, 0, opt.KeySpace)
						for k := uint64(1); k <= uint64(opt.KeySpace); k++ {
							if v, ok := got[k]; ok {
								obs = append(obs, lincheck.SIObs{Key: k, Val: v, Found: true})
							} else {
								obs = append(obs, lincheck.SIObs{Key: k})
							}
						}
						localR = append(localR, lincheck.SIRead{Worker: wi, Obs: obs, Call: op.Call, Ret: op.Ret})
					}
				}
			}
			if hist != nil {
				hist.mu.Lock()
				hist.writes = append(hist.writes, localW...)
				hist.reads = append(hist.reads, localR...)
				hist.mu.Unlock()
			}
		}(wi)
	}
	wg.Wait()
	close(stopReclaim)
	reclaimWG.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, nil, 0, 0, e
		}
	}
	return int(primary), ackedA, reads, reclaims, nil
}

// verifyMVCC power-cycles the world, reattaches (which reseeds the
// snapshot mirror from the recovered bytes), and proves: per shard
// acked <= counter <= journaled with the committed prefix replaying to the
// exact durable contents — read back entirely through the snapshot path.
func verifyMVCC(w *mvWorld, acked []uint64, pol nvmsim.Policy, opt ConcurrentOptions) error {
	if _, err := w.sh.Crash(pol); err != nil {
		return fmt.Errorf("crash: %w", err)
	}
	kv2, err := objstore.OpenKV(w.sh, "mv")
	if err != nil {
		return fmt.Errorf("reattach: %w", err)
	}
	total, err := kv2.Check()
	if err != nil {
		return fmt.Errorf("structure invariants: %w", err)
	}

	// Merge the per-shard committed prefixes into one model.
	model := make(map[uint64]uint64)
	for i := 0; i < opt.Shards; i++ {
		journal := w.kv.Journal(i)
		c, err := kv2.Counter(i)
		if err != nil {
			return fmt.Errorf("shard %d counter: %w", i, err)
		}
		if c < acked[i] || c > uint64(len(journal)) {
			return fmt.Errorf("shard %d: recovered counter %d outside [acked=%d, journaled=%d]",
				i, c, acked[i], len(journal))
		}
		for k, v := range objstore.ReplayKVJournal(journal, int(c)) {
			model[k] = v
		}
	}
	if total != len(model) {
		return fmt.Errorf("%d keys recovered, committed prefixes replay to %d", total, len(model))
	}

	// Every post-recovery read below rides the reseeded snapshot mirror:
	// a dangling or missing version reference surfaces here as a wrong
	// value, a spurious miss, or an inconsistent scan.
	for key := uint64(1); key <= uint64(opt.KeySpace); key++ {
		val, ok, err := kv2.Get(key)
		if err != nil {
			return fmt.Errorf("get %d after recovery: %w", key, err)
		}
		want, wantOK := model[key]
		if ok != wantOK || (ok && val != want) {
			return fmt.Errorf("key %d: recovered (%d,%v), committed prefix says (%d,%v)",
				key, val, ok, want, wantOK)
		}
	}
	scan, err := kv2.Scan(0, opt.KeySpace+64)
	if err != nil {
		return fmt.Errorf("scan after recovery: %w", err)
	}
	if len(scan) != len(model) {
		return fmt.Errorf("scan returned %d pairs, committed prefixes hold %d", len(scan), len(model))
	}
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		if scan[i].Key != k || scan[i].Val != model[k] {
			return fmt.Errorf("scan[%d] = (%d,%d), want (%d,%d)", i, scan[i].Key, scan[i].Val, k, model[k])
		}
	}
	return nil
}

// checkMVCCHistory runs the SI checker over a recorded run.
func checkMVCCHistory(hist *mvHistory) error {
	return lincheck.CheckSI(hist.writes, hist.reads)
}

// RunMVCC runs the MVCC crash campaign. With mutateStale set it instead
// runs the bug-injection mode: pins frozen at a stale epoch, no crashes
// armed — the campaign MUST fail (via the SI checker) or the harness is
// useless; pair with potcrash -expect-failure.
func RunMVCC(opt ConcurrentOptions, mutateStale bool) (MVCCSummary, error) {
	if opt.Workers <= 0 || opt.Shards <= 0 || opt.OpsPerWorker <= 0 || opt.Points <= 0 {
		return MVCCSummary{}, fmt.Errorf("crashtest: mvcc options need positive workers/shards/ops/points")
	}
	if opt.KeySpace <= 0 {
		opt.KeySpace = 24
	}
	if len(opt.Policies) == 0 {
		opt.Policies = []nvmsim.Kind{nvmsim.DropAll}
	}
	sum := MVCCSummary{Points: opt.Points}

	var bump func(name string, d uint64)
	if opt.Obs != nil {
		bump = func(name string, d uint64) { opt.Obs.Counter("crashtest.mvcc." + name).Add(d) }
	} else {
		bump = func(string, uint64) {}
	}

	if mutateStale {
		return runMVCCStaleMutation(opt, sum, bump)
	}

	var startE, endE uint64
	for point := 0; point < opt.Points; point++ {
		w, err := buildMVCCWorld(opt)
		if err != nil {
			return sum, err
		}
		h := w.sh.Heap()

		polKind := opt.Policies[point%len(opt.Policies)]
		pol := nvmsim.Policy{Kind: polKind, Seed: mix64(opt.Seed ^ uint64(point) ^ 0x3c)}

		armAt := uint64(0)
		var hist *mvHistory
		if point == 0 {
			// Unarmed baseline: measures the event span and records the SI
			// history the checker proves snapshot-consistent.
			startE = h.NV.Events()
			hist = &mvHistory{rec: lincheck.NewRecorder()}
		} else {
			span := endE - startE
			if span == 0 {
				span = 1
			}
			armAt = startE + 1 + mix64(opt.Seed^uint64(point))%span
			h.NV.Arm(armAt)
		}

		fired, acked, reads, reclaims, err := runMVCCWorkers(w, opt, hist)
		if err != nil {
			return sum, fmt.Errorf("point %d: %w", point, err)
		}
		if point == 0 {
			endE = h.NV.Events()
			sum.Span = endE - startE
			if sum.Span == 0 {
				return sum, fmt.Errorf("crashtest: baseline run produced no persistence events")
			}
			if err := checkMVCCHistory(hist); err != nil {
				return sum, fmt.Errorf("baseline snapshot reads not SI-consistent: %w", err)
			}
		}
		h.NV.Disarm()
		if fired > 1 {
			return sum, fmt.Errorf("point %d: %d primary crash signals, want at most 1", point, fired)
		}
		if fired == 1 {
			sum.Fired++
			bump("fired", 1)
		} else {
			sum.Completed++
			bump("completed", 1)
		}
		for _, a := range acked {
			sum.AckedOps += a
		}
		sum.SnapshotReads += reads
		sum.Reclaims += reclaims

		if err := verifyMVCC(w, acked, pol, opt); err != nil {
			return sum, fmt.Errorf("point %d (arm=%d, policy=%s, fired=%v): %w",
				point, armAt, polKind, fired == 1, err)
		}
		bump("points", 1)
	}
	return sum, nil
}

// runMVCCStaleMutation preloads the store, freezes snapshot pins at the
// preload epoch, runs the recorded workload, and finishes with a
// deterministic probe (overwrite then read) that is guaranteed stale. The
// SI checker must reject the history; its error is the campaign's.
func runMVCCStaleMutation(opt ConcurrentOptions, sum MVCCSummary, bump func(string, uint64)) (MVCCSummary, error) {
	w, err := buildMVCCWorld(opt)
	if err != nil {
		return sum, err
	}
	hist := &mvHistory{rec: lincheck.NewRecorder()}
	preVal := func(key uint64) uint64 { return uint64(0xF)<<56 | key }
	for key := uint64(1); key <= uint64(opt.KeySpace); key++ {
		p := hist.rec.Begin(0, key)
		if _, err := w.kv.Put(key, preVal(key)); err != nil {
			return sum, fmt.Errorf("preload put %d: %w", key, err)
		}
		op := hist.rec.End(p, nil)
		hist.writes = append(hist.writes, lincheck.SIWrite{Key: key, Val: preVal(key), Call: op.Call, Ret: op.Ret})
	}

	w.sh.MVCC().MutateStaleReads()

	fired, acked, reads, reclaims, err := runMVCCWorkers(w, opt, hist)
	if err != nil {
		return sum, fmt.Errorf("mutated workload: %w", err)
	}
	if fired != 0 {
		return sum, fmt.Errorf("mutation mode arms no crashes but %d fired", fired)
	}
	for _, a := range acked {
		sum.AckedOps += a
	}
	sum.SnapshotReads += reads
	sum.Reclaims += reclaims
	sum.Completed++
	sum.Points = 1

	// Deterministic probe: a committed overwrite followed by a read that
	// the frozen pin serves from the stale epoch.
	probeVal := uint64(0xE) << 56
	p := hist.rec.Begin(0, uint64(1))
	if _, err := w.kv.Put(1, probeVal); err != nil {
		return sum, fmt.Errorf("probe put: %w", err)
	}
	op := hist.rec.End(p, nil)
	hist.writes = append(hist.writes, lincheck.SIWrite{Key: 1, Val: probeVal, Call: op.Call, Ret: op.Ret})
	p = hist.rec.Begin(0, uint64(1))
	val, found, err := w.kv.Get(1)
	if err != nil {
		return sum, fmt.Errorf("probe get: %w", err)
	}
	op = hist.rec.End(p, val)
	hist.reads = append(hist.reads, lincheck.SIRead{
		Worker: 0,
		Obs:    []lincheck.SIObs{{Key: 1, Val: val, Found: found}},
		Call:   op.Call, Ret: op.Ret,
	})

	if err := checkMVCCHistory(hist); err != nil {
		bump("mutation_detected", 1)
		return sum, fmt.Errorf("stale-read mutation detected (as it must be): %w", err)
	}
	return sum, nil
}
