package crashtest

import (
	"strings"
	"testing"

	"potgo/internal/obs"
	"potgo/internal/randtest"
)

// TestMVCCCampaign runs the full MVCC crash campaign: armed crashes under
// a snapshot-read workload with concurrent epoch reclamation, power cycles
// under rotating adversaries, and the journaled-counter + snapshot-sweep
// verification after each one.
func TestMVCCCampaign(t *testing.T) {
	opt := DefaultConcurrentOptions()
	opt.Seed = uint64(randtest.Seed(t, 11))
	if testing.Short() {
		opt.Points = 4
	}
	reg := obs.NewRegistry()
	opt.Obs = reg

	sum, err := RunMVCC(opt, false)
	if err != nil {
		t.Fatalf("mvcc campaign: %v", err)
	}
	t.Logf("points=%d fired=%d completed=%d acked=%d snapReads=%d reclaims=%d span=%d",
		sum.Points, sum.Fired, sum.Completed, sum.AckedOps, sum.SnapshotReads, sum.Reclaims, sum.Span)
	if sum.Fired == 0 {
		t.Fatal("no sampled crash point fired: the campaign never crashed mid-workload")
	}
	if sum.AckedOps == 0 || sum.SnapshotReads == 0 {
		t.Fatalf("campaign too quiet: acked=%d snapshot reads=%d", sum.AckedOps, sum.SnapshotReads)
	}
	if sum.Reclaims == 0 {
		t.Fatal("the reclamation goroutine never swept")
	}
}

// TestMVCCStaleMutationCaught proves the campaign's SI checker catches the
// frozen-pin bug injection — the mutation mode must FAIL.
func TestMVCCStaleMutationCaught(t *testing.T) {
	opt := DefaultConcurrentOptions()
	opt.Seed = uint64(randtest.Seed(t, 12))
	opt.Points = 1
	_, err := RunMVCC(opt, true)
	if err == nil {
		t.Fatal("stale-read mutation went undetected — the harness cannot catch the bug it exists for")
	}
	if !strings.Contains(err.Error(), "SI violation") {
		t.Fatalf("mutation mode failed for the wrong reason: %v", err)
	}
	t.Logf("detected: %v", err)
}

// TestMVCCCampaignRejectsBadOptions pins the option validation.
func TestMVCCCampaignRejectsBadOptions(t *testing.T) {
	opt := DefaultConcurrentOptions()
	opt.Workers = 0
	if _, err := RunMVCC(opt, false); err == nil {
		t.Fatal("zero workers accepted")
	}
}
