package crashtest

import (
	"fmt"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
	"potgo/internal/tpcc"
)

// A Target is one crash-injection subject: it can build its initial durable
// state on a fresh heap, run a deterministic transactional workload, and —
// on a heap reopened over the crashed bytes — recover and verify its
// invariants. Targets are stateless descriptions; Build/Attach return the
// heap-bound Instance.
type Target interface {
	Name() string
	// Build creates the target's pools and initial state on a fresh heap.
	// The engine syncs all pools afterwards, so the built state is the
	// durable floor the adversary cannot take away.
	Build(h *pmem.Heap) (Instance, error)
	// Attach reopens the target's pools on a post-crash heap and runs log
	// recovery. It must not assume anything beyond what a committed
	// prefix of the workload guarantees.
	Attach(h *pmem.Heap) (Instance, error)
}

// Instance is a Target bound to one heap.
type Instance interface {
	// Run executes ops workload transactions.
	Run(ops int) error
	// Check verifies the target's invariants after recovery, knowing the
	// workload would have run at most ops transactions.
	Check(ops int) error
}

// Targets returns every built-in target: the five persistent structures,
// the allocator, and the durable TPC-C mix.
func Targets(seed uint64) []Target {
	out := []Target{}
	for _, k := range []string{"list", "bst", "rbt", "btree", "bplus"} {
		out = append(out, &pdsTarget{kind: k, seed: seed})
	}
	out = append(out, &allocTarget{seed: seed}, &tpccTarget{seed: seed})
	return out
}

// TargetByName resolves one target name ("list", "bst", "rbt", "btree",
// "bplus", "alloc", "tpcc").
func TargetByName(name string, seed uint64) (Target, error) {
	for _, t := range Targets(seed) {
		if t.Name() == name {
			return t, nil
		}
	}
	return nil, fmt.Errorf("crashtest: unknown target %q", name)
}

// mix64 is splitmix64: the deterministic op-stream generator. Stable across
// Go versions so replay tokens recorded in failure reports stay valid.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// txCtx is the pds.Ctx that routes structure mutations through the heap's
// undo transactions, with the per-transaction snapshot dedup the Ctx
// contract requires.
type txCtx struct {
	h       *pmem.Heap
	p       *pmem.Pool
	touched map[oid.OID]bool
}

func (c *txCtx) reset() { c.touched = make(map[oid.OID]bool) }

func (c *txCtx) Heap() *pmem.Heap { return c.h }

func (c *txCtx) Alloc(_ uint64, size uint32) (oid.OID, error) {
	if c.h.InTx() {
		return c.h.TxAlloc(c.p, size)
	}
	return c.h.Alloc(c.p, size)
}

func (c *txCtx) Free(o oid.OID) error {
	if c.h.InTx() {
		return c.h.TxFree(o)
	}
	return c.h.Free(o)
}

func (c *txCtx) Touch(o oid.OID, size uint32) error {
	if !c.h.InTx() {
		return nil
	}
	if c.touched[o] {
		return nil
	}
	if err := c.h.TxAddRange(o, size); err != nil {
		return err
	}
	c.touched[o] = true
	return nil
}

// --- persistent-structure targets ---

// The workload over every structure is the same: keySpace keys churned by
// seeded insert/remove ops, each op one transaction that also bumps a
// persistent op counter. Because the counter commits atomically with the
// op, the verifier can replay the op stream up to the recovered counter
// value and demand the structure match that model state exactly — not just
// "some plausible state".
const (
	pdsKeySpace = 48
	pdsSetupOps = 24
	setupSalt   = 0x5e7_0b5
	opSalt      = 0x09_0b5
)

func opFor(seed uint64, i int) (insert bool, key, val uint64) {
	r := mix64(seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15) ^ opSalt)
	key = r%pdsKeySpace + 1
	insert = (r>>16)&1 == 0
	val = r | 1
	return
}

func setupFor(seed uint64, i int) (key, val uint64) {
	r := mix64(seed ^ (uint64(i+1) * 0xbf58476d1ce4e5b9) ^ setupSalt)
	return r%pdsKeySpace + 1, r | 1
}

// pdsModel replays setup plus the first j workload ops logically.
func pdsModel(seed uint64, j int) map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for i := 0; i < pdsSetupOps; i++ {
		k, v := setupFor(seed, i)
		m[k] = v
	}
	for i := 0; i < j; i++ {
		ins, k, v := opFor(seed, i)
		if ins {
			m[k] = v
		} else {
			delete(m, k)
		}
	}
	return m
}

// structOps adapts one pds structure to the generic churn workload.
type structOps interface {
	insert(c pds.Ctx, key, val uint64) error
	update(c pds.Ctx, key, val uint64) error
	remove(c pds.Ctx, key uint64) error
	get(c pds.Ctx, key uint64) (bool, uint64, error)
	// check verifies structure-shape invariants and returns the key count.
	check(c pds.Ctx) (int, error)
	// hasValues reports whether get returns comparable values.
	hasValues() bool
}

type pdsTarget struct {
	kind string
	seed uint64
}

func (t *pdsTarget) Name() string { return t.kind }

func (t *pdsTarget) poolName() string { return "ct-" + t.kind }

func (t *pdsTarget) bind(h *pmem.Heap, p *pmem.Pool) (*pdsInstance, error) {
	root, err := h.Root(p, 16)
	if err != nil {
		return nil, err
	}
	anchor := pds.NewCell(h, root.FieldAt(0))
	var ops structOps
	switch t.kind {
	case "list":
		ops = listOps{pds.NewList(anchor)}
	case "bst":
		ops = bstOps{pds.NewBST(anchor)}
	case "rbt":
		ops = rbtOps{pds.NewRBT(anchor)}
	case "btree":
		ops = btreeOps{pds.NewBTree(anchor)}
	case "bplus":
		ops = bplusOps{pds.NewBPlus(anchor)}
	default:
		return nil, fmt.Errorf("crashtest: unknown structure kind %q", t.kind)
	}
	return &pdsInstance{
		t:       t,
		h:       h,
		p:       p,
		ops:     ops,
		counter: root.FieldAt(8),
		ctx:     &txCtx{h: h, p: p},
	}, nil
}

func (t *pdsTarget) Build(h *pmem.Heap) (Instance, error) {
	p, err := h.CreateSized(t.poolName(), 1<<20, 128*1024)
	if err != nil {
		return nil, err
	}
	in, err := t.bind(h, p)
	if err != nil {
		return nil, err
	}
	for i := 0; i < pdsSetupOps; i++ {
		k, v := setupFor(t.seed, i)
		present, _, err := in.ops.get(in.ctx, k)
		if err != nil {
			return nil, err
		}
		if !present {
			if err := in.ops.insert(in.ctx, k, v); err != nil {
				return nil, err
			}
		} else if in.ops.hasValues() {
			if err := in.ops.update(in.ctx, k, v); err != nil {
				return nil, err
			}
		}
	}
	return in, nil
}

func (t *pdsTarget) Attach(h *pmem.Heap) (Instance, error) {
	p, err := h.Open(t.poolName())
	if err != nil {
		return nil, err
	}
	if err := h.Recover(p); err != nil {
		return nil, err
	}
	return t.bind(h, p)
}

type pdsInstance struct {
	t       *pdsTarget
	h       *pmem.Heap
	p       *pmem.Pool
	ops     structOps
	counter oid.OID
	ctx     *txCtx
}

func (in *pdsInstance) setCounter(v uint64) error {
	if err := in.ctx.Touch(in.counter, 8); err != nil {
		return err
	}
	ref, err := in.h.Deref(in.counter, isa.RZ)
	if err != nil {
		return err
	}
	return ref.Store64(0, v, isa.RZ)
}

func (in *pdsInstance) readCounter() (uint64, error) {
	ref, err := in.h.Deref(in.counter, isa.RZ)
	if err != nil {
		return 0, err
	}
	w, err := ref.Load64(0)
	return w.V, err
}

func (in *pdsInstance) Run(ops int) error {
	for i := 0; i < ops; i++ {
		if err := in.doOp(i); err != nil {
			return fmt.Errorf("%s op %d: %w", in.t.kind, i, err)
		}
	}
	return nil
}

func (in *pdsInstance) doOp(i int) error {
	ins, k, v := opFor(in.t.seed, i)
	if err := in.h.TxBegin(in.p); err != nil {
		return err
	}
	in.ctx.reset()
	present, _, err := in.ops.get(in.ctx, k)
	if err != nil {
		return err
	}
	switch {
	case ins && !present:
		err = in.ops.insert(in.ctx, k, v)
	case ins && present && in.ops.hasValues():
		err = in.ops.update(in.ctx, k, v)
	case !ins && present:
		err = in.ops.remove(in.ctx, k)
	}
	if err != nil {
		return err
	}
	if err := in.setCounter(uint64(i + 1)); err != nil {
		return err
	}
	return in.h.TxEnd()
}

func (in *pdsInstance) Check(ops int) error {
	j, err := in.readCounter()
	if err != nil {
		return err
	}
	if j > uint64(ops) {
		return fmt.Errorf("%s: recovered op counter %d exceeds the %d ops run", in.t.kind, j, ops)
	}
	model := pdsModel(in.t.seed, int(j))
	n, err := in.ops.check(in.ctx)
	if err != nil {
		return fmt.Errorf("%s after %d committed ops: %w", in.t.kind, j, err)
	}
	if n != len(model) {
		return fmt.Errorf("%s after %d committed ops: %d keys, model has %d", in.t.kind, j, n, len(model))
	}
	for k := uint64(1); k <= pdsKeySpace; k++ {
		present, val, err := in.ops.get(in.ctx, k)
		if err != nil {
			return err
		}
		want, wantPresent := model[k]
		if present != wantPresent {
			return fmt.Errorf("%s after %d committed ops: key %d present=%v, model says %v",
				in.t.kind, j, k, present, wantPresent)
		}
		if present && in.ops.hasValues() && val != want {
			return fmt.Errorf("%s after %d committed ops: key %d = %#x, model says %#x",
				in.t.kind, j, k, val, want)
		}
	}
	return in.h.CheckPool(in.p)
}

// --- structure adapters ---

type listOps struct{ l *pds.List }

func (a listOps) insert(c pds.Ctx, k, _ uint64) error { return a.l.Insert(c, k) }
func (a listOps) update(c pds.Ctx, _, _ uint64) error { return nil }
func (a listOps) remove(c pds.Ctx, k uint64) error    { _, err := a.l.Remove(c, k); return err }
func (a listOps) hasValues() bool                     { return false }
func (a listOps) get(c pds.Ctx, k uint64) (bool, uint64, error) {
	o, err := a.l.Find(c, k)
	return o != oid.Null, 0, err
}
func (a listOps) check(c pds.Ctx) (int, error) {
	keys, err := a.l.Keys(c)
	if err != nil {
		return 0, err
	}
	seen := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		if seen[k] {
			return 0, fmt.Errorf("list: duplicate key %d", k)
		}
		seen[k] = true
	}
	return len(keys), nil
}

type bstOps struct{ t *pds.BST }

func (a bstOps) insert(c pds.Ctx, k, _ uint64) error { return a.t.Insert(c, k) }
func (a bstOps) update(c pds.Ctx, _, _ uint64) error { return nil }
func (a bstOps) remove(c pds.Ctx, k uint64) error    { _, err := a.t.Remove(c, k); return err }
func (a bstOps) hasValues() bool                     { return false }
func (a bstOps) get(c pds.Ctx, k uint64) (bool, uint64, error) {
	o, err := a.t.Find(c, k)
	return o != oid.Null, 0, err
}
func (a bstOps) check(c pds.Ctx) (int, error) {
	keys, err := a.t.InOrder(c)
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return 0, fmt.Errorf("bst: in-order not strictly increasing at %d (%d, %d)",
				i, keys[i-1], keys[i])
		}
	}
	return len(keys), nil
}

type rbtOps struct{ t *pds.RBT }

func (a rbtOps) insert(c pds.Ctx, k, _ uint64) error { return a.t.Insert(c, k) }
func (a rbtOps) update(c pds.Ctx, _, _ uint64) error { return nil }
func (a rbtOps) remove(c pds.Ctx, k uint64) error    { _, err := a.t.Remove(c, k); return err }
func (a rbtOps) hasValues() bool                     { return false }
func (a rbtOps) get(c pds.Ctx, k uint64) (bool, uint64, error) {
	o, err := a.t.Find(c, k)
	return o != oid.Null, 0, err
}

// check: RBT.CheckInvariants returns the black-height, not a key count, so
// the count comes from the in-order walk.
func (a rbtOps) check(c pds.Ctx) (int, error) {
	if _, err := a.t.CheckInvariants(c); err != nil {
		return 0, err
	}
	keys, err := a.t.InOrder(c)
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			return 0, fmt.Errorf("rbt: in-order not strictly increasing at %d", i)
		}
	}
	return len(keys), nil
}

type btreeOps struct{ t *pds.BTree }

func (a btreeOps) insert(c pds.Ctx, k, _ uint64) error { return a.t.Insert(c, k) }
func (a btreeOps) update(c pds.Ctx, _, _ uint64) error { return nil }
func (a btreeOps) remove(c pds.Ctx, k uint64) error    { _, err := a.t.Remove(c, k); return err }
func (a btreeOps) hasValues() bool                     { return false }
func (a btreeOps) get(c pds.Ctx, k uint64) (bool, uint64, error) {
	ok, err := a.t.Find(c, k)
	return ok, 0, err
}
func (a btreeOps) check(c pds.Ctx) (int, error) { return a.t.CheckInvariants(c) }

type bplusOps struct{ t *pds.BPlus }

func (a bplusOps) insert(c pds.Ctx, k, v uint64) error { return a.t.Insert(c, k, v) }
func (a bplusOps) update(c pds.Ctx, k, v uint64) error { _, err := a.t.Update(c, k, v); return err }
func (a bplusOps) remove(c pds.Ctx, k uint64) error    { _, err := a.t.Remove(c, k); return err }
func (a bplusOps) hasValues() bool                     { return true }
func (a bplusOps) get(c pds.Ctx, k uint64) (bool, uint64, error) {
	v, ok, err := a.t.Find(c, k)
	return ok, v, err
}
func (a bplusOps) check(c pds.Ctx) (int, error) { return a.t.CheckInvariants(c) }

// --- allocator target ---

// The allocator target churns transactional alloc/free through a persistent
// slot table in the pool root. Each occupied slot holds the ObjectID of a
// live block whose first word carries a seeded canary, so the verifier can
// prove recovered blocks are the right blocks — aliasing with a freed and
// reallocated block, a corrupt free list, or a lost free all surface either
// here or in CheckPool's structural sweep.
const (
	allocSlots = 12
	allocSalt  = 0xa110c
)

type allocTarget struct{ seed uint64 }

func (t *allocTarget) Name() string { return "alloc" }

type allocSlotModel struct {
	occupied bool
	canary   uint64
}

func allocOpFor(seed uint64, i int) (slot int, sizeSel, canary uint64) {
	r := mix64(seed ^ (uint64(i+1) * 0x94d049bb133111eb) ^ allocSalt)
	return int(r % allocSlots), (r >> 8) % 3, r | 1
}

func allocModel(seed uint64, j int) [allocSlots]allocSlotModel {
	var m [allocSlots]allocSlotModel
	for i := 0; i < j; i++ {
		slot, _, canary := allocOpFor(seed, i)
		if m[slot].occupied {
			m[slot] = allocSlotModel{}
		} else {
			m[slot] = allocSlotModel{occupied: true, canary: canary}
		}
	}
	return m
}

type allocInstance struct {
	t    *allocTarget
	h    *pmem.Heap
	p    *pmem.Pool
	root oid.OID
}

func (t *allocTarget) Build(h *pmem.Heap) (Instance, error) {
	p, err := h.CreateSized("ct-alloc", 1<<20, 128*1024)
	if err != nil {
		return nil, err
	}
	root, err := h.Root(p, 8+allocSlots*8)
	if err != nil {
		return nil, err
	}
	return &allocInstance{t: t, h: h, p: p, root: root}, nil
}

func (t *allocTarget) Attach(h *pmem.Heap) (Instance, error) {
	p, err := h.Open("ct-alloc")
	if err != nil {
		return nil, err
	}
	if err := h.Recover(p); err != nil {
		return nil, err
	}
	root, err := h.Root(p, 8+allocSlots*8)
	if err != nil {
		return nil, err
	}
	return &allocInstance{t: t, h: h, p: p, root: root}, nil
}

func (in *allocInstance) slotOID(slot int) oid.OID { return in.root.FieldAt(uint32(8 + slot*8)) }

func (in *allocInstance) read64At(o oid.OID) (uint64, error) {
	ref, err := in.h.Deref(o, isa.RZ)
	if err != nil {
		return 0, err
	}
	w, err := ref.Load64(0)
	return w.V, err
}

func (in *allocInstance) Run(ops int) error {
	for i := 0; i < ops; i++ {
		if err := in.doOp(i); err != nil {
			return fmt.Errorf("alloc op %d: %w", i, err)
		}
	}
	return nil
}

func (in *allocInstance) doOp(i int) error {
	slot, sizeSel, canary := allocOpFor(in.t.seed, i)
	h := in.h
	if err := h.TxBegin(in.p); err != nil {
		return err
	}
	cur, err := in.read64At(in.slotOID(slot))
	if err != nil {
		return err
	}
	if err := h.TxAddRange(in.root, 8+allocSlots*8); err != nil {
		return err
	}
	rootRef, err := h.Deref(in.root, isa.RZ)
	if err != nil {
		return err
	}
	if cur == 0 {
		o, err := h.TxAlloc(in.p, 16<<sizeSel)
		if err != nil {
			return err
		}
		blk, err := h.Deref(o, isa.RZ)
		if err != nil {
			return err
		}
		if err := blk.Store64(0, canary, isa.RZ); err != nil {
			return err
		}
		if err := rootRef.Store64(uint32(8+slot*8), uint64(o), isa.RZ); err != nil {
			return err
		}
	} else {
		if err := h.TxFree(oid.OID(cur)); err != nil {
			return err
		}
		if err := rootRef.Store64(uint32(8+slot*8), 0, isa.RZ); err != nil {
			return err
		}
	}
	if err := rootRef.Store64(0, uint64(i+1), isa.RZ); err != nil {
		return err
	}
	return h.TxEnd()
}

func (in *allocInstance) Check(ops int) error {
	j, err := in.read64At(in.root)
	if err != nil {
		return err
	}
	if j > uint64(ops) {
		return fmt.Errorf("alloc: recovered op counter %d exceeds the %d ops run", j, ops)
	}
	model := allocModel(in.t.seed, int(j))
	seen := make(map[uint64]bool)
	for slot := 0; slot < allocSlots; slot++ {
		cur, err := in.read64At(in.slotOID(slot))
		if err != nil {
			return err
		}
		if (cur != 0) != model[slot].occupied {
			return fmt.Errorf("alloc after %d committed ops: slot %d occupied=%v, model says %v",
				j, slot, cur != 0, model[slot].occupied)
		}
		if cur == 0 {
			continue
		}
		if seen[cur] {
			return fmt.Errorf("alloc after %d committed ops: object %#x in two slots", j, cur)
		}
		seen[cur] = true
		canary, err := in.read64At(oid.OID(cur))
		if err != nil {
			return fmt.Errorf("alloc after %d committed ops: slot %d: %w", j, slot, err)
		}
		if canary != model[slot].canary {
			return fmt.Errorf("alloc after %d committed ops: slot %d canary %#x, model says %#x",
				j, slot, canary, model[slot].canary)
		}
	}
	return in.h.CheckPool(in.p)
}

// --- TPC-C target ---

// tpccTarget runs the durable-mode transaction mix over a down-scaled
// database and verifies the spec's consistency conditions: any crash must
// leave some prefix of committed transactions.
type tpccTarget struct{ seed uint64 }

func (t *tpccTarget) Name() string { return "tpcc" }

func (t *tpccTarget) config() tpcc.Config {
	return tpcc.Config{
		Warehouses:               1,
		Districts:                2,
		CustomersPerDistrict:     20,
		Items:                    40,
		InitialOrdersPerDistrict: 8,
		UndeliveredPerDistrict:   3,
		Seed:                     int64(t.seed),
		Durable:                  true,
	}
}

type tpccInstance struct {
	h  *pmem.Heap
	db *tpcc.DB
}

func (t *tpccTarget) Build(h *pmem.Heap) (Instance, error) {
	db, err := tpcc.NewDB(h, t.config(), tpcc.PlaceAll)
	if err != nil {
		return nil, err
	}
	return &tpccInstance{h: h, db: db}, nil
}

func (t *tpccTarget) Attach(h *pmem.Heap) (Instance, error) {
	db, err := tpcc.AttachDB(h, t.config(), tpcc.PlaceAll)
	if err != nil {
		return nil, err
	}
	return &tpccInstance{h: h, db: db}, nil
}

func (in *tpccInstance) Run(ops int) error { return in.db.RunMix(ops) }

func (in *tpccInstance) Check(int) error {
	if err := in.h.CheckAll(); err != nil {
		return err
	}
	return in.db.CheckConsistency()
}
