package crashtest

import (
	"bytes"
	"fmt"
	"math/rand"

	"potgo/internal/nvmsim"
	"potgo/internal/objstore"
	"potgo/internal/obs"
	"potgo/internal/pmem"
)

// The repair campaign proves the media-fault story end to end: a seeded
// workload settles a fault-tolerant KV, single-bit faults are injected
// into the durable AND cached bytes, a scrub pass repairs them, and the
// store must come back byte-for-byte identical to its pre-fault dump —
// with the logical contents re-checked key by key under VerifyOnRead.
// Optionally each round arms a power failure in the middle of the scrub
// itself: repairs are plain persistent writes of the true bytes, so a
// torn or dropped repair must be re-repairable after recovery.
type RepairOptions struct {
	// Seed drives the workload, the fault placement and the crash points.
	Seed uint64 `json:"seed"`
	// Shards is the sharded heap's lock-shard count.
	Shards int `json:"shards"`
	// Keys is the keyspace the workload settles before faults start.
	Keys int `json:"keys"`
	// Ops is the number of workload operations (puts/deletes) beyond the
	// initial fill.
	Ops int `json:"ops"`
	// K is the number of single-bit faults injected per round.
	K int `json:"k"`
	// Mode picks the fault flavor: detect (payload bits, caught by
	// VerifyOnRead) or silent (checksum words and parity lines, found
	// only by scrubbing).
	Mode pmem.CorruptMode `json:"mode"`
	// Rounds is the number of corrupt-scrub-verify cycles.
	Rounds int `json:"rounds"`
	// CrashMidScrub arms a power failure inside each round's scrub pass
	// (round 0 stays unarmed to measure the scrub's event span). After
	// the crash the world is recovered, re-scrubbed and verified as
	// usual.
	CrashMidScrub bool `json:"crash_mid_scrub"`
	// NoParity sabotages parity maintenance for a second overwrite pass
	// before the baseline — the CI mutation check: with stale parity the
	// campaign MUST fail (unrepairable faults), so a green run under
	// NoParity means the harness proves nothing.
	NoParity bool `json:"no_parity"`
	// Policies rotate across crash points.
	Policies []nvmsim.Kind `json:"-"`
	// Obs, when non-nil, receives campaign counters under
	// "crashtest.repair.".
	Obs *obs.Registry `json:"-"`
}

// DefaultRepairOptions returns the CI smoke configuration.
func DefaultRepairOptions() RepairOptions {
	return RepairOptions{
		Seed:     1,
		Shards:   4,
		Keys:     96,
		Ops:      200,
		K:        4,
		Mode:     pmem.CorruptDetect,
		Rounds:   3,
		Policies: []nvmsim.Kind{nvmsim.DropAll, nvmsim.KeepRandom, nvmsim.Torn},
	}
}

// RepairSummary reports one repair campaign.
type RepairSummary struct {
	Rounds         int `json:"rounds"`
	Injected       int `json:"injected"`
	Repaired       int `json:"repaired"`
	ParityRepaired int `json:"parity_repaired"`
	Unrepairable   int `json:"unrepairable"`
	// Fired counts rounds whose armed mid-scrub crash actually hit;
	// Completed counts armed rounds whose scrub finished first.
	Fired     int    `json:"fired"`
	Completed int    `json:"completed"`
	ScrubSpan uint64 `json:"scrub_event_span"`
}

// scrubAllCatching runs a synchronous scrub pass, converting an armed
// power failure into a (stats-so-far, crashed=true) return.
func scrubAllCatching(sh *pmem.Sharded) (st pmem.ScrubStats, crashed bool, err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := nvmsim.AsCrashSignal(r); !ok {
			panic(r)
		}
		crashed = true
		err = nil
	}()
	st, err = sh.ScrubAll()
	return st, false, err
}

// RunRepair runs the corrupt-scrub-verify campaign.
func RunRepair(opt RepairOptions) (RepairSummary, error) {
	if opt.Shards <= 0 || opt.Keys <= 0 || opt.K <= 0 || opt.Rounds <= 0 {
		return RepairSummary{}, fmt.Errorf("crashtest: repair options need positive shards/keys/k/rounds")
	}
	if len(opt.Policies) == 0 {
		opt.Policies = []nvmsim.Kind{nvmsim.DropAll}
	}
	var bump func(name string, d uint64)
	if opt.Obs != nil {
		bump = func(name string, d uint64) { opt.Obs.Counter("crashtest.repair." + name).Add(d) }
	} else {
		bump = func(string, uint64) {}
	}
	sum := RepairSummary{Rounds: opt.Rounds}

	sh, err := pmem.NewSharded(pmem.NewStore(), opt.Shards, int64(opt.Seed))
	if err != nil {
		return sum, err
	}
	kv, err := objstore.CreateKVFT(sh, "rp")
	if err != nil {
		return sum, err
	}

	// Seeded workload: fill the keyspace, then churn it. The model map is
	// the logical ground truth every verification pass replays.
	rng := rand.New(rand.NewSource(int64(mix64(opt.Seed ^ 0xfa01d))))
	model := make(map[uint64]uint64, opt.Keys)
	for k := 1; k <= opt.Keys; k++ {
		v := rng.Uint64()
		if _, err := kv.Put(uint64(k), v); err != nil {
			return sum, fmt.Errorf("fill Put(%d): %w", k, err)
		}
		model[uint64(k)] = v
	}
	churn := func(ops int) error {
		for i := 0; i < ops; i++ {
			key := uint64(rng.Intn(opt.Keys) + 1)
			if rng.Intn(5) == 0 {
				if _, err := kv.Delete(key); err != nil {
					return fmt.Errorf("Delete(%d): %w", key, err)
				}
				delete(model, key)
				continue
			}
			v := rng.Uint64()
			if _, err := kv.Put(key, v); err != nil {
				return fmt.Errorf("Put(%d): %w", key, err)
			}
			model[key] = v
		}
		return nil
	}
	if err := churn(opt.Ops); err != nil {
		return sum, err
	}
	if opt.NoParity {
		// Mutation check: from here on commits keep checksums current but
		// let the parity column go stale, so later faults in rewritten
		// lines are detectable yet unrepairable.
		sh.MutateNoParity(true)
		if err := churn(opt.Keys * 2); err != nil {
			return sum, err
		}
	}
	if err := sh.SyncAll(); err != nil {
		return sum, err
	}
	baseline := sh.Heap().Store.DumpBytes()
	sh.SetVerifyOnRead(true)
	h := sh.Heap()

	verify := func(round int) error {
		if err := sh.SyncAll(); err != nil {
			return err
		}
		dump := h.Store.DumpBytes()
		for name, want := range baseline {
			got, ok := dump[name]
			if !ok {
				return fmt.Errorf("round %d: pool %q missing from post-repair dump", round, name)
			}
			if !bytes.Equal(got, want) {
				off := 0
				for off < len(want) && off < len(got) && got[off] == want[off] {
					off++
				}
				return fmt.Errorf("round %d: pool %q diverges from baseline at byte %d", round, name, off)
			}
		}
		for key := uint64(1); key <= uint64(opt.Keys); key++ {
			v, ok, err := kv.Get(key)
			if err != nil {
				return fmt.Errorf("round %d: Get(%d): %w", round, key, err)
			}
			want, present := model[key]
			if ok != present || (ok && v != want) {
				return fmt.Errorf("round %d: Get(%d) = %d,%v, model says %d,%v",
					round, key, v, ok, want, present)
			}
		}
		return nil
	}

	for round := 0; round < opt.Rounds; round++ {
		faults, err := sh.CorruptObjects(opt.K, opt.Mode, mix64(opt.Seed^uint64(round)^0xc0))
		if err != nil {
			return sum, fmt.Errorf("round %d: inject: %w", round, err)
		}
		sum.Injected += len(faults)

		armed := false
		if opt.CrashMidScrub && round > 0 {
			span := sum.ScrubSpan
			if span == 0 {
				span = 1
			}
			armAt := h.NV.Events() + 1 + mix64(opt.Seed^uint64(round))%span
			h.NV.Arm(armAt)
			armed = true
		}
		startE := h.NV.Events()
		st, crashed, err := scrubAllCatching(sh)
		if err != nil {
			return sum, fmt.Errorf("round %d: scrub: %w", round, err)
		}
		if round == 0 {
			sum.ScrubSpan = h.NV.Events() - startE
			if opt.CrashMidScrub && sum.ScrubSpan == 0 {
				return sum, fmt.Errorf("crashtest: baseline scrub produced no persistence events to crash into")
			}
		}
		h.NV.Disarm()
		if crashed {
			sum.Fired++
			bump("fired", 1)
			pol := nvmsim.Policy{
				Kind: opt.Policies[round%len(opt.Policies)],
				Seed: mix64(opt.Seed ^ uint64(round) ^ 0xcc),
			}
			if _, err := sh.Crash(pol); err != nil {
				return sum, fmt.Errorf("round %d: crash: %w", round, err)
			}
			// Mount-time reads (log replay, tree root priming) run before
			// the post-crash scrub has cleaned the media, so checksum
			// verification stands down across the reattach and is
			// re-armed once the scrub comes back clean — the
			// model-equality pass below still runs fully verified.
			sh.SetVerifyOnRead(false)
			kv, err = objstore.OpenKV(sh, "rp")
			if err != nil {
				return sum, fmt.Errorf("round %d: reattach: %w", round, err)
			}
			// Re-scrub from scratch: completed repairs are idempotent
			// (they rewrote the true bytes parity still vouches for),
			// torn ones are just corruption found again.
			st, err = sh.ScrubAll()
			if err != nil {
				return sum, fmt.Errorf("round %d: post-crash scrub: %w", round, err)
			}
			sh.SetVerifyOnRead(true)
			// The reattach may have cached root pointers read off corrupt
			// media; flush the volatile layer now that the bytes are true.
			if err := kv.Reprime(); err != nil {
				return sum, fmt.Errorf("round %d: reprime: %w", round, err)
			}
		} else if armed {
			sum.Completed++
			bump("completed", 1)
		}
		sum.Repaired += st.Repaired
		sum.ParityRepaired += st.ParityRepaired
		sum.Unrepairable += st.Unrepairable
		bump("repaired", uint64(st.Repaired))
		bump("parity_repaired", uint64(st.ParityRepaired))
		bump("unrepairable", uint64(st.Unrepairable))
		if st.Unrepairable > 0 {
			return sum, fmt.Errorf("round %d: %d unrepairable faults (injected %v)", round, st.Unrepairable, faults)
		}
		if err := verify(round); err != nil {
			return sum, err
		}
		bump("rounds", 1)
	}
	return sum, nil
}
