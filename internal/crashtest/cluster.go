package crashtest

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"potgo/internal/cluster"
	"potgo/internal/lincheck"
	"potgo/internal/nvmsim"
	"potgo/internal/objstore"
	"potgo/internal/obs"
)

// The cluster campaign kills a WHOLE NODE mid-replication — an armed
// nvmsim event in the victim's persistence domain fires during a local
// apply, the node recovers the signal as its own death and tears its
// server down — lets the cluster fail over, and proves the surviving
// state is linearizable with the acknowledged history. The verification
// protocol stacks three layers:
//
//  1. Cluster-wide acked <= durable: every client write acknowledged
//     before the kill (quorum-acked) must appear in the survivors' merged
//     applied logs, in an (epoch, seq) order that embeds real time —
//     lincheck.CheckCluster, which also proves the epoch discipline and
//     single-ownership properties whose violation is split brain.
//  2. Replicated-state equality: folding the merged logs in (epoch, seq)
//     order must reproduce both the routed view (every Get/Scan through a
//     fresh client) and every survivor's local replica, and each
//     survivor's own KV journal must replay to the same state with
//     counter == journaled (the cluster-wide acked <= counter <=
//     journaled statement for the nodes that lived).
//  3. Victim-local recovery: the victim's heap is power-cycled under the
//     rotating policy and reattached; each shard's recovered op counter
//     must sit inside [0, journaled] and the journal prefix it names must
//     replay exactly to the recovered contents — the single-node
//     acked-prefix protocol, applied to the corpse.
//
// The split-brain mutation disables the followers' stale-epoch fence and
// stages a false-suspicion failover in which the deposed owner keeps
// serving; the campaign then REQUIRES CheckCluster to reject the merged
// logs (run under -expect-failure in CI).
type ClusterOptions struct {
	// Seed drives workload streams, kill-point sampling and policies.
	Seed uint64 `json:"seed"`
	// Nodes is the member count (>= 3 so a quorum survives one death).
	Nodes int `json:"nodes"`
	// Shards is each member's heap lock-shard count.
	Shards int `json:"shards"`
	// Workers is the number of concurrent routing clients.
	Workers int `json:"workers"`
	// OpsPerWorker bounds each worker's operation count per point.
	OpsPerWorker int `json:"ops_per_worker"`
	// Points is the number of kill points sampled (point 0 is always the
	// unarmed baseline that also measures the victim's event span).
	Points int `json:"points"`
	// KeySpace is the key range [1, KeySpace] the workload churns.
	KeySpace int `json:"key_space"`
	// Policies rotate across kill points (the victim's power-cycle).
	Policies []nvmsim.Kind `json:"-"`
	// MutateSplitBrain seeds the stale-epoch-fence bug and stages the
	// two-primaries scenario; the campaign then fails unless the verifier
	// rejects the history.
	MutateSplitBrain bool `json:"-"`
	// Obs, when non-nil, receives campaign counters under
	// "crashtest.cluster.".
	Obs *obs.Registry `json:"-"`
}

// DefaultClusterOptions returns the CI smoke configuration.
func DefaultClusterOptions() ClusterOptions {
	return ClusterOptions{
		Seed:         1,
		Nodes:        3,
		Shards:       2,
		Workers:      3,
		OpsPerWorker: 40,
		Points:       6,
		KeySpace:     32,
		Policies:     []nvmsim.Kind{nvmsim.DropAll, nvmsim.KeepRandom, nvmsim.Torn},
	}
}

// ClusterSummary reports one cluster crash campaign.
type ClusterSummary struct {
	Points    int    `json:"points"`
	Fired     int    `json:"fired"`     // points where the armed kill actually hit
	Completed int    `json:"completed"` // points that drained before the arm point
	AckedOps  uint64 `json:"acked_ops"` // total acknowledged client writes
	Span      uint64 `json:"event_span"`
}

// probeUIDBase tags post-failover probe writes; worker uids use the low
// 48 bits only, so the spaces cannot collide.
const probeUIDBase = uint64(1) << 56

func clusterWorkerUID(worker, op int) uint64 {
	return uint64(worker+1)<<24 | uint64(op+1)
}

// runClusterWorkers drives concurrent routing clients against the cluster
// until every worker finishes or gives up on the dying segment. Errors are
// forgiven once any member is dead — the machine died under the client —
// and fatal otherwise.
func runClusterWorkers(cl *cluster.Cluster, rec *lincheck.ClusterRecorder, opt ClusterOptions) error {
	anyDead := func() bool {
		for _, m := range cl.Members {
			if m.Node.Dead() {
				return true
			}
		}
		return false
	}
	errs := make([]error, opt.Workers)
	var wg sync.WaitGroup
	for wi := 0; wi < opt.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			c, err := cluster.DialCluster(cl.Addrs())
			if err != nil {
				if !anyDead() {
					errs[wi] = fmt.Errorf("worker %d dial: %w", wi, err)
				}
				return
			}
			defer c.Close()
			fail := func(what string, err error) bool {
				if err == nil {
					return false
				}
				if !anyDead() {
					errs[wi] = fmt.Errorf("worker %d %s: %w", wi, what, err)
					return true
				}
				return false // casualty of the kill: unacked, keep going
			}
			rng := rand.New(rand.NewSource(int64(mix64(opt.Seed ^ uint64(wi+101)))))
			for i := 0; i < opt.OpsPerWorker; i++ {
				key := uint64(rng.Intn(opt.KeySpace) + 1)
				switch rng.Intn(10) {
				case 0: // delete
					p := rec.Begin(key, 0, true)
					_, err := c.Delete(key)
					if err != nil {
						if fail("delete", err) {
							return
						}
						continue
					}
					rec.Acked(p)
				case 1, 2: // read
					if _, _, err := c.Get(key); err != nil {
						if fail("get", err) {
							return
						}
					}
				default: // put, value = globally unique uid
					uid := clusterWorkerUID(wi, i)
					p := rec.Begin(key, uid, false)
					if _, err := c.Put(key, uid); err != nil {
						if fail("put", err) {
							return
						}
						continue
					}
					rec.Acked(p)
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// gatherEntries flattens every listed member's applied logs (all origins)
// into the verifier's entry stream.
func gatherEntries(members []*cluster.Member, total int) []lincheck.ClusterEntry {
	var out []lincheck.ClusterEntry
	for _, m := range members {
		for origin := 0; origin < total; origin++ {
			for _, a := range m.Node.AppliedLog(uint32(origin)) {
				out = append(out, lincheck.ClusterEntry{
					Origin:      a.Origin,
					Node:        m.Node.ID,
					Seq:         a.Seq,
					EntryEpoch:  a.Epoch,
					SenderEpoch: a.SenderEpoch,
					NodeEpoch:   a.NodeEpoch,
					Key:         a.Key,
					Val:         a.Val,
					Del:         a.Del,
				})
			}
		}
	}
	return out
}

// verifyClusterState checks layer 2: the replayed model against the routed
// view, every survivor's local replica, and every survivor's KV journal.
func verifyClusterState(cl *cluster.Cluster, survivors []*cluster.Member, model map[uint64]uint64, opt ClusterOptions) error {
	c, err := cluster.DialCluster(cl.Addrs())
	if err != nil {
		return fmt.Errorf("verify dial: %w", err)
	}
	defer c.Close()
	for key := uint64(1); key <= uint64(opt.KeySpace); key++ {
		val, ok, err := c.Get(key)
		if err != nil {
			return fmt.Errorf("routed get %d: %w", key, err)
		}
		want, wantOK := model[key]
		if ok != wantOK || (ok && val != want) {
			return fmt.Errorf("key %d: routed view (%d,%v), merged logs replay to (%d,%v)",
				key, val, ok, want, wantOK)
		}
	}
	scan, err := c.Scan(0, opt.KeySpace+64)
	if err != nil {
		return fmt.Errorf("routed scan: %w", err)
	}
	if len(scan) != len(model) {
		return fmt.Errorf("routed scan returned %d pairs, merged logs hold %d", len(scan), len(model))
	}
	keys := make([]uint64, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for i, k := range keys {
		if scan[i].Key != k || scan[i].Val != model[k] {
			return fmt.Errorf("routed scan[%d] = (%d,%d), want (%d,%d)", i, scan[i].Key, scan[i].Val, k, model[k])
		}
	}

	// Full replication: after catch-up every survivor's local replica and
	// its durable journal agree with the merged-log model.
	for _, m := range survivors {
		for key := uint64(1); key <= uint64(opt.KeySpace); key++ {
			val, ok, err := m.Node.KV.Get(key)
			if err != nil {
				return fmt.Errorf("node %d local get %d: %w", m.Node.ID, key, err)
			}
			want, wantOK := model[key]
			if ok != wantOK || (ok && val != want) {
				return fmt.Errorf("node %d key %d: local replica (%d,%v), merged logs replay to (%d,%v)",
					m.Node.ID, key, val, ok, want, wantOK)
			}
		}
		replayed := make(map[uint64]uint64)
		for i := 0; i < opt.Shards; i++ {
			journal := m.Node.KV.Journal(i)
			cnt, err := m.Node.KV.Counter(i)
			if err != nil {
				return fmt.Errorf("node %d shard %d counter: %w", m.Node.ID, i, err)
			}
			if cnt != uint64(len(journal)) {
				return fmt.Errorf("node %d shard %d: quiesced counter %d != journaled %d",
					m.Node.ID, i, cnt, len(journal))
			}
			for k, v := range objstore.ReplayKVJournal(journal, int(cnt)) {
				replayed[k] = v
			}
		}
		if len(replayed) != len(model) {
			return fmt.Errorf("node %d: journal replays to %d keys, merged logs to %d",
				m.Node.ID, len(replayed), len(model))
		}
		for k, v := range model {
			if replayed[k] != v {
				return fmt.Errorf("node %d key %d: journal replays to %d, merged logs to %d",
					m.Node.ID, k, replayed[k], v)
			}
		}
	}
	return nil
}

// verifyVictimLocal checks layer 3: power-cycle the victim's heap under
// pol, reattach, and require each shard's recovered counter to name a
// journal prefix that replays exactly to the recovered contents.
func verifyVictimLocal(victim *cluster.Member, victimIdx int, pol nvmsim.Policy, opt ClusterOptions) error {
	if _, err := victim.Sh.Crash(pol); err != nil {
		return fmt.Errorf("victim crash: %w", err)
	}
	kv2, err := objstore.OpenKV(victim.Sh, fmt.Sprintf("node%d", victimIdx))
	if err != nil {
		return fmt.Errorf("victim reattach: %w", err)
	}
	total, err := kv2.Check()
	if err != nil {
		return fmt.Errorf("victim structure invariants: %w", err)
	}
	model := make(map[uint64]uint64)
	for i := 0; i < opt.Shards; i++ {
		journal := victim.Node.KV.Journal(i)
		cnt, err := kv2.Counter(i)
		if err != nil {
			return fmt.Errorf("victim shard %d counter: %w", i, err)
		}
		if cnt > uint64(len(journal)) {
			return fmt.Errorf("victim shard %d: recovered counter %d beyond journaled %d",
				i, cnt, len(journal))
		}
		for k, v := range objstore.ReplayKVJournal(journal, int(cnt)) {
			model[k] = v
		}
	}
	if total != len(model) {
		return fmt.Errorf("victim: %d keys recovered, committed prefixes replay to %d", total, len(model))
	}
	for key := uint64(1); key <= uint64(opt.KeySpace); key++ {
		val, ok, err := kv2.Get(key)
		if err != nil {
			return fmt.Errorf("victim get %d after recovery: %w", key, err)
		}
		want, wantOK := model[key]
		if ok != wantOK || (ok && val != want) {
			return fmt.Errorf("victim key %d: recovered (%d,%v), committed prefix says (%d,%v)",
				key, val, ok, want, wantOK)
		}
	}
	return nil
}

// RunCluster runs the cluster crash campaign: a fresh N-node cluster per
// point, an armed whole-node kill mid-replication (point 0 stays unarmed
// to measure the victim's event span), failover, and the three-layer
// verification protocol. With MutateSplitBrain set it instead stages the
// two-primaries scenario and fails unless the verifier rejects it.
func RunCluster(opt ClusterOptions) (ClusterSummary, error) {
	if opt.Nodes < 3 {
		return ClusterSummary{}, fmt.Errorf("crashtest: cluster campaign needs >= 3 nodes, got %d", opt.Nodes)
	}
	if opt.Workers <= 0 || opt.Shards <= 0 || opt.OpsPerWorker <= 0 || opt.Points <= 0 {
		return ClusterSummary{}, fmt.Errorf("crashtest: cluster options need positive workers/shards/ops/points")
	}
	if opt.KeySpace <= 0 {
		opt.KeySpace = 32
	}
	if len(opt.Policies) == 0 {
		opt.Policies = []nvmsim.Kind{nvmsim.DropAll}
	}
	if opt.MutateSplitBrain {
		return runClusterSplitBrain(opt)
	}
	sum := ClusterSummary{Points: opt.Points}

	var bump func(name string, d uint64)
	if opt.Obs != nil {
		bump = func(name string, d uint64) { opt.Obs.Counter("crashtest.cluster." + name).Add(d) }
	} else {
		bump = func(string, uint64) {}
	}

	var span uint64
	for point := 0; point < opt.Points; point++ {
		victimIdx := point % opt.Nodes
		cl, err := cluster.NewLocal(opt.Nodes, opt.Shards, int64(mix64(opt.Seed^uint64(point)^0xc1)), nil)
		if err != nil {
			return sum, err
		}
		victim := cl.Members[victimIdx]
		h := victim.Sh.Heap()

		polKind := opt.Policies[point%len(opt.Policies)]
		pol := nvmsim.Policy{Kind: polKind, Seed: mix64(opt.Seed ^ uint64(point) ^ 0xcc)}

		startE := h.NV.Events()
		armAt := uint64(0)
		if point > 0 {
			armAt = startE + 1 + mix64(opt.Seed^uint64(point))%span
			h.NV.Arm(armAt)
		}

		rec := lincheck.NewClusterRecorder()
		if err := runClusterWorkers(cl, rec, opt); err != nil {
			cl.Close()
			return sum, fmt.Errorf("point %d: %w", point, err)
		}
		if point == 0 {
			span = h.NV.Events() - startE
			sum.Span = span
			if span == 0 {
				cl.Close()
				return sum, fmt.Errorf("crashtest: baseline run produced no events on the victim")
			}
		}
		h.NV.Disarm() // an unreached arm point must not fire during verification

		fired := victim.Node.Dead()
		survivors := make([]*cluster.Member, 0, opt.Nodes)
		for i, m := range cl.Members {
			if i != victimIdx {
				survivors = append(survivors, m)
			}
		}
		if fired {
			sum.Fired++
			bump("fired", 1)
			// The kill hit mid-replication: fail over, then prove the moved
			// segment accepts writes at the new epoch (the probes join the
			// acknowledged history the verifier audits).
			if err := cl.Failover(victim.Node.ID); err != nil {
				cl.Close()
				return sum, fmt.Errorf("point %d: failover: %w", point, err)
			}
			pc, err := cluster.DialCluster(cl.Addrs())
			if err != nil {
				cl.Close()
				return sum, fmt.Errorf("point %d: probe dial: %w", point, err)
			}
			probes := 0
			for key := uint64(1); key <= uint64(opt.KeySpace) && probes < 4; key++ {
				uid := probeUIDBase | key
				p := rec.Begin(key, uid, false)
				if _, err := pc.Put(key, uid); err != nil {
					pc.Close()
					cl.Close()
					return sum, fmt.Errorf("point %d: probe put %d after failover: %w", point, key, err)
				}
				rec.Acked(p)
				probes++
			}
			pc.Close()
		} else {
			sum.Completed++
			bump("completed", 1)
			// Nothing died: quiesce replication so the full-replication
			// equality checks below are meaningful, and audit all members.
			if err := cl.Sync(); err != nil {
				cl.Close()
				return sum, fmt.Errorf("point %d: sync: %w", point, err)
			}
			survivors = append(survivors, victim)
		}
		writes := rec.Writes()
		sum.AckedOps += uint64(len(writes))

		// Layer 1: acked-prefix linearizability over the merged logs.
		entries := gatherEntries(survivors, opt.Nodes)
		if err := lincheck.CheckCluster(writes, entries); err != nil {
			cl.Close()
			return sum, fmt.Errorf("point %d (arm=%d, policy=%s, fired=%v): %w",
				point, armAt, polKind, fired, err)
		}
		// Layer 2: replayed model == routed view == every survivor replica.
		model := lincheck.ReplayCluster(entries)
		if err := verifyClusterState(cl, survivors, model, opt); err != nil {
			cl.Close()
			return sum, fmt.Errorf("point %d (arm=%d, policy=%s, fired=%v): %w",
				point, armAt, polKind, fired, err)
		}
		// Layer 3: the victim's corpse recovers to a committed prefix.
		if fired {
			if err := verifyVictimLocal(victim, victimIdx, pol, opt); err != nil {
				cl.Close()
				return sum, fmt.Errorf("point %d (arm=%d, policy=%s): %w", point, armAt, polKind, err)
			}
		}
		cl.Close()
		bump("points", 1)
	}
	return sum, nil
}

// runClusterSplitBrain stages the two-primaries scenario over the seeded
// fence bug: a false-suspicion failover deposes a healthy owner but the
// new topology is withheld from it, so the old owner keeps coordinating
// writes for its segment at the old epoch while the new owner serves the
// same keys at the new epoch. With the stale-epoch fence disabled both
// sets of writes reach quorum; the merged logs must then FAIL the
// verifier (sender-behind-node applies, dual ownership). The campaign
// returns the verifier's rejection as its own error, for -expect-failure
// gates; a nil return means the bug slipped through.
func runClusterSplitBrain(opt ClusterOptions) (ClusterSummary, error) {
	sum := ClusterSummary{Points: 1}
	cl, err := cluster.NewLocal(opt.Nodes, opt.Shards, int64(mix64(opt.Seed^0xb5)), nil)
	if err != nil {
		return sum, err
	}
	defer cl.Close()

	rec := lincheck.NewClusterRecorder()
	old, err := cluster.DialCluster(cl.Addrs())
	if err != nil {
		return sum, err
	}
	defer old.Close()
	for key := uint64(1); key <= uint64(opt.KeySpace); key++ {
		uid := clusterWorkerUID(0, int(key))
		p := rec.Begin(key, uid, false)
		if _, err := old.Put(key, uid); err != nil {
			return sum, fmt.Errorf("preload put %d: %w", key, err)
		}
		rec.Acked(p)
	}
	sum.AckedOps = uint64(opt.KeySpace)

	// Depose the owner of key 1 without telling it: it keeps serving its
	// old segment at the old epoch — the partitioned primary.
	deposed, ok := cl.Topology().Owner(1)
	if !ok {
		return sum, fmt.Errorf("split-brain: empty topology")
	}
	oldEpoch := cl.Topology().Epoch()
	cl.MutateSplitBrain()
	if err := cl.FailoverExcept(deposed, deposed); err != nil {
		return sum, fmt.Errorf("split-brain failover: %w", err)
	}

	// The stale client still routes key 1 to the deposed owner, which
	// accepts and replicates at the old epoch; the fenceless followers let
	// it through to quorum, so the client gets a real ack.
	if old.Topology().Epoch() != oldEpoch {
		return sum, fmt.Errorf("split-brain: stale client refreshed unexpectedly")
	}
	pa := rec.Begin(1, probeUIDBase|1, false)
	if _, err := old.Put(1, probeUIDBase|1); err != nil {
		return sum, fmt.Errorf("split-brain: deposed-owner put: %w", err)
	}
	rec.Acked(pa)

	// A fresh client sees the new topology and writes the same key through
	// the new owner — two primaries have now both acknowledged writes for
	// one key. Seed it away from the deposed member, which would hand out
	// its stale topology.
	var freshSeeds []string
	for _, m := range cl.Members {
		if m.Node.ID != deposed {
			freshSeeds = append(freshSeeds, m.Addr)
		}
	}
	fresh, err := cluster.DialCluster(freshSeeds)
	if err != nil {
		return sum, err
	}
	defer fresh.Close()
	pb := rec.Begin(1, probeUIDBase|2, false)
	if _, err := fresh.Put(1, probeUIDBase|2); err != nil {
		return sum, fmt.Errorf("split-brain: new-owner put: %w", err)
	}
	rec.Acked(pb)

	entries := gatherEntries(cl.Members, opt.Nodes)
	if err := lincheck.CheckCluster(rec.Writes(), entries); err != nil {
		return sum, fmt.Errorf("cluster verifier rejected the split-brain history (as it must): %w", err)
	}
	return sum, nil
}
