package crashtest

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"potgo/internal/nvmsim"
	"potgo/internal/objstore"
	"potgo/internal/obs"
	"potgo/internal/pmem"
)

// The concurrent campaign crashes a multi-worker workload mid-flight and
// proves recovery lands on a state consistent with the acknowledged
// operations. The verification protocol leans on three facts the objstore
// layer guarantees:
//
//  1. Each structure's volatile journal is appended inside the
//     transaction, under the structure's latch, so journal order is commit
//     order and at most ONE entry per structure (the last) can belong to a
//     transaction that never committed.
//  2. Each structure's persistent op counter commits atomically with the
//     operation, so its recovered value c says exactly which journal
//     prefix became durable: replay(journal[:c]) must equal the recovered
//     contents.
//  3. The domain poisons itself at the crash point, so no operation
//     anywhere commits after the crash — an acknowledged operation was
//     acknowledged before the crash and must therefore be inside the
//     durable prefix: acked <= c <= len(journal).
//
// Transfers commit both halves in one multi-pool transaction, so a
// transfer id must appear in both durable prefixes or in neither.
type ConcurrentOptions struct {
	// Seed drives the workload streams, the crash-point sampling and the
	// seeded policies.
	Seed uint64 `json:"seed"`
	// Workers is the number of concurrent client goroutines.
	Workers int `json:"workers"`
	// Shards is the sharded heap's lock-shard count.
	Shards int `json:"shards"`
	// OpsPerWorker bounds each worker's operation count per run.
	OpsPerWorker int `json:"ops_per_worker"`
	// Points is the number of crash points sampled (run 0 is always the
	// unarmed baseline that also measures the event span).
	Points int `json:"points"`
	// KeySpace is the key range [1, KeySpace] the workload churns.
	KeySpace int `json:"key_space"`
	// Policies rotate across crash points.
	Policies []nvmsim.Kind `json:"-"`
	// Obs, when non-nil, receives campaign counters under
	// "crashtest.concurrent.".
	Obs *obs.Registry `json:"-"`
}

// DefaultConcurrentOptions returns the CI smoke configuration.
func DefaultConcurrentOptions() ConcurrentOptions {
	return ConcurrentOptions{
		Seed:         1,
		Workers:      4,
		Shards:       4,
		OpsPerWorker: 60,
		Points:       12,
		KeySpace:     24,
		Policies:     []nvmsim.Kind{nvmsim.DropAll, nvmsim.KeepRandom, nvmsim.Torn},
	}
}

// ConcurrentSummary reports one concurrent campaign.
type ConcurrentSummary struct {
	Points    int    `json:"points"`
	Fired     int    `json:"fired"`     // runs where the armed crash actually hit
	Completed int    `json:"completed"` // runs that drained before the arm point
	AckedOps  uint64 `json:"acked_ops"` // total acknowledged effective ops
	Span      uint64 `json:"event_span"`
}

// ccWorld is one fresh world: sharded heap + Multi store over a new store.
type ccWorld struct {
	sh *pmem.Sharded
	m  *objstore.Multi
}

func buildConcurrentWorld(opt ConcurrentOptions) (*ccWorld, error) {
	sh, err := pmem.NewSharded(pmem.NewStore(), opt.Shards, int64(opt.Seed))
	if err != nil {
		return nil, err
	}
	m, err := objstore.CreateMulti(sh, "cc")
	if err != nil {
		return nil, err
	}
	return &ccWorld{sh: sh, m: m}, nil
}

// runWorkers drives the workload until every worker finishes or the domain
// crashes. It returns the number of primary crash signals seen (0 or 1)
// and the per-structure acknowledged-op counts.
func runWorkers(w *ccWorld, opt ConcurrentOptions) (fired int, acked []uint64, err error) {
	nk := len(objstore.Kinds)
	ackedA := make([]uint64, nk)
	var primary uint64
	errs := make([]error, opt.Workers)

	var wg sync.WaitGroup
	for wi := 0; wi < opt.Workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				cs, ok := nvmsim.AsCrashSignal(r)
				if !ok {
					panic(r)
				}
				if !cs.Poisoned {
					atomic.AddUint64(&primary, 1)
				}
			}()
			// A worker that hits an error after the crash fired is a
			// casualty, not a failure: the machine died under it (for
			// instance, Begin refuses a pool whose mid-commit transaction
			// will only be cleared by the power cycle).
			fail := func(what string, err error) bool {
				if err == nil {
					return false
				}
				if !w.sh.Heap().NV.Poisoned() {
					errs[wi] = fmt.Errorf("worker %d %s: %w", wi, what, err)
				}
				return true
			}
			rng := rand.New(rand.NewSource(int64(mix64(opt.Seed ^ uint64(wi+1)))))
			for i := 0; i < opt.OpsPerWorker; i++ {
				kind := rng.Intn(nk)
				key := uint64(rng.Intn(opt.KeySpace) + 1)
				switch rng.Intn(5) {
				case 0, 1, 2:
					did, err := w.m.Add(kind, key)
					if fail("Add", err) {
						return
					}
					if did {
						atomic.AddUint64(&ackedA[kind], 1)
					}
				case 3:
					did, err := w.m.Remove(kind, key)
					if fail("Remove", err) {
						return
					}
					if did {
						atomic.AddUint64(&ackedA[kind], 1)
					}
				case 4:
					to := rng.Intn(nk)
					if to == kind {
						to = (to + 1) % nk
					}
					did, err := w.m.Transfer(kind, to, key)
					if fail("Transfer", err) {
						return
					}
					if did {
						atomic.AddUint64(&ackedA[kind], 1)
						atomic.AddUint64(&ackedA[to], 1)
					}
				}
			}
		}(wi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, nil, e
		}
	}
	return int(primary), ackedA, nil
}

// verifyConcurrent power-cycles the world under pol, reattaches, and runs
// the full acked-prefix consistency protocol.
func verifyConcurrent(w *ccWorld, acked []uint64, pol nvmsim.Policy, opt ConcurrentOptions) error {
	if _, err := w.sh.Crash(pol); err != nil {
		return fmt.Errorf("crash: %w", err)
	}
	m2, err := objstore.OpenMulti(w.sh, "cc")
	if err != nil {
		return fmt.Errorf("reattach: %w", err)
	}
	counts, err := m2.Check()
	if err != nil {
		return fmt.Errorf("structure invariants: %w", err)
	}
	if err := m2.CheckHeap(); err != nil {
		return fmt.Errorf("heap sweep: %w", err)
	}

	outIDs := make(map[uint64]bool)
	inIDs := make(map[uint64]bool)
	for kind := range objstore.Kinds {
		journal := w.m.Journal(kind)
		c, err := m2.Counter(kind)
		if err != nil {
			return err
		}
		if c < acked[kind] || c > uint64(len(journal)) {
			return fmt.Errorf("%s: recovered counter %d outside [acked=%d, journaled=%d]",
				objstore.Kinds[kind], c, acked[kind], len(journal))
		}
		model := objstore.ReplayJournal(journal, int(c))
		if counts[kind] != len(model) {
			return fmt.Errorf("%s: %d keys recovered, committed prefix replays to %d",
				objstore.Kinds[kind], counts[kind], len(model))
		}
		for key := uint64(1); key <= uint64(opt.KeySpace); key++ {
			has, err := m2.Has(kind, key)
			if err != nil {
				return err
			}
			if has != model[key] {
				return fmt.Errorf("%s key %d: present=%v after recovery, committed prefix says %v",
					objstore.Kinds[kind], key, has, model[key])
			}
		}
		for _, e := range journal[:c] {
			switch e.Op {
			case objstore.OpXferOut:
				outIDs[e.XferID] = true
			case objstore.OpXferIn:
				inIDs[e.XferID] = true
			}
		}
	}
	// Transfer atomicity: a transfer's two halves commit together or not
	// at all, so the durable out- and in-sets are the same set of ids.
	for id := range outIDs {
		if !inIDs[id] {
			return fmt.Errorf("transfer %d: source half durable, destination half lost", id)
		}
	}
	for id := range inIDs {
		if !outIDs[id] {
			return fmt.Errorf("transfer %d: destination half durable, source half lost", id)
		}
	}
	return nil
}

// RunConcurrent runs the concurrent crash campaign: a fresh world per
// point, an armed crash mid-workload (run 0 stays unarmed to measure the
// event span and prove the quiescent store survives any policy), and the
// full verification protocol after every power cycle.
func RunConcurrent(opt ConcurrentOptions) (ConcurrentSummary, error) {
	if opt.Workers <= 0 || opt.Shards <= 0 || opt.OpsPerWorker <= 0 || opt.Points <= 0 {
		return ConcurrentSummary{}, fmt.Errorf("crashtest: concurrent options need positive workers/shards/ops/points")
	}
	if opt.KeySpace <= 0 {
		opt.KeySpace = 24
	}
	if len(opt.Policies) == 0 {
		opt.Policies = []nvmsim.Kind{nvmsim.DropAll}
	}
	sum := ConcurrentSummary{Points: opt.Points}

	var bump func(name string, d uint64)
	if opt.Obs != nil {
		bump = func(name string, d uint64) { opt.Obs.Counter("crashtest.concurrent." + name).Add(d) }
	} else {
		bump = func(string, uint64) {}
	}

	var startE, endE uint64
	for point := 0; point < opt.Points; point++ {
		w, err := buildConcurrentWorld(opt)
		if err != nil {
			return sum, err
		}
		h := w.sh.Heap()

		polKind := opt.Policies[point%len(opt.Policies)]
		polSeed := mix64(opt.Seed ^ uint64(point) ^ 0xcc)
		pol := nvmsim.Policy{Kind: polKind, Seed: polSeed}

		armAt := uint64(0)
		if point == 0 {
			startE = h.NV.Events()
		} else {
			span := endE - startE
			if span == 0 {
				span = 1
			}
			armAt = startE + 1 + mix64(opt.Seed^uint64(point))%span
			h.NV.Arm(armAt)
		}

		fired, acked, err := runWorkers(w, opt)
		if err != nil {
			return sum, fmt.Errorf("point %d: %w", point, err)
		}
		if point == 0 {
			endE = h.NV.Events()
			sum.Span = endE - startE
			if sum.Span == 0 {
				return sum, fmt.Errorf("crashtest: baseline run produced no persistence events")
			}
		}
		h.NV.Disarm() // an unreached arm point must not fire during verification
		if fired > 1 {
			return sum, fmt.Errorf("point %d: %d primary crash signals, want at most 1", point, fired)
		}
		if fired == 1 {
			sum.Fired++
			bump("fired", 1)
		} else {
			sum.Completed++
			bump("completed", 1)
		}
		for _, a := range acked {
			sum.AckedOps += a
		}

		if err := verifyConcurrent(w, acked, pol, opt); err != nil {
			return sum, fmt.Errorf("point %d (arm=%d, policy=%s, fired=%v): %w",
				point, armAt, polKind, fired == 1, err)
		}
		bump("points", 1)
	}
	return sum, nil
}
