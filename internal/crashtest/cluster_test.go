package crashtest

import (
	"strings"
	"testing"
)

// TestRunClusterSmoke: the CI-shaped campaign must fire whole-node kills,
// fail over, and pass all three verification layers at every point.
func TestRunClusterSmoke(t *testing.T) {
	opt := DefaultClusterOptions()
	sum, err := RunCluster(opt)
	if err != nil {
		t.Fatalf("cluster campaign failed: %v\nsummary: %+v", err, sum)
	}
	if sum.Fired+sum.Completed != opt.Points {
		t.Fatalf("points %d != fired %d + completed %d", opt.Points, sum.Fired, sum.Completed)
	}
	if sum.Fired < 3 {
		t.Fatalf("only %d armed kill points fired, want >= 3 (span %d): %+v", sum.Fired, sum.Span, sum)
	}
	if sum.AckedOps == 0 {
		t.Fatal("campaign acknowledged no writes")
	}
	if sum.Span == 0 {
		t.Fatal("baseline measured no event span")
	}
}

// TestRunClusterSplitBrainMutationCaught: with the stale-epoch fence
// disabled and two primaries acknowledging writes for one key, the
// verifier must reject the merged history.
func TestRunClusterSplitBrainMutationCaught(t *testing.T) {
	opt := DefaultClusterOptions()
	opt.MutateSplitBrain = true
	_, err := RunCluster(opt)
	if err == nil {
		t.Fatal("split-brain history slipped past the cluster verifier")
	}
	if !strings.Contains(err.Error(), "split brain") {
		t.Fatalf("verifier rejected for the wrong reason: %v", err)
	}
}

// TestRunClusterOptionValidation: the campaign needs a quorum-surviving
// member count.
func TestRunClusterOptionValidation(t *testing.T) {
	opt := DefaultClusterOptions()
	opt.Nodes = 2
	if _, err := RunCluster(opt); err == nil {
		t.Fatal("2-node campaign accepted; quorum cannot survive a death")
	}
}
