package crashtest

import (
	"strings"
	"testing"

	"potgo/internal/nvmsim"
)

func smokeOptions() Options {
	opt := DefaultOptions()
	opt.Ops = 10
	opt.MaxPoints = 16
	return opt
}

// TestAllTargetsSurviveSmoke is the engine's core claim: every built-in
// target — five persistent structures, the allocator, the durable TPC-C
// mix — survives crash injection at sampled persistence events under the
// drop-all and torn-line adversaries.
func TestAllTargetsSurviveSmoke(t *testing.T) {
	for _, tg := range Targets(3) {
		tg := tg
		t.Run(tg.Name(), func(t *testing.T) {
			opt := smokeOptions()
			opt.Seed = 3
			if tg.Name() == "tpcc" {
				opt.Ops = 8
				opt.MaxPoints = 8
			}
			sum, err := RunTarget(tg, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(sum.Failures) != 0 {
				f := sum.Failures[0]
				t.Fatalf("failure at %s: %s (min lost %v)", f.ReplayToken(), f.Err, f.MinLost)
			}
			if sum.Cases == 0 {
				t.Fatal("no cases ran")
			}
			if sum.Span == 0 {
				t.Fatal("no event span")
			}
		})
	}
}

// TestKeepRandomPolicySweep runs one tree under the keep-random adversary,
// which exercises survivor subsets the other two policies don't.
func TestKeepRandomPolicySweep(t *testing.T) {
	tg, err := TargetByName("bplus", 5)
	if err != nil {
		t.Fatal(err)
	}
	opt := smokeOptions()
	opt.Seed = 5
	opt.Policies = []nvmsim.Kind{nvmsim.KeepRandom}
	sum, err := RunTarget(tg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) != 0 {
		t.Fatalf("failure at %s: %s", sum.Failures[0].ReplayToken(), sum.Failures[0].Err)
	}
}

// TestMutationIsCaught proves the engine has teeth: weakening the
// durability plumbing (dropping every cache-line write-back, the moral
// equivalent of deleting the Persist calls from a structure) must produce a
// failure with a working deterministic replay token and a minimized
// counterexample, within the smoke budget.
func TestMutationIsCaught(t *testing.T) {
	tg, err := TargetByName("rbt", 9)
	if err != nil {
		t.Fatal(err)
	}
	opt := smokeOptions()
	opt.Seed = 9
	opt.Ops = 12
	opt.MaxPoints = 32
	opt.Mutate = MutationSpec{DropCLWBEveryN: 1}
	sum, err := RunTarget(tg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) == 0 {
		t.Fatalf("dropped all CLWBs and the campaign still passed (%d cases over %d events)",
			sum.Cases, sum.Span)
	}
	f := sum.Failures[0]

	// The replay token parses and reproduces the identical failure.
	name, event, keep, err := ParseReplayToken(f.ReplayToken())
	if err != nil {
		t.Fatal(err)
	}
	if name != "rbt" || event != f.Event {
		t.Fatalf("token %q round-tripped to (%s, %d)", f.ReplayToken(), name, event)
	}
	rerr := Replay(tg, opt, event, keep)
	if rerr == nil {
		t.Fatalf("replay of %s passed", f.ReplayToken())
	}
	if rerr.Error() != f.Err {
		t.Fatalf("replay error %q differs from recorded %q", rerr, f.Err)
	}

	// Without the mutation, the same case passes: the failure was the
	// injected bug, not the engine.
	clean := opt
	clean.Mutate = MutationSpec{}
	if err := Replay(tg, clean, event, keep); err != nil {
		// The survivor set was recorded under mutated event numbering, so
		// an unmutated replay may crash elsewhere — only a clean campaign
		// is meaningful evidence here.
		sum2, err2 := RunTarget(tg, clean)
		if err2 != nil {
			t.Fatal(err2)
		}
		if len(sum2.Failures) != 0 {
			t.Fatalf("unmutated campaign fails too: %s", sum2.Failures[0].Err)
		}
	}
}

// TestMinimizationShrinks checks that a minimized counterexample is
// reported and is no larger than the full dropped set.
func TestMinimizationShrinks(t *testing.T) {
	tg, err := TargetByName("list", 13)
	if err != nil {
		t.Fatal(err)
	}
	opt := smokeOptions()
	opt.Seed = 13
	opt.MaxPoints = 24
	opt.Mutate = MutationSpec{DropCLWBEveryN: 1}
	sum, err := RunTarget(tg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Failures) == 0 {
		t.Skip("no failure found at these points; mutation sweep covered elsewhere")
	}
	f := sum.Failures[0]
	if f.Dropped <= minimizeLimit {
		if len(f.MinLost) == 0 {
			t.Fatalf("failure lost %d lines but minimization found none essential", f.Dropped)
		}
		for _, ln := range f.MinLost {
			if !strings.Contains(ln, ":") || !strings.Contains(ln, "/") {
				t.Fatalf("malformed minimized line %q", ln)
			}
		}
	}
}

// TestReplayTokenParse covers the token grammar's edges.
func TestReplayTokenParse(t *testing.T) {
	f := Failure{Target: "bst", Event: 412, Kept: "none"}
	name, ev, keep, err := ParseReplayToken(f.ReplayToken())
	if err != nil || name != "bst" || ev != 412 || len(keep) != 0 {
		t.Fatalf("round trip: %v %v %v %v", name, ev, keep, err)
	}
	f.Kept = "1:0x40/ff,1:0x80/0f"
	_, _, keep, err = ParseReplayToken(f.ReplayToken())
	if err != nil || len(keep) != 2 {
		t.Fatalf("kept round trip: %v %v", keep, err)
	}
	for _, bad := range []string{"", "bst", "bst@x#none", "@4#none"} {
		if _, _, _, err := ParseReplayToken(bad); err == nil {
			t.Errorf("token %q parsed", bad)
		}
	}
}

// TestDeterminism: the same options give byte-identical summaries.
func TestDeterminism(t *testing.T) {
	tg, err := TargetByName("btree", 21)
	if err != nil {
		t.Fatal(err)
	}
	opt := smokeOptions()
	opt.Seed = 21
	opt.MaxPoints = 8
	a, err := RunTarget(tg, opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTarget(tg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Span != b.Span || a.Cases != b.Cases || a.Points != b.Points {
		t.Fatalf("non-deterministic campaign: %+v vs %+v", a, b)
	}
}
