package harness

import (
	"strconv"
	"strings"
	"testing"

	"potgo/internal/polb"
	"potgo/internal/workloads"
)

func itoa(n int) string { return strconv.Itoa(n) }

func TestAblationAssocQuick(t *testing.T) {
	s := NewSuite(Options{Seed: 4, Ops: 120, SkipTPCC: true})
	rep, err := s.AblationAssoc()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "ablation-assoc" || !strings.Contains(rep.Text, "CAM") {
		t.Error("report shape")
	}
	// Every geometry must report a sane miss rate. Note that lower
	// associativity is NOT always worse under LRU: LL's cyclic
	// traversals thrash a fully-associative LRU CAM (working set just
	// above capacity evicts every entry before reuse) while a
	// direct-mapped array retains a stable subset — the classic LRU
	// anomaly, and itself a finding of this ablation.
	for _, bench := range MicroBenches {
		for _, sets := range []int{1, 8, 32} {
			m, ok := rep.Values[bench+"_sets"+itoa(sets)+"_miss"]
			if !ok || m < 0 || m > 1 {
				t.Errorf("%s sets=%d: miss rate %v, ok=%t", bench, sets, m, ok)
			}
		}
	}
}

func TestAblationWalkQuick(t *testing.T) {
	s := NewSuite(Options{Seed: 4, Ops: 120, SkipTPCC: true})
	rep, err := s.AblationWalk()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "ablation-walk" {
		t.Error("report id")
	}
	// The paper calls its fixed 30-cycle walk pessimistic because POT
	// entries cache well: the probe-accurate model must not be slower on
	// a high-miss workload.
	if rep.Values["LL_probe"] < rep.Values["LL_fixed"]*0.95 {
		t.Errorf("probe-accurate walk (%.2f) should not be much worse than fixed (%.2f)",
			rep.Values["LL_probe"], rep.Values["LL_fixed"])
	}
}

func TestProbeWalkRunWorks(t *testing.T) {
	r, err := Run(RunSpec{Bench: "LL", Pattern: workloads.Each, Tx: true, Core: InOrder,
		Ops: 60, Seed: 5, Opt: true, Design: polb.Pipelined, ProbeWalk: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.Translation.POTWalks == 0 {
		t.Error("EACH must walk the POT")
	}
}

func TestSetAssocRunWorks(t *testing.T) {
	r, err := Run(RunSpec{Bench: "BST", Pattern: workloads.Random, Tx: true, Core: InOrder,
		Ops: 100, Seed: 5, Opt: true, Design: polb.Pipelined, POLBSets: 32, POLBSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Direct-mapped 32 entries on 32 uniformly-spread pools: conflict
	// misses appear (pool ids are consecutive, so actually few — but the
	// run must at least work and record stats).
	if r.CPU.Translation.Translations == 0 {
		t.Error("no translations recorded")
	}
}

func TestExperimentDispatchIncludesAblations(t *testing.T) {
	found := map[string]bool{}
	for _, id := range ExperimentIDs {
		found[id] = true
	}
	if !found["ablation-assoc"] || !found["ablation-walk"] {
		t.Error("ablations must be registered")
	}
}

func TestAblationPOTQuick(t *testing.T) {
	s := NewSuite(Options{Seed: 4, Ops: 120, SkipTPCC: true})
	rep, err := s.AblationPOT()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "ablation-pot" {
		t.Error("report id")
	}
	// A roomier POT cannot slow the probe-accurate walk down much:
	// probe chains only shrink as the table empties out.
	for _, bench := range MicroBenches {
		small := rep.Values[bench+"_pot8192"]
		big := rep.Values[bench+"_pot65536"]
		if big < small*0.95 {
			t.Errorf("%s: POT 65536 (%.2f) much worse than POT 8192 (%.2f)", bench, big, small)
		}
	}
}

func TestPOTEntriesOverride(t *testing.T) {
	r, err := Run(RunSpec{Bench: "LL", Pattern: workloads.Each, Tx: true, Core: InOrder,
		Ops: 40, Seed: 6, Opt: true, Design: polb.Pipelined, POTEntries: 512, ProbeWalk: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.CPU.Translation.POTWalks == 0 {
		t.Error("walks expected")
	}
}

func TestFixedCmpQuick(t *testing.T) {
	s := NewSuite(Options{Seed: 4, Ops: 150, SkipTPCC: true})
	rep, err := s.FixedCmp()
	if err != nil {
		t.Fatal(err)
	}
	for _, bench := range MicroBenches {
		opt := rep.Values[bench+"_opt"]
		fixed := rep.Values[bench+"_fixed"]
		// FIXED is the no-translation upper bound; OPT must be close
		// behind but not (meaningfully) ahead.
		if opt > fixed*1.03 {
			t.Errorf("%s: OPT (%.2f) beats the FIXED bound (%.2f)", bench, opt, fixed)
		}
		if rec := rep.Values[bench+"_recovered"]; rec < 0.7 {
			t.Errorf("%s: OPT recovers only %.0f%% of FIXED", bench, 100*rec)
		}
	}
	if rep.Values["geomean_recovered"] <= 0 {
		t.Error("geomean missing")
	}
}

func TestFixedModeRunsAndMatches(t *testing.T) {
	base, err := Run(RunSpec{Bench: "LL", Pattern: workloads.All, Tx: true, Core: InOrder, Ops: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := Run(RunSpec{Bench: "LL", Pattern: workloads.All, Tx: true, Core: InOrder, Ops: 60, Seed: 9, FixedMap: true})
	if err != nil {
		t.Fatal(err)
	}
	if base.Checksum != fixed.Checksum {
		t.Fatal("FIXED mode diverged functionally")
	}
	if fixed.CPU.Cycles >= base.CPU.Cycles {
		t.Errorf("FIXED (%d) must beat BASE (%d)", fixed.CPU.Cycles, base.CPU.Cycles)
	}
	if fixed.CPU.Mix.ByOp[9]+fixed.CPU.Mix.ByOp[8] != 0 { // NVStore, NVLoad
		t.Error("FIXED mode must not emit nvld/nvst")
	}
	if !strings.Contains(fixed.Spec.Label(), "FIXED") {
		t.Error("label must show FIXED")
	}
}

func TestCPIStackQuick(t *testing.T) {
	s := NewSuite(Options{Seed: 4, Ops: 150, SkipTPCC: true})
	rep, err := s.CPIStack()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "cpistack" {
		t.Error("report id")
	}
	// BASE has no hardware translation stalls; OPT has some.
	for _, bench := range MicroBenches {
		if rep.Values[bench+"_BASE_trans_frac"] != 0 {
			t.Errorf("%s: BASE cannot have hardware translation stalls", bench)
		}
		if rep.Values[bench+"_OPT_trans_frac"] <= 0 {
			t.Errorf("%s: OPT should show translation stalls", bench)
		}
	}
}

func TestAblationPrefetchQuick(t *testing.T) {
	s := NewSuite(Options{Seed: 4, Ops: 120, SkipTPCC: true})
	rep, err := s.AblationPrefetch()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "ablation-prefetch" {
		t.Error("report id")
	}
	// The prefetcher must not swing the BASE-vs-OPT conclusion wildly.
	for _, bench := range MicroBenches {
		no := rep.Values[bench+"_speedup_nopf"]
		pf := rep.Values[bench+"_speedup_pf"]
		if pf < no*0.7 || pf > no*1.3 {
			t.Errorf("%s: prefetch swings speedup %.2f -> %.2f", bench, no, pf)
		}
	}
}

func TestRecoveryExperiment(t *testing.T) {
	s := NewSuite(Options{Seed: 4})
	rep, err := s.Recovery()
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "recovery" {
		t.Error("report id")
	}
	// BASE recovery must cost more instructions than OPT (the undo
	// replay translates every logged ObjectID), and more records must
	// cost more.
	if rep.Values["records64_ratio"] <= 1.0 {
		t.Errorf("BASE/OPT recovery ratio = %.2f, want > 1", rep.Values["records64_ratio"])
	}
	if rep.Values["records256_opt_insns"] <= rep.Values["records4_opt_insns"] {
		t.Error("recovery cost must grow with log size")
	}
}
