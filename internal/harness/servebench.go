package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// ServeRecord is one potbench run against a potserve server, appended to a
// trajectory file (BENCH_serve.json) so successive PRs can track the
// network front-end's throughput and tail latency.
type ServeRecord struct {
	// Timestamp is RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
	// GitSHA identifies the tree ("" when unknown, "-dirty" suffix for
	// uncommitted changes); used to refuse duplicate run records.
	GitSHA string `json:"git_sha,omitempty"`
	// GoVersion, NumCPU and GoMaxProcs describe the machine: records taken
	// at different GOMAXPROCS are not comparable (a 1-P run serializes the
	// server and clients onto one scheduler thread), so the capture
	// conditions are part of the record.
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"go_max_procs,omitempty"`
	// Run configuration.
	Seed       uint64 `json:"seed"`
	Conns      int    `json:"conns"`
	OpsPerConn int    `json:"ops_per_conn"`
	Depth      int    `json:"pipeline_depth"`
	KeySpace   int    `json:"key_space"`
	ReadPct    int    `json:"read_pct"`
	Shards     int    `json:"shards"`
	InProcess  bool   `json:"in_process"`
	// Cluster is the replicated-member count when the run targeted an
	// in-process cluster through the routing client (0 = single server).
	// Cluster runs pay quorum replication on every write, so they form
	// their own trajectory.
	Cluster int `json:"cluster,omitempty"`
	// Snapshot records whether the in-process server's KV store served
	// reads from the MVCC snapshot mirror (false = latched baseline), so
	// snapshot and latched runs form separate trajectories.
	Snapshot bool `json:"snapshot,omitempty"`
	// Results.
	Ops         int     `json:"ops_total"`
	Errors      int     `json:"errors_total"`
	WallSeconds float64 `json:"wall_seconds"`
	OpsPerSec   float64 `json:"ops_per_sec"`
	P50us       float64 `json:"p50_us"`
	P95us       float64 `json:"p95_us"`
	P99us       float64 `json:"p99_us"`
}

// ErrDuplicateServeRecord reports that the trajectory file already holds a
// run of the same tree and configuration.
var ErrDuplicateServeRecord = errors.New("duplicate serve record for this git SHA and configuration")

func sameServeConfig(a, b ServeRecord) bool {
	return a.GitSHA == b.GitSHA && a.Seed == b.Seed && a.Conns == b.Conns &&
		a.OpsPerConn == b.OpsPerConn && a.Depth == b.Depth && a.KeySpace == b.KeySpace &&
		a.ReadPct == b.ReadPct && a.Shards == b.Shards && a.InProcess == b.InProcess &&
		a.Snapshot == b.Snapshot && a.Cluster == b.Cluster
}

// AppendServeRecord appends rec to the JSON-array trajectory file at path,
// creating it if absent, with the same duplicate-refusal rule as
// AppendCrashRecord: a clean tree may record each configuration once; dirty
// trees are exempt.
func AppendServeRecord(path string, rec ServeRecord) error {
	var records []ServeRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("harness: %s holds invalid trajectory data: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("harness: %w", err)
	}
	if rec.GitSHA != "" && !strings.HasSuffix(rec.GitSHA, "-dirty") {
		for _, r := range records {
			if sameServeConfig(r, rec) {
				return fmt.Errorf("harness: %s: %w (sha %s, recorded %s)",
					path, ErrDuplicateServeRecord, rec.GitSHA, r.Timestamp)
			}
		}
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
