package harness

import (
	"bytes"
	"fmt"
	"testing"

	"potgo/internal/emit"
	"potgo/internal/pmem"
	"potgo/internal/polb"
	"potgo/internal/tpcc"
	"potgo/internal/trace"
	"potgo/internal/vm"
	"potgo/internal/workloads"
)

// assertDumpsEqual requires two final-pool-contents dumps to be
// byte-identical. Pool contents are position-independent — object references
// are stored as OIDs, never virtual addresses — so translation mode must not
// leak into durable state.
func assertDumpsEqual(t *testing.T, baseDump, optDump map[string][]byte) {
	t.Helper()
	if len(baseDump) != len(optDump) {
		t.Fatalf("pool count differs: BASE has %d, OPT has %d", len(baseDump), len(optDump))
	}
	for name, bb := range baseDump {
		ob, ok := optDump[name]
		if !ok {
			t.Errorf("pool %q exists under BASE but not OPT", name)
			continue
		}
		if !bytes.Equal(bb, ob) {
			i := 0
			for i < len(bb) && i < len(ob) && bb[i] == ob[i] {
				i++
			}
			t.Errorf("pool %q: durable bytes diverge at offset %d (len %d vs %d)",
				name, i, len(bb), len(ob))
		}
	}
}

// TestDifferentialBaseVsOpt runs every Table 5 (workload × pattern) cell
// functionally under BASE and OPT and asserts the two modes are functionally
// indistinguishable: same workload checksum and byte-exact final pool
// contents. Hardware translation must change timing only, never state.
func TestDifferentialBaseVsOpt(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full workload × pattern differential grid")
	}
	patterns := []workloads.Pattern{workloads.All, workloads.Each, workloads.Random}
	for _, bench := range MicroBenches {
		for _, pat := range patterns {
			t.Run(fmt.Sprintf("%s/%s", bench, pat), func(t *testing.T) {
				base := RunSpec{Bench: bench, Pattern: pat, Tx: true, Ops: 40, Seed: 3}
				opt := base
				opt.Opt = true
				opt.Design = polb.Pipelined

				baseRes, baseDump, err := RunFunctionalDump(base)
				if err != nil {
					t.Fatalf("BASE: %v", err)
				}
				optRes, optDump, err := RunFunctionalDump(opt)
				if err != nil {
					t.Fatalf("OPT: %v", err)
				}
				if baseRes.Checksum != optRes.Checksum {
					t.Errorf("checksum mismatch: BASE %#x, OPT %#x", baseRes.Checksum, optRes.Checksum)
				}
				if len(baseDump) == 0 {
					t.Fatal("BASE run created no pools")
				}
				assertDumpsEqual(t, baseDump, optDump)
			})
		}
	}
}

// TestDifferentialTPCC is the TPC-C arm of the differential test: both
// placements, BASE vs OPT, byte-exact pools plus the database's own
// consistency verifier (the model of what a committed transaction mix must
// leave behind) in each mode.
func TestDifferentialTPCC(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four TPC-C mixes")
	}
	const seed, ops = 3, 60
	for _, pc := range []struct {
		name  string
		place tpcc.Placement
	}{
		{"ALL", tpcc.PlaceAll},
		{"EACH", tpcc.PlaceEach},
	} {
		t.Run(pc.name, func(t *testing.T) {
			baseDump, baseStats := runTPCCFunctional(t, emit.Base, pc.place, seed, ops)
			optDump, optStats := runTPCCFunctional(t, emit.Opt, pc.place, seed, ops)
			if baseStats != optStats {
				t.Errorf("transaction stats diverge: BASE %+v, OPT %+v", baseStats, optStats)
			}
			assertDumpsEqual(t, baseDump, optDump)
		})
	}
}

// runTPCCFunctional populates a down-scaled TPC-C database in the given
// translation mode, runs the transaction mix, verifies consistency, and
// returns the synced durable pool bytes plus the mix statistics.
func runTPCCFunctional(t *testing.T, mode emit.Mode, place tpcc.Placement, seed int64, ops int) (map[string][]byte, tpcc.Stats) {
	t.Helper()
	as := vm.NewAddressSpace(seed ^ 0x5eed)
	em := emit.New(trace.Discard{}, mode)
	var soft *emit.SoftTranslator
	var err error
	if mode == emit.Base {
		if soft, err = emit.NewSoftTranslator(em, as, 1024); err != nil {
			t.Fatal(err)
		}
	}
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, soft)
	if err != nil {
		t.Fatal(err)
	}
	db, err := tpcc.NewDB(h, tpcc.TestConfig(seed), place)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.RunMix(ops); err != nil {
		t.Fatal(err)
	}
	if err := db.CheckConsistency(); err != nil {
		t.Errorf("%v mode: consistency check: %v", mode, err)
	}
	if err := h.SyncAll(); err != nil {
		t.Fatal(err)
	}
	return h.Store.DumpBytes(), db.Stats()
}
