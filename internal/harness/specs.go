package harness

import (
	"potgo/internal/polb"
	"potgo/internal/workloads"
)

// This file is the spec-enumeration phase of the experiment pipeline: for
// every experiment id, SpecsFor lists the timed RunSpecs the experiment will
// Get, without running anything. cmd/experiments prefetches the union of the
// requested experiments' specs on a bounded worker pool (Suite.Prefetch)
// before rendering, so the rendering phase is pure cache hits and the grid's
// wall-clock is bounded by the slowest simulation, not the sum.
//
// Enumeration must stay in lockstep with the experiment bodies in
// experiments.go and ablations.go; TestSpecsForCoversExperiments asserts that
// running an experiment after prefetching its specs performs no new
// simulations.

// SpecsFor returns every timed RunSpec the experiment will request, in the
// order the experiment requests them. Experiments that only execute
// functionally (table2) or outside the Suite cache (recovery) return nil, as
// does an unknown id (RunExperiment reports those).
func (s *Suite) SpecsFor(id string) []RunSpec {
	var specs []RunSpec
	add := func(sp ...RunSpec) { specs = append(specs, sp...) }

	// tpccPatterns are the patterns the TPC-C rows cover where present.
	tpccPatterns := []workloads.Pattern{workloads.All, workloads.Each}

	switch id {
	case "fig9a", "fig9b":
		kind, withParallel := InOrder, true
		if id == "fig9b" {
			kind, withParallel = OutOfOrder, false
		}
		rows := func(bench string, pats []workloads.Pattern) {
			for _, pat := range pats {
				base, pipe, par, ideal := fig9Specs(bench, pat, kind)
				add(base, pipe)
				if withParallel {
					add(par)
				}
				add(ideal)
			}
		}
		for _, bench := range MicroBenches {
			rows(bench, patterns)
		}
		if !s.opts.SkipTPCC {
			rows(TPCCBench, tpccPatterns)
		}
	case "table8":
		rows := func(bench string, pats []workloads.Pattern) {
			for _, pat := range pats {
				_, _, par, _ := fig9Specs(bench, pat, InOrder)
				add(par)
			}
			_, pipe, _, _ := fig9Specs(bench, workloads.Each, InOrder)
			add(pipe)
		}
		for _, bench := range MicroBenches {
			rows(bench, patterns)
		}
		if !s.opts.SkipTPCC {
			rows(TPCCBench, tpccPatterns)
		}
	case "fig10":
		for _, bench := range MicroBenches {
			for _, pat := range patterns {
				base, pipe, par, _ := fig9Specs(bench, pat, InOrder)
				base.Tx, pipe.Tx, par.Tx = false, false, false
				add(base, pipe, par)
			}
		}
	case "fig11":
		for _, bench := range MicroBenches {
			base, pipe, par, _ := fig9Specs(bench, workloads.Random, InOrder)
			add(base)
			for _, design := range []RunSpec{pipe, par} {
				for _, size := range polbSweepSizes {
					spec := design
					spec.POLBSize = size
					add(spec)
				}
			}
		}
	case "table9":
		for _, bench := range MicroBenches {
			for _, design := range []polb.Design{polb.Pipelined, polb.Parallel} {
				for _, size := range table9Sizes {
					add(RunSpec{
						Bench: bench, Pattern: workloads.Random, Tx: false,
						Core: InOrder, Opt: true, Design: design, POLBSize: size,
					})
				}
			}
		}
	case "fig12":
		for _, bench := range MicroBenches {
			base, pipe, _, _ := fig9Specs(bench, workloads.Each, InOrder)
			add(base)
			for _, walk := range potSweep {
				spec := pipe
				if walk == 0 {
					spec.POTWalk = -1
				} else {
					spec.POTWalk = walk
				}
				add(spec)
			}
		}
	case "insns":
		for _, bench := range MicroBenches {
			for _, pat := range patterns {
				base, pipe, _, _ := fig9Specs(bench, pat, InOrder)
				add(base, pipe)
			}
		}
	case "ablation-assoc":
		for _, bench := range MicroBenches {
			base, pipe, _, _ := fig9Specs(bench, workloads.Each, InOrder)
			add(base)
			for _, g := range ablationAssocGeoms {
				spec := pipe
				spec.POLBSets = g.sets
				add(spec)
			}
		}
	case "ablation-walk":
		for _, bench := range MicroBenches {
			base, pipe, _, _ := fig9Specs(bench, workloads.Each, InOrder)
			probe := pipe
			probe.ProbeWalk = true
			add(base, pipe, probe)
		}
	case "ablation-pot":
		for _, bench := range MicroBenches {
			base, pipe, _, _ := fig9Specs(bench, workloads.Each, InOrder)
			add(base)
			for _, size := range ablationPOTSizes {
				spec := pipe
				spec.ProbeWalk = true
				spec.POTEntries = size
				add(spec)
			}
		}
	case "fixedcmp":
		for _, bench := range MicroBenches {
			base, pipe, _, _ := fig9Specs(bench, workloads.Random, InOrder)
			fixed := base
			fixed.FixedMap = true
			add(base, pipe, fixed)
		}
	case "cpistack":
		for _, bench := range MicroBenches {
			base, pipe, _, _ := fig9Specs(bench, workloads.Random, InOrder)
			add(base, pipe)
		}
	case "ablation-prefetch":
		for _, bench := range MicroBenches {
			base, pipe, _, _ := fig9Specs(bench, workloads.Random, InOrder)
			basePF, pipePF := base, pipe
			basePF.Prefetch, pipePF.Prefetch = true, true
			add(base, pipe, basePF, pipePF)
		}
	}
	return specs
}

// PrefetchExperiments concurrently runs every simulation the given
// experiments will need (the deduplicated union of their SpecsFor lists) on
// the suite's worker pool. Rendering the experiments afterwards hits only
// the cache. Unknown ids enumerate no specs and are reported by
// RunExperiment instead.
func (s *Suite) PrefetchExperiments(ids []string) error {
	var union []RunSpec
	for _, id := range ids {
		union = append(union, s.SpecsFor(id)...)
	}
	return s.Prefetch(union)
}
