// Package harness drives the paper's experiments: it assembles a simulated
// machine (memory hierarchy, optional POLB/POT translation hardware, an
// in-order or out-of-order core), runs a workload against the persistent
// memory library in BASE or OPT mode, feeds the emitted instruction stream
// to the timing model in lockstep, and collects the statistics every table
// and figure of the evaluation needs.
package harness

import (
	"fmt"

	"potgo/internal/core"
	"potgo/internal/cpu"
	"potgo/internal/emit"
	"potgo/internal/mem"
	"potgo/internal/obs"
	"potgo/internal/pmem"
	"potgo/internal/polb"
	"potgo/internal/pot"
	"potgo/internal/tpcc"
	"potgo/internal/trace"
	"potgo/internal/vm"
	"potgo/internal/workloads"
)

// CoreKind selects the timing model.
type CoreKind int

const (
	// InOrder is the five-stage pipeline (paper §4.5).
	InOrder CoreKind = iota
	// OutOfOrder is the ROB timestamp model (paper §4.4).
	OutOfOrder
)

func (c CoreKind) String() string {
	if c == InOrder {
		return "in-order"
	}
	return "out-of-order"
}

// TPCCBench is the bench name selecting the TPC-C application instead of a
// microbenchmark.
const TPCCBench = "TPCC"

// MicroBenches lists the Table 5 microbenchmark abbreviations in paper
// order.
var MicroBenches = []string{"LL", "BST", "SPS", "RBT", "BT", "B+T"}

// RunSpec describes one simulation run.
type RunSpec struct {
	// Bench is a microbenchmark abbreviation or TPCCBench.
	Bench string
	// Pattern is the pool usage pattern. For TPCC, All means TPCC_ALL
	// and Each means TPCC_EACH.
	Pattern workloads.Pattern
	// Opt selects hardware translation (OPT); false is BASE.
	Opt bool
	// FixedMap selects the FIXED baseline instead: pools at fixed
	// addresses accessed through raw pointers (the Mnemosyne-style
	// alternative of the paper's introduction) — no ObjectID translation
	// at all, and no ASLR for persistent segments. Mutually exclusive
	// with Opt.
	FixedMap bool
	// Tx enables failure-safety/durability (off = the *_NTX configs).
	Tx bool
	// FT runs the workload over fault-tolerant pools: per-object CRC32C
	// checksums and a parity column maintained at every commit. Used to
	// price the media-fault-tolerance tax on whole benchmarks (the
	// BENCH_repair.json workload series), not just the KV get path.
	// VerifyOnRead stays off — workload setup writes outside
	// transactions, so read-side verification is priced separately by
	// MeasureVerifyOverhead.
	FT bool
	// Core picks the timing model.
	Core CoreKind
	// Design picks the POLB microarchitecture for OPT runs.
	Design polb.Design
	// POLBSize: 0 = the paper default (32); negative = no POLB.
	POLBSize int
	// POTWalk: 0 = design default; core.ZeroWalk = free walk; >0 cycles.
	POTWalk int64
	// POLBSets > 1 selects the set-associative POLB ablation.
	POLBSets int
	// POTEntries overrides the POT capacity (0 = the paper's 16384).
	POTEntries int
	// ProbeWalk selects the probe-accurate POT-walk latency ablation.
	ProbeWalk bool
	// Prefetch enables the L1 next-line prefetcher ablation.
	Prefetch bool
	// Ideal charges no translation latency at all (Figure 9's red dots).
	Ideal bool
	// Ops overrides the benchmark's operation count (0 = paper default;
	// TPC-C default is 1000 transactions).
	Ops int
	// Seed drives all randomness.
	Seed int64
	// TPCC overrides the TPC-C cardinalities (nil = full spec scale).
	TPCC *tpcc.Config
}

// Label renders a short human-readable configuration name.
func (s RunSpec) Label() string {
	cfg := "BASE"
	if s.FixedMap {
		cfg = "FIXED"
	}
	if s.Opt {
		cfg = "OPT/" + s.Design.String()
		if s.Ideal {
			cfg += "/ideal"
		}
	}
	if !s.Tx {
		cfg += "_NTX"
	}
	if s.FT {
		cfg += "_FT"
	}
	return fmt.Sprintf("%s/%s/%s/%s", s.Bench, s.Pattern, cfg, s.Core)
}

// RunResult is the outcome of one run.
type RunResult struct {
	Spec RunSpec
	// CPU carries cycles, instruction counts, cache/TLB/POLB statistics.
	CPU cpu.Result
	// Soft is the BASE-mode oid_direct instrumentation (zero for OPT).
	Soft emit.SoftStats
	// Checksum is the workload's functional result; paired BASE/OPT runs
	// must agree.
	Checksum uint64
	// Pools is the number of pools the run created.
	Pools int
}

func (s RunSpec) opsAndRange() (int, uint64, error) {
	if s.Bench == TPCCBench {
		ops := s.Ops
		if ops == 0 {
			ops = 1000
		}
		return ops, 0, nil
	}
	w, ok := workloads.ByAbbr(s.Bench)
	if !ok {
		return 0, 0, fmt.Errorf("harness: unknown benchmark %q", s.Bench)
	}
	ops := s.Ops
	if ops == 0 {
		ops = w.DefaultOps
	}
	return ops, w.DefaultKeyRange, nil
}

// Run executes one simulation.
func Run(spec RunSpec) (RunResult, error) {
	return RunObserved(spec, RunObs{})
}

// RunObserved is Run with observability sinks attached: end-of-run
// statistics are published into ro.Metrics and (when ro.Trace is set)
// sampled per-instruction pipeline timestamps stream into the trace. A
// zero RunObs makes it exactly Run.
func RunObserved(spec RunSpec, ro RunObs) (RunResult, error) {
	ops, keyRange, err := spec.opsAndRange()
	if err != nil {
		return RunResult{}, err
	}
	as := vm.NewAddressSpace(spec.Seed ^ 0x5eed)
	memCfg := mem.DefaultConfig()
	memCfg.NextLinePrefetch = spec.Prefetch
	hier := mem.New(memCfg, as)
	machine := &cpu.Machine{Hier: hier}
	if ro.Trace != nil {
		machine.Tracer = obs.NewPipelineTracer(ro.Trace, ro.TraceEvery)
	}

	var potTable *pot.Table
	var tr *core.Translator
	if spec.Opt {
		entries := spec.POTEntries
		if entries == 0 {
			entries = pot.DefaultEntries
		}
		potTable, err = pot.New(as, entries)
		if err != nil {
			return RunResult{}, err
		}
		size := spec.POLBSize
		switch {
		case size < 0:
			size = 0
		case size == 0:
			size = polb.DefaultEntries
		}
		tr = core.New(core.Config{
			Design:         spec.Design,
			POLBSize:       size,
			POLBSets:       spec.POLBSets,
			POTWalkLatency: spec.POTWalk,
			Ideal:          spec.Ideal,
			ProbeWalk:      spec.ProbeWalk,
		}, potTable, as)
		tr.SetWalker(hier)
		machine.Translator = tr
	}

	out := RunResult{Spec: spec}
	var prodErr error
	// heapRef is set by the producer goroutine and read only after
	// ls.Close() joins it, so the handoff is race-free.
	var heapRef *pmem.Heap
	ls := trace.GenerateLockstep(func(sink trace.Sink) {
		mode := emit.Base
		switch {
		case spec.Opt:
			mode = emit.Opt
		case spec.FixedMap:
			mode = emit.Fixed
		}
		em := emit.New(sink, mode)
		if stack, err := as.Map(64 * 1024); err == nil {
			em.AttachStack(stack.Base, stack.Size)
		}
		var soft *emit.SoftTranslator
		if mode == emit.Base {
			soft, prodErr = emit.NewSoftTranslator(em, as, 1024)
			if prodErr != nil {
				return
			}
		}
		h, err := pmem.NewHeap(as, pmem.NewStore(), em, soft)
		if err != nil {
			prodErr = err
			return
		}
		h.POT = potTable
		h.HW = tr
		heapRef = h
		if spec.FT {
			h.SetFTDefault(true)
		}

		if spec.Bench == TPCCBench {
			cfg := tpcc.SpecConfig(spec.Seed)
			if spec.TPCC != nil {
				cfg = *spec.TPCC
				cfg.Seed = spec.Seed
			}
			place := tpcc.PlaceAll
			if spec.Pattern == workloads.Each {
				place = tpcc.PlaceEach
			}
			db, err := tpcc.NewDB(h, cfg, place)
			if err != nil {
				prodErr = err
				return
			}
			if err := db.RunMix(ops); err != nil {
				prodErr = err
				return
			}
			st := db.Stats()
			out.Checksum = st.Total()<<8 ^ st.Rollbacks
			out.Pools = h.OpenPools()
		} else {
			w, _ := workloads.ByAbbr(spec.Bench)
			env, err := workloads.NewEnv(h, workloads.Config{
				Pattern: spec.Pattern,
				Tx:      spec.Tx,
				Seed:    spec.Seed,
			})
			if err != nil {
				prodErr = err
				return
			}
			sum, err := w.Run(env, ops, keyRange)
			if err != nil {
				prodErr = err
				return
			}
			out.Checksum = sum
			out.Pools = env.PoolsCreated()
		}
		if soft != nil {
			out.Soft = soft.Stats()
		}
	})

	var res cpu.Result
	if spec.Core == InOrder {
		res, err = cpu.RunInOrder(cpu.DefaultConfig(), machine, ls)
	} else {
		res, err = cpu.RunOutOfOrder(cpu.DefaultConfig(), machine, ls)
	}
	ls.Close() // releases (and joins) the producer in every path
	if prodErr != nil {
		return RunResult{}, fmt.Errorf("harness: %s: workload: %w", spec.Label(), prodErr)
	}
	if err != nil {
		return RunResult{}, fmt.Errorf("harness: %s: simulation: %w", spec.Label(), err)
	}
	out.CPU = res
	out.publish(ro.Metrics, tr, heapRef)
	return out, nil
}

// RunFunctional executes the workload without a timing model (the trace is
// discarded); used by Table 2, which only needs oid_direct instrumentation.
func RunFunctional(spec RunSpec) (RunResult, error) {
	out, _, err := runFunctional(spec)
	return out, err
}

// RunFunctionalObserved is RunFunctional with metrics publication.
func RunFunctionalObserved(spec RunSpec, reg *obs.Registry) (RunResult, error) {
	out, h, err := runFunctional(spec)
	if err == nil {
		out.publish(reg, nil, h)
	}
	return out, err
}

// RunFunctionalDump executes the workload functionally and returns, along
// with the result, a copy of the final durable pool bytes after a full
// sync. Pool contents are position-independent (object references are
// stored as OIDs, never as virtual addresses), so two runs of the same
// workload under different translation modes must dump byte-identical
// pools — the differential-test invariant.
func RunFunctionalDump(spec RunSpec) (RunResult, map[string][]byte, error) {
	out, h, err := runFunctional(spec)
	if err != nil {
		return out, nil, err
	}
	if err := h.SyncAll(); err != nil {
		return out, nil, err
	}
	return out, h.Store.DumpBytes(), nil
}

func runFunctional(spec RunSpec) (RunResult, *pmem.Heap, error) {
	ops, keyRange, err := spec.opsAndRange()
	if err != nil {
		return RunResult{}, nil, err
	}
	as := vm.NewAddressSpace(spec.Seed ^ 0x5eed)
	mode := emit.Base
	switch {
	case spec.Opt:
		mode = emit.Opt
	case spec.FixedMap:
		mode = emit.Fixed
	}
	em := emit.New(trace.Discard{}, mode)
	if stack, err := as.Map(64 * 1024); err == nil {
		em.AttachStack(stack.Base, stack.Size)
	}
	var soft *emit.SoftTranslator
	if mode == emit.Base {
		if soft, err = emit.NewSoftTranslator(em, as, 1024); err != nil {
			return RunResult{}, nil, err
		}
	}
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, soft)
	if err != nil {
		return RunResult{}, nil, err
	}
	if spec.FT {
		h.SetFTDefault(true)
	}
	out := RunResult{Spec: spec}
	if spec.Bench == TPCCBench {
		cfg := tpcc.SpecConfig(spec.Seed)
		if spec.TPCC != nil {
			cfg = *spec.TPCC
			cfg.Seed = spec.Seed
		}
		place := tpcc.PlaceAll
		if spec.Pattern == workloads.Each {
			place = tpcc.PlaceEach
		}
		db, err := tpcc.NewDB(h, cfg, place)
		if err != nil {
			return RunResult{}, nil, err
		}
		if err := db.RunMix(ops); err != nil {
			return RunResult{}, nil, err
		}
	} else {
		w, ok := workloads.ByAbbr(spec.Bench)
		if !ok {
			return RunResult{}, nil, fmt.Errorf("harness: unknown benchmark %q", spec.Bench)
		}
		env, err := workloads.NewEnv(h, workloads.Config{Pattern: spec.Pattern, Tx: spec.Tx, Seed: spec.Seed})
		if err != nil {
			return RunResult{}, nil, err
		}
		sum, err := w.Run(env, ops, keyRange)
		if err != nil {
			return RunResult{}, nil, err
		}
		out.Checksum = sum
		out.Pools = env.PoolsCreated()
	}
	out.CPU.Instructions = em.Count()
	if soft != nil {
		out.Soft = soft.Stats()
	}
	return out, h, nil
}
