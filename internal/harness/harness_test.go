package harness

import (
	"strings"
	"testing"

	"potgo/internal/polb"
	"potgo/internal/tpcc"
	"potgo/internal/workloads"
)

// quickSuite runs at reduced scale so the whole experiment grid stays fast
// in tests; paper-scale numbers come from cmd/experiments.
func quickSuite() *Suite {
	cfg := tpcc.TestConfig(1)
	return NewSuite(Options{
		Seed:    1,
		Ops:     120,
		TPCCOps: 60,
		TPCC:    &cfg,
	})
}

func TestRunSpecLabel(t *testing.T) {
	s := RunSpec{Bench: "LL", Pattern: workloads.Random, Tx: true, Core: InOrder}
	if s.Label() != "LL/RANDOM/BASE/in-order" {
		t.Errorf("label = %q", s.Label())
	}
	s.Opt, s.Design, s.Ideal = true, polb.Parallel, true
	s.Tx = false
	s.Core = OutOfOrder
	if got := s.Label(); !strings.Contains(got, "OPT/Parallel/ideal_NTX") || !strings.Contains(got, "out-of-order") {
		t.Errorf("label = %q", got)
	}
}

func TestUnknownBench(t *testing.T) {
	if _, err := Run(RunSpec{Bench: "NOPE"}); err == nil {
		t.Error("unknown bench must fail")
	}
	if _, err := RunFunctional(RunSpec{Bench: "NOPE"}); err == nil {
		t.Error("unknown bench must fail functionally")
	}
}

func TestOptBeatsBaseOnRandomPattern(t *testing.T) {
	// The paper's headline: on RANDOM, hardware translation wins big.
	for _, core := range []CoreKind{InOrder, OutOfOrder} {
		base, err := Run(RunSpec{Bench: "LL", Pattern: workloads.Random, Tx: true, Core: core, Ops: 100, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Run(RunSpec{Bench: "LL", Pattern: workloads.Random, Tx: true, Core: core, Ops: 100, Seed: 3,
			Opt: true, Design: polb.Pipelined})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := speedup(base, opt)
		if err != nil {
			t.Fatal(err)
		}
		if sp < 1.2 {
			t.Errorf("%v: LL/RANDOM speedup = %.2f, expected substantial", core, sp)
		}
	}
}

func TestInOrderGainsExceedOutOfOrder(t *testing.T) {
	// Paper §6.1: out-of-order hides part of the software-translation
	// cost, so the in-order speedup is larger.
	sp := map[CoreKind]float64{}
	for _, core := range []CoreKind{InOrder, OutOfOrder} {
		base, err := Run(RunSpec{Bench: "BST", Pattern: workloads.Random, Tx: true, Core: core, Ops: 250, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Run(RunSpec{Bench: "BST", Pattern: workloads.Random, Tx: true, Core: core, Ops: 250, Seed: 4,
			Opt: true, Design: polb.Pipelined})
		if err != nil {
			t.Fatal(err)
		}
		if sp[core], err = speedup(base, opt); err != nil {
			t.Fatal(err)
		}
	}
	if sp[InOrder] <= sp[OutOfOrder] {
		t.Errorf("in-order speedup (%.2f) should exceed out-of-order (%.2f)", sp[InOrder], sp[OutOfOrder])
	}
}

func TestIdealBoundsReal(t *testing.T) {
	base, err := Run(RunSpec{Bench: "RBT", Pattern: workloads.Each, Tx: true, Core: InOrder, Ops: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	real, err := Run(RunSpec{Bench: "RBT", Pattern: workloads.Each, Tx: true, Core: InOrder, Ops: 150, Seed: 5,
		Opt: true, Design: polb.Pipelined})
	if err != nil {
		t.Fatal(err)
	}
	ideal, err := Run(RunSpec{Bench: "RBT", Pattern: workloads.Each, Tx: true, Core: InOrder, Ops: 150, Seed: 5,
		Opt: true, Design: polb.Pipelined, Ideal: true})
	if err != nil {
		t.Fatal(err)
	}
	spReal, _ := speedup(base, real)
	spIdeal, _ := speedup(base, ideal)
	if spIdeal < spReal {
		t.Errorf("ideal (%.2f) must bound real (%.2f)", spIdeal, spReal)
	}
}

func TestSuiteMemoizes(t *testing.T) {
	s := quickSuite()
	spec := RunSpec{Bench: "LL", Pattern: workloads.All, Tx: true, Core: InOrder}
	r1, err := s.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CPU.Cycles != r2.CPU.Cycles {
		t.Error("memoized result must be identical")
	}
	if len(s.cache) != 1 {
		t.Errorf("cache size = %d", len(s.cache))
	}
}

func TestTable2Quick(t *testing.T) {
	s := quickSuite()
	rep, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	// Fast path is exactly 17 instructions, so the ALL column must sit
	// just above 17 (one cold miss amortized over the run).
	gAll := rep.Values["geomean_insns_all"]
	if gAll < 17 || gAll > 25 {
		t.Errorf("ALL insns/call = %.1f, paper says 17.0", gAll)
	}
	// EACH pays the full look-up almost every time (paper: ~97 insns,
	// 87%% predictor miss rate).
	gEach := rep.Values["geomean_insns_each"]
	if gEach < 60 || gEach > 120 {
		t.Errorf("EACH insns/call = %.1f, paper says ~97", gEach)
	}
	if miss := rep.Values["geomean_miss_each"]; miss < 0.5 {
		t.Errorf("EACH predictor miss = %.2f, paper says ~0.87", miss)
	}
	if !strings.Contains(rep.Text, "GeoMean") {
		t.Error("report must include the GeoMean row")
	}
}

func TestFig11ShapeQuick(t *testing.T) {
	// On RANDOM (32 pools), a 32-entry POLB must dominate a 1-entry
	// POLB, and "no POLB" must be the worst configuration.
	s := NewSuite(Options{Seed: 2, Ops: 150, SkipTPCC: true})
	base, err := s.Get(RunSpec{Bench: "BST", Pattern: workloads.Random, Tx: true, Core: InOrder})
	if err != nil {
		t.Fatal(err)
	}
	sp := map[int]float64{}
	for _, size := range []int{-1, 1, 32} {
		r, err := s.Get(RunSpec{Bench: "BST", Pattern: workloads.Random, Tx: true, Core: InOrder,
			Opt: true, Design: polb.Pipelined, POLBSize: size})
		if err != nil {
			t.Fatal(err)
		}
		if sp[size], err = speedup(base, r); err != nil {
			t.Fatal(err)
		}
	}
	if sp[32] <= sp[1] {
		t.Errorf("32-entry POLB (%.2f) must beat 1-entry (%.2f)", sp[32], sp[1])
	}
	if sp[1] <= sp[-1] {
		t.Errorf("1-entry POLB (%.2f) must beat no POLB (%.2f)", sp[1], sp[-1])
	}
}

func TestFig12ShapeQuick(t *testing.T) {
	// Larger POT-walk penalties must not speed anything up; LL (highest
	// POLB miss rate) must degrade from walk=10 to walk=500.
	s := NewSuite(Options{Seed: 3, Ops: 100, SkipTPCC: true})
	base, err := s.Get(RunSpec{Bench: "LL", Pattern: workloads.Each, Tx: true, Core: InOrder})
	if err != nil {
		t.Fatal(err)
	}
	get := func(walk int64) float64 {
		r, err := s.Get(RunSpec{Bench: "LL", Pattern: workloads.Each, Tx: true, Core: InOrder,
			Opt: true, Design: polb.Pipelined, POTWalk: walk})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := speedup(base, r)
		if err != nil {
			t.Fatal(err)
		}
		return sp
	}
	if s10, s500 := get(10), get(500); s500 >= s10 {
		t.Errorf("walk=500 (%.2f) must be slower than walk=10 (%.2f)", s500, s10)
	}
}

func TestRunExperimentDispatch(t *testing.T) {
	s := quickSuite()
	if _, err := s.RunExperiment("bogus"); err == nil {
		t.Error("unknown experiment must fail")
	}
	rep, err := s.RunExperiment("table2")
	if err != nil || rep.ID != "table2" {
		t.Fatalf("dispatch: %v", err)
	}
}

func TestTPCCQuickRun(t *testing.T) {
	cfg := tpcc.TestConfig(1)
	base, err := Run(RunSpec{Bench: TPCCBench, Pattern: workloads.All, Tx: true, Core: InOrder,
		Ops: 50, Seed: 6, TPCC: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Run(RunSpec{Bench: TPCCBench, Pattern: workloads.Each, Tx: true, Core: InOrder,
		Ops: 50, Seed: 6, TPCC: &cfg, Opt: true, Design: polb.Pipelined})
	if err != nil {
		t.Fatal(err)
	}
	if base.CPU.Instructions == 0 || opt.CPU.Instructions == 0 {
		t.Error("TPCC runs must execute instructions")
	}
	if opt.CPU.Instructions >= base.CPU.Instructions {
		t.Error("OPT TPCC must use fewer instructions than BASE")
	}
}

func TestPrefetchPropagatesErrors(t *testing.T) {
	s := quickSuite()
	err := s.Prefetch([]RunSpec{{Bench: "NOPE"}})
	if err == nil {
		t.Error("prefetch must surface run errors")
	}
}
