package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// SpeedRecord is one simulator-throughput measurement, appended to a
// trajectory file (BENCH_simspeed.json) by cmd/experiments so successive PRs
// can track simulation-speed regressions.
type SpeedRecord struct {
	// Timestamp is RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
	// GitSHA identifies the tree the measurement ran on ("" when unknown,
	// with a "-dirty" suffix for uncommitted changes). Used to refuse
	// duplicate measurements of the same tree and configuration.
	GitSHA string `json:"git_sha,omitempty"`
	// GoVersion and NumCPU describe the machine the measurement ran on.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Parallel is the worker-pool width used.
	Parallel int `json:"parallel"`
	// Quick records whether the reduced (CI-sized) scale was used.
	Quick bool `json:"quick"`
	// Experiments lists the experiment ids regenerated.
	Experiments []string `json:"experiments"`
	// SimulatedInstructions is the total across all fresh runs.
	SimulatedInstructions uint64 `json:"simulated_instructions"`
	// WallSeconds is end-to-end wall-clock including rendering.
	WallSeconds float64 `json:"wall_seconds"`
	// SimulatedMIPS is SimulatedInstructions / WallSeconds / 1e6.
	SimulatedMIPS float64 `json:"simulated_mips"`
	// PerExperiment breaks wall-clock down by experiment (render phase;
	// simulation time is shared via the prefetched cache).
	PerExperiment []ExperimentTiming `json:"per_experiment,omitempty"`
}

// ExperimentTiming is one experiment's render wall-clock.
type ExperimentTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// ErrDuplicateSpeedRecord reports that the trajectory file already holds a
// measurement of the same tree (git SHA) and configuration; a second one
// would only add noise to regression tracking.
var ErrDuplicateSpeedRecord = errors.New("duplicate speed record for this git SHA and configuration")

// sameConfig reports whether two records measure the same tree with the
// same configuration (quick scale, pool width, experiment set).
func sameConfig(a, b SpeedRecord) bool {
	if a.GitSHA != b.GitSHA || a.Quick != b.Quick || a.Parallel != b.Parallel ||
		len(a.Experiments) != len(b.Experiments) {
		return false
	}
	for i := range a.Experiments {
		if a.Experiments[i] != b.Experiments[i] {
			return false
		}
	}
	return true
}

// AppendSpeedRecord appends rec to the JSON-array trajectory file at path,
// creating it if absent. When rec carries a git SHA and the file already
// holds a record for the same SHA and configuration, nothing is written
// and the error wraps ErrDuplicateSpeedRecord. Dirty trees ("-dirty"
// suffix) are exempt: successive uncommitted states share a SHA yet are
// different trees.
func AppendSpeedRecord(path string, rec SpeedRecord) error {
	var records []SpeedRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("harness: %s holds invalid trajectory data: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("harness: %w", err)
	}
	if rec.GitSHA != "" && !strings.HasSuffix(rec.GitSHA, "-dirty") {
		for _, r := range records {
			if sameConfig(r, rec) {
				return fmt.Errorf("harness: %s: %w (sha %s, recorded %s)",
					path, ErrDuplicateSpeedRecord, rec.GitSHA, r.Timestamp)
			}
		}
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
