package harness

import (
	"encoding/json"
	"fmt"
	"os"
)

// SpeedRecord is one simulator-throughput measurement, appended to a
// trajectory file (BENCH_simspeed.json) by cmd/experiments so successive PRs
// can track simulation-speed regressions.
type SpeedRecord struct {
	// Timestamp is RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
	// GoVersion and NumCPU describe the machine the measurement ran on.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Parallel is the worker-pool width used.
	Parallel int `json:"parallel"`
	// Quick records whether the reduced (CI-sized) scale was used.
	Quick bool `json:"quick"`
	// Experiments lists the experiment ids regenerated.
	Experiments []string `json:"experiments"`
	// SimulatedInstructions is the total across all fresh runs.
	SimulatedInstructions uint64 `json:"simulated_instructions"`
	// WallSeconds is end-to-end wall-clock including rendering.
	WallSeconds float64 `json:"wall_seconds"`
	// SimulatedMIPS is SimulatedInstructions / WallSeconds / 1e6.
	SimulatedMIPS float64 `json:"simulated_mips"`
	// PerExperiment breaks wall-clock down by experiment (render phase;
	// simulation time is shared via the prefetched cache).
	PerExperiment []ExperimentTiming `json:"per_experiment,omitempty"`
}

// ExperimentTiming is one experiment's render wall-clock.
type ExperimentTiming struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

// AppendSpeedRecord appends rec to the JSON-array trajectory file at path,
// creating it if absent.
func AppendSpeedRecord(path string, rec SpeedRecord) error {
	var records []SpeedRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("harness: %s holds invalid trajectory data: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("harness: %w", err)
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
