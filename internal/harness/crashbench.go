package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
)

// CrashRecord is one crash-injection campaign result, appended to a
// trajectory file (BENCH_crash.json) by cmd/potcrash so successive PRs can
// track the engine's coverage and the heap's crash-consistency record.
type CrashRecord struct {
	// Timestamp is RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
	// GitSHA identifies the tree ("" when unknown, "-dirty" suffix for
	// uncommitted changes); used to refuse duplicate campaign records.
	GitSHA string `json:"git_sha,omitempty"`
	// GoVersion and NumCPU describe the machine.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Campaign configuration.
	Seed      uint64   `json:"seed"`
	Ops       int      `json:"ops"`
	MaxPoints int      `json:"max_points"`
	Policies  []string `json:"policies"`
	Targets   []string `json:"targets"`
	// Results.
	EventSpan   uint64  `json:"event_span_total"`
	Points      int     `json:"points_total"`
	Cases       int     `json:"cases_total"`
	Failures    int     `json:"failures_total"`
	WallSeconds float64 `json:"wall_seconds"`
}

// ErrDuplicateCrashRecord reports that the trajectory file already holds a
// campaign of the same tree and configuration.
var ErrDuplicateCrashRecord = errors.New("duplicate crash record for this git SHA and configuration")

func sameCrashConfig(a, b CrashRecord) bool {
	if a.GitSHA != b.GitSHA || a.Seed != b.Seed || a.Ops != b.Ops || a.MaxPoints != b.MaxPoints {
		return false
	}
	eq := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.Policies, b.Policies) && eq(a.Targets, b.Targets)
}

// AppendCrashRecord appends rec to the JSON-array trajectory file at path,
// creating it if absent, with the same duplicate-refusal rule as
// AppendSpeedRecord: a clean tree may record each configuration once;
// dirty trees are exempt.
func AppendCrashRecord(path string, rec CrashRecord) error {
	var records []CrashRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("harness: %s holds invalid trajectory data: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("harness: %w", err)
	}
	if rec.GitSHA != "" && !strings.HasSuffix(rec.GitSHA, "-dirty") {
		for _, r := range records {
			if sameCrashConfig(r, rec) {
				return fmt.Errorf("harness: %s: %w (sha %s, recorded %s)",
					path, ErrDuplicateCrashRecord, rec.GitSHA, r.Timestamp)
			}
		}
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
