package harness

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func speedRec(sha string) SpeedRecord {
	return SpeedRecord{
		Timestamp:     "2026-08-05T00:00:00Z",
		GitSHA:        sha,
		GoVersion:     "go1.24",
		NumCPU:        8,
		Parallel:      4,
		Quick:         true,
		Experiments:   []string{"table2", "fig9a"},
		SimulatedMIPS: 10,
	}
}

func readTrajectory(t *testing.T, path string) []SpeedRecord {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []SpeedRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	return recs
}

func TestAppendSpeedRecordRefusesDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "speed.json")

	if err := AppendSpeedRecord(path, speedRec("abc123")); err != nil {
		t.Fatalf("first append: %v", err)
	}
	err := AppendSpeedRecord(path, speedRec("abc123"))
	if !errors.Is(err, ErrDuplicateSpeedRecord) {
		t.Fatalf("second append: got %v, want ErrDuplicateSpeedRecord", err)
	}
	if n := len(readTrajectory(t, path)); n != 1 {
		t.Fatalf("trajectory has %d records after refused duplicate, want 1", n)
	}

	// A different tree, a different configuration of the same tree, and an
	// unknown tree are all new measurements.
	next := speedRec("def456")
	if err := AppendSpeedRecord(path, next); err != nil {
		t.Fatalf("new sha: %v", err)
	}
	diffCfg := speedRec("abc123")
	diffCfg.Quick = false
	if err := AppendSpeedRecord(path, diffCfg); err != nil {
		t.Fatalf("new config: %v", err)
	}
	diffExp := speedRec("abc123")
	diffExp.Experiments = []string{"table2"}
	if err := AppendSpeedRecord(path, diffExp); err != nil {
		t.Fatalf("new experiment set: %v", err)
	}
	unknown := speedRec("")
	for i := 0; i < 2; i++ {
		if err := AppendSpeedRecord(path, unknown); err != nil {
			t.Fatalf("unknown sha append %d: %v", i, err)
		}
	}

	// Dirty trees share a SHA but not contents: never deduplicated.
	dirty := speedRec("abc123-dirty")
	for i := 0; i < 2; i++ {
		if err := AppendSpeedRecord(path, dirty); err != nil {
			t.Fatalf("dirty append %d: %v", i, err)
		}
	}
	if n := len(readTrajectory(t, path)); n != 8 {
		t.Fatalf("trajectory has %d records, want 8", n)
	}
}
