package harness

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"potgo/internal/workloads"
)

// TestParallelGridDeterministic guards the "parallelism never changes
// results" invariant: the Figure 9(a) grid run with Parallel=1 and
// Parallel=8 must produce identical cycles, instruction counts, and
// checksums for every spec.
func TestParallelGridDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the Fig 9(a) grid twice")
	}
	mk := func(parallel int) *Suite {
		return NewSuite(Options{Seed: 7, Ops: 60, SkipTPCC: true, Parallel: parallel})
	}
	serial, concurrent := mk(1), mk(8)
	specs := serial.SpecsFor("fig9a")
	if len(specs) == 0 {
		t.Fatal("fig9a enumerates no specs")
	}
	if err := serial.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	if err := concurrent.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	for _, spec := range specs {
		a, err := serial.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		b, err := concurrent.Get(spec)
		if err != nil {
			t.Fatal(err)
		}
		if a.CPU.Cycles != b.CPU.Cycles || a.CPU.Instructions != b.CPU.Instructions || a.Checksum != b.Checksum {
			t.Errorf("%s: serial (cycles=%d insns=%d sum=%#x) != parallel (cycles=%d insns=%d sum=%#x)",
				spec.Label(), a.CPU.Cycles, a.CPU.Instructions, a.Checksum,
				b.CPU.Cycles, b.CPU.Instructions, b.Checksum)
		}
	}
}

// TestSpecsForCoversExperiments pins the spec-enumeration phase to the
// experiment bodies: after prefetching SpecsFor(id), rendering the
// experiment must perform no new simulations (every Get is a cache hit).
func TestSpecsForCoversExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole experiment grid")
	}
	s := NewSuite(Options{Seed: 11, Ops: 50, SkipTPCC: true, Parallel: 4})
	for _, id := range ExperimentIDs {
		if err := s.Prefetch(s.SpecsFor(id)); err != nil {
			t.Fatalf("%s: prefetch: %v", id, err)
		}
		s.mu.Lock()
		before := len(s.cache)
		s.mu.Unlock()
		if _, err := s.RunExperiment(id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		s.mu.Lock()
		after := len(s.cache)
		s.mu.Unlock()
		if after != before {
			t.Errorf("%s: experiment ran %d simulations its SpecsFor did not enumerate", id, after-before)
		}
	}
}

// TestPrefetchFirstErrorDeterministic checks that Prefetch reports the error
// of the earliest failing spec in list order, however the workers interleave.
func TestPrefetchFirstErrorDeterministic(t *testing.T) {
	s := NewSuite(Options{Seed: 1, Ops: 20, Parallel: 8})
	specs := []RunSpec{
		{Bench: "LL", Pattern: workloads.All, Tx: true, Core: InOrder},
		{Bench: "BOGUS-A"},
		{Bench: "BST", Pattern: workloads.All, Tx: true, Core: InOrder},
		{Bench: "BOGUS-B"},
	}
	for i := 0; i < 3; i++ {
		err := NewSuite(s.opts).Prefetch(specs)
		if err == nil {
			t.Fatal("prefetch must surface run errors")
		}
		if want := `"BOGUS-A"`; !strings.Contains(err.Error(), want) {
			t.Fatalf("got %q, want the first failing spec's error (%s)", err, want)
		}
	}
}

// TestPrefetchDedupes verifies that duplicate specs in one Prefetch batch
// run exactly once.
func TestPrefetchDedupes(t *testing.T) {
	s := NewSuite(Options{Seed: 1, Ops: 30, Parallel: 4})
	spec := RunSpec{Bench: "LL", Pattern: workloads.All, Tx: true, Core: InOrder}
	if err := s.Prefetch([]RunSpec{spec, spec, spec, spec}); err != nil {
		t.Fatal(err)
	}
	if n := len(s.cache); n != 1 {
		t.Errorf("cache holds %d entries after prefetching 4 copies of one spec, want 1", n)
	}
}

// TestProgressSerialized checks the progress callback is never invoked
// concurrently during a parallel prefetch: each invocation holds a flag for
// a moment, and a second invocation arriving meanwhile counts as an overlap.
func TestProgressSerialized(t *testing.T) {
	var active, overlaps atomic.Int32
	opts := Options{Seed: 1, Ops: 30, Parallel: 8, Progress: func(string) {
		if !active.CompareAndSwap(0, 1) {
			overlaps.Add(1)
			return
		}
		time.Sleep(2 * time.Millisecond)
		active.Store(0)
	}}
	s := NewSuite(opts)
	var specs []RunSpec
	for i, bench := range MicroBenches {
		specs = append(specs, RunSpec{Bench: bench, Pattern: workloads.All, Tx: i%2 == 0, Core: InOrder})
	}
	if err := s.Prefetch(specs); err != nil {
		t.Fatal(err)
	}
	if n := overlaps.Load(); n != 0 {
		t.Errorf("progress callback overlapped %d times", n)
	}
}
