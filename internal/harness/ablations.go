package harness

import (
	"fmt"

	"potgo/internal/stats"
	"potgo/internal/workloads"
)

// Ablations beyond the paper's own sensitivity studies, quantifying two of
// its design assumptions (DESIGN.md §5):
//
//   - the POLB is a fully-associative CAM — how much does associativity
//     matter at the same capacity?
//   - the POT walk costs a fixed 30 cycles — the paper calls this
//     pessimistic since POT entries cache well; the probe-accurate model
//     charges each probed entry as a real memory access.

// ablationAssocGeoms are the POLB geometries compared at a fixed 32-entry
// capacity: the paper's CAM, then 4-way and 1-way (direct-mapped) variants.
var ablationAssocGeoms = []struct {
	name string
	sets int
}{
	{"CAM (full)", 1},
	{"4-way", 8},
	{"direct", 32},
}

// AblationAssoc compares POLB associativities at the paper's 32-entry
// capacity on the EACH pattern (the highest-contention pattern), in-order,
// Pipelined design.
func (s *Suite) AblationAssoc() (Report, error) {
	tb := stats.NewTable("Ablation — POLB associativity at 32 entries (EACH, in-order, Pipelined)",
		"Bench", "CAM speedup", "4-way speedup", "direct speedup", "CAM miss", "4-way miss", "direct miss")
	values := map[string]float64{}
	for _, bench := range MicroBenches {
		baseSpec, pipeSpec, _, _ := fig9Specs(bench, workloads.Each, InOrder)
		base, err := s.Get(baseSpec)
		if err != nil {
			return Report{}, err
		}
		var speeds, misses []string
		for _, g := range ablationAssocGeoms {
			spec := pipeSpec
			spec.POLBSets = g.sets
			r, err := s.Get(spec)
			if err != nil {
				return Report{}, err
			}
			sp, err := speedup(base, r)
			if err != nil {
				return Report{}, err
			}
			speeds = append(speeds, stats.F(sp))
			misses = append(misses, stats.Pct(r.CPU.POLB.MissRate()))
			values[fmt.Sprintf("%s_sets%d_speedup", bench, g.sets)] = sp
			values[fmt.Sprintf("%s_sets%d_miss", bench, g.sets)] = r.CPU.POLB.MissRate()
		}
		tb.AddRow(append(append([]string{bench}, speeds...), misses...)...)
	}
	return Report{
		ID:     "ablation-assoc",
		Title:  "Ablation — POLB associativity",
		Text:   tb.Render(),
		Values: values,
	}, nil
}

// AblationPOT addresses the paper's §8 future-work question — how the POT's
// size interacts with programs that open many pools — by running the EACH
// pattern (one pool per node, hundreds to thousands of pools) against
// shrinking POT capacities with the probe-accurate walk model, so growing
// probe chains in a crowded table show up as real cycles. The paper's
// 16384-entry default keeps occupancy low; a crowded table clusters and
// probes get longer.
// ablationPOTSizes are the AblationPOT capacities. The smallest size still
// holds every pool the EACH pattern creates at paper scale (~5000 for the
// tree workloads), but at >50% occupancy, where linear-probe chains grow.
var ablationPOTSizes = []int{8192, 16384, 65536}

func (s *Suite) AblationPOT() (Report, error) {
	sizes := ablationPOTSizes
	tb := stats.NewTable("Ablation — POT capacity under EACH (probe-accurate walk, in-order, Pipelined)",
		"Bench", "pools", "POT 8192", "POT 16384 (paper)", "POT 65536")
	values := map[string]float64{}
	for _, bench := range MicroBenches {
		baseSpec, pipeSpec, _, _ := fig9Specs(bench, workloads.Each, InOrder)
		base, err := s.Get(baseSpec)
		if err != nil {
			return Report{}, err
		}
		cells := []string{bench, fmt.Sprintf("%d", base.Pools)}
		for _, size := range sizes {
			spec := pipeSpec
			spec.ProbeWalk = true
			spec.POTEntries = size
			r, err := s.Get(spec)
			if err != nil {
				return Report{}, err
			}
			sp, err := speedup(base, r)
			if err != nil {
				return Report{}, err
			}
			cells = append(cells, stats.F(sp))
			values[fmt.Sprintf("%s_pot%d", bench, size)] = sp
		}
		tb.AddRow(cells...)
	}
	return Report{
		ID:     "ablation-pot",
		Title:  "Ablation — POT capacity (paper §8 future work)",
		Text:   tb.Render(),
		Values: values,
	}, nil
}

// AblationWalk compares the paper's fixed 30-cycle POT walk against the
// probe-accurate model (each probed POT entry charged as a cached memory
// access) on the EACH pattern, where POLB misses are frequent.
func (s *Suite) AblationWalk() (Report, error) {
	tb := stats.NewTable("Ablation — POT walk model (EACH, in-order, Pipelined)",
		"Bench", "fixed 30cy", "probe-accurate", "delta")
	values := map[string]float64{}
	for _, bench := range MicroBenches {
		baseSpec, pipeSpec, _, _ := fig9Specs(bench, workloads.Each, InOrder)
		base, err := s.Get(baseSpec)
		if err != nil {
			return Report{}, err
		}
		fixed, err := s.Get(pipeSpec)
		if err != nil {
			return Report{}, err
		}
		probeSpec := pipeSpec
		probeSpec.ProbeWalk = true
		probe, err := s.Get(probeSpec)
		if err != nil {
			return Report{}, err
		}
		spFixed, err := speedup(base, fixed)
		if err != nil {
			return Report{}, err
		}
		spProbe, err := speedup(base, probe)
		if err != nil {
			return Report{}, err
		}
		tb.AddRow(bench, stats.F(spFixed), stats.F(spProbe),
			fmt.Sprintf("%+.1f%%", 100*(spProbe/spFixed-1)))
		values[bench+"_fixed"] = spFixed
		values[bench+"_probe"] = spProbe
	}
	return Report{
		ID:     "ablation-walk",
		Title:  "Ablation — POT walk latency model",
		Text:   tb.Render(),
		Values: values,
	}, nil
}

// FixedCmp compares the paper's OPT hardware against the FIXED baseline of
// its introduction — Mnemosyne-style persistent segments at fixed virtual
// addresses, dereferenced through raw pointers with no translation of any
// kind. FIXED is the performance upper bound, but it forfeits relocation
// and Address Space Layout Randomization for persistent data; the paper's
// argument is that hardware ObjectID translation recovers (nearly) FIXED
// performance while keeping both. Run on the RANDOM pattern, in-order core.
func (s *Suite) FixedCmp() (Report, error) {
	tb := stats.NewTable("OPT vs FIXED (no-translation, no-ASLR) — RANDOM, in-order; speedups over BASE",
		"Bench", "OPT (Pipelined)", "FIXED (raw pointers)", "OPT recovers")
	values := map[string]float64{}
	var ratios []float64
	for _, bench := range MicroBenches {
		baseSpec, pipeSpec, _, _ := fig9Specs(bench, workloads.Random, InOrder)
		base, err := s.Get(baseSpec)
		if err != nil {
			return Report{}, err
		}
		opt, err := s.Get(pipeSpec)
		if err != nil {
			return Report{}, err
		}
		fixedSpec := baseSpec
		fixedSpec.FixedMap = true
		fixed, err := s.Get(fixedSpec)
		if err != nil {
			return Report{}, err
		}
		spOpt, err := speedup(base, opt)
		if err != nil {
			return Report{}, err
		}
		spFixed, err := speedup(base, fixed)
		if err != nil {
			return Report{}, err
		}
		recovered := spOpt / spFixed
		tb.AddRow(bench, stats.F(spOpt), stats.F(spFixed), stats.Pct(recovered))
		values[bench+"_opt"] = spOpt
		values[bench+"_fixed"] = spFixed
		values[bench+"_recovered"] = recovered
		ratios = append(ratios, recovered)
	}
	g := stats.GeoMean(ratios)
	tb.AddRow("GeoMean", "", "", stats.Pct(g))
	values["geomean_recovered"] = g
	return Report{
		ID:     "fixedcmp",
		Title:  "OPT vs FIXED baseline (Mnemosyne-style, no ASLR)",
		Text:   tb.Render(),
		Values: values,
	}, nil
}

// CPIStack renders where cycles go for the BASE and OPT configurations on
// the RANDOM pattern (in-order core) — making visible what the speedup is
// made of: BASE burns its cycles in translation *instructions* (counted
// here under compute, since software translation is ordinary code) and the
// cache/TLB pressure they add, while OPT shifts a small share into explicit
// hardware-translation stalls.
func (s *Suite) CPIStack() (Report, error) {
	tb := stats.NewTable("Cycle breakdown (RANDOM, in-order) — compute/branch/memory/translation %",
		"Bench", "Config", "Cycles", "Compute", "Branch", "Memory", "Translate")
	values := map[string]float64{}
	for _, bench := range MicroBenches {
		baseSpec, pipeSpec, _, _ := fig9Specs(bench, workloads.Random, InOrder)
		for _, cfg := range []struct {
			name string
			spec RunSpec
		}{{"BASE", baseSpec}, {"OPT", pipeSpec}} {
			r, err := s.Get(cfg.spec)
			if err != nil {
				return Report{}, err
			}
			st := r.CPU.CPIStack()
			total := float64(r.CPU.Cycles)
			pct := func(v uint64) string { return stats.Pct(float64(v) / total) }
			tb.AddRow(bench, cfg.name, fmt.Sprintf("%d", r.CPU.Cycles),
				pct(st.Compute), pct(st.Branch), pct(st.Memory), pct(st.Translation))
			values[bench+"_"+cfg.name+"_mem_frac"] = float64(st.Memory) / total
			values[bench+"_"+cfg.name+"_trans_frac"] = float64(st.Translation) / total
		}
	}
	return Report{
		ID:     "cpistack",
		Title:  "Cycle breakdown (CPI stack)",
		Text:   tb.Render(),
		Values: values,
	}, nil
}

// AblationPrefetch asks whether a simple L1 next-line prefetcher changes
// the BASE-vs-OPT picture: software translation's table walks and the
// workloads' node traversals are pointer-chase-heavy, which next-line
// prefetching barely helps, so the paper's conclusions should be robust to
// it. RANDOM pattern, in-order core.
func (s *Suite) AblationPrefetch() (Report, error) {
	tb := stats.NewTable("Ablation — L1 next-line prefetcher (RANDOM, in-order)",
		"Bench", "speedup no-PF", "speedup PF", "BASE gain", "OPT gain")
	values := map[string]float64{}
	for _, bench := range MicroBenches {
		baseSpec, pipeSpec, _, _ := fig9Specs(bench, workloads.Random, InOrder)
		base, err := s.Get(baseSpec)
		if err != nil {
			return Report{}, err
		}
		opt, err := s.Get(pipeSpec)
		if err != nil {
			return Report{}, err
		}
		basePF, pipePF := baseSpec, pipeSpec
		basePF.Prefetch, pipePF.Prefetch = true, true
		bp, err := s.Get(basePF)
		if err != nil {
			return Report{}, err
		}
		op, err := s.Get(pipePF)
		if err != nil {
			return Report{}, err
		}
		spNo, err := speedup(base, opt)
		if err != nil {
			return Report{}, err
		}
		spPF, err := speedup(bp, op)
		if err != nil {
			return Report{}, err
		}
		baseGain := float64(base.CPU.Cycles) / float64(bp.CPU.Cycles)
		optGain := float64(opt.CPU.Cycles) / float64(op.CPU.Cycles)
		tb.AddRow(bench, stats.F(spNo), stats.F(spPF),
			fmt.Sprintf("%+.1f%%", 100*(baseGain-1)), fmt.Sprintf("%+.1f%%", 100*(optGain-1)))
		values[bench+"_speedup_nopf"] = spNo
		values[bench+"_speedup_pf"] = spPF
	}
	return Report{
		ID:     "ablation-prefetch",
		Title:  "Ablation — next-line prefetcher",
		Text:   tb.Render(),
		Values: values,
	}, nil
}
