package harness

import (
	"errors"
	"path/filepath"
	"testing"
)

func crashRec(sha string) CrashRecord {
	return CrashRecord{
		Timestamp: "2026-01-01T00:00:00Z",
		GitSHA:    sha,
		Seed:      1,
		Ops:       12,
		MaxPoints: 48,
		Policies:  []string{"drop-all", "torn"},
		Targets:   []string{"list", "bst"},
		Cases:     96,
	}
}

func TestAppendCrashRecordRefusesDuplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_crash.json")
	if err := AppendCrashRecord(path, crashRec("abc123")); err != nil {
		t.Fatal(err)
	}
	if err := AppendCrashRecord(path, crashRec("abc123")); !errors.Is(err, ErrDuplicateCrashRecord) {
		t.Fatalf("second append: got %v, want ErrDuplicateCrashRecord", err)
	}
	// A different configuration of the same tree is a new measurement.
	diff := crashRec("abc123")
	diff.Seed = 2
	if err := AppendCrashRecord(path, diff); err != nil {
		t.Fatal(err)
	}
	diffT := crashRec("abc123")
	diffT.Targets = []string{"rbt"}
	if err := AppendCrashRecord(path, diffT); err != nil {
		t.Fatal(err)
	}
	// Dirty trees are exempt.
	for i := 0; i < 2; i++ {
		if err := AppendCrashRecord(path, crashRec("abc123-dirty")); err != nil {
			t.Fatal(err)
		}
	}
	// Unknown trees are exempt.
	for i := 0; i < 2; i++ {
		if err := AppendCrashRecord(path, crashRec("")); err != nil {
			t.Fatal(err)
		}
	}
}
