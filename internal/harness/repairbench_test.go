package harness

import (
	"path/filepath"
	"testing"
)

// TestMeasureFTOverhead runs a micro and TPC-C at test scale over plain
// and fault-tolerant pools: both must complete, agree functionally, and
// report positive per-op times for both sides of each pair.
func TestMeasureFTOverhead(t *testing.T) {
	rows, err := MeasureFTOverhead([]string{"LL", "B+T", TPCCBench}, 60, 20, 6)
	if err != nil {
		t.Fatalf("MeasureFTOverhead: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		if r.PlainNs <= 0 || r.FTNs <= 0 {
			t.Errorf("%s: non-positive timing %+v", r.Bench, r)
		}
		if r.Ops <= 0 {
			t.Errorf("%s: ops = %d", r.Bench, r.Ops)
		}
	}
}

// TestMeasureFTOverheadValidates rejects non-positive op counts and
// unknown benches.
func TestMeasureFTOverheadValidates(t *testing.T) {
	if _, err := MeasureFTOverhead(nil, 0, 10, 1); err == nil {
		t.Error("ops=0 must fail")
	}
	if _, err := MeasureFTOverhead([]string{"NOPE"}, 10, 10, 1); err == nil {
		t.Error("unknown bench must fail")
	}
}

// TestRepairRecordWorkloadsRoundTrip appends a record carrying the
// workload overhead rows and reads it back through the duplicate check.
func TestRepairRecordWorkloadsRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_repair.json")
	rec := RepairRecord{
		Timestamp: "2026-01-01T00:00:00Z",
		GitSHA:    "abc123",
		Seed:      9,
		K:         2,
		Mode:      "ft-overhead",
		Workloads: []FTBenchOverhead{{Bench: "LL", Ops: 100, PlainNs: 10, FTNs: 12}},
	}
	if err := AppendRepairRecord(path, rec); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := AppendRepairRecord(path, rec); err == nil {
		t.Fatal("duplicate config must be refused")
	}
	if got := rec.Workloads[0].Overhead(); got < 0.19 || got > 0.21 {
		t.Errorf("Overhead() = %v, want 0.2", got)
	}
}
