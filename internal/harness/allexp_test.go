package harness

import (
	"strings"
	"testing"
)

// TestAllExperimentsRender runs every registered experiment end-to-end at
// tiny scale and checks each produces a non-empty report with values — the
// regression net under cmd/experiments.
func TestAllExperimentsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole experiment grid")
	}
	s := NewSuite(Options{Seed: 6, Ops: 60, SkipTPCC: true})
	for _, id := range ExperimentIDs {
		rep, err := s.RunExperiment(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if rep.ID != id {
			t.Errorf("%s: id mismatch %q", id, rep.ID)
		}
		if strings.TrimSpace(rep.Text) == "" {
			t.Errorf("%s: empty report", id)
		}
		if len(rep.Values) == 0 {
			t.Errorf("%s: no headline values", id)
		}
		if rep.Title == "" {
			t.Errorf("%s: no title", id)
		}
	}
}
