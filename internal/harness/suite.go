package harness

import (
	"fmt"
	"sync"
	"sync/atomic"

	"potgo/internal/obs"
	"potgo/internal/tpcc"
)

// Options configures an experiment suite.
type Options struct {
	// Seed drives all randomness (default 1).
	Seed int64
	// Ops overrides every microbenchmark's operation count (0 = the
	// paper's Table 5 counts). Used for quick runs and tests.
	Ops int
	// TPCCOps overrides the TPC-C transaction count (0 = the paper's
	// 1000).
	TPCCOps int
	// TPCC overrides the TPC-C cardinalities (nil = full spec scale).
	TPCC *tpcc.Config
	// SkipTPCC drops the TPC-C rows from experiments that include them.
	SkipTPCC bool
	// Parallel bounds the number of concurrent simulations during
	// Prefetch (default 1). Each run is single-threaded, self-contained
	// (its own vm.AddressSpace and seeded PRNGs) and CPU-bound, so
	// results are bit-identical at any Parallel value.
	Parallel int
	// Progress, when non-nil, receives a line per completed run. Calls
	// are serialized even when runs complete concurrently.
	Progress func(string)
	// Obs, when non-nil, receives every fresh run's end-of-run metrics
	// plus the suite's own counters (harness.runs, harness.cache_hits,
	// harness.runs_planned). Memoized runs publish nothing — their
	// statistics are already in the registry.
	Obs *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	return o
}

// Suite memoizes simulation runs so experiments that share configurations
// (Figure 9 and Table 8; Figure 11 and the BASE columns) execute them once.
type Suite struct {
	opts   Options
	mu     sync.Mutex
	cache  map[string]RunResult
	progMu sync.Mutex
	insns  atomic.Uint64
}

// NewSuite builds a suite.
func NewSuite(opts Options) *Suite {
	return &Suite{opts: opts.withDefaults(), cache: make(map[string]RunResult)}
}

// Options returns the suite's options (with defaults applied).
func (s *Suite) Options() Options { return s.opts }

// SimulatedInstructions returns the total number of instructions simulated
// by fresh (non-memoized) runs so far — the numerator of the simulator's
// throughput in simulated MIPS.
func (s *Suite) SimulatedInstructions() uint64 { return s.insns.Load() }

// finish applies suite-wide option overrides to a spec.
func (s *Suite) finish(spec RunSpec) RunSpec {
	spec.Seed = s.opts.Seed
	if spec.Bench == TPCCBench {
		if spec.Ops == 0 {
			spec.Ops = s.opts.TPCCOps
		}
		spec.TPCC = s.opts.TPCC
	} else if spec.Ops == 0 {
		spec.Ops = s.opts.Ops
	}
	return spec
}

func key(spec RunSpec) string {
	return fmt.Sprintf("%s|polb=%d/%d|walk=%d|probe=%t|pf=%t|pot=%d|ops=%d|seed=%d",
		spec.Label(), spec.POLBSize, spec.POLBSets, spec.POTWalk, spec.ProbeWalk, spec.Prefetch, spec.POTEntries, spec.Ops, spec.Seed)
}

// Get runs (or returns the cached result of) one spec.
func (s *Suite) Get(spec RunSpec) (RunResult, error) {
	spec = s.finish(spec)
	k := key(spec)
	s.mu.Lock()
	if r, ok := s.cache[k]; ok {
		s.mu.Unlock()
		s.opts.Obs.Counter("harness.cache_hits").Inc()
		return r, nil
	}
	s.mu.Unlock()
	r, err := RunObserved(spec, RunObs{Metrics: s.opts.Obs})
	if err != nil {
		return RunResult{}, err
	}
	s.insns.Add(r.CPU.Instructions)
	if s.opts.Progress != nil {
		s.progMu.Lock()
		s.opts.Progress(fmt.Sprintf("%-44s cycles=%-12d insns=%-11d polbMiss=%5.2f%%",
			spec.Label(), r.CPU.Cycles, r.CPU.Instructions, 100*r.CPU.POLB.MissRate()))
		s.progMu.Unlock()
	}
	s.mu.Lock()
	s.cache[k] = r
	s.mu.Unlock()
	return r, nil
}

// Prefetch runs all uncached specs on a bounded pool of Options.Parallel
// workers, then returns the first error in spec order (deterministic no
// matter which worker failed first). Specs that finish() to the same
// configuration are deduplicated up front so the pool never runs the same
// simulation twice.
func (s *Suite) Prefetch(specs []RunSpec) error {
	seen := make(map[string]struct{}, len(specs))
	uniq := specs[:0:0]
	for _, spec := range specs {
		k := key(s.finish(spec))
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		uniq = append(uniq, spec)
	}
	s.opts.Obs.Counter("harness.runs_planned").Add(uint64(len(uniq)))
	workers := s.opts.Parallel
	if workers > len(uniq) {
		workers = len(uniq)
	}
	if workers < 1 {
		workers = 1
	}
	work := make(chan int)
	errs := make([]error, len(uniq))
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if _, err := s.Get(uniq[i]); err != nil {
					errs[i] = err
				}
			}
		}()
	}
	for i := range uniq {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// speedup returns base cycles / variant cycles, verifying that the two runs
// computed the same functional result.
func speedup(base, variant RunResult) (float64, error) {
	if base.Checksum != variant.Checksum {
		return 0, fmt.Errorf("harness: %s vs %s: checksum mismatch %#x vs %#x (functional divergence)",
			base.Spec.Label(), variant.Spec.Label(), base.Checksum, variant.Checksum)
	}
	if variant.CPU.Cycles == 0 {
		return 0, fmt.Errorf("harness: %s: zero cycles", variant.Spec.Label())
	}
	return float64(base.CPU.Cycles) / float64(variant.CPU.Cycles), nil
}
