package harness

import (
	"potgo/internal/core"
	"potgo/internal/obs"
	"potgo/internal/pmem"
)

// RunObs bundles the observability sinks a run can feed. The zero value
// disables everything; each field is independent.
type RunObs struct {
	// Metrics, when non-nil, receives the run's end-of-run statistics
	// (cpu.*, mem.*, core.*, polb.*, pot.*, pmem.*, emit.*, harness.*).
	Metrics *obs.Registry
	// Trace, when non-nil, receives sampled per-instruction pipeline
	// timestamps on the simulated-time track.
	Trace *obs.TraceWriter
	// TraceEvery samples one instruction in N for the pipeline trace
	// (<= 1 = every instruction).
	TraceEvery int
}

// publish pushes one completed run's statistics into the registry. All
// counters aggregate across runs sharing a registry; gauges reflect the
// most recently published run. tr and h may be nil (BASE runs have no
// translator; functional runs always have a heap, timed runs one unless
// setup failed).
func (r RunResult) publish(reg *obs.Registry, tr *core.Translator, h *pmem.Heap) {
	if reg == nil {
		return
	}
	coreName := "inorder"
	if r.Spec.Core == OutOfOrder {
		coreName = "ooo"
	}
	r.CPU.PublishMetrics(reg, coreName)
	if tr != nil {
		tr.PublishMetrics(reg)
	}
	if h != nil {
		h.PublishMetrics(reg)
	}
	if r.Soft.Calls > 0 {
		r.Soft.PublishMetrics(reg)
	}
	reg.Counter("harness.runs").Inc()
	reg.Counter("harness.simulated_instructions").Add(r.CPU.Instructions)
	reg.Histogram("harness.run_instructions", runInsnBounds...).Observe(float64(r.CPU.Instructions))
	if r.CPU.Cycles > 0 {
		reg.Histogram("harness.run_ipc", runIPCBounds...).Observe(r.CPU.IPC())
	}
}

// Fixed bucket bounds for the per-run histograms: instruction counts on a
// decade scale, IPC on a linear scale around the models' operating range.
var (
	runInsnBounds = []float64{1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	runIPCBounds  = []float64{0.1, 0.2, 0.35, 0.5, 0.75, 1, 1.5, 2, 3}
)
