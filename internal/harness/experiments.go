package harness

import (
	"fmt"
	"strings"

	"potgo/internal/polb"
	"potgo/internal/stats"
	"potgo/internal/workloads"
)

// Report is one reproduced table or figure.
type Report struct {
	// ID names the experiment ("table2", "fig9a", ...).
	ID string
	// Title is the paper reference.
	Title string
	// Text is the rendered table / ASCII chart.
	Text string
	// Values holds headline numbers keyed by short names, for tests and
	// the paper-vs-measured summary in EXPERIMENTS.md.
	Values map[string]float64
}

var patterns = []workloads.Pattern{workloads.All, workloads.Each, workloads.Random}

// Table2 reproduces paper Table 2: average dynamic instructions spent in
// oid_direct under the ALL and EACH patterns, and the last-value predictor
// miss rate under EACH. Purely functional (no timing model needed).
func (s *Suite) Table2() (Report, error) {
	tb := stats.NewTable("Table 2: instructions executed in oid_direct (BASE)",
		"Bench", "Insns on ALL", "Insns on EACH", "Miss on recent (EACH)")
	var allCols, eachCols, missCols []float64
	for _, bench := range MicroBenches {
		all, err := RunFunctionalObserved(s.finish(RunSpec{Bench: bench, Pattern: workloads.All, Tx: true}), s.opts.Obs)
		if err != nil {
			return Report{}, err
		}
		each, err := RunFunctionalObserved(s.finish(RunSpec{Bench: bench, Pattern: workloads.Each, Tx: true}), s.opts.Obs)
		if err != nil {
			return Report{}, err
		}
		tb.AddRow(bench,
			fmt.Sprintf("%.1f", all.Soft.InsnsPerCall()),
			fmt.Sprintf("%.1f", each.Soft.InsnsPerCall()),
			stats.Pct(each.Soft.PredictorMissRate()))
		allCols = append(allCols, all.Soft.InsnsPerCall())
		eachCols = append(eachCols, each.Soft.InsnsPerCall())
		missCols = append(missCols, each.Soft.PredictorMissRate())
	}
	gAll, gEach, gMiss := stats.GeoMean(allCols), stats.GeoMean(eachCols), stats.GeoMean(missCols)
	tb.AddRow("GeoMean", fmt.Sprintf("%.1f", gAll), fmt.Sprintf("%.1f", gEach), stats.Pct(gMiss))
	return Report{
		ID:    "table2",
		Title: "Table 2 — software translation cost",
		Text:  tb.Render(),
		Values: map[string]float64{
			"geomean_insns_all":  gAll,
			"geomean_insns_each": gEach,
			"geomean_miss_each":  gMiss,
		},
	}, nil
}

// fig9Specs builds the (BASE, Pipelined, Parallel, Ideal) quadruple for one
// benchmark/pattern on one core.
func fig9Specs(bench string, pat workloads.Pattern, kind CoreKind) (base, pipe, par, ideal RunSpec) {
	base = RunSpec{Bench: bench, Pattern: pat, Tx: true, Core: kind}
	pipe = base
	pipe.Opt, pipe.Design = true, polb.Pipelined
	par = base
	par.Opt, par.Design = true, polb.Parallel
	ideal = pipe
	ideal.Ideal = true
	return
}

// Fig9a reproduces paper Figure 9(a): speedup of OPT over BASE on the
// in-order core for every benchmark and pattern, on both POLB designs, with
// the ideal (zero-cost translation) bound, plus the TPC-C rows.
func (s *Suite) Fig9a() (Report, error) {
	return s.fig9(InOrder, "fig9a", "Figure 9(a) — OPT/BASE speedup, in-order", true)
}

// Fig9b reproduces paper Figure 9(b): the same on the out-of-order core
// (Pipelined only — the paper's §4.3 explains Parallel is not built for
// out-of-order cores).
func (s *Suite) Fig9b() (Report, error) {
	return s.fig9(OutOfOrder, "fig9b", "Figure 9(b) — OPT/BASE speedup, out-of-order", false)
}

func (s *Suite) fig9(kind CoreKind, id, title string, withParallel bool) (Report, error) {
	header := []string{"Bench", "Pattern", "Pipelined", "Ideal"}
	if withParallel {
		header = []string{"Bench", "Pattern", "Pipelined", "Parallel", "Ideal"}
	}
	tb := stats.NewTable(title+"  (bars: speedup, scale 0..3x)", header...)
	values := map[string]float64{}
	perPattern := map[workloads.Pattern][]float64{}
	perPatternPar := map[workloads.Pattern][]float64{}

	addRows := func(bench string, pats []workloads.Pattern) error {
		for _, pat := range pats {
			baseSpec, pipeSpec, parSpec, idealSpec := fig9Specs(bench, pat, kind)
			base, err := s.Get(baseSpec)
			if err != nil {
				return err
			}
			pipe, err := s.Get(pipeSpec)
			if err != nil {
				return err
			}
			spPipe, err := speedup(base, pipe)
			if err != nil {
				return err
			}
			ideal, err := s.Get(idealSpec)
			if err != nil {
				return err
			}
			spIdeal, err := speedup(base, ideal)
			if err != nil {
				return err
			}
			row := []string{bench, pat.String(), stats.Bar(spPipe, 3, 18)}
			if withParallel {
				par, err := s.Get(parSpec)
				if err != nil {
					return err
				}
				spPar, err := speedup(base, par)
				if err != nil {
					return err
				}
				row = append(row, stats.Bar(spPar, 3, 18))
				values[fmt.Sprintf("%s_%s_parallel", bench, pat)] = spPar
				if bench != TPCCBench {
					perPatternPar[pat] = append(perPatternPar[pat], spPar)
				}
			}
			row = append(row, stats.F(spIdeal))
			tb.AddRow(row...)
			values[fmt.Sprintf("%s_%s_pipelined", bench, pat)] = spPipe
			if bench != TPCCBench {
				perPattern[pat] = append(perPattern[pat], spPipe)
			}
		}
		return nil
	}

	for _, bench := range MicroBenches {
		if err := addRows(bench, patterns); err != nil {
			return Report{}, err
		}
	}
	for _, pat := range patterns {
		g := stats.GeoMean(perPattern[pat])
		row := []string{"GeoMean", pat.String(), stats.F(g)}
		values["geomean_"+strings.ToLower(pat.String())+"_pipelined"] = g
		if withParallel {
			gp := stats.GeoMean(perPatternPar[pat])
			row = append(row, stats.F(gp))
			values["geomean_"+strings.ToLower(pat.String())+"_parallel"] = gp
		}
		tb.AddRow(row...)
	}
	if !s.opts.SkipTPCC {
		if err := addRows(TPCCBench, []workloads.Pattern{workloads.All, workloads.Each}); err != nil {
			return Report{}, err
		}
	}
	return Report{ID: id, Title: title, Text: tb.Render(), Values: values}, nil
}

// Table8 reproduces paper Table 8: POLB miss rates of the OPT benchmarks —
// the Parallel design across all three patterns and the Pipelined design on
// EACH (ALL and RANDOM only miss during warm-up under Pipelined).
func (s *Suite) Table8() (Report, error) {
	tb := stats.NewTable("Table 8: POLB miss rate (OPT, in-order)",
		"Bench", "Parallel ALL", "Parallel EACH", "Parallel RANDOM", "Pipelined EACH")
	values := map[string]float64{}
	row := func(bench string, pats []workloads.Pattern) error {
		cells := []string{bench}
		for _, pat := range pats {
			_, _, parSpec, _ := fig9Specs(bench, pat, InOrder)
			par, err := s.Get(parSpec)
			if err != nil {
				return err
			}
			cells = append(cells, stats.Pct(par.CPU.POLB.MissRate()))
			values[fmt.Sprintf("%s_%s_parallel_miss", bench, pat)] = par.CPU.POLB.MissRate()
		}
		for len(cells) < 4 {
			cells = append(cells, "-")
		}
		_, pipeSpec, _, _ := fig9Specs(bench, workloads.Each, InOrder)
		pipe, err := s.Get(pipeSpec)
		if err != nil {
			return err
		}
		cells = append(cells, stats.Pct(pipe.CPU.POLB.MissRate()))
		values[bench+"_each_pipelined_miss"] = pipe.CPU.POLB.MissRate()
		tb.AddRow(cells...)
		return nil
	}
	for _, bench := range MicroBenches {
		if err := row(bench, patterns); err != nil {
			return Report{}, err
		}
	}
	if !s.opts.SkipTPCC {
		if err := row(TPCCBench, []workloads.Pattern{workloads.All, workloads.Each}); err != nil {
			return Report{}, err
		}
	}
	return Report{ID: "table8", Title: "Table 8 — POLB miss rates (OPT)", Text: tb.Render(), Values: values}, nil
}

// Fig10 reproduces paper Figure 10: OPT_NTX speedup over BASE_NTX (no
// failure-safety or durability support) on the in-order core, both designs.
func (s *Suite) Fig10() (Report, error) {
	tb := stats.NewTable("Figure 10 — OPT_NTX/BASE_NTX speedup, in-order (bars: scale 0..3x)",
		"Bench", "Pattern", "Pipelined", "Parallel")
	values := map[string]float64{}
	perPattern := map[workloads.Pattern][]float64{}
	for _, bench := range MicroBenches {
		for _, pat := range patterns {
			baseSpec, pipeSpec, parSpec, _ := fig9Specs(bench, pat, InOrder)
			baseSpec.Tx, pipeSpec.Tx, parSpec.Tx = false, false, false
			base, err := s.Get(baseSpec)
			if err != nil {
				return Report{}, err
			}
			pipe, err := s.Get(pipeSpec)
			if err != nil {
				return Report{}, err
			}
			par, err := s.Get(parSpec)
			if err != nil {
				return Report{}, err
			}
			spPipe, err := speedup(base, pipe)
			if err != nil {
				return Report{}, err
			}
			spPar, err := speedup(base, par)
			if err != nil {
				return Report{}, err
			}
			tb.AddRow(bench, pat.String(), stats.Bar(spPipe, 3, 18), stats.Bar(spPar, 3, 18))
			values[fmt.Sprintf("%s_%s_pipelined_ntx", bench, pat)] = spPipe
			values[fmt.Sprintf("%s_%s_parallel_ntx", bench, pat)] = spPar
			perPattern[pat] = append(perPattern[pat], spPipe)
		}
	}
	for _, pat := range patterns {
		values["geomean_"+strings.ToLower(pat.String())+"_pipelined_ntx"] = stats.GeoMean(perPattern[pat])
	}
	return Report{ID: "fig10", Title: "Figure 10 — no-TX speedups", Text: tb.Render(), Values: values}, nil
}

// polbSweepSizes are the Figure 11 POLB sizes; -1 encodes "no POLB".
var polbSweepSizes = []int{-1, 1, 4, 32, 128}

// Fig11 reproduces paper Figure 11: sensitivity of the OPT/BASE speedup to
// POLB size on the RANDOM pattern (32 pools by construction), in-order,
// both designs.
func (s *Suite) Fig11() (Report, error) {
	tb := stats.NewTable("Figure 11 — speedup vs POLB size (RANDOM, in-order)",
		"Bench", "Design", "no POLB", "1", "4", "32", "128")
	values := map[string]float64{}
	for _, bench := range MicroBenches {
		baseSpec, pipeSpec, parSpec, _ := fig9Specs(bench, workloads.Random, InOrder)
		base, err := s.Get(baseSpec)
		if err != nil {
			return Report{}, err
		}
		for _, d := range []struct {
			name string
			spec RunSpec
		}{{"Pipelined", pipeSpec}, {"Parallel", parSpec}} {
			cells := []string{bench, d.name}
			for _, size := range polbSweepSizes {
				spec := d.spec
				spec.POLBSize = size
				r, err := s.Get(spec)
				if err != nil {
					return Report{}, err
				}
				sp, err := speedup(base, r)
				if err != nil {
					return Report{}, err
				}
				cells = append(cells, stats.F(sp))
				values[fmt.Sprintf("%s_%s_size%d", bench, d.name, size)] = sp
			}
			tb.AddRow(cells...)
		}
	}
	return Report{ID: "fig11", Title: "Figure 11 — POLB size sensitivity", Text: tb.Render(), Values: values}, nil
}

// Table9 reproduces paper Table 9: POLB miss rates on OPT_NTX with the
// RANDOM pattern while sweeping the POLB size, for both designs.
// table9Sizes are the Table 9 POLB capacities.
var table9Sizes = []int{1, 4, 32, 128}

func (s *Suite) Table9() (Report, error) {
	sizes := table9Sizes
	tb := stats.NewTable("Table 9: POLB miss rate, OPT_NTX RANDOM",
		"Bench", "Pipe 1", "Pipe 4", "Pipe 32", "Pipe 128", "Par 1", "Par 4", "Par 32", "Par 128")
	values := map[string]float64{}
	for _, bench := range MicroBenches {
		cells := []string{bench}
		for _, design := range []polb.Design{polb.Pipelined, polb.Parallel} {
			for _, size := range sizes {
				spec := RunSpec{
					Bench: bench, Pattern: workloads.Random, Tx: false,
					Core: InOrder, Opt: true, Design: design, POLBSize: size,
				}
				r, err := s.Get(spec)
				if err != nil {
					return Report{}, err
				}
				cells = append(cells, stats.Pct(r.CPU.POLB.MissRate()))
				values[fmt.Sprintf("%s_%s_%d_miss", bench, design, size)] = r.CPU.POLB.MissRate()
			}
		}
		tb.AddRow(cells...)
	}
	return Report{ID: "table9", Title: "Table 9 — POLB size vs miss rate (NTX)", Text: tb.Render(), Values: values}, nil
}

// potSweep are the Figure 12 POT-walk latencies in cycles (0 = free walk).
var potSweep = []int64{0, 10, 30, 100, 300, 500}

// Fig12 reproduces paper Figure 12: sensitivity of the OPT/BASE speedup to
// the POT-walk penalty on the EACH pattern (highest POLB miss rates),
// in-order Pipelined design.
func (s *Suite) Fig12() (Report, error) {
	tb := stats.NewTable("Figure 12 — speedup vs POT-walk penalty (EACH, in-order, Pipelined)",
		"Bench", "ideal(0)", "10", "30", "100", "300", "500")
	values := map[string]float64{}
	for _, bench := range MicroBenches {
		baseSpec, pipeSpec, _, _ := fig9Specs(bench, workloads.Each, InOrder)
		base, err := s.Get(baseSpec)
		if err != nil {
			return Report{}, err
		}
		cells := []string{bench}
		for _, walk := range potSweep {
			spec := pipeSpec
			if walk == 0 {
				spec.POTWalk = -1 // core.ZeroWalk: free walk
			} else {
				spec.POTWalk = walk
			}
			r, err := s.Get(spec)
			if err != nil {
				return Report{}, err
			}
			sp, err := speedup(base, r)
			if err != nil {
				return Report{}, err
			}
			cells = append(cells, stats.F(sp))
			values[fmt.Sprintf("%s_walk%d", bench, walk)] = sp
		}
		tb.AddRow(cells...)
	}
	return Report{ID: "fig12", Title: "Figure 12 — POT-walk sensitivity", Text: tb.Render(), Values: values}, nil
}

// InsnReduction reproduces the paper's dynamic-instruction-count claim
// (§1: hardware translation reduces dynamic instructions by 43.9% on
// average versus software translation).
func (s *Suite) InsnReduction() (Report, error) {
	tb := stats.NewTable("Dynamic instruction reduction, OPT vs BASE",
		"Bench", "ALL", "EACH", "RANDOM")
	var all []float64
	values := map[string]float64{}
	for _, bench := range MicroBenches {
		cells := []string{bench}
		for _, pat := range patterns {
			baseSpec, pipeSpec, _, _ := fig9Specs(bench, pat, InOrder)
			base, err := s.Get(baseSpec)
			if err != nil {
				return Report{}, err
			}
			opt, err := s.Get(pipeSpec)
			if err != nil {
				return Report{}, err
			}
			red := 1 - float64(opt.CPU.Instructions)/float64(base.CPU.Instructions)
			cells = append(cells, stats.Pct(red))
			all = append(all, red)
			values[fmt.Sprintf("%s_%s_reduction", bench, pat)] = red
		}
		tb.AddRow(cells...)
	}
	mean := stats.Mean(all)
	tb.AddRow("Mean", "", stats.Pct(mean), "")
	values["mean_reduction"] = mean
	return Report{ID: "insns", Title: "Dynamic instruction reduction", Text: tb.Render(), Values: values}, nil
}

// ExperimentIDs lists every reproducible experiment in paper order, plus
// the two ablations of DESIGN.md §5.
var ExperimentIDs = []string{"table2", "fig9a", "fig9b", "table8", "fig10", "fig11", "table9", "fig12", "insns", "ablation-assoc", "ablation-walk", "ablation-pot", "fixedcmp", "cpistack", "ablation-prefetch", "recovery"}

// RunExperiment dispatches by id.
func (s *Suite) RunExperiment(id string) (Report, error) {
	switch id {
	case "table2":
		return s.Table2()
	case "fig9a":
		return s.Fig9a()
	case "fig9b":
		return s.Fig9b()
	case "table8":
		return s.Table8()
	case "fig10":
		return s.Fig10()
	case "fig11":
		return s.Fig11()
	case "table9":
		return s.Table9()
	case "fig12":
		return s.Fig12()
	case "insns":
		return s.InsnReduction()
	case "ablation-assoc":
		return s.AblationAssoc()
	case "ablation-walk":
		return s.AblationWalk()
	case "ablation-pot":
		return s.AblationPOT()
	case "fixedcmp":
		return s.FixedCmp()
	case "cpistack":
		return s.CPIStack()
	case "ablation-prefetch":
		return s.AblationPrefetch()
	case "recovery":
		return s.Recovery()
	default:
		return Report{}, fmt.Errorf("harness: unknown experiment %q (have %v)", id, ExperimentIDs)
	}
}
