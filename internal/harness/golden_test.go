package harness

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden experiment snapshots")

// goldenTol is the relative tolerance for golden comparisons. The simulator
// is deterministic — a given spec produces bit-identical results — so the
// tolerance only absorbs floating-point reassociation from refactors that
// change summation order, not real behavioural drift.
const goldenTol = 1e-9

// goldenExperiments are the snapshotted evaluation results: Table 2
// (oid_direct cost), Figures 9(a)/9(b) (speedups on both core models) and
// Table 8 (POLB miss rates).
var goldenExperiments = []string{"table2", "fig9a", "fig9b", "table8"}

// TestGoldenNumbers locks every headline value of the snapshotted
// experiments at a small deterministic scale. Any change to the timing
// models, the library's emitted code, the workloads or the aggregation
// shows up as a numeric diff here; rerun with -update (and review the diff)
// when the change is intended.
func TestGoldenNumbers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (small-scale) experiment grid")
	}
	s := NewSuite(Options{Seed: 6, Ops: 60, SkipTPCC: true})
	for _, id := range goldenExperiments {
		t.Run(id, func(t *testing.T) {
			rep, err := s.RunExperiment(id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			path := filepath.Join("testdata", "golden", id+".json")
			if *updateGolden {
				writeGolden(t, path, rep.Values)
				return
			}
			want := readGolden(t, path)
			compareGolden(t, rep.Values, want)
		})
	}
}

func writeGolden(t *testing.T, path string, values map[string]float64) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(values, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d values)", path, len(values))
}

func readGolden(t *testing.T, path string) map[string]float64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/harness -run TestGoldenNumbers -update` to create it)", err)
	}
	var want map[string]float64
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	return want
}

func compareGolden(t *testing.T, got, want map[string]float64) {
	t.Helper()
	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g, ok := got[k]
		if !ok {
			t.Errorf("missing value %q (golden has %v)", k, want[k])
			continue
		}
		if !withinTol(g, want[k]) {
			t.Errorf("%s = %v, golden %v (rel drift %.3g > %g)",
				k, g, want[k], relDiff(g, want[k]), goldenTol)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("new value %q = %v not in golden (rerun with -update)", k, got[k])
		}
	}
}

func withinTol(got, want float64) bool {
	if math.IsNaN(got) || math.IsNaN(want) {
		return math.IsNaN(got) == math.IsNaN(want)
	}
	return relDiff(got, want) <= goldenTol
}

func relDiff(got, want float64) float64 {
	d := math.Abs(got - want)
	if scale := math.Max(math.Abs(got), math.Abs(want)); scale > 1 {
		return d / scale
	}
	return d
}
