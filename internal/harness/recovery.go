package harness

import (
	"fmt"

	"potgo/internal/emit"
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
	"potgo/internal/stats"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// Recovery measures the cost of crash recovery as a function of how much an
// interrupted transaction had logged, in both translation regimes: recovery
// replays undo records through ObjectIDs (the log stores OIDs precisely
// because pools relocate between the crashed and the recovering process),
// so the hardware accelerates the recovery path exactly as it accelerates
// forward processing. Reported per log size: dynamic instructions and CLWBs
// spent inside Recover, and the BASE/OPT instruction ratio.
func (s *Suite) Recovery() (Report, error) {
	sizes := []int{1, 4, 16, 64, 256}
	tb := stats.NewTable("Recovery cost vs interrupted-transaction size",
		"Undo records", "BASE insns", "OPT insns", "BASE/OPT", "CLWBs")
	values := map[string]float64{}
	for _, n := range sizes {
		baseInsns, _, err := measureRecovery(emit.Base, n, s.opts.Seed)
		if err != nil {
			return Report{}, err
		}
		optInsns, clwbs, err := measureRecovery(emit.Opt, n, s.opts.Seed)
		if err != nil {
			return Report{}, err
		}
		ratio := float64(baseInsns) / float64(optInsns)
		tb.AddRow(fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", baseInsns), fmt.Sprintf("%d", optInsns),
			stats.F(ratio), fmt.Sprintf("%d", clwbs))
		values[fmt.Sprintf("records%d_ratio", n)] = ratio
		values[fmt.Sprintf("records%d_opt_insns", n)] = float64(optInsns)
	}
	return Report{
		ID:     "recovery",
		Title:  "Crash-recovery cost (extension)",
		Text:   tb.Render(),
		Values: values,
	}, nil
}

// measureRecovery crashes a transaction after n undo records and counts the
// instructions a fresh process emits to recover the pool.
func measureRecovery(mode emit.Mode, n int, seed int64) (insns, clwbs uint64, err error) {
	as := vm.NewAddressSpace(seed ^ 0xec0)
	store := pmem.NewStore()

	build := func(sink trace.Sink) (*pmem.Heap, *emit.Emitter, error) {
		em := emit.New(sink, mode)
		var soft *emit.SoftTranslator
		if mode == emit.Base {
			var err error
			if soft, err = emit.NewSoftTranslator(em, as, 1024); err != nil {
				return nil, nil, err
			}
		}
		h, err := pmem.NewHeap(as, store, em, soft)
		return h, em, err
	}

	// Process 1: log n records, then crash.
	h, _, err := build(trace.Discard{})
	if err != nil {
		return 0, 0, err
	}
	pool, err := h.CreateSized("rec", 4<<20, 1<<20)
	if err != nil {
		return 0, 0, err
	}
	oids := make([]oid.OID, n)
	for i := 0; i < n; i++ {
		o, err := h.Alloc(pool, 64)
		if err != nil {
			return 0, 0, err
		}
		oids[i] = o
	}
	if err := h.TxBegin(pool); err != nil {
		return 0, 0, err
	}
	for i := 0; i < n; i++ {
		o := oids[i]
		if err := h.TxAddRange(o, 64); err != nil {
			return 0, 0, err
		}
		ref, err := h.Deref(o, isa.RZ)
		if err != nil {
			return 0, 0, err
		}
		if err := ref.Store64(0, uint64(i)+1000, isa.RZ); err != nil {
			return 0, 0, err
		}
	}
	// CrashClean: this experiment measures log-replay cost in isolation,
	// so the durable image keeps every cache line (the adversarial
	// line-loss policies live in the crash-injection engine instead).
	if err := h.CrashClean(); err != nil {
		return 0, 0, err
	}

	// Process 2: recover, counting emitted work.
	h2, em2, err := build(trace.Discard{})
	if err != nil {
		return 0, 0, err
	}
	pool2, err := h2.Open("rec")
	if err != nil {
		return 0, 0, err
	}
	if !h2.NeedsRecovery(pool2) {
		return 0, 0, fmt.Errorf("harness: recovery experiment: log unexpectedly clean")
	}
	before := em2.Count()
	if err := h2.Recover(pool2); err != nil {
		return 0, 0, err
	}
	insns = em2.Count() - before
	// Every undone 64-byte range persists 1-2 lines, plus the log
	// truncation.
	clwbs = uint64(n)*2 + 2
	return insns, clwbs, nil
}
