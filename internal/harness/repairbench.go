package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"potgo/internal/objstore"
	"potgo/internal/pmem"
	"potgo/internal/tpcc"
	"potgo/internal/workloads"
)

// RepairRecord is one media-fault repair campaign result, appended to a
// trajectory file (BENCH_repair.json) by cmd/potcrash. Besides the
// campaign outcome it records the read-path cost of checksum
// verification, so VerifyOnRead's overhead is tracked as its own series
// instead of silently regressing BENCH_serve.json.
type RepairRecord struct {
	// Timestamp is RFC 3339 UTC.
	Timestamp string `json:"timestamp"`
	// GitSHA identifies the tree ("" when unknown, "-dirty" suffix for
	// uncommitted changes); used to refuse duplicate campaign records.
	GitSHA string `json:"git_sha,omitempty"`
	// GoVersion and NumCPU describe the machine.
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// Campaign configuration.
	Seed          uint64 `json:"seed"`
	K             int    `json:"k"`
	Mode          string `json:"mode"`
	Rounds        int    `json:"rounds"`
	Keys          int    `json:"keys"`
	Ops           int    `json:"ops"`
	CrashMidScrub bool   `json:"crash_mid_scrub"`
	// Results.
	Injected       int     `json:"injected"`
	Repaired       int     `json:"repaired"`
	ParityRepaired int     `json:"parity_repaired"`
	Unrepairable   int     `json:"unrepairable"`
	Fired          int     `json:"fired"`
	ScrubSpan      uint64  `json:"scrub_event_span"`
	WallSeconds    float64 `json:"wall_seconds"`
	// VerifyOnRead overhead: mean Get latency with verification off and
	// on, over the same fault-free fault-tolerant store.
	GetNsPlain  float64 `json:"get_ns_plain"`
	GetNsVerify float64 `json:"get_ns_verify"`
	// Workloads is the whole-benchmark FT tax (Table 5 micros + durable
	// TPC-C over plain vs fault-tolerant pools); empty on campaign-only
	// records.
	Workloads []FTBenchOverhead `json:"workloads,omitempty"`
}

// FTBenchOverhead is one benchmark's media-fault-tolerance overhead:
// the same durable workload run functionally over plain pools and over
// fault-tolerant pools (CRC32C per object, parity column, VerifyOnRead),
// as mean wall nanoseconds per operation.
type FTBenchOverhead struct {
	Bench   string  `json:"bench"`
	Ops     int     `json:"ops"`
	PlainNs float64 `json:"plain_ns_op"`
	FTNs    float64 `json:"ft_ns_op"`
}

// Overhead is the relative FT tax ((ft-plain)/plain).
func (f FTBenchOverhead) Overhead() float64 {
	if f.PlainNs == 0 {
		return 0
	}
	return (f.FTNs - f.PlainNs) / f.PlainNs
}

// MeasureFTOverhead prices media-fault tolerance on whole benchmarks:
// each named bench (nil = the six Table 5 micros plus durable TPC-C)
// runs functionally twice with identical seeds — once over plain pools,
// once with SetFTDefault+SetVerifyOnRead so every pool carries checksums
// and parity — and the pair's wall time per operation is reported. The
// functional checksums of the two runs must agree: fault tolerance may
// only change cost, never results. Micros run durable (Tx); ops is the
// micro operation count, tpccOps the TPC-C transaction count (at
// tpcc.TestConfig scale so the measurement stays test-sized).
func MeasureFTOverhead(benches []string, ops, tpccOps int, seed int64) ([]FTBenchOverhead, error) {
	if ops <= 0 || tpccOps <= 0 {
		return nil, fmt.Errorf("harness: MeasureFTOverhead needs positive ops (%d) and tpccOps (%d)", ops, tpccOps)
	}
	if benches == nil {
		benches = append(append([]string{}, MicroBenches...), TPCCBench)
	}
	out := make([]FTBenchOverhead, 0, len(benches))
	for _, bench := range benches {
		spec := RunSpec{Bench: bench, Pattern: workloads.All, Tx: true, Ops: ops, Seed: seed}
		var cfg tpcc.Config
		if bench == TPCCBench {
			spec.Ops = tpccOps
			cfg = tpcc.TestConfig(seed)
			spec.TPCC = &cfg
		}
		timed := func(ft bool) (float64, uint64, error) {
			s := spec
			s.FT = ft
			start := time.Now()
			res, err := RunFunctional(s)
			if err != nil {
				return 0, 0, fmt.Errorf("harness: %s: %w", s.Label(), err)
			}
			return float64(time.Since(start)) / float64(s.Ops), res.Checksum, nil
		}
		plainNs, plainSum, err := timed(false)
		if err != nil {
			return nil, err
		}
		ftNs, ftSum, err := timed(true)
		if err != nil {
			return nil, err
		}
		if plainSum != ftSum {
			return nil, fmt.Errorf("harness: %s: FT changed the functional result (%#x plain, %#x FT)",
				spec.Bench, plainSum, ftSum)
		}
		out = append(out, FTBenchOverhead{Bench: bench, Ops: spec.Ops, PlainNs: plainNs, FTNs: ftNs})
	}
	return out, nil
}

// ErrDuplicateRepairRecord reports that the trajectory file already holds
// a campaign of the same tree and configuration.
var ErrDuplicateRepairRecord = errors.New("duplicate repair record for this git SHA and configuration")

func sameRepairConfig(a, b RepairRecord) bool {
	return a.GitSHA == b.GitSHA && a.Seed == b.Seed && a.K == b.K &&
		a.Mode == b.Mode && a.Rounds == b.Rounds && a.Keys == b.Keys &&
		a.Ops == b.Ops && a.CrashMidScrub == b.CrashMidScrub
}

// AppendRepairRecord appends rec to the JSON-array trajectory file at
// path, creating it if absent, with the same duplicate-refusal rule as
// AppendCrashRecord: a clean tree may record each configuration once;
// dirty trees are exempt.
func AppendRepairRecord(path string, rec RepairRecord) error {
	var records []RepairRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("harness: %s holds invalid trajectory data: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("harness: %w", err)
	}
	if rec.GitSHA != "" && !strings.HasSuffix(rec.GitSHA, "-dirty") {
		for _, r := range records {
			if sameRepairConfig(r, rec) {
				return fmt.Errorf("harness: %s: %w (sha %s, recorded %s)",
					path, ErrDuplicateRepairRecord, rec.GitSHA, r.Timestamp)
			}
		}
	}
	records = append(records, rec)
	data, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// MeasureVerifyOverhead times the KV get path over a fault-free
// fault-tolerant store with checksum verification off, then on,
// returning the mean nanoseconds per Get for each. The delta is
// VerifyOnRead's read-path tax (one CRC32C per slab object the lookup
// derefs).
func MeasureVerifyOverhead(keys, iters int, seed uint64) (plainNs, verifyNs float64, err error) {
	sh, err := pmem.NewSharded(pmem.NewStore(), 4, int64(seed))
	if err != nil {
		return 0, 0, err
	}
	kv, err := objstore.CreateKVFT(sh, "vo")
	if err != nil {
		return 0, 0, err
	}
	for k := 1; k <= keys; k++ {
		if _, err := kv.Put(uint64(k), uint64(k)^seed); err != nil {
			return 0, 0, err
		}
	}
	measure := func() (float64, error) {
		// One warm-up sweep, then the timed loop.
		for k := 1; k <= keys; k++ {
			if _, _, err := kv.Get(uint64(k)); err != nil {
				return 0, err
			}
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			key := uint64(i%keys + 1)
			if _, _, err := kv.Get(key); err != nil {
				return 0, err
			}
		}
		return float64(time.Since(start).Nanoseconds()) / float64(iters), nil
	}
	if plainNs, err = measure(); err != nil {
		return 0, 0, err
	}
	sh.SetVerifyOnRead(true)
	if verifyNs, err = measure(); err != nil {
		return 0, 0, err
	}
	return plainNs, verifyNs, nil
}
