package harness

import (
	"testing"

	"potgo/internal/polb"
	"potgo/internal/workloads"
)

// TestFunctionalMatrix is the broad cross-configuration agreement check:
// for every benchmark and pattern, every machine configuration (BASE, OPT
// on both designs, ideal, FIXED, both cores, NTX) must compute the same
// functional result — the timing machinery must never perturb what the
// program does.
func TestFunctionalMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is minutes of work")
	}
	const ops = 80
	for _, bench := range MicroBenches {
		for _, pat := range []workloads.Pattern{workloads.All, workloads.Each, workloads.Random} {
			base := RunSpec{Bench: bench, Pattern: pat, Tx: true, Core: InOrder, Ops: ops, Seed: 99}
			ref, err := Run(base)
			if err != nil {
				t.Fatalf("%s/%v: %v", bench, pat, err)
			}
			variants := []RunSpec{}
			{
				v := base
				v.Opt, v.Design = true, polb.Pipelined
				variants = append(variants, v)
			}
			{
				v := base
				v.Opt, v.Design = true, polb.Parallel
				variants = append(variants, v)
			}
			{
				v := base
				v.Opt, v.Design, v.Ideal = true, polb.Pipelined, true
				variants = append(variants, v)
			}
			{
				v := base
				v.FixedMap = true
				variants = append(variants, v)
			}
			{
				v := base
				v.Core = OutOfOrder
				variants = append(variants, v)
			}
			{
				v := base
				v.Opt, v.Design, v.Core = true, polb.Pipelined, OutOfOrder
				variants = append(variants, v)
			}
			{
				v := base
				v.Opt, v.Design, v.Prefetch = true, polb.Pipelined, true
				variants = append(variants, v)
			}
			for _, spec := range variants {
				r, err := Run(spec)
				if err != nil {
					t.Fatalf("%s: %v", spec.Label(), err)
				}
				if r.Checksum != ref.Checksum {
					t.Errorf("%s: checksum %#x != reference %#x", spec.Label(), r.Checksum, ref.Checksum)
				}
				if r.CPU.Instructions == 0 || r.CPU.Cycles == 0 {
					t.Errorf("%s: empty run", spec.Label())
				}
			}
		}
	}
}

// NTX variants agree with TX variants functionally (durability does not
// change results, only costs).
func TestNTXMatrix(t *testing.T) {
	for _, bench := range MicroBenches {
		tx := RunSpec{Bench: bench, Pattern: workloads.Random, Tx: true, Core: InOrder, Ops: 60, Seed: 5}
		ntx := tx
		ntx.Tx = false
		a, err := Run(tx)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(ntx)
		if err != nil {
			t.Fatal(err)
		}
		if a.Checksum != b.Checksum {
			t.Errorf("%s: TX/NTX checksums differ", bench)
		}
		if b.CPU.Instructions >= a.CPU.Instructions {
			t.Errorf("%s: NTX (%d insns) must be cheaper than TX (%d)", bench, b.CPU.Instructions, a.CPU.Instructions)
		}
	}
}
