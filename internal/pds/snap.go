package pds

import (
	"encoding/binary"

	"potgo/internal/isa"
	"potgo/internal/oid"
)

// Snapshot (MVCC) B+-tree walks: FindSnap and ScanAppendSnap traverse the
// tree against an epoch-pinned view of committed post-images
// (pmem.PinSlot) instead of the live pool bytes, so readers run without
// latches or shard locks while writers commit. The walks parse raw node
// buffers little-endian (the simulated pool memory is little-endian — log
// recovery parses it the same way) and deliberately bypass the volatile
// root cache: the cache is written by lock-holding writers and, more
// importantly, caches the PRESENT root, while a snapshot must resolve the
// root the pinned epoch saw through the anchor cell's version.
//
// The snapshot path does no emission — the concurrent heap runs with a
// detached emitter, and a snapshot read models a pure cache-resident
// traversal of the version mirror.
//
// Every walk returns ok=false when the view cannot serve it (an object
// missing from the mirror, or a buffer that fails validation); the caller
// falls back to the latched read path, which is always correct.

// SnapView resolves an object to the committed post-image visible at the
// view's pinned epoch. Implemented by *pmem.PinSlot.
type SnapView interface {
	SnapDeref(o oid.OID) ([]byte, bool)
}

// BPNodeSize is the on-media B+-tree node size, exported so stores can
// seed node versions into the MVCC mirror.
const BPNodeSize = bpNodeSize

// snapNode validates a raw node buffer and returns its key count.
func snapNode(buf []byte) (n int, leaf, ok bool) {
	if len(buf) < bpNodeSize {
		return 0, false, false
	}
	n = int(binary.LittleEndian.Uint64(buf[bpNOff:]))
	if n > bpMaxKeys {
		return 0, false, false
	}
	return n, binary.LittleEndian.Uint64(buf[bpLeafOff:]) != 0, true
}

// snapRoot resolves the tree's root OID through the anchor cell's version.
func (t *BPlus) snapRoot(v SnapView) (oid.OID, bool) {
	buf, ok := v.SnapDeref(t.root.OID())
	if !ok || len(buf) < 8 {
		return oid.Null, false
	}
	return oid.OID(binary.LittleEndian.Uint64(buf)), true
}

// FindSnap is FindFast against a pinned snapshot view: value and presence
// of key as of the view's epoch. ok=false means the view could not serve
// the walk and the caller must fall back to a latched read. Zero heap
// allocations.
//
//potlint:snapshot-read
//potlint:noalloc
func (t *BPlus) FindSnap(v SnapView, key uint64) (val uint64, found, ok bool) {
	cur, ok := t.snapRoot(v)
	if !ok {
		return 0, false, false
	}
	if cur.IsNull() {
		return 0, false, true // empty tree at this epoch: a valid miss
	}
	for {
		buf, ok := v.SnapDeref(cur)
		if !ok {
			return 0, false, false
		}
		n, leaf, ok := snapNode(buf)
		if !ok {
			return 0, false, false
		}
		if leaf {
			for i := 0; i < n; i++ {
				k := binary.LittleEndian.Uint64(buf[bpKeysOff+8*i:])
				if k == key {
					return binary.LittleEndian.Uint64(buf[bpValsOff+8*i:]), true, true
				}
				if k > key {
					break
				}
			}
			return 0, false, true
		}
		i := 0
		for i < n && key >= binary.LittleEndian.Uint64(buf[bpKeysOff+8*i:]) {
			i++
		}
		cur = oid.OID(binary.LittleEndian.Uint64(buf[bpKidsOff+8*i:]))
		if cur.IsNull() {
			return 0, false, false
		}
	}
}

// ScanAppendSnap is ScanAppend against a pinned snapshot view: up to max
// pairs with key >= from, in key order along the version-consistent leaf
// chain, appended to dst. ok=false leaves dst truncated to its input
// length and means the caller must fall back. Zero heap allocations once
// dst has reached its steady-state capacity.
//
//potlint:snapshot-read
//potlint:noalloc
func (t *BPlus) ScanAppendSnap(v SnapView, dst []KV, from uint64, max int) (out []KV, ok bool) {
	start := len(dst)
	cur, ok := t.snapRoot(v)
	if !ok {
		return dst, false
	}
	if cur.IsNull() || max <= 0 {
		return dst, true
	}
	// Descend to the leaf covering from.
	var buf []byte
	var n int
	for {
		buf, ok = v.SnapDeref(cur)
		if !ok {
			return dst[:start], false
		}
		var leaf bool
		n, leaf, ok = snapNode(buf)
		if !ok {
			return dst[:start], false
		}
		if leaf {
			break
		}
		i := 0
		for i < n && from >= binary.LittleEndian.Uint64(buf[bpKeysOff+8*i:]) {
			i++
		}
		cur = oid.OID(binary.LittleEndian.Uint64(buf[bpKidsOff+8*i:]))
		if cur.IsNull() {
			return dst[:start], false
		}
	}
	pos := 0
	for pos < n && binary.LittleEndian.Uint64(buf[bpKeysOff+8*pos:]) < from {
		pos++
	}
	for len(dst)-start < max {
		for ; pos < n && len(dst)-start < max; pos++ {
			dst = append(dst, KV{ //potlint:allow noalloc caller reuses dst; growth stops at the steady-state result size
				Key: binary.LittleEndian.Uint64(buf[bpKeysOff+8*pos:]),
				Val: binary.LittleEndian.Uint64(buf[bpValsOff+8*pos:]),
			})
		}
		if len(dst)-start >= max {
			break
		}
		next := oid.OID(binary.LittleEndian.Uint64(buf[bpNextOff:]))
		if next.IsNull() {
			break
		}
		buf, ok = v.SnapDeref(next)
		if !ok {
			return dst[:start], false
		}
		var leaf bool
		n, leaf, ok = snapNode(buf)
		if !ok || !leaf {
			return dst[:start], false
		}
		pos = 0
	}
	return dst, true
}

// VisitNodes walks every node of the tree root-down and calls visit with
// its OID — the seeding hook for the MVCC mirror (each visited node plus
// the anchor cell gets an initial version published from its live bytes).
func (t *BPlus) VisitNodes(ctx Ctx, visit func(o oid.OID) error) error {
	rootW, err := t.rootOID()
	if err != nil {
		return err
	}
	if rootW.OID().IsNull() {
		return nil
	}
	var walk func(o oid.OID) error
	walk = func(o oid.OID) error {
		if err := visit(o); err != nil {
			return err
		}
		nd, err := t.read(ctx, o, isa.RZ)
		if err != nil {
			return err
		}
		if nd.leaf {
			return nil
		}
		for _, c := range nd.kids {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(rootW.OID())
}

// AnchorOID exposes the anchor cell's OID (the 8-byte word holding the
// root node OID) so stores can seed and resolve it in the version mirror.
func (t *BPlus) AnchorOID() oid.OID { return t.root.OID() }
