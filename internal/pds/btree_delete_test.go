package pds

import (
	"testing"

	"potgo/internal/randtest"
)

// buildBTree inserts keys in order and returns the tree.
func buildBTree(t *testing.T, c *testCtx, cell Cell, keys []uint64) *BTree {
	t.Helper()
	bt := NewBTree(cell)
	for _, k := range keys {
		if err := bt.Insert(c, k); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	return bt
}

// checkBTree verifies invariants and the exact membership of want.
func checkBTree(t *testing.T, c *testCtx, bt *BTree, want map[uint64]bool) {
	t.Helper()
	n, err := bt.CheckInvariants(c)
	if err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if n != len(want) {
		t.Fatalf("tree holds %d keys, want %d", n, len(want))
	}
	for k := range want {
		if ok, err := bt.Find(c, k); err != nil || !ok {
			t.Fatalf("key %d missing after deletions (err %v)", k, err)
		}
	}
}

// seq returns [1, n].
func seq(n uint64) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = uint64(i) + 1
	}
	return s
}

// TestBTreeRemoveEdgeCases drives each rebalancing path of the order-7
// deletion (btMaxKeys = 6, btMinKeys = 2) through a deterministically
// constructed shape. Inserting 1..7 in order splits exactly once, leaving
// root [4] over leaves [1 2 3] and [5 6 7]; every case below steers from
// there (or from a deeper sequential build) into one specific edge.
func TestBTreeRemoveEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		insert  []uint64
		remove  []uint64
		missing []uint64 // removes that must report absent, applied last
	}{
		{
			// Deleting the only key frees the root leaf: the anchor goes
			// null and a later insert must rebuild from scratch.
			name:   "root leaf collapse to empty",
			insert: []uint64{42},
			remove: []uint64{42},
		},
		{
			// 3 then 7 bring both leaves to the minimum; deleting the
			// separator 4 finds no slack on either side, merges [1 2]+4+[5 6]
			// and leaves the root an empty internal node, which Remove
			// replaces with the merged child (height shrinks by one).
			name:   "root collapse internal to child",
			insert: seq(7),
			remove: []uint64{3, 7, 4},
		},
		{
			// Removing 5 descends into the right leaf [5 6], already at the
			// minimum, while its left sibling [1 2 3] has slack: the
			// separator 4 rotates down-right and 3 rotates up.
			name:   "borrow from left sibling",
			insert: seq(7),
			remove: []uint64{7, 5},
		},
		{
			// Mirror image: after 3, the left leaf [1 2] is minimal and the
			// right sibling [5 6 7] has slack, so removing 1 rotates the
			// separator 4 down-left and 5 up.
			name:   "borrow from right sibling",
			insert: seq(7),
			remove: []uint64{3, 1},
		},
		{
			// An internal-key delete with a slack-left child replaces the
			// key with its in-subtree predecessor (4 -> 3).
			name:   "internal key predecessor swap",
			insert: seq(7),
			remove: []uint64{7, 4},
		},
		{
			// With the left child minimal and the right child slack, the
			// internal key takes its successor instead (4 -> 5).
			name:   "internal key successor swap",
			insert: seq(7),
			remove: []uint64{3, 4},
		},
		{
			// A three-level tree (sequential 1..31 splits twice) drained
			// from the left edge: every few deletions the leftmost leaf
			// empties below minimum with minimal siblings, cascading merges
			// up through the internal level until the height collapses.
			name:   "merge cascade over three levels",
			insert: seq(31),
			remove: seq(31),
		},
		{
			// Absent keys — below, between and above the stored range —
			// must report false without disturbing the tree.
			name:    "absent keys are no-ops",
			insert:  seq(7),
			remove:  []uint64{6},
			missing: []uint64{0, 4<<60 + 1, 100},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, cell := newCtx(t, 1, false)
			bt := buildBTree(t, c, cell, tc.insert)
			want := make(map[uint64]bool, len(tc.insert))
			for _, k := range tc.insert {
				want[k] = true
			}
			for _, k := range tc.remove {
				removed, err := bt.Remove(c, k)
				if err != nil {
					t.Fatalf("remove %d: %v", k, err)
				}
				if !removed {
					t.Fatalf("remove %d: reported absent", k)
				}
				delete(want, k)
				// Invariants must hold after EVERY deletion, not just at
				// the end — a transiently underfull or uneven tree is the
				// bug these cases hunt.
				checkBTree(t, c, bt, want)
			}
			for _, k := range tc.missing {
				removed, err := bt.Remove(c, k)
				if err != nil {
					t.Fatalf("remove absent %d: %v", k, err)
				}
				if removed {
					t.Fatalf("remove absent %d: reported present", k)
				}
				checkBTree(t, c, bt, want)
			}
			// The tree must stay fully usable: reinsert what was removed.
			for _, k := range tc.remove {
				if err := bt.Insert(c, k); err != nil {
					t.Fatalf("reinsert %d: %v", k, err)
				}
				want[k] = true
			}
			checkBTree(t, c, bt, want)
		})
	}
}

// TestBTreeRemoveRandomChurn cross-checks deletion against a map model
// under random insert/remove churn, verifying invariants continuously.
func TestBTreeRemoveRandomChurn(t *testing.T) {
	rng := randtest.New(t, 99)
	c, cell := newCtx(t, 1, false)
	bt := NewBTree(cell)
	model := make(map[uint64]bool)
	const keyRange = 200
	for i := 0; i < 3000; i++ {
		key := uint64(rng.Intn(keyRange)) + 1
		if rng.Intn(2) == 0 && !model[key] {
			if err := bt.Insert(c, key); err != nil {
				t.Fatalf("op %d: insert %d: %v", i, key, err)
			}
			model[key] = true
		} else {
			removed, err := bt.Remove(c, key)
			if err != nil {
				t.Fatalf("op %d: remove %d: %v", i, key, err)
			}
			if removed != model[key] {
				t.Fatalf("op %d: remove %d returned %v, model says %v", i, key, removed, model[key])
			}
			delete(model, key)
		}
		if i%100 == 0 {
			if n, err := bt.CheckInvariants(c); err != nil || n != len(model) {
				t.Fatalf("op %d: invariants n=%d err=%v, model %d", i, n, err, len(model))
			}
		}
	}
	n, err := bt.CheckInvariants(c)
	if err != nil || n != len(model) {
		t.Fatalf("final: n=%d err=%v, model %d", n, err, len(model))
	}
	for k := range model {
		if ok, err := bt.Find(c, k); err != nil || !ok {
			t.Fatalf("final: key %d missing (err %v)", k, err)
		}
	}
}
