package pds

import (
	"fmt"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// Remove deletes key from the B-tree, rebalancing with rotations and merges
// (classic CLRS B-tree deletion adapted to order 7). The paper's BT
// workload never deletes (Table 5), but a complete library does; the B+T
// workload covers the delete-heavy behaviour in the evaluation.
func (t *BTree) Remove(ctx Ctx, key uint64) (bool, error) {
	rootW, err := t.root.Get()
	if err != nil {
		return false, err
	}
	if rootW.OID().IsNull() {
		return false, nil
	}
	root, err := t.read(ctx, rootW.OID(), rootW.Reg)
	if err != nil {
		return false, err
	}
	removed, err := t.removeFrom(ctx, root, key)
	if err != nil {
		return false, err
	}
	// Shrink: an empty internal root is replaced by its only child.
	if len(root.keys) == 0 && !root.leaf {
		if err := ctx.Touch(t.root.OID(), 8); err != nil {
			return false, err
		}
		if err := t.root.Set(root.kids[0], pmem.Word{}); err != nil {
			return false, err
		}
		if err := ctx.Free(root.oid); err != nil {
			return false, err
		}
	} else if len(root.keys) == 0 && root.leaf {
		if err := ctx.Touch(t.root.OID(), 8); err != nil {
			return false, err
		}
		if err := t.root.Set(oid.Null, pmem.Word{}); err != nil {
			return false, err
		}
		if err := ctx.Free(root.oid); err != nil {
			return false, err
		}
	}
	return removed, nil
}

// btMinKeys is the minimum fill deletion maintains in non-root nodes. For
// an even maximum key count (order 7 → 6 keys) the textbook minimum of 3
// would make a merge produce 3+1+3 = 7 keys and overflow, so deletion uses
// the relaxed minimum 2: merges produce 2+1+2 = 5 ≤ 6. The tree stays a
// valid uniform-depth search tree throughout; only the fill guarantee is a
// third rather than half.
const btMinKeys = btMaxKeys/2 - 1 // 2

// removeFrom deletes key from the subtree rooted at nd, which the caller
// guarantees holds more than btMinKeys keys (or is the root).
func (t *BTree) removeFrom(ctx Ctx, nd *btNode, key uint64) (bool, error) {
	i := 0
	for i < len(nd.keys) && key > nd.keys[i] {
		i++
	}
	ctx.Heap().Emit.Compute(2)

	if i < len(nd.keys) && nd.keys[i] == key {
		if nd.leaf {
			nd.keys = removeAt(nd.keys, i)
			return true, t.write(ctx, nd)
		}
		return true, t.removeInternal(ctx, nd, i)
	}
	if nd.leaf {
		return false, nil
	}
	child, err := t.childWithSlack(ctx, nd, i)
	if err != nil {
		return false, err
	}
	return t.removeFrom(ctx, child, key)
}

// removeInternal deletes nd.keys[i] from an internal node by replacing it
// with its predecessor or successor, or merging the flanking children.
func (t *BTree) removeInternal(ctx Ctx, nd *btNode, i int) error {
	left, err := t.read(ctx, nd.kids[i], isa.RZ)
	if err != nil {
		return err
	}
	if len(left.keys) > btMinKeys {
		pred, err := t.maxKey(ctx, left)
		if err != nil {
			return err
		}
		nd.keys[i] = pred
		if err := t.write(ctx, nd); err != nil {
			return err
		}
		if _, err := t.removeFrom(ctx, left, pred); err != nil {
			return err
		}
		return nil
	}
	right, err := t.read(ctx, nd.kids[i+1], isa.RZ)
	if err != nil {
		return err
	}
	if len(right.keys) > btMinKeys {
		succ, err := t.minKey(ctx, right)
		if err != nil {
			return err
		}
		nd.keys[i] = succ
		if err := t.write(ctx, nd); err != nil {
			return err
		}
		if _, err := t.removeFrom(ctx, right, succ); err != nil {
			return err
		}
		return nil
	}
	// Both children minimal: merge them around the separator and recurse.
	key := nd.keys[i]
	if err := t.mergeChildren(ctx, nd, i, left, right); err != nil {
		return err
	}
	_, err = t.removeFrom(ctx, left, key)
	return err
}

// childWithSlack reads child i of nd, first topping it up (borrow or merge)
// if it sits at the minimum, so the recursion below it can always delete.
func (t *BTree) childWithSlack(ctx Ctx, nd *btNode, i int) (*btNode, error) {
	child, err := t.read(ctx, nd.kids[i], isa.RZ)
	if err != nil {
		return nil, err
	}
	if len(child.keys) > btMinKeys {
		return child, nil
	}
	// Borrow from the left sibling.
	if i > 0 {
		left, err := t.read(ctx, nd.kids[i-1], isa.RZ)
		if err != nil {
			return nil, err
		}
		if len(left.keys) > btMinKeys {
			child.keys = insertAt(child.keys, 0, nd.keys[i-1])
			nd.keys[i-1] = left.keys[len(left.keys)-1]
			left.keys = left.keys[:len(left.keys)-1]
			if !child.leaf {
				child.kids = insertOIDAt(child.kids, 0, left.kids[len(left.kids)-1])
				left.kids = left.kids[:len(left.kids)-1]
			}
			if err := t.write(ctx, left); err != nil {
				return nil, err
			}
			if err := t.write(ctx, child); err != nil {
				return nil, err
			}
			return child, t.write(ctx, nd)
		}
	}
	// Borrow from the right sibling.
	if i < len(nd.kids)-1 {
		right, err := t.read(ctx, nd.kids[i+1], isa.RZ)
		if err != nil {
			return nil, err
		}
		if len(right.keys) > btMinKeys {
			child.keys = append(child.keys, nd.keys[i])
			nd.keys[i] = right.keys[0]
			right.keys = removeAt(right.keys, 0)
			if !child.leaf {
				child.kids = append(child.kids, right.kids[0])
				right.kids = right.kids[1:]
			}
			if err := t.write(ctx, right); err != nil {
				return nil, err
			}
			if err := t.write(ctx, child); err != nil {
				return nil, err
			}
			return child, t.write(ctx, nd)
		}
	}
	// Merge with a sibling.
	if i > 0 {
		left, err := t.read(ctx, nd.kids[i-1], isa.RZ)
		if err != nil {
			return nil, err
		}
		if err := t.mergeChildren(ctx, nd, i-1, left, child); err != nil {
			return nil, err
		}
		return left, nil
	}
	right, err := t.read(ctx, nd.kids[i+1], isa.RZ)
	if err != nil {
		return nil, err
	}
	if err := t.mergeChildren(ctx, nd, i, child, right); err != nil {
		return nil, err
	}
	return child, nil
}

// mergeChildren folds nd.keys[sep] and the right child into the left child
// and frees the right child's node.
func (t *BTree) mergeChildren(ctx Ctx, nd *btNode, sep int, left, right *btNode) error {
	if left.leaf != right.leaf {
		return fmt.Errorf("pds: btree merge of mismatched node kinds")
	}
	left.keys = append(left.keys, nd.keys[sep])
	left.keys = append(left.keys, right.keys...)
	if !left.leaf {
		left.kids = append(left.kids, right.kids...)
	}
	nd.keys = removeAt(nd.keys, sep)
	nd.kids = append(nd.kids[:sep+1], nd.kids[sep+2:]...)
	if err := t.write(ctx, left); err != nil {
		return err
	}
	if err := t.write(ctx, nd); err != nil {
		return err
	}
	return ctx.Free(right.oid)
}

// maxKey returns the largest key in the subtree (reading down the right
// spine).
func (t *BTree) maxKey(ctx Ctx, nd *btNode) (uint64, error) {
	for !nd.leaf {
		var err error
		if nd, err = t.read(ctx, nd.kids[len(nd.kids)-1], isa.RZ); err != nil {
			return 0, err
		}
	}
	return nd.keys[len(nd.keys)-1], nil
}

// minKey returns the smallest key in the subtree.
func (t *BTree) minKey(ctx Ctx, nd *btNode) (uint64, error) {
	for !nd.leaf {
		var err error
		if nd, err = t.read(ctx, nd.kids[0], isa.RZ); err != nil {
			return 0, err
		}
	}
	return nd.keys[0], nil
}
