package pds

import (
	"fmt"

	"potgo/internal/isa"
	"potgo/internal/pmem"
)

// Allocation-free B+-tree entry points for the request path of a server
// (internal/potserve): FindFast, UpdateFast and ScanAppend walk the tree by
// loading fields straight through the Ref without materializing bpNode
// mirrors, so a steady-state get/put/scan performs zero heap allocations.
// Emission per node visited matches descend (nodeWork compute + one
// branch), so the accelerator cost model sees the same tree walk; the slow
// paths remain authoritative for structural mutations (insert, delete,
// rebalance), which allocate freely on their cold path.

// bpProbe positions a walk at the leaf for key: it returns the leaf's Ref,
// its key count, and the position of the first key >= key.
//
//potlint:noalloc
func (t *BPlus) bpProbe(ctx Ctx, key uint64) (ref pmem.Ref, n, pos int, ok bool, err error) {
	rootW, err := t.rootOID()
	if err != nil {
		return pmem.Ref{}, 0, 0, false, err
	}
	if rootW.OID().IsNull() {
		return pmem.Ref{}, 0, 0, false, nil
	}
	h := ctx.Heap()
	e := h.Emit
	cur, dep := rootW.OID(), rootW.Reg
	for {
		ref, err = h.Deref(cur, dep)
		if err != nil {
			return pmem.Ref{}, 0, 0, false, err
		}
		leafW, err := ref.Load64(bpLeafOff)
		if err != nil {
			return pmem.Ref{}, 0, 0, false, err
		}
		nW, err := ref.Load64(bpNOff)
		if err != nil {
			return pmem.Ref{}, 0, 0, false, err
		}
		n = int(nW.V)
		if n > bpMaxKeys {
			return pmem.Ref{}, 0, 0, false, fmt.Errorf("pds: corrupt b+tree node %v: n=%d", cur, n)
		}
		if leafW.V != 0 {
			pos = 0
			for pos < n {
				w, err := ref.Load64(uint32(bpKeysOff + 8*pos))
				if err != nil {
					return pmem.Ref{}, 0, 0, false, err
				}
				if w.V >= key {
					break
				}
				pos++
			}
			e.Compute(nodeWork)
			e.Branch("bp.leafpos", pos < n)
			return ref, n, pos, true, nil
		}
		i := 0
		for i < n {
			w, err := ref.Load64(uint32(bpKeysOff + 8*i))
			if err != nil {
				return pmem.Ref{}, 0, 0, false, err
			}
			if key < w.V {
				break
			}
			i++
		}
		kidW, err := ref.Load64(uint32(bpKidsOff + 8*i))
		if err != nil {
			return pmem.Ref{}, 0, 0, false, err
		}
		e.Compute(nodeWork)
		e.Branch("bp.descend", true)
		cur, dep = kidW.OID(), isa.RZ
	}
}

// FindFast is Find without the path materialization: zero heap allocations
// on hit and miss alike.
//
//potlint:noalloc
func (t *BPlus) FindFast(ctx Ctx, key uint64) (uint64, bool, error) {
	ref, n, pos, nonEmpty, err := t.bpProbe(ctx, key)
	if err != nil || !nonEmpty || pos >= n {
		return 0, false, err
	}
	kw, err := ref.Load64(uint32(bpKeysOff + 8*pos))
	if err != nil {
		return 0, false, err
	}
	if kw.V != key {
		return 0, false, nil
	}
	vw, err := ref.Load64(uint32(bpValsOff + 8*pos))
	if err != nil {
		return 0, false, err
	}
	return vw.V, true, nil
}

// UpdateFast overwrites the value under an existing key, snapshotting the
// leaf through ctx.Touch and storing only the value slot. It reports
// whether the key was present; when it is and the caller's transaction
// machinery is allocation-free, the whole overwrite is too.
//
//potlint:noalloc
func (t *BPlus) UpdateFast(ctx Ctx, key, val uint64) (bool, error) {
	ref, n, pos, nonEmpty, err := t.bpProbe(ctx, key)
	if err != nil || !nonEmpty || pos >= n {
		return false, err
	}
	kw, err := ref.Load64(uint32(bpKeysOff + 8*pos))
	if err != nil {
		return false, err
	}
	if kw.V != key {
		return false, nil
	}
	if err := ctx.Touch(ref.OID(), bpNodeSize); err != nil {
		return false, err
	}
	if err := ref.Store64(uint32(bpValsOff+8*pos), val, isa.RZ); err != nil {
		return false, err
	}
	return true, nil
}

// ScanAppend is Scan appending into dst (reused across calls by the
// caller): up to max pairs with key >= from, in key order along the leaf
// chain. Zero heap allocations once dst's capacity has grown to the
// steady-state result size.
//
//potlint:noalloc
func (t *BPlus) ScanAppend(ctx Ctx, dst []KV, from uint64, max int) ([]KV, error) {
	ref, n, pos, nonEmpty, err := t.bpProbe(ctx, from)
	if err != nil || !nonEmpty {
		return dst, err
	}
	h := ctx.Heap()
	start := len(dst)
	for len(dst)-start < max {
		for ; pos < n && len(dst)-start < max; pos++ {
			kw, err := ref.Load64(uint32(bpKeysOff + 8*pos))
			if err != nil {
				return dst, err
			}
			vw, err := ref.Load64(uint32(bpValsOff + 8*pos))
			if err != nil {
				return dst, err
			}
			dst = append(dst, KV{kw.V, vw.V}) //potlint:allow noalloc caller reuses dst; growth stops at the steady-state result size
		}
		if len(dst)-start >= max {
			break
		}
		nextW, err := ref.Load64(bpNextOff)
		if err != nil {
			return dst, err
		}
		if nextW.OID().IsNull() {
			break
		}
		if ref, err = h.Deref(nextW.OID(), isa.RZ); err != nil {
			return dst, err
		}
		nW, err := ref.Load64(bpNOff)
		if err != nil {
			return dst, err
		}
		n = int(nW.V)
		if n > bpMaxKeys {
			return dst, fmt.Errorf("pds: corrupt b+tree node %v: n=%d", ref.OID(), n)
		}
		pos = 0
	}
	return dst, nil
}

// Prime warms the volatile root cache. Call it once while the tree is not
// yet shared: concurrent readers under a shared (read) lock must not race
// to fill the cache.
//
//potlint:noalloc
func (t *BPlus) Prime() error {
	_, err := t.rootOID()
	return err
}
