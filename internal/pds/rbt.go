package pds

import (
	"fmt"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// RBT is a red-black tree with parent pointers:
// node = {key, left, right, parent, color}. Insertion and deletion rebalance
// per the red-black rules (paper Table 5), emitting every node access.
type RBT struct {
	root Cell
}

const (
	rbtKeyOff    = 0
	rbtLeftOff   = 8
	rbtRightOff  = 16
	rbtParentOff = 24
	rbtColorOff  = 32
	// RBTNodeBytes is the allocation size of one node.
	RBTNodeBytes = 40

	rbtBlack = 0
	rbtRed   = 1
)

// NewRBT builds a tree anchored at the given cell.
func NewRBT(root Cell) *RBT { return &RBT{root: root} }

// rbtOps bundles the emitted field accessors. The first access to a node
// within an operation dereferences it (one oid_direct in BASE mode) and the
// translated reference is reused for the node's other fields — the
// `temp = oid_direct(x); temp->field` idiom of the paper's §2.2 — so a
// rotation translates each involved node once, not once per field. Setters
// snapshot the node once per transaction via Ctx.Touch.
type rbtOps struct {
	t    *RBT
	ctx  Ctx
	h    *pmem.Heap
	refs map[oid.OID]pmem.Ref
}

func (t *RBT) ops(ctx Ctx) rbtOps {
	return rbtOps{t: t, ctx: ctx, h: ctx.Heap(), refs: make(map[oid.OID]pmem.Ref, 16)}
}

// ref translates a node, memoized for the duration of the operation.
func (op rbtOps) ref(o oid.OID) (pmem.Ref, error) {
	if r, ok := op.refs[o]; ok {
		return r, nil
	}
	r, err := op.h.Deref(o, isa.RZ)
	if err != nil {
		return pmem.Ref{}, err
	}
	op.refs[o] = r
	return r, nil
}

func (op rbtOps) load(o oid.OID, off uint32) (pmem.Word, error) {
	ref, err := op.ref(o)
	if err != nil {
		return pmem.Word{}, err
	}
	return ref.Load64(off)
}

func (op rbtOps) store(o oid.OID, off uint32, v uint64, dep isa.Reg) error {
	if err := op.ctx.Touch(o, RBTNodeBytes); err != nil {
		return err
	}
	ref, err := op.ref(o)
	if err != nil {
		return err
	}
	return ref.Store64(off, v, dep)
}

func (op rbtOps) key(o oid.OID) (uint64, error) {
	w, err := op.load(o, rbtKeyOff)
	return w.V, err
}

func (op rbtOps) left(o oid.OID) (oid.OID, error) {
	w, err := op.load(o, rbtLeftOff)
	return w.OID(), err
}

func (op rbtOps) right(o oid.OID) (oid.OID, error) {
	w, err := op.load(o, rbtRightOff)
	return w.OID(), err
}

func (op rbtOps) parent(o oid.OID) (oid.OID, error) {
	w, err := op.load(o, rbtParentOff)
	return w.OID(), err
}

// color of Null is black, per the red-black convention.
func (op rbtOps) color(o oid.OID) (uint64, error) {
	if o.IsNull() {
		return rbtBlack, nil
	}
	w, err := op.load(o, rbtColorOff)
	return w.V, err
}

func (op rbtOps) setLeft(o, v oid.OID) error   { return op.store(o, rbtLeftOff, uint64(v), isa.RZ) }
func (op rbtOps) setRight(o, v oid.OID) error  { return op.store(o, rbtRightOff, uint64(v), isa.RZ) }
func (op rbtOps) setParent(o, v oid.OID) error { return op.store(o, rbtParentOff, uint64(v), isa.RZ) }
func (op rbtOps) setColor(o oid.OID, c uint64) error {
	return op.store(o, rbtColorOff, c, isa.RZ)
}

func (op rbtOps) rootOID() (oid.OID, error) {
	w, err := op.t.root.Get()
	return w.OID(), err
}

func (op rbtOps) setRoot(v oid.OID) error {
	if err := op.ctx.Touch(op.t.root.OID(), 8); err != nil {
		return err
	}
	return op.t.root.Set(v, pmem.Word{})
}

// replaceChild repoints u's parent (or the root anchor) to v.
func (op rbtOps) replaceChild(parent, u, v oid.OID) error {
	if parent.IsNull() {
		return op.setRoot(v)
	}
	l, err := op.left(parent)
	if err != nil {
		return err
	}
	if l == u {
		return op.setLeft(parent, v)
	}
	return op.setRight(parent, v)
}

// rotateLeft / rotateRight are the standard red-black rotations.
func (op rbtOps) rotateLeft(x oid.OID) error {
	y, err := op.right(x)
	if err != nil {
		return err
	}
	yl, err := op.left(y)
	if err != nil {
		return err
	}
	if err := op.setRight(x, yl); err != nil {
		return err
	}
	if !yl.IsNull() {
		if err := op.setParent(yl, x); err != nil {
			return err
		}
	}
	xp, err := op.parent(x)
	if err != nil {
		return err
	}
	if err := op.setParent(y, xp); err != nil {
		return err
	}
	if err := op.replaceChild(xp, x, y); err != nil {
		return err
	}
	if err := op.setLeft(y, x); err != nil {
		return err
	}
	return op.setParent(x, y)
}

func (op rbtOps) rotateRight(x oid.OID) error {
	y, err := op.left(x)
	if err != nil {
		return err
	}
	yr, err := op.right(y)
	if err != nil {
		return err
	}
	if err := op.setLeft(x, yr); err != nil {
		return err
	}
	if !yr.IsNull() {
		if err := op.setParent(yr, x); err != nil {
			return err
		}
	}
	xp, err := op.parent(x)
	if err != nil {
		return err
	}
	if err := op.setParent(y, xp); err != nil {
		return err
	}
	if err := op.replaceChild(xp, x, y); err != nil {
		return err
	}
	if err := op.setRight(y, x); err != nil {
		return err
	}
	return op.setParent(x, y)
}

// Find returns the node holding key (Null if absent).
func (t *RBT) Find(ctx Ctx, key uint64) (oid.OID, error) {
	op := t.ops(ctx)
	e := op.h.Emit
	cur, err := op.rootOID()
	if err != nil {
		return oid.Null, err
	}
	for !cur.IsNull() {
		k, err := op.key(cur)
		if err != nil {
			return oid.Null, err
		}
		cmp := e.Compute(nodeWork)
		if key == k {
			e.Branch("rbt.find.eq", true, cmp)
			return cur, nil
		}
		e.Branch("rbt.find.eq", false, cmp)
		if key < k {
			e.Branch("rbt.find.lt", true, cmp)
			if cur, err = op.left(cur); err != nil {
				return oid.Null, err
			}
		} else {
			e.Branch("rbt.find.lt", false, cmp)
			if cur, err = op.right(cur); err != nil {
				return oid.Null, err
			}
		}
	}
	return oid.Null, nil
}

// Insert adds key (must not be present) and rebalances.
func (t *RBT) Insert(ctx Ctx, key uint64) error {
	op := t.ops(ctx)
	e := op.h.Emit

	node, err := ctx.Alloc(key, RBTNodeBytes)
	if err != nil {
		return err
	}
	nref, err := op.h.Deref(node, isa.RZ)
	if err != nil {
		return err
	}
	for _, f := range []struct {
		off uint32
		v   uint64
	}{{rbtKeyOff, key}, {rbtLeftOff, 0}, {rbtRightOff, 0}, {rbtParentOff, 0}, {rbtColorOff, rbtRed}} {
		if err := nref.Store64(f.off, f.v, isa.RZ); err != nil {
			return err
		}
	}

	// Standard BST descent.
	parent := oid.Null
	cur, err := op.rootOID()
	if err != nil {
		return err
	}
	goLeft := false
	for !cur.IsNull() {
		k, err := op.key(cur)
		if err != nil {
			return err
		}
		cmp := e.Compute(nodeWork)
		goLeft = key < k
		e.Branch("rbt.ins.lt", goLeft, cmp)
		parent = cur
		if goLeft {
			if cur, err = op.left(cur); err != nil {
				return err
			}
		} else {
			if cur, err = op.right(cur); err != nil {
				return err
			}
		}
	}
	if parent.IsNull() {
		if err := op.setRoot(node); err != nil {
			return err
		}
	} else {
		if err := op.setParent(node, parent); err != nil {
			return err
		}
		if goLeft {
			if err := op.setLeft(parent, node); err != nil {
				return err
			}
		} else {
			if err := op.setRight(parent, node); err != nil {
				return err
			}
		}
	}
	return t.insertFixup(op, node)
}

func (t *RBT) insertFixup(op rbtOps, z oid.OID) error {
	e := op.h.Emit
	for {
		zp, err := op.parent(z)
		if err != nil {
			return err
		}
		pc, err := op.color(zp)
		if err != nil {
			return err
		}
		e.Branch("rbt.fix.loop", pc == rbtRed)
		if zp.IsNull() || pc != rbtRed {
			break
		}
		zpp, err := op.parent(zp)
		if err != nil {
			return err
		}
		if zpp.IsNull() {
			break
		}
		gl, err := op.left(zpp)
		if err != nil {
			return err
		}
		if zp == gl {
			uncle, err := op.right(zpp)
			if err != nil {
				return err
			}
			uc, err := op.color(uncle)
			if err != nil {
				return err
			}
			e.Branch("rbt.fix.uncle", uc == rbtRed)
			if uc == rbtRed {
				if err := op.setColor(zp, rbtBlack); err != nil {
					return err
				}
				if err := op.setColor(uncle, rbtBlack); err != nil {
					return err
				}
				if err := op.setColor(zpp, rbtRed); err != nil {
					return err
				}
				z = zpp
				continue
			}
			pr, err := op.right(zp)
			if err != nil {
				return err
			}
			if z == pr {
				z = zp
				if err := op.rotateLeft(z); err != nil {
					return err
				}
				if zp, err = op.parent(z); err != nil {
					return err
				}
			}
			if err := op.setColor(zp, rbtBlack); err != nil {
				return err
			}
			if err := op.setColor(zpp, rbtRed); err != nil {
				return err
			}
			if err := op.rotateRight(zpp); err != nil {
				return err
			}
		} else {
			uncle := gl
			uc, err := op.color(uncle)
			if err != nil {
				return err
			}
			e.Branch("rbt.fix.uncle", uc == rbtRed)
			if uc == rbtRed {
				if err := op.setColor(zp, rbtBlack); err != nil {
					return err
				}
				if err := op.setColor(uncle, rbtBlack); err != nil {
					return err
				}
				if err := op.setColor(zpp, rbtRed); err != nil {
					return err
				}
				z = zpp
				continue
			}
			pl, err := op.left(zp)
			if err != nil {
				return err
			}
			if z == pl {
				z = zp
				if err := op.rotateRight(z); err != nil {
					return err
				}
				if zp, err = op.parent(z); err != nil {
					return err
				}
			}
			if err := op.setColor(zp, rbtBlack); err != nil {
				return err
			}
			if err := op.setColor(zpp, rbtRed); err != nil {
				return err
			}
			if err := op.rotateLeft(zpp); err != nil {
				return err
			}
		}
	}
	root, err := op.rootOID()
	if err != nil {
		return err
	}
	c, err := op.color(root)
	if err != nil {
		return err
	}
	if c != rbtBlack {
		return op.setColor(root, rbtBlack)
	}
	return nil
}

// Remove deletes key and rebalances, reporting whether it was present.
func (t *RBT) Remove(ctx Ctx, key uint64) (bool, error) {
	op := t.ops(ctx)
	z, err := t.Find(ctx, key)
	if err != nil || z.IsNull() {
		return false, err
	}

	// CLRS delete. y is the node actually spliced out; x (possibly Null)
	// takes its place, with xParent tracked explicitly.
	y := z
	yOrigColor, err := op.color(y)
	if err != nil {
		return false, err
	}
	var x, xParent oid.OID

	zl, err := op.left(z)
	if err != nil {
		return false, err
	}
	zr, err := op.right(z)
	if err != nil {
		return false, err
	}
	zp, err := op.parent(z)
	if err != nil {
		return false, err
	}

	switch {
	case zl.IsNull():
		x, xParent = zr, zp
		if err := op.transplant(z, zr); err != nil {
			return false, err
		}
	case zr.IsNull():
		x, xParent = zl, zp
		if err := op.transplant(z, zl); err != nil {
			return false, err
		}
	default:
		// y = minimum of right subtree.
		y = zr
		for {
			l, err := op.left(y)
			if err != nil {
				return false, err
			}
			op.h.Emit.Branch("rbt.rm.minwalk", !l.IsNull())
			if l.IsNull() {
				break
			}
			y = l
		}
		if yOrigColor, err = op.color(y); err != nil {
			return false, err
		}
		if x, err = op.right(y); err != nil {
			return false, err
		}
		yp, err := op.parent(y)
		if err != nil {
			return false, err
		}
		if yp == z {
			xParent = y
			if !x.IsNull() {
				if err := op.setParent(x, y); err != nil {
					return false, err
				}
			}
		} else {
			xParent = yp
			if err := op.transplant(y, x); err != nil {
				return false, err
			}
			if err := op.setRight(y, zr); err != nil {
				return false, err
			}
			if err := op.setParent(zr, y); err != nil {
				return false, err
			}
		}
		if err := op.transplant(z, y); err != nil {
			return false, err
		}
		if err := op.setLeft(y, zl); err != nil {
			return false, err
		}
		if err := op.setParent(zl, y); err != nil {
			return false, err
		}
		zc, err := op.color(z)
		if err != nil {
			return false, err
		}
		if err := op.setColor(y, zc); err != nil {
			return false, err
		}
	}

	if yOrigColor == rbtBlack {
		if err := t.deleteFixup(op, x, xParent); err != nil {
			return false, err
		}
	}
	return true, ctx.Free(z)
}

// transplant repoints u's parent to v and fixes v's parent pointer.
func (op rbtOps) transplant(u, v oid.OID) error {
	up, err := op.parent(u)
	if err != nil {
		return err
	}
	if err := op.replaceChild(up, u, v); err != nil {
		return err
	}
	if !v.IsNull() {
		return op.setParent(v, up)
	}
	return nil
}

func (t *RBT) deleteFixup(op rbtOps, x, xParent oid.OID) error {
	e := op.h.Emit
	for {
		root, err := op.rootOID()
		if err != nil {
			return err
		}
		xc, err := op.color(x)
		if err != nil {
			return err
		}
		e.Branch("rbt.dfix.loop", x != root && xc == rbtBlack)
		if x == root || xc == rbtRed {
			break
		}
		pl, err := op.left(xParent)
		if err != nil {
			return err
		}
		if x == pl {
			w, err := op.right(xParent)
			if err != nil {
				return err
			}
			wc, err := op.color(w)
			if err != nil {
				return err
			}
			if wc == rbtRed {
				if err := op.setColor(w, rbtBlack); err != nil {
					return err
				}
				if err := op.setColor(xParent, rbtRed); err != nil {
					return err
				}
				if err := op.rotateLeft(xParent); err != nil {
					return err
				}
				if w, err = op.right(xParent); err != nil {
					return err
				}
			}
			wl, err := op.left(w)
			if err != nil {
				return err
			}
			wr, err := op.right(w)
			if err != nil {
				return err
			}
			wlc, err := op.color(wl)
			if err != nil {
				return err
			}
			wrc, err := op.color(wr)
			if err != nil {
				return err
			}
			if wlc == rbtBlack && wrc == rbtBlack {
				if err := op.setColor(w, rbtRed); err != nil {
					return err
				}
				x = xParent
				if xParent, err = op.parent(xParent); err != nil {
					return err
				}
				continue
			}
			if wrc == rbtBlack {
				if err := op.setColor(wl, rbtBlack); err != nil {
					return err
				}
				if err := op.setColor(w, rbtRed); err != nil {
					return err
				}
				if err := op.rotateRight(w); err != nil {
					return err
				}
				if w, err = op.right(xParent); err != nil {
					return err
				}
			}
			pc, err := op.color(xParent)
			if err != nil {
				return err
			}
			if err := op.setColor(w, pc); err != nil {
				return err
			}
			if err := op.setColor(xParent, rbtBlack); err != nil {
				return err
			}
			if wr, err = op.right(w); err != nil {
				return err
			}
			if !wr.IsNull() {
				if err := op.setColor(wr, rbtBlack); err != nil {
					return err
				}
			}
			if err := op.rotateLeft(xParent); err != nil {
				return err
			}
			x, err = op.rootOID()
			if err != nil {
				return err
			}
			break
		}
		// Mirror image.
		w, err := op.left(xParent)
		if err != nil {
			return err
		}
		wc, err := op.color(w)
		if err != nil {
			return err
		}
		if wc == rbtRed {
			if err := op.setColor(w, rbtBlack); err != nil {
				return err
			}
			if err := op.setColor(xParent, rbtRed); err != nil {
				return err
			}
			if err := op.rotateRight(xParent); err != nil {
				return err
			}
			if w, err = op.left(xParent); err != nil {
				return err
			}
		}
		wl, err := op.left(w)
		if err != nil {
			return err
		}
		wr, err := op.right(w)
		if err != nil {
			return err
		}
		wlc, err := op.color(wl)
		if err != nil {
			return err
		}
		wrc, err := op.color(wr)
		if err != nil {
			return err
		}
		if wlc == rbtBlack && wrc == rbtBlack {
			if err := op.setColor(w, rbtRed); err != nil {
				return err
			}
			x = xParent
			if xParent, err = op.parent(xParent); err != nil {
				return err
			}
			continue
		}
		if wlc == rbtBlack {
			if err := op.setColor(wr, rbtBlack); err != nil {
				return err
			}
			if err := op.setColor(w, rbtRed); err != nil {
				return err
			}
			if err := op.rotateLeft(w); err != nil {
				return err
			}
			if w, err = op.left(xParent); err != nil {
				return err
			}
		}
		pc, err := op.color(xParent)
		if err != nil {
			return err
		}
		if err := op.setColor(w, pc); err != nil {
			return err
		}
		if err := op.setColor(xParent, rbtBlack); err != nil {
			return err
		}
		if wl, err = op.left(w); err != nil {
			return err
		}
		if !wl.IsNull() {
			if err := op.setColor(wl, rbtBlack); err != nil {
				return err
			}
		}
		if err := op.rotateRight(xParent); err != nil {
			return err
		}
		x, err = op.rootOID()
		if err != nil {
			return err
		}
		break
	}
	if !x.IsNull() {
		xc, err := op.color(x)
		if err != nil {
			return err
		}
		if xc != rbtBlack {
			return op.setColor(x, rbtBlack)
		}
	}
	return nil
}

// CheckInvariants verifies the red-black properties and BST ordering,
// returning the tree's black height. Verification helper for tests.
func (t *RBT) CheckInvariants(ctx Ctx) (int, error) {
	op := t.ops(ctx)
	root, err := op.rootOID()
	if err != nil {
		return 0, err
	}
	if root.IsNull() {
		return 0, nil
	}
	if c, _ := op.color(root); c != rbtBlack {
		return 0, fmt.Errorf("rbt: root is red")
	}
	var check func(o, parent oid.OID, lo, hi uint64) (int, error)
	check = func(o, parent oid.OID, lo, hi uint64) (int, error) {
		if o.IsNull() {
			return 1, nil
		}
		k, err := op.key(o)
		if err != nil {
			return 0, err
		}
		if k < lo || k > hi {
			return 0, fmt.Errorf("rbt: key %d violates BST order [%d,%d]", k, lo, hi)
		}
		p, err := op.parent(o)
		if err != nil {
			return 0, err
		}
		if p != parent {
			return 0, fmt.Errorf("rbt: node %v has parent %v, want %v", o, p, parent)
		}
		c, err := op.color(o)
		if err != nil {
			return 0, err
		}
		l, err := op.left(o)
		if err != nil {
			return 0, err
		}
		r, err := op.right(o)
		if err != nil {
			return 0, err
		}
		if c == rbtRed {
			if lc, _ := op.color(l); lc == rbtRed {
				return 0, fmt.Errorf("rbt: red node %v has red left child", o)
			}
			if rc, _ := op.color(r); rc == rbtRed {
				return 0, fmt.Errorf("rbt: red node %v has red right child", o)
			}
		}
		lh, err := check(l, o, lo, k)
		if err != nil {
			return 0, err
		}
		rh, err := check(r, o, k, hi)
		if err != nil {
			return 0, err
		}
		if lh != rh {
			return 0, fmt.Errorf("rbt: black-height mismatch at %v: %d vs %d", o, lh, rh)
		}
		if c == rbtBlack {
			lh++
		}
		return lh, nil
	}
	return check(root, oid.Null, 0, ^uint64(0))
}

// InOrder returns all keys in sorted order (verification helper).
func (t *RBT) InOrder(ctx Ctx) ([]uint64, error) {
	op := t.ops(ctx)
	root, err := op.rootOID()
	if err != nil {
		return nil, err
	}
	var keys []uint64
	var walk func(o oid.OID) error
	walk = func(o oid.OID) error {
		if o.IsNull() {
			return nil
		}
		l, err := op.left(o)
		if err != nil {
			return err
		}
		if err := walk(l); err != nil {
			return err
		}
		k, err := op.key(o)
		if err != nil {
			return err
		}
		keys = append(keys, k)
		r, err := op.right(o)
		if err != nil {
			return err
		}
		return walk(r)
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return keys, nil
}
