package pds

import (
	"fmt"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// BPlus is a B+ tree of order 7: internal nodes hold up to 6 separator keys
// and 7 children; leaves hold up to 6 key/value pairs and are chained for
// range scans. This is the paper's B+T workload (insert and delete with
// rebalancing, Table 5) and the index structure its TPC-C tables use.
//
// The root ObjectID is cached in volatile memory after the first read, the
// way applications hold their root TOID in a register/local: the anchor
// cell is only re-read after the cache is dropped (fresh handle) and only
// re-written when a split or collapse moves the root.
type BPlus struct {
	root      Cell
	cached    oid.OID
	haveCache bool
}

const (
	bpLeafOff = 0
	bpNOff    = 8
	bpKeysOff = 16 // 6 keys
	bpKidsOff = 64 // internal: 7 children
	bpValsOff = 64 // leaf: 6 values
	bpNextOff = 112
	bpOrder   = 7
	bpMaxKeys = bpOrder - 1
	// bpMinKeys is the minimum fill for non-root nodes.
	bpMinKeys  = bpMaxKeys / 2 // 3
	bpNodeSize = 128
)

// NewBPlus builds a tree anchored at the given cell.
func NewBPlus(root Cell) *BPlus { return &BPlus{root: root} }

// rootOID returns the root ObjectID, reading the anchor cell only when the
// volatile cache is cold.
func (t *BPlus) rootOID() (pmem.Word, error) {
	if t.haveCache {
		return pmem.Word{V: uint64(t.cached)}, nil
	}
	w, err := t.root.Get()
	if err != nil {
		return pmem.Word{}, err
	}
	t.cached, t.haveCache = w.OID(), true
	return w, nil
}

// DropCache invalidates the volatile root cache so the next access
// re-reads the anchor cell. Reattachment code paths that may have read
// the anchor while the media was corrupt (mount before a scrub) call
// this once the bytes are repaired: a poisoned cached OID otherwise
// outlives the repair.
func (t *BPlus) DropCache() { t.haveCache = false }

// setRootOID writes the anchor (snapshotting via ctx) and refreshes the
// cache.
func (t *BPlus) setRootOID(ctx Ctx, v oid.OID) error {
	if err := ctx.Touch(t.root.OID(), 8); err != nil {
		return err
	}
	if err := t.root.Set(v, pmem.Word{}); err != nil {
		return err
	}
	t.cached, t.haveCache = v, true
	return nil
}

// KV is one key/value pair returned by scans.
type KV struct {
	Key uint64
	Val uint64
}

type bpNode struct {
	oid  oid.OID
	leaf bool
	keys []uint64
	kids []oid.OID // internal
	vals []uint64  // leaf
	next oid.OID   // leaf chain
}

func (t *BPlus) read(ctx Ctx, o oid.OID, dep isa.Reg) (*bpNode, error) {
	ref, err := ctx.Heap().Deref(o, dep)
	if err != nil {
		return nil, err
	}
	leafW, err := ref.Load64(bpLeafOff)
	if err != nil {
		return nil, err
	}
	nW, err := ref.Load64(bpNOff)
	if err != nil {
		return nil, err
	}
	n := int(nW.V)
	if n > bpMaxKeys {
		return nil, fmt.Errorf("pds: corrupt b+tree node %v: n=%d", o, n)
	}
	nd := &bpNode{oid: o, leaf: leafW.V != 0, keys: make([]uint64, n)}
	for i := 0; i < n; i++ {
		w, err := ref.Load64(uint32(bpKeysOff + 8*i))
		if err != nil {
			return nil, err
		}
		nd.keys[i] = w.V
	}
	if nd.leaf {
		nd.vals = make([]uint64, n)
		for i := 0; i < n; i++ {
			w, err := ref.Load64(uint32(bpValsOff + 8*i))
			if err != nil {
				return nil, err
			}
			nd.vals[i] = w.V
		}
		w, err := ref.Load64(bpNextOff)
		if err != nil {
			return nil, err
		}
		nd.next = w.OID()
	} else {
		nd.kids = make([]oid.OID, n+1)
		for i := 0; i <= n; i++ {
			w, err := ref.Load64(uint32(bpKidsOff + 8*i))
			if err != nil {
				return nil, err
			}
			nd.kids[i] = w.OID()
		}
	}
	return nd, nil
}

func (t *BPlus) write(ctx Ctx, nd *bpNode) error {
	if err := ctx.Touch(nd.oid, bpNodeSize); err != nil {
		return err
	}
	ref, err := ctx.Heap().Deref(nd.oid, isa.RZ)
	if err != nil {
		return err
	}
	leaf := uint64(0)
	if nd.leaf {
		leaf = 1
	}
	if err := ref.Store64(bpLeafOff, leaf, isa.RZ); err != nil {
		return err
	}
	if err := ref.Store64(bpNOff, uint64(len(nd.keys)), isa.RZ); err != nil {
		return err
	}
	for i, k := range nd.keys {
		if err := ref.Store64(uint32(bpKeysOff+8*i), k, isa.RZ); err != nil {
			return err
		}
	}
	if nd.leaf {
		for i, v := range nd.vals {
			if err := ref.Store64(uint32(bpValsOff+8*i), v, isa.RZ); err != nil {
				return err
			}
		}
		if err := ref.Store64(bpNextOff, uint64(nd.next), isa.RZ); err != nil {
			return err
		}
	} else {
		for i, c := range nd.kids {
			if err := ref.Store64(uint32(bpKidsOff+8*i), uint64(c), isa.RZ); err != nil {
				return err
			}
		}
	}
	return nil
}

type bpStep struct {
	node *bpNode
	idx  int // child index taken (internal) / key position (leaf)
}

// descend walks root→leaf for key, returning the path.
func (t *BPlus) descend(ctx Ctx, key uint64) ([]bpStep, error) {
	rootW, err := t.rootOID()
	if err != nil {
		return nil, err
	}
	if rootW.OID().IsNull() {
		return nil, nil
	}
	e := ctx.Heap().Emit
	var path []bpStep
	cur, dep := rootW.OID(), rootW.Reg
	for {
		nd, err := t.read(ctx, cur, dep)
		if err != nil {
			return nil, err
		}
		if nd.leaf {
			i := 0
			for i < len(nd.keys) && nd.keys[i] < key {
				i++
			}
			e.Compute(nodeWork)
			e.Branch("bp.leafpos", i < len(nd.keys))
			path = append(path, bpStep{nd, i})
			return path, nil
		}
		i := 0
		for i < len(nd.keys) && key >= nd.keys[i] {
			i++
		}
		e.Compute(nodeWork)
		e.Branch("bp.descend", true)
		path = append(path, bpStep{nd, i})
		cur, dep = nd.kids[i], isa.RZ
	}
}

// Find returns the value stored under key.
func (t *BPlus) Find(ctx Ctx, key uint64) (uint64, bool, error) {
	path, err := t.descend(ctx, key)
	if err != nil || path == nil {
		return 0, false, err
	}
	leaf := path[len(path)-1]
	if leaf.idx < len(leaf.node.keys) && leaf.node.keys[leaf.idx] == key {
		return leaf.node.vals[leaf.idx], true, nil
	}
	return 0, false, nil
}

// Insert adds key→val; inserting an existing key is an error.
func (t *BPlus) Insert(ctx Ctx, key, val uint64) error {
	rootW, err := t.rootOID()
	if err != nil {
		return err
	}
	if rootW.OID().IsNull() {
		o, err := ctx.Alloc(key, bpNodeSize)
		if err != nil {
			return err
		}
		nd := &bpNode{oid: o, leaf: true, keys: []uint64{key}, vals: []uint64{val}}
		if err := t.write(ctx, nd); err != nil {
			return err
		}
		return t.setRootOID(ctx, o)
	}
	path, err := t.descend(ctx, key)
	if err != nil {
		return err
	}
	leaf := path[len(path)-1]
	nd := leaf.node
	if leaf.idx < len(nd.keys) && nd.keys[leaf.idx] == key {
		return fmt.Errorf("pds: duplicate b+tree key %d", key)
	}
	nd.keys = insertAt(nd.keys, leaf.idx, key)
	nd.vals = insertAt(nd.vals, leaf.idx, val)

	var carryKey uint64
	var carryKid oid.OID
	carrying := false
	for level := len(path) - 1; level >= 0; level-- {
		nd = path[level].node
		if carrying {
			i := path[level].idx
			nd.keys = insertAt(nd.keys, i, carryKey)
			nd.kids = insertOIDAt(nd.kids, i+1, carryKid)
			carrying = false
		}
		if len(nd.keys) <= bpMaxKeys {
			return t.write(ctx, nd)
		}
		rightOID, err := ctx.Alloc(nd.keys[len(nd.keys)/2], bpNodeSize)
		if err != nil {
			return err
		}
		right := &bpNode{oid: rightOID, leaf: nd.leaf}
		if nd.leaf {
			// Leaf split: right keeps the upper half; the first key
			// of the right leaf is copied up.
			mid := len(nd.keys) / 2
			right.keys = append(right.keys, nd.keys[mid:]...)
			right.vals = append(right.vals, nd.vals[mid:]...)
			right.next = nd.next
			nd.keys = nd.keys[:mid]
			nd.vals = nd.vals[:mid]
			nd.next = rightOID
			carryKey = right.keys[0]
		} else {
			// Internal split: the median moves up.
			mid := len(nd.keys) / 2
			carryKey = nd.keys[mid]
			right.keys = append(right.keys, nd.keys[mid+1:]...)
			right.kids = append(right.kids, nd.kids[mid+1:]...)
			nd.keys = nd.keys[:mid]
			nd.kids = nd.kids[:mid+1]
		}
		if err := t.write(ctx, nd); err != nil {
			return err
		}
		if err := t.write(ctx, right); err != nil {
			return err
		}
		carryKid = rightOID
		carrying = true
	}
	if carrying {
		oldRoot := path[0].node.oid
		newRootOID, err := ctx.Alloc(carryKey, bpNodeSize)
		if err != nil {
			return err
		}
		newRoot := &bpNode{oid: newRootOID, keys: []uint64{carryKey}, kids: []oid.OID{oldRoot, carryKid}}
		if err := t.write(ctx, newRoot); err != nil {
			return err
		}
		return t.setRootOID(ctx, newRootOID)
	}
	return nil
}

// Update overwrites the value under an existing key.
func (t *BPlus) Update(ctx Ctx, key, val uint64) (bool, error) {
	path, err := t.descend(ctx, key)
	if err != nil || path == nil {
		return false, err
	}
	leaf := path[len(path)-1]
	if leaf.idx >= len(leaf.node.keys) || leaf.node.keys[leaf.idx] != key {
		return false, nil
	}
	leaf.node.vals[leaf.idx] = val
	return true, t.write(ctx, leaf.node)
}

// Remove deletes key, rebalancing with borrow/merge, and reports whether it
// was present.
func (t *BPlus) Remove(ctx Ctx, key uint64) (bool, error) {
	path, err := t.descend(ctx, key)
	if err != nil || path == nil {
		return false, err
	}
	leafStep := path[len(path)-1]
	nd := leafStep.node
	if leafStep.idx >= len(nd.keys) || nd.keys[leafStep.idx] != key {
		return false, nil
	}
	nd.keys = removeAt(nd.keys, leafStep.idx)
	nd.vals = removeAt(nd.vals, leafStep.idx)
	if err := t.write(ctx, nd); err != nil {
		return false, err
	}

	// Rebalance upward.
	for level := len(path) - 1; level > 0; level-- {
		nd = path[level].node
		if len(nd.keys) >= bpMinKeys {
			return true, nil
		}
		parent := path[level-1].node
		ci := path[level-1].idx
		if err := t.fixUnderflow(ctx, parent, ci, nd); err != nil {
			return false, err
		}
	}
	// Root handling: an empty internal root is replaced by its child; an
	// empty leaf root empties the tree.
	root := path[0].node
	if len(root.keys) == 0 {
		if root.leaf {
			if err := t.setRootOID(ctx, oid.Null); err != nil {
				return false, err
			}
		} else {
			if err := t.setRootOID(ctx, root.kids[0]); err != nil {
				return false, err
			}
		}
		if err := ctx.Free(root.oid); err != nil {
			return false, err
		}
	}
	return true, nil
}

// fixUnderflow restores the fill of parent.kids[ci] (already read as child)
// by borrowing from a sibling or merging. parent is modified in place (the
// caller continues rebalancing with it).
func (t *BPlus) fixUnderflow(ctx Ctx, parent *bpNode, ci int, child *bpNode) error {
	// Try borrowing from the left sibling.
	if ci > 0 {
		left, err := t.read(ctx, parent.kids[ci-1], isa.RZ)
		if err != nil {
			return err
		}
		if len(left.keys) > bpMinKeys {
			if child.leaf {
				k := left.keys[len(left.keys)-1]
				v := left.vals[len(left.vals)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.vals = left.vals[:len(left.vals)-1]
				child.keys = insertAt(child.keys, 0, k)
				child.vals = insertAt(child.vals, 0, v)
				parent.keys[ci-1] = k
			} else {
				child.keys = insertAt(child.keys, 0, parent.keys[ci-1])
				child.kids = insertOIDAt(child.kids, 0, left.kids[len(left.kids)-1])
				parent.keys[ci-1] = left.keys[len(left.keys)-1]
				left.keys = left.keys[:len(left.keys)-1]
				left.kids = left.kids[:len(left.kids)-1]
			}
			if err := t.write(ctx, left); err != nil {
				return err
			}
			if err := t.write(ctx, child); err != nil {
				return err
			}
			return t.write(ctx, parent)
		}
	}
	// Try borrowing from the right sibling.
	if ci < len(parent.kids)-1 {
		right, err := t.read(ctx, parent.kids[ci+1], isa.RZ)
		if err != nil {
			return err
		}
		if len(right.keys) > bpMinKeys {
			if child.leaf {
				k := right.keys[0]
				v := right.vals[0]
				right.keys = removeAt(right.keys, 0)
				right.vals = removeAt(right.vals, 0)
				child.keys = append(child.keys, k)
				child.vals = append(child.vals, v)
				parent.keys[ci] = right.keys[0]
			} else {
				child.keys = append(child.keys, parent.keys[ci])
				child.kids = append(child.kids, right.kids[0])
				parent.keys[ci] = right.keys[0]
				right.keys = removeAt(right.keys, 0)
				right.kids = right.kids[1:]
			}
			if err := t.write(ctx, right); err != nil {
				return err
			}
			if err := t.write(ctx, child); err != nil {
				return err
			}
			return t.write(ctx, parent)
		}
	}
	// Merge with a sibling (into the left node of the pair).
	var leftNode, rightNode *bpNode
	var sep int
	if ci > 0 {
		l, err := t.read(ctx, parent.kids[ci-1], isa.RZ)
		if err != nil {
			return err
		}
		leftNode, rightNode, sep = l, child, ci-1
	} else {
		r, err := t.read(ctx, parent.kids[ci+1], isa.RZ)
		if err != nil {
			return err
		}
		leftNode, rightNode, sep = child, r, ci
	}
	if leftNode.leaf {
		leftNode.keys = append(leftNode.keys, rightNode.keys...)
		leftNode.vals = append(leftNode.vals, rightNode.vals...)
		leftNode.next = rightNode.next
	} else {
		leftNode.keys = append(leftNode.keys, parent.keys[sep])
		leftNode.keys = append(leftNode.keys, rightNode.keys...)
		leftNode.kids = append(leftNode.kids, rightNode.kids...)
	}
	parent.keys = removeAt(parent.keys, sep)
	parent.kids = append(parent.kids[:sep+1], parent.kids[sep+2:]...)
	if err := t.write(ctx, leftNode); err != nil {
		return err
	}
	if err := t.write(ctx, parent); err != nil {
		return err
	}
	return ctx.Free(rightNode.oid)
}

// Scan returns up to max pairs with key >= from, in key order, following
// the leaf chain.
func (t *BPlus) Scan(ctx Ctx, from uint64, max int) ([]KV, error) {
	path, err := t.descend(ctx, from)
	if err != nil || path == nil {
		return nil, err
	}
	leaf := path[len(path)-1]
	nd, i := leaf.node, leaf.idx
	var out []KV
	for len(out) < max {
		for ; i < len(nd.keys) && len(out) < max; i++ {
			out = append(out, KV{nd.keys[i], nd.vals[i]})
		}
		if len(out) >= max || nd.next.IsNull() {
			break
		}
		if nd, err = t.read(ctx, nd.next, isa.RZ); err != nil {
			return nil, err
		}
		i = 0
	}
	return out, nil
}

// CheckInvariants verifies ordering, fill, uniform leaf depth and leaf-chain
// consistency, returning the number of keys (verification helper).
func (t *BPlus) CheckInvariants(ctx Ctx) (int, error) {
	rootW, err := t.rootOID()
	if err != nil {
		return 0, err
	}
	if rootW.OID().IsNull() {
		return 0, nil
	}
	leafDepth := -1
	var leaves []oid.OID
	count := 0
	var walk func(o oid.OID, depth int, lo, hi uint64, isRoot bool) error
	walk = func(o oid.OID, depth int, lo, hi uint64, isRoot bool) error {
		nd, err := t.read(ctx, o, isa.RZ)
		if err != nil {
			return err
		}
		if len(nd.keys) > bpMaxKeys {
			return fmt.Errorf("b+tree: node %v overfull", o)
		}
		if !isRoot && len(nd.keys) < bpMinKeys {
			return fmt.Errorf("b+tree: node %v underfull (%d keys)", o, len(nd.keys))
		}
		prev := lo
		for _, k := range nd.keys {
			if k < prev || k >= hi {
				return fmt.Errorf("b+tree: key %d out of range [%d,%d) in %v", k, lo, hi, o)
			}
			prev = k
		}
		if nd.leaf {
			count += len(nd.keys)
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("b+tree: leaves at depths %d and %d", leafDepth, depth)
			}
			leaves = append(leaves, o)
			return nil
		}
		if len(nd.kids) != len(nd.keys)+1 {
			return fmt.Errorf("b+tree: node %v has %d keys, %d children", o, len(nd.keys), len(nd.kids))
		}
		for i, c := range nd.kids {
			clo, chi := lo, hi
			if i > 0 {
				clo = nd.keys[i-1]
			}
			if i < len(nd.keys) {
				chi = nd.keys[i]
			}
			if err := walk(c, depth+1, clo, chi, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(rootW.OID(), 0, 0, ^uint64(0), true); err != nil {
		return 0, err
	}
	// The leaf chain must visit exactly the leaves, left to right.
	first := leaves[0]
	nd, err := t.read(ctx, first, isa.RZ)
	if err != nil {
		return 0, err
	}
	for i := 1; i < len(leaves); i++ {
		if nd.next != leaves[i] {
			return 0, fmt.Errorf("b+tree: leaf chain broken at %d: %v -> %v, want %v", i, nd.oid, nd.next, leaves[i])
		}
		if nd, err = t.read(ctx, nd.next, isa.RZ); err != nil {
			return 0, err
		}
	}
	if !nd.next.IsNull() {
		return 0, fmt.Errorf("b+tree: last leaf has dangling next %v", nd.next)
	}
	return count, nil
}

func removeAt(s []uint64, i int) []uint64 {
	return append(s[:i], s[i+1:]...)
}
