package pds

import (
	"fmt"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// BTree is a B-tree of order 7 (max 7 children, max 6 keys per node), the
// paper's BT workload: search, and insert when missing (Table 5 lists no
// deletion for BT). Keys live in internal nodes as well as leaves.
type BTree struct {
	root Cell
}

// Node layout (shared with the B+ tree): flags and counts first, then the
// key array, then the child/value array.
const (
	btLeafOff  = 0
	btNOff     = 8
	btKeysOff  = 16 // 6 keys * 8
	btKidsOff  = 64 // 7 children * 8
	btOrder    = 7
	btMaxKeys  = btOrder - 1
	btNodeSize = 128
)

// NewBTree builds a tree anchored at the given cell.
func NewBTree(root Cell) *BTree { return &BTree{root: root} }

// btNode is the in-memory image of one node, populated by emitted loads and
// written back by emitted stores.
type btNode struct {
	oid  oid.OID
	leaf bool
	keys []uint64
	kids []oid.OID
}

func (t *BTree) read(ctx Ctx, o oid.OID, dep isa.Reg) (*btNode, error) {
	h := ctx.Heap()
	ref, err := h.Deref(o, dep)
	if err != nil {
		return nil, err
	}
	leafW, err := ref.Load64(btLeafOff)
	if err != nil {
		return nil, err
	}
	nW, err := ref.Load64(btNOff)
	if err != nil {
		return nil, err
	}
	n := int(nW.V)
	if n > btMaxKeys {
		return nil, fmt.Errorf("pds: corrupt btree node %v: n=%d", o, n)
	}
	nd := &btNode{oid: o, leaf: leafW.V != 0, keys: make([]uint64, n)}
	for i := 0; i < n; i++ {
		w, err := ref.Load64(uint32(btKeysOff + 8*i))
		if err != nil {
			return nil, err
		}
		nd.keys[i] = w.V
	}
	if !nd.leaf {
		nd.kids = make([]oid.OID, n+1)
		for i := 0; i <= n; i++ {
			w, err := ref.Load64(uint32(btKidsOff + 8*i))
			if err != nil {
				return nil, err
			}
			nd.kids[i] = w.OID()
		}
	}
	return nd, nil
}

func (t *BTree) write(ctx Ctx, nd *btNode) error {
	h := ctx.Heap()
	if err := ctx.Touch(nd.oid, btNodeSize); err != nil {
		return err
	}
	ref, err := h.Deref(nd.oid, isa.RZ)
	if err != nil {
		return err
	}
	leaf := uint64(0)
	if nd.leaf {
		leaf = 1
	}
	if err := ref.Store64(btLeafOff, leaf, isa.RZ); err != nil {
		return err
	}
	if err := ref.Store64(btNOff, uint64(len(nd.keys)), isa.RZ); err != nil {
		return err
	}
	for i, k := range nd.keys {
		if err := ref.Store64(uint32(btKeysOff+8*i), k, isa.RZ); err != nil {
			return err
		}
	}
	if !nd.leaf {
		for i, c := range nd.kids {
			if err := ref.Store64(uint32(btKidsOff+8*i), uint64(c), isa.RZ); err != nil {
				return err
			}
		}
	}
	return nil
}

// Find reports whether key is present.
func (t *BTree) Find(ctx Ctx, key uint64) (bool, error) {
	e := ctx.Heap().Emit
	rootW, err := t.root.Get()
	if err != nil {
		return false, err
	}
	cur := rootW.OID()
	dep := rootW.Reg
	for !cur.IsNull() {
		nd, err := t.read(ctx, cur, dep)
		if err != nil {
			return false, err
		}
		i := 0
		for i < len(nd.keys) && key > nd.keys[i] {
			cmp := e.Compute(2)
			e.Branch("bt.find.scan", true, cmp)
			i++
		}
		e.Branch("bt.find.scan", false)
		if i < len(nd.keys) && nd.keys[i] == key {
			e.Branch("bt.find.hit", true)
			return true, nil
		}
		e.Branch("bt.find.hit", false)
		if nd.leaf {
			return false, nil
		}
		cur = nd.kids[i]
		dep = isa.RZ
	}
	return false, nil
}

// Insert adds key (caller ensures it is absent; duplicate insertion is an
// error surfaced by the balance check rather than silently tolerated).
func (t *BTree) Insert(ctx Ctx, key uint64) error {
	rootW, err := t.root.Get()
	if err != nil {
		return err
	}
	if rootW.OID().IsNull() {
		// First key: materialize the root leaf.
		o, err := ctx.Alloc(key, btNodeSize)
		if err != nil {
			return err
		}
		if err := t.write(ctx, &btNode{oid: o, leaf: true, keys: []uint64{key}}); err != nil {
			return err
		}
		if err := ctx.Touch(t.root.OID(), 8); err != nil {
			return err
		}
		return t.root.Set(o, pmem.Word{})
	}

	// Descend to the leaf, remembering the path.
	type step struct {
		node *btNode
		idx  int
	}
	var path []step
	cur := rootW.OID()
	dep := rootW.Reg
	for {
		nd, err := t.read(ctx, cur, dep)
		if err != nil {
			return err
		}
		i := 0
		for i < len(nd.keys) && key > nd.keys[i] {
			i++
		}
		ctx.Heap().Emit.Compute(nodeWork)
		if i < len(nd.keys) && nd.keys[i] == key {
			return fmt.Errorf("pds: duplicate btree key %d", key)
		}
		path = append(path, step{nd, i})
		if nd.leaf {
			break
		}
		cur = nd.kids[i]
		dep = isa.RZ
	}

	// Insert into the leaf, splitting upward while nodes overflow.
	leafStep := path[len(path)-1]
	nd := leafStep.node
	nd.keys = insertAt(nd.keys, leafStep.idx, key)

	var carryKey uint64
	var carryKid oid.OID
	carrying := false
	for level := len(path) - 1; level >= 0; level-- {
		nd = path[level].node
		if carrying {
			i := path[level].idx
			nd.keys = insertAt(nd.keys, i, carryKey)
			nd.kids = insertOIDAt(nd.kids, i+1, carryKid)
			carrying = false
		}
		if len(nd.keys) <= btMaxKeys {
			if err := t.write(ctx, nd); err != nil {
				return err
			}
			return nil
		}
		// Split around the median.
		mid := len(nd.keys) / 2
		carryKey = nd.keys[mid]
		rightKeys := append([]uint64(nil), nd.keys[mid+1:]...)
		var rightKids []oid.OID
		if !nd.leaf {
			rightKids = append([]oid.OID(nil), nd.kids[mid+1:]...)
			nd.kids = nd.kids[:mid+1]
		}
		nd.keys = nd.keys[:mid]
		rightOID, err := ctx.Alloc(carryKey, btNodeSize)
		if err != nil {
			return err
		}
		right := &btNode{oid: rightOID, leaf: nd.leaf, keys: rightKeys, kids: rightKids}
		if err := t.write(ctx, nd); err != nil {
			return err
		}
		if err := t.write(ctx, right); err != nil {
			return err
		}
		carryKid = rightOID
		carrying = true
	}
	if carrying {
		// The root itself split: grow the tree.
		oldRoot := path[0].node.oid
		newRootOID, err := ctx.Alloc(carryKey, btNodeSize)
		if err != nil {
			return err
		}
		newRoot := &btNode{
			oid:  newRootOID,
			leaf: false,
			keys: []uint64{carryKey},
			kids: []oid.OID{oldRoot, carryKid},
		}
		if err := t.write(ctx, newRoot); err != nil {
			return err
		}
		if err := ctx.Touch(t.root.OID(), 8); err != nil {
			return err
		}
		return t.root.Set(newRootOID, pmem.Word{})
	}
	return nil
}

// CheckInvariants verifies key ordering, node fill and uniform leaf depth,
// returning the number of keys (verification helper).
func (t *BTree) CheckInvariants(ctx Ctx) (int, error) {
	rootW, err := t.root.Get()
	if err != nil {
		return 0, err
	}
	if rootW.OID().IsNull() {
		return 0, nil
	}
	count := 0
	leafDepth := -1
	var walk func(o oid.OID, depth int, lo, hi uint64, isRoot bool) error
	walk = func(o oid.OID, depth int, lo, hi uint64, isRoot bool) error {
		nd, err := t.read(ctx, o, isa.RZ)
		if err != nil {
			return err
		}
		if len(nd.keys) > btMaxKeys {
			return fmt.Errorf("btree: node %v overfull (%d keys)", o, len(nd.keys))
		}
		if !isRoot && len(nd.keys) < 1 {
			return fmt.Errorf("btree: node %v empty", o)
		}
		prev := lo
		for _, k := range nd.keys {
			if k < prev || k > hi {
				return fmt.Errorf("btree: key %d out of order in %v", k, o)
			}
			prev = k
			count++
		}
		if nd.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				return fmt.Errorf("btree: leaves at depths %d and %d", leafDepth, depth)
			}
			return nil
		}
		if len(nd.kids) != len(nd.keys)+1 {
			return fmt.Errorf("btree: node %v has %d keys but %d children", o, len(nd.keys), len(nd.kids))
		}
		for i, c := range nd.kids {
			clo, chi := lo, hi
			if i > 0 {
				clo = nd.keys[i-1]
			}
			if i < len(nd.keys) {
				chi = nd.keys[i]
			}
			if err := walk(c, depth+1, clo, chi, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(rootW.OID(), 0, 0, ^uint64(0), true); err != nil {
		return 0, err
	}
	return count, nil
}

func insertAt(s []uint64, i int, v uint64) []uint64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertOIDAt(s []oid.OID, i int, v oid.OID) []oid.OID {
	s = append(s, oid.Null)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
