package pds

import (
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// List is the paper's persistent singly-linked list (§2.2, Figure 4):
// node = {key, next OID}, anchored by a head cell. The list may span pools.
type List struct {
	head Cell
}

// List node layout.
const (
	listKeyOff  = 0
	listNextOff = 8
	// ListNodeBytes is the allocation size of one node.
	ListNodeBytes = 16
)

// NewList builds a list anchored at the given cell (which must read
// oid.Null for an empty list).
func NewList(head Cell) *List { return &List{head: head} }

// Find traverses the list for key, returning the node's ObjectID (Null if
// absent). This is the paper's find() with its per-node translation.
func (l *List) Find(ctx Ctx, key uint64) (oid.OID, error) {
	h := ctx.Heap()
	cur, err := l.head.Get()
	if err != nil {
		return oid.Null, err
	}
	e := h.Emit
	for !cur.OID().IsNull() {
		ref, err := h.Deref(cur.OID(), cur.Reg)
		if err != nil {
			return oid.Null, err
		}
		k, err := ref.Load64(listKeyOff)
		if err != nil {
			return oid.Null, err
		}
		cmp := e.Compute(nodeWork, k.Reg)
		match := k.V == key
		e.Branch("list.find.match", match, cmp)
		if match {
			return cur.OID(), nil
		}
		if cur, err = ref.Load64(listNextOff); err != nil {
			return oid.Null, err
		}
		e.Branch("list.find.next", !cur.OID().IsNull(), cur.Reg)
	}
	return oid.Null, nil
}

// Insert pushes a new node with the key at the head (the paper's insert).
func (l *List) Insert(ctx Ctx, key uint64) error {
	h := ctx.Heap()
	node, err := ctx.Alloc(key, ListNodeBytes)
	if err != nil {
		return err
	}
	ref, err := h.Deref(node, isa.RZ)
	if err != nil {
		return err
	}
	if err := ref.Store64(listKeyOff, key, isa.RZ); err != nil {
		return err
	}
	old, err := l.head.Get()
	if err != nil {
		return err
	}
	if err := ref.Store64(listNextOff, old.V, old.Reg); err != nil {
		return err
	}
	if err := ctx.Touch(l.head.OID(), 8); err != nil {
		return err
	}
	return l.head.Set(node, pmem.Word{})
}

// Remove unlinks and frees the first node with the key. It reports whether
// a node was removed.
func (l *List) Remove(ctx Ctx, key uint64) (bool, error) {
	h := ctx.Heap()
	e := h.Emit
	prev := oid.Null // Null = the head cell itself
	cur, err := l.head.Get()
	if err != nil {
		return false, err
	}
	for !cur.OID().IsNull() {
		ref, err := h.Deref(cur.OID(), cur.Reg)
		if err != nil {
			return false, err
		}
		k, err := ref.Load64(listKeyOff)
		if err != nil {
			return false, err
		}
		cmp := e.Compute(nodeWork, k.Reg)
		match := k.V == key
		e.Branch("list.rm.match", match, cmp)
		next, err := ref.Load64(listNextOff)
		if err != nil {
			return false, err
		}
		if match {
			if prev.IsNull() {
				if err := ctx.Touch(l.head.OID(), 8); err != nil {
					return false, err
				}
				if err := l.head.Set(next.OID(), next); err != nil {
					return false, err
				}
			} else {
				if err := ctx.Touch(prev.FieldAt(listNextOff), 8); err != nil {
					return false, err
				}
				pref, err := h.Deref(prev, isa.RZ)
				if err != nil {
					return false, err
				}
				if err := pref.Store64(listNextOff, next.V, next.Reg); err != nil {
					return false, err
				}
			}
			if err := ctx.Free(cur.OID()); err != nil {
				return false, err
			}
			return true, nil
		}
		prev = cur.OID()
		cur = next
		e.Branch("list.rm.next", !cur.OID().IsNull(), cur.Reg)
	}
	return false, nil
}

// Len walks the list and counts nodes (verification helper; emits the
// traversal like any read).
func (l *List) Len(ctx Ctx) (int, error) {
	h := ctx.Heap()
	n := 0
	cur, err := l.head.Get()
	if err != nil {
		return 0, err
	}
	for !cur.OID().IsNull() {
		ref, err := h.Deref(cur.OID(), cur.Reg)
		if err != nil {
			return 0, err
		}
		if cur, err = ref.Load64(listNextOff); err != nil {
			return 0, err
		}
		n++
	}
	return n, nil
}

// Keys returns the keys in list order (verification helper).
func (l *List) Keys(ctx Ctx) ([]uint64, error) {
	h := ctx.Heap()
	var keys []uint64
	cur, err := l.head.Get()
	if err != nil {
		return nil, err
	}
	for !cur.OID().IsNull() {
		ref, err := h.Deref(cur.OID(), cur.Reg)
		if err != nil {
			return nil, err
		}
		k, err := ref.Load64(listKeyOff)
		if err != nil {
			return nil, err
		}
		keys = append(keys, k.V)
		if cur, err = ref.Load64(listNextOff); err != nil {
			return nil, err
		}
	}
	return keys, nil
}
