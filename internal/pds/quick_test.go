package pds

import (
	"sort"
	"testing"
	"testing/quick"
)

// Property (quick): any operation sequence leaves the B+ tree consistent
// with a reference map — insert/update/remove/find driven by generated
// bytes, invariants checked at the end.
func TestQuickBPlusMatchesMap(t *testing.T) {
	f := func(script []byte) bool {
		c, cell := newCtx(t, 1, false)
		bp := NewBPlus(cell)
		ref := map[uint64]uint64{}
		for i, b := range script {
			key := uint64(b % 64)
			switch i % 3 {
			case 0: // upsert
				val := uint64(i)
				if _, ok := ref[key]; ok {
					if ok2, err := bp.Update(c, key, val); err != nil || !ok2 {
						return false
					}
				} else if err := bp.Insert(c, key, val); err != nil {
					return false
				}
				ref[key] = val
			case 1: // remove
				want := false
				if _, ok := ref[key]; ok {
					want = true
					delete(ref, key)
				}
				got, err := bp.Remove(c, key)
				if err != nil || got != want {
					return false
				}
			case 2: // find
				v, found, err := bp.Find(c, key)
				if err != nil {
					return false
				}
				want, ok := ref[key]
				if found != ok || (ok && v != want) {
					return false
				}
			}
		}
		n, err := bp.CheckInvariants(c)
		return err == nil && n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property (quick): the B-tree agrees with a reference set and its in-order
// structure stays sorted under arbitrary insert/remove scripts.
func TestQuickBTreeMatchesSet(t *testing.T) {
	f := func(script []byte) bool {
		c, cell := newCtx(t, 1, false)
		bt := NewBTree(cell)
		ref := map[uint64]bool{}
		for _, b := range script {
			key := uint64(b % 48)
			if ref[key] {
				ok, err := bt.Remove(c, key)
				if err != nil || !ok {
					return false
				}
				delete(ref, key)
			} else {
				if err := bt.Insert(c, key); err != nil {
					return false
				}
				ref[key] = true
			}
		}
		n, err := bt.CheckInvariants(c)
		return err == nil && n == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property (quick): RBT in-order output equals the sorted reference keys
// after any script, and the red-black invariants hold.
func TestQuickRBTSorted(t *testing.T) {
	f := func(script []byte) bool {
		c, cell := newCtx(t, 1, false)
		rbt := NewRBT(cell)
		ref := map[uint64]bool{}
		for _, b := range script {
			key := uint64(b % 48)
			if ref[key] {
				ok, err := rbt.Remove(c, key)
				if err != nil || !ok {
					return false
				}
				delete(ref, key)
			} else {
				if err := rbt.Insert(c, key); err != nil {
					return false
				}
				ref[key] = true
			}
		}
		if _, err := rbt.CheckInvariants(c); err != nil {
			return false
		}
		got, err := rbt.InOrder(c)
		if err != nil {
			return false
		}
		want := make([]uint64, 0, len(ref))
		for k := range ref {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
