package pds_test

import (
	"fmt"

	"potgo/internal/emit"
	"potgo/internal/oid"
	"potgo/internal/pds"
	"potgo/internal/pmem"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// onePool is the simplest pds.Ctx: one pool, no failure safety.
type onePool struct {
	h *pmem.Heap
	p *pmem.Pool
}

func (c onePool) Heap() *pmem.Heap { return c.h }
func (c onePool) Alloc(_ uint64, size uint32) (oid.OID, error) {
	return c.h.Alloc(c.p, size)
}
func (c onePool) Free(o oid.OID) error        { return c.h.Free(o) }
func (c onePool) Touch(oid.OID, uint32) error { return nil }

func newExampleCtx(seed int64) (onePool, pds.Cell) {
	as := vm.NewAddressSpace(seed)
	h, _ := pmem.NewHeap(as, pmem.NewStore(), emit.New(trace.Discard{}, emit.Opt), nil)
	p, _ := h.Create("example", 4<<20)
	root, _ := h.Root(p, 64)
	return onePool{h: h, p: p}, pds.NewCell(h, root)
}

// ExampleList builds the paper's §2.2 persistent linked list.
func ExampleList() {
	ctx, cell := newExampleCtx(1)
	l := pds.NewList(cell)
	for _, k := range []uint64{3, 1, 4} {
		_ = l.Insert(ctx, k)
	}
	hit, _ := l.Find(ctx, 1)
	removed, _ := l.Remove(ctx, 3)
	n, _ := l.Len(ctx)
	fmt.Println("found 1:", !hit.IsNull(), "removed 3:", removed, "len:", n)
	// Output:
	// found 1: true removed 3: true len: 2
}

// ExampleBPlus exercises the order-7 B+ tree that also backs the TPC-C
// tables.
func ExampleBPlus() {
	ctx, cell := newExampleCtx(2)
	t := pds.NewBPlus(cell)
	for k := uint64(1); k <= 20; k++ {
		_ = t.Insert(ctx, k, k*100)
	}
	v, found, _ := t.Find(ctx, 12)
	kvs, _ := t.Scan(ctx, 17, 3)
	fmt.Println("find(12):", v, found)
	fmt.Println("scan(17,3):", kvs[0].Key, kvs[1].Key, kvs[2].Key)
	removed, _ := t.Remove(ctx, 12)
	_, found, _ = t.Find(ctx, 12)
	fmt.Println("removed:", removed, "still there:", found)
	// Output:
	// find(12): 1200 true
	// scan(17,3): 17 18 19
	// removed: true still there: false
}

// ExampleRBT shows the red-black tree keeping its invariants under churn.
func ExampleRBT() {
	ctx, cell := newExampleCtx(3)
	t := pds.NewRBT(cell)
	for k := uint64(0); k < 64; k++ {
		_ = t.Insert(ctx, k*37%64)
	}
	for k := uint64(0); k < 64; k += 2 {
		_, _ = t.Remove(ctx, k)
	}
	if _, err := t.CheckInvariants(ctx); err != nil {
		fmt.Println("broken:", err)
		return
	}
	keys, _ := t.InOrder(ctx)
	fmt.Println("red-black invariants hold;", len(keys), "keys remain")
	// Output:
	// red-black invariants hold; 32 keys remain
}
