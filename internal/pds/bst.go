package pds

import (
	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// BST is an unbalanced binary search tree: node = {key, left, right},
// anchored by a root cell. Deletion replaces a two-child node with the
// maximum of its left subtree, exactly as the paper's BST workload
// describes (Table 5).
type BST struct {
	root Cell
}

const (
	bstKeyOff   = 0
	bstLeftOff  = 8
	bstRightOff = 16
	// BSTNodeBytes is the allocation size of one node.
	BSTNodeBytes = 24
)

// NewBST builds a tree anchored at the given cell.
func NewBST(root Cell) *BST { return &BST{root: root} }

// Find returns the node holding key (Null if absent).
func (t *BST) Find(ctx Ctx, key uint64) (oid.OID, error) {
	h := ctx.Heap()
	e := h.Emit
	cur, err := t.root.Get()
	if err != nil {
		return oid.Null, err
	}
	for !cur.OID().IsNull() {
		ref, err := h.Deref(cur.OID(), cur.Reg)
		if err != nil {
			return oid.Null, err
		}
		k, err := ref.Load64(bstKeyOff)
		if err != nil {
			return oid.Null, err
		}
		cmp := e.Compute(nodeWork, k.Reg)
		switch {
		case key == k.V:
			e.Branch("bst.find.eq", true, cmp)
			return cur.OID(), nil
		case key < k.V:
			e.Branch("bst.find.eq", false, cmp)
			e.Branch("bst.find.lt", true, cmp)
			if cur, err = ref.Load64(bstLeftOff); err != nil {
				return oid.Null, err
			}
		default:
			e.Branch("bst.find.eq", false, cmp)
			e.Branch("bst.find.lt", false, cmp)
			if cur, err = ref.Load64(bstRightOff); err != nil {
				return oid.Null, err
			}
		}
	}
	return oid.Null, nil
}

// childOff returns the field offset for the left/right child.
func bstChildOff(left bool) uint32 {
	if left {
		return bstLeftOff
	}
	return bstRightOff
}

// Insert adds key (which must not already be present).
func (t *BST) Insert(ctx Ctx, key uint64) error {
	h := ctx.Heap()
	e := h.Emit
	node, err := ctx.Alloc(key, BSTNodeBytes)
	if err != nil {
		return err
	}
	nref, err := h.Deref(node, isa.RZ)
	if err != nil {
		return err
	}
	if err := nref.Store64(bstKeyOff, key, isa.RZ); err != nil {
		return err
	}
	if err := nref.Store64(bstLeftOff, 0, isa.RZ); err != nil {
		return err
	}
	if err := nref.Store64(bstRightOff, 0, isa.RZ); err != nil {
		return err
	}

	cur, err := t.root.Get()
	if err != nil {
		return err
	}
	if cur.OID().IsNull() {
		if err := ctx.Touch(t.root.OID(), 8); err != nil {
			return err
		}
		return t.root.Set(node, pmem.Word{})
	}
	for {
		ref, err := h.Deref(cur.OID(), cur.Reg)
		if err != nil {
			return err
		}
		k, err := ref.Load64(bstKeyOff)
		if err != nil {
			return err
		}
		cmp := e.Compute(nodeWork, k.Reg)
		left := key < k.V
		e.Branch("bst.ins.lt", left, cmp)
		child, err := ref.Load64(bstChildOff(left))
		if err != nil {
			return err
		}
		if child.OID().IsNull() {
			if err := ctx.Touch(cur.OID(), BSTNodeBytes); err != nil {
				return err
			}
			return ref.Store64(bstChildOff(left), uint64(node), isa.RZ)
		}
		cur = child
	}
}

// Remove deletes key, reporting whether it was present. A node with two
// children is replaced by the maximum of its left subtree (Table 5).
func (t *BST) Remove(ctx Ctx, key uint64) (bool, error) {
	h := ctx.Heap()
	e := h.Emit

	// Locate the node and its parent link (the cell or a child field).
	parentLink := t.root.OID() // OID of the 8-byte slot pointing at cur
	cur, err := t.root.Get()
	if err != nil {
		return false, err
	}
	for {
		if cur.OID().IsNull() {
			return false, nil
		}
		ref, err := h.Deref(cur.OID(), cur.Reg)
		if err != nil {
			return false, err
		}
		k, err := ref.Load64(bstKeyOff)
		if err != nil {
			return false, err
		}
		cmp := e.Compute(nodeWork, k.Reg)
		if key == k.V {
			e.Branch("bst.rm.eq", true, cmp)
			break
		}
		left := key < k.V
		e.Branch("bst.rm.eq", false, cmp)
		e.Branch("bst.rm.lt", left, cmp)
		parentLink = cur.OID().FieldAt(bstChildOff(left))
		if cur, err = ref.Load64(bstChildOff(left)); err != nil {
			return false, err
		}
	}

	node := cur.OID()
	ref, err := h.Deref(node, cur.Reg)
	if err != nil {
		return false, err
	}
	l, err := ref.Load64(bstLeftOff)
	if err != nil {
		return false, err
	}
	r, err := ref.Load64(bstRightOff)
	if err != nil {
		return false, err
	}

	switch {
	case l.OID().IsNull():
		// Replace by right child (possibly Null).
		if err := t.setLink(ctx, parentLink, r.OID(), r); err != nil {
			return false, err
		}
	case r.OID().IsNull():
		if err := t.setLink(ctx, parentLink, l.OID(), l); err != nil {
			return false, err
		}
	default:
		// Two children: find the max of the left subtree, splice it
		// out, and move its key into this node.
		maxLink := node.FieldAt(bstLeftOff)
		mx := l
		for {
			mref, err := h.Deref(mx.OID(), mx.Reg)
			if err != nil {
				return false, err
			}
			right, err := mref.Load64(bstRightOff)
			if err != nil {
				return false, err
			}
			e.Branch("bst.rm.maxwalk", !right.OID().IsNull(), right.Reg)
			if right.OID().IsNull() {
				break
			}
			maxLink = mx.OID().FieldAt(bstRightOff)
			mx = right
		}
		mref, err := h.Deref(mx.OID(), mx.Reg)
		if err != nil {
			return false, err
		}
		mkey, err := mref.Load64(bstKeyOff)
		if err != nil {
			return false, err
		}
		mleft, err := mref.Load64(bstLeftOff)
		if err != nil {
			return false, err
		}
		if err := ctx.Touch(node, BSTNodeBytes); err != nil {
			return false, err
		}
		if err := ref.Store64(bstKeyOff, mkey.V, mkey.Reg); err != nil {
			return false, err
		}
		if err := t.setLink(ctx, maxLink, mleft.OID(), mleft); err != nil {
			return false, err
		}
		return true, ctx.Free(mx.OID())
	}
	return true, ctx.Free(node)
}

// setLink writes a child/anchor slot, snapshotting it first.
func (t *BST) setLink(ctx Ctx, link oid.OID, v oid.OID, dep pmem.Word) error {
	h := ctx.Heap()
	if err := ctx.Touch(link, 8); err != nil {
		return err
	}
	ref, err := h.Deref(link, isa.RZ)
	if err != nil {
		return err
	}
	return ref.Store64(0, uint64(v), dep.Reg)
}

// InOrder returns all keys in sorted order (verification helper).
func (t *BST) InOrder(ctx Ctx) ([]uint64, error) {
	root, err := t.root.Get()
	if err != nil {
		return nil, err
	}
	var keys []uint64
	var walk func(o oid.OID) error
	walk = func(o oid.OID) error {
		if o.IsNull() {
			return nil
		}
		ref, err := ctx.Heap().Deref(o, isa.RZ)
		if err != nil {
			return err
		}
		k, err := ref.Load64(bstKeyOff)
		if err != nil {
			return err
		}
		l, err := ref.Load64(bstLeftOff)
		if err != nil {
			return err
		}
		r, err := ref.Load64(bstRightOff)
		if err != nil {
			return err
		}
		if err := walk(l.OID()); err != nil {
			return err
		}
		keys = append(keys, k.V)
		return walk(r.OID())
	}
	if err := walk(root.OID()); err != nil {
		return nil, err
	}
	return keys, nil
}
