// Package pds implements the persistent data structures of the paper's
// workloads (Table 5): a linked list, a binary search tree, a red-black
// tree, a B-tree and a B+ tree, plus the string array used by SPS.
//
// Every structure is built the way the paper's §2.2 example is: nodes are
// persistent objects linked by ObjectIDs (never raw pointers), so a
// structure may live in one pool or span many pools; every node visit
// dereferences an ObjectID through the heap, which costs an oid_direct call
// in BASE mode and nothing in OPT mode.
//
// Placement and failure-safety policy is supplied by the caller through the
// Ctx interface: where new nodes are allocated (the ALL/EACH/RANDOM pool
// usage patterns of Table 6) and whether mutations are snapshotted into the
// undo log (the BASE/OPT vs *_NTX configurations of Table 7).
package pds

import (
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// nodeWork is the per-node-visit application cost in single-cycle
// instructions (key compares, loop control, pointer bookkeeping) that
// compiled structure code executes besides its explicit loads, stores and
// branches.
const nodeWork = 12

// Ctx supplies allocation-placement and failure-safety policy to the
// structures.
type Ctx interface {
	// Heap returns the persistent heap all objects live in.
	Heap() *pmem.Heap
	// Alloc allocates a node of size bytes for the given key. The key
	// lets the RANDOM pattern pick its pool and the EACH pattern mint a
	// fresh one.
	Alloc(key uint64, size uint32) (oid.OID, error)
	// Free releases a node (transactional when failure-safety is on).
	Free(o oid.OID) error
	// Touch snapshots [o, o+size) into the undo log before modification
	// (a no-op when failure-safety is off). Implementations must
	// deduplicate per transaction.
	Touch(o oid.OID, size uint32) error
}

// Cell is an 8-byte persistent slot holding the anchor ObjectID of a
// structure (typically a field of a pool's root object).
type Cell struct {
	h *pmem.Heap
	o oid.OID
}

// NewCell wraps the slot at o.
func NewCell(h *pmem.Heap, o oid.OID) Cell { return Cell{h: h, o: o} }

// OID returns the slot's own ObjectID.
func (c Cell) OID() oid.OID { return c.o }

// Get reads the anchor.
func (c Cell) Get() (pmem.Word, error) {
	ref, err := c.h.Deref(c.o, 0)
	if err != nil {
		return pmem.Word{}, err
	}
	return ref.Load64(0)
}

// Set writes the anchor. Callers snapshot via Ctx.Touch first when running
// transactionally.
func (c Cell) Set(v oid.OID, dep pmem.Word) error {
	ref, err := c.h.Deref(c.o, 0)
	if err != nil {
		return err
	}
	return ref.Store64(0, uint64(v), dep.Reg)
}
