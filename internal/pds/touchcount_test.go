package pds

import (
	"potgo/internal/randtest"
	"testing"

	"potgo/internal/emit"
	"potgo/internal/oid"
	"potgo/internal/pmem"
	"potgo/internal/trace"
	"potgo/internal/vm"
)

// countingCtx implements the Ctx dedup contract ("implementations must
// deduplicate per transaction") and counts both Touch calls and the
// TxAddRange snapshots actually issued, per OID per transaction. The suite
// below drives every structure through transactional workloads and checks
// the invariant the undo log depends on: at most one snapshot per object
// per transaction (a second TxAddRange would burn log space and, worse, a
// snapshot taken after a first mutation would record the wrong pre-image
// if the dedup key were forgotten between operations).
type countingCtx struct {
	t       *testing.T
	h       *pmem.Heap
	pool    *pmem.Pool
	calls   map[oid.OID]int // Touch calls this transaction
	issued  map[oid.OID]int // TxAddRange snapshots this transaction
	dedupes int             // calls swallowed by dedup, across the test
}

func (c *countingCtx) Heap() *pmem.Heap { return c.h }

func (c *countingCtx) Alloc(key uint64, size uint32) (oid.OID, error) {
	if c.h.InTx() {
		return c.h.TxAlloc(c.pool, size)
	}
	return c.h.Alloc(c.pool, size)
}

func (c *countingCtx) Free(o oid.OID) error {
	if c.h.InTx() {
		return c.h.TxFree(o)
	}
	return c.h.Free(o)
}

func (c *countingCtx) Touch(o oid.OID, size uint32) error {
	if !c.h.InTx() {
		return nil
	}
	c.calls[o]++
	if c.issued[o] > 0 {
		c.dedupes++
		return nil
	}
	c.issued[o]++
	return c.h.TxAddRange(o, size)
}

func (c *countingCtx) begin() {
	c.t.Helper()
	c.calls = map[oid.OID]int{}
	c.issued = map[oid.OID]int{}
	if err := c.h.TxBegin(c.pool); err != nil {
		c.t.Fatal(err)
	}
}

// end commits and asserts the per-transaction snapshot invariant.
func (c *countingCtx) end() {
	c.t.Helper()
	if err := c.h.TxEnd(); err != nil {
		c.t.Fatal(err)
	}
	for o, n := range c.issued {
		if n > 1 {
			c.t.Fatalf("object %v snapshotted %d times in one transaction", o, n)
		}
		if c.calls[o] < n {
			c.t.Fatalf("object %v: %d snapshots for %d Touch calls", o, n, c.calls[o])
		}
	}
}

func newCountingCtx(t *testing.T) (*countingCtx, Cell) {
	t.Helper()
	as := vm.NewAddressSpace(31)
	em := emit.New(trace.Discard{}, emit.Opt)
	h, err := pmem.NewHeap(as, pmem.NewStore(), em, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.CreateSized("tc", 8<<20, 512*1024)
	if err != nil {
		t.Fatal(err)
	}
	root, err := h.Root(p, 64)
	if err != nil {
		t.Fatal(err)
	}
	return &countingCtx{t: t, h: h, pool: p}, NewCell(h, root)
}

// TestTouchOncePerTransaction drives all five structures through
// per-operation transactions and checks that every object is snapshotted
// at most once per transaction, and that the structures do re-Touch (so
// the dedup contract is actually load-bearing, not vacuous).
func TestTouchOncePerTransaction(t *testing.T) {
	structures := []struct {
		name string
		run  func(c *countingCtx, cell Cell, keys []uint64)
	}{
		{"List", func(c *countingCtx, cell Cell, keys []uint64) {
			l := NewList(cell)
			for _, k := range keys {
				c.begin()
				if err := l.Insert(c, k); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
			for _, k := range keys[:len(keys)/2] {
				c.begin()
				if _, err := l.Remove(c, k); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
		}},
		{"BST", func(c *countingCtx, cell Cell, keys []uint64) {
			s := NewBST(cell)
			for _, k := range keys {
				c.begin()
				if err := s.Insert(c, k); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
			for _, k := range keys[:len(keys)/2] {
				c.begin()
				if _, err := s.Remove(c, k); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
		}},
		{"RBT", func(c *countingCtx, cell Cell, keys []uint64) {
			s := NewRBT(cell)
			for _, k := range keys {
				c.begin()
				if err := s.Insert(c, k); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
			for _, k := range keys[:len(keys)/2] {
				c.begin()
				if _, err := s.Remove(c, k); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
		}},
		{"BTree", func(c *countingCtx, cell Cell, keys []uint64) {
			s := NewBTree(cell)
			for _, k := range keys {
				c.begin()
				if err := s.Insert(c, k); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
			for _, k := range keys[:len(keys)/2] {
				c.begin()
				if _, err := s.Remove(c, k); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
		}},
		{"BPlus", func(c *countingCtx, cell Cell, keys []uint64) {
			s := NewBPlus(cell)
			for _, k := range keys {
				c.begin()
				if err := s.Insert(c, k, k*2); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
			for _, k := range keys[:len(keys)/2] {
				c.begin()
				if _, err := s.Remove(c, k); err != nil {
					t.Fatal(err)
				}
				c.end()
			}
		}},
	}

	anyDedupes := false
	for _, sc := range structures {
		t.Run(sc.name, func(t *testing.T) {
			c, cell := newCountingCtx(t)
			rng := randtest.New(t, 7)
			keys := make([]uint64, 0, 128)
			seen := map[uint64]bool{}
			for len(keys) < 128 {
				k := uint64(rng.Intn(1 << 20))
				if !seen[k] {
					seen[k] = true
					keys = append(keys, k)
				}
			}
			sc.run(c, cell, keys)
			if c.dedupes > 0 {
				anyDedupes = true
			}
		})
	}
	if !anyDedupes {
		t.Error("no structure touched an object twice in one transaction; the dedup contract (and this test) would be vacuous")
	}
}
