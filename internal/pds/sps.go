package pds

import (
	"fmt"

	"potgo/internal/isa"
	"potgo/internal/oid"
	"potgo/internal/pmem"
)

// StringArray is the SPS workload's structure (Table 5): an array of N
// fixed-size strings. The array object holds the strings' ObjectIDs; the
// strings themselves are persistent objects placed by the usage pattern,
// and a swap copies the two strings' contents through a temporary.
type StringArray struct {
	table Cell
	n     int
	bytes uint32
}

// StringBytes is the paper's string size: 1024 strings × 32 B = the 32 KB
// string array.
const StringBytes = 32

// NewStringArray wraps an array of n strings of the given size anchored at
// the table cell.
func NewStringArray(table Cell, n int, strBytes uint32) *StringArray {
	return &StringArray{table: table, n: n, bytes: strBytes}
}

// N returns the number of strings.
func (s *StringArray) N() int { return s.n }

// Init allocates the table object and the n strings, filling string i with
// the byte pattern derived from i.
func (s *StringArray) Init(ctx Ctx) error {
	h := ctx.Heap()
	table, err := ctx.Alloc(0, uint32(s.n)*8)
	if err != nil {
		return err
	}
	tref, err := h.Deref(table, isa.RZ)
	if err != nil {
		return err
	}
	for i := 0; i < s.n; i++ {
		str, err := ctx.Alloc(uint64(i), s.bytes)
		if err != nil {
			return err
		}
		sref, err := h.Deref(str, isa.RZ)
		if err != nil {
			return err
		}
		buf := make([]byte, s.bytes)
		for b := range buf {
			buf[b] = byte(i + b)
		}
		if err := sref.WriteBytes(0, buf); err != nil {
			return err
		}
		if err := tref.Store64(uint32(i*8), uint64(str), isa.RZ); err != nil {
			return err
		}
	}
	if err := ctx.Touch(s.table.OID(), 8); err != nil {
		return err
	}
	return s.table.Set(table, pmem.Word{})
}

func (s *StringArray) stringOID(ctx Ctx, i int) (oid.OID, pmem.Word, error) {
	if i < 0 || i >= s.n {
		return oid.Null, pmem.Word{}, fmt.Errorf("pds: string index %d out of range", i)
	}
	h := ctx.Heap()
	tw, err := s.table.Get()
	if err != nil {
		return oid.Null, pmem.Word{}, err
	}
	tref, err := h.Deref(tw.OID(), tw.Reg)
	if err != nil {
		return oid.Null, pmem.Word{}, err
	}
	w, err := tref.Load64(uint32(i * 8))
	if err != nil {
		return oid.Null, pmem.Word{}, err
	}
	return w.OID(), w, nil
}

// Swap exchanges the contents of strings i and j (snapshotting both when a
// transaction is active).
func (s *StringArray) Swap(ctx Ctx, i, j int) error {
	h := ctx.Heap()
	oi, wi, err := s.stringOID(ctx, i)
	if err != nil {
		return err
	}
	oj, wj, err := s.stringOID(ctx, j)
	if err != nil {
		return err
	}
	if err := ctx.Touch(oi, s.bytes); err != nil {
		return err
	}
	if err := ctx.Touch(oj, s.bytes); err != nil {
		return err
	}
	ri, err := h.Deref(oi, wi.Reg)
	if err != nil {
		return err
	}
	rj, err := h.Deref(oj, wj.Reg)
	if err != nil {
		return err
	}
	bi := make([]byte, s.bytes)
	bj := make([]byte, s.bytes)
	if err := ri.ReadBytes(0, bi); err != nil {
		return err
	}
	if err := rj.ReadBytes(0, bj); err != nil {
		return err
	}
	if err := ri.WriteBytes(0, bj); err != nil {
		return err
	}
	return rj.WriteBytes(0, bi)
}

// Get reads string i (verification helper).
func (s *StringArray) Get(ctx Ctx, i int) ([]byte, error) {
	o, w, err := s.stringOID(ctx, i)
	if err != nil {
		return nil, err
	}
	ref, err := ctx.Heap().Deref(o, w.Reg)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, s.bytes)
	if err := ref.ReadBytes(0, buf); err != nil {
		return nil, err
	}
	return buf, nil
}
